module holmes

go 1.24
