package holmes_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// Every examples/* main must build and run to completion: examples are
// the documented entry points, and nothing else compiles them in CI.
// Each runs against its own small built-in topology (4–12 nodes), so the
// whole sweep is a few seconds of simulation.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test builds and runs child processes")
	}
	dirs, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}
	binDir := t.TempDir()
	for _, dir := range dirs {
		dir := dir
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		t.Run(filepath.Base(dir), func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, filepath.Base(dir))
			build := exec.Command("go", "build", "-o", bin, "./"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			run := exec.CommandContext(ctx, bin)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("run failed: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
