package holmes

import (
	"reflect"
	"strings"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	topo := Hybrid(4)
	spec := ParameterGroup(1)
	plan, err := Plan(topo, spec, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Report.TFLOPS <= 0 || plan.Report.Throughput <= 0 {
		t.Fatalf("empty report: %+v", plan.Report)
	}
	if !strings.Contains(plan.Describe(), "Holmes plan") {
		t.Fatal("Describe() missing header")
	}
}

func TestBuildTopologyPublic(t *testing.T) {
	topo, err := BuildTopology(
		ClusterSpec{NIC: InfiniBand, Nodes: 2},
		ClusterSpec{NIC: RoCE, Nodes: 1},
		ClusterSpec{NIC: Ethernet, Nodes: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumClusters() != 3 || topo.NumDevices() != 32 {
		t.Fatalf("topology: %s", Describe(topo))
	}
}

func TestAutoPlanBeatsWorstCase(t *testing.T) {
	topo := Hybrid(4)
	spec := ParameterGroup(1)
	auto, err := AutoPlan(topo, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := Simulate(topo, spec, 1, auto.Degrees.P, FrameworkMegatronLM)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Report.Throughput <= lm.Throughput {
		t.Fatalf("auto Holmes plan (%.1f) must beat Megatron-LM (%.1f)",
			auto.Report.Throughput, lm.Throughput)
	}
}

func TestPlanWithOverrides(t *testing.T) {
	opt := DefaultOptions(FrameworkHolmes)
	opt.SelfAdaptingPartition = false
	plan, err := PlanWith(Hybrid(4), ParameterGroup(1), 1, 2, FrameworkHolmes, &opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Partition.Strategy, "uniform") {
		t.Fatalf("override ignored: %v", plan.Partition)
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	rows, err := RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("table1 rows = %d", len(rows))
	}
	if _, err := RunExperiment("bogus"); err == nil {
		t.Fatal("bogus experiment accepted")
	}
	if len(Experiments()) != 9 {
		t.Fatalf("experiment list = %v", Experiments())
	}
}

func TestFleetFacade(t *testing.T) {
	tr := &FleetTrace{
		Fleet: FleetSpec{Env: "Hybrid", Nodes: 4},
		Jobs: []FleetJob{
			{ID: "a", GPUs: 16, Model: FleetModel{Group: 1}},
			{ID: "b", GPUs: 16, Model: FleetModel{Group: 2}},
		},
	}
	sched, err := ReplayFleet(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Jobs) != 2 || sched.Makespan <= 0 {
		t.Fatalf("fleet schedule: %+v", sched)
	}
	// The degenerate fleet equals the single-job planner.
	solo, err := ReplayFleet(&FleetTrace{
		Fleet: FleetSpec{Env: "Hybrid", Nodes: 4},
		Jobs:  []FleetJob{{ID: "solo", GPUs: 32, Model: FleetModel{Group: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	best, err := SearchPlan(Hybrid(4), ParameterGroup(1))
	if err != nil {
		t.Fatal(err)
	}
	if solo.Jobs[0].Throughput != best.Report.Throughput {
		t.Fatalf("solo fleet job (%v samples/s) diverged from SearchPlan (%v)",
			solo.Jobs[0].Throughput, best.Report.Throughput)
	}
	// Carve is part of the public topology surface.
	slice, err := Hybrid(4).Carve([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if slice.NumNodes() != 2 || slice.NumDevices() != 16 {
		t.Fatalf("carved slice: %s", Describe(slice))
	}
	// The concurrent manager agrees with the batch replay.
	mgr, err := NewFleetManager(nil, Hybrid(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := mgr.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	viaMgr, err := mgr.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if viaMgr.Makespan != sched.Makespan {
		t.Fatalf("manager makespan %v, replay makespan %v", viaMgr.Makespan, sched.Makespan)
	}
}

func TestGPT39BPublic(t *testing.T) {
	spec := GPT39B(1536)
	if spec.Layers != 48 || spec.Hidden != 8192 {
		t.Fatalf("GPT39B shape wrong: %+v", spec)
	}
}

func TestEngineFacade(t *testing.T) {
	eng := NewEngine(EngineConfig{Concurrency: 2, CacheSize: 64})
	topo := Hybrid(4)
	spec := ParameterGroup(1)
	plan, err := PlanOn(eng, topo, spec, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Report.Throughput <= 0 {
		t.Fatalf("empty report: %+v", plan.Report)
	}
	// The engine-less call and the default-engine call agree bit-for-bit.
	viaDefault, err := Plan(topo, spec, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Report, viaDefault.Report) {
		t.Fatalf("engine plan diverged from default-engine plan")
	}
	rows, err := RunExperimentOn(eng, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("table1 rows = %d", len(rows))
	}
	if DefaultEngine() == nil || DefaultEngine() != DefaultEngine() {
		t.Fatal("DefaultEngine must be one shared engine")
	}
}

func TestSearchPlanPublic(t *testing.T) {
	topo := Hybrid(4)
	spec := ParameterGroup(1)
	best, err := SearchPlan(topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The joint search can only improve on any single-t search.
	atT1, err := AutoPlan(topo, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Report.Throughput < atT1.Report.Throughput {
		t.Fatalf("joint search (%.2f) lost to its own t=1 restriction (%.2f)",
			best.Report.Throughput, atT1.Report.Throughput)
	}
}
