// Command holmes-serve exposes the Holmes scheduler as a JSON/HTTP
// daemon built for throughput: requests are admitted through a bounded
// queue (saturation answers 429 + Retry-After), routed over a pool of
// independent engine shards by topology fingerprint (cache hits stay
// shard-local), and identical in-flight plan/search requests are
// coalesced into one computation.
//
// Usage:
//
//	holmes-serve -addr :8080
//	holmes-serve -addr :8080 -shards 4 -workers 4 -cache 1024 -max-inflight 64 -max-queue 512
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/plan \
//	  -d '{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4}'
//	curl -s localhost:8080/v1/search -d '{"env":"Hybrid","nodes":8,"model":{"group":3}}'
//	curl -s localhost:8080/v1/plan/batch \
//	  -d '{"items":[{"op":"plan","config":{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4}},
//	               {"op":"search","config":{"env":"RoCE","nodes":4,"model":{"group":1}}}]}'
//	curl -s -X POST localhost:8080/v1/experiments/table1
//
// Request bodies use the same JSON schema as cmd/holmes-sim -config
// (clusters or the env/nodes shorthand, model group or explicit
// architecture, framework, component toggles).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"holmes/internal/api"
	"holmes/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 1, "independent engine shards (requests hash to shards by topology fingerprint)")
		workers  = flag.Int("workers", 0, "per-shard worker-pool bound (0 = CPU count)")
		cache    = flag.Int("cache", 0, "per-shard communicator cache entries (0 = default 512, negative = disabled)")
		inflight = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = max(8, 2x CPU count))")
		queue    = flag.Int("max-queue", 0, "max requests waiting for admission (0 = 8x max-inflight, negative = none); beyond this the server answers 429")
		retry    = flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429 responses")
		resp     = flag.Int("response-cache", 0, "completed-answer LRU entries (0 = default 4096, negative = disabled)")
		oracle   = flag.Bool("full-recompute", false, "simulate on the netsim full-recompute oracle (reference arm)")
	)
	flag.Parse()

	pool := serve.New(serve.Config{
		Shards:           *shards,
		ShardConcurrency: *workers,
		ShardCacheSize:   *cache,
		FullRecompute:    *oracle,
		MaxInFlight:      *inflight,
		MaxQueue:         *queue,
		RetryAfter:       *retry,
		ResponseCache:    *resp,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewServerPool(pool).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("holmes-serve %s listening on %s (shards=%d, workers=%d)\n",
		api.Version, *addr, pool.Shards(), pool.Concurrency())
	log.Fatal(srv.ListenAndServe())
}
