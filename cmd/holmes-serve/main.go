// Command holmes-serve exposes the Holmes scheduler as a JSON/HTTP
// daemon: each request plans on one shared engine concurrently, so many
// tenants (users, scenarios) can search plans against the same process.
//
// Usage:
//
//	holmes-serve -addr :8080
//	holmes-serve -addr :8080 -workers 16 -cache 1024
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/plan \
//	  -d '{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4}'
//	curl -s localhost:8080/v1/search -d '{"env":"Hybrid","nodes":8,"model":{"group":3}}'
//	curl -s -X POST localhost:8080/v1/experiments/table1
//
// Request bodies use the same JSON schema as cmd/holmes-sim -config
// (clusters or the env/nodes shorthand, model group or explicit
// architecture, framework, component toggles).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"holmes/internal/api"
	"holmes/internal/engine"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "engine worker-pool bound (0 = CPU count)")
		cache   = flag.Int("cache", 0, "communicator cache entries (0 = default 512, negative = disabled)")
		oracle  = flag.Bool("full-recompute", false, "simulate on the netsim full-recompute oracle (reference arm)")
	)
	flag.Parse()

	eng := engine.New(engine.Config{
		Concurrency:   *workers,
		CacheSize:     *cache,
		FullRecompute: *oracle,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewServer(eng).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("holmes-serve %s listening on %s (workers=%d)\n", api.Version, *addr, eng.Concurrency())
	log.Fatal(srv.ListenAndServe())
}
