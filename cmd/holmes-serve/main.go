// Command holmes-serve exposes the Holmes scheduler as a JSON/HTTP
// daemon built for throughput: requests are admitted through a bounded
// queue (saturation answers 429 + Retry-After), routed over a pool of
// independent engine shards by topology fingerprint (cache hits stay
// shard-local), and identical in-flight plan/search requests are
// coalesced into one computation.
//
// The daemon shuts down gracefully: SIGINT/SIGTERM switch it to drain
// mode (new admission-gated work answers 429, observability routes keep
// answering), in-flight requests finish within -drain-timeout, and —
// when -cache-snapshot is set — the deterministic caches (completed
// responses, search-winner memo) are written to disk so the next boot
// answers the same corpus hot. The same file is loaded at startup and
// rewritten every -snapshot-interval.
//
// With -operator, /v1/jobs becomes an always-on durable fleet layer:
// each fleet is a wall-clock-driven operator behind an fsync'd journal
// in -journal-dir (submits stamped with real time, finished work
// retired automatically, -fleet-policy / per-request "policy" selecting
// the scheduling policy), and a restarted daemon recovers every fleet
// from its journal and resumes scheduling bit-identically to a process
// that never died.
//
// The daemon is observable live: GET / serves an embedded dashboard
// (go:embed, zero build step — fleet timeline, topology health,
// endpoint latency) and GET /v1/events streams operator transitions as
// Server-Sent Events. Both ride outside admission, so they keep
// answering while the server is saturated. -dashboard=false unmounts
// the page (the stream stays).
//
// Usage:
//
//	holmes-serve -addr :8080
//	holmes-serve -addr :8080 -shards 4 -workers 4 -cache 1024 -max-inflight 64 -max-queue 512
//	holmes-serve -addr :8080 -cache-snapshot /var/lib/holmes/cache.json -snapshot-interval 5m
//	holmes-serve -addr :8080 -operator -journal-dir /var/lib/holmes/fleet -fleet-policy priority
//	holmes-serve -addr :8080 -pprof   # mounts /debug/pprof/
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/stats
//	curl -sN localhost:8080/v1/events   # SSE stream; open / in a browser for the dashboard
//	curl -s localhost:8080/v1/plan \
//	  -d '{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4}'
//	curl -s localhost:8080/v1/search -d '{"env":"Hybrid","nodes":8,"model":{"group":3}}'
//	curl -s localhost:8080/v1/plan/batch \
//	  -d '{"items":[{"op":"plan","config":{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4}},
//	               {"op":"search","config":{"env":"RoCE","nodes":4,"model":{"group":1}}}]}'
//	curl -s -X POST localhost:8080/v1/experiments/table1
//
// Request bodies use the same JSON schema as cmd/holmes-sim -config
// (clusters or the env/nodes shorthand, model group or explicit
// architecture, framework, component toggles).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"holmes/internal/api"
	"holmes/internal/fleet"
	"holmes/internal/serve"
)

// loadSnapshot warm-starts the caches from file; a missing file is a
// cold boot, not an error. A bad file is logged and ignored — a stale or
// corrupt snapshot must never keep the server from starting.
func loadSnapshot(srv *api.Server, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("holmes-serve: cache snapshot %s unreadable: %v (cold boot)", path, err)
		}
		return
	}
	counts, err := srv.LoadSnapshot(data)
	if err != nil {
		log.Printf("holmes-serve: cache snapshot %s rejected: %v (cold boot)", path, err)
		return
	}
	log.Printf("holmes-serve: warm boot from %s (%d responses, %d plan entries)",
		path, counts.Responses, counts.Plans)
}

// writeSnapshot persists the caches atomically (write temp, rename).
func writeSnapshot(srv *api.Server, path string) {
	doc, err := srv.SaveSnapshot()
	if err != nil {
		log.Printf("holmes-serve: cache snapshot: %v", err)
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		log.Printf("holmes-serve: cache snapshot %s: %v", tmp, err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		log.Printf("holmes-serve: cache snapshot %s: %v", path, err)
		return
	}
	log.Printf("holmes-serve: cache snapshot written to %s (%d bytes)", path, len(doc))
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 1, "independent engine shards (requests hash to shards by topology fingerprint)")
		workers  = flag.Int("workers", 0, "per-shard worker-pool bound (0 = CPU count)")
		cache    = flag.Int("cache", 0, "per-shard communicator cache entries (0 = default 512, negative = disabled)")
		inflight = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = max(8, 2x CPU count))")
		queue    = flag.Int("max-queue", 0, "max requests waiting for admission (0 = 8x max-inflight, negative = none); beyond this the server answers 429")
		retry    = flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429 responses")
		resp     = flag.Int("response-cache", 0, "completed-answer LRU entries (0 = default 4096, negative = disabled)")
		oracle   = flag.Bool("full-recompute", false, "simulate on the netsim full-recompute oracle (reference arm; also disables search pruning)")
		snapshot = flag.String("cache-snapshot", "", "cache snapshot file: loaded at boot, written on graceful shutdown (and every -snapshot-interval)")
		interval = flag.Duration("snapshot-interval", 0, "also rewrite -cache-snapshot periodically (0 = only on shutdown)")
		drain    = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (admission-exempt)")
		operator = flag.Bool("operator", false, "run /v1/jobs as an always-on durable fleet operator: wall-clock submits, auto-retirement, journaled crash recovery (requires -journal-dir)")
		jdir     = flag.String("journal-dir", "", "directory for per-fleet journals and snapshots (operator mode); existing journals are recovered at boot")
		policy   = flag.String("fleet-policy", "", "default scheduling policy for freshly created fleets: "+strings.Join(fleet.PolicyNames(), ", ")+" (default "+fleet.DefaultPolicy+")")
		dash     = flag.Bool("dashboard", true, "serve the embedded live dashboard at / (admission-exempt, no build step)")
	)
	flag.Parse()
	if *policy != "" {
		if _, err := fleet.PolicyByName(*policy); err != nil {
			log.Fatalf("holmes-serve: %v", err)
		}
	}
	if *operator && *jdir == "" {
		log.Fatal("holmes-serve: -operator requires -journal-dir")
	}

	pool := serve.New(serve.Config{
		Shards:           *shards,
		ShardConcurrency: *workers,
		ShardCacheSize:   *cache,
		FullRecompute:    *oracle,
		MaxInFlight:      *inflight,
		MaxQueue:         *queue,
		RetryAfter:       *retry,
		ResponseCache:    *resp,
	})
	apiSrv := api.NewServerPool(pool)
	apiSrv.EnablePprof(*pprofOn)
	apiSrv.EnableDashboard(*dash)
	if *operator {
		recovered, err := apiSrv.EnableOperator(api.OperatorMode{JournalDir: *jdir, Policy: *policy})
		if err != nil {
			log.Fatalf("holmes-serve: operator mode: %v", err)
		}
		log.Printf("holmes-serve: operator mode on %s (%d fleet(s) recovered, default policy %s)",
			*jdir, recovered, firstNonEmpty(*policy, fleet.DefaultPolicy))
	}
	if *snapshot != "" {
		loadSnapshot(apiSrv, *snapshot)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           apiSrv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("holmes-serve %s listening on %s (shards=%d, workers=%d)\n",
		api.Version, *addr, pool.Shards(), pool.Concurrency())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *snapshot != "" && *interval > 0 {
		go func() {
			t := time.NewTicker(*interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					writeSnapshot(apiSrv, *snapshot)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Drain: new admission-gated work answers 429 while in-flight
	// requests get up to -drain-timeout to finish, then the caches are
	// snapshotted so the next boot starts warm.
	log.Printf("holmes-serve: signal received, draining (timeout %s)", *drain)
	apiSrv.SetDraining(true)
	// End every /v1/events stream in-band (event: eof) so open SSE
	// connections don't pin srv.Shutdown to the drain deadline.
	apiSrv.Events().Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("holmes-serve: drain incomplete: %v", err)
	}
	if *snapshot != "" {
		writeSnapshot(apiSrv, *snapshot)
	}
	if *operator {
		// Retire what is retirable, cut final snapshots, close the
		// journals. A crash skips this — that is what recovery replays.
		if err := apiSrv.CloseOperators(); err != nil {
			log.Printf("holmes-serve: operator shutdown: %v", err)
		}
	}
	log.Printf("holmes-serve: shutdown complete")
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
