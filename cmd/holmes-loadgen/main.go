// Command holmes-loadgen drives a holmes-serve instance with a
// closed-loop workload (each worker keeps exactly one request in flight)
// and reports client-observed throughput and latency as JSON — the
// operator-facing half of the serving soak tests.
//
// The request mix spans the paper's workload: Table-3 plan cells,
// joint searches, scenario simulates, and plan batches; see
// internal/loadgen for the corpus.
//
// Usage:
//
//	holmes-serve -addr :8080 -shards 4 &
//	holmes-loadgen -url http://127.0.0.1:8080 -workers 32 -duration 10s
//	holmes-loadgen -url http://127.0.0.1:8080 -mix plan=1 -duration 5s   # plan-only
//	holmes-loadgen -url http://127.0.0.1:8080 -mix plan=8,search=1,simulate=2,batch=1
//	holmes-loadgen -url http://127.0.0.1:8080 -warm-boot   # one pass over the corpus
//
// Output is one JSON document: request counts (ok / rejected / errors),
// requests/s, plan answers/s (batch items included), the latency
// histogram summary (p50/p95/p99/max in milliseconds), and the server's
// cache effectiveness (plan/response hit ratios scraped from /v1/stats
// at the end of the run). Exit status is 1 when any non-backpressure
// error occurred — 429s are shed load, not failures.
//
// -warm-boot replaces the timed random mix with one deterministic pass
// over the whole corpus; against a holmes-serve started from a
// -cache-snapshot file it shows how much of the corpus is answered from
// cache at boot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"holmes/internal/loadgen"
)

func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	if s == "" {
		return m, nil // zero value = loadgen's default mix
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad mix element %q (want kind=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		switch key {
		case "plan":
			m.Plan = w
		case "search":
			m.Search = w
		case "simulate":
			m.Simulate = w
		case "batch":
			m.Batch = w
		default:
			return m, fmt.Errorf("unknown mix kind %q (want plan, search, simulate, batch)", key)
		}
	}
	// An explicit spec must select something: an all-zero Mix would
	// silently fall back to the default mix and mislabel the run.
	if m == (loadgen.Mix{}) {
		return m, fmt.Errorf("mix %q selects nothing (all weights zero)", s)
	}
	return m, nil
}

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8080", "holmes-serve base URL")
		workers   = flag.Int("workers", 16, "closed-loop client count")
		duration  = flag.Duration("duration", 10*time.Second, "run length")
		mixSpec   = flag.String("mix", "", "request mix weights, e.g. plan=8,search=1,simulate=2,batch=1 (empty = that default)")
		batchSize = flag.Int("batch-size", 16, "items per /v1/plan/batch request")
		seed      = flag.Int64("seed", 1, "per-worker RNG seed (reproducible request sequences)")
		warmBoot  = flag.Bool("warm-boot", false, "one deterministic pass over the full corpus instead of a timed mix (measures cache effectiveness against a snapshot-warmed server; -duration and -mix are ignored)")
		out       = flag.String("out", "", "also write the JSON report to this file")
	)
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "holmes-loadgen:", err)
		os.Exit(2)
	}
	res, err := loadgen.Run(loadgen.Options{
		BaseURL:   *url,
		Workers:   *workers,
		Duration:  *duration,
		Mix:       mix,
		BatchSize: *batchSize,
		Seed:      *seed,
		WarmBoot:  *warmBoot,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "holmes-loadgen:", err)
		os.Exit(2)
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "holmes-loadgen:", err)
		os.Exit(2)
	}
	fmt.Println(string(doc))
	if *out != "" {
		if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "holmes-loadgen:", err)
			os.Exit(2)
		}
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "holmes-loadgen: %d non-backpressure errors (first: %s)\n", res.Errors, res.FirstError)
		os.Exit(1)
	}
}
