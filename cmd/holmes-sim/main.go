// Command holmes-sim runs one simulated training iteration from a JSON
// configuration (or flags) and reports the paper's metrics.
//
// Usage:
//
//	holmes-sim -config experiment.json
//	holmes-sim -env Hybrid -nodes 8 -group 3 -pipeline 4 -framework Holmes
//	holmes-sim -env Hybrid -nodes 8 -group 3 -pipeline 4 -scenario faults.json
//
// A scenario file scripts cluster events onto the simulated fabric:
// capacity faults (degraded NICs, failed nodes and clusters, stragglers,
// flapping links, partitions), packet impairments (added delay, seeded
// jitter, loss/corrupt goodput derates), and background traffic. See
// internal/scenario for the JSON schema and EXPERIMENTS.md for the
// event table.
package main

import (
	"flag"
	"fmt"
	"os"

	"holmes/internal/config"
	"holmes/internal/metrics"
	"holmes/internal/model"
	"holmes/internal/scenario"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

func main() {
	var (
		cfgPath   = flag.String("config", "", "JSON experiment config (overrides other flags)")
		env       = flag.String("env", "Hybrid", "NIC environment: InfiniBand | RoCE | Ethernet | Hybrid")
		nodes     = flag.Int("nodes", 8, "total node count")
		group     = flag.Int("group", 1, "parameter group 1-4")
		tensor    = flag.Int("tensor", 1, "tensor parallel degree")
		pipe      = flag.Int("pipeline", 2, "pipeline parallel degree")
		framework = flag.String("framework", "Holmes", "Holmes | Megatron-LM | Megatron-DeepSpeed | Megatron-LLaMA")
		scenPath  = flag.String("scenario", "", "JSON scenario file scripting cluster events onto the fabric")
	)
	flag.Parse()

	var tc trainer.Config
	if *cfgPath != "" {
		c, err := config.LoadFile(*cfgPath)
		if err != nil {
			fatal(err)
		}
		tc2, err := c.TrainerConfig()
		if err != nil {
			fatal(err)
		}
		tc = tc2
	} else {
		topo, err := topology.Env(topology.EnvName(*env), *nodes)
		if err != nil {
			fatal(err)
		}
		tc = trainer.Config{
			Topo: topo, Spec: model.Group(*group).Spec,
			TensorSize: *tensor, PipelineSize: *pipe,
			Framework: trainer.Framework(*framework),
		}
	}

	if *scenPath != "" {
		sc, err := scenario.LoadFile(*scenPath)
		if err != nil {
			fatal(err)
		}
		tc.Scenario = sc
	}

	rep, err := trainer.Simulate(tc)
	if err != nil {
		fatal(err)
	}
	tb := metrics.New("metric", "value")
	tb.AddF("framework", string(rep.Framework))
	tb.AddF("environment", rep.Env)
	tb.AddF("degrees (t,p,d)", fmt.Sprintf("%d,%d,%d", rep.Degrees.T, rep.Degrees.P, rep.Degrees.D))
	tb.AddF("partition", rep.Partition.String())
	tb.AddF("micro-batches", fmt.Sprint(rep.Micro))
	tb.AddF("iteration (s)", rep.IterSeconds)
	tb.AddF("TFLOPS/GPU", rep.TFLOPS)
	tb.AddF("throughput (samples/s)", rep.Throughput)
	tb.AddF("grads reduce-scatter (ms)", rep.ReduceScatterSeconds*1000)
	if rep.Scenario != "" {
		tb.AddF("scenario", fmt.Sprintf("%s (%d event(s) fired)", rep.Scenario, rep.ScenarioEvents))
	}
	fmt.Print(tb.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holmes-sim:", err)
	os.Exit(1)
}
