package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: holmes
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTable3 	       1	 193260052 ns/op	        48.00 cells
BenchmarkTable3 	       1	 210000000 ns/op	        48.00 cells
BenchmarkPlanBatch-8 	       3	  98861041 ns/op	        32.00 plans/req	33411216 B/op	  648282 allocs/op
BenchmarkPlanBatch-8 	       3	  95000000 ns/op	        32.00 plans/req	33411216 B/op	  640000 allocs/op
PASS
ok  	holmes	1.222s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// Minimum ns/op across repetitions, GOMAXPROCS suffix stripped.
	if got["BenchmarkTable3"].NsPerOp != 193260052 {
		t.Fatalf("Table3 min: %v", got["BenchmarkTable3"])
	}
	// No -benchmem columns -> allocs not measured.
	if got["BenchmarkTable3"].AllocsPerOp != -1 {
		t.Fatalf("Table3 allocs: %v", got["BenchmarkTable3"])
	}
	if got["BenchmarkPlanBatch"].NsPerOp != 95000000 {
		t.Fatalf("PlanBatch min: %v", got["BenchmarkPlanBatch"])
	}
	// Allocs ride with the fastest repetition.
	if got["BenchmarkPlanBatch"].AllocsPerOp != 640000 {
		t.Fatalf("PlanBatch allocs: %v", got["BenchmarkPlanBatch"])
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks: %v", len(got), got)
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	got, err := parseBench(strings.NewReader("FAIL\nsomething Benchmark-ish\nBenchmarkX 1 notanumber ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed noise as benchmarks: %v", got)
	}
}

func TestGateFlagParsing(t *testing.T) {
	g := gates{}
	if err := g.Set("BenchmarkTable3=BENCH_baseline.json"); err != nil {
		t.Fatal(err)
	}
	if g["BenchmarkTable3"] != "BENCH_baseline.json" {
		t.Fatalf("gate map: %v", g)
	}
	for _, bad := range []string{"", "NoEquals", "=x", "Name="} {
		if err := g.Set(bad); err == nil {
			t.Errorf("accepted bad gate %q", bad)
		}
	}
}

func TestLedgerResolve(t *testing.T) {
	raw := `{
		"after": {"ns_per_op": 100},
		"benchmarks": {
			"BenchmarkA": {"ns_per_op": 42, "allocs_per_op": 7},
			"BenchmarkEmpty": {"ns_per_op": 0}
		}
	}`
	var led ledger
	if err := json.Unmarshal([]byte(raw), &led); err != nil {
		t.Fatal(err)
	}
	// A named section wins over the top-level after.
	if got, ok := led.resolve("BenchmarkA"); !ok || got.NsPerOp != 42 || got.AllocsPerOp != 7 {
		t.Fatalf("BenchmarkA: %+v %v", got, ok)
	}
	// Unknown names fall back to after (no allocs gate there).
	if got, ok := led.resolve("BenchmarkB"); !ok || got.NsPerOp != 100 || got.AllocsPerOp != 0 {
		t.Fatalf("BenchmarkB: %+v %v", got, ok)
	}
	// An unusable named section (ns_per_op 0) also falls back.
	if got, ok := led.resolve("BenchmarkEmpty"); !ok || got.NsPerOp != 100 {
		t.Fatalf("BenchmarkEmpty: %+v %v", got, ok)
	}
	var none ledger
	if _, ok := none.resolve("BenchmarkA"); ok {
		t.Fatal("empty ledger resolved a level")
	}
}

func TestCheckVerdicts(t *testing.T) {
	// Within the limit: 120 vs 100 at 25% is allowed.
	if check("BenchmarkX", "ns/op", 120, 100, 0.25) {
		t.Fatal("120 vs 100 at 25% must pass")
	}
	// Beyond the limit.
	if !check("BenchmarkX", "ns/op", 130, 100, 0.25) {
		t.Fatal("130 vs 100 at 25% must fail")
	}
	// Improvements always pass.
	if check("BenchmarkX", "allocs/op", 10, 100, 0.25) {
		t.Fatal("an improvement must pass")
	}
}
