package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: holmes
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTable3 	       1	 193260052 ns/op	        48.00 cells
BenchmarkTable3 	       1	 210000000 ns/op	        48.00 cells
BenchmarkPlanBatch-8 	       3	  98861041 ns/op	        32.00 plans/req	33411216 B/op	  648282 allocs/op
BenchmarkPlanBatch-8 	       3	  95000000 ns/op	        32.00 plans/req	33411216 B/op	  648282 allocs/op
PASS
ok  	holmes	1.222s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// Minimum across repetitions, GOMAXPROCS suffix stripped.
	if got["BenchmarkTable3"] != 193260052 {
		t.Fatalf("Table3 min: %v", got["BenchmarkTable3"])
	}
	if got["BenchmarkPlanBatch"] != 95000000 {
		t.Fatalf("PlanBatch min: %v", got["BenchmarkPlanBatch"])
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks: %v", len(got), got)
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	got, err := parseBench(strings.NewReader("FAIL\nsomething Benchmark-ish\nBenchmarkX 1 notanumber ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed noise as benchmarks: %v", got)
	}
}

func TestGateFlagParsing(t *testing.T) {
	g := gates{}
	if err := g.Set("BenchmarkTable3=BENCH_baseline.json"); err != nil {
		t.Fatal(err)
	}
	if g["BenchmarkTable3"] != "BENCH_baseline.json" {
		t.Fatalf("gate map: %v", g)
	}
	for _, bad := range []string{"", "NoEquals", "=x", "Name="} {
		if err := g.Set(bad); err == nil {
			t.Errorf("accepted bad gate %q", bad)
		}
	}
}
