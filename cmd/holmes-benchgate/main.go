// Command holmes-benchgate is the CI perf-regression gate: it parses
// `go test -bench` output, takes the fastest repetition of each gated
// benchmark (the minimum is the least noisy location estimate on shared
// runners), compares it to the committed ledger, and exits non-zero when
// a benchmark regressed by more than the allowed fraction. When the
// ledger records allocs/op (requires -benchmem output), allocation count
// is gated the same way — a concurrency refactor can't silently trade
// speed for garbage.
//
// Usage:
//
//	go test -run '^$' -bench '^(BenchmarkTable3|BenchmarkPlanBatch|BenchmarkFleetSchedule|BenchmarkFleetScheduleWarm|BenchmarkFleetMutate)$' -benchmem -count 3 . | tee bench.txt
//	holmes-benchgate -max-regress 0.25 < bench.txt
//	holmes-benchgate -gate BenchmarkTable3=BENCH_baseline.json -gate BenchmarkPlanBatch=BENCH_serve.json < bench.txt
//
// Ledgers are the repo's BENCH_*.json documents. A ledger either gates
// one benchmark through its top-level `after.ns_per_op` — the number the
// recording session measured after its change, i.e. the level later
// sessions must hold — or many through a `benchmarks` section mapping
// benchmark name to {ns_per_op, allocs_per_op}.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// gates maps benchmark name -> ledger path; repeated -gate flags add
// entries.
type gates map[string]string

func (g gates) String() string { return fmt.Sprint(map[string]string(g)) }

func (g gates) Set(s string) error {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("bad -gate %q (want BenchmarkName=ledger.json)", s)
	}
	g[name] = path
	return nil
}

// target is one gated level: ns/op always, allocs/op when the ledger
// records it (0 = not gated).
type target struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// ledger is the subset of a BENCH_*.json document the gate reads: the
// single-benchmark after section, or the multi-benchmark section keyed
// by benchmark name (which wins for names it covers).
type ledger struct {
	After      target            `json:"after"`
	Benchmarks map[string]target `json:"benchmarks"`
}

// resolve picks the gate level for one benchmark name.
func (l ledger) resolve(name string) (target, bool) {
	if t, ok := l.Benchmarks[name]; ok && t.NsPerOp > 0 {
		return t, true
	}
	if l.After.NsPerOp > 0 {
		return l.After, true
	}
	return target{}, false
}

// measurement is one parsed benchmark result: min ns/op across
// repetitions, and the allocs/op of that same fastest repetition (-1
// when the output had no -benchmem columns).
type measurement struct {
	NsPerOp     float64
	AllocsPerOp float64
}

// parseBench extracts per-benchmark measurements from `go test -bench`
// output. Benchmark lines look like
//
//	BenchmarkPlanBatch-8   3   98861041 ns/op   32.00 plans/req  33411216 B/op  648282 allocs/op
//
// the -8 GOMAXPROCS suffix is stripped, and multiple repetitions (from
// -count) collapse to the one with minimum ns/op.
func parseBench(r io.Reader) (map[string]measurement, error) {
	best := make(map[string]measurement)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		ns, ok := metric(fields, "ns/op")
		if !ok {
			continue
		}
		m := measurement{NsPerOp: ns, AllocsPerOp: -1}
		if allocs, ok := metric(fields, "allocs/op"); ok {
			m.AllocsPerOp = allocs
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if cur, seen := best[name]; !seen || m.NsPerOp < cur.NsPerOp {
			best[name] = m
		}
	}
	return best, sc.Err()
}

// metric extracts the value preceding a unit token ("ns/op",
// "allocs/op") from one benchmark line.
func metric(fields []string, unit string) (float64, bool) {
	for i := 1; i < len(fields); i++ {
		if fields[i] != unit {
			continue
		}
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// check gates one measured value against one ledger level; returns true
// on regression and prints the verdict line either way.
func check(name, what string, got, want, maxRegress float64) bool {
	limit := want * (1 + maxRegress)
	delta := (got - want) / want * 100
	verdict := "ok"
	regressed := got > limit
	if regressed {
		verdict = "REGRESSION"
	}
	fmt.Printf("%-28s measured %14.0f %-9s ledger %14.0f  %+6.1f%%  (limit %+.0f%%)  %s\n",
		name, got, what, want, delta, maxRegress*100, verdict)
	return regressed
}

func main() {
	g := gates{}
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional ns/op regression vs the ledger")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0.25, "allowed fractional allocs/op regression vs the ledger (for ledger entries that record allocs_per_op)")
	flag.Var(g, "gate", "BenchmarkName=ledger.json (repeatable; default gates Table3, ScenarioImpaired, PlanBatch, the three fleet benchmarks, SearchCold, and WarmBoot)")
	input := flag.String("input", "-", "bench output file (- = stdin)")
	flag.Parse()
	if len(g) == 0 {
		g = gates{
			"BenchmarkTable3":            "BENCH_baseline.json",
			"BenchmarkScenarioImpaired":  "BENCH_baseline.json",
			"BenchmarkPlanBatch":         "BENCH_serve.json",
			"BenchmarkFleetSchedule":     "BENCH_fleet.json",
			"BenchmarkFleetScheduleWarm": "BENCH_fleet.json",
			"BenchmarkFleetMutate":       "BENCH_fleet.json",
			"BenchmarkSearchCold":        "BENCH_coldpath.json",
			"BenchmarkWarmBoot":          "BENCH_coldpath.json",
		}
	}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "holmes-benchgate:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "holmes-benchgate:", err)
		os.Exit(2)
	}

	failed := false
	for name, path := range g {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "holmes-benchgate:", err)
			os.Exit(2)
		}
		var led ledger
		if err := json.Unmarshal(raw, &led); err != nil {
			fmt.Fprintf(os.Stderr, "holmes-benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		want, ok := led.resolve(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "holmes-benchgate: %s has no usable level for %s\n", path, name)
			os.Exit(2)
		}
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "holmes-benchgate: %s not found in bench output\n", name)
			failed = true
			continue
		}
		if check(name, "ns/op", got.NsPerOp, want.NsPerOp, *maxRegress) {
			failed = true
		}
		if want.AllocsPerOp > 0 {
			if got.AllocsPerOp < 0 {
				fmt.Fprintf(os.Stderr, "holmes-benchgate: %s gates allocs/op but the bench output has none (run with -benchmem)\n", name)
				failed = true
			} else if check(name, "allocs/op", got.AllocsPerOp, want.AllocsPerOp, *maxAllocRegress) {
				failed = true
			}
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "holmes-benchgate: perf gate failed")
		os.Exit(1)
	}
}
