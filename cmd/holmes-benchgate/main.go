// Command holmes-benchgate is the CI perf-regression gate: it parses
// `go test -bench` output, takes the fastest repetition of each gated
// benchmark (the minimum is the least noisy location estimate on shared
// runners), compares it to the committed ledger, and exits non-zero when
// a benchmark regressed by more than the allowed fraction.
//
// Usage:
//
//	go test -run '^$' -bench '^(BenchmarkTable3|BenchmarkPlanBatch|BenchmarkFleetSchedule)$' -benchtime 1x -count 5 . | tee bench.txt
//	holmes-benchgate -max-regress 0.25 < bench.txt
//	holmes-benchgate -gate BenchmarkTable3=BENCH_baseline.json -gate BenchmarkPlanBatch=BENCH_serve.json < bench.txt
//
// Ledgers are the repo's BENCH_*.json documents; the gate reads the
// `after.ns_per_op` field — the number the recording session measured
// after its change, i.e. the level later sessions must hold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// gates maps benchmark name -> ledger path; repeated -gate flags add
// entries.
type gates map[string]string

func (g gates) String() string { return fmt.Sprint(map[string]string(g)) }

func (g gates) Set(s string) error {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("bad -gate %q (want BenchmarkName=ledger.json)", s)
	}
	g[name] = path
	return nil
}

// ledger is the subset of a BENCH_*.json document the gate reads.
type ledger struct {
	After struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"after"`
}

// parseBench extracts min ns/op per benchmark from `go test -bench`
// output. Benchmark lines look like
//
//	BenchmarkPlanBatch-8   3   98861041 ns/op   32.00 plans/req ...
//
// the -8 GOMAXPROCS suffix is stripped, and multiple repetitions (from
// -count) collapse to their minimum.
func parseBench(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 1 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if cur, ok := best[name]; !ok || ns < cur {
			best[name] = ns
		}
	}
	return best, sc.Err()
}

func main() {
	g := gates{}
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional ns/op regression vs the ledger")
	flag.Var(g, "gate", "BenchmarkName=ledger.json (repeatable; default gates Table3, PlanBatch, and FleetSchedule)")
	input := flag.String("input", "-", "bench output file (- = stdin)")
	flag.Parse()
	if len(g) == 0 {
		g = gates{
			"BenchmarkTable3":        "BENCH_baseline.json",
			"BenchmarkPlanBatch":     "BENCH_serve.json",
			"BenchmarkFleetSchedule": "BENCH_fleet.json",
		}
	}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "holmes-benchgate:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "holmes-benchgate:", err)
		os.Exit(2)
	}

	failed := false
	for name, path := range g {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "holmes-benchgate:", err)
			os.Exit(2)
		}
		var led ledger
		if err := json.Unmarshal(raw, &led); err != nil || led.After.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "holmes-benchgate: %s has no usable after.ns_per_op (%v)\n", path, err)
			os.Exit(2)
		}
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "holmes-benchgate: %s not found in bench output\n", name)
			failed = true
			continue
		}
		limit := led.After.NsPerOp * (1 + *maxRegress)
		delta := (got - led.After.NsPerOp) / led.After.NsPerOp * 100
		verdict := "ok"
		if got > limit {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-24s measured %14.0f ns/op  ledger %14.0f ns/op  %+6.1f%%  (limit %+.0f%%)  %s\n",
			name, got, led.After.NsPerOp, delta, *maxRegress*100, verdict)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "holmes-benchgate: perf gate failed")
		os.Exit(1)
	}
}
