// Command holmes-plan prints the Holmes training plan for a topology: the
// parallel-group layout, NIC selection per group kind, the pipeline
// partition, and the predicted performance.
//
// Usage:
//
//	holmes-plan -env Hybrid -nodes 8 -group 3 -tensor 1 -pipeline 4
//	holmes-plan -env Hybrid -nodes 8 -group 3 -auto     # search p at fixed t
//	holmes-plan -env Hybrid -nodes 8 -group 3 -search   # joint (t, p) search
package main

import (
	"flag"
	"fmt"
	"os"

	"holmes/internal/core"
	"holmes/internal/metrics"
	"holmes/internal/model"
	"holmes/internal/topology"
)

func main() {
	var (
		env     = flag.String("env", "Hybrid", "NIC environment: InfiniBand | RoCE | Ethernet | Hybrid")
		nodes   = flag.Int("nodes", 8, "total node count (8 GPUs each)")
		group   = flag.Int("group", 1, "parameter group 1-4 (Table 2)")
		tensor  = flag.Int("tensor", 1, "tensor parallel degree")
		pipe    = flag.Int("pipeline", 0, "pipeline parallel degree (0 with -auto/-search)")
		auto    = flag.Bool("auto", false, "search the pipeline degree at the given tensor degree")
		search  = flag.Bool("search", false, "search tensor and pipeline degrees jointly")
		verbose = flag.Bool("v", false, "also dump every communication group")
	)
	flag.Parse()

	topo, err := topology.Env(topology.EnvName(*env), *nodes)
	if err != nil {
		fatal(err)
	}
	spec := model.Group(*group).Spec
	pl, err := core.NewPlanner(topo, spec)
	if err != nil {
		fatal(err)
	}

	var plan *core.Plan
	if *search {
		fmt.Printf("searching %d feasible (t, p) cells\n\n", len(pl.SearchSpace()))
		plan, err = pl.SearchPlan()
	} else if *auto {
		plan, err = pl.SearchPipeline(*tensor)
	} else {
		p := *pipe
		if p == 0 {
			p = model.Group(*group).PipelineSize
		}
		plan, err = pl.Plan(*tensor, p)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Print(topo)
	fmt.Println(spec)
	fmt.Println()
	fmt.Print(plan.Describe())

	costs, err := pl.CommunicationCost(plan)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nper-iteration communication volume:")
	tb := metrics.New("kind", "GiB")
	for kind, bytes := range costs {
		tb.AddF(kind.String(), bytes/(1<<30))
	}
	fmt.Print(tb.String())

	if *verbose {
		fmt.Println("\ncommunication groups:")
		for _, g := range plan.World.DPGroups {
			fmt.Println(" ", g)
		}
		for _, g := range plan.World.PPGroups {
			fmt.Println(" ", g)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holmes-plan:", err)
	os.Exit(1)
}
