// Command holmes-fleet replays a multi-job fleet trace — many training
// jobs contending for one shared heterogeneous-NIC topology — and
// reports the resulting schedule: per-job placements, start/finish
// times, makespan, and fleet utilization. The replay is deterministic:
// the same trace produces the identical schedule on every run, with any
// worker count and any -shards setting.
//
// Usage:
//
//	holmes-fleet -trace internal/fleet/testdata/fleet12.json
//	holmes-fleet -trace trace.json -shards 4 -json -out schedule.json
//	holmes-fleet -trace trace.json -policy priority   # or edf, fair, fifo
//
// A trace file names the fleet (env/nodes shorthand or explicit
// clusters), an optional scenario (fail_node / restore_node /
// degrade_nic events on the replay clock), and the jobs (id, submit,
// gpus, iterations, model, optional deadline). See EXPERIMENTS.md for
// the schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"holmes/internal/fleet"
	"holmes/internal/serve"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "fleet trace JSON file (required)")
		shards    = flag.Int("shards", 1, "engine shards to route through (the schedule is invariant to this)")
		workers   = flag.Int("workers", 0, "per-shard worker-pool bound (0 = CPU count)")
		asJSON    = flag.Bool("json", false, "emit the schedule as JSON instead of a table")
		outPath   = flag.String("out", "", "also write the schedule JSON to this file")
		policy    = flag.String("policy", "", "override the trace's scheduling policy: "+strings.Join(fleet.PolicyNames(), ", ")+" (default: the trace's, else "+fleet.DefaultPolicy+")")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "holmes-fleet: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	tr, err := fleet.LoadFile(*tracePath)
	if err != nil {
		fatal(err)
	}
	if *policy != "" {
		tr.Policy = *policy
	}
	if err := tr.Validate(); err != nil {
		fatal(err)
	}
	topo, err := tr.Fleet.Topology()
	if err != nil {
		fatal(err)
	}
	pool := serve.New(serve.Config{Shards: *shards, ShardConcurrency: *workers})
	sched, err := fleet.Replay(pool.ShardFor(topo.Fingerprint()), tr)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		data, err := json.MarshalIndent(sched, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sched); err != nil {
			fatal(err)
		}
		return
	}
	render(sched)
}

func render(sched *fleet.Schedule) {
	pol := sched.Policy
	if pol == "" {
		pol = fleet.DefaultPolicy
	}
	fmt.Printf("fleet: %d node(s), %d GPU(s)  trace %q  policy %s\n", sched.Nodes, sched.GPUs, sched.Trace, pol)
	rows := append([]fleet.Placement(nil), sched.Jobs...)
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].Start < rows[b].Start })
	fmt.Printf("%-8s %-14s %8s %9s %9s %7s %9s  %s\n",
		"job", "nodes", "t/p/d", "start", "finish", "waited", "samp/s", "notes")
	for _, p := range rows {
		if p.Unplaced != "" {
			fmt.Printf("%-8s %-14s %8s %9s %9s %7s %9s  UNPLACED: %s\n",
				p.JobID, "-", "-", "-", "-", "-", "-", p.Unplaced)
			continue
		}
		notes := ""
		if p.Backfilled {
			notes += "backfilled "
		}
		if p.Evictions > 0 {
			notes += fmt.Sprintf("evicted×%d (recovery %.1fx) ", p.Evictions, p.Recovery)
		}
		if p.Replans > 0 {
			notes += fmt.Sprintf("replanned×%d ", p.Replans)
		}
		if p.MissedDeadline {
			notes += "MISSED DEADLINE"
		}
		fmt.Printf("%-8s %-14s %d/%d/%-4d %9.2f %9.2f %7.2f %9.2f  %s\n",
			p.JobID, nodeList(p.Nodes), p.Degrees.Tensor, p.Degrees.Pipeline, p.Degrees.Data,
			p.Start, p.Finish, p.Waited, p.Throughput, notes)
	}
	fmt.Printf("makespan %.2fs  utilization %.1f%%  scenario events %d\n",
		sched.Makespan, 100*sched.Utilization, sched.ScenarioEvents)
}

func nodeList(nodes []int) string {
	s := ""
	for i, n := range nodes {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(n)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "holmes-fleet:", err)
	os.Exit(1)
}
