// Command holmes-bench regenerates the paper's tables and figures on the
// simulated substrate and prints measured-vs-paper comparisons.
//
// Usage:
//
//	holmes-bench -exp table1
//	holmes-bench -exp all
//	holmes-bench -exp fig6 -csv
//	holmes-bench -exp table3 -json                        # writes BENCH_table3.json
//	holmes-bench -exp table3 -json -mode baseline -count 3  # BENCH_table3_baseline.json
//
// The -json mode records a machine-readable performance trajectory per
// experiment (wall time, cells/s, headline TFLOPS, every row) so perf PRs
// can commit before/after numbers; -mode=baseline runs the sequential,
// full-recompute reference path for apples-to-apples comparisons (see
// EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"holmes/internal/engine"
	"holmes/internal/experiments"
	"holmes/internal/metrics"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1 | table3 | table4 | fig4 | fig5 | fig6 | fig7 | scenarios | all")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut = flag.Bool("json", false, "write a BENCH_<id>.json trajectory file per experiment")
		outDir  = flag.String("outdir", ".", "directory for -json output files")
		mode    = flag.String("mode", "fast", "simulation mode: fast (incremental rebalancer, concurrent cells) | baseline (sequential cells, full-recompute oracle)")
		count   = flag.Int("count", 1, "repetitions per experiment; -json records the fastest")
	)
	flag.Parse()

	var suite experiments.Suite
	switch *mode {
	case "fast":
		suite = experiments.NewSuite(engine.New(engine.Config{}))
	case "baseline":
		suite = experiments.NewSuite(engine.New(engine.Config{Concurrency: 1, FullRecompute: true}))
	default:
		fmt.Fprintf(os.Stderr, "holmes-bench: unknown -mode %q (want fast or baseline)\n", *mode)
		os.Exit(2)
	}
	if *count < 1 {
		*count = 1
	}

	ids := experiments.Names
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		rows, elapsed, err := measure(suite, id, *count)
		if err != nil {
			fmt.Fprintln(os.Stderr, "holmes-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", id)
		fmt.Print(render(id, rows, *csv))
		fmt.Println()
		if *jsonOut {
			path, err := writeJSON(*outDir, id, *mode, *count, rows, elapsed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "holmes-bench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%.0f ms/op, %.1f cells/s)\n\n",
				path, float64(elapsed.Nanoseconds())/1e6,
				float64(len(rows))/elapsed.Seconds())
		}
	}
}

// measure runs the experiment count times, returning the rows and the
// fastest wall time.
func measure(suite experiments.Suite, id string, count int) ([]experiments.Row, time.Duration, error) {
	var rows []experiments.Row
	var best time.Duration
	for i := 0; i < count; i++ {
		start := time.Now()
		r, err := suite.Run(id)
		if err != nil {
			return nil, 0, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
		rows = r
	}
	return rows, best, nil
}

// benchRow is the per-cell slice of a trajectory record.
type benchRow struct {
	Label           string  `json:"label"`
	TFLOPS          float64 `json:"tflops"`
	Throughput      float64 `json:"throughput"`
	ReduceScatterMs float64 `json:"reduce_scatter_ms,omitempty"`
}

// benchRecord is the BENCH_<id>.json schema: enough to compare perf PRs
// (ns/op, cells/s) and to detect result drift (per-row metrics). No
// timestamp on purpose — a regeneration with identical results must
// produce an identical file, so "no drift" shows up as an empty diff.
type benchRecord struct {
	Experiment     string     `json:"experiment"`
	Mode           string     `json:"mode"`
	Count          int        `json:"count"`
	Cells          int        `json:"cells"`
	NsPerOp        int64      `json:"ns_per_op"`
	CellsPerSec    float64    `json:"cells_per_sec"`
	HeadlineTFLOPS float64    `json:"headline_tflops"`
	Rows           []benchRow `json:"rows"`
}

func writeJSON(dir, id, mode string, count int, rows []experiments.Row, elapsed time.Duration) (string, error) {
	rec := benchRecord{
		Experiment:  id,
		Mode:        mode,
		Count:       count,
		Cells:       len(rows),
		NsPerOp:     elapsed.Nanoseconds(),
		CellsPerSec: float64(len(rows)) / elapsed.Seconds(),
	}
	if len(rows) > 0 {
		rec.HeadlineTFLOPS = rows[0].TFLOPS
	}
	for _, r := range rows {
		rec.Rows = append(rec.Rows, benchRow{
			Label:           r.Label,
			TFLOPS:          r.TFLOPS,
			Throughput:      r.Throughput,
			ReduceScatterMs: r.ReduceScatterMs,
		})
	}
	// Baseline records get their own filename so a comparison run cannot
	// clobber the committed fast-mode trajectory.
	name := fmt.Sprintf("BENCH_%s.json", id)
	if mode != "fast" {
		name = fmt.Sprintf("BENCH_%s_%s.json", id, mode)
	}
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

func render(id string, rows []experiments.Row, csv bool) string {
	var tb *metrics.Table
	if id == "fig4" {
		tb = metrics.New("cell", "reduce-scatter (ms)")
		for _, r := range rows {
			tb.AddF(r.Label, r.ReduceScatterMs)
		}
	} else {
		tb = metrics.New("cell", "TFLOPS", "samples/s", "paper TFLOPS", "paper samples/s", "Δthroughput", "partition")
		for _, r := range rows {
			dt := "n/a"
			if r.PaperThroughput > 0 {
				dt = metrics.PctString(r.Throughput, r.PaperThroughput)
			}
			paperT, paperS := "-", "-"
			if r.PaperTFLOPS > 0 {
				paperT = metrics.FormatFloat(r.PaperTFLOPS)
			}
			if r.PaperThroughput > 0 {
				paperS = metrics.FormatFloat(r.PaperThroughput)
			}
			tb.Add(r.Label, metrics.FormatFloat(r.TFLOPS), metrics.FormatFloat(r.Throughput),
				paperT, paperS, dt, r.Partition)
		}
	}
	if csv {
		return tb.CSV()
	}
	return tb.String()
}
