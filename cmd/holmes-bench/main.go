// Command holmes-bench regenerates the paper's tables and figures on the
// simulated substrate and prints measured-vs-paper comparisons.
//
// Usage:
//
//	holmes-bench -exp table1
//	holmes-bench -exp all
//	holmes-bench -exp fig6 -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"holmes/internal/experiments"
	"holmes/internal/metrics"
)

func main() {
	var (
		exp = flag.String("exp", "all", "experiment: table1 | table3 | table4 | fig4 | fig5 | fig6 | fig7 | all")
		csv = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	ids := experiments.Names
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		rows, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "holmes-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", id)
		fmt.Print(render(id, rows, *csv))
		fmt.Println()
	}
}

func render(id string, rows []experiments.Row, csv bool) string {
	var tb *metrics.Table
	if id == "fig4" {
		tb = metrics.New("cell", "reduce-scatter (ms)")
		for _, r := range rows {
			tb.AddF(r.Label, r.ReduceScatterMs)
		}
	} else {
		tb = metrics.New("cell", "TFLOPS", "samples/s", "paper TFLOPS", "paper samples/s", "Δthroughput", "partition")
		for _, r := range rows {
			dt := "n/a"
			if r.PaperThroughput > 0 {
				dt = metrics.PctString(r.Throughput, r.PaperThroughput)
			}
			paperT, paperS := "-", "-"
			if r.PaperTFLOPS > 0 {
				paperT = metrics.FormatFloat(r.PaperTFLOPS)
			}
			if r.PaperThroughput > 0 {
				paperS = metrics.FormatFloat(r.PaperThroughput)
			}
			tb.Add(r.Label, metrics.FormatFloat(r.TFLOPS), metrics.FormatFloat(r.Throughput),
				paperT, paperS, dt, r.Partition)
		}
	}
	if csv {
		return tb.CSV()
	}
	return tb.String()
}
