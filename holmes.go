// Package holmes is the public facade of the Holmes reproduction: an
// LLM-training scheduler for heterogeneous NIC environments (Yang et al.,
// "Holmes: Towards Distributed Training Across Clusters with Heterogeneous
// NIC Environment", ICPP 2024) together with the simulated cluster/network
// substrate the experiments run on.
//
// Typical use:
//
//	topo := holmes.Hybrid(8)                    // 4 IB + 4 RoCE nodes
//	spec := holmes.ParameterGroup(3)            // GPT-7.5B, Table 2
//	plan, err := holmes.Plan(topo, spec, 1, 4)  // t=1, p=4
//	fmt.Print(plan.Describe())
//
// Multi-tenant use goes through an explicit Engine, which owns the
// communicator cache, the worker pool, and the simulation knobs; any
// number of goroutines can share one engine, and independent engines
// never interfere:
//
//	eng := holmes.NewEngine(holmes.EngineConfig{})
//	best, err := holmes.SearchPlanOn(eng, topo, spec)  // joint (t, p) search
//	rows, err := holmes.RunExperimentOn(eng, "table3")
//
// cmd/holmes-serve serves the same engine stack over JSON/HTTP through
// a throughput layer (NewServePool): engine shards routed by topology
// fingerprint, admission control with 429 backpressure, request
// coalescing, a response cache, and a batch endpoint:
//
//	go run ./cmd/holmes-serve -addr :8080 -shards 4 &
//	curl -s localhost:8080/v1/plan -d '{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4}'
//	curl -s localhost:8080/v1/plan/batch -d '{"items":[{"op":"search","config":{"env":"RoCE","nodes":4,"model":{"group":1}}}]}'
//	curl -s localhost:8080/v1/stats
//
// Scenarios script cluster events — degraded NICs, failed nodes,
// background traffic — onto the simulation clock, and replanning reacts
// to them on the post-event effective topology:
//
//	sc := &holmes.Scenario{Events: []holmes.ScenarioEvent{{Kind: "fail_node", At: 0, Node: 0}}}
//	rep, err := holmes.SimulateUnder(topo, spec, 1, 4, holmes.FrameworkHolmes, sc)
//	fix, err := holmes.Replan(topo, spec, sc)  // excludes the failed node
//
// A fleet schedules many jobs contending for one shared topology:
// NIC-affine slices carved per job (topology.Carve re-derives the §2.4
// rank numbering), FIFO + backfill, deterministic replay:
//
//	tr, err := holmes.LoadFleetTrace("trace.json")
//	sched, err := holmes.ReplayFleet(tr)  // placements, makespan, utilization
//	curl -s localhost:8080/v1/jobs -d '{"fleet":{"env":"Hybrid","nodes":8},"job":{"id":"a","gpus":16,"model":{"group":1}}}'
//
// The heavy lifting lives in the internal packages (topology, netsim,
// parallel, partition, pipeline, comm, trainer, core, engine, api); this
// package re-exports the stable surface.
package holmes

import (
	"fmt"
	"math"

	"holmes/internal/config"
	"holmes/internal/core"
	"holmes/internal/engine"
	"holmes/internal/events"
	"holmes/internal/experiments"
	"holmes/internal/fleet"
	"holmes/internal/model"
	"holmes/internal/scenario"
	"holmes/internal/serve"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

// Re-exported types: aliases keep the public API thin while the
// implementations stay in internal packages.
type (
	// Topology is the cluster/node/GPU landscape to schedule over.
	Topology = topology.Topology
	// ClusterSpec describes one cluster for BuildTopology.
	ClusterSpec = topology.ClusterSpec
	// NICType enumerates InfiniBand, RoCE, Ethernet.
	NICType = topology.NICType
	// ModelSpec is a transformer architecture plus training shape.
	ModelSpec = model.Spec
	// TrainingPlan is a concrete Holmes scheduling decision with its
	// simulated performance report.
	TrainingPlan = core.Plan
	// Report carries TFLOPS / throughput / iteration time of a simulation.
	Report = trainer.Report
	// Framework selects a behaviour profile (Holmes, Megatron-LM, ...).
	Framework = trainer.Framework
	// Options are the mechanism knobs of a framework profile.
	Options = trainer.Options
	// ExperimentRow is one paper-vs-measured result row.
	ExperimentRow = experiments.Row
	// Engine owns the shared execution resources: the communicator LRU
	// cache, the bounded worker pool, and the netsim knobs. Immutable
	// after construction and safe for any number of goroutines.
	Engine = engine.Engine
	// EngineConfig fixes an Engine's behaviour at construction.
	EngineConfig = engine.Config
	// SearchStats counts joint-search work: cells simulated, pruned by
	// the admissible bound, aborted mid-simulation (branch-and-bound),
	// and whole searches answered from the winner memo.
	SearchStats = engine.SearchStats
	// ServePool is the serving layer over engine shards: requests hash to
	// the shard owning their topology fingerprint, admission is bounded
	// (shed load answers 429), and identical deterministic requests are
	// coalesced in flight and replayed from a response cache afterwards.
	ServePool = serve.Pool
	// ServeConfig fixes a ServePool's shape at construction.
	ServeConfig = serve.Config
	// Scenario is a time-scripted timeline of cluster events (degraded
	// NICs, failed nodes, background traffic, joining nodes) applied to
	// a simulation's fabric and folded into replanning decisions.
	Scenario = scenario.Scenario
	// ScenarioEvent is one scripted occurrence of a Scenario.
	ScenarioEvent = scenario.Event
	// ReplanReport compares the pre-fault plan, its performance under a
	// scenario, and the replanned configuration on the effective topology.
	ReplanReport = core.Replan
	// FleetTrace is a replayable multi-job workload over one shared fleet
	// topology: the fleet spec, an optional scenario, and arriving jobs.
	FleetTrace = fleet.Trace
	// FleetSpec names the shared fleet topology of a trace (env/nodes
	// shorthand or explicit clusters).
	FleetSpec = fleet.Spec
	// FleetJob is one training job contending for the fleet.
	FleetJob = fleet.Job
	// FleetModel picks a fleet job's model: a Table-2 parameter group or
	// an explicit architecture (the serve API's model schema).
	FleetModel = config.ModelConfig
	// FleetSchedule is the deterministic outcome of replaying a trace:
	// per-job placements, makespan, utilization.
	FleetSchedule = fleet.Schedule
	// FleetPlacement is one job's slot in a fleet schedule.
	FleetPlacement = fleet.Placement
	// FleetManager is the concurrent fleet front end the serve API uses:
	// submit, poll, and cancel jobs; every observer reads the
	// deterministic schedule of the live job set.
	FleetManager = fleet.Manager
	// FleetOperator is the always-on face of one fleet: a FleetManager
	// driven by a wall clock and backed by an fsync'd mutation journal,
	// so a restarted process recovers its fleet and resumes scheduling
	// bit-identically to a process that never died.
	FleetOperator = fleet.Operator
	// FleetOperatorConfig configures NewFleetOperator (journal path,
	// clock, policy, snapshot cadence).
	FleetOperatorConfig = fleet.OperatorConfig
	// FleetClock abstracts wall time for the operator: the real
	// monotonic clock in production, fleet.NewFakeClock in tests.
	FleetClock = fleet.Clock
	// FleetJobStatus is one job's operator-eye view: placement plus
	// wall-clock state (queued / running / done / unplaced).
	FleetJobStatus = fleet.JobStatus
	// EventHub is the bounded pub/sub hub behind GET /v1/events: the
	// operator publishes job transitions, scenario edges, and policy
	// changes into it strictly after the journal fsync, and slow
	// subscribers are evicted rather than ever blocking a publisher.
	EventHub = events.Hub
	// Event is one fact on the hub: a sequenced, wall-stamped job /
	// scenario / policy / retire occurrence.
	Event = events.Event
	// EventSubscriber is one bounded subscription to an EventHub.
	EventSubscriber = events.Subscriber
)

// NIC technologies.
const (
	InfiniBand = topology.InfiniBand
	RoCE       = topology.RoCE
	Ethernet   = topology.Ethernet
)

// Framework profiles.
const (
	FrameworkHolmes            = trainer.Holmes
	FrameworkMegatronLM        = trainer.MegatronLM
	FrameworkMegatronDeepSpeed = trainer.MegatronDeepSpeed
	FrameworkMegatronLLaMA     = trainer.MegatronLLaMA
)

// IB builds a homogeneous InfiniBand cluster of n nodes (8 GPUs each).
func IB(n int) *Topology { return topology.IBEnv(n) }

// RoCECluster builds a homogeneous RoCE cluster of n nodes.
func RoCECluster(n int) *Topology { return topology.RoCEEnv(n) }

// EthernetCluster builds a commodity Ethernet-only cluster of n nodes.
func EthernetCluster(n int) *Topology { return topology.EthernetEnv(n) }

// Hybrid builds the paper's hybrid environment: n/2 InfiniBand nodes plus
// n/2 RoCE nodes joined only by Ethernet (n must be even).
func Hybrid(n int) *Topology { return topology.HybridEnv(n) }

// BuildTopology assembles an arbitrary multi-cluster topology.
func BuildTopology(clusters ...ClusterSpec) (*Topology, error) {
	return topology.Build(topology.Spec{Clusters: clusters})
}

// ParameterGroup returns Table 2's parameter group id (1–4).
func ParameterGroup(id int) ModelSpec { return model.Group(id).Spec }

// GPT39B returns the 39.1-billion-parameter scalability model (Figure 7).
func GPT39B(globalBatch int) ModelSpec { return model.GPT39B(globalBatch) }

// NewEngine constructs an isolated engine. Zero config fields take
// defaults (CPU-count concurrency, 512-entry cache, incremental netsim).
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// DefaultEngine returns the shared process-wide engine the engine-less
// entry points (Plan, AutoPlan, RunExperiment, ...) delegate to.
func DefaultEngine() *Engine { return engine.Default() }

// NewServePool constructs the sharded serving layer cmd/holmes-serve
// runs on (see ServePool). Zero config fields take defaults: one shard,
// max(8, 2×CPU) admitted requests with an 8× queue, a 4096-entry
// response cache.
func NewServePool(cfg ServeConfig) *ServePool { return serve.New(cfg) }

// Plan builds a Holmes training plan for the topology with tensor degree
// t and pipeline degree p, simulating one iteration for its report.
func Plan(topo *Topology, spec ModelSpec, t, p int) (*TrainingPlan, error) {
	return PlanOn(nil, topo, spec, t, p)
}

// PlanOn is Plan on an explicit engine (nil = the shared default).
func PlanOn(eng *Engine, topo *Topology, spec ModelSpec, t, p int) (*TrainingPlan, error) {
	pl, err := core.NewPlannerOn(eng, topo, spec)
	if err != nil {
		return nil, err
	}
	return pl.Plan(t, p)
}

// PlanWith is Plan under a specific framework profile and option set
// (opt may be nil for the profile defaults).
func PlanWith(topo *Topology, spec ModelSpec, t, p int, fw Framework, opt *Options) (*TrainingPlan, error) {
	pl, err := core.NewPlanner(topo, spec)
	if err != nil {
		return nil, err
	}
	pl.Framework = fw
	pl.Opt = opt
	return pl.Plan(t, p)
}

// AutoPlan searches the pipeline degree for the best plan at tensor
// degree t.
func AutoPlan(topo *Topology, spec ModelSpec, t int) (*TrainingPlan, error) {
	return AutoPlanOn(nil, topo, spec, t)
}

// AutoPlanOn is AutoPlan on an explicit engine (nil = the shared
// default).
func AutoPlanOn(eng *Engine, topo *Topology, spec ModelSpec, t int) (*TrainingPlan, error) {
	pl, err := core.NewPlannerOn(eng, topo, spec)
	if err != nil {
		return nil, err
	}
	return pl.SearchPipeline(t)
}

// SearchPlan searches tensor and pipeline degrees jointly over every
// feasible (t, p) cell and returns the best plan, deterministically (the
// winner never depends on pool scheduling).
func SearchPlan(topo *Topology, spec ModelSpec) (*TrainingPlan, error) {
	return SearchPlanOn(nil, topo, spec)
}

// SearchPlanOn is SearchPlan on an explicit engine (nil = the shared
// default).
func SearchPlanOn(eng *Engine, topo *Topology, spec ModelSpec) (*TrainingPlan, error) {
	pl, err := core.NewPlannerOn(eng, topo, spec)
	if err != nil {
		return nil, err
	}
	return pl.SearchPlan()
}

// Simulate runs one training iteration of the given framework and
// returns its performance report.
func Simulate(topo *Topology, spec ModelSpec, t, p int, fw Framework) (Report, error) {
	return trainer.Simulate(trainer.Config{
		Topo: topo, Spec: spec, TensorSize: t, PipelineSize: p, Framework: fw,
	})
}

// SimulateUnder is Simulate with a scripted scenario bound to the fabric:
// the report measures the iteration under the timeline's events. A nil or
// empty scenario is bit-identical to Simulate.
func SimulateUnder(topo *Topology, spec ModelSpec, t, p int, fw Framework, sc *Scenario) (Report, error) {
	return trainer.Simulate(trainer.Config{
		Topo: topo, Spec: spec, TensorSize: t, PipelineSize: p, Framework: fw,
		Scenario: sc,
	})
}

// LoadScenario parses and validates a scenario JSON file.
func LoadScenario(path string) (*Scenario, error) { return scenario.LoadFile(path) }

// Replan reacts to a scenario: it searches the best plan on the pristine
// topology, measures that plan under the scenario, and re-runs the joint
// (t, p) search on the post-event effective topology (failed nodes
// excluded, degraded NICs at reduced rate, joined nodes added).
func Replan(topo *Topology, spec ModelSpec, sc *Scenario) (*ReplanReport, error) {
	return ReplanOn(nil, topo, spec, sc)
}

// ReplanOn is Replan on an explicit engine (nil = the shared default).
func ReplanOn(eng *Engine, topo *Topology, spec ModelSpec, sc *Scenario) (*ReplanReport, error) {
	pl, err := core.NewPlannerOn(eng, topo, spec)
	if err != nil {
		return nil, err
	}
	return pl.ReplanOn(sc, math.Inf(1))
}

// ReplayFleet schedules a multi-job trace over its shared fleet
// topology: NIC-affine carved slices, engine-backed joint (t, p) plan
// search per slice, FIFO + backfill with deterministic tie-breaking.
// The same trace always produces the identical schedule.
func ReplayFleet(tr *FleetTrace) (*FleetSchedule, error) { return ReplayFleetOn(nil, tr) }

// ReplayFleetOn is ReplayFleet on an explicit engine (nil = the shared
// default).
func ReplayFleetOn(eng *Engine, tr *FleetTrace) (*FleetSchedule, error) {
	return fleet.Replay(eng, tr)
}

// LoadFleetTrace parses and validates a fleet trace JSON file.
func LoadFleetTrace(path string) (*FleetTrace, error) {
	tr, err := fleet.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// NewFleetManager builds the concurrent fleet front end over one shared
// topology (nil engine = the shared default) — submit/poll/cancel from
// any number of goroutines, deterministic schedule at every instant.
func NewFleetManager(eng *Engine, topo *Topology) (*FleetManager, error) {
	return fleet.NewManager(eng, topo)
}

// NewFleetOperator opens (or recovers) the durable always-on fleet at
// cfg.Journal: submits are stamped with wall time, finished work is
// retired at idle barriers, and every mutation is journaled so a
// restart resumes the fleet bit-identically (nil engine = the shared
// default).
func NewFleetOperator(eng *Engine, spec FleetSpec, cfg FleetOperatorConfig) (*FleetOperator, error) {
	return fleet.NewOperator(eng, spec, cfg)
}

// FleetPolicies lists the scheduling policies a fleet can run under
// (fifo, priority, edf, fair).
func FleetPolicies() []string { return fleet.PolicyNames() }

// NewEventHub builds the bounded pub/sub hub an operator publishes
// into (pass it as FleetOperatorConfig.Events, or let the serve API
// own one and stream it at GET /v1/events).
func NewEventHub() *EventHub { return events.NewHub() }

// RunExperiment regenerates a paper table or figure by id: "table1",
// "table3", "table4", "fig4", "fig5", "fig6", "fig7", plus the
// beyond-paper "scenarios" and "fleet" grids.
func RunExperiment(id string) ([]ExperimentRow, error) {
	return RunExperimentOn(nil, id)
}

// RunExperimentOn is RunExperiment on an explicit engine (nil = the
// shared default).
func RunExperimentOn(eng *Engine, id string) ([]ExperimentRow, error) {
	return experiments.NewSuite(eng).Run(id)
}

// Experiments lists the experiment ids in paper order.
func Experiments() []string { return append([]string(nil), experiments.Names...) }

// DefaultOptions returns a framework's profile for customization.
func DefaultOptions(fw Framework) Options { return trainer.DefaultOptions(fw) }

// Version identifies the reproduction release.
const Version = "1.4.0"

// Describe renders a short summary of a topology (clusters, NICs, GPUs).
func Describe(topo *Topology) string {
	if topo == nil {
		return "<nil topology>"
	}
	return fmt.Sprint(topo)
}
