// Quickstart: plan and simulate training a GPT-3.6B model on a small
// hybrid deployment — one InfiniBand cluster plus one RoCE cluster joined
// by Ethernet — and compare against naively treating the machines as one
// Ethernet pool.
package main

import (
	"fmt"
	"log"

	"holmes"
)

func main() {
	// Two clusters that cannot share an RDMA fabric.
	topo := holmes.Hybrid(4) // 2 InfiniBand nodes + 2 RoCE nodes
	spec := holmes.ParameterGroup(1)
	fmt.Print(holmes.Describe(topo))
	fmt.Println(spec)

	// Holmes: pipeline across clusters, data parallelism on each RDMA
	// fabric, self-adapting partition, overlapped optimizer.
	plan, err := holmes.Plan(topo, spec, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- Holmes plan ---")
	fmt.Print(plan.Describe())

	// The traditional alternative: one unified communication environment,
	// which collapses to Ethernet because IB and RoCE are incompatible.
	lm, err := holmes.Simulate(topo, spec, 1, 2, holmes.FrameworkMegatronLM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- Megatron-LM on the same machines ---")
	fmt.Printf("%.1f TFLOPS/GPU, %.2f samples/s\n", lm.TFLOPS, lm.Throughput)

	fmt.Printf("\nHolmes speedup: %.2fx\n", plan.Report.Throughput/lm.Throughput)
}
