// Fleet scheduling: many jobs contending for one shared
// heterogeneous-NIC topology. Three jobs arrive on a 4-node hybrid
// fleet (2 InfiniBand + 2 RoCE nodes); the scheduler carves NIC-affine
// slices, plans each job with the joint (t, p) search, backfills around
// the blocked queue head, and — when a node fails mid-run — evicts and
// requeues exactly the jobs that lost capacity.
package main

import (
	"fmt"
	"log"

	"holmes"
)

func main() {
	tr := &holmes.FleetTrace{
		Name:  "example",
		Fleet: holmes.FleetSpec{Env: "Hybrid", Nodes: 4},
		Jobs: []holmes.FleetJob{
			// Two half-fleet jobs that run side by side...
			{ID: "gpt36-a", GPUs: 16, Iterations: 3, Model: holmes.FleetModel{Group: 1}},
			{ID: "gpt36-b", GPUs: 16, Iterations: 2, Model: holmes.FleetModel{Group: 2}},
			// ...and a 3-node job that must wait for capacity.
			{ID: "gpt75", Submit: 1, GPUs: 24, Iterations: 1, Model: holmes.FleetModel{Group: 3}},
		},
	}
	sched, err := holmes.ReplayFleet(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pristine fleet (%d GPUs):\n", sched.GPUs)
	show(sched)

	// The same trace with node 0 failing mid-run: only the job holding
	// node 0 is evicted and requeued onto surviving capacity.
	tr.Scenario = &holmes.Scenario{
		Name: "node0-down",
		Events: []holmes.ScenarioEvent{
			{Kind: "fail_node", At: sched.Jobs[0].IterSeconds * 1.5, Node: 0},
		},
	}
	faulted, err := holmes.ReplayFleet(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a mid-run node failure:\n")
	show(faulted)
	fmt.Printf("\nmakespan %.1fs -> %.1fs; the fleet absorbed the failure without\ntouching the unaffected jobs.\n",
		sched.Makespan, faulted.Makespan)
}

func show(sched *holmes.FleetSchedule) {
	for _, p := range sched.Jobs {
		if p.Unplaced != "" {
			fmt.Printf("  %-8s UNPLACED: %s\n", p.JobID, p.Unplaced)
			continue
		}
		note := ""
		if p.Backfilled {
			note = " (backfilled)"
		}
		if p.Evictions > 0 {
			note = fmt.Sprintf(" (evicted %dx, recovery %.0fx)", p.Evictions, p.Recovery)
		}
		fmt.Printf("  %-8s nodes %v  t=%d p=%d  %7.2f -> %7.2fs  %6.1f samples/s%s\n",
			p.JobID, p.Nodes, p.Degrees.Tensor, p.Degrees.Pipeline,
			p.Start, p.Finish, p.Throughput, note)
	}
	fmt.Printf("  makespan %.1fs, utilization %.0f%%\n", sched.Makespan, 100*sched.Utilization)
}
