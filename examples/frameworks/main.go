// Framework comparison: the Figure 6 experiment as a library user would
// run it — GPT-7.5B on 8 hybrid nodes under four training-framework
// behaviour profiles, plus the Figure 7 scaling sweep.
package main

import (
	"fmt"
	"log"

	"holmes"
)

func main() {
	topo := holmes.Hybrid(8)
	spec := holmes.ParameterGroup(3)
	fmt.Print(holmes.Describe(topo))
	fmt.Println(spec)

	fmt.Printf("\n%-22s %10s %12s\n", "framework", "TFLOPS", "samples/s")
	frameworks := []holmes.Framework{
		holmes.FrameworkMegatronDeepSpeed,
		holmes.FrameworkMegatronLM,
		holmes.FrameworkMegatronLLaMA,
		holmes.FrameworkHolmes,
	}
	var holmesThpt, lmThpt float64
	for _, fw := range frameworks {
		rep, err := holmes.Simulate(topo, spec, 1, 4, fw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.1f %12.2f\n", fw, rep.TFLOPS, rep.Throughput)
		switch fw {
		case holmes.FrameworkHolmes:
			holmesThpt = rep.Throughput
		case holmes.FrameworkMegatronLM:
			lmThpt = rep.Throughput
		}
	}
	fmt.Printf("\nHolmes over Megatron-LM: %.2fx (paper: ~1.4x)\n", holmesThpt/lmThpt)

	// Scaling sweep (Figure 7's shape) on the 39.1B model.
	fmt.Printf("\nscaling GPT-39.1B:\n%-8s %12s\n", "nodes", "samples/s")
	big := holmes.GPT39B(1536)
	for _, nodes := range []int{4, 8, 12} {
		rep, err := holmes.Simulate(holmes.Hybrid(nodes), big, 1, 4, holmes.FrameworkHolmes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %12.2f\n", nodes, rep.Throughput)
	}
}
