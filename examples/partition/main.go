// Partition study: how the Self-Adapting Pipeline Partition (Eq. 4–5)
// divides layers as the α hyper-parameter sweeps, and what each division
// costs end to end — the mechanism behind Figure 5.
package main

import (
	"fmt"
	"log"

	"holmes"
)

func main() {
	topo := holmes.Hybrid(8)
	spec := holmes.ParameterGroup(1) // 30 layers, pipeline size 2
	fmt.Print(holmes.Describe(topo))
	fmt.Println(spec)

	// Uniform baseline.
	uni := holmes.DefaultOptions(holmes.FrameworkHolmes)
	uni.SelfAdaptingPartition = false
	base, err := holmes.PlanWith(topo, spec, 1, 2, holmes.FrameworkHolmes, &uni)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s %-22s %10s %12s\n", "alpha", "partition", "TFLOPS", "samples/s")
	fmt.Printf("%-12s %-22s %10.1f %12.2f\n", "uniform", base.Partition.String(),
		base.Report.TFLOPS, base.Report.Throughput)

	// α sweep around the paper's 1.05.
	for _, alpha := range []float64{0.95, 1.00, 1.05, 1.10, 1.20} {
		opt := holmes.DefaultOptions(holmes.FrameworkHolmes)
		opt.Alpha = alpha
		plan, err := holmes.PlanWith(topo, spec, 1, 2, holmes.FrameworkHolmes, &opt)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if alpha == 1.05 {
			marker = "  <- paper setting"
		}
		fmt.Printf("%-12.2f %-22s %10.1f %12.2f%s\n", alpha, plan.Partition.String(),
			plan.Report.TFLOPS, plan.Report.Throughput, marker)
	}
}
