// Faults: the aging-cluster story the paper motivates but defers
// (§1, Limitations). A hybrid deployment trains happily until a NIC
// degrades, a tenant floods the inter-cluster Ethernet, and finally a
// node drops off the fabric — each scripted as a scenario timeline on
// the simulated clock. The last act is fault-aware replanning: Holmes
// re-runs its joint (t, p) search on the post-failure effective topology
// and recovers most of the lost throughput instead of crawling at the
// failed fabric's residual rate.
package main

import (
	"fmt"
	"log"

	"holmes"
)

func main() {
	topo := holmes.Hybrid(4) // 2 InfiniBand nodes + 2 RoCE nodes
	spec := holmes.ParameterGroup(1)
	fmt.Print(holmes.Describe(topo))
	fmt.Println(spec)

	run := func(label string, sc *holmes.Scenario) holmes.Report {
		rep, err := holmes.SimulateUnder(topo, spec, 1, 2, holmes.FrameworkHolmes, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s iteration %12.3fs   %8.2f samples/s\n", label, rep.IterSeconds, rep.Throughput)
		return rep
	}

	fmt.Printf("\n--- one iteration under increasingly hostile scenarios ---\n")
	healthy := run("pristine fabric", nil)

	run("node 0 RDMA at 5%", &holmes.Scenario{
		Name: "nic-degrade",
		Events: []holmes.ScenarioEvent{
			{Kind: "degrade_nic", At: 0, Node: 0, Class: "RDMA", Factor: 0.05},
		},
	})

	run("20 Gb/s tenant on the trunk", &holmes.Scenario{
		Name: "background-traffic",
		Events: []holmes.ScenarioEvent{
			{Kind: "background_traffic", At: 0, Src: 1, Dst: 2, Class: "Ether", Gbps: 20},
		},
	})

	failure := &holmes.Scenario{
		Name: "node-failure",
		Events: []holmes.ScenarioEvent{
			{Kind: "fail_node", At: 0, Node: 0},
		},
	}
	failed := run("node 0 off the fabric", failure)
	fmt.Printf("\nthe old plan under the failure runs %.0fx slower than healthy —\n"+
		"flows through node 0 crawl at the failed link's residual rate.\n",
		failed.IterSeconds/healthy.IterSeconds)

	fmt.Printf("\n--- fault-aware replanning ---\n")
	replan, err := holmes.Replan(topo, spec, failure)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(replan.Describe())
	fmt.Printf("\nthe replanned job runs on %d surviving node(s) without node %v.\n",
		replan.EffectiveTopo.NumNodes(), replan.ExcludedNodes)
}
