// Cross-cluster scale-out: the paper's motivating scenario. An
// organization owns three aging clusters — InfiniBand, RoCE, and a
// commodity Ethernet pool — none big enough alone for a 7.5B-parameter
// model at the desired batch size. Holmes joins them without any
// re-cabling by pipelining across clusters and searching the pipeline
// degree.
package main

import (
	"fmt"
	"log"

	"holmes"
)

func main() {
	topo, err := holmes.BuildTopology(
		holmes.ClusterSpec{Name: "hq-ib", NIC: holmes.InfiniBand, Nodes: 4},
		holmes.ClusterSpec{Name: "lab-roce", NIC: holmes.RoCE, Nodes: 2},
		holmes.ClusterSpec{Name: "legacy-eth", NIC: holmes.Ethernet, Nodes: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(holmes.Describe(topo))

	spec := holmes.ParameterGroup(3) // GPT-7.5B
	fmt.Println(spec)

	// Let the planner pick the pipeline degree for this 64-GPU federation.
	plan, err := holmes.AutoPlan(topo, spec, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- best plan found ---")
	fmt.Print(plan.Describe())

	// What each individual cluster could do alone (same model, pipeline
	// within the cluster where it fits).
	fmt.Println("\n--- individual clusters for comparison ---")
	for _, alone := range []struct {
		name string
		topo *holmes.Topology
		t, p int
	}{
		{"hq-ib alone (4 nodes)", holmes.IB(4), 1, 4},
		{"lab-roce alone (2 nodes)", holmes.RoCECluster(2), 1, 2},
	} {
		rep, err := holmes.Simulate(alone.topo, spec, alone.t, alone.p, holmes.FrameworkHolmes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %.1f TFLOPS/GPU  %.2f samples/s\n", alone.name, rep.TFLOPS, rep.Throughput)
	}
	fmt.Printf("%-26s %.1f TFLOPS/GPU  %.2f samples/s\n",
		"federated (8 nodes)", plan.Report.TFLOPS, plan.Report.Throughput)
}
