// Benchmark harness: one testing.B benchmark per paper table and figure,
// plus ablation benches for the design choices DESIGN.md calls out. Each
// benchmark regenerates its experiment on the simulated substrate and
// reports the headline metric through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation end to end (see EXPERIMENTS.md for
// paper-vs-measured).
package holmes

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"testing"

	"holmes/internal/api"
	"holmes/internal/experiments"
	"holmes/internal/loadgen"
	"holmes/internal/model"
	"holmes/internal/scenario"
	"holmes/internal/serve"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

func reportRows(b *testing.B, rows []ExperimentRow) {
	b.Helper()
	for _, r := range rows {
		b.Logf("%-24s %8.1f TFLOPS %10.2f samples/s (paper: %.0f / %.2f)  %s",
			r.Label, r.TFLOPS, r.Throughput, r.PaperTFLOPS, r.PaperThroughput, r.Partition)
	}
}

func benchExperiment(b *testing.B, id string) []ExperimentRow {
	b.Helper()
	suite := experiments.NewSuite(nil)
	var rows []ExperimentRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = suite.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
	return rows
}

// BenchmarkTable1 regenerates Table 1: GPT-3.6B on 4 nodes across
// InfiniBand / RoCE / Ethernet (+ the Hybrid cell).
func BenchmarkTable1(b *testing.B) {
	rows := benchExperiment(b, "table1")
	b.ReportMetric(rows[0].TFLOPS, "IB-TFLOPS")
}

// BenchmarkTable3 regenerates the full Table 3 grid: 4 parameter groups ×
// 4 environments × {4,6,8} nodes (48 simulations per iteration).
func BenchmarkTable3(b *testing.B) {
	rows := benchExperiment(b, "table3")
	b.ReportMetric(float64(len(rows)), "cells")
}

// BenchmarkFigure4 regenerates the grads-reduce-scatter comparison.
func BenchmarkFigure4(b *testing.B) {
	rows := benchExperiment(b, "fig4")
	for _, r := range rows {
		b.Logf("%-24s %10.1f ms", r.Label, r.ReduceScatterMs)
	}
}

// BenchmarkFigure5 regenerates the self-adapting vs uniform partition
// comparison.
func BenchmarkFigure5(b *testing.B) {
	rows := benchExperiment(b, "fig5")
	b.ReportMetric(rows[0].TFLOPS-rows[1].TFLOPS, "PG1-SA-gain-TFLOPS")
}

// BenchmarkFigure6 regenerates the framework comparison (PG3, 8 hybrid
// nodes).
func BenchmarkFigure6(b *testing.B) {
	rows := benchExperiment(b, "fig6")
	b.ReportMetric(rows[len(rows)-1].Throughput, "Holmes-samples/s")
}

// BenchmarkFigure7 regenerates the 39.1B scalability study (4/8/12
// nodes).
func BenchmarkFigure7(b *testing.B) {
	rows := benchExperiment(b, "fig7")
	for _, r := range rows {
		if r.PaperThroughput > 0 {
			b.Logf("%-20s %8.2f samples/s (paper %.2f)", r.Label, r.Throughput, r.PaperThroughput)
		}
	}
}

// BenchmarkTable4 regenerates the component ablation.
func BenchmarkTable4(b *testing.B) {
	rows := benchExperiment(b, "table4")
	b.ReportMetric(rows[1].TFLOPS, "Holmes-TFLOPS")
}

// BenchmarkScenarioImpaired times one PG3 hybrid iteration under the
// scenario grid's impairment arm (straggler + loss + delay + seeded
// jitter on node 0): the cost of the per-flow impairment fold — jitter
// draws, latency stacking, efficiency derating — on top of a plain
// simulation. Gated against BENCH_baseline.json in CI.
func BenchmarkScenarioImpaired(b *testing.B) {
	topo := topology.HybridEnv(8)
	spec := model.Group(3).Spec
	var sc *scenario.Scenario
	for _, v := range experiments.ScenarioVariants {
		if v.Name == "impaired" {
			sc = v
		}
	}
	if sc == nil {
		b.Fatal("scenario grid lost its impaired arm")
	}
	var rep trainer.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = trainer.Simulate(trainer.Config{
			Topo: topo, Spec: spec, TensorSize: 1, PipelineSize: 4,
			Framework: trainer.Holmes, Scenario: sc,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.TFLOPS, "TFLOPS")
}

// --- Ablation benches beyond the paper ---

// BenchmarkAblationAlpha sweeps the self-adapting partition's α
// hyper-parameter around the paper's 1.05.
func BenchmarkAblationAlpha(b *testing.B) {
	topo := topology.HybridEnv(8)
	spec := model.Group(1).Spec
	for _, alpha := range []float64{0.95, 1.05, 1.15} {
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			opt := trainer.DefaultOptions(trainer.Holmes)
			opt.Alpha = alpha
			var rep trainer.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = trainer.Simulate(trainer.Config{
					Topo: topo, Spec: spec, TensorSize: 1, PipelineSize: 2,
					Framework: trainer.Holmes, Opt: &opt,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.TFLOPS, "TFLOPS")
		})
	}
}

// BenchmarkAblationSchedule compares 1F1B against GPipe on the hybrid
// environment.
func BenchmarkAblationSchedule(b *testing.B) {
	topo := topology.HybridEnv(4)
	spec := model.Group(1).Spec
	for _, gpipe := range []bool{false, true} {
		name := "1F1B"
		if gpipe {
			name = "GPipe"
		}
		b.Run(name, func(b *testing.B) {
			opt := trainer.DefaultOptions(trainer.Holmes)
			opt.GPipeSchedule = gpipe
			var rep trainer.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = trainer.Simulate(trainer.Config{
					Topo: topo, Spec: spec, TensorSize: 1, PipelineSize: 2,
					Framework: trainer.Holmes, Opt: &opt,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.TFLOPS, "TFLOPS")
		})
	}
}

// BenchmarkAblationNICCount isolates the IB-4-NICs vs RoCE-2-NICs
// asymmetry (DESIGN.md decision 1): a RoCE cluster with 4 NICs per node
// closes part of the gap to InfiniBand.
func BenchmarkAblationNICCount(b *testing.B) {
	spec := model.Group(1).Spec
	base := trainer.BaseOptions()
	for _, tc := range []struct {
		name string
		nics int
	}{{"RoCE-2NICs", 2}, {"RoCE-4NICs", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			topo := topology.MustBuild(topology.Spec{Clusters: []topology.ClusterSpec{
				{NIC: topology.RoCE, Nodes: 4, NICsPerNode: tc.nics},
			}})
			var rep trainer.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = trainer.Simulate(trainer.Config{
					Topo: topo, Spec: spec, TensorSize: 1, PipelineSize: 2,
					Framework: trainer.Holmes, Opt: &base,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.TFLOPS, "TFLOPS")
		})
	}
}

// BenchmarkAblationOverlap isolates the overlapped distributed optimizer
// on the slowest fabric, where it matters most.
func BenchmarkAblationOverlap(b *testing.B) {
	topo := topology.EthernetEnv(4)
	spec := model.Group(1).Spec
	for _, overlap := range []bool{false, true} {
		name := "serial"
		if overlap {
			name = "overlapped"
		}
		b.Run(name, func(b *testing.B) {
			opt := trainer.BaseOptions()
			opt.OverlappedOptimizer = overlap
			var rep trainer.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = trainer.Simulate(trainer.Config{
					Topo: topo, Spec: spec, TensorSize: 1, PipelineSize: 2,
					Framework: trainer.Holmes, Opt: &opt,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.TFLOPS, "TFLOPS")
		})
	}
}

// BenchmarkPlanBatch measures the serving layer end to end: one
// 32-item /v1/plan/batch request (distinct Table-3 cells) against a
// 4-shard in-process server, decoded envelope to encoded response. This
// is the ns/op the CI perf gate holds against BENCH_serve.json.
func BenchmarkPlanBatch(b *testing.B) {
	pool := serve.New(serve.Config{Shards: 4})
	handler := api.NewServerPool(pool).Handler()
	body := []byte(loadgen.BatchBody(32, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/plan/batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(32, "plans/req")
}

// BenchmarkFleetSchedule measures the fleet scheduler end to end: one
// replay of the canonical 12-job trace (10-node IB/RoCE/Ethernet fleet,
// mid-run node failure, degrade, restore) — carve, score, place,
// evict, requeue — on one engine. This is the ns/op the CI perf gate
// holds against BENCH_fleet.json.
func BenchmarkFleetSchedule(b *testing.B) {
	tr, err := LoadFleetTrace("internal/fleet/testdata/fleet12.json")
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(EngineConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	var sched *FleetSchedule
	for i := 0; i < b.N; i++ {
		sched, err = ReplayFleetOn(eng, tr)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(sched.Jobs)), "jobs")
	b.ReportMetric(sched.Makespan, "makespan-s")
	b.ReportMetric(100*sched.Utilization, "util-%")
}

// BenchmarkFleetScheduleWarm measures the same 12-job replay against a
// pre-warmed engine: every slice plan comes from the engine-shared plan
// cache, isolating the scheduler's own bookkeeping (carve, fingerprint,
// queue, clock) from the joint-search cost that dominates the cold run.
// This is the steady-state cost a long-lived server pays per /v1/jobs
// schedule poll with a hot cache.
func BenchmarkFleetScheduleWarm(b *testing.B) {
	tr, err := LoadFleetTrace("internal/fleet/testdata/fleet12.json")
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(EngineConfig{})
	if _, err := ReplayFleetOn(eng, tr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sched *FleetSchedule
	for i := 0; i < b.N; i++ {
		sched, err = ReplayFleetOn(eng, tr)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(sched.Jobs)), "jobs")
	b.ReportMetric(sched.Makespan, "makespan-s")
}

// BenchmarkFleetMutate measures the incremental rescheduling path: a
// live FleetManager under submit / fail_node / restore / cancel churn,
// with a schedule poll after every mutation. Each mutation invalidates
// only the replay suffix after its change point, so a poll resumes from
// the newest surviving checkpoint instead of replaying from virtual
// time zero — the hot path of /v1/jobs under load.
func BenchmarkFleetMutate(b *testing.B) {
	tr, err := LoadFleetTrace("internal/fleet/testdata/fleet12.json")
	if err != nil {
		b.Fatal(err)
	}
	topo, err := tr.Fleet.Topology()
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(EngineConfig{})
	m, err := NewFleetManager(eng, topo)
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := m.Submit(j); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := m.Schedule(); err != nil {
		b.Fatal(err)
	}
	poll := func() {
		if _, err := m.Schedule(); err != nil {
			b.Fatal(err)
		}
	}
	churn := FleetJob{ID: "churn", Submit: 40, GPUs: topo.GPUsPerNode, Model: FleetModel{Group: 1}}
	fail := &Scenario{Events: []ScenarioEvent{
		{Kind: "fail_node", At: 45, Node: 1},
		{Kind: "restore_node", At: 60, Node: 1},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Submit(churn); err != nil {
			b.Fatal(err)
		}
		poll()
		if err := m.SetScenario(fail); err != nil {
			b.Fatal(err)
		}
		poll()
		if err := m.SetScenario(nil); err != nil {
			b.Fatal(err)
		}
		poll()
		if !m.Cancel(churn.ID) {
			b.Fatal("cancel failed")
		}
		poll()
	}
	b.ReportMetric(4, "polls/op")
}

// BenchmarkPlannerSearch measures the pipeline-degree search itself.
func BenchmarkPlannerSearch(b *testing.B) {
	topo := topology.HybridEnv(4)
	for i := 0; i < b.N; i++ {
		if _, err := AutoPlan(topo, ParameterGroup(1), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// searchColdCorpus is the Table-3 grid as joint-search inputs: every
// environment × node count × parameter group the paper evaluates.
func searchColdCorpus(b *testing.B) []*Topology {
	b.Helper()
	var topos []*Topology
	for _, env := range []func(int) *Topology{IB, RoCECluster, EthernetCluster, Hybrid} {
		for _, nodes := range []int{4, 6, 8} {
			topos = append(topos, env(nodes))
		}
	}
	return topos
}

// runSearchCorpus runs the full joint (t, p) search for all four
// parameter groups on every corpus topology against one engine.
func runSearchCorpus(b *testing.B, eng *Engine, topos []*Topology) {
	b.Helper()
	for _, topo := range topos {
		for group := 1; group <= 4; group++ {
			if _, err := SearchPlanOn(eng, topo, ParameterGroup(group)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSearchCold measures the cold joint-search path over the whole
// Table-3 corpus (48 searches per iteration) on a fresh engine each
// iteration — no winner memo, no warm communicator cache across
// iterations. This is the bound-pruned, branch-and-bound search the
// tentpole introduced, and the ns/op the CI perf gate holds against
// BENCH_coldpath.json; BenchmarkSearchColdExhaustive below is the
// unpruned reference the ≥3× claim is measured against.
func BenchmarkSearchCold(b *testing.B) {
	topos := searchColdCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	var st SearchStats
	for i := 0; i < b.N; i++ {
		eng := NewEngine(EngineConfig{})
		runSearchCorpus(b, eng, topos)
		st = eng.SearchStats()
	}
	b.ReportMetric(float64(st.Simulated), "simulated/op")
	b.ReportMetric(float64(st.Pruned), "pruned/op")
	b.ReportMetric(float64(st.Aborted), "aborted/op")
}

// BenchmarkSearchColdExhaustive is the same corpus through the
// exhaustive oracle (engine-level FullRecompute): every candidate cell
// event-simulated to completion. Not CI-gated — it exists as the
// denominator of the cold-path speedup recorded in BENCH_coldpath.json.
func BenchmarkSearchColdExhaustive(b *testing.B) {
	topos := searchColdCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	var st SearchStats
	for i := 0; i < b.N; i++ {
		eng := NewEngine(EngineConfig{FullRecompute: true})
		runSearchCorpus(b, eng, topos)
		st = eng.SearchStats()
	}
	b.ReportMetric(float64(st.Simulated), "simulated/op")
}

// BenchmarkWarmBoot measures a snapshot warm start end to end: a fresh
// pool + server loads a snapshot recorded by a server that answered the
// Table-3 corpus, then answers the same corpus. Every request must come
// out of the restored response cache (the ≥90% hit floor from ROADMAP
// item 3); the measured ns/op is the whole boot-and-serve cycle, which
// is what a rolling restart pays before it is hot.
func BenchmarkWarmBoot(b *testing.B) {
	corpus := loadgen.PlanBodies()
	corpus = append(corpus, loadgen.SearchBodies()...)
	corpus = append(corpus, loadgen.SimulateBodies()...)
	drive := func(srv *api.Server) {
		b.Helper()
		handler := srv.Handler()
		for _, body := range corpus {
			path := "/v1/plan"
			if bytes.Contains([]byte(body), []byte("scenario")) {
				path = "/v1/simulate"
			} else if !bytes.Contains([]byte(body), []byte("pipeline_size")) {
				path = "/v1/search"
			}
			req := httptest.NewRequest("POST", path, bytes.NewReader([]byte(body)))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("%s -> %d: %s", path, rec.Code, rec.Body.String())
			}
		}
	}

	seedPool := serve.New(serve.Config{Shards: 4})
	seedSrv := api.NewServerPool(seedPool)
	drive(seedSrv)
	snap, err := seedSrv.SaveSnapshot()
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var hitRatio float64
	for i := 0; i < b.N; i++ {
		pool := serve.New(serve.Config{Shards: 4})
		srv := api.NewServerPool(pool)
		if _, err := srv.LoadSnapshot(snap); err != nil {
			b.Fatal(err)
		}
		drive(srv)
		st := pool.ResponseCacheStats()
		hitRatio = float64(st.Hits) / float64(st.Hits+st.Misses)
		if hitRatio < 0.9 {
			b.Fatalf("warm boot answered only %.0f%% of the corpus from cache (%d hits, %d misses)",
				100*hitRatio, st.Hits, st.Misses)
		}
	}
	b.ReportMetric(float64(len(snap)), "snapshot-bytes")
	b.ReportMetric(100*hitRatio, "cache-hit-%")
}
