package parallel

import (
	"sort"
	"testing"
	"testing/quick"

	"holmes/internal/topology"
)

func TestMegatronOrderingSmall(t *testing.T) {
	// t=2, p=2, d=2, N=8: the canonical Megatron example.
	a, err := New(8, 4, Degrees{T: 2, P: 2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantTP := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	wantPP := [][]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}}
	wantDP := [][]int{{0, 2}, {1, 3}, {4, 6}, {5, 7}}
	eq := func(a, b [][]int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}
	if !eq(a.TP, wantTP) {
		t.Errorf("TP = %v, want %v", a.TP, wantTP)
	}
	if !eq(a.PP, wantPP) {
		t.Errorf("PP = %v, want %v", a.PP, wantPP)
	}
	if !eq(a.DP, wantDP) {
		t.Errorf("DP = %v, want %v", a.DP, wantDP)
	}
}

func TestFigure3Configuration(t *testing.T) {
	// Figure 3 of the paper: 2 clusters × 2 nodes × 4 GPUs = 16 ranks,
	// d=2, t=2, p=4. Stages must be contiguous blocks of t·d = 4 ranks.
	a, err := New(16, 4, Degrees{T: 2, P: 4, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		if got, want := a.StageOf(r), r/4; got != want {
			t.Fatalf("StageOf(%d) = %d, want %d", r, got, want)
		}
	}
	topo := topology.MustBuild(topology.Spec{
		GPUsPerNode: 4,
		Clusters: []topology.ClusterSpec{
			{NIC: topology.InfiniBand, Nodes: 2},
			{NIC: topology.RoCE, Nodes: 2},
		},
	})
	an := Analyze(topo, a)
	// Stages 0–1 land in cluster 0 (IB), stages 2–3 in cluster 1 (RoCE).
	wantClusters := []int{0, 0, 1, 1}
	for s, want := range wantClusters {
		if an.StageCluster[s] != want {
			t.Fatalf("stage %d cluster = %d, want %d", s, an.StageCluster[s], want)
		}
	}
	if !an.DPHomogeneous {
		t.Fatal("cross-cluster pipeline parallelism must keep DP groups NIC-homogeneous")
	}
	if !an.TPWithinNode {
		t.Fatal("tensor groups must stay within nodes")
	}
	if an.PPCrossCluster == 0 {
		t.Fatal("pipeline groups must cross the cluster boundary")
	}
	// Each DP group must be entirely IB or entirely RoCE.
	for i, nic := range an.DPGroupNICs {
		if !nic.IsRDMA() {
			t.Fatalf("DP group %d got NIC %v, want RDMA", i, nic)
		}
	}
}

func TestDegreesValidate(t *testing.T) {
	bad := []struct {
		d Degrees
		n int
	}{
		{Degrees{T: 0, P: 1, D: 8}, 8},   // non-positive degree
		{Degrees{T: 1, P: 3, D: 3}, 8},   // product 9 != 8
		{Degrees{T: 16, P: 1, D: 1}, 16}, // t > GPUs per node
		{Degrees{T: 3, P: 1, D: 8}, 24},  // t does not divide GPUs per node
	}
	for _, tc := range bad {
		if err := tc.d.Validate(tc.n, 8); err == nil {
			t.Errorf("Validate(%+v, n=%d) accepted", tc.d, tc.n)
		}
	}
	if err := (Degrees{T: 2, P: 2, D: 4}).Validate(16, 8); err != nil {
		t.Fatalf("good degrees rejected: %v", err)
	}
}

// Property: for arbitrary valid (t,p,d), the three matrices form exact
// partitions of the rank set, and groups intersect pairwise per theory:
// |TP∩PP| ≤ 1 etc. through membership consistency.
func TestGroupPartitionProperty(t *testing.T) {
	f := func(tRaw, pRaw, dRaw uint8) bool {
		tt := []int{1, 2, 4, 8}[tRaw%4]
		p := int(pRaw%4) + 1
		d := int(dRaw%4) + 1
		n := tt * p * d
		a, err := New(n, 8, Degrees{T: tt, P: p, D: d})
		if err != nil {
			return false
		}
		covers := func(rows [][]int) bool {
			seen := make([]bool, n)
			for _, g := range rows {
				for _, r := range g {
					if r < 0 || r >= n || seen[r] {
						return false
					}
					seen[r] = true
				}
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
			return true
		}
		if !covers(a.TP) || !covers(a.PP) || !covers(a.DP) {
			return false
		}
		// Membership lookups agree with matrices.
		for r := 0; r < n; r++ {
			if !containsInt(a.TPGroup(r), r) || !containsInt(a.PPGroup(r), r) || !containsInt(a.DPGroup(r), r) {
				return false
			}
			// Stage of rank equals its index in its PP group.
			pp := a.PPGroup(r)
			if pp[a.StageOf(r)] != r {
				return false
			}
		}
		// Stage blocks are contiguous.
		for s := 0; s < p; s++ {
			ranks := a.StageRanks(s)
			if !sort.IntsAreSorted(ranks) || ranks[0] != s*tt*d || len(ranks) != tt*d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func TestGroupNIC(t *testing.T) {
	topo := topology.HybridEnv(4) // 2 IB nodes (ranks 0-15) + 2 RoCE (16-31)
	// Within one node: no NIC needed.
	nic, cross := GroupNIC(topo, []int{0, 1, 2})
	if cross {
		t.Fatal("single-node group flagged cross-node")
	}
	if nic != topology.InfiniBand {
		t.Fatalf("node RDMA type = %v", nic)
	}
	// Across IB nodes.
	nic, cross = GroupNIC(topo, []int{0, 8})
	if !cross || nic != topology.InfiniBand {
		t.Fatalf("IB pair = (%v,%v)", nic, cross)
	}
	// Across clusters: Ethernet.
	nic, _ = GroupNIC(topo, []int{0, 16})
	if nic != topology.Ethernet {
		t.Fatalf("cross-cluster NIC = %v, want Ethernet", nic)
	}
}

func TestNaiveAssignmentSplitsDPGroups(t *testing.T) {
	// Counterpoint to cross-cluster PP: with pipeline degree 1 on a hybrid
	// topology, DP groups necessarily span clusters and lose RDMA. This is
	// the Megatron-LM failure mode Holmes fixes.
	topo := topology.HybridEnv(2) // 1 IB node + 1 RoCE node = 16 ranks
	a, err := New(16, 8, Degrees{T: 1, P: 1, D: 16})
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(topo, a)
	if an.DPHomogeneous {
		t.Fatal("p=1 on hybrid topology must break DP homogeneity")
	}
	if an.DPGroupNICs[0] != topology.Ethernet {
		t.Fatalf("heterogeneous DP group NIC = %v, want Ethernet", an.DPGroupNICs[0])
	}
}

func TestStageRanksBounds(t *testing.T) {
	a, _ := New(8, 8, Degrees{T: 1, P: 2, D: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("bad stage did not panic")
		}
	}()
	a.StageRanks(2)
}

func TestRankBounds(t *testing.T) {
	a, _ := New(8, 8, Degrees{T: 1, P: 2, D: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("bad rank did not panic")
		}
	}()
	a.StageOf(8)
}
