// Package parallel constructs the tensor-, pipeline-, and data-parallel
// group matrices of the paper's formalization (§3.1.2, Eq. 1–3) and
// analyzes their placement against a hardware topology.
//
// With degrees t (tensor), p (pipeline), d (data) and N = t·p·d devices:
//
//	[TP]_{i,j} = rank_{(i−1)·t + j}                    i ≤ p·d, j ≤ t
//	[PP]_{i,j} = rank_{i + (j−1)·t·d}                  i ≤ t·d, j ≤ p
//	[DP]_{i,j} = rank_{mod(i−1,t) + (⌊(i−1)/t⌋·d + j−1)·t + 1}   i ≤ p·t, j ≤ d
//
// (The code uses 0-based ranks.) Under this numbering pipeline stage j is
// the contiguous rank block [j·t·d, (j+1)·t·d), so with the paper's
// cluster-major global numbering, stages align with clusters — the heart
// of Cross-Cluster Pipeline Parallelism: pipeline groups span clusters
// over Ethernet while each data-parallel group stays inside one cluster
// and can ride its RDMA fabric.
package parallel

import (
	"fmt"

	"holmes/internal/topology"
)

// Degrees bundles the three parallelism degrees.
type Degrees struct {
	T int // tensor parallel size (within a node)
	P int // pipeline parallel size
	D int // data parallel size
}

// TileDegrees validates that tensor degree t and pipeline degree p tile n
// devices exactly and derives the data-parallel degree d = n/(t·p). It is
// the single home of the "do not tile" check the trainer and the planner
// both apply, so their messages and semantics cannot drift.
func TileDegrees(n, t, p int) (Degrees, error) {
	if t <= 0 || p <= 0 || n%(t*p) != 0 {
		return Degrees{}, fmt.Errorf("parallel: degrees t=%d p=%d do not tile %d devices", t, p, n)
	}
	return Degrees{T: t, P: p, D: n / (t * p)}, nil
}

// Validate checks the §2.4 constraints against a world size and node shape.
func (g Degrees) Validate(n, gpusPerNode int) error {
	switch {
	case g.T <= 0 || g.P <= 0 || g.D <= 0:
		return fmt.Errorf("parallel: non-positive degree %+v", g)
	case g.T*g.P*g.D != n:
		return fmt.Errorf("parallel: t·p·d = %d ≠ N = %d", g.T*g.P*g.D, n)
	case g.T > gpusPerNode:
		return fmt.Errorf("parallel: tensor degree %d exceeds GPUs per node %d", g.T, gpusPerNode)
	case gpusPerNode%g.T != 0:
		return fmt.Errorf("parallel: tensor degree %d does not divide GPUs per node %d", g.T, gpusPerNode)
	}
	return nil
}

// Assignment holds the three group matrices for one configuration.
type Assignment struct {
	Degrees
	N int
	// TP has p·d rows of t ranks (same node).
	TP [][]int
	// PP has t·d rows of p ranks (one per stage).
	PP [][]int
	// DP has p·t rows of d ranks (same stage, same tensor index).
	DP [][]int

	stageOf []int // rank -> pipeline stage
	dpRowOf []int // rank -> DP row index
	ppRowOf []int // rank -> PP row index
	tpRowOf []int // rank -> TP row index
}

// New builds the assignment for n devices. gpusPerNode guards the tensor
// constraint; pass topology.DefaultGPUsPerNode when unsure.
func New(n, gpusPerNode int, deg Degrees) (*Assignment, error) {
	if err := deg.Validate(n, gpusPerNode); err != nil {
		return nil, err
	}
	t, p, d := deg.T, deg.P, deg.D
	a := &Assignment{
		Degrees: deg, N: n,
		stageOf: make([]int, n),
		dpRowOf: make([]int, n),
		ppRowOf: make([]int, n),
		tpRowOf: make([]int, n),
	}
	// Eq. 1: tensor groups are consecutive rank runs of length t.
	for i := 0; i < p*d; i++ {
		row := make([]int, t)
		for j := 0; j < t; j++ {
			r := i*t + j
			row[j] = r
			a.tpRowOf[r] = i
		}
		a.TP = append(a.TP, row)
	}
	// Eq. 2: pipeline groups stride by t·d; member j is stage j.
	for i := 0; i < t*d; i++ {
		row := make([]int, p)
		for j := 0; j < p; j++ {
			r := i + j*t*d
			row[j] = r
			a.stageOf[r] = j
			a.ppRowOf[r] = i
		}
		a.PP = append(a.PP, row)
	}
	// Eq. 3: data groups stride by t within one stage block.
	for i := 0; i < p*t; i++ {
		row := make([]int, d)
		for j := 0; j < d; j++ {
			r := i%t + ((i/t)*d+j)*t
			row[j] = r
			a.dpRowOf[r] = i
		}
		a.DP = append(a.DP, row)
	}
	return a, nil
}

// StageOf returns the pipeline stage (0-based) a rank computes.
func (a *Assignment) StageOf(rank int) int { return a.stageOf[a.check(rank)] }

// TPGroup returns the tensor-parallel group containing rank.
func (a *Assignment) TPGroup(rank int) []int { return a.TP[a.tpRowOf[a.check(rank)]] }

// PPGroup returns the pipeline-parallel group containing rank.
func (a *Assignment) PPGroup(rank int) []int { return a.PP[a.ppRowOf[a.check(rank)]] }

// DPGroup returns the data-parallel group containing rank.
func (a *Assignment) DPGroup(rank int) []int { return a.DP[a.dpRowOf[a.check(rank)]] }

// DPRow returns the index of the data-parallel group containing rank.
func (a *Assignment) DPRow(rank int) int { return a.dpRowOf[a.check(rank)] }

// StageRanks returns all ranks computing the given pipeline stage: the
// contiguous block [stage·t·d, (stage+1)·t·d).
func (a *Assignment) StageRanks(stage int) []int {
	if stage < 0 || stage >= a.P {
		panic(fmt.Sprintf("parallel: stage %d out of range [0,%d)", stage, a.P))
	}
	out := make([]int, a.T*a.D)
	for i := range out {
		out[i] = stage*a.T*a.D + i
	}
	return out
}

func (a *Assignment) check(rank int) int {
	if rank < 0 || rank >= a.N {
		panic(fmt.Sprintf("parallel: rank %d out of range [0,%d)", rank, a.N))
	}
	return rank
}

// GroupNIC reports the NIC technology a group can use: the common RDMA
// type when all members sit in clusters with one compatible RDMA fabric,
// Ethernet otherwise. Single-node groups return the intra-node class via
// ok=false (no NIC needed).
func GroupNIC(topo *topology.Topology, group []int) (nic topology.NICType, crossNode bool) {
	if len(group) == 0 {
		panic("parallel: empty group")
	}
	first := group[0]
	crossNode = false
	for _, r := range group[1:] {
		if !topo.SameNode(first, r) {
			crossNode = true
			break
		}
	}
	if !crossNode {
		return topo.NodeOf(first).RDMAType(), false
	}
	nic = topo.NodeOf(first).RDMAType()
	for _, r := range group[1:] {
		other := topo.NodeOf(r).RDMAType()
		if !nic.IsRDMA() || !topology.Compatible(nic, other) || !topo.SameCluster(first, r) {
			return topology.Ethernet, true
		}
	}
	return nic, true
}

// Analysis summarizes how an assignment lands on a topology.
type Analysis struct {
	// DPHomogeneous reports whether every data-parallel group is
	// NIC-homogeneous (can use RDMA end-to-end).
	DPHomogeneous bool
	// DPGroupNICs holds the NIC selected for each DP row.
	DPGroupNICs []topology.NICType
	// PPCrossCluster counts pipeline edges that cross cluster boundaries.
	PPCrossCluster int
	// TPWithinNode reports whether every tensor group stays on one node.
	TPWithinNode bool
	// StageCluster maps each stage to its cluster, or -1 if a stage spans
	// clusters.
	StageCluster []int
}

// Analyze computes placement properties of the assignment on topo.
func Analyze(topo *topology.Topology, a *Assignment) Analysis {
	if topo.NumDevices() != a.N {
		panic(fmt.Sprintf("parallel: topology has %d devices, assignment %d", topo.NumDevices(), a.N))
	}
	res := Analysis{DPHomogeneous: true, TPWithinNode: true}
	for _, g := range a.DP {
		nic, _ := GroupNIC(topo, g)
		res.DPGroupNICs = append(res.DPGroupNICs, nic)
		if !nic.IsRDMA() && topo.NodeOf(g[0]).RDMAType().IsRDMA() && len(g) > 1 {
			// The group could have had RDMA but spans incompatible fabrics.
			if _, cross := GroupNIC(topo, g); cross {
				res.DPHomogeneous = false
			}
		}
	}
	for _, g := range a.PP {
		for j := 0; j+1 < len(g); j++ {
			if !topo.SameCluster(g[j], g[j+1]) {
				res.PPCrossCluster++
			}
		}
	}
	for _, g := range a.TP {
		for _, r := range g[1:] {
			if !topo.SameNode(g[0], r) {
				res.TPWithinNode = false
			}
		}
	}
	for s := 0; s < a.P; s++ {
		ranks := a.StageRanks(s)
		c := topo.Device(ranks[0]).Cluster
		same := true
		for _, r := range ranks[1:] {
			if topo.Device(r).Cluster != c {
				same = false
				break
			}
		}
		if same {
			res.StageCluster = append(res.StageCluster, c)
		} else {
			res.StageCluster = append(res.StageCluster, -1)
		}
	}
	return res
}
