// Package runtime is the numerically real counterpart of the simulator: a
// goroutine-per-rank executor whose ranks exchange actual float32 buffers
// over channels. It implements the collectives (ring all-reduce,
// reduce-scatter, all-gather, broadcast, barrier) with real data movement
// and reductions, so tests can verify that the distributed training
// schedules Holmes plans — data-parallel gradient sync with a sharded
// optimizer, pipeline-parallel forward/backward — produce bitwise-sane
// results equal to serial training.
//
// This substitutes for NCCL + torchrun in the paper's stack: semantics
// are exercised here, timing on the simulated fabric in internal/netsim.
package runtime

import (
	"fmt"
	"sync"

	"holmes/internal/tensor"
)

// Transport is the message fabric of a world: a buffered channel per
// ordered (src, dst) rank pair.
type Transport struct {
	n  int
	ch [][]chan tensor.Vector
}

// NewTransport creates a fabric for n ranks.
func NewTransport(n int) *Transport {
	if n <= 0 {
		panic(fmt.Sprintf("runtime: world size %d", n))
	}
	t := &Transport{n: n, ch: make([][]chan tensor.Vector, n)}
	for i := range t.ch {
		t.ch[i] = make([]chan tensor.Vector, n)
		for j := range t.ch[i] {
			if i != j {
				t.ch[i][j] = make(chan tensor.Vector, 4)
			}
		}
	}
	return t
}

// WorldSize returns the number of ranks.
func (t *Transport) WorldSize() int { return t.n }

// Send transmits a copy of v from src to dst (copying keeps ranks from
// sharing mutable buffers, as a real network would).
func (t *Transport) Send(src, dst int, v tensor.Vector) {
	if src == dst {
		panic("runtime: self-send")
	}
	t.ch[src][dst] <- v.Clone()
}

// Recv blocks until a message from src arrives at dst.
func (t *Transport) Recv(src, dst int) tensor.Vector {
	return <-t.ch[src][dst]
}

// Comm is one rank's view of a communicator group.
type Comm struct {
	tr *Transport
	// Ranks are the group members in ring order; Self is this rank's index
	// within Ranks (not the global rank).
	Ranks []int
	Self  int
}

// NewComm binds a rank to a group. ranks must contain global, the caller's
// global rank.
func NewComm(tr *Transport, ranks []int, global int) *Comm {
	self := -1
	for i, r := range ranks {
		if r == global {
			self = i
		}
	}
	if self < 0 {
		panic(fmt.Sprintf("runtime: rank %d not in group %v", global, ranks))
	}
	return &Comm{tr: tr, Ranks: append([]int(nil), ranks...), Self: self}
}

func (c *Comm) size() int                { return len(c.Ranks) }
func (c *Comm) next() int                { return c.Ranks[(c.Self+1)%c.size()] }
func (c *Comm) prev() int                { return c.Ranks[(c.Self-1+c.size())%c.size()] }
func (c *Comm) global() int              { return c.Ranks[c.Self] }
func (c *Comm) sendNext(v tensor.Vector) { c.tr.Send(c.global(), c.next(), v) }
func (c *Comm) recvPrev() tensor.Vector  { return c.tr.Recv(c.prev(), c.global()) }

// ReduceScatter sums the group's vectors chunk-wise: after the call, this
// rank's chunk (tensor.Chunk layout, index Self) holds the sum over all
// ranks; other chunks hold partial sums and must be treated as scratch.
// It is the ring reduce-scatter: n−1 steps, each passing one chunk.
func (c *Comm) ReduceScatter(v tensor.Vector) {
	n := c.size()
	if n == 1 {
		return
	}
	chunks := v.Chunk(n)
	// At step s, rank i passes chunk (i−s−1) onward and folds the incoming
	// partial into chunk (i−s−2); after n−1 steps rank i owns the complete
	// sum of chunk i — the layout ShardedAdam's ShardOf expects.
	for s := 0; s < n-1; s++ {
		sendIdx := mod(c.Self-s-1, n)
		recvIdx := mod(c.Self-s-2, n)
		c.sendNext(chunks[sendIdx])
		in := c.recvPrev()
		chunks[recvIdx].Add(in)
	}
}

func mod(a, n int) int { return (a%n + n) % n }

// AllGather distributes each rank's owned chunk (index = rank position) to
// everyone: after the call every rank holds identical full vectors,
// assuming each rank's chunk Self is authoritative on entry.
func (c *Comm) AllGather(v tensor.Vector) {
	n := c.size()
	if n == 1 {
		return
	}
	chunks := v.Chunk(n)
	for s := 0; s < n-1; s++ {
		sendIdx := mod(c.Self-s, n)
		recvIdx := mod(c.Self-s-1, n)
		c.sendNext(chunks[sendIdx])
		in := c.recvPrev()
		copy(chunks[recvIdx], in)
	}
}

// AllReduce sums vectors across the group so that every rank ends with
// the identical total: ring reduce-scatter followed by ring all-gather.
func (c *Comm) AllReduce(v tensor.Vector) {
	c.ReduceScatter(v)
	c.AllGather(v)
}

// Broadcast copies root's vector (root = position in Ranks) to all ranks
// around the ring.
func (c *Comm) Broadcast(v tensor.Vector, root int) {
	n := c.size()
	if n == 1 {
		return
	}
	// Pass the payload around the ring, skipping the wrap back to root.
	pos := ((c.Self-root)%n + n) % n
	if pos != 0 {
		in := c.recvPrev()
		copy(v, in)
	}
	if pos != n-1 {
		c.sendNext(v)
	}
}

// Barrier synchronizes the group: two full ring traversals of a token —
// the first proves every rank has arrived, the second releases them.
func (c *Comm) Barrier() {
	n := c.size()
	if n == 1 {
		return
	}
	token := tensor.Vector{0}
	for round := 0; round < 2; round++ {
		if c.Self == 0 {
			c.sendNext(token)
			c.recvPrev()
		} else {
			in := c.recvPrev()
			c.sendNext(in)
		}
	}
}

// SpawnWorld runs fn concurrently as every rank of an n-rank world and
// waits for all to finish. Panics in ranks propagate.
func SpawnWorld(n int, fn func(rank int, tr *Transport)) *Transport {
	tr := NewTransport(n)
	var wg sync.WaitGroup
	panics := make(chan any, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- fmt.Sprintf("rank %d: %v", rank, p)
				}
			}()
			fn(rank, tr)
		}(r)
	}
	wg.Wait()
	close(panics)
	if p, ok := <-panics; ok {
		panic(p)
	}
	return tr
}
