package runtime

import (
	"fmt"
	"math/rand"

	"holmes/internal/optimizer"
	"holmes/internal/tensor"
)

// LinearModel is the small real model the executor trains: y = W·x, mean
// squared error. It is deliberately simple — the point is validating the
// distributed schedules (gradient synchronization, sharded optimizer,
// pipeline hand-off), not the model.
type LinearModel struct {
	W *tensor.Matrix
}

// NewLinearModel creates an out×in model with deterministic random
// weights.
func NewLinearModel(seed int64, in, out int) *LinearModel {
	rng := rand.New(rand.NewSource(seed))
	return &LinearModel{W: tensor.RandnMatrix(rng, out, in, 0.3)}
}

// Clone deep-copies the model.
func (m *LinearModel) Clone() *LinearModel { return &LinearModel{W: m.W.Clone()} }

// Params returns the flattened parameter vector (aliasing the model).
func (m *LinearModel) Params() tensor.Vector { return m.W.Data }

// Example is one training pair.
type Example struct {
	X, Y tensor.Vector
}

// Grad computes dLoss/dW for one example under ½‖Wx−y‖² and accumulates
// into g (same layout as Params). Returns the loss.
func (m *LinearModel) Grad(g tensor.Vector, ex Example) float64 {
	pred := m.W.MulVec(ex.X)
	pred.Sub(ex.Y) // residual r = Wx − y
	gm := &tensor.Matrix{Rows: m.W.Rows, Cols: m.W.Cols, Data: g}
	gm.AddOuter(1, pred, ex.X)
	return 0.5 * pred.Dot(pred)
}

// BatchGrad accumulates the mean gradient over a batch into a fresh
// vector.
func (m *LinearModel) BatchGrad(batch []Example) tensor.Vector {
	g := tensor.NewVector(len(m.Params()))
	for _, ex := range batch {
		m.Grad(g, ex)
	}
	if len(batch) > 0 {
		g.Scale(1 / float32(len(batch)))
	}
	return g
}

// SyntheticBatch generates a deterministic batch for a linear teacher
// model (so losses genuinely decrease during the tests).
func SyntheticBatch(seed int64, n, in, out int) []Example {
	rng := rand.New(rand.NewSource(seed))
	teacher := tensor.RandnMatrix(rng, out, in, 0.5)
	return teacherBatch(rng, teacher, n)
}

// SyntheticDataset generates `steps` batches drawn from one shared linear
// teacher, so that sequential training against them converges.
func SyntheticDataset(seed int64, steps, batchSize, in, out int) [][]Example {
	rng := rand.New(rand.NewSource(seed))
	teacher := tensor.RandnMatrix(rng, out, in, 0.5)
	out2 := make([][]Example, steps)
	for i := range out2 {
		out2[i] = teacherBatch(rng, teacher, batchSize)
	}
	return out2
}

func teacherBatch(rng *rand.Rand, teacher *tensor.Matrix, n int) []Example {
	batch := make([]Example, n)
	for i := range batch {
		x := tensor.Randn(rng, teacher.Cols, 1)
		y := teacher.MulVec(x)
		batch[i] = Example{X: x, Y: y}
	}
	return batch
}

// TrainDataParallel runs `steps` of data-parallel training on d ranks
// with the distributed (sharded) optimizer: each rank computes gradients
// on its shard of every batch, reduce-scatters gradients, updates its
// parameter shard, and all-gathers the updated parameters — the exact
// communication pattern Holmes schedules onto RDMA NICs. Returns the final
// (replicated) parameters.
func TrainDataParallel(d int, model *LinearModel, batches [][]Example, lr float64) (tensor.Vector, error) {
	if d <= 0 {
		return nil, fmt.Errorf("runtime: world size %d", d)
	}
	for _, b := range batches {
		if len(b)%d != 0 {
			return nil, fmt.Errorf("runtime: batch size %d not divisible by %d ranks", len(b), d)
		}
	}
	n := len(model.Params())
	results := make([]tensor.Vector, d)
	group := make([]int, d)
	for i := range group {
		group[i] = i
	}
	SpawnWorld(d, func(rank int, tr *Transport) {
		comm := NewComm(tr, group, rank)
		local := model.Clone()
		opt := optimizer.NewShardedAdam(lr, n, rank, d)
		for _, batch := range batches {
			per := len(batch) / d
			shard := batch[rank*per : (rank+1)*per]
			grad := local.BatchGrad(shard)
			grad.Scale(1 / float32(d)) // mean over the global batch
			comm.ReduceScatter(grad)
			opt.UpdateShard(opt.ShardOf(local.Params()), opt.ShardOf(grad))
			comm.AllGather(local.Params())
		}
		results[rank] = local.Params().Clone()
	})
	// All replicas must agree exactly (same reduction order on all ranks).
	for r := 1; r < d; r++ {
		if !results[r].AllClose(results[0], 1e-5) {
			return nil, fmt.Errorf("runtime: replica %d diverged from replica 0 by %g",
				r, results[r].MaxAbsDiff(results[0]))
		}
	}
	return results[0], nil
}

// TrainSerial is the single-process reference: full-batch gradient, full
// Adam.
func TrainSerial(model *LinearModel, batches [][]Example, lr float64) tensor.Vector {
	local := model.Clone()
	opt := optimizer.NewAdam(lr)
	for _, batch := range batches {
		grad := local.BatchGrad(batch)
		opt.Step(local.Params(), grad)
	}
	return local.Params().Clone()
}

// TwoStagePipeline runs a real two-stage pipeline-parallel forward and
// backward over micro-batches for the composition y = W2·(W1·x): rank 0
// holds W1, rank 1 holds W2, activations and gradients travel as real
// messages. It returns each stage's accumulated gradient so tests can
// compare against the serially computed chain rule.
func TwoStagePipeline(w1, w2 *tensor.Matrix, micro []Example) (g1, g2 tensor.Vector) {
	g1 = tensor.NewVector(len(w1.Data))
	g2 = tensor.NewVector(len(w2.Data))
	SpawnWorld(2, func(rank int, tr *Transport) {
		switch rank {
		case 0:
			gm := &tensor.Matrix{Rows: w1.Rows, Cols: w1.Cols, Data: g1}
			// Forwards stream asynchronously (NCCL-style isend) while the
			// main loop consumes backward gradients, so the schedule never
			// deadlocks on channel buffering regardless of micro-batch
			// count.
			go func() {
				for _, ex := range micro {
					h := w1.MulVec(ex.X)
					tr.Send(0, 1, h) // forward activation
				}
			}()
			for _, ex := range micro {
				dh := tr.Recv(1, 0) // backward gradient w.r.t. h
				gm.AddOuter(1, dh, ex.X)
			}
		case 1:
			gm := &tensor.Matrix{Rows: w2.Rows, Cols: w2.Cols, Data: g2}
			for _, ex := range micro {
				h := tr.Recv(0, 1)
				pred := w2.MulVec(h)
				pred.Sub(ex.Y) // r = W2·h − y
				gm.AddOuter(1, pred, h)
				dh := w2.MulVecT(pred)
				tr.Send(1, 0, dh)
			}
		}
	})
	return g1, g2
}
