package runtime

import (
	"math/rand"
	"testing"

	"holmes/internal/tensor"
)

func worldVectors(seed int64, n, size int) []tensor.Vector {
	rng := rand.New(rand.NewSource(seed))
	vs := make([]tensor.Vector, n)
	for i := range vs {
		vs[i] = tensor.Randn(rng, size, 1)
	}
	return vs
}

func sumOf(vs []tensor.Vector) tensor.Vector {
	total := vs[0].Clone()
	for _, v := range vs[1:] {
		total.Add(v)
	}
	return total
}

func TestAllReduceSumsEverywhere(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		for _, size := range []int{1, 7, 64} {
			if size < n {
				continue
			}
			vs := worldVectors(int64(n*100+size), n, size)
			want := sumOf(vs)
			group := ranks(n)
			results := make([]tensor.Vector, n)
			SpawnWorld(n, func(rank int, tr *Transport) {
				v := vs[rank].Clone()
				NewComm(tr, group, rank).AllReduce(v)
				results[rank] = v
			})
			for r := 0; r < n; r++ {
				if !results[r].AllClose(want, 1e-4) {
					t.Fatalf("n=%d size=%d rank %d all-reduce off by %g",
						n, size, r, results[r].MaxAbsDiff(want))
				}
			}
		}
	}
}

func ranks(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

func TestReduceScatterOwnedChunk(t *testing.T) {
	n, size := 4, 22 // uneven chunks
	vs := worldVectors(5, n, size)
	want := sumOf(vs)
	wantChunks := want.Chunk(n)
	results := make([]tensor.Vector, n)
	SpawnWorld(n, func(rank int, tr *Transport) {
		v := vs[rank].Clone()
		NewComm(tr, ranks(n), rank).ReduceScatter(v)
		results[rank] = v.Chunk(n)[rank].Clone()
	})
	for r := 0; r < n; r++ {
		if !results[r].AllClose(wantChunks[r], 1e-4) {
			t.Fatalf("rank %d owns wrong chunk after reduce-scatter: off by %g",
				r, results[r].MaxAbsDiff(wantChunks[r]))
		}
	}
}

func TestAllGatherRebuildsVector(t *testing.T) {
	n, size := 5, 23
	// Rank r starts with only chunk r authoritative; all-gather must
	// rebuild the same full vector everywhere.
	rng := rand.New(rand.NewSource(9))
	truth := tensor.Randn(rng, size, 1)
	results := make([]tensor.Vector, n)
	SpawnWorld(n, func(rank int, tr *Transport) {
		v := tensor.NewVector(size)
		copy(v.Chunk(n)[rank], truth.Chunk(n)[rank])
		NewComm(tr, ranks(n), rank).AllGather(v)
		results[rank] = v
	})
	for r := 0; r < n; r++ {
		if !results[r].AllClose(truth, 0) {
			t.Fatalf("rank %d all-gather mismatch", r)
		}
	}
}

func TestBroadcast(t *testing.T) {
	n, size, root := 6, 11, 2
	rng := rand.New(rand.NewSource(4))
	payload := tensor.Randn(rng, size, 1)
	results := make([]tensor.Vector, n)
	SpawnWorld(n, func(rank int, tr *Transport) {
		v := tensor.NewVector(size)
		if rank == root {
			copy(v, payload)
		}
		NewComm(tr, ranks(n), rank).Broadcast(v, root)
		results[rank] = v
	})
	for r := 0; r < n; r++ {
		if !results[r].AllClose(payload, 0) {
			t.Fatalf("rank %d broadcast mismatch", r)
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	n := 7
	for trial := 0; trial < 3; trial++ {
		SpawnWorld(n, func(rank int, tr *Transport) {
			c := NewComm(tr, ranks(n), rank)
			for i := 0; i < 5; i++ {
				c.Barrier()
			}
		})
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	tr := NewTransport(2)
	v := tensor.Vector{1, 2, 3}
	tr.Send(0, 1, v)
	v[0] = 99 // mutate after send
	got := tr.Recv(0, 1)
	if got[0] != 1 {
		t.Fatal("Send must copy: receiver saw sender's mutation")
	}
}

func TestSelfSendPanics(t *testing.T) {
	tr := NewTransport(2)
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	tr.Send(1, 1, tensor.Vector{1})
}

func TestCommRequiresMembership(t *testing.T) {
	tr := NewTransport(4)
	defer func() {
		if recover() == nil {
			t.Fatal("non-member comm did not panic")
		}
	}()
	NewComm(tr, []int{0, 1}, 3)
}

func TestSpawnWorldPropagatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank panic not propagated")
		}
	}()
	SpawnWorld(2, func(rank int, tr *Transport) {
		if rank == 1 {
			panic("boom")
		}
	})
}

// The central correctness claim: data-parallel training with the sharded
// optimizer over real collectives equals serial training, for several
// world sizes.
func TestDataParallelMatchesSerial(t *testing.T) {
	in, out := 6, 3
	model := NewLinearModel(11, in, out)
	var batches [][]Example
	for step := 0; step < 8; step++ {
		batches = append(batches, SyntheticBatch(int64(100+step), 24, in, out))
	}
	want := TrainSerial(model, batches, 0.01)
	for _, d := range []int{1, 2, 4, 8} {
		got, err := TrainDataParallel(d, model, batches, 0.01)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !got.AllClose(want, 2e-3) {
			t.Fatalf("d=%d diverged from serial by %g", d, got.MaxAbsDiff(want))
		}
	}
}

func TestDataParallelTrainingReducesLoss(t *testing.T) {
	in, out := 5, 2
	model := NewLinearModel(7, in, out)
	all := SyntheticDataset(500, 151, 16, in, out)
	eval := all[150]
	batches := all[:150]
	loss := func(params tensor.Vector) float64 {
		m := &LinearModel{W: &tensor.Matrix{Rows: out, Cols: in, Data: params}}
		total := 0.0
		g := tensor.NewVector(len(params))
		for _, ex := range eval {
			total += m.Grad(g, ex)
		}
		return total / float64(len(eval))
	}
	before := loss(model.Params())
	after, err := TrainDataParallel(4, model, batches, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got := loss(after); got > before*0.2 {
		t.Fatalf("training did not reduce loss: %g -> %g", before, got)
	}
}

func TestDataParallelRejectsBadShapes(t *testing.T) {
	model := NewLinearModel(1, 3, 2)
	batches := [][]Example{SyntheticBatch(1, 10, 3, 2)}
	if _, err := TrainDataParallel(4, model, batches, 0.01); err == nil {
		t.Fatal("batch 10 over 4 ranks must error")
	}
	if _, err := TrainDataParallel(0, model, batches, 0.01); err == nil {
		t.Fatal("0 ranks must error")
	}
}

// Pipeline-parallel gradients equal the serial chain rule.
func TestTwoStagePipelineMatchesChainRule(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in, hid, out := 5, 4, 3
	w1 := tensor.RandnMatrix(rng, hid, in, 0.5)
	w2 := tensor.RandnMatrix(rng, out, hid, 0.5)
	micro := SyntheticBatch(77, 12, in, out)

	g1, g2 := TwoStagePipeline(w1, w2, micro)

	// Serial reference.
	wantG1 := tensor.NewVector(len(w1.Data))
	wantG2 := tensor.NewVector(len(w2.Data))
	gm1 := &tensor.Matrix{Rows: hid, Cols: in, Data: wantG1}
	gm2 := &tensor.Matrix{Rows: out, Cols: hid, Data: wantG2}
	for _, ex := range micro {
		h := w1.MulVec(ex.X)
		pred := w2.MulVec(h)
		pred.Sub(ex.Y)
		gm2.AddOuter(1, pred, h)
		dh := w2.MulVecT(pred)
		gm1.AddOuter(1, dh, ex.X)
	}
	if !g1.AllClose(wantG1, 1e-4) {
		t.Fatalf("stage-0 gradient off by %g", g1.MaxAbsDiff(wantG1))
	}
	if !g2.AllClose(wantG2, 1e-4) {
		t.Fatalf("stage-1 gradient off by %g", g2.MaxAbsDiff(wantG2))
	}
}
