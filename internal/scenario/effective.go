package scenario

import (
	"fmt"
	"math"
	"sort"

	"holmes/internal/netsim"
	"holmes/internal/topology"
)

// ValidateFor checks the topology-dependent invariants: every node and
// cluster an event names must exist. Call after Validate.
func (s *Scenario) ValidateFor(topo *topology.Topology) error {
	if s.Empty() {
		return nil
	}
	nodes, clusters := topo.NumNodes(), topo.NumClusters()
	for i, ev := range s.Events {
		switch ev.Kind {
		case DegradeNIC, FailNode, RestoreNode, Delay, Jitter, Loss, Corrupt, FlapLink, Straggler:
			if ev.Node >= nodes {
				return fmt.Errorf("scenario: event %d: node %d outside topology (%d nodes)", i, ev.Node, nodes)
			}
		case BackgroundTraffic:
			if ev.Src >= nodes || ev.Dst >= nodes {
				return fmt.Errorf("scenario: event %d: background traffic %d->%d outside topology (%d nodes)", i, ev.Src, ev.Dst, nodes)
			}
		case JoinNodes, FailCluster:
			if ev.Cluster >= clusters {
				return fmt.Errorf("scenario: event %d: cluster %d outside topology (%d clusters)", i, ev.Cluster, clusters)
			}
		case Partition:
			if ev.Cluster >= clusters || ev.Peer >= clusters {
				return fmt.Errorf("scenario: event %d: partition %d|%d outside topology (%d clusters)", i, ev.Cluster, ev.Peer, clusters)
			}
		}
	}
	return nil
}

// NodeState is the folded condition of one node at an instant.
type NodeState struct {
	// Failed marks the node dropped off the network.
	Failed bool
	// Cumulative capacity factors by class (1 = pristine). Consecutive
	// degrades and stragglers compound, mirroring netsim.DegradeNode
	// semantics; an active flap_link down-phase folds the fail residual
	// in.
	RDMAFactor, EthFactor, IntraFactor float64
	// Goodput efficiencies by class (1 = clean): the product of every
	// active loss/corrupt derate on the node, both directions. Delay and
	// jitter have no capacity-side representation here — they move the α
	// term on the bound fabric only.
	RDMAEff, EthEff, IntraEff float64
}

func pristineNode() NodeState {
	return NodeState{
		RDMAFactor: 1, EthFactor: 1, IntraFactor: 1,
		RDMAEff: 1, EthEff: 1, IntraEff: 1,
	}
}

// Factor returns the folded capacity factor of one link class.
func (ns NodeState) Factor(class netsim.Class) float64 {
	switch class {
	case netsim.RDMA:
		return ns.RDMAFactor
	case netsim.Ether:
		return ns.EthFactor
	default:
		return ns.IntraFactor
	}
}

// Eff returns the folded goodput efficiency of one link class.
func (ns NodeState) Eff(class netsim.Class) float64 {
	switch class {
	case netsim.RDMA:
		return ns.RDMAEff
	case netsim.Ether:
		return ns.EthEff
	default:
		return ns.IntraEff
	}
}

func (ns *NodeState) mulFactor(class netsim.Class, f float64) {
	switch class {
	case netsim.RDMA:
		ns.RDMAFactor *= f
	case netsim.Ether:
		ns.EthFactor *= f
	default:
		ns.IntraFactor *= f
	}
}

func (ns *NodeState) mulEff(class netsim.Class, e float64) {
	switch class {
	case netsim.RDMA:
		ns.RDMAEff *= e
	case netsim.Ether:
		ns.EthEff *= e
	default:
		ns.IntraEff *= e
	}
}

// State is the folded condition of the whole timeline at an instant.
type State struct {
	// Nodes holds the state of every node an event has touched, keyed by
	// global node index; untouched nodes are pristine.
	Nodes map[int]NodeState
	// Joined counts extra nodes per cluster index.
	Joined map[int]int
	// FailedClusters marks clusters taken out by fail_cluster.
	FailedClusters map[int]bool
	// Cut marks cluster pairs (lower index first) whose trunk an active
	// partition has cut to the fail residual.
	Cut map[[2]int]bool
}

// Partitioned reports whether an active partition cuts the cluster pair.
func (st State) Partitioned(c1, c2 int) bool {
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	return st.Cut[[2]int{c1, c2}]
}

// activeAt reports whether an interval event (impairments, partition)
// covers the instant: started, and not yet past its optional Until.
func (ev Event) activeAt(at float64) bool {
	return ev.At <= at && (ev.Until == 0 || at < ev.Until)
}

// flapDown reports whether a flap_link event holds its link down at the
// instant. The candidate down-edges are computed with the exact float
// arithmetic the runtime uses to schedule them (At + k*cycle), so the
// fold and the fabric agree even at the edge instants themselves.
func flapDown(ev Event, at float64) bool {
	if at < ev.At || at >= ev.Until {
		return false
	}
	cycle := (ev.DownMs + ev.UpMs) / 1e3
	k := math.Floor((at - ev.At) / cycle)
	for _, kk := range []float64{k - 1, k, k + 1} {
		if kk < 0 {
			continue
		}
		down := ev.At + kk*cycle
		if at >= down && at < down+ev.DownMs/1e3 {
			return true
		}
	}
	return false
}

// impairTarget addresses one impaired link side in the fold, mirroring
// netsim's (node, class, direction) impairment keying.
type impairTarget struct {
	node    int
	class   netsim.Class
	inbound bool
}

// foldImpair folds every delay/jitter/loss/corrupt event active at the
// instant into absolute per-side impairments, in (At, declaration)
// order: delays and jitter amplitudes sum, loss/corrupt efficiencies
// multiply, and the latest active jitter event's distribution wins. The
// runtime pushes exactly these values to its backend, so the folded
// view and the live network agree by construction.
func (s *Scenario) foldImpair(at float64) map[impairTarget]netsim.Impairment {
	m := make(map[impairTarget]netsim.Impairment)
	if s.Empty() {
		return m
	}
	for _, ev := range s.ordered() {
		if ev.At > at {
			break
		}
		switch ev.Kind {
		case Delay, Jitter, Loss, Corrupt:
		default:
			continue
		}
		if !ev.activeAt(at) {
			continue
		}
		class, err := ev.Class.netClass(netsim.Ether)
		if err != nil {
			continue // Validate rejects this; fold defensively
		}
		out, in, err := ev.dirs()
		if err != nil {
			continue
		}
		for _, inbound := range []bool{false, true} {
			if (inbound && !in) || (!inbound && !out) {
				continue
			}
			key := impairTarget{node: ev.Node, class: class, inbound: inbound}
			imp := m[key]
			switch ev.Kind {
			case Delay:
				imp.ExtraLatency += ev.DelayMs / 1e3
			case Jitter:
				imp.JitterSeconds += ev.JitterMs / 1e3
				imp.JitterDist = netsim.Dist(ev.Dist)
			default: // Loss, Corrupt
				eff := imp.Efficiency
				if eff <= 0 {
					eff = 1
				}
				imp.Efficiency = eff * (1 - ev.Pct/100)
			}
			m[key] = imp
		}
	}
	return m
}

// StateAt folds every event with At <= at, in (At, declaration) order,
// into the net node/cluster condition — the same order Bind applies them
// to a fabric, so both views of a timeline always agree. Point events
// (degrade, fail, restore, straggler, join, fail_cluster) fold first;
// interval effects (flap_link phases, partitions, impairment
// efficiencies) overlay afterwards, so a restore_node cannot erase a
// flap window that is still scripted to be down.
func (s *Scenario) StateAt(at float64) State {
	st := State{
		Nodes:          make(map[int]NodeState),
		Joined:         make(map[int]int),
		FailedClusters: make(map[int]bool),
		Cut:            make(map[[2]int]bool),
	}
	if s.Empty() {
		return st
	}
	node := func(idx int) NodeState {
		if ns, ok := st.Nodes[idx]; ok {
			return ns
		}
		return pristineNode()
	}
	ordered := s.ordered()
	for _, ev := range ordered {
		if ev.At > at {
			break
		}
		switch ev.Kind {
		case DegradeNIC:
			class, err := ev.Class.netClass(netsim.RDMA)
			if err != nil {
				continue // Validate rejects this; fold defensively
			}
			ns := node(ev.Node)
			ns.mulFactor(class, ev.Factor)
			st.Nodes[ev.Node] = ns
		case Straggler:
			ns := node(ev.Node)
			ns.mulFactor(netsim.RDMA, ev.Factor)
			ns.mulFactor(netsim.Ether, ev.Factor)
			st.Nodes[ev.Node] = ns
		case FailNode:
			ns := node(ev.Node)
			ns.Failed = true
			st.Nodes[ev.Node] = ns
		case RestoreNode:
			delete(st.Nodes, ev.Node)
		case JoinNodes:
			st.Joined[ev.Cluster] += ev.Count
		case FailCluster:
			st.FailedClusters[ev.Cluster] = true
		}
	}
	// Interval overlays: active flap down-phases and partitions.
	for _, ev := range ordered {
		if ev.At > at {
			break
		}
		switch ev.Kind {
		case FlapLink:
			if !flapDown(ev, at) {
				continue
			}
			class, err := ev.Class.netClass(netsim.RDMA)
			if err != nil {
				continue
			}
			ns := node(ev.Node)
			ns.mulFactor(class, netsim.FailResidual)
			st.Nodes[ev.Node] = ns
		case Partition:
			if !ev.activeAt(at) {
				continue
			}
			c1, c2 := ev.Cluster, ev.Peer
			if c1 > c2 {
				c1, c2 = c2, c1
			}
			st.Cut[[2]int{c1, c2}] = true
		}
	}
	// Impairment efficiencies: both directions of a node's class fold
	// into one goodput derate for the planner's capacity view.
	for key, imp := range s.foldImpair(at) {
		if imp.Efficiency <= 0 || imp.Efficiency == 1 {
			continue
		}
		ns := node(key.node)
		ns.mulEff(key.class, imp.Efficiency)
		st.Nodes[key.node] = ns
	}
	return st
}

// FailedNodes lists the global indices of nodes failed at the instant,
// ascending.
func (st State) FailedNodes() []int {
	var out []int
	for idx, ns := range st.Nodes {
		if ns.Failed {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// EffectiveSpec folds the timeline at the instant into a buildable
// topology spec: failed nodes and failed clusters are excluded, degraded
// or lossy nodes carry their reduced NIC line rates as per-node
// overrides (capacity factor × goodput efficiency), and joined nodes
// extend their cluster at its baseline configuration. Intra-node
// degradation has no topology-level representation (the planner treats
// NVLink/PCIe as fixed) and affects only the bound fabric; so do delay
// and jitter, which move the α term rather than capacity.
//
// The second return value lists the excluded nodes by original global
// index. Building the spec fails if no nodes survive.
func (s *Scenario) EffectiveSpec(topo *topology.Topology, at float64) (topology.Spec, []int, error) {
	st := s.StateAt(at)
	n0 := topo.Node(0)
	spec := topology.Spec{
		GPUsPerNode: topo.GPUsPerNode,
		GPUMemBytes: n0.MemBytesPerGPU,
		Intra:       n0.Intra,
		EthGbps:     n0.EthNIC.Gbps,
	}
	excludedSet := make(map[int]bool)
	for _, idx := range st.FailedNodes() {
		excludedSet[idx] = true
	}
	for _, c := range topo.Clusters {
		if st.FailedClusters[c.Index] {
			// Whole-switch blast radius: every node of the cluster is
			// gone, joined or not.
			for _, n := range c.Nodes {
				excludedSet[n.Index] = true
			}
			continue
		}
		base := c.Nodes[0]
		cs := topology.ClusterSpec{
			Name:        c.Name,
			NIC:         c.NICType,
			NICsPerNode: len(base.NICs),
			Overrides:   make(map[int]topology.NodeOverride),
		}
		if len(base.NICs) > 0 {
			cs.GbpsPerNIC = base.NICs[0].Gbps
		}
		pos := 0
		for _, n := range c.Nodes {
			ns, touched := st.Nodes[n.Index]
			if touched && ns.Failed {
				continue
			}
			if !touched {
				ns = pristineNode()
			}
			ov := topology.NodeOverride{EthGbps: n.EthNIC.Gbps * ns.EthFactor * ns.EthEff}
			if len(n.NICs) > 0 {
				ov.GbpsPerNIC = n.NICs[0].Gbps * ns.RDMAFactor * ns.RDMAEff
			}
			cs.Overrides[pos] = ov
			pos++
		}
		cs.Nodes = pos + st.Joined[c.Index]
		if cs.Nodes == 0 {
			// Every node of the cluster failed and none joined: the
			// cluster disappears from the effective topology.
			continue
		}
		spec.Clusters = append(spec.Clusters, cs)
	}
	excluded := make([]int, 0, len(excludedSet))
	for idx := range excludedSet {
		excluded = append(excluded, idx)
	}
	sort.Ints(excluded)
	if len(spec.Clusters) == 0 {
		return topology.Spec{}, excluded, fmt.Errorf("scenario: no nodes survive at t=%v", at)
	}
	return spec, excluded, nil
}

// EffectiveTopology builds the post-event topology at the instant; see
// EffectiveSpec.
func (s *Scenario) EffectiveTopology(topo *topology.Topology, at float64) (*topology.Topology, []int, error) {
	spec, excluded, err := s.EffectiveSpec(topo, at)
	if err != nil {
		return nil, excluded, err
	}
	eff, err := topology.Build(spec)
	if err != nil {
		return nil, excluded, fmt.Errorf("scenario: effective topology: %w", err)
	}
	return eff, excluded, nil
}
