package scenario

import (
	"fmt"
	"sort"

	"holmes/internal/netsim"
	"holmes/internal/topology"
)

// ValidateFor checks the topology-dependent invariants: every node and
// cluster an event names must exist. Call after Validate.
func (s *Scenario) ValidateFor(topo *topology.Topology) error {
	if s.Empty() {
		return nil
	}
	nodes, clusters := topo.NumNodes(), topo.NumClusters()
	for i, ev := range s.Events {
		switch ev.Kind {
		case DegradeNIC, FailNode, RestoreNode:
			if ev.Node >= nodes {
				return fmt.Errorf("scenario: event %d: node %d outside topology (%d nodes)", i, ev.Node, nodes)
			}
		case BackgroundTraffic:
			if ev.Src >= nodes || ev.Dst >= nodes {
				return fmt.Errorf("scenario: event %d: background traffic %d->%d outside topology (%d nodes)", i, ev.Src, ev.Dst, nodes)
			}
		case JoinNodes:
			if ev.Cluster >= clusters {
				return fmt.Errorf("scenario: event %d: cluster %d outside topology (%d clusters)", i, ev.Cluster, clusters)
			}
		}
	}
	return nil
}

// NodeState is the folded condition of one node at an instant.
type NodeState struct {
	// Failed marks the node dropped off the network.
	Failed bool
	// Cumulative capacity factors by class (1 = pristine). Consecutive
	// degrades compound, mirroring netsim.DegradeNode semantics.
	RDMAFactor, EthFactor, IntraFactor float64
}

func pristineNode() NodeState {
	return NodeState{RDMAFactor: 1, EthFactor: 1, IntraFactor: 1}
}

// State is the folded condition of the whole timeline at an instant.
type State struct {
	// Nodes holds the state of every node an event has touched, keyed by
	// global node index; untouched nodes are pristine.
	Nodes map[int]NodeState
	// Joined counts extra nodes per cluster index.
	Joined map[int]int
}

// StateAt folds every event with At <= at, in (At, declaration) order,
// into the net node/cluster condition — the same order Bind applies them
// to a fabric, so both views of a timeline always agree.
func (s *Scenario) StateAt(at float64) State {
	st := State{Nodes: make(map[int]NodeState), Joined: make(map[int]int)}
	if s.Empty() {
		return st
	}
	for _, ev := range s.ordered() {
		if ev.At > at {
			break
		}
		switch ev.Kind {
		case DegradeNIC:
			ns, ok := st.Nodes[ev.Node]
			if !ok {
				ns = pristineNode()
			}
			class, err := ev.Class.netClass(netsim.RDMA)
			if err != nil {
				continue // Validate rejects this; fold defensively
			}
			switch class {
			case netsim.RDMA:
				ns.RDMAFactor *= ev.Factor
			case netsim.Ether:
				ns.EthFactor *= ev.Factor
			default:
				ns.IntraFactor *= ev.Factor
			}
			st.Nodes[ev.Node] = ns
		case FailNode:
			ns, ok := st.Nodes[ev.Node]
			if !ok {
				ns = pristineNode()
			}
			ns.Failed = true
			st.Nodes[ev.Node] = ns
		case RestoreNode:
			delete(st.Nodes, ev.Node)
		case JoinNodes:
			st.Joined[ev.Cluster] += ev.Count
		}
	}
	return st
}

// FailedNodes lists the global indices of nodes failed at the instant,
// ascending.
func (st State) FailedNodes() []int {
	var out []int
	for idx, ns := range st.Nodes {
		if ns.Failed {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// EffectiveSpec folds the timeline at the instant into a buildable
// topology spec: failed nodes are excluded, degraded nodes carry their
// reduced NIC line rates as per-node overrides, and joined nodes extend
// their cluster at its baseline configuration. Intra-node degradation has
// no topology-level representation (the planner treats NVLink/PCIe as
// fixed) and affects only the bound fabric.
//
// The second return value lists the excluded nodes by original global
// index. Building the spec fails if no nodes survive.
func (s *Scenario) EffectiveSpec(topo *topology.Topology, at float64) (topology.Spec, []int, error) {
	st := s.StateAt(at)
	n0 := topo.Node(0)
	spec := topology.Spec{
		GPUsPerNode: topo.GPUsPerNode,
		GPUMemBytes: n0.MemBytesPerGPU,
		Intra:       n0.Intra,
		EthGbps:     n0.EthNIC.Gbps,
	}
	excluded := st.FailedNodes()
	for _, c := range topo.Clusters {
		base := c.Nodes[0]
		cs := topology.ClusterSpec{
			Name:        c.Name,
			NIC:         c.NICType,
			NICsPerNode: len(base.NICs),
			Overrides:   make(map[int]topology.NodeOverride),
		}
		if len(base.NICs) > 0 {
			cs.GbpsPerNIC = base.NICs[0].Gbps
		}
		pos := 0
		for _, n := range c.Nodes {
			ns, touched := st.Nodes[n.Index]
			if touched && ns.Failed {
				continue
			}
			if !touched {
				ns = pristineNode()
			}
			ov := topology.NodeOverride{EthGbps: n.EthNIC.Gbps * ns.EthFactor}
			if len(n.NICs) > 0 {
				ov.GbpsPerNIC = n.NICs[0].Gbps * ns.RDMAFactor
			}
			cs.Overrides[pos] = ov
			pos++
		}
		cs.Nodes = pos + st.Joined[c.Index]
		if cs.Nodes == 0 {
			// Every node of the cluster failed and none joined: the
			// cluster disappears from the effective topology.
			continue
		}
		spec.Clusters = append(spec.Clusters, cs)
	}
	if len(spec.Clusters) == 0 {
		return topology.Spec{}, excluded, fmt.Errorf("scenario: no nodes survive at t=%v", at)
	}
	return spec, excluded, nil
}

// EffectiveTopology builds the post-event topology at the instant; see
// EffectiveSpec.
func (s *Scenario) EffectiveTopology(topo *topology.Topology, at float64) (*topology.Topology, []int, error) {
	spec, excluded, err := s.EffectiveSpec(topo, at)
	if err != nil {
		return nil, excluded, err
	}
	eff, err := topology.Build(spec)
	if err != nil {
		return nil, excluded, fmt.Errorf("scenario: effective topology: %w", err)
	}
	return eff, excluded, nil
}
