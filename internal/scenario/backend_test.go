package scenario

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"holmes/internal/netsim"
	"holmes/internal/sim"
	"holmes/internal/topology"
)

// Regression for the Until-overrun bug: a greedy background chunk
// admitted just before the deadline used to drain in full, perturbing
// the fabric arbitrarily far past the scripted window. Now the in-flight
// chunk is aborted at Until, so a probe flow started just after the
// deadline sees a pristine fabric.
func TestStreamGreedyAbortsAtUntil(t *testing.T) {
	const until = 0.01
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	sc := &Scenario{Events: []Event{{
		Kind: BackgroundTraffic, At: 0, Src: 0, Dst: 1, Class: ClassRDMA, Until: until,
	}}}
	if _, err := sc.Bind(eng, fab); err != nil {
		t.Fatal(err)
	}
	// A greedy stream saturates the node-0 RDMA links with back-to-back
	// 64 MiB chunks, so one is always mid-flight when the deadline hits.
	probeBytes := 1e8
	var start, end sim.Time
	eng.At(until+1e-4, func() {
		start = eng.Now()
		fab.StartFlow(0, 8, probeBytes, netsim.RDMA, func() { end = eng.Now() })
	})
	eng.Run()
	lone := fab.TransferTime(0, 8, probeBytes, netsim.RDMA)
	if got := end - start; math.Abs(got-lone) > 1e-9 {
		t.Fatalf("probe after the deadline took %v, want lone-flow %v — the stream leaked past Until", got, lone)
	}
}

// Regression, rate-capped arm: the final chunk used to carry a full
// bgChunkSeconds of offered bytes even when the deadline was nearer,
// stretching the scripted load past Until. It is now clamped to
// rate*(Until-Now()), ending exactly at the deadline on an uncongested
// path.
func TestStreamRateCappedClampsFinalChunk(t *testing.T) {
	const until = 0.12 // 2 full 50 ms chunks plus a 20 ms remainder
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	sc := &Scenario{Events: []Event{{
		Kind: BackgroundTraffic, At: 0, Src: 0, Dst: 1, Class: ClassRDMA,
		Gbps: 400, Until: until,
	}}}
	if _, err := sc.Bind(eng, fab); err != nil {
		t.Fatal(err)
	}
	probeBytes := 1e8
	var start, end sim.Time
	eng.At(until+1e-4, func() {
		start = eng.Now()
		fab.StartFlow(0, 8, probeBytes, netsim.RDMA, func() { end = eng.Now() })
	})
	eng.Run()
	lone := fab.TransferTime(0, 8, probeBytes, netsim.RDMA)
	if got := end - start; math.Abs(got-lone) > 1e-9 {
		t.Fatalf("probe after the deadline took %v, want lone-flow %v — the final chunk overran Until", got, lone)
	}
}

func TestFlapLinkDutyCycle(t *testing.T) {
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	baseOut, baseIn, err := fab.NodeCaps(0, netsim.RDMA)
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{Events: []Event{{
		Kind: FlapLink, At: 0.01, Node: 0, Class: ClassRDMA,
		DownMs: 10, UpMs: 10, Until: 0.05,
	}}}
	if _, err := sc.Bind(eng, fab); err != nil {
		t.Fatal(err)
	}
	probe := func(at float64, wantFactor float64) {
		t.Helper()
		eng.RunUntil(at)
		out, in, _ := fab.NodeCaps(0, netsim.RDMA)
		if out != baseOut*wantFactor || in != baseIn*wantFactor {
			t.Fatalf("t=%v: caps (%v, %v), want factor %v of (%v, %v)", at, out, in, wantFactor, baseOut, baseIn)
		}
	}
	probe(0.005, 1)                   // before the flap
	probe(0.015, netsim.FailResidual) // first down phase
	probe(0.025, 1)                   // first up phase
	probe(0.035, netsim.FailResidual) // second down phase
	probe(0.045, 1)                   // second up phase
	probe(0.06, 1)                    // past Until
}

func TestPartitionCutsAndHealsTrunk(t *testing.T) {
	topo := topology.HybridEnv(4)
	p := netsim.DefaultParams()
	p.InterClusterGbps = 20
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, p)
	base, ok := fab.TrunkBandwidth(0, 1)
	if !ok {
		t.Fatal("no trunk")
	}
	sc := &Scenario{Events: []Event{{Kind: Partition, At: 1, Cluster: 1, Peer: 0, Until: 2}}}
	if _, err := sc.Bind(eng, fab); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1.5)
	if got, _ := fab.TrunkBandwidth(0, 1); got != base*netsim.FailResidual {
		t.Fatalf("partitioned trunk bw %v, want %v", got, base*netsim.FailResidual)
	}
	eng.RunUntil(2.5)
	if got, _ := fab.TrunkBandwidth(0, 1); got != base {
		t.Fatalf("healed trunk bw %v, want %v", got, base)
	}
}

func TestPartitionRequiresTrunk(t *testing.T) {
	topo := topology.HybridEnv(4)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams()) // trunkless
	sc := &Scenario{Events: []Event{{Kind: Partition, At: 1, Cluster: 0, Peer: 1}}}
	if _, err := sc.Bind(eng, fab); err == nil {
		t.Fatal("partition bound to a trunkless fabric")
	}
}

func TestStragglerFailClusterRestore(t *testing.T) {
	topo := topology.HybridEnv(4)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	base0out, base0in, _ := fab.NodeCaps(0, netsim.RDMA)
	base2out, _, _ := fab.NodeCaps(2, netsim.Ether)
	sc := &Scenario{Events: []Event{
		{Kind: Straggler, At: 1, Node: 0, Factor: 0.5},
		{Kind: FailCluster, At: 2, Cluster: 1},
		{Kind: RestoreNode, At: 3, Node: 0},
	}}
	if _, err := sc.Bind(eng, fab); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1.5)
	if out, in, _ := fab.NodeCaps(0, netsim.RDMA); out != base0out*0.5 || in != base0in*0.5 {
		t.Fatalf("straggler caps (%v, %v), want half of (%v, %v)", out, in, base0out, base0in)
	}
	eng.RunUntil(2.5)
	if out, _, _ := fab.NodeCaps(2, netsim.Ether); out != base2out*netsim.FailResidual {
		t.Fatalf("failed-cluster node eth cap %v, want residual of %v", out, base2out)
	}
	eng.RunUntil(3.5)
	if out, in, _ := fab.NodeCaps(0, netsim.RDMA); out != base0out || in != base0in {
		t.Fatalf("restored straggler caps (%v, %v), want (%v, %v)", out, in, base0out, base0in)
	}
	// fail_cluster is permanent: the restore did not resurrect cluster 1.
	if out, _, _ := fab.NodeCaps(2, netsim.Ether); out != base2out*netsim.FailResidual {
		t.Fatal("restore_node resurrected a failed cluster")
	}
}

func TestImpairmentEventsDriveFabric(t *testing.T) {
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	sc := &Scenario{Events: []Event{
		{Kind: Loss, At: 1, Node: 0, Class: ClassEther, Pct: 10, Direction: "out", Until: 2},
		{Kind: Delay, At: 1, Node: 0, Class: ClassEther, DelayMs: 5},
		{Kind: Corrupt, At: 1.5, Node: 0, Class: ClassEther, Pct: 10, Direction: "out"},
	}}
	if _, err := sc.Bind(eng, fab); err != nil {
		t.Fatal(err)
	}
	closeTo := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
	eng.RunUntil(1.2)
	imp := fab.ImpairmentOf(0, netsim.Ether, false)
	if !closeTo(imp.Efficiency, 0.9) || !closeTo(imp.ExtraLatency, 0.005) {
		t.Fatalf("t=1.2 outbound impairment %+v, want eff 0.9 delay 5ms", imp)
	}
	if in := fab.ImpairmentOf(0, netsim.Ether, true); !closeTo(in.ExtraLatency, 0.005) || in.Efficiency != 0 {
		t.Fatalf("t=1.2 inbound impairment %+v, want delay only", in)
	}
	eng.RunUntil(1.7)
	if imp = fab.ImpairmentOf(0, netsim.Ether, false); !closeTo(imp.Efficiency, 0.81) {
		t.Fatalf("t=1.7 eff %v, want loss×corrupt 0.81", imp.Efficiency)
	}
	eng.RunUntil(2.5)
	imp = fab.ImpairmentOf(0, netsim.Ether, false)
	if !closeTo(imp.Efficiency, 0.9) || !closeTo(imp.ExtraLatency, 0.005) {
		t.Fatalf("t=2.5 impairment %+v, want corrupt 0.9 + delay after loss expiry", imp)
	}
}

// Scenario-owned jitter seed: replays with the same seed are
// bit-identical, different seeds diverge.
func TestScenarioSeedDrivesJitter(t *testing.T) {
	run := func(seed int64) []sim.Time {
		topo := topology.IBEnv(2)
		eng := sim.NewEngine()
		fab := netsim.New(eng, topo, netsim.DefaultParams())
		sc := &Scenario{Seed: seed, Events: []Event{
			{Kind: Jitter, At: 0, Node: 0, Class: ClassRDMA, JitterMs: 0.01, Dist: "normal"},
		}}
		if _, err := sc.Bind(eng, fab); err != nil {
			t.Fatal(err)
		}
		var ends []sim.Time
		// Start the flows after the jitter event has installed itself.
		eng.At(0.001, func() {
			for i := 0; i < 6; i++ {
				fab.StartFlow(0, 8, 1e7, netsim.RDMA, func() { ends = append(ends, eng.Now()) })
			}
		})
		eng.Run()
		return ends
	}
	a, b, c := run(7), run(7), run(8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at flow %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different scenario seeds produced identical jitter")
	}
}

// The two-views-agree invariant, as a property test: bind a random
// timeline to a live fabric, advance to random instants, and the
// fabric's actual link capacities must equal the StateAt fold — exactly,
// since the runtime pushes state recomputed by the very same fold.
func TestTimelineFabricStateAgreeProperty(t *testing.T) {
	classes := []netsim.Class{netsim.Intra, netsim.RDMA, netsim.Ether}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		topo := topology.HybridEnv(4)
		p := netsim.DefaultParams()
		p.InterClusterGbps = 20
		eng := sim.NewEngine()
		fab := netsim.New(eng, topo, p)
		nodes := topo.NumNodes()
		base := make(map[capKey]savedCaps)
		for n := 0; n < nodes; n++ {
			for _, cl := range classes {
				out, in, _ := fab.NodeCaps(n, cl)
				base[capKey{node: n, class: cl}] = savedCaps{out: out, in: in}
			}
		}
		baseTrunk, _ := fab.TrunkBandwidth(0, 1)
		sc := randomCapacityStorm(rng, nodes)
		rt, err := sc.Bind(eng, fab)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		probes := make([]float64, 12)
		for i := range probes {
			probes[i] = rng.Float64() * 6
		}
		sort.Float64s(probes)
		for _, at := range probes {
			eng.RunUntil(at)
			st := sc.StateAt(at)
			for n := 0; n < nodes; n++ {
				ns, ok := st.Nodes[n]
				if !ok {
					ns = pristineNode()
				}
				down := ns.Failed || st.FailedClusters[topo.Node(n).Cluster]
				for _, cl := range classes {
					f := ns.Factor(cl)
					if down && cl != netsim.Intra {
						f *= netsim.FailResidual
					}
					b := base[capKey{node: n, class: cl}]
					out, in, _ := fab.NodeCaps(n, cl)
					if out != b.out*f || in != b.in*f {
						t.Fatalf("seed %d t=%v node %d %v: fabric caps (%v, %v), StateAt fold wants (%v, %v)\nscenario: %+v",
							seed, at, n, cl, out, in, b.out*f, b.in*f, sc.Events)
					}
				}
			}
			wantTrunk := baseTrunk
			if st.Partitioned(0, 1) {
				wantTrunk = baseTrunk * netsim.FailResidual
			}
			if got, _ := fab.TrunkBandwidth(0, 1); got != wantTrunk {
				t.Fatalf("seed %d t=%v: trunk bw %v, StateAt fold wants %v\nscenario: %+v",
					seed, at, got, wantTrunk, sc.Events)
			}
		}
		rt.Stop()
	}
}

// randomCapacityStorm scripts a random mix of every capacity-affecting
// kind (plus impairment noise, which must not move capacities).
func randomCapacityStorm(rng *rand.Rand, nodes int) *Scenario {
	classes := []Class{ClassRDMA, ClassEther, ClassIntra}
	n := 3 + rng.Intn(8)
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		at := rng.Float64() * 5
		node := rng.Intn(nodes)
		switch rng.Intn(9) {
		case 0:
			evs = append(evs, Event{Kind: DegradeNIC, At: at, Node: node,
				Class: classes[rng.Intn(len(classes))], Factor: 0.1 + 0.9*rng.Float64()})
		case 1:
			evs = append(evs, Event{Kind: FailNode, At: at, Node: node})
		case 2:
			evs = append(evs, Event{Kind: RestoreNode, At: at, Node: node})
		case 3:
			evs = append(evs, Event{Kind: Straggler, At: at, Node: node, Factor: 0.3 + 0.7*rng.Float64()})
		case 4:
			evs = append(evs, Event{Kind: FlapLink, At: at, Node: node,
				Class:  classes[rng.Intn(2)],
				DownMs: 5 + 45*rng.Float64(), UpMs: 5 + 45*rng.Float64(),
				Until: at + 0.2 + rng.Float64()})
		case 5:
			ev := Event{Kind: Partition, At: at, Cluster: 0, Peer: 1}
			if rng.Intn(2) == 0 {
				ev.Until = at + 0.5 + rng.Float64()
			}
			evs = append(evs, ev)
		case 6:
			evs = append(evs, Event{Kind: FailCluster, At: at, Cluster: rng.Intn(2)})
		case 7:
			evs = append(evs, Event{Kind: Loss, At: at, Node: node, Pct: 1 + 50*rng.Float64(),
				Until: at + rng.Float64()})
		default:
			evs = append(evs, Event{Kind: Delay, At: at, Node: node, DelayMs: 1 + 10*rng.Float64()})
		}
	}
	return &Scenario{Name: "storm", Events: evs}
}

// TestHTTPBackendStallingServer is the regression for the untimed
// default client: an impairment box that accepts the connection and then
// never answers must fail the POST within the client's bound instead of
// hanging the scenario runtime forever. Before the fix a nil client fell
// back to http.DefaultClient, which has no timeout at all.
func TestHTTPBackendStallingServer(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stall: no header, no body, until the test ends
	}))
	defer func() { close(release); srv.Close() }()

	topo := topology.IBEnv(2)

	// Arm 1: a nil client must get a bounded default, not
	// http.DefaultClient. The bound itself is 10s — too slow for a unit
	// test — so assert the wiring, then drive the stall with a short
	// explicit timeout through the same code path.
	b := NewHTTPBackend(srv.URL, topo, nil)
	if b.client == http.DefaultClient {
		t.Fatal("nil client fell back to the untimed http.DefaultClient")
	}
	if b.client.Timeout != HTTPBackendTimeout {
		t.Fatalf("default client timeout %v, want %v", b.client.Timeout, HTTPBackendTimeout)
	}

	fast := NewHTTPBackend(srv.URL, topo, &http.Client{Timeout: 50 * time.Millisecond})
	start := time.Now()
	err := fast.SetNodeFactor(0, netsim.RDMA, 0.5)
	if err == nil {
		t.Fatal("POST against a stalling server returned nil")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled POST took %v; the timeout did not bound it", elapsed)
	}

	// Arm 2: context cancellation aborts an in-flight POST even when the
	// client itself has no timeout.
	ctx, cancel := context.WithCancel(context.Background())
	hung := NewHTTPBackend(srv.URL, topo, &http.Client{}).WithContext(ctx)
	done := make(chan error, 1)
	go func() { done <- hung.SetNodeFactor(0, netsim.RDMA, 0.5) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled POST returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled POST never returned: context is not plumbed through")
	}
}

func TestHTTPBackendPostsTimeline(t *testing.T) {
	type call struct {
		Path string
		Body map[string]any
	}
	var mu sync.Mutex
	var calls []call
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var m map[string]any
		_ = json.Unmarshal(body, &m)
		mu.Lock()
		calls = append(calls, call{Path: r.URL.Path, Body: m})
		mu.Unlock()
	}))
	defer srv.Close()

	topo := topology.IBEnv(2)
	sc := &Scenario{Seed: 42, Events: []Event{
		{Kind: Delay, At: 1, Node: 0, Class: ClassEther, DelayMs: 5, Direction: "out", Until: 2},
		{Kind: FailNode, At: 3, Node: 1},
	}}
	eng := sim.NewEngine()
	rt, err := sc.BindBackend(eng, NewHTTPBackend(srv.URL, topo, srv.Client()))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if rt.Applied() != 2 {
		t.Fatalf("applied %d scripted events, want 2", rt.Applied())
	}
	wantPaths := []string{"/v2/seed", "/v2/impair", "/v2/impair", "/v2/rate", "/v2/rate"}
	if len(calls) != len(wantPaths) {
		t.Fatalf("got %d calls %+v, want paths %v", len(calls), calls, wantPaths)
	}
	for i, p := range wantPaths {
		if calls[i].Path != p {
			t.Fatalf("call %d hit %s, want %s (all: %+v)", i, calls[i].Path, p, calls)
		}
	}
	if got := calls[0].Body["seed"].(float64); got != 42 {
		t.Fatalf("seed call sent %v", calls[0].Body)
	}
	if got := calls[1].Body["delay_ms"].(float64); got != 5 {
		t.Fatalf("impair call sent %v", calls[1].Body)
	}
	if got := calls[2].Body["delay_ms"].(float64); got != 0 {
		t.Fatalf("impair expiry sent %v, want cleared delay", calls[2].Body)
	}
	if got := calls[3].Body["factor"].(float64); got != netsim.FailResidual {
		t.Fatalf("rate call sent %v, want fail residual", calls[3].Body)
	}
}
