package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"holmes/internal/netsim"
	"holmes/internal/sim"
	"holmes/internal/topology"
)

func TestValidateRejectsBadTimelines(t *testing.T) {
	bad := []struct {
		name string
		ev   Event
	}{
		{"unknown kind", Event{Kind: "reboot", At: 0}},
		{"negative time", Event{Kind: FailNode, At: -1}},
		{"NaN time", Event{Kind: FailNode, At: math.NaN()}},
		{"infinite time", Event{Kind: FailNode, At: math.Inf(1)}},
		{"zero factor", Event{Kind: DegradeNIC, At: 0, Factor: 0}},
		{"factor above one", Event{Kind: DegradeNIC, At: 0, Factor: 1.5}},
		{"negative node", Event{Kind: DegradeNIC, At: 0, Node: -2, Factor: 0.5}},
		{"bad class", Event{Kind: DegradeNIC, At: 0, Factor: 0.5, Class: "carrier-pigeon"}},
		{"self traffic", Event{Kind: BackgroundTraffic, At: 0, Src: 1, Dst: 1, Gbps: 1}},
		{"negative rate", Event{Kind: BackgroundTraffic, At: 0, Src: 0, Dst: 1, Gbps: -1}},
		{"until before start", Event{Kind: BackgroundTraffic, At: 2, Src: 0, Dst: 1, Gbps: 1, Until: 1}},
		{"join zero nodes", Event{Kind: JoinNodes, At: 0, Cluster: 0, Count: 0}},
		{"join negative cluster", Event{Kind: JoinNodes, At: 0, Cluster: -1, Count: 1}},
	}
	for _, tc := range bad {
		sc := &Scenario{Events: []Event{tc.ev}}
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

func TestValidateForRejectsOutOfRangeTargets(t *testing.T) {
	topo := topology.HybridEnv(4)
	for _, ev := range []Event{
		{Kind: FailNode, At: 0, Node: 4},
		{Kind: DegradeNIC, At: 0, Node: 99, Factor: 0.5},
		{Kind: BackgroundTraffic, At: 0, Src: 0, Dst: 4, Gbps: 1},
		{Kind: JoinNodes, At: 0, Cluster: 2, Count: 1},
	} {
		sc := &Scenario{Events: []Event{ev}}
		if err := sc.ValidateFor(topo); err == nil {
			t.Errorf("%+v: validated against a 4-node topology", ev)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sc := &Scenario{
		Name: "rough-day",
		Events: []Event{
			{Kind: DegradeNIC, At: 0.5, Node: 1, Class: ClassRDMA, Factor: 0.25},
			{Kind: BackgroundTraffic, At: 1, Src: 0, Dst: 2, Class: ClassEther, Gbps: 20, Until: 5},
			{Kind: FailNode, At: 2, Node: 3},
			{Kind: RestoreNode, At: 6, Node: 1},
			{Kind: JoinNodes, At: 7, Cluster: 1, Count: 2},
		},
	}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != sc.Name || len(back.Events) != len(sc.Events) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range sc.Events {
		if back.Events[i] != sc.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, back.Events[i], sc.Events[i])
		}
	}
}

func TestLoadRejectsUnknownFieldsAndInvalid(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"events":[{"kind":"fail_node","at":0,"bogus":1}]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`{"events":[{"kind":"degrade_nic","at":0,"factor":7}]}`)); err == nil {
		t.Error("invalid factor accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{} {"events":[{"kind":"fail_node","at":0}]}`)); err == nil {
		t.Error("trailing data accepted: real events silently dropped")
	}
}

func TestStateFolding(t *testing.T) {
	sc := &Scenario{Events: []Event{
		{Kind: DegradeNIC, At: 1, Node: 0, Factor: 0.5},               // rdma ×0.5
		{Kind: DegradeNIC, At: 2, Node: 0, Factor: 0.5},               // compounds to ×0.25
		{Kind: DegradeNIC, At: 2, Node: 1, Class: "Eth", Factor: 0.1}, // eth ×0.1
		{Kind: FailNode, At: 3, Node: 2},
		{Kind: RestoreNode, At: 4, Node: 0},
		{Kind: JoinNodes, At: 5, Cluster: 1, Count: 2},
	}}
	st := sc.StateAt(2.5)
	if got := st.Nodes[0].RDMAFactor; got != 0.25 {
		t.Errorf("node 0 rdma factor %v, want 0.25 (compounded)", got)
	}
	if got := st.Nodes[1].EthFactor; got != 0.1 {
		t.Errorf("node 1 eth factor %v, want 0.1", got)
	}
	if len(st.FailedNodes()) != 0 {
		t.Errorf("failure folded early: %v", st.FailedNodes())
	}

	st = sc.StateAt(3.5)
	if got := st.FailedNodes(); len(got) != 1 || got[0] != 2 {
		t.Errorf("failed nodes %v, want [2]", got)
	}

	st = sc.StateAt(math.Inf(1))
	if _, touched := st.Nodes[0]; touched {
		t.Error("restore did not reset node 0")
	}
	if st.Joined[1] != 2 {
		t.Errorf("joined %v, want 2 in cluster 1", st.Joined)
	}
}

func TestEffectiveTopologyExcludesFailedAndScalesDegraded(t *testing.T) {
	topo := topology.HybridEnv(4) // nodes 0,1 IB; 2,3 RoCE
	sc := &Scenario{Events: []Event{
		{Kind: FailNode, At: 0, Node: 3},
		{Kind: DegradeNIC, At: 0, Node: 0, Factor: 0.5},
		{Kind: JoinNodes, At: 1, Cluster: 1, Count: 2},
	}}
	eff, excluded, err := sc.EffectiveTopology(topo, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(excluded) != 1 || excluded[0] != 3 {
		t.Fatalf("excluded %v, want [3]", excluded)
	}
	// 4 - 1 failed + 2 joined = 5 nodes.
	if eff.NumNodes() != 5 {
		t.Fatalf("%d nodes, want 5", eff.NumNodes())
	}
	if got := eff.Node(0).RDMAGbps(); got != topo.Node(0).RDMAGbps()*0.5 {
		t.Errorf("degraded node carries %v Gbps, want half of %v", got, topo.Node(0).RDMAGbps())
	}
	if got := eff.Node(1).RDMAGbps(); got != topo.Node(1).RDMAGbps() {
		t.Errorf("untouched node changed: %v vs %v", got, topo.Node(1).RDMAGbps())
	}
	// Joined RoCE nodes arrive at the cluster's baseline capacity.
	if got, want := eff.Node(4).RDMAGbps(), topo.Node(2).RDMAGbps(); got != want {
		t.Errorf("joined node at %v Gbps, want baseline %v", got, want)
	}
	if err := eff.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degraded capacity must be visible to a fabric built on the
	// effective topology.
	effFab := netsim.New(sim.NewEngine(), eff, netsim.DefaultParams())
	origFab := netsim.New(sim.NewEngine(), topo, netsim.DefaultParams())
	if got, want := effFab.NodeBandwidth(0, netsim.RDMA), origFab.NodeBandwidth(0, netsim.RDMA)/2; got != want {
		t.Errorf("effective fabric bandwidth %v, want %v", got, want)
	}
	// Fingerprints must differ (the engine cache keys on them).
	if eff.Fingerprint() == topo.Fingerprint() {
		t.Error("effective topology shares the pristine fingerprint")
	}
}

func TestEffectiveTopologyDropsEmptyClusterAndErrorsWhenNothingSurvives(t *testing.T) {
	topo := topology.HybridEnv(4)
	sc := &Scenario{Events: []Event{
		{Kind: FailNode, At: 0, Node: 2},
		{Kind: FailNode, At: 0, Node: 3},
	}}
	eff, _, err := sc.EffectiveTopology(topo, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if eff.NumClusters() != 1 || eff.NumNodes() != 2 {
		t.Fatalf("want the IB cluster alone, got %s", eff)
	}

	all := &Scenario{Events: []Event{
		{Kind: FailNode, At: 0, Node: 0}, {Kind: FailNode, At: 0, Node: 1},
		{Kind: FailNode, At: 0, Node: 2}, {Kind: FailNode, At: 0, Node: 3},
	}}
	if _, _, err := all.EffectiveTopology(topo, math.Inf(1)); err == nil {
		t.Fatal("total loss produced a topology")
	}
}

// Bind/restore round trip: capacities degraded (twice, compounding) and
// restored mid-run must return exactly to the original, and the fabric
// must apply events at their scripted instants.
func TestRuntimeAppliesAndRestoresCapacities(t *testing.T) {
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	orig := fab.NodeBandwidth(0, netsim.RDMA)

	sc := &Scenario{Events: []Event{
		{Kind: DegradeNIC, At: 1, Node: 0, Factor: 0.5},
		{Kind: DegradeNIC, At: 2, Node: 0, Factor: 0.5},
		{Kind: RestoreNode, At: 3, Node: 0},
	}}
	rt, err := sc.Bind(eng, fab)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1.5)
	if got := fab.NodeBandwidth(0, netsim.RDMA); got != orig*0.5 {
		t.Fatalf("after first degrade: %v, want %v", got, orig*0.5)
	}
	eng.RunUntil(2.5)
	if got := fab.NodeBandwidth(0, netsim.RDMA); got != orig*0.25 {
		t.Fatalf("after second degrade: %v, want %v (compounded)", got, orig*0.25)
	}
	eng.RunUntil(3.5)
	if got := fab.NodeBandwidth(0, netsim.RDMA); got != orig {
		t.Fatalf("after restore: %v, want original %v", got, orig)
	}
	if rt.Applied() != 3 {
		t.Fatalf("applied %d events, want 3", rt.Applied())
	}
}

// Stop must cancel pending events and halt open-ended background
// traffic so the engine can drain.
func TestRuntimeStopHaltsOpenEndedTraffic(t *testing.T) {
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	sc := &Scenario{Events: []Event{
		{Kind: BackgroundTraffic, At: 0, Src: 0, Dst: 1, Gbps: 50}, // Until 0: open-ended
		{Kind: DegradeNIC, At: 1e6, Node: 0, Factor: 0.5},          // far future
	}}
	rt, err := sc.Bind(eng, fab)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1.0)
	if fab.InFlight() == 0 {
		t.Fatal("background stream never started")
	}
	rt.Stop()
	end := eng.Run() // must terminate: generators halted, future events cancelled
	if fab.InFlight() != 0 {
		t.Fatalf("%d flows still alive after stop", fab.InFlight())
	}
	if end >= 1e6 {
		t.Fatalf("engine ran to the cancelled event at t=%v", end)
	}
	rt.Stop() // idempotent
}

// Bounded background traffic must end on its own at Until.
func TestBackgroundTrafficRespectsUntil(t *testing.T) {
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	sc := &Scenario{Events: []Event{
		{Kind: BackgroundTraffic, At: 0, Src: 0, Dst: 1, Gbps: 80, Until: 2},
	}}
	if _, err := sc.Bind(eng, fab); err != nil {
		t.Fatal(err)
	}
	end := eng.Run()
	if fab.InFlight() != 0 {
		t.Fatalf("%d flows alive after drain", fab.InFlight())
	}
	// The stream stops at Until; the last chunk drains shortly after.
	if end < 2 || end > 2.5 {
		t.Fatalf("engine drained at t=%v, want shortly after until=2", end)
	}
}

// A rate-capped stream must offer only its scripted load: a probe flow
// sharing the link keeps (link − rate) bandwidth, not a greedy fair
// half. This is the observable contract of StartFlowRateCapped.
func TestBackgroundTrafficOffersScriptedRate(t *testing.T) {
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	const gbps, until = 10.0, 4.0
	rate := gbps / 8 * 1e9
	link := fab.NodeBandwidth(0, netsim.RDMA)
	sc := &Scenario{Events: []Event{
		{Kind: BackgroundTraffic, At: 0, Src: 0, Dst: 1, Class: ClassRDMA, Gbps: gbps, Until: until},
	}}
	if _, err := sc.Bind(eng, fab); err != nil {
		t.Fatal(err)
	}
	probeBytes := 10e9
	var probeDone float64
	eng.At(0.1, func() {
		fab.StartFlow(0, 8, probeBytes, netsim.RDMA, func() { probeDone = eng.Now() })
	})
	end := eng.Run()
	if got := end; got < until || got > until+0.1 {
		t.Fatalf("stream drained at %v, want just past %v", got, until)
	}
	if probeDone == 0 {
		t.Fatal("probe never completed")
	}
	// With the stream capped at `rate`, the probe keeps link−rate and
	// finishes in probeBytes/(link−rate); a greedy (uncapped) stream
	// would halve the probe's bandwidth. Assert the capped regime with
	// slack for chunk latency gaps.
	capped := probeBytes / (link - rate)
	greedy := probeBytes / (link / 2)
	if elapsed := probeDone - 0.1; elapsed > (capped+greedy)/2 {
		t.Fatalf("probe took %.4fs: stream is not rate-capped (capped regime %.4fs, greedy %.4fs)",
			elapsed, capped, greedy)
	}
}

func TestEmptyScenarioBindsInert(t *testing.T) {
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	var nilSc *Scenario
	rt, err := nilSc.Bind(eng, fab)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 0 {
		t.Fatalf("nil scenario scheduled %d events", eng.Pending())
	}
	rt.Stop()
	rt2, err := (&Scenario{}).Bind(eng, fab)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 0 || rt2.Applied() != 0 {
		t.Fatal("empty scenario is not inert")
	}
}
