package scenario

import (
	"fmt"

	"holmes/internal/netsim"
	"holmes/internal/sim"
)

// Runtime is one scenario bound to an engine and a backend: it owns the
// scheduled timeline events and pushes folded target state to the
// backend at each event instant. Stop cancels everything still pending;
// the trainer calls it when the iteration completes so an open-ended
// scenario (background traffic with Until = 0, events scripted past the
// iteration's end) cannot keep the engine alive.
//
// The runtime never mutates the network incrementally. At every event it
// re-folds the timeline prefix (StateAt / foldImpair) and pushes
// absolute factors and impairments, so the live network and the planner
// view StateAt exposes agree by construction — including under event
// orderings the incremental bookkeeping used to get subtly wrong
// (double failures, restores crossing flap windows).
type Runtime struct {
	eng     *sim.Engine
	be      Backend
	sc      *Scenario
	stopped bool
	pending []*sim.Event
	applied int
}

// Bind validates the scenario against the fabric's topology and
// schedules every event onto the engine at its simulated instant,
// driving the fabric through the default FabricBackend. Events apply in
// (At, declaration) order; an empty scenario schedules nothing, so the
// bound run is bit-identical to an unbound one. JoinNodes events are
// fabric no-ops (a running iteration cannot adopt new nodes); they exist
// for the replanning path (EffectiveTopology).
func (s *Scenario) Bind(eng *sim.Engine, fab *netsim.Fabric) (*Runtime, error) {
	return s.BindBackend(eng, NewFabricBackend(eng, fab))
}

// BindBackend is Bind against any Backend — the in-process fabric or an
// external HTTP impairment server.
func (s *Scenario) BindBackend(eng *sim.Engine, be Backend) (*Runtime, error) {
	rt := &Runtime{eng: eng, be: be, sc: s}
	if s.Empty() {
		return rt, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.ValidateFor(be.Topo()); err != nil {
		return nil, err
	}
	ordered := s.ordered()
	// Partitions need a trunk to cut; fail at bind time, not mid-run.
	for _, ev := range ordered {
		if ev.Kind == Partition {
			if err := be.CheckTrunk(ev.Cluster, ev.Peer); err != nil {
				return nil, err
			}
		}
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	be.SeedJitter(seed)
	for _, ev := range ordered {
		ev := ev
		switch ev.Kind {
		case DegradeNIC:
			class := mustClass(ev.Class, netsim.RDMA)
			rt.schedule(ev.At, func() { rt.pushNode(ev.Node, class) })
		case Straggler, FailNode:
			rt.schedule(ev.At, func() { rt.pushNode(ev.Node, netsim.RDMA, netsim.Ether) })
		case RestoreNode:
			rt.schedule(ev.At, func() { rt.pushNode(ev.Node, netsim.Intra, netsim.RDMA, netsim.Ether) })
		case BackgroundTraffic:
			rt.schedule(ev.At, func() { rt.be.Stream(ev, rt) })
		case JoinNodes:
			// No fabric effect; counted as applied for observability.
			rt.schedule(ev.At, func() {})
		case Delay, Jitter, Loss, Corrupt:
			class := mustClass(ev.Class, netsim.Ether)
			out, in, _ := ev.dirs()
			push := func() { rt.pushImpair(ev.Node, class, out, in) }
			rt.schedule(ev.At, push)
			if ev.Until > 0 {
				rt.scheduleInternal(ev.Until, push)
			}
		case FlapLink:
			rt.scheduleFlap(ev)
		case Partition:
			push := func() { rt.pushTrunk(ev.Cluster, ev.Peer) }
			rt.schedule(ev.At, push)
			if ev.Until > 0 {
				rt.scheduleInternal(ev.Until, push)
			}
		case FailCluster:
			rt.schedule(ev.At, func() { rt.pushCluster(ev.Cluster) })
		}
	}
	return rt, nil
}

// mustClass resolves a validated class name; Validate already rejected
// anything unknown.
func mustClass(c Class, def netsim.Class) netsim.Class {
	class, err := c.netClass(def)
	if err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	return class
}

// scheduleFlap lays out one flap_link event's edges. The edge instants
// use the exact float arithmetic flapDown folds with (At + k*cycle), so
// a StateAt query at an edge instant agrees with the fabric. Only the
// first down-edge counts as the scripted event firing; the rest of the
// duty cycle is internal bookkeeping.
func (rt *Runtime) scheduleFlap(ev Event) {
	class := mustClass(ev.Class, netsim.RDMA)
	push := func() { rt.pushNode(ev.Node, class) }
	cycle := (ev.DownMs + ev.UpMs) / 1e3
	for k := 0.0; ; k++ {
		down := ev.At + k*cycle
		if down >= ev.Until {
			break
		}
		if k == 0 {
			rt.schedule(down, push)
		} else {
			rt.scheduleInternal(down, push)
		}
		up := down + ev.DownMs/1e3
		if up > ev.Until {
			up = ev.Until
		}
		rt.scheduleInternal(up, push)
	}
}

// pushNode folds the timeline at the current instant and pushes the
// node's absolute capacity factors for the given classes.
func (rt *Runtime) pushNode(node int, classes ...netsim.Class) {
	st := rt.sc.StateAt(rt.eng.Now())
	ns, ok := st.Nodes[node]
	if !ok {
		ns = pristineNode()
	}
	down := ns.Failed || st.FailedClusters[rt.be.Topo().Node(node).Cluster]
	for _, class := range classes {
		f := ns.Factor(class)
		if down && class != netsim.Intra {
			// Failure collapses the network-facing links to the residual
			// trickle on top of any degradation; the intra-node
			// interconnect is untouched (FailNode semantics).
			f *= netsim.FailResidual
		}
		if err := rt.be.SetNodeFactor(node, class, f); err != nil {
			// Validate/ValidateFor admit only in-range events, so this
			// is a programming error, not an input error.
			panic(fmt.Sprintf("scenario: apply node factor: %v", err))
		}
	}
}

// pushImpair folds the impairment events at the current instant and
// pushes the node's absolute impairment for the touched directions (the
// zero value clears an expired one).
func (rt *Runtime) pushImpair(node int, class netsim.Class, out, in bool) {
	m := rt.sc.foldImpair(rt.eng.Now())
	for _, inbound := range []bool{false, true} {
		if (inbound && !in) || (!inbound && !out) {
			continue
		}
		imp := m[impairTarget{node: node, class: class, inbound: inbound}]
		if err := rt.be.ApplyImpairment(node, class, inbound, imp); err != nil {
			panic(fmt.Sprintf("scenario: apply impairment: %v", err))
		}
	}
}

// pushTrunk folds the partition state at the current instant and pushes
// the trunk's absolute factor.
func (rt *Runtime) pushTrunk(c1, c2 int) {
	st := rt.sc.StateAt(rt.eng.Now())
	f := 1.0
	if st.Partitioned(c1, c2) {
		f = netsim.FailResidual
	}
	if err := rt.be.SetTrunkFactor(c1, c2, f); err != nil {
		panic(fmt.Sprintf("scenario: partition: %v", err))
	}
}

// pushCluster fails every node of a cluster — the fail_cluster blast
// radius.
func (rt *Runtime) pushCluster(cluster int) {
	for _, n := range rt.be.Topo().Clusters[cluster].Nodes {
		rt.pushNode(n.Index, netsim.RDMA, netsim.Ether)
	}
}

// schedule registers a scripted event firing: it counts toward Applied.
func (rt *Runtime) schedule(at float64, fn func()) {
	rt.pending = append(rt.pending, rt.eng.At(at, func() {
		rt.applied++
		fn()
	}))
}

// scheduleInternal registers runtime bookkeeping (impairment expiries,
// flap edges, stream deadlines) that should not count as a scripted
// event.
func (rt *Runtime) scheduleInternal(at float64, fn func()) {
	rt.pending = append(rt.pending, rt.eng.At(at, fn))
}

// Now implements StreamCtl.
func (rt *Runtime) Now() float64 { return rt.eng.Now() }

// Schedule implements StreamCtl.
func (rt *Runtime) Schedule(at float64, fn func()) { rt.scheduleInternal(at, fn) }

// Live implements StreamCtl.
func (rt *Runtime) Live() bool { return !rt.stopped }

// Applied reports how many timeline events have fired so far.
func (rt *Runtime) Applied() int {
	if rt == nil {
		return 0
	}
	return rt.applied
}

// Stop cancels all pending timeline events and halts background-traffic
// generation; chunks already on the wire drain normally. Safe to call on
// a nil runtime and idempotent.
func (rt *Runtime) Stop() {
	if rt == nil || rt.stopped {
		return
	}
	rt.stopped = true
	for _, ev := range rt.pending {
		ev.Cancel()
	}
	rt.pending = nil
}
