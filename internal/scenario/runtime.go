package scenario

import (
	"fmt"

	"holmes/internal/netsim"
	"holmes/internal/sim"
)

// Background-traffic generation constants. A stream is modelled as
// back-to-back rate-capped chunks rather than one unbounded flow: each
// chunk completion is a scheduling point, so the stream reacts to
// congestion and to Until/Stop, while the per-flow cap keeps the offered
// load at the scripted rate when the path is uncongested.
const (
	// bgChunkSeconds is the chunk length of a rate-limited stream, in
	// seconds of offered traffic.
	bgChunkSeconds = 0.05
	// bgGreedyChunkBytes is the chunk size of a greedy (Gbps = 0) stream.
	bgGreedyChunkBytes = 64 << 20
)

// Runtime is one scenario bound to a fabric's engine: it owns the
// scheduled timeline events, the background-traffic generators, and the
// capacities saved for RestoreNode. Stop cancels everything still
// pending; the trainer calls it when the iteration completes so an
// open-ended scenario (background traffic with Until = 0, events
// scripted past the iteration's end) cannot keep the engine alive.
type Runtime struct {
	eng     *sim.Engine
	fab     *netsim.Fabric
	stopped bool
	pending []*sim.Event
	saved   map[capKey]savedCaps
	applied int
}

type capKey struct {
	node  int
	class netsim.Class
}

type savedCaps struct{ out, in float64 }

// Bind validates the scenario against the fabric's topology and schedules
// every event onto the engine at its simulated instant. Events apply in
// (At, declaration) order; an empty scenario schedules nothing, so the
// bound run is bit-identical to an unbound one. JoinNodes events are
// fabric no-ops (a running iteration cannot adopt new nodes); they exist
// for the replanning path (EffectiveTopology).
func (s *Scenario) Bind(eng *sim.Engine, fab *netsim.Fabric) (*Runtime, error) {
	rt := &Runtime{eng: eng, fab: fab, saved: make(map[capKey]savedCaps)}
	if s.Empty() {
		return rt, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.ValidateFor(fab.Topo); err != nil {
		return nil, err
	}
	for _, ev := range s.ordered() {
		ev := ev
		switch ev.Kind {
		case DegradeNIC:
			rt.schedule(ev.At, func() { rt.degrade(ev) })
		case FailNode:
			rt.schedule(ev.At, func() { rt.fail(ev) })
		case RestoreNode:
			rt.schedule(ev.At, func() { rt.restore(ev) })
		case BackgroundTraffic:
			rt.schedule(ev.At, func() { rt.stream(ev) })
		case JoinNodes:
			// No fabric effect; counted as applied for observability.
			rt.schedule(ev.At, func() {})
		}
	}
	return rt, nil
}

func (rt *Runtime) schedule(at float64, fn func()) {
	rt.pending = append(rt.pending, rt.eng.At(at, func() {
		rt.applied++
		fn()
	}))
}

// Applied reports how many timeline events have fired so far.
func (rt *Runtime) Applied() int {
	if rt == nil {
		return 0
	}
	return rt.applied
}

// Stop cancels all pending timeline events and halts background-traffic
// generation; chunks already on the wire drain normally. Safe to call on
// a nil runtime and idempotent.
func (rt *Runtime) Stop() {
	if rt == nil || rt.stopped {
		return
	}
	rt.stopped = true
	for _, ev := range rt.pending {
		ev.Cancel()
	}
	rt.pending = nil
}

// saveOnce records a node link-pair's pre-event capacities the first time
// a degrade or failure touches it, so RestoreNode returns to the original
// state no matter how many events compounded in between.
func (rt *Runtime) saveOnce(node int, class netsim.Class, out, in float64) {
	key := capKey{node: node, class: class}
	if _, ok := rt.saved[key]; !ok {
		rt.saved[key] = savedCaps{out: out, in: in}
	}
}

func (rt *Runtime) degrade(ev Event) {
	class, err := ev.Class.netClass(netsim.RDMA)
	if err == nil {
		var out, in float64
		out, in, err = rt.fab.DegradeNode(ev.Node, class, ev.Factor)
		if err == nil {
			rt.saveOnce(ev.Node, class, out, in)
		}
	}
	if err != nil {
		// Validate/ValidateFor admit only in-range events, so this is a
		// programming error, not an input error.
		panic(fmt.Sprintf("scenario: degrade_nic: %v", err))
	}
}

// fail collapses the node's RDMA and Ethernet links; the intra-node
// interconnect is untouched (the fluid model has no notion of killed
// compute — FailNode means "dropped off the network", and the replanning
// path is where the node disappears entirely).
func (rt *Runtime) fail(ev Event) {
	for _, class := range []netsim.Class{netsim.RDMA, netsim.Ether} {
		out, in, err := rt.fab.FailNode(ev.Node, class)
		if err != nil {
			panic(fmt.Sprintf("scenario: fail_node: %v", err))
		}
		rt.saveOnce(ev.Node, class, out, in)
	}
}

// restore returns every link class the scenario has touched on the node
// to its original capacity. Restoring an untouched node is a no-op.
func (rt *Runtime) restore(ev Event) {
	for _, class := range []netsim.Class{netsim.Intra, netsim.RDMA, netsim.Ether} {
		key := capKey{node: ev.Node, class: class}
		sc, ok := rt.saved[key]
		if !ok {
			continue
		}
		if err := rt.fab.RestoreNode(ev.Node, class, sc.out, sc.in); err != nil {
			panic(fmt.Sprintf("scenario: restore_node: %v", err))
		}
		delete(rt.saved, key)
	}
}

// stream generates one background-traffic event's chunks: back-to-back
// flows between the first device of each endpoint node, each chunk capped
// at the scripted rate, until Until (or Stop) ends the stream.
func (rt *Runtime) stream(ev Event) {
	class, err := ev.Class.netClass(netsim.Ether)
	if err != nil {
		panic(fmt.Sprintf("scenario: background_traffic: %v", err))
	}
	g := rt.fab.Topo.GPUsPerNode
	src, dst := ev.Src*g, ev.Dst*g
	rate := ev.Gbps / 8 * 1e9 // bytes/s; 0 = greedy
	chunk := float64(bgGreedyChunkBytes)
	if rate > 0 {
		chunk = rate * bgChunkSeconds
	}
	var next func()
	next = func() {
		if rt.stopped {
			return
		}
		if ev.Until > 0 && rt.eng.Now() >= ev.Until {
			return
		}
		rt.fab.StartFlowRateCapped(src, dst, chunk, class, rate, next)
	}
	next()
}
