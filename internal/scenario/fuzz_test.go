package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"holmes/internal/topology"
)

// FuzzScenarioDecode feeds Load arbitrary JSON. Decoding must never
// panic: it either returns an error or a validated scenario. A scenario
// that validates must survive a marshal/load round trip unchanged, fold
// into a state at any instant, and — when its targets fit a small
// topology — produce a buildable effective topology or a clean error.
func FuzzScenarioDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","events":[{"kind":"fail_node","at":1,"node":0}]}`))
	f.Add([]byte(`{"events":[{"kind":"degrade_nic","at":0.5,"node":1,"class":"RDMA","factor":0.25}]}`))
	f.Add([]byte(`{"events":[{"kind":"background_traffic","at":0,"src":0,"dst":1,"gbps":20,"until":5}]}`))
	f.Add([]byte(`{"events":[{"kind":"join_nodes","at":2,"cluster":1,"count":2},{"kind":"restore_node","at":3,"node":0}]}`))
	f.Add([]byte(`{"events":[{"kind":"degrade_nic","at":-1,"factor":9}]}`)) // invalid: must error
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"events":[{"kind":"degrade_nic","at":1e308,"factor":1e-9}]}`))
	// One committed seed per impairment-vocabulary kind.
	f.Add([]byte(`{"events":[{"kind":"delay","at":1,"node":0,"delay_ms":5,"until":9}]}`))
	f.Add([]byte(`{"seed":7,"events":[{"kind":"jitter","at":0,"node":1,"jitter_ms":2,"dist":"pareto","direction":"in"}]}`))
	f.Add([]byte(`{"events":[{"kind":"loss","at":2,"node":0,"pct":12.5,"class":"Ethernet"}]}`))
	f.Add([]byte(`{"events":[{"kind":"corrupt","at":0,"node":2,"pct":1,"direction":"out","until":4}]}`))
	f.Add([]byte(`{"events":[{"kind":"flap_link","at":1,"until":3,"node":0,"down_ms":50,"up_ms":150}]}`))
	f.Add([]byte(`{"events":[{"kind":"partition","at":2,"cluster":0,"peer":1,"until":6}]}`))
	f.Add([]byte(`{"events":[{"kind":"straggler","at":0,"node":3,"factor":0.5}]}`))
	f.Add([]byte(`{"events":[{"kind":"fail_cluster","at":5,"cluster":1}]}`))
	f.Add([]byte(`{"events":[{"kind":"jitter","at":0,"node":0,"jitter_ms":1,"dist":"cauchy"}]}`))        // invalid dist
	f.Add([]byte(`{"events":[{"kind":"loss","at":0,"node":0,"pct":100}]}`))                              // pct out of range
	f.Add([]byte(`{"events":[{"kind":"flap_link","at":0,"until":1e6,"node":0,"down_ms":1,"up_ms":1}]}`)) // cycle cap

	topo := topology.HybridEnv(4)

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Load(bytes.NewReader(data))
		if err != nil {
			return // invalid timelines must error, not panic
		}
		// Load validated it; Validate must agree on the round trip.
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("valid scenario does not marshal: %v", err)
		}
		back, err := Load(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, out)
		}
		if back.Name != sc.Name || len(back.Events) != len(sc.Events) {
			t.Fatalf("round trip changed the scenario: %+v vs %+v", back, sc)
		}
		for i := range sc.Events {
			if back.Events[i] != sc.Events[i] {
				t.Fatalf("event %d changed in round trip: %+v vs %+v", i, back.Events[i], sc.Events[i])
			}
		}
		// Folding must not panic at any instant.
		for _, at := range []float64{0, 0.5, 1e9} {
			st := sc.StateAt(at)
			for _, ns := range st.Nodes {
				if ns.RDMAFactor < 0 || ns.EthFactor < 0 || ns.IntraFactor < 0 {
					t.Fatalf("negative folded factor: %+v", ns)
				}
			}
		}
		// When the timeline fits the topology, the effective topology
		// either builds valid or errors cleanly.
		if err := sc.ValidateFor(topo); err != nil {
			return
		}
		eff, _, err := sc.EffectiveTopology(topo, 1e9)
		if err != nil {
			return
		}
		if err := eff.Validate(); err != nil {
			t.Fatalf("effective topology invalid: %v", err)
		}
	})
}
