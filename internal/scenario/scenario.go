// Package scenario scripts cluster events over simulated time: NIC
// degradation, node failure and recovery, background traffic stealing
// bandwidth, nodes joining a cluster, and tc/netem-style packet
// impairments — delay, jitter, loss, corruption, link flapping,
// inter-cluster partitions, stragglers, and whole-cluster failures.
//
// The paper assumes stable links and always-on devices (§1, Limitations),
// but its motivating environments — aging, heterogeneous clusters — are
// exactly where NICs flap and tenants share the wire. A Scenario is a
// declarative, JSON-serializable timeline of such events. It is consumed
// two ways:
//
//   - Bind schedules the events onto a sim.Engine so they hit a
//     netsim.Fabric at the right simulated instants; trainer.Simulate
//     then reports iteration time *under* the scenario rather than on a
//     pristine fabric.
//   - StateAt / EffectiveTopology fold the timeline into the topology a
//     planner should reason about after the events: failed nodes
//     excluded, degraded NICs at reduced line rate, joined nodes added.
//     core.Planner.ReplanOn re-runs the joint (t, p) search on it.
//
// An empty scenario is a guaranteed no-op: Bind schedules nothing, so a
// simulation under Scenario{} is bit-identical to one without a scenario.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"holmes/internal/netsim"
)

// Kind enumerates the scripted event types.
type Kind string

const (
	// DegradeNIC scales one node's links of a class by Factor at time At
	// (0 < Factor ≤ 1); consecutive degrades of the same node compound.
	DegradeNIC Kind = "degrade_nic"
	// FailNode drops a node off the network fabric at time At: its RDMA
	// and Ethernet links collapse to a residual trickle (netsim.FailNode
	// semantics), and replanning excludes the node entirely.
	FailNode Kind = "fail_node"
	// RestoreNode returns a previously degraded or failed node to its
	// original capacities at time At.
	RestoreNode Kind = "restore_node"
	// BackgroundTraffic streams Gbps of load from node Src to node Dst on
	// Class between At and Until (Until 0 = until the bound run stops),
	// contending max-min fairly with the training flows.
	BackgroundTraffic Kind = "background_traffic"
	// JoinNodes adds Count nodes to cluster Cluster at time At. A running
	// simulation cannot use them (a training job does not elastically
	// resize mid-iteration); the event exists for the replanning path,
	// where the effective topology grows.
	JoinNodes Kind = "join_nodes"

	// Delay adds DelayMs of latency to node Node's Class links in the
	// scripted Direction(s) from At until Until (0 = rest of the run).
	Delay Kind = "delay"
	// Jitter adds a random extra latency per flow, drawn from Dist
	// (uniform/normal/pareto) scaled by JitterMs, between At and Until.
	// Draws come from the scenario-owned seeded PRNG (Scenario.Seed), so
	// replays of the same timeline are bit-identical.
	Jitter Kind = "jitter"
	// Loss drops Pct% of packets on node Node's Class links: retransmits
	// consume wire capacity without delivering goodput, so the link's
	// efficiency is multiplied by 1-Pct/100 between At and Until.
	Loss Kind = "loss"
	// Corrupt mangles Pct% of packets. In a fluid model a corrupted
	// packet and a lost packet cost the same — one retransmit — so
	// corrupt folds into the efficiency term exactly like Loss and
	// exists as its own kind only for scenario readability.
	Corrupt Kind = "corrupt"
	// FlapLink cycles node Node's Class links down (DownMs at residual
	// capacity) and up (UpMs restored), starting at At and ending at
	// Until (required: an unbounded flap would keep the engine alive
	// forever).
	FlapLink Kind = "flap_link"
	// Partition cuts the inter-cluster trunk between Cluster and Peer to
	// the residual trickle from At until Until (0 = rest of the run).
	// Binding a partition to a fabric without a trunk between the pair
	// is an error: there is no link to cut.
	Partition Kind = "partition"
	// Straggler persistently derates node Node's RDMA and Ethernet links
	// by Factor — the aging-NIC slow node of the paper's motivating
	// clusters. Cleared by RestoreNode.
	Straggler Kind = "straggler"
	// FailCluster fails every node of Cluster at At — the correlated
	// whole-switch blast radius. Permanent for the timeline: RestoreNode
	// does not resurrect a failed cluster.
	FailCluster Kind = "fail_cluster"
)

// Class names a NIC class in event JSON.
type Class string

// Class values; the empty string selects a per-kind default (RDMA for
// degrade/fail/restore, Ether for background traffic).
const (
	ClassRDMA  Class = "RDMA"
	ClassEther Class = "Ether"
	ClassIntra Class = "Intra"
)

// NetClass resolves the class name for consumers outside the package
// (the fleet scheduler folds degrade events itself), defaulting the
// empty string to RDMA like degrade_nic does.
func (c Class) NetClass() (netsim.Class, error) { return c.netClass(netsim.RDMA) }

// netClass resolves the JSON name to the netsim class, tolerating common
// spellings. def is the per-kind default for the empty string.
func (c Class) netClass(def netsim.Class) (netsim.Class, error) {
	switch c {
	case "":
		return def, nil
	case ClassRDMA, "rdma":
		return netsim.RDMA, nil
	case ClassEther, "ether", "Ethernet", "ethernet", "Eth", "eth":
		return netsim.Ether, nil
	case ClassIntra, "intra":
		return netsim.Intra, nil
	default:
		return 0, fmt.Errorf("scenario: unknown NIC class %q", string(c))
	}
}

// Event is one scripted occurrence. Fields beyond Kind and At apply per
// kind; unused fields must stay zero.
type Event struct {
	Kind Kind    `json:"kind"`
	At   float64 `json:"at"` // simulated seconds from iteration start

	// Node targets degrade_nic / fail_node / restore_node (global index).
	Node int `json:"node,omitempty"`
	// Class selects the link class for degrade_nic and
	// background_traffic.
	Class Class `json:"class,omitempty"`
	// Factor is the degrade_nic capacity multiplier, in (0, 1].
	Factor float64 `json:"factor,omitempty"`

	// Src/Dst/Gbps/Until shape background_traffic.
	Src   int     `json:"src,omitempty"`
	Dst   int     `json:"dst,omitempty"`
	Gbps  float64 `json:"gbps,omitempty"` // 0 = greedy (uncapped)
	Until float64 `json:"until,omitempty"`

	// Cluster/Count shape join_nodes; Cluster also names fail_cluster's
	// target and partition's first side.
	Cluster int `json:"cluster,omitempty"`
	Count   int `json:"count,omitempty"`

	// DelayMs/JitterMs/Dist/Pct/Direction shape the packet impairments
	// (delay, jitter, loss, corrupt); Until bounds them like background
	// traffic (0 = rest of the run).
	DelayMs   float64 `json:"delay_ms,omitempty"`
	JitterMs  float64 `json:"jitter_ms,omitempty"`
	Dist      string  `json:"dist,omitempty"` // uniform (default), normal, pareto
	Pct       float64 `json:"pct,omitempty"`
	Direction string  `json:"direction,omitempty"` // both (default), out, in

	// DownMs/UpMs shape flap_link's duty cycle.
	DownMs float64 `json:"down_ms,omitempty"`
	UpMs   float64 `json:"up_ms,omitempty"`

	// Peer is partition's second cluster.
	Peer int `json:"peer,omitempty"`
}

// Scenario is a named timeline of events. The zero value is the empty
// scenario, a guaranteed no-op.
type Scenario struct {
	Name   string  `json:"name,omitempty"`
	Events []Event `json:"events,omitempty"`
	// Seed feeds the jitter PRNG so replays of the same timeline are
	// bit-identical; 0 selects the fixed default seed. The PRNG is drawn
	// only when jitter is actually installed, so scenarios without
	// jitter events stay bit-identical across seeds.
	Seed int64 `json:"seed,omitempty"`
}

// Empty reports whether the scenario schedules nothing.
func (s *Scenario) Empty() bool { return s == nil || len(s.Events) == 0 }

// Clone returns a deep copy (nil stays nil). Events are plain values, so
// cloning the slice severs every alias: mutating the original after the
// copy cannot reach the clone, and vice versa. Holders of long-lived
// scenario state (the fleet manager, the operator journal) clone on the
// way in and out so a caller appending to Events can never mutate
// checkpointed replay state behind their backs.
func (s *Scenario) Clone() *Scenario {
	if s == nil {
		return nil
	}
	c := *s
	c.Events = append([]Event(nil), s.Events...)
	return &c
}

// String renders a short label for reports: the name, or an event count.
func (s *Scenario) String() string {
	if s.Empty() {
		return ""
	}
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("%d event(s)", len(s.Events))
}

// badTime reports whether t is unusable as a simulated instant.
func badTime(t float64) bool { return t < 0 || math.IsNaN(t) || math.IsInf(t, 0) }

// badDur reports whether d is unusable as a strictly positive duration.
func badDur(d float64) bool { return d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) }

// maxFlapCycles bounds how many down/up edges one flap_link event may
// schedule, so a pathological timeline (microsecond cycles over hours)
// cannot balloon the event queue at Bind time.
const maxFlapCycles = 10000

// dirs resolves the Direction field of an impairment event. The empty
// string and "both" select both sides.
func (ev Event) dirs() (out, in bool, err error) {
	switch ev.Direction {
	case "", "both":
		return true, true, nil
	case "out", "egress":
		return true, false, nil
	case "in", "ingress":
		return false, true, nil
	}
	return false, false, fmt.Errorf("%s: unknown direction %q", ev.Kind, ev.Direction)
}

// validUntil checks the shared optional-deadline rule: 0 means "rest of
// the run", anything else must be a good time after At.
func (ev Event) validUntil() error {
	if ev.Until != 0 && (badTime(ev.Until) || ev.Until <= ev.At) {
		return fmt.Errorf("%s: until %v not after start %v", ev.Kind, ev.Until, ev.At)
	}
	return nil
}

// Validate checks the structural invariants every consumer relies on:
// known kinds, finite non-negative times, factors in (0, 1], coherent
// per-kind fields. Node/cluster bounds need a topology; see ValidateFor.
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	for i, ev := range s.Events {
		if err := ev.validate(); err != nil {
			return fmt.Errorf("scenario: event %d: %w", i, err)
		}
	}
	return nil
}

func (ev Event) validate() error {
	if badTime(ev.At) {
		return fmt.Errorf("%s at bad time %v", ev.Kind, ev.At)
	}
	switch ev.Kind {
	case DegradeNIC:
		if ev.Node < 0 {
			return fmt.Errorf("degrade_nic: negative node %d", ev.Node)
		}
		if !(ev.Factor > 0 && ev.Factor <= 1) {
			return fmt.Errorf("degrade_nic: factor %v outside (0,1]", ev.Factor)
		}
		if _, err := ev.Class.netClass(netsim.RDMA); err != nil {
			return err
		}
	case FailNode, RestoreNode:
		if ev.Node < 0 {
			return fmt.Errorf("%s: negative node %d", ev.Kind, ev.Node)
		}
	case BackgroundTraffic:
		if ev.Src < 0 || ev.Dst < 0 {
			return fmt.Errorf("background_traffic: negative node index")
		}
		if ev.Src == ev.Dst {
			return fmt.Errorf("background_traffic: src and dst are both node %d", ev.Src)
		}
		if ev.Gbps < 0 || math.IsNaN(ev.Gbps) || math.IsInf(ev.Gbps, 0) {
			return fmt.Errorf("background_traffic: bad rate %v Gbps", ev.Gbps)
		}
		if ev.Until != 0 && (badTime(ev.Until) || ev.Until <= ev.At) {
			return fmt.Errorf("background_traffic: until %v not after start %v", ev.Until, ev.At)
		}
		if _, err := ev.Class.netClass(netsim.Ether); err != nil {
			return err
		}
	case JoinNodes:
		if ev.Cluster < 0 {
			return fmt.Errorf("join_nodes: negative cluster %d", ev.Cluster)
		}
		if ev.Count < 1 {
			return fmt.Errorf("join_nodes: count %d < 1", ev.Count)
		}
	case Delay, Jitter, Loss, Corrupt:
		if ev.Node < 0 {
			return fmt.Errorf("%s: negative node %d", ev.Kind, ev.Node)
		}
		if _, err := ev.Class.netClass(netsim.Ether); err != nil {
			return err
		}
		if _, _, err := ev.dirs(); err != nil {
			return err
		}
		if err := ev.validUntil(); err != nil {
			return err
		}
		switch ev.Kind {
		case Delay:
			if badDur(ev.DelayMs) {
				return fmt.Errorf("delay: bad delay_ms %v", ev.DelayMs)
			}
		case Jitter:
			if badDur(ev.JitterMs) {
				return fmt.Errorf("jitter: bad jitter_ms %v", ev.JitterMs)
			}
			if !netsim.KnownDist(netsim.Dist(ev.Dist)) {
				return fmt.Errorf("jitter: unknown distribution %q", ev.Dist)
			}
		default: // Loss, Corrupt
			if !(ev.Pct > 0 && ev.Pct < 100) || math.IsNaN(ev.Pct) {
				return fmt.Errorf("%s: pct %v outside (0,100)", ev.Kind, ev.Pct)
			}
		}
	case FlapLink:
		if ev.Node < 0 {
			return fmt.Errorf("flap_link: negative node %d", ev.Node)
		}
		if _, err := ev.Class.netClass(netsim.RDMA); err != nil {
			return err
		}
		if badDur(ev.DownMs) || badDur(ev.UpMs) {
			return fmt.Errorf("flap_link: bad duty cycle down=%vms up=%vms", ev.DownMs, ev.UpMs)
		}
		if badTime(ev.Until) || ev.Until <= ev.At {
			return fmt.Errorf("flap_link: until %v not after start %v (unbounded flapping never lets the run end)", ev.Until, ev.At)
		}
		if cycle := (ev.DownMs + ev.UpMs) / 1e3; (ev.Until-ev.At)/cycle > maxFlapCycles {
			return fmt.Errorf("flap_link: %v cycles exceed the %d-cycle cap", (ev.Until-ev.At)/cycle, maxFlapCycles)
		}
	case Partition:
		if ev.Cluster < 0 || ev.Peer < 0 {
			return fmt.Errorf("partition: negative cluster index")
		}
		if ev.Cluster == ev.Peer {
			return fmt.Errorf("partition: cluster %d cannot partition from itself", ev.Cluster)
		}
		if err := ev.validUntil(); err != nil {
			return err
		}
	case Straggler:
		if ev.Node < 0 {
			return fmt.Errorf("straggler: negative node %d", ev.Node)
		}
		if !(ev.Factor > 0 && ev.Factor <= 1) {
			return fmt.Errorf("straggler: factor %v outside (0,1]", ev.Factor)
		}
	case FailCluster:
		if ev.Cluster < 0 {
			return fmt.Errorf("fail_cluster: negative cluster %d", ev.Cluster)
		}
	default:
		return fmt.Errorf("unknown kind %q", string(ev.Kind))
	}
	return nil
}

// ordered returns the events sorted by (At, original index): the order
// both Bind and StateAt apply them in, so the fabric path and the
// replanning path never disagree about simultaneous events.
func (s *Scenario) ordered() []Event {
	evs := append([]Event(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// Ordered returns a copy of the events in application order — (At,
// declaration index), the exact order Bind and StateAt use — for
// consumers that replay the timeline themselves (the fleet scheduler).
func (s *Scenario) Ordered() []Event {
	if s.Empty() {
		return nil
	}
	return s.ordered()
}

// Load parses a scenario from JSON, rejecting unknown fields, and
// validates it.
func Load(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// Trailing JSON means a concatenated or truncated-then-mended file;
	// silently taking the first value would drop the user's real events.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the scenario object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile parses a scenario file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
