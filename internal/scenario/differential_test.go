package scenario

import (
	"math"
	"math/rand"
	"testing"

	"holmes/internal/netsim"
	"holmes/internal/sim"
	"holmes/internal/topology"
)

// Differential harness: the incremental netsim rebalancer must stay
// observationally equivalent to the FullRecompute oracle while scenario
// events — capacity degradation, node failure, restoration, background
// traffic — fire in the middle of a random flow schedule. This extends
// netsim's TestIncrementalMatchesFullRecomputeOracle (which hand-rolls
// one degrade/restore pair) to the whole scenario vocabulary.

type probeFlow struct {
	at       float64
	src, dst int
	bytes    float64
	class    netsim.Class
}

func genProbes(rng *rand.Rand, n, ranks int) []probeFlow {
	classes := []netsim.Class{netsim.Intra, netsim.RDMA, netsim.Ether}
	fs := make([]probeFlow, n)
	for i := range fs {
		src := rng.Intn(ranks)
		dst := rng.Intn(ranks)
		for dst == src {
			dst = (dst + 1) % ranks
		}
		bytes := 0.0
		if rng.Intn(12) > 0 {
			bytes = math.Pow(10, 4+5*rng.Float64()) // 10 KB .. 1 GB
		}
		fs[i] = probeFlow{
			at:    rng.Float64() * 0.02,
			src:   src,
			dst:   dst,
			bytes: bytes,
			class: classes[rng.Intn(len(classes))],
		}
	}
	return fs
}

// genScenario scripts a random timeline overlapping the probe window:
// degrades, failures, restores, a bounded background stream, and the
// impairment vocabulary — delays, jitter, loss/corrupt derates, flapping
// links, stragglers, cluster failures, and (when the fabric has a trunk
// to cut) partitions.
func genScenario(rng *rand.Rand, topo *topology.Topology, trunked bool) *Scenario {
	nodes := topo.NumNodes()
	var evs []Event
	nEvents := 1 + rng.Intn(7)
	for i := 0; i < nEvents; i++ {
		at := rng.Float64() * 0.02
		node := rng.Intn(nodes)
		switch rng.Intn(11) {
		case 0:
			class := []Class{ClassRDMA, ClassEther, ClassIntra}[rng.Intn(3)]
			evs = append(evs, Event{
				Kind: DegradeNIC, At: at, Node: node,
				Class: class, Factor: 0.05 + 0.9*rng.Float64(),
			})
		case 1:
			evs = append(evs, Event{Kind: FailNode, At: at, Node: node})
		case 2:
			evs = append(evs, Event{Kind: RestoreNode, At: at + 0.01, Node: node})
		case 3:
			evs = append(evs, Event{
				Kind: Delay, At: at, Node: node, DelayMs: 0.1 + 5*rng.Float64(),
				Direction: []string{"", "out", "in", "both"}[rng.Intn(4)],
				Until:     at + 0.005 + 0.02*rng.Float64(),
			})
		case 4:
			evs = append(evs, Event{
				Kind: Jitter, At: at, Node: node, JitterMs: 0.05 + 2*rng.Float64(),
				Dist: []string{"uniform", "normal", "pareto"}[rng.Intn(3)],
			})
		case 5:
			kind := Loss
			if rng.Intn(2) == 0 {
				kind = Corrupt
			}
			evs = append(evs, Event{
				Kind: kind, At: at, Node: node, Pct: 1 + 40*rng.Float64(),
				Class: []Class{"", ClassRDMA, ClassEther}[rng.Intn(3)],
				Until: at + 0.005 + 0.02*rng.Float64(),
			})
		case 6:
			evs = append(evs, Event{
				Kind: FlapLink, At: at, Until: at + 0.005 + 0.02*rng.Float64(),
				Node: node, DownMs: 1 + 3*rng.Float64(), UpMs: 1 + 3*rng.Float64(),
			})
		case 7:
			evs = append(evs, Event{
				Kind: Straggler, At: at, Node: node, Factor: 0.1 + 0.9*rng.Float64(),
			})
		case 8:
			evs = append(evs, Event{Kind: FailCluster, At: at, Cluster: rng.Intn(topo.NumClusters())})
		case 9:
			if trunked && topo.NumClusters() > 1 {
				evs = append(evs, Event{
					Kind: Partition, At: at, Cluster: 0, Peer: 1,
					Until: at + 0.005 + 0.02*rng.Float64(),
				})
				break
			}
			evs = append(evs, Event{Kind: RestoreNode, At: at + 0.01, Node: node})
		default:
			dst := (node + 1 + rng.Intn(nodes-1)) % nodes
			evs = append(evs, Event{
				Kind: BackgroundTraffic, At: at, Src: node, Dst: dst,
				Class: ClassEther, Gbps: 1 + 50*rng.Float64(), Until: at + 0.005 + 0.02*rng.Float64(),
			})
		}
	}
	return &Scenario{Name: "fuzzed", Events: evs}
}

// replayUnder runs probes plus the scenario on a fresh fabric and returns
// each probe's completion time.
func replayUnder(t *testing.T, topo *topology.Topology, p netsim.Params, fs []probeFlow, sc *Scenario) []float64 {
	t.Helper()
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, p)
	if _, err := sc.Bind(eng, fab); err != nil {
		t.Fatal(err)
	}
	done := make([]float64, len(fs))
	for i := range fs {
		i, pf := i, fs[i]
		eng.At(pf.at, func() {
			fab.StartFlow(pf.src, pf.dst, pf.bytes, pf.class, func() { done[i] = eng.Now() })
		})
	}
	eng.Run()
	if fab.InFlight() != 0 {
		t.Fatalf("%d flows alive after drain", fab.InFlight())
	}
	return done
}

func timesClose(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-12+1e-9*scale
}

func TestScenarioDifferentialIncrementalVsOracle(t *testing.T) {
	topos := map[string]*topology.Topology{
		"hybrid4": topology.HybridEnv(4),
		"eth2":    topology.EthernetEnv(2),
		"roce3":   topology.RoCEEnv(3),
	}
	for name, topo := range topos {
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed * 7919))
			p := netsim.DefaultParams()
			if seed%3 == 1 {
				p.EthPerFlowBytesPerSec = 1.5e9
			}
			if seed%4 == 2 {
				p.InterClusterGbps = 20
			}
			fs := genProbes(rng, 10+rng.Intn(50), topo.NumDevices())
			sc := genScenario(rng, topo, p.InterClusterGbps > 0)
			if err := sc.Validate(); err != nil {
				t.Fatalf("%s seed %d: generated invalid scenario: %v", name, seed, err)
			}
			inc := replayUnder(t, topo, p, fs, sc)
			p.FullRecompute = true
			full := replayUnder(t, topo, p, fs, sc)
			for i := range fs {
				if full[i] == 0 || inc[i] == 0 {
					t.Fatalf("%s seed %d flow %d never completed (inc=%v full=%v) under %+v",
						name, seed, i, inc[i], full[i], sc.Events)
				}
				if !timesClose(inc[i], full[i]) {
					t.Fatalf("%s seed %d flow %d (%+v): incremental %.15g vs oracle %.15g under %+v",
						name, seed, i, fs[i], inc[i], full[i], sc.Events)
				}
			}
		}
	}
}
