package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"holmes/internal/netsim"
	"holmes/internal/sim"
	"holmes/internal/topology"
)

// Background-traffic generation constants. A stream is modelled as
// back-to-back rate-capped chunks rather than one unbounded flow: each
// chunk completion is a scheduling point, so the stream reacts to
// congestion and to Until/Stop, while the per-flow cap keeps the offered
// load at the scripted rate when the path is uncongested.
const (
	// bgChunkSeconds is the chunk length of a rate-limited stream, in
	// seconds of offered traffic.
	bgChunkSeconds = 0.05
	// bgGreedyChunkBytes is the chunk size of a greedy (Gbps = 0) stream.
	bgGreedyChunkBytes = 64 << 20
)

// StreamCtl is the slice of a bound runtime a streaming backend needs:
// the simulated clock, cancellable scheduling (events it registers die
// with Runtime.Stop), and liveness.
type StreamCtl interface {
	// Now returns the current simulated instant.
	Now() float64
	// Schedule registers fn at a simulated instant; the runtime cancels
	// it on Stop.
	Schedule(at float64, fn func())
	// Live reports whether the runtime is still running (false after
	// Stop); a stream must stop generating when it turns false.
	Live() bool
}

// Backend is the network a scenario timeline manipulates. The runtime
// folds the timeline into absolute target state at every event instant
// and pushes it here, so a backend never needs to track compounding:
// SetNodeFactor(0.5) means "half the bind-time capacity", full stop.
//
// The default implementation drives the in-process netsim.Fabric; the
// HTTP backend forwards the same calls as JSON to an external
// netsim-in-a-box-style impairment server for tc/netem validation runs.
type Backend interface {
	// Topo is the topology the scenario validates against.
	Topo() *topology.Topology
	// SetNodeFactor scales both directions of one node's class links to
	// factor × their bind-time capacities. Factor 1 restores.
	SetNodeFactor(node int, class netsim.Class, factor float64) error
	// SetTrunkFactor scales the inter-cluster trunk between the pair to
	// factor × its bind-time capacity. Factor 1 restores.
	SetTrunkFactor(c1, c2 int, factor float64) error
	// CheckTrunk reports whether partition events between the pair can
	// take effect (the fabric has a trunk to cut).
	CheckTrunk(c1, c2 int) error
	// ApplyImpairment installs the absolute impairment of one node's
	// class/direction; the zero value clears it.
	ApplyImpairment(node int, class netsim.Class, inbound bool, imp netsim.Impairment) error
	// ClearImpairments drops every impairment of one node.
	ClearImpairments(node int) error
	// SeedJitter installs the scenario-owned PRNG seed for jitter draws.
	SeedJitter(seed int64)
	// Stream runs one background_traffic event from its At instant.
	Stream(ev Event, ctl StreamCtl)
}

// FabricBackend applies scenario effects to an in-process netsim.Fabric —
// the default backend. It snapshots each link's capacity the first time
// an event touches it, so factors are always relative to the bind-time
// baseline.
type FabricBackend struct {
	eng       *sim.Engine
	fab       *netsim.Fabric
	baseNode  map[capKey]savedCaps
	baseTrunk map[[2]int]float64
}

type capKey struct {
	node  int
	class netsim.Class
}

type savedCaps struct{ out, in float64 }

// NewFabricBackend wraps a fabric and its engine as a scenario backend.
func NewFabricBackend(eng *sim.Engine, fab *netsim.Fabric) *FabricBackend {
	return &FabricBackend{
		eng:       eng,
		fab:       fab,
		baseNode:  make(map[capKey]savedCaps),
		baseTrunk: make(map[[2]int]float64),
	}
}

// Topo implements Backend.
func (b *FabricBackend) Topo() *topology.Topology { return b.fab.Topo }

// SetNodeFactor implements Backend against the live fabric.
func (b *FabricBackend) SetNodeFactor(node int, class netsim.Class, factor float64) error {
	key := capKey{node: node, class: class}
	base, touched := b.baseNode[key]
	if !touched {
		if factor == 1 {
			return nil // restoring an untouched link: nothing to do
		}
		out, in, err := b.fab.NodeCaps(node, class)
		if err != nil {
			return err
		}
		base = savedCaps{out: out, in: in}
		b.baseNode[key] = base
	}
	return b.fab.RestoreNode(node, class, base.out*factor, base.in*factor)
}

// SetTrunkFactor implements Backend against the live fabric.
func (b *FabricBackend) SetTrunkFactor(c1, c2 int, factor float64) error {
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	key := [2]int{c1, c2}
	base, touched := b.baseTrunk[key]
	if !touched {
		if factor == 1 {
			return nil
		}
		cap, ok := b.fab.TrunkBandwidth(c1, c2)
		if !ok {
			return fmt.Errorf("scenario: no trunk between clusters %d and %d", c1, c2)
		}
		base = cap
		b.baseTrunk[key] = base
	}
	return b.fab.RestoreTrunk(c1, c2, base*factor)
}

// CheckTrunk implements Backend: a partition needs a trunk to cut.
func (b *FabricBackend) CheckTrunk(c1, c2 int) error {
	if !b.fab.HasTrunk(c1, c2) {
		return fmt.Errorf("scenario: partition %d|%d: the fabric has no inter-cluster trunk to cut (InterClusterGbps = 0)", c1, c2)
	}
	return nil
}

// ApplyImpairment implements Backend.
func (b *FabricBackend) ApplyImpairment(node int, class netsim.Class, inbound bool, imp netsim.Impairment) error {
	return b.fab.SetImpairment(node, class, inbound, imp)
}

// ClearImpairments implements Backend.
func (b *FabricBackend) ClearImpairments(node int) error {
	b.fab.ClearImpairments(node)
	return nil
}

// SeedJitter implements Backend.
func (b *FabricBackend) SeedJitter(seed int64) { b.fab.SeedJitter(seed) }

// Stream implements Backend: back-to-back flows between the first device
// of each endpoint node, each chunk capped at the scripted rate, until
// Until (or Stop) ends the stream. The final rate-capped chunk is
// clamped to the bytes the scripted rate can offer before Until, and a
// greedy chunk still on the wire at Until is aborted — so the stream
// never perturbs the fabric past its scripted window no matter how
// congested the path is.
func (b *FabricBackend) Stream(ev Event, ctl StreamCtl) {
	class, err := ev.Class.netClass(netsim.Ether)
	if err != nil {
		panic(fmt.Sprintf("scenario: background_traffic: %v", err))
	}
	g := b.fab.Topo.GPUsPerNode
	src, dst := ev.Src*g, ev.Dst*g
	rate := ev.Gbps / 8 * 1e9 // bytes/s; 0 = greedy
	var inflight *netsim.Flow
	var next func()
	next = func() {
		inflight = nil
		if !ctl.Live() {
			return
		}
		now := ctl.Now()
		if ev.Until > 0 && now >= ev.Until {
			return
		}
		chunk := float64(bgGreedyChunkBytes)
		if rate > 0 {
			chunk = rate * bgChunkSeconds
			if ev.Until > 0 {
				// Clamp the last chunk to what the scripted rate can
				// still offer before the deadline.
				if left := rate * (ev.Until - now); chunk > left {
					chunk = left
				}
			}
			if chunk <= 0 {
				return
			}
		}
		inflight = b.fab.StartFlowRateCapped(src, dst, chunk, class, rate, next)
	}
	next()
	if ev.Until > 0 {
		ctl.Schedule(ev.Until, func() {
			// A rate-capped final chunk was clamped to end at Until on
			// an uncongested path; whatever is still in flight — a
			// greedy chunk, or a clamped chunk stalled by congestion —
			// is cut off at the deadline.
			if inflight != nil {
				b.fab.AbortFlow(inflight)
			}
		})
	}
}

// HTTPBackend forwards scenario effects as JSON to an external
// impairment server — the netsim-in-a-box shape: one POST per state
// change, absolute values, per-direction targeting — so a timeline can
// drive real tc/netem rules for validation runs instead of the
// in-process fluid fabric. It is a stub in the sense that it only
// serializes and ships state; it never reads results back.
type HTTPBackend struct {
	base   string
	topo   *topology.Topology
	client *http.Client
	ctx    context.Context
}

// HTTPBackendTimeout bounds every POST of a backend built with a nil
// client. An external impairment box that stops answering must fail the
// timeline, not hang the scenario runtime forever — http.DefaultClient
// has no timeout at all, so it is never used here.
const HTTPBackendTimeout = 10 * time.Second

// NewHTTPBackend creates a backend POSTing to baseURL (no trailing
// slash), validating timelines against topo. A nil client gets a default
// client bounded by HTTPBackendTimeout; a caller-supplied client is
// trusted as-is (set its Timeout, or cancel through WithContext).
func NewHTTPBackend(baseURL string, topo *topology.Topology, client *http.Client) *HTTPBackend {
	if client == nil {
		client = &http.Client{Timeout: HTTPBackendTimeout}
	}
	return &HTTPBackend{base: baseURL, topo: topo, client: client, ctx: context.Background()}
}

// WithContext binds every subsequent POST to ctx: cancelling it aborts
// in-flight requests immediately, independent of the client's timeout.
// It returns the backend for chaining.
func (b *HTTPBackend) WithContext(ctx context.Context) *HTTPBackend {
	if ctx == nil {
		ctx = context.Background()
	}
	b.ctx = ctx
	return b
}

func (b *HTTPBackend) post(path string, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("scenario: http backend: %w", err)
	}
	req, err := http.NewRequestWithContext(b.ctx, http.MethodPost, b.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("scenario: http backend: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return fmt.Errorf("scenario: http backend: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("scenario: http backend: %s returned %s", path, resp.Status)
	}
	return nil
}

// Topo implements Backend.
func (b *HTTPBackend) Topo() *topology.Topology { return b.topo }

// SetNodeFactor implements Backend.
func (b *HTTPBackend) SetNodeFactor(node int, class netsim.Class, factor float64) error {
	return b.post("/v2/rate", map[string]any{
		"node": node, "class": class.String(), "factor": factor,
	})
}

// SetTrunkFactor implements Backend.
func (b *HTTPBackend) SetTrunkFactor(c1, c2 int, factor float64) error {
	return b.post("/v2/trunk", map[string]any{
		"clusters": [2]int{c1, c2}, "factor": factor,
	})
}

// CheckTrunk implements Backend: the external network's trunking is its
// own business, so every partition is accepted.
func (b *HTTPBackend) CheckTrunk(c1, c2 int) error { return nil }

// ApplyImpairment implements Backend.
func (b *HTTPBackend) ApplyImpairment(node int, class netsim.Class, inbound bool, imp netsim.Impairment) error {
	dir := "out"
	if inbound {
		dir = "in"
	}
	eff := imp.Efficiency
	if eff <= 0 {
		eff = 1
	}
	return b.post("/v2/impair", map[string]any{
		"node":      node,
		"class":     class.String(),
		"direction": dir,
		"delay_ms":  imp.ExtraLatency * 1e3,
		"jitter_ms": imp.JitterSeconds * 1e3,
		"dist":      string(imp.JitterDist),
		"loss_pct":  (1 - eff) * 100,
	})
}

// ClearImpairments implements Backend.
func (b *HTTPBackend) ClearImpairments(node int) error {
	return b.post("/v2/impair/clear", map[string]any{"node": node})
}

// SeedJitter implements Backend: shipped for observability; an external
// netem has its own entropy.
func (b *HTTPBackend) SeedJitter(seed int64) {
	// Best-effort: a backend that rejects the seed still runs the rest
	// of the timeline, just without reproducible jitter.
	_ = b.post("/v2/seed", map[string]any{"seed": seed})
}

// Stream implements Backend: the server starts offered load at At and a
// scheduled stop call ends it at Until.
func (b *HTTPBackend) Stream(ev Event, ctl StreamCtl) {
	class, err := ev.Class.netClass(netsim.Ether)
	if err != nil {
		panic(fmt.Sprintf("scenario: background_traffic: %v", err))
	}
	start := map[string]any{
		"src": ev.Src, "dst": ev.Dst, "class": class.String(), "gbps": ev.Gbps,
	}
	if err := b.post("/v2/stream", start); err != nil {
		panic(fmt.Sprintf("scenario: background_traffic: %v", err))
	}
	if ev.Until > 0 {
		ctl.Schedule(ev.Until, func() {
			_ = b.post("/v2/stream", map[string]any{
				"src": ev.Src, "dst": ev.Dst, "stop": true,
			})
		})
	}
}
