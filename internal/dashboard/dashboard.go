// Package dashboard embeds the holmes-serve live dashboard: a
// zero-build-step web page (plain HTML/CSS/JS, no bundler, no node)
// compiled into the binary with go:embed and mounted by internal/api
// at / and /static/. It renders what the JSON surface already knows —
// fleet Gantt and utilization from /v1/jobs, per-endpoint latency and
// throughput from /v1/stats, topology health and scenario playback
// from the /v1/events stream.
package dashboard

import (
	"embed"
	"path"
)

//go:embed static
var assets embed.FS

// contentTypes maps the embedded extensions; everything the dashboard
// ships is one of these, so a lookup miss means a caller bug, not a
// client request we must guess at.
var contentTypes = map[string]string{
	".html": "text/html; charset=utf-8",
	".css":  "text/css; charset=utf-8",
	".js":   "text/javascript; charset=utf-8",
	".svg":  "image/svg+xml",
}

// Asset returns one embedded file by its full embedded path (e.g.
// "static/app.js") with its Content-Type; ok=false on a miss. The API
// layer owns the HTTP error shape, so misses return rather than write.
func Asset(name string) (body []byte, contentType string, ok bool) {
	b, err := assets.ReadFile(name)
	if err != nil {
		return nil, "", false
	}
	ct, known := contentTypes[path.Ext(name)]
	if !known {
		ct = "application/octet-stream"
	}
	return b, ct, true
}
