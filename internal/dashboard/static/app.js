// holmes-serve dashboard. Plain browser JS, no build step: polls
// /v1/jobs and /v1/stats for the fleet and serving pictures, and rides
// /v1/events (SSE) for live transitions, scenario health, and the
// event log. All rendering is DOM/SVG built here; all colors come
// from the CSS custom properties defined in style.css.
"use strict";

const POLL_MS = 2500;
const LOG_CAP = 250;

const state = {
  fleets: [],      // /v1/jobs fleets array
  stats: null,     // /v1/stats payload
  log: [],         // most-recent-first event ring
  health: new Map(), // fleet -> Map(node -> "degraded"|"failed")
  live: true,
  scrub: 1,        // 0..1 fraction of the horizon when not live
};

const $ = (id) => document.getElementById(id);
const fmt = (x, d = 1) => (x == null || isNaN(x)) ? "—" : (+x).toFixed(d);

// ---- data plumbing ---------------------------------------------------

async function poll() {
  try {
    const [jobs, stats] = await Promise.all([
      fetch("/v1/jobs").then((r) => r.json()),
      fetch("/v1/stats").then((r) => r.json()),
    ]);
    state.fleets = jobs.fleets || [];
    state.stats = stats;
    $("version").textContent = "v" + (stats.version || "");
    render();
  } catch (err) {
    // Leave the last good picture up; the SSE badge carries liveness.
  }
  setTimeout(poll, POLL_MS);
}

function connectEvents() {
  const es = new EventSource("/v1/events");
  const conn = $("conn");
  const set = (st, label) => {
    conn.dataset.state = st;
    conn.querySelector(".label").textContent = label;
  };
  es.onopen = () => set("live", "events: live");
  es.onerror = () => set("down", "events: reconnecting");
  for (const kind of ["job", "scenario", "policy", "retire", "eof"]) {
    es.addEventListener(kind, (msg) => {
      let ev;
      try { ev = JSON.parse(msg.data); } catch { ev = { kind }; }
      ev.kind = ev.kind || kind;
      onEvent(ev);
    });
  }
}

function onEvent(ev) {
  state.log.unshift(ev);
  if (state.log.length > LOG_CAP) state.log.pop();
  if (ev.kind === "scenario" && ev.payload) applyHealth(ev.fleet, ev.payload);
  renderLog();
  renderTopology();
}

// applyHealth folds one scenario event into the per-fleet node-health
// overlay. Only node-addressed kinds move the overlay; everything else
// still shows in the log.
function applyHealth(fleet, p) {
  if (!fleet || p.node == null) return;
  let m = state.health.get(fleet);
  if (!m) { m = new Map(); state.health.set(fleet, m); }
  switch (p.kind) {
    case "fail_node": m.set(p.node, "failed"); break;
    case "restore_node": m.delete(p.node); break;
    case "degrade_nic": case "delay": case "jitter": case "loss":
    case "corrupt": case "flap_link": case "straggler":
      if (m.get(p.node) !== "failed") m.set(p.node, "degraded");
      break;
  }
}

// ---- derived fleet views ---------------------------------------------

// stateAt mirrors the operator's placementState: the job's state at
// wall instant t, derived from its deterministic placement.
function stateAt(p, t) {
  if (p.unplaced) return "unplaced";
  if ((p.nodes || []).length && t >= p.finish) return "done";
  if ((p.nodes || []).length && t >= p.start) return "running";
  return "queued";
}

function horizon() {
  let h = 1;
  for (const f of state.fleets) {
    h = Math.max(h, f.now || 0, f.schedule ? f.schedule.makespan : 0);
  }
  return h;
}

// cursorFor is the playback instant for one fleet: its own wall clock
// when live, the scrubbed fraction of the global horizon otherwise.
function cursorFor(f) {
  return state.live ? (f.now || 0) : state.scrub * horizon();
}

// ---- rendering --------------------------------------------------------

function render() {
  renderTiles();
  renderGantt();
  renderTopology();
  renderLatency();
  renderJobsTable();
}

function tile(label, value, sub) {
  const d = document.createElement("div");
  d.className = "tile";
  for (const [cls, text] of [["label", label], ["value", value], ["sub", sub || ""]]) {
    const s = document.createElement("div");
    s.className = cls;
    s.textContent = text;
    d.appendChild(s);
  }
  return d;
}

function renderTiles() {
  const t = $("tiles");
  t.replaceChildren();
  let live = 0, done = 0, util = 0, withSched = 0;
  for (const f of state.fleets) {
    live += f.jobs || 0;
    done += f.done || 0;
    if (f.schedule) { util += f.schedule.utilization || 0; withSched++; }
  }
  let rps = 0;
  const eps = state.stats && state.stats.serve ? state.stats.serve.endpoints || {} : {};
  for (const name in eps) rps += eps[name].throughput_rps || 0;
  t.appendChild(tile("Fleets", String(state.fleets.length)));
  t.appendChild(tile("Live jobs", String(live)));
  t.appendChild(tile("Retired", String(done)));
  t.appendChild(tile("Utilization", withSched ? fmt(100 * util / withSched) + "%" : "—", "mean across fleets"));
  t.appendChild(tile("Throughput", fmt(rps) + " rps", "trailing 30s, all endpoints"));
  t.appendChild(tile("Uptime", state.stats && state.stats.serve ? fmt(state.stats.serve.uptime_seconds, 0) + "s" : "—"));
}

const SVGNS = "http://www.w3.org/2000/svg";
const svgEl = (name, attrs) => {
  const el = document.createElementNS(SVGNS, name);
  for (const k in attrs) el.setAttribute(k, attrs[k]);
  return el;
};

const stateFill = {
  queued: "var(--axis)",
  running: "var(--series-1)",
  done: "var(--status-good)",
  unplaced: "var(--status-critical)",
};

function renderGantt() {
  const root = $("gantt");
  root.replaceChildren();
  const H = horizon();
  let any = false;
  for (const f of state.fleets) {
    const jobs = f.schedule ? f.schedule.jobs || [] : [];
    if (!jobs.length) continue;
    any = true;
    const label = document.createElement("div");
    label.className = "fleet-label";
    label.textContent = `fleet ${f.fleet} · policy ${f.policy || "default"} · ${jobs.length} live`;
    root.appendChild(label);

    const ROW = 18, W = 900, PADL = 2;
    const t = cursorFor(f);
    const svg = svgEl("svg", { viewBox: `0 0 ${W} ${jobs.length * ROW + 16}` });
    const x = (v) => PADL + (v / H) * (W - PADL - 2);
    // recessive hairline grid: quarters of the horizon
    for (let q = 0; q <= 4; q++) {
      svg.appendChild(svgEl("line", {
        x1: x(H * q / 4), x2: x(H * q / 4), y1: 0, y2: jobs.length * ROW,
        stroke: "var(--grid)", "stroke-width": 1,
      }));
      const tick = svgEl("text", {
        x: x(H * q / 4), y: jobs.length * ROW + 12, "font-size": 9,
        fill: "var(--text-muted)", "text-anchor": q === 4 ? "end" : "middle",
      });
      tick.textContent = fmt(H * q / 4, 0) + "s";
      svg.appendChild(tick);
    }
    jobs.forEach((p, i) => {
      const st = stateAt(p, t);
      const y = i * ROW + 3;
      const placed = (p.nodes || []).length > 0;
      const x0 = x(placed ? p.start : (p.start || 0));
      const x1 = x(placed ? p.finish : (p.start || 0) + H / 80);
      const bar = svgEl("rect", {
        x: x0, y, width: Math.max(x1 - x0, 2), height: ROW - 7,
        rx: 3, fill: stateFill[st],
        "fill-opacity": st === "queued" ? 0.55 : 1,
      });
      const tip = svgEl("title", {});
      tip.textContent = `${p.job}: ${st} · start ${fmt(p.start)}s finish ${fmt(p.finish)}s · nodes [${(p.nodes || []).join(",")}]`;
      bar.appendChild(tip);
      svg.appendChild(bar);
      const txt = svgEl("text", {
        x: Math.min(x0 + 4, W - 60), y: y + ROW - 11, "font-size": 9.5,
        fill: "var(--text-primary)",
      });
      txt.textContent = p.job + (st === "done" ? " ✓" : st === "unplaced" ? " ✕" : "");
      svg.appendChild(txt);
    });
    // time cursor
    svg.appendChild(svgEl("line", {
      x1: x(Math.min(t, H)), x2: x(Math.min(t, H)), y1: 0, y2: jobs.length * ROW,
      stroke: "var(--text-muted)", "stroke-width": 1.5, "stroke-dasharray": "3 2",
    }));
    root.appendChild(svg);
    $("cursor").textContent = "t = " + fmt(t) + "s";
  }
  if (!any) {
    const p = document.createElement("p");
    p.className = "empty";
    p.textContent = "No live jobs — submit one to /v1/jobs.";
    root.appendChild(p);
    $("cursor").textContent = "t = —";
  }
}

function renderTopology() {
  const root = $("topo");
  root.replaceChildren();
  if (!state.fleets.length) {
    const p = document.createElement("p");
    p.className = "empty";
    p.textContent = "No fleets yet.";
    root.appendChild(p);
    return;
  }
  for (const f of state.fleets) {
    const sched = f.schedule;
    const n = sched ? sched.nodes || 0 : 0;
    if (!n) continue;
    const t = cursorFor(f);
    const busy = new Set();
    for (const p of (sched.jobs || [])) {
      if (stateAt(p, t) === "running") for (const nd of p.nodes || []) busy.add(nd);
    }
    const health = state.health.get(f.fleet) || new Map();
    const label = document.createElement("div");
    label.className = "fleet-label";
    label.textContent = `fleet ${f.fleet} · ${n} nodes · ${busy.size} busy`;
    root.appendChild(label);
    const grid = document.createElement("div");
    grid.className = "topo";
    for (let i = 0; i < n; i++) {
      const cell = document.createElement("div");
      cell.className = "node" + (busy.has(i) ? " busy" : "");
      const h = health.get(i);
      if (h) cell.dataset.health = h;
      const badge = document.createElement("span");
      badge.className = "badge";
      badge.textContent = h === "failed" ? "✕" : h === "degraded" ? "⚠" : "";
      const id = document.createElement("span");
      id.className = "id";
      id.textContent = "n" + i;
      cell.title = `node ${i}: ${busy.has(i) ? "busy" : "idle"}${h ? " · " + h : ""}`;
      cell.append(badge, id);
      grid.appendChild(cell);
    }
    root.appendChild(grid);
  }
}

function renderLatency() {
  const root = $("latency");
  root.replaceChildren();
  const eps = state.stats && state.stats.serve ? state.stats.serve.endpoints || {} : {};
  const names = Object.keys(eps).filter((n) => (eps[n].latency_ms || {}).count > 0).sort();
  if (!names.length) {
    const p = document.createElement("p");
    p.className = "empty";
    p.textContent = "No traffic yet.";
    root.appendChild(p);
    return;
  }
  let max = 0;
  for (const n of names) max = Math.max(max, eps[n].latency_ms.p99_ms || 0);
  const table = document.createElement("table");
  for (const n of names) {
    const l = eps[n].latency_ms;
    const tr = document.createElement("tr");
    const ep = document.createElement("td");
    ep.className = "ep";
    ep.textContent = n;
    const bars = document.createElement("td");
    const wrap = document.createElement("div");
    wrap.className = "bars";
    for (const q of ["p50", "p95", "p99"]) {
      const bar = document.createElement("div");
      bar.className = "bar " + q;
      bar.style.width = Math.max(1, 100 * (l[q + "_ms"] || 0) / (max || 1)) + "%";
      bar.title = `${n} ${q}: ${fmt(l[q + "_ms"], 2)} ms`;
      wrap.appendChild(bar);
    }
    bars.appendChild(wrap);
    const num = document.createElement("td");
    num.className = "num";
    num.textContent = fmt(l.p95_ms, 1) + "ms";
    num.title = `p95 of ${l.count} requests · ${fmt(eps[n].throughput_rps, 2)} rps`;
    tr.append(ep, bars, num);
    table.appendChild(tr);
  }
  root.appendChild(table);
}

function renderJobsTable() {
  const tbody = $("jobs-table").querySelector("tbody");
  tbody.replaceChildren();
  for (const f of state.fleets) {
    const t = cursorFor(f);
    for (const p of (f.schedule ? f.schedule.jobs || [] : [])) {
      const tr = document.createElement("tr");
      for (const v of [f.fleet, p.job, stateAt(p, t), fmt(p.start), fmt(p.finish),
        (p.nodes || []).join(","), fmt(p.tflops_per_gpu)]) {
        const td = document.createElement("td");
        td.textContent = v;
        tr.appendChild(td);
      }
      tbody.appendChild(tr);
    }
  }
}

function describe(ev) {
  switch (ev.kind) {
    case "job": return `${ev.job} → ${ev.state}`;
    case "policy": return `policy → ${ev.policy}`;
    case "retire": return `retired ${(ev.jobs || []).length} job(s): ${(ev.jobs || []).join(", ")}`;
    case "scenario":
      if (ev.state === "replaced") return `timeline replaced (${ev.scenario || "unnamed"})`;
      if (ev.state === "cleared") return "timeline cleared";
      return `${ev.state} ${ev.payload ? ev.payload.kind : ""}` +
        (ev.payload && ev.payload.node != null ? ` on node ${ev.payload.node}` : "");
    case "eof": return "stream closed by server";
    default: return ev.kind;
  }
}

function renderLog() {
  const log = $("log");
  log.replaceChildren();
  for (const ev of state.log) {
    const li = document.createElement("li");
    const at = document.createElement("span");
    at.className = "at";
    at.textContent = ev.at != null ? fmt(ev.at) + "s" : "";
    const kind = document.createElement("span");
    kind.className = "kind";
    kind.textContent = ev.kind;
    const what = document.createElement("span");
    what.className = "what";
    what.textContent = describe(ev);
    li.append(at, kind, what);
    log.appendChild(li);
  }
}

// ---- playback controls -------------------------------------------------

$("live").addEventListener("change", (e) => {
  state.live = e.target.checked;
  $("scrub").disabled = state.live;
  if (state.live) $("scrub").value = 1000;
  render();
});
$("scrub").addEventListener("input", (e) => {
  state.scrub = (+e.target.value) / 1000;
  render();
});

connectEvents();
poll();
