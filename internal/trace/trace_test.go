package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"holmes/internal/pipeline"
)

func TestBuildCompleteAndOrdered(t *testing.T) {
	s := pipeline.OneFOneB(4, 8)
	tf := []float64{1, 1, 1, 1}
	tb := []float64{2, 2, 2, 2}
	events, err := Build(s, tf, tb, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4*2*8 {
		t.Fatalf("got %d events, want %d", len(events), 64)
	}
	// Per-stage events must not overlap.
	byStage := map[int][]Event{}
	for _, e := range events {
		byStage[e.Tid] = append(byStage[e.Tid], e)
	}
	for st, evs := range byStage {
		for i := 1; i < len(evs); i++ {
			if evs[i].Ts < evs[i-1].Ts+evs[i-1].Dur-1e-9 {
				t.Fatalf("stage %d events overlap", st)
			}
		}
	}
}

func TestMakespanMatchesAnalyticWithoutComm(t *testing.T) {
	p, m := 4, 12
	s := pipeline.OneFOneB(p, m)
	tf := []float64{0.01, 0.01, 0.01, 0.01}
	tb := []float64{0.02, 0.02, 0.02, 0.02}
	events, err := Build(s, tf, tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := pipeline.AnalyticIterTime(tf, tb, 0, m)
	if got := Makespan(events); math.Abs(got-want) > 1e-9 {
		t.Fatalf("makespan %v, want %v", got, want)
	}
}

func TestHopDelayStretchesMakespan(t *testing.T) {
	s := pipeline.OneFOneB(2, 4)
	tf := []float64{1, 1}
	tb := []float64{2, 2}
	a, _ := Build(s, tf, tb, 0)
	b, _ := Build(s, tf, tb, 0.5)
	if Makespan(b) <= Makespan(a) {
		t.Fatal("hop delay must stretch the trace")
	}
}

func TestWriteValidJSON(t *testing.T) {
	s := pipeline.OneFOneB(2, 2)
	events, _ := Build(s, []float64{1, 1}, []float64{2, 2}, 0)
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	if back[0].Ph != "X" {
		t.Fatalf("phase = %q", back[0].Ph)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	s := pipeline.OneFOneB(2, 2)
	if _, err := Build(s, []float64{1}, []float64{1, 1}, 0); err == nil {
		t.Fatal("short tf must fail")
	}
	bad := &pipeline.Schedule{Stages: 1, Micro: 1, Ops: [][]pipeline.Op{{}}}
	if _, err := Build(bad, []float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("invalid schedule must fail")
	}
}
