// Package trace exports pipeline schedules as Chrome trace-event JSON
// (chrome://tracing, Perfetto): one row per pipeline stage, one slice per
// forward/backward op. The trace is built from an idealized replay of the
// schedule at given per-stage compute times (communication excluded), so
// bubbles are visible at a glance.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"holmes/internal/pipeline"
)

// Event is one Chrome trace "complete" event (ph = "X").
type Event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// Build replays the schedule with per-stage forward/backward times and a
// fixed per-hop communication delay, returning one event per op. The
// replay respects the same dependencies the DES executor enforces.
func Build(s *pipeline.Schedule, tf, tb []float64, hop float64) ([]Event, error) {
	p := s.Stages
	if len(tf) != p || len(tb) != p {
		return nil, fmt.Errorf("trace: compute vectors must have %d entries", p)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// Earliest-start replay in schedule order.
	type key struct {
		stage int
		op    pipeline.Op
	}
	endOf := make(map[key]float64)
	stageFree := make([]float64, p)
	pos := make([]int, p)
	var events []Event
	remaining := p * 2 * s.Micro
	for remaining > 0 {
		progressed := false
		for st := 0; st < p; st++ {
			for pos[st] < len(s.Ops[st]) {
				op := s.Ops[st][pos[st]]
				ready := 0.0
				ok := true
				switch op.Kind {
				case pipeline.Forward:
					if st > 0 {
						if end, done := endOf[key{st - 1, op}]; done {
							ready = end + hop
						} else {
							ok = false
						}
					}
				case pipeline.Backward:
					if st == p-1 {
						if end, done := endOf[key{st, pipeline.Op{Kind: pipeline.Forward, Micro: op.Micro}}]; done {
							ready = end
						} else {
							ok = false
						}
					} else {
						if end, done := endOf[key{st + 1, op}]; done {
							ready = end + hop
						} else {
							ok = false
						}
					}
				}
				if !ok {
					break
				}
				start := ready
				if stageFree[st] > start {
					start = stageFree[st]
				}
				dur := tf[st]
				if op.Kind == pipeline.Backward {
					dur = tb[st]
				}
				end := start + dur
				stageFree[st] = end
				endOf[key{st, op}] = end
				events = append(events, Event{
					Name: op.String(),
					Ph:   "X",
					Ts:   start * 1e6,
					Dur:  dur * 1e6,
					Pid:  1,
					Tid:  st,
				})
				pos[st]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("trace: replay deadlocked")
		}
	}
	return events, nil
}

// Write emits the events as a Chrome trace JSON array.
func Write(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Makespan returns the end of the last event in seconds.
func Makespan(events []Event) float64 {
	end := 0.0
	for _, e := range events {
		if t := (e.Ts + e.Dur) / 1e6; t > end {
			end = t
		}
	}
	return end
}
