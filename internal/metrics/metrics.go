// Package metrics formats experiment results: aligned text tables, CSV,
// and paper-vs-measured comparisons with relative errors.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// New creates a table with the given header.
func New(header ...string) *Table {
	return &Table{Header: header}
}

// Add appends a row; short rows pad, long rows panic (always a caller
// bug).
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Header) {
		panic(fmt.Sprintf("metrics: row has %d cells for %d columns", len(cells), len(t.Header)))
	}
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddF appends a row formatting each value with fmt.Sprint.
func (t *Table) AddF(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = FormatFloat(v)
		default:
			s[i] = fmt.Sprint(c)
		}
	}
	t.Add(s...)
}

// FormatFloat renders a float compactly: 2 decimals under 100, 1 under
// 1000, integers above.
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting: labels in
// this repository never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// RelErr returns |got−want|/|want| (infinite for want == 0 with got != 0,
// zero when both are zero).
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// PctString renders a relative error as a signed percentage ("-7.3%").
func PctString(got, want float64) string {
	if want == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (got-want)/want*100)
}
