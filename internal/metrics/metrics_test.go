package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Env", "TFLOPS")
	tb.Add("InfiniBand", "197")
	tb.Add("RoCE", "160")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Env") || !strings.Contains(lines[0], "TFLOPS") {
		t.Fatalf("header = %q", lines[0])
	}
	// All data rows align columns at the same offset.
	off := strings.Index(lines[2], "197")
	if strings.Index(lines[3], "160") != off {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestTableShortRowPads(t *testing.T) {
	tb := New("A", "B", "C")
	tb.Add("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatal("short row not padded")
	}
}

func TestTableLongRowPanics(t *testing.T) {
	tb := New("A")
	defer func() {
		if recover() == nil {
			t.Fatal("long row did not panic")
		}
	}()
	tb.Add("x", "y")
}

func TestCSV(t *testing.T) {
	tb := New("a", "b")
	tb.AddF(1.5, "x")
	got := tb.CSV()
	want := "a,b\n1.50,x\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFormatFloatRanges(t *testing.T) {
	cases := map[float64]string{
		3.14159: "3.14",
		123.456: "123.5",
		12345.6: "12346",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Fatal("RelErr wrong")
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Fatal("x/0 should be +Inf")
	}
}

func TestPctString(t *testing.T) {
	if got := PctString(93, 100); got != "-7.0%" {
		t.Fatalf("PctString = %q", got)
	}
	if got := PctString(1, 0); got != "n/a" {
		t.Fatalf("PctString(., 0) = %q", got)
	}
}
