package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Latency histogram for the serving layer: fixed log-spaced buckets,
// lock-free observation (one atomic add per sample), quantiles estimated
// from bucket boundaries. Precision follows the bucket growth factor —
// every quantile is exact to within one bucket (±15%), which is the right
// trade for p50/p95/p99 service dashboards where the alternative (exact
// percentiles over a sample reservoir) would put a mutex on the hot path.

// histBuckets is the bucket count; histMin is the first upper bound;
// histGrowth is the geometric growth factor between bounds. 10µs·1.3^63
// ≈ 150s, so the range covers everything from a cache hit to a stuck
// request.
const (
	histBuckets = 64
	histGrowth  = 1.3
)

var histMin = float64(10 * time.Microsecond)

// histBound returns the inclusive upper bound (in nanoseconds) of bucket
// i; the last bucket is unbounded.
func histBound(i int) float64 {
	return histMin * math.Pow(histGrowth, float64(i))
}

// Histogram is a fixed-bucket log-spaced latency histogram safe for any
// number of concurrent observers. The zero value is ready to use.
type Histogram struct {
	counts  [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNano atomic.Uint64
	maxNano atomic.Uint64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	ns := float64(d)
	if ns <= histMin {
		return 0
	}
	i := int(math.Ceil(math.Log(ns/histMin) / math.Log(histGrowth)))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sumNano.Add(uint64(d))
	for {
		cur := h.maxNano.Load()
		if uint64(d) <= cur || h.maxNano.CompareAndSwap(cur, uint64(d)) {
			return
		}
	}
}

// Count reports the number of samples observed so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time quantile summary, JSON-shaped for
// /v1/stats and the load-generator report. Latencies are milliseconds.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Snapshot summarizes the histogram. Concurrent observers may land
// between the counter reads; the snapshot is internally consistent to
// within those in-flight samples (fine for observability, and the tests
// only snapshot quiescent histograms).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return HistogramSnapshot{}
	}
	maxNs := float64(h.maxNano.Load())
	quantile := func(q float64) float64 {
		rank := uint64(math.Ceil(q * float64(total)))
		if rank < 1 {
			rank = 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= rank {
				// The true value lies at or below the bucket's upper
				// bound; clamp to the observed max so the tail quantiles
				// of a sparse histogram never exceed reality.
				return math.Min(histBound(i), maxNs)
			}
		}
		return maxNs
	}
	const ms = float64(time.Millisecond)
	return HistogramSnapshot{
		Count:  total,
		MeanMs: float64(h.sumNano.Load()) / float64(total) / ms,
		P50Ms:  quantile(0.50) / ms,
		P95Ms:  quantile(0.95) / ms,
		P99Ms:  quantile(0.99) / ms,
		MaxMs:  maxNs / ms,
	}
}
