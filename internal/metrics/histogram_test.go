package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.P50Ms != 0 || s.P99Ms != 0 || s.MaxMs != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestHistogramQuantileBrackets(t *testing.T) {
	// 100 samples: 90 at 1ms, 10 at 100ms. p50 must sit near 1ms, p95
	// and p99 near 100ms, each within one log bucket (±30%).
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	within := func(got, want float64) bool { return got >= want/histGrowth && got <= want*histGrowth }
	if !within(s.P50Ms, 1) {
		t.Errorf("p50 %.3fms, want ~1ms", s.P50Ms)
	}
	if !within(s.P95Ms, 100) {
		t.Errorf("p95 %.3fms, want ~100ms", s.P95Ms)
	}
	if !within(s.P99Ms, 100) {
		t.Errorf("p99 %.3fms, want ~100ms", s.P99Ms)
	}
	if s.MaxMs != 100 {
		t.Errorf("max %.3fms, want exactly 100ms", s.MaxMs)
	}
	if s.MeanMs < 1 || s.MeanMs > 100 {
		t.Errorf("mean %.3fms out of [1,100]", s.MeanMs)
	}
}

func TestHistogramQuantilesOrdered(t *testing.T) {
	var h Histogram
	for d := time.Microsecond; d < 10*time.Second; d = d * 3 / 2 {
		h.Observe(d)
	}
	s := h.Snapshot()
	if !(s.P50Ms <= s.P95Ms && s.P95Ms <= s.P99Ms && s.P99Ms <= s.MaxMs) {
		t.Fatalf("quantiles out of order: %+v", s)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamped to 0
	h.Observe(0)
	h.Observe(10 * time.Minute) // beyond the last bucket bound
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count %d", s.Count)
	}
	if s.MaxMs != float64(10*time.Minute)/float64(time.Millisecond) {
		t.Fatalf("max %.1fms", s.MaxMs)
	}
	// The tail quantile is clamped to the observed max, never beyond.
	if s.P99Ms > s.MaxMs {
		t.Fatalf("p99 %.1f exceeds max %.1f", s.P99Ms, s.MaxMs)
	}
}

// TestHistogramConcurrent is the -race arm: many observers, no lock.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("lost samples: %d of %d", got, workers*per)
	}
	s := h.Snapshot()
	if s.MaxMs < float64(workers)/histGrowth {
		t.Fatalf("max %.3fms, want ~%dms", s.MaxMs, workers)
	}
}
