package topology

import (
	"testing"
	"testing/quick"
)

func TestNICTypeProperties(t *testing.T) {
	if !InfiniBand.IsRDMA() || !RoCE.IsRDMA() {
		t.Fatal("IB/RoCE must be RDMA")
	}
	if Ethernet.IsRDMA() {
		t.Fatal("Ethernet must not be RDMA")
	}
	if Compatible(InfiniBand, RoCE) {
		t.Fatal("IB and RoCE are incompatible (§1)")
	}
	if !Compatible(RoCE, RoCE) || !Compatible(InfiniBand, InfiniBand) || !Compatible(Ethernet, Ethernet) {
		t.Fatal("same technologies must be compatible")
	}
	for _, tc := range []struct {
		nt   NICType
		want string
	}{{Ethernet, "Ethernet"}, {InfiniBand, "InfiniBand"}, {RoCE, "RoCE"}} {
		if tc.nt.String() != tc.want {
			t.Fatalf("String() = %q, want %q", tc.nt.String(), tc.want)
		}
	}
}

func TestBuildSingleCluster(t *testing.T) {
	topo := IBEnv(4)
	if topo.NumClusters() != 1 || topo.NumNodes() != 4 || topo.NumDevices() != 32 {
		t.Fatalf("got %d clusters %d nodes %d devices", topo.NumClusters(), topo.NumNodes(), topo.NumDevices())
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	n0 := topo.Node(0)
	if got := n0.RDMAType(); got != InfiniBand {
		t.Fatalf("RDMAType = %v", got)
	}
	if got := n0.RDMAGbps(); got != 800 {
		t.Fatalf("IB node aggregate = %v Gb/s, want 800 (4×200)", got)
	}
}

func TestBuildRoCENICAsymmetry(t *testing.T) {
	ib, roce := IBEnv(1).Node(0), RoCEEnv(1).Node(0)
	if ib.RDMAGbps() <= roce.RDMAGbps() {
		t.Fatalf("IB aggregate (%v) must exceed RoCE aggregate (%v): 4 vs 2 NICs",
			ib.RDMAGbps(), roce.RDMAGbps())
	}
	if roce.RDMAGbps() != 400 {
		t.Fatalf("RoCE node aggregate = %v, want 400 (2×200)", roce.RDMAGbps())
	}
}

func TestEthernetEnvHasNoRDMA(t *testing.T) {
	topo := EthernetEnv(2)
	for _, n := range topo.Nodes() {
		if n.RDMAType() != Ethernet || n.RDMAGbps() != 0 {
			t.Fatalf("ethernet node has RDMA: %v %v", n.RDMAType(), n.RDMAGbps())
		}
		if n.EthNIC.Gbps != 25 {
			t.Fatalf("EthNIC = %v Gb/s, want 25", n.EthNIC.Gbps)
		}
	}
}

func TestHybridEnv(t *testing.T) {
	topo := HybridEnv(8)
	if topo.NumClusters() != 2 {
		t.Fatalf("clusters = %d", topo.NumClusters())
	}
	if topo.Clusters[0].NICType != InfiniBand || topo.Clusters[1].NICType != RoCE {
		t.Fatal("hybrid must be IB cluster + RoCE cluster")
	}
	if len(topo.Clusters[0].Nodes) != 4 || len(topo.Clusters[1].Nodes) != 4 {
		t.Fatal("hybrid must split nodes evenly")
	}
	// Cross-cluster ranks fall back to Ethernet.
	a := topo.Clusters[0].Nodes[0].Devices[0].Rank
	b := topo.Clusters[1].Nodes[0].Devices[0].Rank
	if got := topo.BestCommonNIC(a, b); got != Ethernet {
		t.Fatalf("cross-cluster NIC = %v, want Ethernet", got)
	}
	// Intra-cluster cross-node ranks use the cluster RDMA.
	c := topo.Clusters[0].Nodes[1].Devices[0].Rank
	if got := topo.BestCommonNIC(a, c); got != InfiniBand {
		t.Fatalf("intra-IB-cluster NIC = %v, want InfiniBand", got)
	}
	d := topo.Clusters[1].Nodes[1].Devices[3].Rank
	if got := topo.BestCommonNIC(b, d); got != RoCE {
		t.Fatalf("intra-RoCE-cluster NIC = %v, want RoCE", got)
	}
}

func TestHybridOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HybridEnv(3) did not panic")
		}
	}()
	HybridEnv(3)
}

func TestRankNumberingMatchesPaper(t *testing.T) {
	// 2 clusters × 2 nodes × 4 GPUs, as in Figure 3 of the paper.
	topo := MustBuild(Spec{
		GPUsPerNode: 4,
		Clusters: []ClusterSpec{
			{NIC: InfiniBand, Nodes: 2},
			{NIC: RoCE, Nodes: 2},
		},
	})
	// rank(cluster i, node k, device j) = G*((Σ_{a<i} f_a)+k) + j, 0-based.
	cases := []struct{ c, k, j, want int }{
		{0, 0, 0, 0},
		{0, 0, 3, 3},
		{0, 1, 0, 4},
		{1, 0, 0, 8},
		{1, 1, 3, 15},
	}
	for _, tc := range cases {
		if got := topo.Rank(tc.c, tc.k, tc.j); got != tc.want {
			t.Errorf("Rank(%d,%d,%d) = %d, want %d", tc.c, tc.k, tc.j, got, tc.want)
		}
	}
	// Round-trip: device coordinates recover the rank.
	for _, d := range topo.Devices() {
		k := d.Node
		for i := 0; i < d.Cluster; i++ {
			k -= len(topo.Clusters[i].Nodes)
		}
		if got := topo.Rank(d.Cluster, k, d.Local); got != d.Rank {
			t.Fatalf("round trip rank %d -> %d", d.Rank, got)
		}
	}
}

func TestSameNodeSameCluster(t *testing.T) {
	topo := HybridEnv(4)
	if !topo.SameNode(0, 7) || topo.SameNode(0, 8) {
		t.Fatal("SameNode wrong at node boundary")
	}
	if !topo.SameCluster(0, 15) || topo.SameCluster(0, 16) {
		t.Fatal("SameCluster wrong at cluster boundary")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{}); err == nil {
		t.Fatal("empty spec must fail")
	}
	if _, err := Build(Spec{Clusters: []ClusterSpec{{NIC: InfiniBand, Nodes: 0}}}); err == nil {
		t.Fatal("zero-node cluster must fail")
	}
	if _, err := Env("bogus", 4); err == nil {
		t.Fatal("unknown env must fail")
	}
	if _, err := Env(EnvHybrid, 3); err == nil {
		t.Fatal("odd hybrid must fail")
	}
}

func TestEnvBuilders(t *testing.T) {
	for _, name := range AllEnvs {
		n := 4
		topo, err := Env(name, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if topo.NumNodes() != n {
			t.Fatalf("%s: nodes = %d", name, topo.NumNodes())
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// Property: ranks are dense, 0..N-1, in cluster-major node-major order, for
// arbitrary cluster shapes.
func TestRankDensityProperty(t *testing.T) {
	f := func(sizes []uint8, g uint8) bool {
		gpus := int(g%8) + 1
		var specs []ClusterSpec
		for i, s := range sizes {
			nodes := int(s%5) + 1
			nic := []NICType{InfiniBand, RoCE, Ethernet}[i%3]
			specs = append(specs, ClusterSpec{NIC: nic, Nodes: nodes})
			if len(specs) == 5 {
				break
			}
		}
		if len(specs) == 0 {
			return true
		}
		topo, err := Build(Spec{Clusters: specs, GPUsPerNode: gpus})
		if err != nil {
			return false
		}
		if topo.Validate() != nil {
			return false
		}
		for i, d := range topo.Devices() {
			if d.Rank != i {
				return false
			}
		}
		// Cross-check Rank() against the flattened order.
		for ci, c := range topo.Clusters {
			for k := range c.Nodes {
				for j := 0; j < gpus; j++ {
					r := topo.Rank(ci, k, j)
					d := topo.Device(r)
					if d.Cluster != ci || d.Local != j {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	s := HybridEnv(4).String()
	for _, want := range []string{"2 cluster(s)", "InfiniBand", "RoCE"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
