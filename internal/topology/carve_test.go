package topology

import (
	"testing"
)

// fleetTopo builds a three-cluster fleet with a per-node override, the
// shape the fleet scheduler carves: IB and RoCE clusters plus a commodity
// Ethernet cluster, with node 1 degraded to 150 Gb/s per NIC and a
// 10 Gb/s Ethernet card.
func fleetTopo(t *testing.T) *Topology {
	t.Helper()
	topo, err := Build(Spec{Clusters: []ClusterSpec{
		{NIC: InfiniBand, Nodes: 3, Overrides: map[int]NodeOverride{
			1: {GbpsPerNIC: 150, EthGbps: 10},
		}},
		{NIC: RoCE, Nodes: 2},
		{NIC: Ethernet, Nodes: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestCarveRederivesRankNumbering(t *testing.T) {
	topo := fleetTopo(t)
	// Carve a cross-cluster slice out of the middle: IB node 2, both RoCE
	// nodes, one Ethernet node, given in scrambled order.
	sub, err := topo.Carve([]int{4, 2, 6, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("carved slice fails §2.4 validation: %v", err)
	}
	if got, want := sub.NumNodes(), 4; got != want {
		t.Fatalf("carved %d nodes, want %d", got, want)
	}
	if got, want := sub.NumClusters(), 3; got != want {
		t.Fatalf("carved %d clusters, want %d", got, want)
	}
	// Ranks must be re-derived dense from 0, cluster by cluster.
	want := 0
	for ci, c := range sub.Clusters {
		for k, n := range c.Nodes {
			for j, d := range n.Devices {
				if got := sub.Rank(ci, k, j); got != want || d.Rank != want {
					t.Fatalf("cluster %d node %d dev %d: Rank()=%d dev.Rank=%d want %d",
						ci, k, j, got, d.Rank, want)
				}
				want++
			}
		}
	}
	// NIC technologies survive the carve in original cluster order.
	for i, nic := range []NICType{InfiniBand, RoCE, Ethernet} {
		if sub.Clusters[i].NICType != nic {
			t.Fatalf("cluster %d carved as %v, want %v", i, sub.Clusters[i].NICType, nic)
		}
	}
}

func TestCarveInheritsOverrides(t *testing.T) {
	topo := fleetTopo(t)
	// Original node 1 carries the degraded override; carve it with a
	// pristine neighbour and check both survive verbatim.
	sub, err := topo.Carve([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	pristine, degraded := sub.Node(0), sub.Node(1)
	if got := pristine.NICs[0].Gbps; got != IBGbps {
		t.Fatalf("pristine node carved with %g Gb/s per NIC, want %d", got, IBGbps)
	}
	if got := degraded.NICs[0].Gbps; got != 150 {
		t.Fatalf("override lost: carved node has %g Gb/s per NIC, want 150", got)
	}
	if got := degraded.EthNIC.Gbps; got != 10 {
		t.Fatalf("Ethernet override lost: carved node has %g Gb/s, want 10", got)
	}
	if got := pristine.EthNIC.Gbps; got != EthernetGbps {
		t.Fatalf("pristine node carved with %g Gb/s Ethernet, want %d", got, EthernetGbps)
	}
}

func TestCarveAllNodesReproducesFingerprint(t *testing.T) {
	topo := fleetTopo(t)
	all := make([]int, topo.NumNodes())
	for i := range all {
		all[i] = i
	}
	sub, err := topo.Carve(all)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sub.Fingerprint(), topo.Fingerprint(); got != want {
		t.Fatalf("full carve drifted structurally:\n got %s\nwant %s", got, want)
	}
}

func TestCarveDisjointSlices(t *testing.T) {
	topo := fleetTopo(t)
	a, err := topo.Carve([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := topo.Carve([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint selections must never alias parent structures: carving is a
	// rebuild, not a view, so two slices can be planned concurrently.
	for _, n := range a.Nodes() {
		for _, m := range b.Nodes() {
			if n == m {
				t.Fatal("carved slices share a node pointer")
			}
		}
	}
	for _, n := range append(a.Nodes(), b.Nodes()...) {
		for _, p := range topo.Nodes() {
			if n == p {
				t.Fatal("carved slice aliases the parent topology")
			}
		}
	}
}

func TestCarveRejectsBadSelections(t *testing.T) {
	topo := fleetTopo(t)
	for name, nodes := range map[string][]int{
		"empty":        {},
		"out of range": {0, 7},
		"negative":     {-1},
		"duplicate":    {2, 2},
	} {
		if _, err := topo.Carve(nodes); err == nil {
			t.Errorf("%s selection accepted", name)
		}
	}
}
