// Package topology models the hardware landscape Holmes schedules over:
// clusters of nodes, nodes of GPU devices, the NICs that connect nodes, and
// the intra-node interconnect (NVLink / PCIe).
//
// The package implements the formalization of §2.4 of the paper: M clusters
// c_1..c_M, cluster c_i holding f_i nodes, every node holding G devices, and
// the global rank numbering
//
//	rank = G*((Σ_{a<i} f_a) + k-1) + j
//
// for the j-th device of the k-th node of the i-th cluster (1-based).
package topology

import (
	"fmt"
	"strings"
)

// NICType enumerates the network interface technologies in the paper.
type NICType int

const (
	// Ethernet is the 25 Gb/s commodity fallback every node has.
	Ethernet NICType = iota
	// InfiniBand is 200 Gb/s RDMA (dedicated fabric).
	InfiniBand
	// RoCE is 200 Gb/s RDMA over Converged Ethernet.
	RoCE
)

// String returns the conventional name of the NIC technology.
func (t NICType) String() string {
	switch t {
	case Ethernet:
		return "Ethernet"
	case InfiniBand:
		return "InfiniBand"
	case RoCE:
		return "RoCE"
	default:
		return fmt.Sprintf("NICType(%d)", int(t))
	}
}

// IsRDMA reports whether the NIC supports remote direct memory access.
// InfiniBand and RoCE are RDMA-capable but mutually incompatible (§1).
func (t NICType) IsRDMA() bool { return t == InfiniBand || t == RoCE }

// Compatible reports whether two NIC technologies can talk to each other
// directly. InfiniBand and RoCE are incompatible; Ethernet only talks to
// Ethernet. Every node also carries an Ethernet NIC, so Ethernet is the
// universal (slow) fallback.
func Compatible(a, b NICType) bool { return a == b }

// LinkType enumerates intra-node GPU interconnects.
type LinkType int

const (
	// NVLink (A100: 600 GB/s aggregate, ~300 GB/s per direction usable).
	// NVLink is the zero value: HGX nodes are the default platform.
	NVLink LinkType = iota
	// PCIe gen4 x16, ~32 GB/s per direction.
	PCIe
)

// String returns the conventional name of the link technology.
func (l LinkType) String() string {
	if l == NVLink {
		return "NVLink"
	}
	return "PCIe"
}

// NIC describes one physical network interface card on a node.
type NIC struct {
	Type NICType
	// GbpsPerPort is the line rate of the card in gigabits per second.
	Gbps float64
}

// Device is a single GPU.
type Device struct {
	// Rank is the global rank per the paper's numbering (0-based here; the
	// paper writes 1-based subscripts but enumerates ranks from 0).
	Rank int
	// Node and Cluster identify the containing node/cluster by index.
	Node    int
	Cluster int
	// Local is the index of the device within its node (0..G-1).
	Local int
}

// Node is a host with G GPU devices and a set of NICs.
type Node struct {
	// Index is the global node index (0-based, ordered cluster by cluster).
	Index int
	// Cluster is the index of the owning cluster.
	Cluster int
	// Devices are the GPUs in local order.
	Devices []*Device
	// NICs are the high-speed cards; every node additionally has EthNIC.
	NICs []NIC
	// EthNIC is the always-present Ethernet card.
	EthNIC NIC
	// Intra is the intra-node GPU interconnect.
	Intra LinkType
	// MemBytesPerGPU is the device memory of each GPU (DMem in Eq. 5 terms).
	MemBytesPerGPU int64
}

// RDMAType returns the node's RDMA NIC technology, or Ethernet if it has
// none.
func (n *Node) RDMAType() NICType {
	for _, nic := range n.NICs {
		if nic.Type.IsRDMA() {
			return nic.Type
		}
	}
	return Ethernet
}

// RDMAGbps returns the aggregate RDMA bandwidth of the node in Gb/s (sum
// over its RDMA NICs), or 0 if it has none.
func (n *Node) RDMAGbps() float64 {
	var g float64
	for _, nic := range n.NICs {
		if nic.Type.IsRDMA() {
			g += nic.Gbps
		}
	}
	return g
}

// Cluster is a set of nodes sharing one RDMA fabric (or none).
type Cluster struct {
	// Index is the cluster index (0-based; the paper's c_{i+1}).
	Index int
	// Name is a human-readable label, e.g. "IB-Cluster1".
	Name string
	// NICType is the RDMA technology of the cluster's nodes (Ethernet if
	// the cluster has no RDMA fabric).
	NICType NICType
	// Nodes are the member nodes in order.
	Nodes []*Node
}

// NumDevices returns the number of GPUs in the cluster.
func (c *Cluster) NumDevices() int {
	n := 0
	for _, nd := range c.Nodes {
		n += len(nd.Devices)
	}
	return n
}

// Topology is the complete hardware landscape of a training job.
type Topology struct {
	Clusters []*Cluster
	// nodes and devices flattened in global order.
	nodes   []*Node
	devices []*Device
	// GPUsPerNode is G: constant across nodes per §2.4.
	GPUsPerNode int
}

// NumClusters returns M.
func (t *Topology) NumClusters() int { return len(t.Clusters) }

// NumNodes returns the total node count Σ f_i.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumDevices returns N = G·Σ f_i.
func (t *Topology) NumDevices() int { return len(t.devices) }

// Nodes returns all nodes in global order.
func (t *Topology) Nodes() []*Node { return t.nodes }

// Devices returns all devices in global rank order.
func (t *Topology) Devices() []*Device { return t.devices }

// Device returns the device with the given global rank.
func (t *Topology) Device(rank int) *Device {
	if rank < 0 || rank >= len(t.devices) {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", rank, len(t.devices)))
	}
	return t.devices[rank]
}

// Node returns the node with the given global index.
func (t *Topology) Node(idx int) *Node {
	if idx < 0 || idx >= len(t.nodes) {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", idx, len(t.nodes)))
	}
	return t.nodes[idx]
}

// ClusterOf returns the cluster containing the given global rank.
func (t *Topology) ClusterOf(rank int) *Cluster {
	return t.Clusters[t.Device(rank).Cluster]
}

// NodeOf returns the node containing the given global rank.
func (t *Topology) NodeOf(rank int) *Node {
	return t.nodes[t.Device(rank).Node]
}

// SameNode reports whether two ranks live on one node (tensor-parallel
// domain).
func (t *Topology) SameNode(a, b int) bool {
	return t.Device(a).Node == t.Device(b).Node
}

// SameCluster reports whether two ranks live in one cluster (RDMA domain).
func (t *Topology) SameCluster(a, b int) bool {
	return t.Device(a).Cluster == t.Device(b).Cluster
}

// Rank implements the paper's global numbering: the j-th device (0-based)
// of the k-th node (0-based) of the i-th cluster (0-based).
func (t *Topology) Rank(cluster, node, device int) int {
	base := 0
	for i := 0; i < cluster; i++ {
		base += len(t.Clusters[i].Nodes)
	}
	return t.GPUsPerNode*(base+node) + device
}

// BestCommonNIC returns the fastest NIC technology usable between two
// ranks' nodes: the shared RDMA technology if both nodes are in clusters
// with compatible RDMA NICs, else Ethernet. Ranks on the same node
// communicate over the intra-node link and are not covered here.
func (t *Topology) BestCommonNIC(a, b int) NICType {
	na, nb := t.NodeOf(a), t.NodeOf(b)
	ta, tb := na.RDMAType(), nb.RDMAType()
	if ta.IsRDMA() && Compatible(ta, tb) && t.SameCluster(a, b) {
		return ta
	}
	return Ethernet
}

// String renders a compact description of the topology.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology: %d cluster(s), %d node(s), %d GPU(s)\n",
		t.NumClusters(), t.NumNodes(), t.NumDevices())
	for _, c := range t.Clusters {
		fmt.Fprintf(&b, "  %s [%s]: %d node(s) × %d GPU(s)\n",
			c.Name, c.NICType, len(c.Nodes), t.GPUsPerNode)
	}
	return b.String()
}

// Fingerprint returns a stable structural identity for the topology:
// equal cluster/node/NIC/memory layouts yield equal fingerprints even for
// independently built values. Plan and world caches key on it, so it must
// cover everything communicator construction and the fabric read.
func (t *Topology) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "g%d", t.GPUsPerNode)
	for _, c := range t.Clusters {
		fmt.Fprintf(&b, "|%v:%d", c.NICType, len(c.Nodes))
		for _, n := range c.Nodes {
			// %g keeps fractional capacities distinct: degraded effective
			// topologies carry non-integral Gbps that %.0f would collide.
			fmt.Fprintf(&b, ";%v*%dx%g:%v:e%g:m%d",
				n.RDMAType(), len(n.NICs), n.RDMAGbps(), n.Intra, n.EthNIC.Gbps, n.MemBytesPerGPU)
		}
	}
	return b.String()
}

// Validate checks the §2.4 structural invariants: at least one cluster,
// every node holds exactly G devices, ranks are dense and ordered.
func (t *Topology) Validate() error {
	if len(t.Clusters) == 0 {
		return fmt.Errorf("topology: no clusters")
	}
	if t.GPUsPerNode <= 0 {
		return fmt.Errorf("topology: GPUsPerNode = %d", t.GPUsPerNode)
	}
	want := 0
	for ci, c := range t.Clusters {
		if c.Index != ci {
			return fmt.Errorf("topology: cluster %d has index %d", ci, c.Index)
		}
		if len(c.Nodes) == 0 {
			return fmt.Errorf("topology: cluster %d (%s) empty", ci, c.Name)
		}
		for _, n := range c.Nodes {
			if len(n.Devices) != t.GPUsPerNode {
				return fmt.Errorf("topology: node %d has %d devices, want %d",
					n.Index, len(n.Devices), t.GPUsPerNode)
			}
			for j, d := range n.Devices {
				if d.Rank != want {
					return fmt.Errorf("topology: device rank %d, want %d", d.Rank, want)
				}
				if d.Local != j || d.Node != n.Index || d.Cluster != ci {
					return fmt.Errorf("topology: device %d has inconsistent coordinates", d.Rank)
				}
				want++
			}
		}
	}
	return nil
}
