package topology

import (
	"fmt"
	"sort"
)

// Carving cuts a node-disjoint sub-topology out of a shared fleet so one
// training job can be planned on exactly the nodes it was allotted. The
// carved slice is a first-class Topology: clusters keep their NIC
// technology and relative order, and the §2.4 global rank numbering
//
//	rank = G*((Σ_{a<i} f_a) + k-1) + j
//
// is re-derived from scratch over the surviving nodes rather than masked
// out of the parent's numbering — every consumer downstream (parallel
// assignment, communicator construction, the netsim fabric) assumes dense
// 0-based ranks, and a re-derived slice satisfies Validate exactly like a
// freshly built topology (see DESIGN.md decision 9).

// CarveSpec folds the selected nodes into a buildable Spec: nodes are
// grouped by their original cluster (clusters in original order, nodes in
// ascending global index), empty clusters are dropped, and every node's
// actual NIC capacities — including any per-node Overrides the parent was
// built with — are carried as overrides of the carved spec.
//
// The node set must be non-empty, in range, and free of duplicates.
func (t *Topology) CarveSpec(nodes []int) (Spec, error) {
	if len(nodes) == 0 {
		return Spec{}, fmt.Errorf("topology: carve of zero nodes")
	}
	picked := append([]int(nil), nodes...)
	sort.Ints(picked)
	for i, idx := range picked {
		if idx < 0 || idx >= t.NumNodes() {
			return Spec{}, fmt.Errorf("topology: carve node %d outside topology (%d nodes)", idx, t.NumNodes())
		}
		if i > 0 && picked[i-1] == idx {
			return Spec{}, fmt.Errorf("topology: carve node %d selected twice", idx)
		}
	}
	n0 := t.Node(picked[0])
	spec := Spec{
		GPUsPerNode: t.GPUsPerNode,
		GPUMemBytes: n0.MemBytesPerGPU,
		Intra:       n0.Intra,
		EthGbps:     n0.EthNIC.Gbps,
	}
	// Global node indices ascend cluster by cluster, so one ordered pass
	// over the sorted selection groups it by original cluster.
	i := 0
	for _, c := range t.Clusters {
		base := c.Nodes[0]
		cs := ClusterSpec{
			Name:        c.Name,
			NIC:         c.NICType,
			NICsPerNode: len(base.NICs),
			Overrides:   make(map[int]NodeOverride),
		}
		if len(base.NICs) > 0 {
			cs.GbpsPerNIC = base.NICs[0].Gbps
		}
		for i < len(picked) && t.Node(picked[i]).Cluster == c.Index {
			n := t.Node(picked[i])
			ov := NodeOverride{EthGbps: n.EthNIC.Gbps}
			if len(n.NICs) > 0 {
				ov.GbpsPerNIC = n.NICs[0].Gbps
			}
			cs.Overrides[cs.Nodes] = ov
			cs.Nodes++
			i++
		}
		if cs.Nodes > 0 {
			spec.Clusters = append(spec.Clusters, cs)
		}
	}
	return spec, nil
}

// Carve builds the sub-topology over the selected nodes (original global
// indices, any order). The carved node k (new global index) corresponds
// to the k-th smallest selected original index; callers that need to map
// placements back to the parent keep the sorted selection as that
// mapping. Carving every node reproduces the parent's structural
// fingerprint exactly.
func (t *Topology) Carve(nodes []int) (*Topology, error) {
	spec, err := t.CarveSpec(nodes)
	if err != nil {
		return nil, err
	}
	sub, err := Build(spec)
	if err != nil {
		return nil, fmt.Errorf("topology: carve: %w", err)
	}
	return sub, nil
}
