package topology

import (
	"testing"
)

// FuzzBuildTopology feeds Build arbitrary cluster specs decoded from raw
// bytes. Build must never panic: it either returns an error or a
// topology whose §2.4 invariants hold — Validate passes, the global rank
// numbering rank = G·((Σ_{a<i} f_a)+k)+j round-trips through
// Topology.Rank, and rebuilding the same spec reproduces the same
// structural fingerprint.
func FuzzBuildTopology(f *testing.F) {
	f.Add([]byte{2, 1, 2, 2, 4, 8, 0, 0})                   // small hybrid
	f.Add([]byte{1, 0, 1, 1, 1, 1, 1, 1})                   // single eth node
	f.Add([]byte{3, 1, 4, 2, 2, 0, 6, 16, 100, 3, 200, 25}) // three clusters, overrides
	f.Add([]byte{})                                         // no clusters: must error, not panic
	f.Add([]byte{255, 255, 255, 255})
	// Multi-cluster fleet shapes the carve path slices: IB+RoCE+Eth with
	// per-node overrides, and a wide four-cluster spread.
	f.Add([]byte{4, 2, 0, 25, 3, 1, 3, 4, 100, 1, 3, 75, 10, 2, 2, 2, 0, 0, 0, 1, 0, 0})
	f.Add([]byte{8, 4, 1, 25, 4, 1, 2, 4, 200, 0, 2, 2, 2, 200, 0, 0, 4, 0, 0, 1, 1, 1, 2, 50, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		spec := decodeSpec(data)
		topo, err := Build(spec)
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("Build returned an invalid topology: %v (spec %+v)", err, spec)
		}
		// Rank numbering round trip (§2.4): enumerating devices cluster by
		// cluster, node by node, local index by local index must agree
		// with Topology.Rank, and every rank must be dense and ordered.
		want := 0
		for ci, c := range topo.Clusters {
			for k, n := range c.Nodes {
				for j, d := range n.Devices {
					if got := topo.Rank(ci, k, j); got != want || d.Rank != want {
						t.Fatalf("rank numbering broken at cluster %d node %d dev %d: Rank()=%d dev.Rank=%d want %d",
							ci, k, j, got, d.Rank, want)
					}
					if dev := topo.Device(want); dev != d {
						t.Fatalf("Device(%d) returned a different device", want)
					}
					want++
				}
			}
		}
		if want != topo.NumDevices() {
			t.Fatalf("enumerated %d devices, topology claims %d", want, topo.NumDevices())
		}
		// Deterministic rebuild: equal specs must yield equal fingerprints.
		topo2, err := Build(spec)
		if err != nil {
			t.Fatalf("rebuild of a valid spec failed: %v", err)
		}
		if topo.Fingerprint() != topo2.Fingerprint() {
			t.Fatalf("fingerprint not deterministic:\n%s\n%s", topo.Fingerprint(), topo2.Fingerprint())
		}
	})
}

// FuzzCarve cuts arbitrary node selections out of arbitrary built
// topologies. A valid selection must carve to a topology that passes
// Validate (dense re-derived §2.4 ranks), keeps every carved node's NIC
// capacities (per-node Overrides included), and partitions cleanly: the
// complement carve is node-disjoint from the slice and the two cover the
// parent exactly. Invalid selections must error, never panic.
func FuzzCarve(f *testing.F) {
	f.Add([]byte{2, 1, 2, 2, 4, 8, 0, 0}, []byte{0b101})
	f.Add([]byte{3, 1, 4, 2, 2, 0, 6, 16, 100, 3, 200, 25}, []byte{0b110101})
	f.Add([]byte{4, 2, 0, 25, 3, 1, 3, 4, 100, 1, 3, 75, 10, 2, 2, 2, 0, 0, 0, 1, 0, 0}, []byte{0xFF})
	f.Add([]byte{2, 1, 2, 2, 4, 8, 0, 0}, []byte{})  // empty selection: error
	f.Add([]byte{2, 1, 2, 2, 4, 8, 0, 0}, []byte{0}) // no bits set: error

	f.Fuzz(func(t *testing.T, specData, selData []byte) {
		topo, err := Build(decodeSpec(specData))
		if err != nil {
			return
		}
		// Selection = bitmask over the node count, read from selData.
		var picked, rest []int
		for i := 0; i < topo.NumNodes(); i++ {
			if i/8 < len(selData) && selData[i/8]&(1<<(i%8)) != 0 {
				picked = append(picked, i)
			} else {
				rest = append(rest, i)
			}
		}
		sub, err := topo.Carve(picked)
		if len(picked) == 0 {
			if err == nil {
				t.Fatal("empty carve did not error")
			}
			return
		}
		if err != nil {
			t.Fatalf("carve of a valid selection failed: %v (picked %v)", err, picked)
		}
		if err := sub.Validate(); err != nil {
			t.Fatalf("carved slice invalid: %v (picked %v)", err, picked)
		}
		if sub.NumNodes() != len(picked) {
			t.Fatalf("carved %d nodes from a %d-node selection", sub.NumNodes(), len(picked))
		}
		// Carved node k is the k-th smallest original index (picked is
		// already ascending): capacities must match verbatim.
		for k, orig := range picked {
			want, got := topo.Node(orig), sub.Node(k)
			if want.RDMAGbps() != got.RDMAGbps() || want.EthNIC.Gbps != got.EthNIC.Gbps ||
				want.RDMAType() != got.RDMAType() || len(want.Devices) != len(got.Devices) {
				t.Fatalf("carved node %d drifted from original node %d: %v/%g/%g vs %v/%g/%g",
					k, orig, got.RDMAType(), got.RDMAGbps(), got.EthNIC.Gbps,
					want.RDMAType(), want.RDMAGbps(), want.EthNIC.Gbps)
			}
		}
		// The complement carve partitions the fleet with the slice.
		if len(rest) > 0 {
			other, err := topo.Carve(rest)
			if err != nil {
				t.Fatalf("complement carve failed: %v", err)
			}
			if sub.NumNodes()+other.NumNodes() != topo.NumNodes() {
				t.Fatalf("carves do not partition: %d + %d != %d",
					sub.NumNodes(), other.NumNodes(), topo.NumNodes())
			}
		} else {
			// Full carve: the slice must be structurally identical.
			if sub.Fingerprint() != topo.Fingerprint() {
				t.Fatalf("full carve drifted:\n got %s\nwant %s", sub.Fingerprint(), topo.Fingerprint())
			}
		}
		// Out-of-range and duplicate selections must error.
		if _, err := topo.Carve(append(append([]int(nil), picked...), topo.NumNodes())); err == nil {
			t.Fatal("out-of-range carve accepted")
		}
		if _, err := topo.Carve(append(append([]int(nil), picked...), picked[0])); err == nil {
			t.Fatal("duplicate carve accepted")
		}
	})
}

// decodeSpec maps raw fuzz bytes onto a builder spec, deliberately
// covering invalid shapes (zero node counts, unknown NIC values, huge
// GPU counts, negative-ish overrides) so the error paths fuzz too.
func decodeSpec(data []byte) Spec {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	spec := Spec{
		GPUsPerNode: int(int8(next())), // may be negative: Build must reject
		GPUMemBytes: int64(next()) << 28,
		Intra:       LinkType(next() % 3),
		EthGbps:     float64(int8(next())),
	}
	nClusters := int(next() % 5)
	for i := 0; i < nClusters; i++ {
		cs := ClusterSpec{
			NIC:         NICType(int8(next() % 5)), // includes unknown types
			Nodes:       int(int8(next())),
			NICsPerNode: int(int8(next())),
			GbpsPerNIC:  float64(int8(next())),
		}
		if next()%2 == 1 {
			cs.Overrides = map[int]NodeOverride{
				int(next() % 8): {
					GbpsPerNIC: float64(int8(next())),
					EthGbps:    float64(int8(next())),
				},
			}
		}
		spec.Clusters = append(spec.Clusters, cs)
	}
	return spec
}
