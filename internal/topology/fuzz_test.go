package topology

import (
	"testing"
)

// FuzzBuildTopology feeds Build arbitrary cluster specs decoded from raw
// bytes. Build must never panic: it either returns an error or a
// topology whose §2.4 invariants hold — Validate passes, the global rank
// numbering rank = G·((Σ_{a<i} f_a)+k)+j round-trips through
// Topology.Rank, and rebuilding the same spec reproduces the same
// structural fingerprint.
func FuzzBuildTopology(f *testing.F) {
	f.Add([]byte{2, 1, 2, 2, 4, 8, 0, 0})                   // small hybrid
	f.Add([]byte{1, 0, 1, 1, 1, 1, 1, 1})                   // single eth node
	f.Add([]byte{3, 1, 4, 2, 2, 0, 6, 16, 100, 3, 200, 25}) // three clusters, overrides
	f.Add([]byte{})                                         // no clusters: must error, not panic
	f.Add([]byte{255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		spec := decodeSpec(data)
		topo, err := Build(spec)
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("Build returned an invalid topology: %v (spec %+v)", err, spec)
		}
		// Rank numbering round trip (§2.4): enumerating devices cluster by
		// cluster, node by node, local index by local index must agree
		// with Topology.Rank, and every rank must be dense and ordered.
		want := 0
		for ci, c := range topo.Clusters {
			for k, n := range c.Nodes {
				for j, d := range n.Devices {
					if got := topo.Rank(ci, k, j); got != want || d.Rank != want {
						t.Fatalf("rank numbering broken at cluster %d node %d dev %d: Rank()=%d dev.Rank=%d want %d",
							ci, k, j, got, d.Rank, want)
					}
					if dev := topo.Device(want); dev != d {
						t.Fatalf("Device(%d) returned a different device", want)
					}
					want++
				}
			}
		}
		if want != topo.NumDevices() {
			t.Fatalf("enumerated %d devices, topology claims %d", want, topo.NumDevices())
		}
		// Deterministic rebuild: equal specs must yield equal fingerprints.
		topo2, err := Build(spec)
		if err != nil {
			t.Fatalf("rebuild of a valid spec failed: %v", err)
		}
		if topo.Fingerprint() != topo2.Fingerprint() {
			t.Fatalf("fingerprint not deterministic:\n%s\n%s", topo.Fingerprint(), topo2.Fingerprint())
		}
	})
}

// decodeSpec maps raw fuzz bytes onto a builder spec, deliberately
// covering invalid shapes (zero node counts, unknown NIC values, huge
// GPU counts, negative-ish overrides) so the error paths fuzz too.
func decodeSpec(data []byte) Spec {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	spec := Spec{
		GPUsPerNode: int(int8(next())), // may be negative: Build must reject
		GPUMemBytes: int64(next()) << 28,
		Intra:       LinkType(next() % 3),
		EthGbps:     float64(int8(next())),
	}
	nClusters := int(next() % 5)
	for i := 0; i < nClusters; i++ {
		cs := ClusterSpec{
			NIC:         NICType(int8(next() % 5)), // includes unknown types
			Nodes:       int(int8(next())),
			NICsPerNode: int(int8(next())),
			GbpsPerNIC:  float64(int8(next())),
		}
		if next()%2 == 1 {
			cs.Overrides = map[int]NodeOverride{
				int(next() % 8): {
					GbpsPerNIC: float64(int8(next())),
					EthGbps:    float64(int8(next())),
				},
			}
		}
		spec.Clusters = append(spec.Clusters, cs)
	}
	return spec
}
