package topology

import "fmt"

// Hardware constants reflecting the paper's testbed (Appendix A): NVIDIA
// HGX nodes with 8 × A100-80GB, 4 × 200 Gb/s InfiniBand NICs per IB node,
// 2 × 200 Gb/s RoCE NICs per RoCE node, and a 25 Gb/s Ethernet NIC
// everywhere.
const (
	DefaultGPUsPerNode = 8
	// A100MemBytes is the device memory of an A100-80GB.
	A100MemBytes = 80 << 30

	IBGbps       = 200
	RoCEGbps     = 200
	EthernetGbps = 25

	// NICs per node, per the artifact description ("200G Infiniband *4 or
	// 200G ROCE *2"). This asymmetry, not line rate, is why RoCE clusters
	// trail IB clusters at equal per-NIC bandwidth (Table 1).
	IBNICsPerNode   = 4
	RoCENICsPerNode = 2
)

// ClusterSpec describes one cluster for the builder.
type ClusterSpec struct {
	// Name labels the cluster; if empty a name is generated.
	Name string
	// NIC is the RDMA technology (InfiniBand, RoCE) or Ethernet for a
	// commodity cluster.
	NIC NICType
	// Nodes is f_i, the node count.
	Nodes int
	// NICsPerNode overrides the per-technology default when positive.
	NICsPerNode int
	// GbpsPerNIC overrides the per-technology default when positive.
	GbpsPerNIC float64
	// Overrides customizes individual nodes, keyed by the node's position
	// within the cluster (0-based). Scenario replanning uses this to carry
	// a degraded node's reduced capacity into an effective topology.
	Overrides map[int]NodeOverride
}

// NodeOverride replaces one node's NIC capacities; zero fields keep the
// cluster's values.
type NodeOverride struct {
	// GbpsPerNIC overrides the per-RDMA-NIC line rate for this node.
	GbpsPerNIC float64
	// EthGbps overrides the Ethernet NIC line rate for this node.
	EthGbps float64
}

// Spec describes a whole topology for the builder.
type Spec struct {
	Clusters    []ClusterSpec
	GPUsPerNode int      // defaults to DefaultGPUsPerNode
	GPUMemBytes int64    // defaults to A100MemBytes
	Intra       LinkType // defaults to NVLink
	EthGbps     float64  // defaults to EthernetGbps
}

// Build materializes a topology from a spec.
func Build(spec Spec) (*Topology, error) {
	if len(spec.Clusters) == 0 {
		return nil, fmt.Errorf("topology: spec has no clusters")
	}
	g := spec.GPUsPerNode
	if g == 0 {
		g = DefaultGPUsPerNode
	}
	if g < 0 {
		return nil, fmt.Errorf("topology: negative GPUsPerNode %d", g)
	}
	mem := spec.GPUMemBytes
	if mem == 0 {
		mem = A100MemBytes
	}
	if mem < 0 {
		return nil, fmt.Errorf("topology: negative GPU memory %d", mem)
	}
	eth := spec.EthGbps
	if eth == 0 {
		eth = EthernetGbps
	}
	if eth < 0 {
		// A negative line rate would also poison carved sub-topologies:
		// CarveSpec carries node capacities as overrides, and overrides
		// reject negatives.
		return nil, fmt.Errorf("topology: negative Ethernet bandwidth %g", eth)
	}
	intra := spec.Intra
	if intra != PCIe && intra != NVLink {
		intra = NVLink
	}

	t := &Topology{GPUsPerNode: g}
	rank, nodeIdx := 0, 0
	for ci, cs := range spec.Clusters {
		if cs.Nodes <= 0 {
			return nil, fmt.Errorf("topology: cluster %d has %d nodes", ci, cs.Nodes)
		}
		name := cs.Name
		if name == "" {
			name = fmt.Sprintf("%s-Cluster%d", cs.NIC, ci+1)
		}
		cluster := &Cluster{Index: ci, Name: name, NICType: cs.NIC}
		nics, err := nicsFor(cs)
		if err != nil {
			return nil, err
		}
		for k := 0; k < cs.Nodes; k++ {
			nodeNICs, ethGbps := nics, eth
			if ov, ok := cs.Overrides[k]; ok {
				if ov.GbpsPerNIC < 0 || ov.EthGbps < 0 {
					return nil, fmt.Errorf("topology: cluster %d node %d override has negative bandwidth", ci, k)
				}
				if ov.GbpsPerNIC > 0 && len(nics) > 0 {
					nodeNICs = make([]NIC, len(nics))
					for i := range nics {
						nodeNICs[i] = NIC{Type: nics[i].Type, Gbps: ov.GbpsPerNIC}
					}
				}
				if ov.EthGbps > 0 {
					ethGbps = ov.EthGbps
				}
			}
			node := &Node{
				Index:          nodeIdx,
				Cluster:        ci,
				NICs:           nodeNICs,
				EthNIC:         NIC{Type: Ethernet, Gbps: ethGbps},
				Intra:          intra,
				MemBytesPerGPU: mem,
			}
			for j := 0; j < g; j++ {
				d := &Device{Rank: rank, Node: nodeIdx, Cluster: ci, Local: j}
				node.Devices = append(node.Devices, d)
				t.devices = append(t.devices, d)
				rank++
			}
			cluster.Nodes = append(cluster.Nodes, node)
			t.nodes = append(t.nodes, node)
			nodeIdx++
		}
		t.Clusters = append(t.Clusters, cluster)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func nicsFor(cs ClusterSpec) ([]NIC, error) {
	count, gbps := cs.NICsPerNode, cs.GbpsPerNIC
	switch cs.NIC {
	case InfiniBand:
		if count == 0 {
			count = IBNICsPerNode
		}
		if gbps == 0 {
			gbps = IBGbps
		}
	case RoCE:
		if count == 0 {
			count = RoCENICsPerNode
		}
		if gbps == 0 {
			gbps = RoCEGbps
		}
	case Ethernet:
		// Ethernet-only cluster: no RDMA NICs beyond the implicit EthNIC.
		return nil, nil
	default:
		return nil, fmt.Errorf("topology: unknown NIC type %v", cs.NIC)
	}
	if count < 0 || gbps < 0 {
		return nil, fmt.Errorf("topology: negative NIC count/bandwidth")
	}
	nics := make([]NIC, count)
	for i := range nics {
		nics[i] = NIC{Type: cs.NIC, Gbps: gbps}
	}
	return nics, nil
}

// MustBuild is Build that panics on error, for tests and presets.
func MustBuild(spec Spec) *Topology {
	t, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// The four NIC environments of §4.1, parameterized by total node count.

// IBEnv builds a single InfiniBand cluster with n nodes.
func IBEnv(n int) *Topology {
	return MustBuild(Spec{Clusters: []ClusterSpec{{NIC: InfiniBand, Nodes: n}}})
}

// RoCEEnv builds a single RoCE cluster with n nodes.
func RoCEEnv(n int) *Topology {
	return MustBuild(Spec{Clusters: []ClusterSpec{{NIC: RoCE, Nodes: n}}})
}

// EthernetEnv builds a single Ethernet-only cluster with n nodes.
func EthernetEnv(n int) *Topology {
	return MustBuild(Spec{Clusters: []ClusterSpec{{NIC: Ethernet, Nodes: n}}})
}

// HybridEnv builds the paper's Hybrid environment: two clusters with the
// same number of nodes (n must be even), one InfiniBand and one RoCE,
// connected only by Ethernet.
func HybridEnv(n int) *Topology {
	if n%2 != 0 {
		panic(fmt.Sprintf("topology: hybrid environment needs an even node count, got %d", n))
	}
	return MustBuild(Spec{Clusters: []ClusterSpec{
		{NIC: InfiniBand, Nodes: n / 2},
		{NIC: RoCE, Nodes: n / 2},
	}})
}

// EnvName identifies one of the paper's four NIC environments.
type EnvName string

const (
	EnvInfiniBand EnvName = "InfiniBand"
	EnvRoCE       EnvName = "RoCE"
	EnvEthernet   EnvName = "Ethernet"
	EnvHybrid     EnvName = "Hybrid"
)

// Env builds the named environment with n total nodes.
func Env(name EnvName, n int) (*Topology, error) {
	switch name {
	case EnvInfiniBand:
		return Build(Spec{Clusters: []ClusterSpec{{NIC: InfiniBand, Nodes: n}}})
	case EnvRoCE:
		return Build(Spec{Clusters: []ClusterSpec{{NIC: RoCE, Nodes: n}}})
	case EnvEthernet:
		return Build(Spec{Clusters: []ClusterSpec{{NIC: Ethernet, Nodes: n}}})
	case EnvHybrid:
		if n%2 != 0 {
			return nil, fmt.Errorf("topology: hybrid environment needs even node count, got %d", n)
		}
		return Build(Spec{Clusters: []ClusterSpec{
			{NIC: InfiniBand, Nodes: n / 2},
			{NIC: RoCE, Nodes: n / 2},
		}})
	default:
		return nil, fmt.Errorf("topology: unknown environment %q", name)
	}
}

// AllEnvs lists the four environments in the order the paper's tables use.
var AllEnvs = []EnvName{EnvInfiniBand, EnvRoCE, EnvEthernet, EnvHybrid}
