// Package partition implements the pipeline stage-division strategies of
// the paper (§3.3): the traditional Uniform partition, Holmes's
// Self-Adapting Pipeline Partition (Eq. 4–5) driven by per-stage device
// speeds and the α hyper-parameter, and an oracle bottleneck-minimizing
// partition used as an ablation baseline.
//
// A partition assigns every transformer layer to exactly one pipeline
// stage: the result is a slice of per-stage layer counts summing to the
// model's layer count, every stage non-empty.
package partition

import (
	"fmt"
	"math"
	"sort"
)

// Result is a stage division: Layers[j] layers on stage j.
type Result struct {
	Layers []int
	// Strategy names the producing algorithm ("uniform", "self-adapting",
	// "optimal").
	Strategy string
}

// Stages returns the stage count.
func (r Result) Stages() int { return len(r.Layers) }

// Total returns the layer sum.
func (r Result) Total() int {
	n := 0
	for _, l := range r.Layers {
		n += l
	}
	return n
}

// Validate checks structural invariants: positive per-stage counts and the
// expected total.
func (r Result) Validate(totalLayers int) error {
	if len(r.Layers) == 0 {
		return fmt.Errorf("partition: no stages")
	}
	sum := 0
	for j, l := range r.Layers {
		if l <= 0 {
			return fmt.Errorf("partition: stage %d has %d layers", j, l)
		}
		sum += l
	}
	if sum != totalLayers {
		return fmt.Errorf("partition: layers sum to %d, want %d", sum, totalLayers)
	}
	return nil
}

func (r Result) String() string {
	return fmt.Sprintf("%s%v", r.Strategy, r.Layers)
}

// Uniform divides layers as evenly as possible across p stages (the first
// layers%p stages get one extra layer), the traditional homogeneous-cluster
// strategy.
func Uniform(layers, p int) (Result, error) {
	if p <= 0 || layers < p {
		return Result{}, fmt.Errorf("partition: cannot split %d layers into %d stages", layers, p)
	}
	out := make([]int, p)
	base, extra := layers/p, layers%p
	for j := range out {
		out[j] = base
		if j < extra {
			out[j]++
		}
	}
	return Result{Layers: out, Strategy: "uniform"}, nil
}

// Stage describes one pipeline stage for the self-adapting partition.
type Stage struct {
	// Speed is the effective computational speed of the stage's devices
	// (TFLOPS achievable given their NIC environment) — S(c_i) in Eq. 5.
	Speed float64
	// MaxLayers caps the stage by device memory: the largest layer count
	// with Mem(N_ci) ≤ DMem(c_i). Zero means unconstrained.
	MaxLayers int
	// Alpha is the per-stage tuning knob α_ci of Eq. 5; zero means use the
	// caller's default.
	Alpha float64
}

// SelfAdapting implements Eq. 4–5: stage j receives
//
//	N_j = ⌊ α_j·S_j / ΣS · N ⌋
//
// for all but the last stage, which takes the remainder; allocations are
// then repaired to honour memory caps and non-emptiness. alpha is the
// default α (the paper's experiments use 1.05).
func SelfAdapting(layers int, stages []Stage, alpha float64) (Result, error) {
	p := len(stages)
	if p == 0 || layers < p {
		return Result{}, fmt.Errorf("partition: cannot split %d layers into %d stages", layers, p)
	}
	if alpha <= 0 {
		return Result{}, fmt.Errorf("partition: non-positive alpha %v", alpha)
	}
	var sum float64
	for j, s := range stages {
		if s.Speed <= 0 || math.IsNaN(s.Speed) {
			return Result{}, fmt.Errorf("partition: stage %d has speed %v", j, s.Speed)
		}
		sum += s.Speed
	}
	// Eq. 4/5: stage j targets α_j·S_j/ΣS·N layers; non-residual stages
	// take the floor. The paper's two-stage case hands the remainder to
	// the slow stage (N_roce = N − N_ib); for general p we settle the
	// residue by largest-remainder, breaking ties towards faster stages —
	// floors of α-boosted fast stages already hold their boost, so the
	// residue lands where the fractional claim is strongest rather than
	// as a windfall for the slowest stage.
	out := make([]int, p)
	frac := make([]float64, p)
	used := 0
	for j := 0; j < p; j++ {
		a := stages[j].Alpha
		if a == 0 {
			a = alpha
		}
		target := a * stages[j].Speed / sum * float64(layers)
		nj := int(math.Floor(target))
		if nj < 1 {
			nj = 1
		}
		frac[j] = target - float64(nj)
		out[j] = nj
		used += nj
	}
	order := make([]int, p)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		if frac[order[a]] != frac[order[b]] {
			return frac[order[a]] > frac[order[b]]
		}
		return stages[order[a]].Speed > stages[order[b]].Speed
	})
	for used < layers {
		for _, j := range order {
			if used == layers {
				break
			}
			out[j]++
			used++
		}
	}
	// α > 1 can over-claim; shave the excess from the slowest stages
	// (ties: the stage with the weakest α claim, then the latest stage).
	for used > layers {
		victim := -1
		for j := 0; j < p; j++ {
			if out[j] <= 1 {
				continue
			}
			if victim < 0 || worseClaim(stages, alpha, j, victim) {
				victim = j
			}
		}
		if victim < 0 {
			return Result{}, fmt.Errorf("partition: cannot shave %d excess layers", used-layers)
		}
		out[victim]--
		used--
	}
	if err := repairMemory(out, stages); err != nil {
		return Result{}, err
	}
	return Result{Layers: out, Strategy: "self-adapting"}, nil
}

// worseClaim reports whether stage a has a weaker claim on layers than
// stage b: slower speed, then smaller α, then later position.
func worseClaim(stages []Stage, alpha float64, a, b int) bool {
	eff := func(j int) (speed, al float64) {
		al = stages[j].Alpha
		if al == 0 {
			al = alpha
		}
		return stages[j].Speed, al
	}
	sa, aa := eff(a)
	sb, ab := eff(b)
	if sa != sb {
		return sa < sb
	}
	if aa != ab {
		return aa < ab
	}
	return a > b
}

// repairMemory shifts layers off stages that exceed their MaxLayers cap
// onto the stages with the most headroom (fastest first among ties).
func repairMemory(out []int, stages []Stage) error {
	type slot struct{ idx, cap int }
	overflow := 0
	var room []slot
	for j, s := range stages {
		if s.MaxLayers > 0 && out[j] > s.MaxLayers {
			overflow += out[j] - s.MaxLayers
			out[j] = s.MaxLayers
		}
	}
	if overflow == 0 {
		return nil
	}
	for j, s := range stages {
		cap := math.MaxInt
		if s.MaxLayers > 0 {
			cap = s.MaxLayers
		}
		if out[j] < cap {
			room = append(room, slot{j, cap})
		}
	}
	// Prefer faster stages for the spilled layers.
	sort.Slice(room, func(a, b int) bool {
		return stages[room[a].idx].Speed > stages[room[b].idx].Speed
	})
	for overflow > 0 {
		moved := false
		for _, r := range room {
			if overflow == 0 {
				break
			}
			if out[r.idx] < r.cap {
				out[r.idx]++
				overflow--
				moved = true
			}
		}
		if !moved {
			return fmt.Errorf("partition: memory caps too tight — %d layers do not fit", overflow)
		}
	}
	return nil
}

// Optimal exhaustively minimizes the pipeline bottleneck max_j(N_j / S_j)
// subject to per-stage memory caps. It is exponential in p and meant for
// p ≤ 8 as an ablation oracle; larger p falls back to a balanced greedy.
func Optimal(layers int, stages []Stage) (Result, error) {
	p := len(stages)
	if p == 0 || layers < p {
		return Result{}, fmt.Errorf("partition: cannot split %d layers into %d stages", layers, p)
	}
	for j, s := range stages {
		if s.Speed <= 0 {
			return Result{}, fmt.Errorf("partition: stage %d has speed %v", j, s.Speed)
		}
	}
	if p > 8 {
		return greedyBalanced(layers, stages)
	}
	best := math.Inf(1)
	bestAlloc := make([]int, p)
	cur := make([]int, p)
	var rec func(j, left int, worst float64)
	rec = func(j, left int, worst float64) {
		if worst >= best {
			return
		}
		if j == p-1 {
			if stages[j].MaxLayers > 0 && left > stages[j].MaxLayers {
				return
			}
			w := worst
			if t := float64(left) / stages[j].Speed; t > w {
				w = t
			}
			if w < best {
				best = w
				cur[j] = left
				copy(bestAlloc, cur)
			}
			return
		}
		maxHere := left - (p - 1 - j)
		if stages[j].MaxLayers > 0 && stages[j].MaxLayers < maxHere {
			maxHere = stages[j].MaxLayers
		}
		for n := 1; n <= maxHere; n++ {
			cur[j] = n
			w := worst
			if t := float64(n) / stages[j].Speed; t > w {
				w = t
			}
			rec(j+1, left-n, w)
		}
	}
	rec(0, layers, 0)
	if math.IsInf(best, 1) {
		return Result{}, fmt.Errorf("partition: no feasible allocation under memory caps")
	}
	return Result{Layers: bestAlloc, Strategy: "optimal"}, nil
}

// greedyBalanced assigns layers one at a time to the stage whose
// bottleneck time would grow the least.
func greedyBalanced(layers int, stages []Stage) (Result, error) {
	p := len(stages)
	out := make([]int, p)
	for j := range out {
		out[j] = 1
	}
	for n := p; n < layers; n++ {
		bestJ, bestT := -1, math.Inf(1)
		for j, s := range stages {
			if s.MaxLayers > 0 && out[j] >= s.MaxLayers {
				continue
			}
			if t := float64(out[j]+1) / s.Speed; t < bestT {
				bestT, bestJ = t, j
			}
		}
		if bestJ < 0 {
			return Result{}, fmt.Errorf("partition: memory caps too tight")
		}
		out[bestJ]++
	}
	return Result{Layers: out, Strategy: "optimal"}, nil
}

// BottleneckTime returns max_j layers_j / speed_j — the per-micro-batch
// pipeline beat a partition induces.
func BottleneckTime(r Result, stages []Stage) float64 {
	worst := 0.0
	for j, l := range r.Layers {
		if t := float64(l) / stages[j].Speed; t > worst {
			worst = t
		}
	}
	return worst
}
