package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformEvenSplit(t *testing.T) {
	r, err := Uniform(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Layers[0] != 15 || r.Layers[1] != 15 {
		t.Fatalf("Uniform(30,2) = %v", r.Layers)
	}
	if err := r.Validate(30); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRemainderGoesFirst(t *testing.T) {
	r, err := Uniform(36, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 7, 7, 7, 7}
	for j := range want {
		if r.Layers[j] != want[j] {
			t.Fatalf("Uniform(36,5) = %v, want %v", r.Layers, want)
		}
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(3, 4); err == nil {
		t.Fatal("3 layers / 4 stages must fail")
	}
	if _, err := Uniform(3, 0); err == nil {
		t.Fatal("0 stages must fail")
	}
}

// Eq. 4 of the paper: two stages, IB vs RoCE speeds from Table 1
// (197 vs 160 TFLOPS), 30 layers, α=1.05:
// N_ib = ⌊1.05·197/357·30⌋ = ⌊17.38⌋ = 17, N_roce = 13.
func TestSelfAdaptingMatchesEq4(t *testing.T) {
	r, err := SelfAdapting(30, []Stage{{Speed: 197}, {Speed: 160}}, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Layers[0] != 17 || r.Layers[1] != 13 {
		t.Fatalf("SelfAdapting = %v, want [17 13]", r.Layers)
	}
}

func TestSelfAdaptingFasterStageGetsMore(t *testing.T) {
	r, err := SelfAdapting(36, []Stage{{Speed: 229}, {Speed: 196}, {Speed: 196}}, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(36); err != nil {
		t.Fatal(err)
	}
	if r.Layers[0] <= r.Layers[1] {
		t.Fatalf("faster stage must get more layers: %v", r.Layers)
	}
}

func TestSelfAdaptingEqualSpeedsNearUniform(t *testing.T) {
	r, err := SelfAdapting(30, []Stage{{Speed: 100}, {Speed: 100}}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Layers[0] != 15 || r.Layers[1] != 15 {
		t.Fatalf("equal speeds should give uniform: %v", r.Layers)
	}
}

func TestSelfAdaptingMemoryCap(t *testing.T) {
	// The fast stage would take 17 layers but memory caps it at 14; the
	// spill must land on the other stage.
	r, err := SelfAdapting(30, []Stage{
		{Speed: 197, MaxLayers: 14},
		{Speed: 160},
	}, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Layers[0] != 14 || r.Layers[1] != 16 {
		t.Fatalf("memory-capped partition = %v, want [14 16]", r.Layers)
	}
}

func TestSelfAdaptingInfeasibleMemory(t *testing.T) {
	_, err := SelfAdapting(30, []Stage{
		{Speed: 1, MaxLayers: 5},
		{Speed: 1, MaxLayers: 5},
	}, 1.0)
	if err == nil {
		t.Fatal("30 layers cannot fit 10 slots")
	}
}

func TestSelfAdaptingPerStageAlpha(t *testing.T) {
	// Boosting stage 0's α shifts layers towards it.
	base, _ := SelfAdapting(30, []Stage{{Speed: 100}, {Speed: 100}}, 1.0)
	boosted, _ := SelfAdapting(30, []Stage{{Speed: 100, Alpha: 1.2}, {Speed: 100}}, 1.0)
	if boosted.Layers[0] <= base.Layers[0] {
		t.Fatalf("alpha boost had no effect: %v vs %v", boosted.Layers, base.Layers)
	}
}

func TestSelfAdaptingBadInputs(t *testing.T) {
	if _, err := SelfAdapting(30, nil, 1.0); err == nil {
		t.Fatal("no stages must fail")
	}
	if _, err := SelfAdapting(30, []Stage{{Speed: 1}, {Speed: -2}}, 1.0); err == nil {
		t.Fatal("negative speed must fail")
	}
	if _, err := SelfAdapting(30, []Stage{{Speed: 1}, {Speed: 1}}, 0); err == nil {
		t.Fatal("zero alpha must fail")
	}
	if _, err := SelfAdapting(1, []Stage{{Speed: 1}, {Speed: 1}}, 1.0); err == nil {
		t.Fatal("fewer layers than stages must fail")
	}
}

func TestSelfAdaptingBeatsUniformOnBottleneck(t *testing.T) {
	// The whole point of §3.3: on heterogeneous speeds the self-adapting
	// partition has a strictly better bottleneck than uniform.
	stages := []Stage{{Speed: 197}, {Speed: 122}}
	uni, _ := Uniform(30, 2)
	ada, err := SelfAdapting(30, stages, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if BottleneckTime(ada, stages) >= BottleneckTime(uni, stages) {
		t.Fatalf("self-adapting %v (%.4f) must beat uniform %v (%.4f)",
			ada.Layers, BottleneckTime(ada, stages), uni.Layers, BottleneckTime(uni, stages))
	}
}

func TestOptimalNeverWorseThanEither(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		p := rng.Intn(4) + 2
		layers := p + rng.Intn(40)
		stages := make([]Stage, p)
		for j := range stages {
			stages[j] = Stage{Speed: 50 + rng.Float64()*200}
		}
		opt, err := Optimal(layers, stages)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.Validate(layers); err != nil {
			t.Fatal(err)
		}
		optT := BottleneckTime(opt, stages)
		if uni, err := Uniform(layers, p); err == nil {
			if optT > BottleneckTime(uni, stages)+1e-12 {
				t.Fatalf("optimal %v worse than uniform %v", opt.Layers, uni.Layers)
			}
		}
		if ada, err := SelfAdapting(layers, stages, 1.05); err == nil {
			if optT > BottleneckTime(ada, stages)+1e-12 {
				t.Fatalf("optimal %v worse than self-adapting %v", opt.Layers, ada.Layers)
			}
		}
	}
}

func TestOptimalRespectsMemoryCaps(t *testing.T) {
	stages := []Stage{{Speed: 300, MaxLayers: 3}, {Speed: 100}}
	r, err := Optimal(10, stages)
	if err != nil {
		t.Fatal(err)
	}
	if r.Layers[0] > 3 {
		t.Fatalf("optimal ignored cap: %v", r.Layers)
	}
	if _, err := Optimal(10, []Stage{{Speed: 1, MaxLayers: 2}, {Speed: 1, MaxLayers: 2}}); err == nil {
		t.Fatal("infeasible caps must fail")
	}
}

func TestGreedyFallbackForLargeP(t *testing.T) {
	stages := make([]Stage, 12)
	for j := range stages {
		stages[j] = Stage{Speed: float64(100 + j*10)}
	}
	r, err := Optimal(48, stages)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(48); err != nil {
		t.Fatal(err)
	}
	// Faster stages should not hold fewer layers than much slower ones.
	if r.Layers[11] < r.Layers[0] {
		t.Fatalf("greedy balanced gave %v", r.Layers)
	}
}

// Property: self-adapting always produces a valid partition whenever it
// returns nil error, for arbitrary speeds and layer counts.
func TestSelfAdaptingAlwaysValidProperty(t *testing.T) {
	f := func(speedsRaw []uint8, layersRaw uint8) bool {
		p := len(speedsRaw)
		if p < 1 {
			return true
		}
		if p > 8 {
			p = 8
		}
		stages := make([]Stage, p)
		for j := 0; j < p; j++ {
			stages[j] = Stage{Speed: float64(speedsRaw[j]%200) + 1}
		}
		layers := int(layersRaw%60) + p
		r, err := SelfAdapting(layers, stages, 1.05)
		if err != nil {
			return true // rejections are fine; invalid successes are not
		}
		return r.Validate(layers) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Layers: []int{3, 4}, Strategy: "uniform"}
	if r.Stages() != 2 || r.Total() != 7 {
		t.Fatalf("accessors wrong: %d %d", r.Stages(), r.Total())
	}
	if r.String() != "uniform[3 4]" {
		t.Fatalf("String = %q", r.String())
	}
	if err := r.Validate(8); err == nil {
		t.Fatal("wrong total must fail validation")
	}
	if err := (Result{Layers: []int{0, 7}}).Validate(7); err == nil {
		t.Fatal("empty stage must fail validation")
	}
}
