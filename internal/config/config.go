// Package config defines the JSON experiment configuration consumed by
// cmd/holmes-sim, mapping directly onto the topology, model, and trainer
// options.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"holmes/internal/model"
	"holmes/internal/scenario"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

// ClusterConfig describes one cluster.
type ClusterConfig struct {
	Name  string `json:"name,omitempty"`
	NIC   string `json:"nic"` // "InfiniBand" | "RoCE" | "Ethernet"
	Nodes int    `json:"nodes"`
}

// ModelConfig describes the model; either a parameter Group (1–4) or an
// explicit architecture.
type ModelConfig struct {
	Group       int `json:"group,omitempty"`
	Layers      int `json:"layers,omitempty"`
	Hidden      int `json:"hidden,omitempty"`
	Heads       int `json:"heads,omitempty"`
	Vocab       int `json:"vocab,omitempty"`
	SeqLen      int `json:"seq_len,omitempty"`
	GlobalBatch int `json:"global_batch,omitempty"`
	MicroBatch  int `json:"micro_batch,omitempty"`
}

// Config is a full experiment description.
type Config struct {
	// Env / Nodes are a shorthand for one of the paper's four standard
	// environments ("InfiniBand", "RoCE", "Ethernet", "Hybrid"); mutually
	// exclusive with Clusters.
	Env          string          `json:"env,omitempty"`
	Nodes        int             `json:"nodes,omitempty"`
	Clusters     []ClusterConfig `json:"clusters,omitempty"`
	GPUsPerNode  int             `json:"gpus_per_node,omitempty"`
	Model        ModelConfig     `json:"model"`
	TensorSize   int             `json:"tensor_size,omitempty"`
	PipelineSize int             `json:"pipeline_size,omitempty"`
	Framework    string          `json:"framework,omitempty"` // default Holmes
	// Optional component toggles (default: framework profile).
	SelfAdapting *bool    `json:"self_adapting,omitempty"`
	Overlapped   *bool    `json:"overlapped,omitempty"`
	Alpha        *float64 `json:"alpha,omitempty"`
	// Scenario scripts cluster events (degraded NICs, failed nodes,
	// background traffic) onto the simulation's fabric; nil or empty runs
	// on a pristine fabric.
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
}

// Load parses a config from JSON.
func Load(r io.Reader) (*Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := c.Scenario.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadFile parses a config file.
func LoadFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func nicType(s string) (topology.NICType, error) {
	switch s {
	case "InfiniBand", "IB", "ib", "infiniband":
		return topology.InfiniBand, nil
	case "RoCE", "roce":
		return topology.RoCE, nil
	case "Ethernet", "ethernet", "eth":
		return topology.Ethernet, nil
	default:
		return 0, fmt.Errorf("config: unknown NIC %q", s)
	}
}

// Topology builds the configured topology.
func (c *Config) Topology() (*topology.Topology, error) {
	if c.Env != "" {
		if len(c.Clusters) > 0 {
			return nil, fmt.Errorf("config: env shorthand and clusters are mutually exclusive")
		}
		if c.GPUsPerNode != 0 && c.GPUsPerNode != topology.DefaultGPUsPerNode {
			// topology.Env builds the paper's standard nodes; silently
			// ignoring a custom GPU count would answer for different
			// hardware than the caller asked about.
			return nil, fmt.Errorf("config: env shorthand uses the standard %d-GPU nodes; use clusters to set gpus_per_node", topology.DefaultGPUsPerNode)
		}
		if c.Nodes <= 0 {
			return nil, fmt.Errorf("config: env %q needs nodes > 0", c.Env)
		}
		return topology.Env(topology.EnvName(c.Env), c.Nodes)
	}
	if len(c.Clusters) == 0 {
		return nil, fmt.Errorf("config: no clusters")
	}
	spec := topology.Spec{GPUsPerNode: c.GPUsPerNode}
	for _, cc := range c.Clusters {
		nic, err := nicType(cc.NIC)
		if err != nil {
			return nil, err
		}
		spec.Clusters = append(spec.Clusters, topology.ClusterSpec{
			Name: cc.Name, NIC: nic, Nodes: cc.Nodes,
		})
	}
	return topology.Build(spec)
}

// Spec resolves the model specification.
func (c *Config) Spec() (model.Spec, error) {
	if c.Model.Group != 0 {
		if c.Model.Group < 1 || c.Model.Group > 4 {
			return model.Spec{}, fmt.Errorf("config: parameter group %d out of range", c.Model.Group)
		}
		return model.Group(c.Model.Group).Spec, nil
	}
	s := model.Spec{
		Name:   "custom",
		Layers: c.Model.Layers, Hidden: c.Model.Hidden, Heads: c.Model.Heads,
		Vocab: c.Model.Vocab, SeqLen: c.Model.SeqLen,
		GlobalBatch: c.Model.GlobalBatch, MicroBatch: c.Model.MicroBatch,
	}
	if s.Vocab == 0 {
		s.Vocab = model.StdVocab
	}
	if s.SeqLen == 0 {
		s.SeqLen = model.StdSeqLen
	}
	if s.MicroBatch == 0 {
		s.MicroBatch = 4
	}
	return s, s.Validate()
}

// Components resolves the planner-facing pieces of the configuration:
// the topology, the model spec, the framework, and the option overrides
// (nil = framework profile defaults).
func (c *Config) Components() (*topology.Topology, model.Spec, trainer.Framework, *trainer.Options, error) {
	topo, err := c.Topology()
	if err != nil {
		return nil, model.Spec{}, "", nil, err
	}
	spec, err := c.Spec()
	if err != nil {
		return nil, model.Spec{}, "", nil, err
	}
	fw := trainer.Framework(c.Framework)
	if c.Framework == "" {
		fw = trainer.Holmes
	}
	var opt *trainer.Options
	if c.SelfAdapting != nil || c.Overlapped != nil || c.Alpha != nil {
		o := trainer.DefaultOptions(fw)
		if c.SelfAdapting != nil {
			o.SelfAdaptingPartition = *c.SelfAdapting
		}
		if c.Overlapped != nil {
			o.OverlappedOptimizer = *c.Overlapped
		}
		if c.Alpha != nil {
			o.Alpha = *c.Alpha
		}
		opt = &o
	}
	return topo, spec, fw, opt, nil
}

// TrainerConfig resolves the full trainer configuration.
func (c *Config) TrainerConfig() (trainer.Config, error) {
	topo, spec, fw, opt, err := c.Components()
	if err != nil {
		return trainer.Config{}, err
	}
	return trainer.Config{
		Topo: topo, Spec: spec,
		TensorSize: c.TensorSize, PipelineSize: c.PipelineSize,
		Framework: fw, Opt: opt,
		Scenario: c.Scenario,
	}, nil
}
