// Package config defines the JSON experiment configuration consumed by
// cmd/holmes-sim, mapping directly onto the topology, model, and trainer
// options.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"holmes/internal/model"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

// ClusterConfig describes one cluster.
type ClusterConfig struct {
	Name  string `json:"name,omitempty"`
	NIC   string `json:"nic"` // "InfiniBand" | "RoCE" | "Ethernet"
	Nodes int    `json:"nodes"`
}

// ModelConfig describes the model; either a parameter Group (1–4) or an
// explicit architecture.
type ModelConfig struct {
	Group       int `json:"group,omitempty"`
	Layers      int `json:"layers,omitempty"`
	Hidden      int `json:"hidden,omitempty"`
	Heads       int `json:"heads,omitempty"`
	Vocab       int `json:"vocab,omitempty"`
	SeqLen      int `json:"seq_len,omitempty"`
	GlobalBatch int `json:"global_batch,omitempty"`
	MicroBatch  int `json:"micro_batch,omitempty"`
}

// Config is a full experiment description.
type Config struct {
	Clusters     []ClusterConfig `json:"clusters"`
	GPUsPerNode  int             `json:"gpus_per_node,omitempty"`
	Model        ModelConfig     `json:"model"`
	TensorSize   int             `json:"tensor_size"`
	PipelineSize int             `json:"pipeline_size"`
	Framework    string          `json:"framework,omitempty"` // default Holmes
	// Optional component toggles (default: framework profile).
	SelfAdapting *bool    `json:"self_adapting,omitempty"`
	Overlapped   *bool    `json:"overlapped,omitempty"`
	Alpha        *float64 `json:"alpha,omitempty"`
}

// Load parses a config from JSON.
func Load(r io.Reader) (*Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &c, nil
}

// LoadFile parses a config file.
func LoadFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func nicType(s string) (topology.NICType, error) {
	switch s {
	case "InfiniBand", "IB", "ib", "infiniband":
		return topology.InfiniBand, nil
	case "RoCE", "roce":
		return topology.RoCE, nil
	case "Ethernet", "ethernet", "eth":
		return topology.Ethernet, nil
	default:
		return 0, fmt.Errorf("config: unknown NIC %q", s)
	}
}

// Topology builds the configured topology.
func (c *Config) Topology() (*topology.Topology, error) {
	if len(c.Clusters) == 0 {
		return nil, fmt.Errorf("config: no clusters")
	}
	spec := topology.Spec{GPUsPerNode: c.GPUsPerNode}
	for _, cc := range c.Clusters {
		nic, err := nicType(cc.NIC)
		if err != nil {
			return nil, err
		}
		spec.Clusters = append(spec.Clusters, topology.ClusterSpec{
			Name: cc.Name, NIC: nic, Nodes: cc.Nodes,
		})
	}
	return topology.Build(spec)
}

// Spec resolves the model specification.
func (c *Config) Spec() (model.Spec, error) {
	if c.Model.Group != 0 {
		if c.Model.Group < 1 || c.Model.Group > 4 {
			return model.Spec{}, fmt.Errorf("config: parameter group %d out of range", c.Model.Group)
		}
		return model.Group(c.Model.Group).Spec, nil
	}
	s := model.Spec{
		Name:   "custom",
		Layers: c.Model.Layers, Hidden: c.Model.Hidden, Heads: c.Model.Heads,
		Vocab: c.Model.Vocab, SeqLen: c.Model.SeqLen,
		GlobalBatch: c.Model.GlobalBatch, MicroBatch: c.Model.MicroBatch,
	}
	if s.Vocab == 0 {
		s.Vocab = model.StdVocab
	}
	if s.SeqLen == 0 {
		s.SeqLen = model.StdSeqLen
	}
	if s.MicroBatch == 0 {
		s.MicroBatch = 4
	}
	return s, s.Validate()
}

// TrainerConfig resolves the full trainer configuration.
func (c *Config) TrainerConfig() (trainer.Config, error) {
	topo, err := c.Topology()
	if err != nil {
		return trainer.Config{}, err
	}
	spec, err := c.Spec()
	if err != nil {
		return trainer.Config{}, err
	}
	fw := trainer.Framework(c.Framework)
	if c.Framework == "" {
		fw = trainer.Holmes
	}
	cfg := trainer.Config{
		Topo: topo, Spec: spec,
		TensorSize: c.TensorSize, PipelineSize: c.PipelineSize,
		Framework: fw,
	}
	if c.SelfAdapting != nil || c.Overlapped != nil || c.Alpha != nil {
		opt := trainer.DefaultOptions(fw)
		if c.SelfAdapting != nil {
			opt.SelfAdaptingPartition = *c.SelfAdapting
		}
		if c.Overlapped != nil {
			opt.OverlappedOptimizer = *c.Overlapped
		}
		if c.Alpha != nil {
			opt.Alpha = *c.Alpha
		}
		cfg.Opt = &opt
	}
	return cfg, nil
}
