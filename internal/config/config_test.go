package config

import (
	"strings"
	"testing"

	"holmes/internal/trainer"
)

const hybridJSON = `{
  "clusters": [
    {"nic": "InfiniBand", "nodes": 4},
    {"nic": "RoCE", "nodes": 4}
  ],
  "model": {"group": 3},
  "tensor_size": 1,
  "pipeline_size": 4
}`

func TestLoadHybrid(t *testing.T) {
	c, err := Load(strings.NewReader(hybridJSON))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumClusters() != 2 || topo.NumDevices() != 64 {
		t.Fatalf("topology wrong: %s", topo)
	}
	spec, err := c.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Hidden != 4096 {
		t.Fatalf("group 3 hidden = %d", spec.Hidden)
	}
	tc, err := c.TrainerConfig()
	if err != nil {
		t.Fatal(err)
	}
	if tc.Framework != trainer.Holmes || tc.Opt != nil {
		t.Fatal("defaults wrong")
	}
	// The config must actually simulate.
	rep, err := trainer.Simulate(tc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TFLOPS <= 0 {
		t.Fatal("simulation produced no throughput")
	}
}

func TestCustomModelAndOverrides(t *testing.T) {
	j := `{
      "clusters": [{"nic": "eth", "nodes": 2}],
      "model": {"layers": 12, "hidden": 1024, "heads": 16, "global_batch": 64},
      "tensor_size": 1,
      "pipeline_size": 2,
      "framework": "Megatron-LM",
      "self_adapting": true,
      "alpha": 1.1
    }`
	c, err := Load(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	tc, err := c.TrainerConfig()
	if err != nil {
		t.Fatal(err)
	}
	if tc.Framework != trainer.MegatronLM {
		t.Fatalf("framework = %v", tc.Framework)
	}
	if tc.Opt == nil || !tc.Opt.SelfAdaptingPartition || tc.Opt.Alpha != 1.1 {
		t.Fatalf("overrides not applied: %+v", tc.Opt)
	}
	if tc.Spec.Vocab == 0 || tc.Spec.SeqLen == 0 || tc.Spec.MicroBatch == 0 {
		t.Fatal("defaults not filled")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`{"unknown_field": 1}`,
		`{`,
	}
	for _, j := range cases {
		if _, err := Load(strings.NewReader(j)); err == nil {
			t.Errorf("Load(%q) accepted", j)
		}
	}
	c, _ := Load(strings.NewReader(`{"clusters":[{"nic":"bogus","nodes":1}], "model":{"group":1}, "tensor_size":1, "pipeline_size":1}`))
	if _, err := c.Topology(); err == nil {
		t.Fatal("bogus NIC accepted")
	}
	c2, _ := Load(strings.NewReader(`{"clusters":[], "model":{"group":1}, "tensor_size":1, "pipeline_size":1}`))
	if _, err := c2.Topology(); err == nil {
		t.Fatal("empty clusters accepted")
	}
	c3, _ := Load(strings.NewReader(`{"clusters":[{"nic":"eth","nodes":1}], "model":{"group":9}, "tensor_size":1, "pipeline_size":1}`))
	if _, err := c3.Spec(); err == nil {
		t.Fatal("group 9 accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/config.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
