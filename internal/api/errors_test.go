package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// bigScenario renders a scenario body with n events (for the over-limit
// case).
func bigScenario(n int) string {
	events := make([]string, n)
	for i := range events {
		events[i] = fmt.Sprintf(`{"kind":"degrade_nic","at":%d,"node":0,"factor":0.9}`, i+1)
	}
	return fmt.Sprintf(`{"env":"InfiniBand","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,"scenario":{"name":"big","events":[%s]}}`, strings.Join(events, ","))
}

// bigBatch renders a batch with n copies of a distinct trivial item.
func bigBatch(n int) string {
	items := make([]string, n)
	for i := range items {
		// Vary tensor_size/pipeline_size so items are distinct (duplicates
		// are their own error case).
		items[i] = fmt.Sprintf(`{"op":"plan","config":{"env":"InfiniBand","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":%d}}`, i+1)
	}
	return `{"items":[` + strings.Join(items, ",") + `]}`
}

// TestErrorPaths is the table-driven error contract of the API: every
// failure answers the documented status with Content-Type
// application/json and a stable error substring — clients key retries
// and dashboards off these, so a drive-by rewording is a break.
func TestErrorPaths(t *testing.T) {
	srv := newTestServer(t)
	for _, tc := range []struct {
		name       string
		method     string
		path, body string
		wantStatus int
		wantSubstr string
	}{
		{"malformed JSON", "POST", "/v1/plan", `{"env":`, 400, "config:"},
		{"unknown field", "POST", "/v1/plan", `{"nope":1}`, 400, "config:"},
		{"missing degrees", "POST", "/v1/plan", `{"env":"Hybrid","nodes":8,"model":{"group":3}}`, 400, "plan needs tensor_size >= 1 and pipeline_size >= 1"},
		{"plan with scenario", "POST", "/v1/plan", `{"env":"InfiniBand","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,"scenario":{"name":"s","events":[{"kind":"fail_node","at":0,"node":0}]}}`, 400, "use /v1/simulate"},
		{"search with degrees", "POST", "/v1/search", planBody, 400, "search picks tensor_size and pipeline_size itself"},
		{"infeasible degrees", "POST", "/v1/plan", `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":3,"pipeline_size":2}`, 422, ""},
		{"oversized topology", "POST", "/v1/plan", `{"env":"InfiniBand","nodes":2000000000,"model":{"group":1},"tensor_size":1,"pipeline_size":1}`, 400, "exceeds the per-request limit of 512"},
		{"unknown experiment id", "POST", "/v1/experiments/bogus", "", 404, `unknown experiment "bogus"`},
		{"oversized scenario", "POST", "/v1/simulate", bigScenario(257), 400, "257 scenario events exceeds the per-request limit of 256"},
		{"empty batch", "POST", "/v1/plan/batch", `{"items":[]}`, 400, "empty batch"},
		{"missing batch items", "POST", "/v1/plan/batch", `{}`, 400, "empty batch"},
		{"over-limit batch", "POST", "/v1/plan/batch", bigBatch(257), 400, "257 items exceeds the per-request limit of 256"},
		{"batch malformed envelope", "POST", "/v1/plan/batch", `{"items":`, 400, "batch:"},
		{"batch unknown op", "POST", "/v1/plan/batch", `{"items":[{"op":"dance","config":{"env":"InfiniBand","nodes":4,"model":{"group":1}}}]}`, 400, `unknown op "dance"`},
		{"batch item without config", "POST", "/v1/plan/batch", `{"items":[{"op":"plan"}]}`, 400, "item 0 has no config"},
		{"batch item bad config", "POST", "/v1/plan/batch", `{"items":[{"op":"plan","config":{"nope":1}}]}`, 400, "item 0: config:"},
		{"method not allowed", "GET", "/v1/plan", "", 405, "method GET not allowed"},
		{"unknown route", "GET", "/v1/nope", "", 404, "no such endpoint"},
		{"stats wrong method", "POST", "/v1/stats", "", 405, "method POST not allowed"},
		{"jobs malformed body", "POST", "/v1/jobs", `{"fleet":`, 400, "jobs:"},
		{"jobs unknown field", "POST", "/v1/jobs", `{"nope":1}`, 400, "jobs:"},
		{"jobs no fleet", "POST", "/v1/jobs", `{"job":{"id":"a","gpus":8,"model":{"group":1}}}`, 400, "config: no clusters"},
		{"jobs ragged demand", "POST", "/v1/jobs", `{"fleet":{"env":"Hybrid","nodes":4},"job":{"id":"a","gpus":12,"model":{"group":1}}}`, 400, "multiple of the fleet's 8 GPUs per node"},
		{"jobs oversized fleet", "POST", "/v1/jobs", `{"fleet":{"env":"InfiniBand","nodes":600},"job":{"id":"a","gpus":8,"model":{"group":1}}}`, 400, "exceeds the per-fleet limit of 512"},
		{"jobs unknown poll", "GET", "/v1/jobs/ghost", "", 404, `no such job "ghost"`},
		{"jobs unknown cancel", "DELETE", "/v1/jobs/ghost", "", 404, `no such job "ghost"`},
		{"jobs wrong method", "PUT", "/v1/jobs", "", 405, "method PUT not allowed"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			switch tc.method {
			case "GET":
				resp, err = http.Get(srv.URL + tc.path)
			case "POST":
				resp, err = http.Post(srv.URL+tc.path, "application/json", strings.NewReader(tc.body))
			default:
				req, rerr := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
				if rerr != nil {
					t.Fatal(rerr)
				}
				resp, err = http.DefaultClient.Do(req)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.wantStatus, body)
			}
			// The fix this suite pins: EVERY error path answers JSON.
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("content-type %q, want application/json", ct)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("body is not an error envelope (%v): %s", err, body)
			}
			if tc.wantSubstr != "" && !strings.Contains(eb.Error, tc.wantSubstr) {
				t.Errorf("error %q missing %q", eb.Error, tc.wantSubstr)
			}
		})
	}
}

// TestMethodNotAllowedAllowHeader pins the Allow header on 405s.
func TestMethodNotAllowedAllowHeader(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Fatalf("status %d, Allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// TestHeadRidesWithGet: uptime probes health-check with HEAD; the GET
// endpoints must answer it 200 like the stock mux method patterns did.
func TestHeadRidesWithGet(t *testing.T) {
	srv := newTestServer(t)
	for _, path := range []string{"/healthz", "/v1/stats"} {
		resp, err := http.Head(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("HEAD %s: status %d, want 200", path, resp.StatusCode)
		}
	}
	// HEAD does not ride along with POST endpoints.
	req, _ := http.NewRequest(http.MethodHead, srv.URL+"/v1/plan", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("HEAD /v1/plan: status %d, want 405", resp.StatusCode)
	}
}

// TestOversizedBody413 pins the status class of a body that blows the
// MaxBytesReader limit: 413, not 400 — the client must learn to shrink
// the request, not to fix its syntax.
func TestOversizedBody413(t *testing.T) {
	srv := newTestServer(t)
	huge := `{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4,"framework":"` +
		strings.Repeat("x", 1<<20) + `"}`
	code, body := post(t, srv, "/v1/plan", huge)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized single body: status %d, want 413 (%.120s)", code, body)
	}
	hugeBatch := `{"items":[{"op":"plan","config":{"framework":"` + strings.Repeat("x", maxBatchBodyBytes) + `"}}]}`
	code, body = post(t, srv, "/v1/plan/batch", hugeBatch)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch body: status %d, want 413 (%.120s)", code, body)
	}
}
