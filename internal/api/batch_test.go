package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"holmes/internal/serve"
)

// rawBatchResponse mirrors BatchResponse with raw result payloads so
// tests can compare byte-level encodings against single-request answers.
type rawBatchResponse struct {
	Count   int `json:"count"`
	Errors  int `json:"errors"`
	Results []struct {
		Index    int             `json:"index"`
		Plan     json.RawMessage `json:"plan,omitempty"`
		Search   json.RawMessage `json:"search,omitempty"`
		Simulate json.RawMessage `json:"simulate,omitempty"`
		Error    string          `json:"error,omitempty"`
		Status   int             `json:"status,omitempty"`
	} `json:"results"`
}

const (
	batchPlanCfg     = `{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4}`
	batchSearchCfg   = `{"env":"Hybrid","nodes":4,"model":{"group":1}}`
	batchSimulateCfg = `{"env":"InfiniBand","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,"scenario":{"name":"b","events":[{"kind":"degrade_nic","at":0,"node":0,"factor":0.5}]}}`
	// Feasible config, infeasible degrees: a per-item 422.
	batchInfeasibleCfg = `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":3,"pipeline_size":2}`
)

func TestBatchHeterogeneousInputOrdered(t *testing.T) {
	srv := newTestServer(t)
	body := fmt.Sprintf(`{"items":[
		{"op":"plan","config":%s},
		{"op":"search","config":%s},
		{"op":"simulate","config":%s},
		{"op":"plan","config":%s}
	]}`, batchPlanCfg, batchSearchCfg, batchSimulateCfg, batchInfeasibleCfg)
	code, raw := post(t, srv, "/v1/plan/batch", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	var br rawBatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 4 || len(br.Results) != 4 {
		t.Fatalf("count %d, %d results", br.Count, len(br.Results))
	}
	if br.Errors != 1 {
		t.Fatalf("errors %d, want 1 (the infeasible plan)", br.Errors)
	}
	for i, res := range br.Results {
		if res.Index != i {
			t.Fatalf("result %d carries index %d: not input-ordered", i, res.Index)
		}
	}
	if br.Results[0].Plan == nil || br.Results[1].Search == nil || br.Results[2].Simulate == nil {
		t.Fatalf("payloads in wrong slots: %s", raw)
	}
	if br.Results[3].Error == "" || br.Results[3].Status != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible item: error=%q status=%d, want 422", br.Results[3].Error, br.Results[3].Status)
	}
	// A failed slot must not also carry a payload.
	if br.Results[3].Plan != nil {
		t.Fatal("failed item carries a plan payload")
	}
	var sim SimulateResponse
	if err := json.Unmarshal(br.Results[2].Simulate, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.Scenario != "b" || sim.ScenarioEvents != 1 {
		t.Fatalf("batch simulate lost its scenario: %+v", sim)
	}
}

// canon compacts a JSON fragment so indented and nested encodings of the
// same marshal output compare byte-for-byte.
func canon(t *testing.T, raw []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestBatchBitIdenticalToSingle is the batch half of the correctness
// claim: every batch slot must be byte-identical (modulo envelope
// indentation) to the answer of the corresponding single-request
// endpoint.
func TestBatchBitIdenticalToSingle(t *testing.T) {
	srv := newTestServer(t)
	items := []struct{ op, cfg, single string }{
		{"plan", batchPlanCfg, "/v1/plan"},
		{"plan", `{"env":"RoCE","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2}`, "/v1/plan"},
		{"search", batchSearchCfg, "/v1/search"},
		{"simulate", batchSimulateCfg, "/v1/simulate"},
	}
	var specs []string
	for _, it := range items {
		specs = append(specs, fmt.Sprintf(`{"op":%q,"config":%s}`, it.op, it.cfg))
	}
	code, raw := post(t, srv, "/v1/plan/batch", `{"items":[`+strings.Join(specs, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, raw)
	}
	var br rawBatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		scode, sraw := post(t, srv, it.single, it.cfg)
		if scode != http.StatusOK {
			t.Fatalf("single %s status %d: %s", it.single, scode, sraw)
		}
		var slot json.RawMessage
		switch it.op {
		case "plan":
			slot = br.Results[i].Plan
		case "search":
			slot = br.Results[i].Search
		case "simulate":
			slot = br.Results[i].Simulate
		}
		if got, want := canon(t, slot), canon(t, sraw); got != want {
			t.Errorf("item %d (%s) differs from single request:\nbatch:  %s\nsingle: %s", i, it.op, got, want)
		}
	}
}

func TestBatchDuplicateItemsRejected(t *testing.T) {
	srv := newTestServer(t)
	body := fmt.Sprintf(`{"items":[{"op":"plan","config":%s},{"op":"search","config":%s},{"op":"plan","config":%s}]}`,
		batchPlanCfg, batchSearchCfg, batchPlanCfg)
	code, raw := post(t, srv, "/v1/plan/batch", body)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", code, raw)
	}
	if !strings.Contains(string(raw), "items 0 and 2 are identical") {
		t.Fatalf("unexpected error: %s", raw)
	}
	// Same config under different ops is NOT a duplicate.
	body = fmt.Sprintf(`{"items":[{"op":"plan","config":%s},{"op":"simulate","config":%s}]}`, batchPlanCfg, batchPlanCfg)
	if code, raw = post(t, srv, "/v1/plan/batch", body); code != http.StatusOK {
		t.Fatalf("distinct-op duplicate rejected: %d %s", code, raw)
	}
}

func TestBackpressure429(t *testing.T) {
	pool := serve.New(serve.Config{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 3 * time.Second})
	srv := newPoolServer(t, pool)
	// Occupy the only admission slot; every planning request must now be
	// shed, deterministically.
	release, ok := pool.Admit(context.Background())
	if !ok {
		t.Fatal("could not occupy the admission slot")
	}
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("429 content-type %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "saturated") {
		t.Fatalf("429 body: %s", b)
	}
	// Observability must keep answering while the pool is saturated.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", hr.StatusCode)
	}
	release()
	code, _ := post(t, srv, "/v1/plan", planBody)
	if code != http.StatusOK {
		t.Fatalf("after release: %d", code)
	}
	// The shed request is visible in the stats.
	var st StatsResponse
	getJSON(t, srv, "/v1/stats", &st)
	if st.Serve.Endpoints[epPlan].Rejected != 1 {
		t.Fatalf("rejected count: %+v", st.Serve.Endpoints[epPlan])
	}
}

func newPoolServer(t *testing.T, pool *serve.Pool) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServerPool(pool).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestStatsEndpoint(t *testing.T) {
	pool := serve.New(serve.Config{Shards: 2})
	srv := newPoolServer(t, pool)
	for i := 0; i < 2; i++ {
		if code, raw := post(t, srv, "/v1/plan", planBody); code != http.StatusOK {
			t.Fatalf("plan %d: %d %s", i, code, raw)
		}
	}
	post(t, srv, "/v1/plan", `{"nope":`) // one malformed request
	var st StatsResponse
	getJSON(t, srv, "/v1/stats", &st)
	if st.Shards != 2 || st.Version != Version {
		t.Fatalf("stats header: %+v", st)
	}
	ep := st.Serve.Endpoints[epPlan]
	if ep.Requests != 3 || ep.Errors != 1 || ep.InFlight != 0 {
		t.Fatalf("plan endpoint counters: %+v", ep)
	}
	if ep.Latency.Count != 3 || ep.Latency.P50Ms <= 0 || ep.Latency.P99Ms < ep.Latency.P50Ms {
		t.Fatalf("plan latency: %+v", ep.Latency)
	}
	if ep.ThroughputRPS <= 0 {
		t.Fatalf("throughput: %+v", ep)
	}
	// The identical plan was served twice sequentially: the second
	// replayed from the response cache without touching an engine.
	if ep.Cached != 1 {
		t.Fatalf("cached count: %+v", ep)
	}
	if st.Responses.Hits != 1 || st.Responses.Size == 0 {
		t.Fatalf("response cache stats: %+v", st.Responses)
	}
	// The same counters ride on /healthz.
	var h HealthResponse
	getJSON(t, srv, "/healthz", &h)
	if h.Shards != 2 || h.Serve.Endpoints[epPlan].Requests != 3 {
		t.Fatalf("healthz serve block: %+v", h.Serve.Endpoints[epPlan])
	}
	// The one real computation populated exactly one shard's world cache.
	if h.Cache.Misses == 0 || h.Responses.Hits != 1 {
		t.Fatalf("cache stats: %+v / %+v", h.Cache, h.Responses)
	}
}

// TestBatchCoalescesWithItself: one batch carrying N distinct items plus
// concurrent identical singles is exercised by the soak test; here we
// pin the deterministic part — a second identical batch answers
// bit-identically.
func TestBatchDeterministic(t *testing.T) {
	srv := newTestServer(t)
	body := fmt.Sprintf(`{"items":[{"op":"plan","config":%s},{"op":"search","config":%s}]}`, batchPlanCfg, batchSearchCfg)
	code1, raw1 := post(t, srv, "/v1/plan/batch", body)
	code2, raw2 := post(t, srv, "/v1/plan/batch", body)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status %d / %d", code1, code2)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("batch not deterministic:\n%s\nvs\n%s", raw1, raw2)
	}
}
