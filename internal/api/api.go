// Package api is the JSON/HTTP surface of the Holmes scheduler
// (cmd/holmes-serve): a thin, stateless handler layer over one shared
// engine.Engine. Every request plans on the shared engine concurrently —
// the engine's communicator cache and worker pool are internally
// synchronized and its knobs are immutable, so requests never interfere
// (the property the engine refactor bought; see DESIGN.md).
//
// Routes:
//
//	GET  /healthz              liveness + engine cache statistics
//	POST /v1/plan              plan fixed (t, p) degrees
//	POST /v1/search            joint (t, p) search for the best plan
//	POST /v1/simulate          one iteration, optionally under a scenario
//	POST /v1/experiments/{id}  regenerate a paper table/figure
//
// Request bodies reuse the config.Config schema of cmd/holmes-sim
// (clusters or the env/nodes shorthand, model group or explicit
// architecture, framework, component toggles).
package api

import (
	"encoding/json"
	"fmt"
	"net/http"

	"holmes/internal/config"
	"holmes/internal/core"
	"holmes/internal/engine"
	"holmes/internal/experiments"
	"holmes/internal/trainer"
)

// Version identifies the API release (mirrors the facade version).
const Version = "1.2.0"

// Server serves the Holmes planning API on one shared engine.
type Server struct {
	eng *engine.Engine
}

// NewServer returns a server on the given engine (nil = the shared
// default engine).
func NewServer(eng *engine.Engine) *Server {
	if eng == nil {
		eng = engine.Default()
	}
	return &Server{eng: eng}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperiment)
	return mux
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are out; nothing useful to do on failure
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// HealthResponse reports liveness and engine observability.
type HealthResponse struct {
	Status      string            `json:"status"`
	Version     string            `json:"version"`
	Concurrency int               `json:"concurrency"`
	Cache       engine.CacheStats `json:"cache"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Version:     Version,
		Concurrency: s.eng.Concurrency(),
		Cache:       s.eng.CacheStats(),
	})
}

// DegreesJSON is the (t, p, d) triple of a plan.
type DegreesJSON struct {
	Tensor   int `json:"tensor"`
	Pipeline int `json:"pipeline"`
	Data     int `json:"data"`
}

// ReportJSON carries the simulated performance of a plan.
type ReportJSON struct {
	TFLOPS          float64 `json:"tflops_per_gpu"`
	Throughput      float64 `json:"samples_per_sec"`
	IterSeconds     float64 `json:"iteration_seconds"`
	ReduceScatterMs float64 `json:"reduce_scatter_ms"`
	MicroBatches    int     `json:"micro_batches"`
}

// PlanResponse is the outcome of /v1/plan and the winner part of
// /v1/search.
type PlanResponse struct {
	Degrees   DegreesJSON `json:"degrees"`
	Partition string      `json:"partition"`
	Report    ReportJSON  `json:"report"`
	// DPGroupsByNIC counts data-parallel groups per selected NIC.
	DPGroupsByNIC map[string]int `json:"dp_groups_by_nic"`
	// CommBytes is the per-kind estimated communication volume (bytes).
	CommBytes map[string]float64 `json:"comm_bytes"`
}

func planResponse(pl *core.Planner, plan *core.Plan) (PlanResponse, error) {
	costs, err := pl.CommunicationCost(plan)
	if err != nil {
		return PlanResponse{}, err
	}
	commBytes := make(map[string]float64, len(costs))
	for kind, b := range costs {
		commBytes[kind.String()] = b
	}
	nics := make(map[string]int)
	for _, g := range plan.World.DPGroups {
		nics[g.NIC.String()]++
	}
	return PlanResponse{
		Degrees:   DegreesJSON{Tensor: plan.Degrees.T, Pipeline: plan.Degrees.P, Data: plan.Degrees.D},
		Partition: plan.Partition.String(),
		Report: ReportJSON{
			TFLOPS:          plan.Report.TFLOPS,
			Throughput:      plan.Report.Throughput,
			IterSeconds:     plan.Report.IterSeconds,
			ReduceScatterMs: plan.Report.ReduceScatterSeconds * 1000,
			MicroBatches:    plan.Report.Micro,
		},
		DPGroupsByNIC: nics,
		CommBytes:     commBytes,
	}, nil
}

// maxBodyBytes bounds a request body; configs are a few hundred bytes.
const maxBodyBytes = 1 << 20

// maxNodes bounds the topology one request may ask the shared daemon to
// materialize: the simulator handles hundreds of nodes comfortably, but
// an unbounded count would let a single request allocate the whole
// process away from every other tenant.
const maxNodes = 512

// maxScenarioEvents bounds one request's event timeline; real fault
// scripts are a handful of events.
const maxScenarioEvents = 256

// decode parses a config.Config request body strictly and applies the
// server-side resource bounds.
func decode(w http.ResponseWriter, r *http.Request) (*config.Config, error) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	defer body.Close()
	c, err := config.Load(body)
	if err != nil {
		return nil, err
	}
	nodes := c.Nodes
	for _, cl := range c.Clusters {
		nodes += cl.Nodes
	}
	if nodes > maxNodes {
		return nil, fmt.Errorf("api: %d nodes exceeds the per-request limit of %d", nodes, maxNodes)
	}
	if c.Scenario != nil && len(c.Scenario.Events) > maxScenarioEvents {
		return nil, fmt.Errorf("api: %d scenario events exceeds the per-request limit of %d", len(c.Scenario.Events), maxScenarioEvents)
	}
	return c, nil
}

// planner builds a request-scoped planner on the server's shared engine.
func (s *Server) planner(c *config.Config) (*core.Planner, error) {
	topo, spec, fw, opt, err := c.Components()
	if err != nil {
		return nil, err
	}
	pl, err := core.NewPlannerOn(s.eng, topo, spec)
	if err != nil {
		return nil, err
	}
	pl.Framework = fw
	pl.Opt = opt
	return pl, nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	c, err := decode(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if c.TensorSize < 1 || c.PipelineSize < 1 {
		writeError(w, http.StatusBadRequest, "plan needs tensor_size >= 1 and pipeline_size >= 1 (use /v1/search to search degrees)")
		return
	}
	if !c.Scenario.Empty() {
		writeError(w, http.StatusBadRequest, "plan evaluates a pristine fabric; use /v1/simulate to run under a scenario")
		return
	}
	pl, err := s.planner(c)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	plan, err := pl.Plan(c.TensorSize, c.PipelineSize)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp, err := planResponse(pl, plan)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// SimulateResponse is the outcome of /v1/simulate.
type SimulateResponse struct {
	Degrees   DegreesJSON `json:"degrees"`
	Partition string      `json:"partition"`
	Report    ReportJSON  `json:"report"`
	// Scenario labels the event timeline the iteration ran under ("" =
	// pristine); ScenarioEvents counts the events that fired before the
	// iteration completed.
	Scenario       string `json:"scenario,omitempty"`
	ScenarioEvents int    `json:"scenario_events,omitempty"`
}

// handleSimulate runs one training iteration — optionally under a
// scripted scenario — and reports the paper's metrics. Unlike /v1/plan it
// never builds a Planner: the degrees are the caller's to fix, and the
// fabric carries whatever the scenario scripts onto it.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	c, err := decode(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if c.TensorSize < 1 || c.PipelineSize < 1 {
		writeError(w, http.StatusBadRequest, "simulate needs tensor_size >= 1 and pipeline_size >= 1")
		return
	}
	tc, err := c.TrainerConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tc.Engine = s.eng
	rep, err := trainer.Simulate(tc)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		Degrees:   DegreesJSON{Tensor: rep.Degrees.T, Pipeline: rep.Degrees.P, Data: rep.Degrees.D},
		Partition: rep.Partition.String(),
		Report: ReportJSON{
			TFLOPS:          rep.TFLOPS,
			Throughput:      rep.Throughput,
			IterSeconds:     rep.IterSeconds,
			ReduceScatterMs: rep.ReduceScatterSeconds * 1000,
			MicroBatches:    rep.Micro,
		},
		Scenario:       rep.Scenario,
		ScenarioEvents: rep.ScenarioEvents,
	})
}

// SearchResponse is the outcome of /v1/search.
type SearchResponse struct {
	Winner PlanResponse `json:"winner"`
	// CellsExplored counts the feasible (t, p) candidates simulated.
	CellsExplored int           `json:"cells_explored"`
	Cells         []DegreesJSON `json:"cells"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	c, err := decode(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if c.TensorSize != 0 || c.PipelineSize != 0 {
		writeError(w, http.StatusBadRequest, "search picks tensor_size and pipeline_size itself; omit them (use /v1/plan for fixed degrees)")
		return
	}
	if !c.Scenario.Empty() {
		writeError(w, http.StatusBadRequest, "search evaluates a pristine fabric; use /v1/simulate to run under a scenario")
		return
	}
	pl, err := s.planner(c)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	space := pl.SearchSpace()
	best, err := pl.SearchPlan()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	winner, err := planResponse(pl, best)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := SearchResponse{Winner: winner, CellsExplored: len(space)}
	for _, d := range space {
		resp.Cells = append(resp.Cells, DegreesJSON{Tensor: d.T, Pipeline: d.P, Data: d.D})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExperimentResponse is the outcome of /v1/experiments/{id}.
type ExperimentResponse struct {
	Experiment string            `json:"experiment"`
	Rows       []experiments.Row `json:"rows"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rows, err := experiments.NewSuite(s.eng).Run(id)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if !validExperiment(id) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ExperimentResponse{Experiment: id, Rows: rows})
}

func validExperiment(id string) bool {
	for _, name := range experiments.Names {
		if id == name {
			return true
		}
	}
	return false
}
