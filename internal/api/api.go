// Package api is the JSON/HTTP surface of the Holmes scheduler
// (cmd/holmes-serve): a handler layer over a serve.Pool of engine
// shards. Every request is admitted through the pool's gate (saturation
// answers 429 with Retry-After), routed to the shard owning its topology
// fingerprint, and — for deterministic plan/search work — coalesced with
// identical in-flight requests so duplicate traffic costs one
// computation (see DESIGN.md decision 8).
//
// Routes:
//
//	GET  /                     embedded live dashboard (go:embed, no build step)
//	GET  /healthz              liveness + engine cache statistics + serving counters
//	GET  /v1/stats             per-endpoint latency/throughput counters
//	GET  /v1/events            live event stream (Server-Sent Events)
//	POST /v1/plan              plan fixed (t, p) degrees
//	POST /v1/plan/batch        up to 256 heterogeneous plan/search/simulate items
//	POST /v1/search            joint (t, p) search for the best plan
//	POST /v1/simulate          one iteration, optionally under a scenario
//	POST /v1/experiments/{id}  regenerate a paper table/figure
//	POST /v1/jobs              submit a job to the fleet scheduler
//	GET  /v1/jobs              every fleet's deterministic schedule
//	GET  /v1/jobs/{id}         one job's placement  (DELETE cancels)
//
// Request bodies reuse the config.Config schema of cmd/holmes-sim
// (clusters or the env/nodes shorthand, model group or explicit
// architecture, framework, component toggles). Every response — errors
// included, on every route — is JSON with Content-Type
// application/json.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"holmes/internal/config"
	"holmes/internal/core"
	"holmes/internal/dashboard"
	"holmes/internal/engine"
	"holmes/internal/events"
	"holmes/internal/experiments"
	"holmes/internal/serve"
	"holmes/internal/trainer"
)

// Version identifies the API release (mirrors the facade version).
const Version = "1.6.0"

// Server serves the Holmes planning API on a pool of engine shards.
type Server struct {
	pool   *serve.Pool
	fleets fleetRegistry
	// events is the live-observability hub: operators publish into it,
	// /v1/events streams it. Owned by the server for its whole life.
	events *events.Hub
	// draining answers 429 on every admission-gated route while the
	// process drains in-flight work before shutdown (SetDraining).
	draining atomic.Bool
	// pprofEnabled mounts net/http/pprof under /debug/pprof/ (EnablePprof;
	// must be set before Handler is called).
	pprofEnabled bool
	// dashboardEnabled mounts the embedded dashboard at / and /static/
	// (EnableDashboard; must be set before Handler is called). On by
	// default: the dashboard is static bytes with zero cost when unused.
	dashboardEnabled bool
}

// NewServer returns a single-shard server on the given engine (nil = the
// shared default engine) — the pre-sharding constructor, kept for
// embedders that manage their own engine.
func NewServer(eng *engine.Engine) *Server {
	return NewServerPool(serve.FromEngine(eng))
}

// NewServerPool returns a server on an explicit shard pool (nil = one
// default pool), the constructor cmd/holmes-serve uses.
func NewServerPool(p *serve.Pool) *Server {
	if p == nil {
		p = serve.New(serve.Config{})
	}
	s := &Server{pool: p, events: events.NewHub(), dashboardEnabled: true}
	s.fleets.init()
	return s
}

// Pool exposes the server's shard pool (observability and tests).
func (s *Server) Pool() *serve.Pool { return s.pool }

// Events exposes the live event hub (operators publish into it; the
// shutdown path closes it to release every streaming client).
func (s *Server) Events() *events.Hub { return s.events }

// Handler returns the route table. Routes are registered without method
// patterns and checked in the instrumentation wrapper, so a wrong method
// gets a JSON 405 (the stock mux answers text/plain, which breaks
// clients that unconditionally json-decode error bodies).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.route(epHealthz, http.MethodGet, false, s.handleHealthz))
	mux.HandleFunc("/v1/stats", s.route(epStats, http.MethodGet, false, s.handleStats))
	// The event stream and the dashboard are observability surfaces:
	// admission-exempt like healthz/stats, because a saturated or
	// draining server is exactly what they exist to show.
	mux.HandleFunc("/v1/events", s.route(epEvents, http.MethodGet, false, s.handleEvents))
	if s.dashboardEnabled {
		mux.HandleFunc("/{$}", s.route(epDashboard, http.MethodGet, false, s.handleDashboardIndex))
		mux.HandleFunc("/static/", s.route(epDashboard, http.MethodGet, false, s.handleDashboardAsset))
	}
	mux.HandleFunc("/v1/plan", s.route(epPlan, http.MethodPost, true, s.handlePlan))
	mux.HandleFunc("/v1/plan/batch", s.route(epBatch, http.MethodPost, true, s.handleBatch))
	mux.HandleFunc("/v1/search", s.route(epSearch, http.MethodPost, true, s.handleSearch))
	mux.HandleFunc("/v1/simulate", s.route(epSimulate, http.MethodPost, true, s.handleSimulate))
	mux.HandleFunc("/v1/experiments/{id}", s.route(epExperiments, http.MethodPost, true, s.handleExperiment))
	mux.HandleFunc("/v1/jobs", s.routeMethods(epJobs, true, map[string]http.HandlerFunc{
		http.MethodPost: s.handleJobSubmit,
		http.MethodGet:  s.handleJobsList,
	}))
	mux.HandleFunc("/v1/jobs/{id}", s.routeMethods(epJob, true, map[string]http.HandlerFunc{
		http.MethodGet:    s.handleJobGet,
		http.MethodDelete: s.handleJobCancel,
	}))
	if s.pprofEnabled {
		// Profiling rides outside admission like the other observability
		// routes: an operator must be able to profile a saturated server.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", s.handleNotFound)
	return mux
}

// EnablePprof mounts net/http/pprof on the handler returned by the next
// Handler call. Off by default: profiling endpoints leak operational
// detail and belong behind an explicit operator flag.
func (s *Server) EnablePprof(on bool) { s.pprofEnabled = on }

// EnableDashboard controls whether the next Handler call mounts the
// embedded dashboard at / and /static/. On by default; an API-only
// deployment turns it off and / answers the JSON 404 like any other
// unknown path.
func (s *Server) EnableDashboard(on bool) { s.dashboardEnabled = on }

// handleDashboardIndex serves the embedded dashboard page at exactly /.
func (s *Server) handleDashboardIndex(w http.ResponseWriter, r *http.Request) {
	body, ctype, ok := dashboard.Asset("static/index.html")
	if !ok {
		writeError(w, http.StatusInternalServerError, "dashboard index missing from embedded assets")
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleDashboardAsset serves the embedded /static/ files. Misses
// answer the API's JSON 404, keeping the every-error-is-JSON contract.
func (s *Server) handleDashboardAsset(w http.ResponseWriter, r *http.Request) {
	body, ctype, ok := dashboard.Asset(strings.TrimPrefix(r.URL.Path, "/"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such asset: %s", r.URL.Path)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// SetDraining flips drain mode: while draining, every admission-gated
// route answers 429 with Retry-After so load balancers move new work to
// other replicas, while in-flight requests (and the observability
// routes) keep working. The graceful-shutdown path of cmd/holmes-serve
// sets it just before http.Server.Shutdown.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Draining reports whether drain mode is on.
func (s *Server) Draining() bool { return s.draining.Load() }

// Endpoint names as they appear in /v1/stats.
const (
	epHealthz     = "healthz"
	epStats       = "stats"
	epPlan        = "plan"
	epBatch       = "plan_batch"
	epSearch      = "search"
	epSimulate    = "simulate"
	epExperiments = "experiments"
	epJobs        = "jobs"
	epJob         = "job"
	epEvents      = "events"
	epDashboard   = "dashboard"
)

// statusWriter records the status a handler wrote so the stats layer can
// classify the outcome.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Unwrap lets http.NewResponseController reach the underlying writer's
// Flusher — the SSE handler streams through this wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// route wraps a handler with method enforcement, admission control, and
// per-endpoint accounting. Observability routes (healthz, stats) skip
// admission: they must answer even — especially — when the pool is
// saturated.
func (s *Server) route(name, method string, admit bool, h http.HandlerFunc) http.HandlerFunc {
	return s.routeMethods(name, admit, map[string]http.HandlerFunc{method: h})
}

// routeMethods is route for endpoints serving several methods on one
// path (the jobs routes take GET and POST/DELETE).
func (s *Server) routeMethods(name string, admit bool, methods map[string]http.HandlerFunc) http.HandlerFunc {
	ep := s.pool.Stats().Endpoint(name)
	allowed := make([]string, 0, len(methods))
	for m := range methods {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		done := ep.Begin()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() { done(sw.status) }()
		h, ok := methods[r.Method]
		// HEAD rides along with GET (the stock mux's method patterns allow
		// it too, and uptime probes health-check with HEAD).
		if !ok && r.Method == http.MethodHead {
			h, ok = methods[http.MethodGet]
		}
		if !ok {
			sw.Header().Set("Allow", allow)
			writeError(sw, http.StatusMethodNotAllowed, "method %s not allowed on this endpoint (use %s)", r.Method, allow)
			return
		}
		if admit {
			if s.draining.Load() {
				retry := int(s.pool.RetryAfter().Seconds() + 0.5)
				if retry < 1 {
					retry = 1
				}
				sw.Header().Set("Retry-After", strconv.Itoa(retry))
				writeError(sw, http.StatusTooManyRequests, "server draining for shutdown, retry after %ds", retry)
				return
			}
			release, ok := s.pool.Admit(r.Context())
			if !ok {
				retry := int(s.pool.RetryAfter().Seconds() + 0.5)
				if retry < 1 {
					retry = 1
				}
				sw.Header().Set("Retry-After", strconv.Itoa(retry))
				writeError(sw, http.StatusTooManyRequests, "server saturated: admission queue full, retry after %ds", retry)
				return
			}
			defer release()
		}
		h(sw, r)
	}
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "no such endpoint: %s %s", r.Method, r.URL.Path)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are out; nothing useful to do on failure
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// apiError carries the HTTP status a failed operation maps to, so the
// single-request handlers and the batch executor classify errors
// identically.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// errStatus maps an operation error to its HTTP status (500 for anything
// that did not come through errf — by construction nothing should).
func errStatus(err error) int {
	if ae, ok := err.(*apiError); ok {
		return ae.status
	}
	return http.StatusInternalServerError
}

// HealthResponse reports liveness and engine observability.
type HealthResponse struct {
	Status      string                   `json:"status"`
	Version     string                   `json:"version"`
	Shards      int                      `json:"shards"`
	Concurrency int                      `json:"concurrency"`
	Cache       engine.CacheStats        `json:"cache"`
	PlanCache   engine.CacheStats        `json:"plan_cache"`
	Responses   serve.ResponseCacheStats `json:"responses"`
	Search      engine.SearchStats       `json:"search"`
	Serve       serve.StatsSnapshot      `json:"serve"`
	Events      events.HubStats          `json:"events"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Version:     Version,
		Shards:      s.pool.Shards(),
		Concurrency: s.pool.Concurrency(),
		Cache:       s.pool.CacheStats(),
		PlanCache:   s.pool.PlanCacheStats(),
		Responses:   s.pool.ResponseCacheStats(),
		Search:      s.pool.SearchStats(),
		Serve:       s.pool.Stats().Snapshot(),
		Events:      s.events.Stats(),
	})
}

// StatsResponse is the outcome of /v1/stats.
type StatsResponse struct {
	Version string `json:"version"`
	Shards  int    `json:"shards"`
	// InFlight/Queued/Rejected describe the admission gate right now;
	// per-endpoint counters live under Serve.
	InFlight int    `json:"in_flight"`
	Queued   int    `json:"queued"`
	Rejected uint64 `json:"rejected"`
	// Canceled counts clients that aborted while waiting for admission —
	// kept apart from Rejected so rising numbers point at client
	// timeouts, not an undersized gate.
	Canceled  uint64                   `json:"canceled"`
	Cache     engine.CacheStats        `json:"cache"`
	PlanCache engine.CacheStats        `json:"plan_cache"`
	Responses serve.ResponseCacheStats `json:"responses"`
	Search    engine.SearchStats       `json:"search"`
	Serve     serve.StatsSnapshot      `json:"serve"`
	Events    events.HubStats          `json:"events"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	inFlight, queued, rejected, canceled := s.pool.Gate()
	writeJSON(w, http.StatusOK, StatsResponse{
		Version:   Version,
		Shards:    s.pool.Shards(),
		InFlight:  inFlight,
		Queued:    queued,
		Rejected:  rejected,
		Canceled:  canceled,
		Cache:     s.pool.CacheStats(),
		PlanCache: s.pool.PlanCacheStats(),
		Responses: s.pool.ResponseCacheStats(),
		Search:    s.pool.SearchStats(),
		Serve:     s.pool.Stats().Snapshot(),
		Events:    s.events.Stats(),
	})
}

// DegreesJSON is the (t, p, d) triple of a plan.
type DegreesJSON struct {
	Tensor   int `json:"tensor"`
	Pipeline int `json:"pipeline"`
	Data     int `json:"data"`
}

// ReportJSON carries the simulated performance of a plan.
type ReportJSON struct {
	TFLOPS          float64 `json:"tflops_per_gpu"`
	Throughput      float64 `json:"samples_per_sec"`
	IterSeconds     float64 `json:"iteration_seconds"`
	ReduceScatterMs float64 `json:"reduce_scatter_ms"`
	MicroBatches    int     `json:"micro_batches"`
}

// PlanResponse is the outcome of /v1/plan and the winner part of
// /v1/search.
type PlanResponse struct {
	Degrees   DegreesJSON `json:"degrees"`
	Partition string      `json:"partition"`
	Report    ReportJSON  `json:"report"`
	// DPGroupsByNIC counts data-parallel groups per selected NIC.
	DPGroupsByNIC map[string]int `json:"dp_groups_by_nic"`
	// CommBytes is the per-kind estimated communication volume (bytes).
	CommBytes map[string]float64 `json:"comm_bytes"`
}

func planResponse(pl *core.Planner, plan *core.Plan) (*PlanResponse, error) {
	costs, err := pl.CommunicationCost(plan)
	if err != nil {
		return nil, err
	}
	commBytes := make(map[string]float64, len(costs))
	for kind, b := range costs {
		commBytes[kind.String()] = b
	}
	nics := make(map[string]int)
	for _, g := range plan.World.DPGroups {
		nics[g.NIC.String()]++
	}
	return &PlanResponse{
		Degrees:   DegreesJSON{Tensor: plan.Degrees.T, Pipeline: plan.Degrees.P, Data: plan.Degrees.D},
		Partition: plan.Partition.String(),
		Report: ReportJSON{
			TFLOPS:          plan.Report.TFLOPS,
			Throughput:      plan.Report.Throughput,
			IterSeconds:     plan.Report.IterSeconds,
			ReduceScatterMs: plan.Report.ReduceScatterSeconds * 1000,
			MicroBatches:    plan.Report.Micro,
		},
		DPGroupsByNIC: nics,
		CommBytes:     commBytes,
	}, nil
}

// maxBodyBytes bounds a single-request body; configs are a few hundred
// bytes.
const maxBodyBytes = 1 << 20

// maxNodes bounds the topology one request may ask the shared daemon to
// materialize: the simulator handles hundreds of nodes comfortably, but
// an unbounded count would let a single request allocate the whole
// process away from every other tenant.
const maxNodes = 512

// maxScenarioEvents bounds one request's event timeline; real fault
// scripts are a handful of events.
const maxScenarioEvents = 256

// checkBounds applies the server-side resource limits to a parsed
// config; single requests and batch items share it.
func checkBounds(c *config.Config) error {
	nodes := c.Nodes
	for _, cl := range c.Clusters {
		nodes += cl.Nodes
	}
	if nodes > maxNodes {
		return fmt.Errorf("api: %d nodes exceeds the per-request limit of %d", nodes, maxNodes)
	}
	if c.Scenario != nil && len(c.Scenario.Events) > maxScenarioEvents {
		return fmt.Errorf("api: %d scenario events exceeds the per-request limit of %d", len(c.Scenario.Events), maxScenarioEvents)
	}
	return nil
}

// decodeStatus classifies a request-decoding error: a body that blew the
// MaxBytesReader limit is 413, anything else is a plain bad request.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decode parses a config.Config request body strictly and applies the
// server-side resource bounds.
func decode(w http.ResponseWriter, r *http.Request) (*config.Config, error) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	defer body.Close()
	c, err := config.Load(body)
	if err != nil {
		return nil, err
	}
	if err := checkBounds(c); err != nil {
		return nil, err
	}
	return c, nil
}

// coalesceKey canonicalizes a parsed config into the single-flight key
// for op. Two requests that parse to the same configuration — regardless
// of their wire formatting — share one computation.
func coalesceKey(op string, c *config.Config) string {
	b, err := json.Marshal(c)
	if err != nil {
		// Config is a plain data struct; Marshal cannot fail. Fall back
		// to never coalescing rather than panicking in the hot path.
		return ""
	}
	return op + "\x00" + string(b)
}

// coalesce answers one deterministic operation with at most one
// computation per distinct (op, config): completed answers replay from
// the pool's response cache, identical in-flight requests share the
// leader's result, and only genuinely new work runs fn. Sharers are
// credited to the endpoint's counters. The resp type parameter keeps the
// any-typed plumbing out of the callers.
func coalesce[T any](s *Server, ep string, op string, c *config.Config, fn func() (*T, error)) (*T, error) {
	key := coalesceKey(op, c)
	if key == "" {
		return fn()
	}
	if v, ok := s.pool.CachedResponse(key); ok {
		s.pool.Stats().Endpoint(ep).Cached()
		return v.(*T), nil
	}
	v, coalesced, err := s.pool.Coalesce(key, func() (any, error) { return fn() })
	if coalesced {
		s.pool.Stats().Endpoint(ep).Coalesced()
	}
	if err != nil {
		return nil, err
	}
	// Only successful answers are cacheable; errors stay cheap to retry
	// and must not shadow a later feasible answer (they can't — the key
	// pins the config — but an error cache would still pin allocation).
	s.pool.StoreResponse(key, v)
	return v.(*T), nil
}

// plannerFor builds a request-scoped planner on the shard owning the
// config's topology.
func (s *Server) plannerFor(c *config.Config) (*core.Planner, error) {
	topo, spec, fw, opt, err := c.Components()
	if err != nil {
		return nil, err
	}
	pl, err := core.NewPlannerOn(s.pool.ShardFor(topo.Fingerprint()), topo, spec)
	if err != nil {
		return nil, err
	}
	pl.Framework = fw
	pl.Opt = opt
	return pl, nil
}

// runPlan executes one plan request (shared by /v1/plan and batch
// items). Errors are *apiError carrying the HTTP status.
func (s *Server) runPlan(ep string, c *config.Config) (*PlanResponse, error) {
	if c.TensorSize < 1 || c.PipelineSize < 1 {
		return nil, errf(http.StatusBadRequest, "plan needs tensor_size >= 1 and pipeline_size >= 1 (use /v1/search to search degrees)")
	}
	if !c.Scenario.Empty() {
		return nil, errf(http.StatusBadRequest, "plan evaluates a pristine fabric; use /v1/simulate to run under a scenario")
	}
	return coalesce(s, ep, "plan", c, func() (*PlanResponse, error) {
		pl, err := s.plannerFor(c)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		plan, err := pl.Plan(c.TensorSize, c.PipelineSize)
		if err != nil {
			return nil, errf(http.StatusUnprocessableEntity, "%v", err)
		}
		resp, err := planResponse(pl, plan)
		if err != nil {
			return nil, errf(http.StatusUnprocessableEntity, "%v", err)
		}
		return resp, nil
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	c, err := decode(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), "%v", err)
		return
	}
	resp, err := s.runPlan(epPlan, c)
	if err != nil {
		writeError(w, errStatus(err), "%s", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// SimulateResponse is the outcome of /v1/simulate.
type SimulateResponse struct {
	Degrees   DegreesJSON `json:"degrees"`
	Partition string      `json:"partition"`
	Report    ReportJSON  `json:"report"`
	// Scenario labels the event timeline the iteration ran under ("" =
	// pristine); ScenarioEvents counts the events that fired before the
	// iteration completed.
	Scenario       string `json:"scenario,omitempty"`
	ScenarioEvents int    `json:"scenario_events,omitempty"`
}

// runSimulate executes one simulate request (shared by /v1/simulate and
// batch items). Simulations are deterministic too, so identical in-flight
// requests coalesce just like plans.
func (s *Server) runSimulate(ep string, c *config.Config) (*SimulateResponse, error) {
	if c.TensorSize < 1 || c.PipelineSize < 1 {
		return nil, errf(http.StatusBadRequest, "simulate needs tensor_size >= 1 and pipeline_size >= 1")
	}
	return coalesce(s, ep, "simulate", c, func() (*SimulateResponse, error) {
		tc, err := c.TrainerConfig()
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		tc.Engine = s.pool.ShardFor(tc.Topo.Fingerprint())
		rep, err := trainer.Simulate(tc)
		if err != nil {
			return nil, errf(http.StatusUnprocessableEntity, "%v", err)
		}
		return &SimulateResponse{
			Degrees:   DegreesJSON{Tensor: rep.Degrees.T, Pipeline: rep.Degrees.P, Data: rep.Degrees.D},
			Partition: rep.Partition.String(),
			Report: ReportJSON{
				TFLOPS:          rep.TFLOPS,
				Throughput:      rep.Throughput,
				IterSeconds:     rep.IterSeconds,
				ReduceScatterMs: rep.ReduceScatterSeconds * 1000,
				MicroBatches:    rep.Micro,
			},
			Scenario:       rep.Scenario,
			ScenarioEvents: rep.ScenarioEvents,
		}, nil
	})
}

// handleSimulate runs one training iteration — optionally under a
// scripted scenario — and reports the paper's metrics. Unlike /v1/plan it
// never builds a Planner: the degrees are the caller's to fix, and the
// fabric carries whatever the scenario scripts onto it.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	c, err := decode(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), "%v", err)
		return
	}
	resp, err := s.runSimulate(epSimulate, c)
	if err != nil {
		writeError(w, errStatus(err), "%s", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// SearchResponse is the outcome of /v1/search.
type SearchResponse struct {
	Winner PlanResponse `json:"winner"`
	// CellsExplored counts the feasible (t, p) candidates simulated.
	CellsExplored int           `json:"cells_explored"`
	Cells         []DegreesJSON `json:"cells"`
}

// runSearch executes one joint-search request (shared by /v1/search and
// batch items).
func (s *Server) runSearch(ep string, c *config.Config) (*SearchResponse, error) {
	if c.TensorSize != 0 || c.PipelineSize != 0 {
		return nil, errf(http.StatusBadRequest, "search picks tensor_size and pipeline_size itself; omit them (use /v1/plan for fixed degrees)")
	}
	if !c.Scenario.Empty() {
		return nil, errf(http.StatusBadRequest, "search evaluates a pristine fabric; use /v1/simulate to run under a scenario")
	}
	return coalesce(s, ep, "search", c, func() (*SearchResponse, error) {
		pl, err := s.plannerFor(c)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		space := pl.SearchSpace()
		best, err := pl.SearchPlan()
		if err != nil {
			return nil, errf(http.StatusUnprocessableEntity, "%v", err)
		}
		winner, err := planResponse(pl, best)
		if err != nil {
			return nil, errf(http.StatusUnprocessableEntity, "%v", err)
		}
		resp := &SearchResponse{Winner: *winner, CellsExplored: len(space)}
		for _, d := range space {
			resp.Cells = append(resp.Cells, DegreesJSON{Tensor: d.T, Pipeline: d.P, Data: d.D})
		}
		return resp, nil
	})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	c, err := decode(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), "%v", err)
		return
	}
	resp, err := s.runSearch(epSearch, c)
	if err != nil {
		writeError(w, errStatus(err), "%s", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExperimentResponse is the outcome of /v1/experiments/{id}.
type ExperimentResponse struct {
	Experiment string            `json:"experiment"`
	Rows       []experiments.Row `json:"rows"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validExperiment(id) {
		// Unknown id is a routing miss (404), not a malformed request.
		writeError(w, http.StatusNotFound, "unknown experiment %q (have %v)", id, experiments.Names)
		return
	}
	rows, err := experiments.NewSuite(s.pool.ShardFor("experiment:" + id)).Run(id)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ExperimentResponse{Experiment: id, Rows: rows})
}

func validExperiment(id string) bool {
	for _, name := range experiments.Names {
		if id == name {
			return true
		}
	}
	return false
}
