package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"holmes/internal/config"
	"holmes/internal/core"
	"holmes/internal/engine"
)

// Cache snapshot/warm-start: everything in the response cache and the
// search-winner memo is a deterministic function of its key, so a fresh
// process that loads a snapshot answers the same corpus hot from boot —
// ROADMAP item 3's warm-start file. The snapshot is versioned JSON with
// a checksum over the payload; corrupt, truncated, or version-skewed
// files are rejected as a whole before anything touches a cache, and
// accepted entries are re-keyed through the normal LRU paths so the
// cache bounds still hold (DESIGN.md decision 11).

// SnapshotFormat and SnapshotVersion identify the file format. The
// envelope also pins the API version: response structs are not
// cross-version stable, and a stale warm-start is worthless rather than
// dangerous — rejecting is always safe.
const (
	SnapshotFormat  = "holmes-cache-snapshot"
	SnapshotVersion = 1
)

// snapshotEnvelope is the file's outer structure. Payload stays raw so
// the checksum covers its exact bytes.
type snapshotEnvelope struct {
	Format     string          `json:"format"`
	Version    int             `json:"version"`
	APIVersion string          `json:"api_version"`
	Checksum   string          `json:"checksum_fnv64a"`
	Payload    json.RawMessage `json:"payload"`
}

// snapshotPayload is the checksummed content.
type snapshotPayload struct {
	// Responses are completed-answer cache entries, least-recently-used
	// first (so replaying in order restores the recency order).
	Responses []responseSnapshot `json:"responses"`
	// Plans are the serializable plan-cache entries (search-winner memo).
	Plans []engine.PlanSnapshotEntry `json:"plans"`
}

// responseSnapshot is one response-cache entry: the operation, the
// canonical config the key was derived from, and the typed response.
type responseSnapshot struct {
	Op       string          `json:"op"`
	Config   json.RawMessage `json:"config"`
	Response json.RawMessage `json:"response"`
}

// SnapshotCounts reports what a load landed.
type SnapshotCounts struct {
	Responses int `json:"responses"`
	Plans     int `json:"plans"`
}

// payloadChecksum is FNV-64a over the payload's compact JSON bytes,
// hex-encoded. Compacting first makes the checksum insensitive to the
// re-indentation the envelope encoder applies to the embedded payload
// (it guards content, not formatting); non-JSON payload bytes are hashed
// as-is and fail the decode step instead.
func payloadChecksum(payload []byte) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err == nil {
		payload = buf.Bytes()
	}
	h := fnv.New64a()
	_, _ = h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64())
}

// SaveSnapshot serializes the pool's response cache and search-winner
// memo into one snapshot document.
func (s *Server) SaveSnapshot() ([]byte, error) {
	var payload snapshotPayload
	for _, e := range s.pool.ResponseEntries() {
		op, cfg, ok := strings.Cut(e.Key, "\x00")
		if !ok {
			continue // not a coalesceKey-shaped entry; nothing else mints keys
		}
		resp, err := json.Marshal(e.Val)
		if err != nil {
			return nil, fmt.Errorf("api: snapshot response %q: %w", op, err)
		}
		payload.Responses = append(payload.Responses, responseSnapshot{
			Op: op, Config: json.RawMessage(cfg), Response: resp,
		})
	}
	payload.Plans = s.pool.SnapshotPlans(core.SearchMemoCodec())
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("api: snapshot payload: %w", err)
	}
	doc, err := json.MarshalIndent(snapshotEnvelope{
		Format:     SnapshotFormat,
		Version:    SnapshotVersion,
		APIVersion: Version,
		Checksum:   payloadChecksum(raw),
		Payload:    raw,
	}, "", " ")
	if err != nil {
		return nil, fmt.Errorf("api: snapshot envelope: %w", err)
	}
	return append(doc, '\n'), nil
}

// LoadSnapshot validates and loads a snapshot document into the pool's
// caches. The whole file is decoded and re-keyed before anything is
// stored: a snapshot that fails any check — format, version, checksum,
// or any single entry — loads nothing.
func (s *Server) LoadSnapshot(data []byte) (SnapshotCounts, error) {
	var env snapshotEnvelope
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return SnapshotCounts{}, fmt.Errorf("api: snapshot: %w", err)
	}
	if env.Format != SnapshotFormat {
		return SnapshotCounts{}, fmt.Errorf("api: snapshot format %q (want %q)", env.Format, SnapshotFormat)
	}
	if env.Version != SnapshotVersion {
		return SnapshotCounts{}, fmt.Errorf("api: snapshot version %d (want %d)", env.Version, SnapshotVersion)
	}
	if env.APIVersion != Version {
		return SnapshotCounts{}, fmt.Errorf("api: snapshot from API %s (this server is %s)", env.APIVersion, Version)
	}
	if got := payloadChecksum(env.Payload); got != env.Checksum {
		return SnapshotCounts{}, fmt.Errorf("api: snapshot checksum %s does not match payload (%s)", env.Checksum, got)
	}
	var payload snapshotPayload
	if err := json.Unmarshal(env.Payload, &payload); err != nil {
		return SnapshotCounts{}, fmt.Errorf("api: snapshot payload: %w", err)
	}

	// Stage every response: re-derive the canonical key by running the
	// config back through the normal strict loader (a snapshot never gets
	// to mint keys the request path would not), and re-type the response
	// by operation.
	type staged struct {
		key string
		val any
	}
	responses := make([]staged, 0, len(payload.Responses))
	for i, re := range payload.Responses {
		c, err := config.Load(bytes.NewReader(re.Config))
		if err != nil {
			return SnapshotCounts{}, fmt.Errorf("api: snapshot response %d: config: %w", i, err)
		}
		if err := checkBounds(c); err != nil {
			return SnapshotCounts{}, fmt.Errorf("api: snapshot response %d: %w", i, err)
		}
		if _, err := c.Topology(); err != nil {
			// The request path would never have cached this config (it
			// fails before planning), so a snapshot must not key it either.
			return SnapshotCounts{}, fmt.Errorf("api: snapshot response %d: config: %w", i, err)
		}
		val, err := decodeSnapshotResponse(re.Op, re.Response)
		if err != nil {
			return SnapshotCounts{}, fmt.Errorf("api: snapshot response %d: %w", i, err)
		}
		key := coalesceKey(re.Op, c)
		if key == "" {
			return SnapshotCounts{}, fmt.Errorf("api: snapshot response %d: unkeyable config", i)
		}
		responses = append(responses, staged{key: key, val: val})
	}
	plans, err := engine.DecodePlans(payload.Plans, core.SearchMemoCodec())
	if err != nil {
		return SnapshotCounts{}, err
	}

	for _, r := range responses {
		s.pool.StoreResponse(r.key, r.val)
	}
	for _, d := range plans {
		s.pool.ShardFor(d.Route).StorePlan(d.Key, d.Val)
	}
	return SnapshotCounts{Responses: len(responses), Plans: len(plans)}, nil
}

// decodeSnapshotResponse re-types one cached response by operation. A
// strict decode: an entry that does not round-trip exactly is corrupt.
func decodeSnapshotResponse(op string, raw json.RawMessage) (any, error) {
	strict := func(v any) error {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		return dec.Decode(v)
	}
	switch op {
	case "plan":
		v := new(PlanResponse)
		if err := strict(v); err != nil {
			return nil, err
		}
		return v, nil
	case "search":
		v := new(SearchResponse)
		if err := strict(v); err != nil {
			return nil, err
		}
		return v, nil
	case "simulate":
		v := new(SimulateResponse)
		if err := strict(v); err != nil {
			return nil, err
		}
		return v, nil
	default:
		return nil, fmt.Errorf("unknown op %q", op)
	}
}
