package api

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"

	"holmes/internal/fleet"
)

// The /v1/jobs surface is the fleet scheduler behind HTTP: clients
// submit jobs against a shared fleet topology, poll their placement, and
// cancel. The schedule a poll observes is the deterministic replay of
// the fleet's live job set ordered by (submit, id) — so any interleaving
// of concurrent submissions converges to the same schedule as a
// sequential replay of the same trace, and a storm of pollers on a
// 4-shard pool reads bit-identical placements.
//
//	POST   /v1/jobs       {"fleet": {...}, "job": {...}}  submit one job
//	GET    /v1/jobs       every fleet's current schedule
//	GET    /v1/jobs/{id}  one job's placement
//	DELETE /v1/jobs/{id}  cancel one job

// maxFleets bounds the distinct fleet topologies one daemon manages;
// each holds up to fleet.MaxJobs live jobs and a slice-plan memo.
const maxFleets = 16

// fleetRegistry maps fleet topologies (by fingerprint) to their
// managers, and live job IDs to their owning fleet. Job IDs are global:
// the ID is the only handle GET and DELETE take. In operator mode
// (mode != nil) fleets are durable fleet.Operators instead, and job IDs
// resolve by scanning the ≤ maxFleets operators — retired jobs stay
// resolvable that way, which an in-memory owner map could not offer
// across a restart.
type fleetRegistry struct {
	mu     sync.Mutex
	fleets map[string]*fleet.Manager // fingerprint -> manager
	owner  map[string]string         // job id -> fingerprint
	ops    map[string]*fleet.Operator
	mode   *OperatorMode
	// submitMu serializes operator-mode submits end to end: the
	// cross-fleet ID-uniqueness scan and the submit it guards must be
	// one atomic step, or two concurrent submits of the same ID to
	// different fleets both pass the scan and mint a duplicate ID. A
	// dedicated lock rather than mu (which it wraps, never the reverse)
	// so the fsync inside Submit never blocks registry readers.
	submitMu sync.Mutex
}

func (fr *fleetRegistry) init() {
	fr.fleets = make(map[string]*fleet.Manager)
	fr.owner = make(map[string]string)
	fr.ops = make(map[string]*fleet.Operator)
}

// JobRequest is the envelope of POST /v1/jobs.
type JobRequest struct {
	Fleet fleet.Spec `json:"fleet"`
	Job   fleet.Job  `json:"job"`
	// Policy optionally names the fleet's scheduling policy (fifo,
	// priority, edf, fair). It applies when the submit creates the
	// fleet; on an existing fleet a differing policy is a 409 — one
	// fleet schedules under one policy at a time.
	Policy string `json:"policy,omitempty"`
}

// JobResponse is the outcome of POST /v1/jobs and GET /v1/jobs/{id}:
// the job's slot in the fleet's current schedule.
type JobResponse struct {
	// Fleet identifies the owning fleet by topology fingerprint.
	Fleet string `json:"fleet"`
	// Jobs counts the fleet's live jobs.
	Jobs      int             `json:"jobs"`
	Placement fleet.Placement `json:"placement"`
	// State (operator mode) is the job's wall-clock state: queued,
	// running, done, or unplaced.
	State string `json:"state,omitempty"`
	// Now (operator mode) is the fleet's wall-clock instant.
	Now float64 `json:"now,omitempty"`
	// Policy names the fleet's scheduling policy (operator mode).
	Policy string `json:"policy,omitempty"`
	// Makespan / Utilization summarize the fleet's whole schedule.
	Makespan    float64 `json:"makespan"`
	Utilization float64 `json:"utilization"`
}

// CancelResponse is the outcome of DELETE /v1/jobs/{id}.
type CancelResponse struct {
	Job      string `json:"job"`
	Canceled bool   `json:"canceled"`
	Jobs     int    `json:"jobs"`
}

// FleetSchedule is one fleet's slot in GET /v1/jobs.
type FleetSchedule struct {
	Fleet    string          `json:"fleet"`
	Jobs     int             `json:"jobs"`
	Schedule *fleet.Schedule `json:"schedule"`
	// Policy / Now / Done describe the fleet in operator mode: its
	// scheduling policy, wall-clock instant, and retired-job count.
	Policy string  `json:"policy,omitempty"`
	Now    float64 `json:"now,omitempty"`
	Done   int     `json:"done,omitempty"`
}

// FleetsResponse is the outcome of GET /v1/jobs.
type FleetsResponse struct {
	Version string          `json:"version"`
	Fleets  []FleetSchedule `json:"fleets"`
}

// handleJobSubmit admits one job into its fleet and answers with the
// job's slot in the recomputed schedule.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	defer body.Close()
	var req JobRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, decodeStatus(err), "jobs: %v", err)
		return
	}
	topo, err := req.Fleet.Topology()
	if err != nil {
		writeError(w, http.StatusBadRequest, "jobs: %v", err)
		return
	}
	if topo.NumNodes() > maxNodes {
		writeError(w, http.StatusBadRequest, "jobs: %d nodes exceeds the per-fleet limit of %d", topo.NumNodes(), maxNodes)
		return
	}
	fp := topo.Fingerprint()
	if req.Policy != "" {
		if _, err := fleet.PolicyByName(req.Policy); err != nil {
			writeError(w, http.StatusBadRequest, "jobs: %v", err)
			return
		}
	}
	if s.OperatorEnabled() {
		s.submitOperator(w, req, fp)
		return
	}

	fr := &s.fleets
	fr.mu.Lock()
	mgr, ok := fr.fleets[fp]
	if !ok {
		if len(fr.fleets) >= maxFleets {
			fr.mu.Unlock()
			writeError(w, http.StatusTooManyRequests, "jobs: daemon already manages %d fleets", maxFleets)
			return
		}
		// The fleet lives on the shard that owns its topology fingerprint,
		// so its slice plans share that shard's communicator cache.
		mgr, err = fleet.NewManager(s.pool.ShardFor(fp), topo)
		if err != nil {
			fr.mu.Unlock()
			writeError(w, http.StatusBadRequest, "jobs: %v", err)
			return
		}
		if err := mgr.SetPolicy(req.Policy); err != nil {
			fr.mu.Unlock()
			writeError(w, http.StatusBadRequest, "jobs: %v", err)
			return
		}
		fr.fleets[fp] = mgr
	} else if req.Policy != "" && req.Policy != mgr.Policy() {
		fr.mu.Unlock()
		writeError(w, http.StatusConflict,
			"jobs: fleet %s schedules under policy %q; a submit cannot switch it to %q", fp, mgr.Policy(), req.Policy)
		return
	}
	if _, taken := fr.owner[req.Job.ID]; taken {
		fr.mu.Unlock()
		writeError(w, http.StatusConflict, "jobs: job %q already exists", req.Job.ID)
		return
	}
	if mgr.Len() >= fleet.MaxJobs {
		fr.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "jobs: fleet already holds %d jobs (the per-fleet limit)", fleet.MaxJobs)
		return
	}
	if err := mgr.Submit(req.Job); err != nil {
		fr.mu.Unlock()
		writeError(w, http.StatusBadRequest, "jobs: %v", err)
		return
	}
	fr.owner[req.Job.ID] = fp
	fr.mu.Unlock()

	s.writeJobPlacement(w, mgr, fp, req.Job.ID)
}

// managerOf resolves a job ID to its fleet.
func (s *Server) managerOf(id string) (*fleet.Manager, string, bool) {
	fr := &s.fleets
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fp, ok := fr.owner[id]
	if !ok {
		return nil, "", false
	}
	return fr.fleets[fp], fp, true
}

func (s *Server) writeJobPlacement(w http.ResponseWriter, mgr *fleet.Manager, fp, id string) {
	p, ok, err := mgr.Job(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "jobs: %v", err)
		return
	}
	if !ok {
		// Cancelled between lookup and replay.
		writeError(w, http.StatusNotFound, "jobs: no such job %q", id)
		return
	}
	sched, err := mgr.Schedule()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "jobs: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, JobResponse{
		Fleet:       fp,
		Jobs:        mgr.Len(),
		Placement:   p,
		Makespan:    sched.Makespan,
		Utilization: sched.Utilization,
	})
}

// handleJobGet answers one job's current placement.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.OperatorEnabled() {
		s.getOperatorJob(w, id)
		return
	}
	mgr, fp, ok := s.managerOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, "jobs: no such job %q", id)
		return
	}
	s.writeJobPlacement(w, mgr, fp, id)
}

// handleJobCancel removes one job from its fleet.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.OperatorEnabled() {
		s.cancelOperatorJob(w, id)
		return
	}
	fr := &s.fleets
	fr.mu.Lock()
	fp, ok := fr.owner[id]
	if !ok {
		fr.mu.Unlock()
		writeError(w, http.StatusNotFound, "jobs: no such job %q", id)
		return
	}
	mgr := fr.fleets[fp]
	delete(fr.owner, id)
	canceled := mgr.Cancel(id)
	jobs := mgr.Len()
	if jobs == 0 {
		// The last job left: retire the fleet so idle topologies neither
		// count against maxFleets nor pin their plan memos. Submits and
		// cancels both hold fr.mu across the manager mutation, so no
		// concurrent submit can be adding to the manager being dropped.
		delete(fr.fleets, fp)
	}
	fr.mu.Unlock()
	if !canceled {
		// The registry and manager disagree: report loudly instead of
		// pretending the cancel happened.
		writeError(w, http.StatusInternalServerError, "jobs: registry held %q but the fleet did not", id)
		return
	}
	writeJSON(w, http.StatusOK, CancelResponse{Job: id, Canceled: true, Jobs: jobs})
}

// handleJobsList answers every fleet's schedule, fleets ordered by
// fingerprint so concurrent observers read stable output.
func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	if s.OperatorEnabled() {
		s.listOperatorFleets(w)
		return
	}
	fr := &s.fleets
	fr.mu.Lock()
	fps := make([]string, 0, len(fr.fleets))
	for fp := range fr.fleets {
		fps = append(fps, fp)
	}
	mgrs := make(map[string]*fleet.Manager, len(fr.fleets))
	for fp, mgr := range fr.fleets {
		mgrs[fp] = mgr
	}
	fr.mu.Unlock()
	sort.Strings(fps)

	resp := FleetsResponse{Version: Version, Fleets: []FleetSchedule{}}
	for _, fp := range fps {
		sched, err := mgrs[fp].Schedule()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "jobs: fleet %s: %v", fp, err)
			return
		}
		resp.Fleets = append(resp.Fleets, FleetSchedule{Fleet: fp, Jobs: mgrs[fp].Len(), Schedule: sched})
	}
	writeJSON(w, http.StatusOK, resp)
}
