package api

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"holmes/internal/events"
	"holmes/internal/fleet"
	"holmes/internal/serve"
)

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	event string
	data  string
}

// openSSE connects to an SSE endpoint and parses frames into a channel
// on a background goroutine. The returned cancel aborts the request
// (simulating a client that went away); the channel closes when the
// server ends the stream or the connection drops.
func openSSE(t *testing.T, url string) (<-chan sseFrame, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("SSE connect: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("SSE content-type %q", ct)
	}
	frames := make(chan sseFrame, 256)
	go func() {
		defer close(frames)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var cur sseFrame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "" && (cur.event != "" || cur.data != ""):
				frames <- cur
				cur = sseFrame{}
			}
		}
	}()
	t.Cleanup(cancel)
	return frames, cancel
}

// nextFrame reads one frame with a deadline, skipping heartbeats (which
// carry no event name).
func nextFrame(t *testing.T, frames <-chan sseFrame, what string) (sseFrame, bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case f, ok := <-frames:
			if !ok {
				return sseFrame{}, false
			}
			if f.event == "" {
				continue
			}
			return f, true
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

// TestEventsStreamOperatorTransitions: a subscriber watching /v1/events
// sees a submitted job's full life — queued, running, done, retire — in
// order, with the events.Event JSON shape on the wire.
func TestEventsStreamOperatorTransitions(t *testing.T) {
	pool := serve.New(serve.Config{})
	clock := fleet.NewFakeClock()
	_, srv := newOperatorServer(t, pool, t.TempDir(), clock)

	frames, _ := openSSE(t, srv.URL+"/v1/events")

	code, body := post(t, srv, "/v1/jobs", opJobBody("alpha", 16, ""))
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}

	// Walk the wall clock past the placement's finish; the operator's
	// own loop wakes on the clock edge, retires the job, and the stream
	// must carry every transition in order.
	clock.Advance(jr.Placement.Finish + 1)

	wantStates := []string{"queued", "running", "done"}
	var seq uint64
	for _, want := range wantStates {
		f, ok := nextFrame(t, frames, "job state "+want)
		if !ok {
			t.Fatalf("stream closed before state %q", want)
		}
		if f.event != "job" {
			t.Fatalf("event %q (data %s), want job/%s", f.event, f.data, want)
		}
		var ev events.Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("bad event JSON %q: %v", f.data, err)
		}
		if ev.Job != "alpha" || ev.State != want {
			t.Fatalf("event %+v, want alpha/%s", ev, want)
		}
		if ev.Seq <= seq {
			t.Fatalf("seq went backwards: %d after %d", ev.Seq, seq)
		}
		seq = ev.Seq
	}
	f, ok := nextFrame(t, frames, "retire event")
	if !ok {
		t.Fatal("stream closed before the retire event")
	}
	if f.event != "retire" {
		t.Fatalf("event %q (data %s), want retire", f.event, f.data)
	}
	var ev events.Event
	if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Jobs) != 1 || ev.Jobs[0] != "alpha" {
		t.Fatalf("retire event %+v, want jobs [alpha]", ev)
	}
}

// TestEventsClientAbortFreesSubscriber: a client that disconnects
// mid-stream must release its hub slot — no goroutine parked forever,
// no subscriber leak (run under -race to catch both).
func TestEventsClientAbortFreesSubscriber(t *testing.T) {
	pool := serve.New(serve.Config{})
	s, srv := newOperatorServer(t, pool, t.TempDir(), fleet.NewFakeClock())

	_, cancel := openSSE(t, srv.URL+"/v1/events")
	waitSubscribers(t, s.events, 1, "after connect")
	cancel()
	waitSubscribers(t, s.events, 0, "after client abort")
}

// TestEventsHubCloseEndsStream: closing the hub (the shutdown path)
// ends every stream with an in-band eof frame, so clients can tell a
// deliberate close from a dropped connection.
func TestEventsHubCloseEndsStream(t *testing.T) {
	pool := serve.New(serve.Config{})
	s := NewServerPool(pool)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	frames, _ := openSSE(t, srv.URL+"/v1/events")
	waitSubscribers(t, s.events, 1, "after connect")
	s.Events().Close()
	f, ok := nextFrame(t, frames, "eof frame")
	if !ok {
		t.Fatal("stream closed without an eof frame")
	}
	if f.event != "eof" || !strings.Contains(f.data, "stream closed") {
		t.Fatalf("final frame %+v, want eof", f)
	}
	if _, open := <-frames; open {
		t.Fatal("frames after eof")
	}
}

func waitSubscribers(t *testing.T, hub *events.Hub, want int, when string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for hub.Stats().Subscribers != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d subscribers, want %d", when, hub.Stats().Subscribers, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEventsAndDashboardAdmissionExempt: with the admission gate
// saturated, planning sheds 429 but the observability surface — the
// event stream and the dashboard — keeps answering. Watching a
// saturated server is exactly when they matter.
func TestEventsAndDashboardAdmissionExempt(t *testing.T) {
	pool := serve.New(serve.Config{MaxInFlight: 1, MaxQueue: -1})
	srv := newPoolServer(t, pool)
	release, ok := pool.Admit(context.Background())
	if !ok {
		t.Fatal("could not occupy the admission slot")
	}
	defer release()

	if code, _ := post(t, srv, "/v1/plan", planBody); code != http.StatusTooManyRequests {
		t.Fatalf("plan under saturation: %d, want 429", code)
	}
	// The stream connects and serves its retry preamble while saturated.
	frames, cancel := openSSE(t, srv.URL+"/v1/events")
	cancel()
	for range frames {
	}
	// The dashboard answers too.
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard under saturation: %d", resp.StatusCode)
	}
}

// TestDashboardAssets: the embedded dashboard serves the page at the
// exact root, its static assets under /static/, and keeps the JSON
// error contract on misses.
func TestDashboardAssets(t *testing.T) {
	srv := newTestServer(t)

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("GET / content-type %q", ct)
	}
	if !strings.Contains(string(page), "<html") || !strings.Contains(string(page), "app.js") {
		t.Fatalf("GET / body does not look like the dashboard: %.120s", page)
	}

	for path, wantCT := range map[string]string{
		"/static/app.js":    "text/javascript",
		"/static/style.css": "text/css",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), wantCT) {
			t.Fatalf("GET %s: %d %q", path, resp.StatusCode, resp.Header.Get("Content-Type"))
		}
	}

	// A miss keeps the API's JSON error shape.
	code, body := do(t, http.MethodGet, srv.URL+"/static/nope.js", "")
	if code != http.StatusNotFound || !strings.Contains(string(body), `"error"`) {
		t.Fatalf("GET /static/nope.js: %d %s", code, body)
	}
	// The exact-root pattern must not swallow unknown paths.
	if code, _ := do(t, http.MethodGet, srv.URL+"/nope", ""); code != http.StatusNotFound {
		t.Fatalf("GET /nope: %d, want 404", code)
	}
}

// TestStatsCarriesHubCounters: /v1/stats and /healthz expose the event
// hub's live counters.
func TestStatsCarriesHubCounters(t *testing.T) {
	pool := serve.New(serve.Config{})
	s, srv := newOperatorServer(t, pool, t.TempDir(), fleet.NewFakeClock())

	_, cancel := openSSE(t, srv.URL+"/v1/events")
	defer cancel()
	waitSubscribers(t, s.events, 1, "after connect")

	var st StatsResponse
	getJSON(t, srv, "/v1/stats", &st)
	if st.Events.Subscribers != 1 {
		t.Fatalf("stats events: %+v, want 1 subscriber", st.Events)
	}
	code, body := post(t, srv, "/v1/jobs", opJobBody("counted", 8, ""))
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	getJSON(t, srv, "/v1/stats", &st)
	if st.Events.Published == 0 {
		t.Fatalf("stats events after a submit: %+v, want published > 0", st.Events)
	}
}
