package api

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzBatchDecode hardens the /v1/plan/batch decoder: arbitrary bytes
// must never panic it, and whatever it accepts must satisfy the batch
// invariants the executor relies on (bounded item count, known ops,
// parsed configs, unique canonical keys). The seed corpus below is also
// committed under testdata/fuzz/FuzzBatchDecode so the CI fuzz-smoke
// step starts from the interesting shapes.
func FuzzBatchDecode(f *testing.F) {
	seeds := []string{
		// Well-formed heterogeneous batch.
		`{"items":[{"op":"plan","config":{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4}},{"op":"search","config":{"env":"RoCE","nodes":4,"model":{"group":1}}}]}`,
		// Simulate item with a scenario.
		`{"items":[{"op":"simulate","config":{"env":"InfiniBand","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,"scenario":{"name":"s","events":[{"kind":"degrade_nic","at":0,"node":0,"factor":0.5}]}}}]}`,
		// Rejection shapes: empty, duplicate, unknown op, missing config,
		// unknown field, malformed.
		`{"items":[]}`,
		`{}`,
		`{"items":[{"op":"plan","config":{"env":"IB","nodes":4,"model":{"group":1}}},{"op":"plan","config":{"env":"IB","nodes":4,"model":{"group":1}}}]}`,
		`{"items":[{"op":"dance","config":{"env":"IB","nodes":4,"model":{"group":1}}}]}`,
		`{"items":[{"op":"plan"}]}`,
		`{"items":[{"op":"plan","config":{"nope":1}}]}`,
		`{"items":`,
		`[]`,
		`null`,
		// Oversized topology inside an item.
		`{"items":[{"op":"plan","config":{"env":"IB","nodes":99999,"model":{"group":1}}}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, err := parseBatch(bytes.NewReader(data))
		if err != nil {
			if jobs != nil {
				t.Fatalf("error %v returned alongside %d jobs", err, len(jobs))
			}
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatal("empty error message")
			}
			return
		}
		if len(jobs) == 0 || len(jobs) > maxBatchItems {
			t.Fatalf("accepted %d items outside [1, %d]", len(jobs), maxBatchItems)
		}
		keys := make(map[string]bool, len(jobs))
		for i, j := range jobs {
			switch j.op {
			case "plan", "search", "simulate":
			default:
				t.Fatalf("job %d accepted unknown op %q", i, j.op)
			}
			if j.cfg == nil {
				t.Fatalf("job %d accepted without a config", i)
			}
			if j.key == "" {
				t.Fatalf("job %d has no canonical key", i)
			}
			if keys[j.key] {
				t.Fatalf("job %d is a duplicate the decoder let through", i)
			}
			keys[j.key] = true
			// The bounds the shared daemon depends on must hold for
			// anything the decoder admits.
			if err := checkBounds(j.cfg); err != nil {
				t.Fatalf("job %d violates server bounds: %v", i, err)
			}
		}
	})
}
