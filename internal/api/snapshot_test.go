package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"holmes/internal/core"
	"holmes/internal/serve"
)

// The cache snapshot is the warm-start contract: a fresh process that
// loads one must answer the recorded corpus entirely from cache with
// byte-identical responses, and a file that fails any check — format,
// version, API version, checksum, or any single entry — must load
// nothing at all (a half-loaded snapshot would poison a cache with
// entries the request path can no longer account for).

// snapshotCorpus is a small but mixed corpus: three distinct plan
// cells, one joint search, one scenario simulate.
var snapshotCorpus = []struct{ path, body string }{
	{"/v1/plan", `{"env":"InfiniBand","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2}`},
	{"/v1/plan", `{"env":"Ethernet","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2}`},
	{"/v1/plan", `{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4}`},
	{"/v1/search", `{"env":"RoCE","nodes":4,"model":{"group":1}}`},
	{"/v1/simulate", `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,"scenario":{"name":"snap","events":[{"kind":"degrade_nic","at":0.05,"node":0,"factor":0.6}]}}`},
}

// newSnapshotServer builds a pool-backed server without a listener.
func newSnapshotServer(tb testing.TB, shards int) (*serve.Pool, *Server) {
	tb.Helper()
	pool := serve.New(serve.Config{Shards: shards})
	return pool, NewServerPool(pool)
}

// driveCorpus answers the corpus through the handler and returns each
// response body.
func driveCorpus(tb testing.TB, srv *Server) []string {
	tb.Helper()
	handler := srv.Handler()
	out := make([]string, 0, len(snapshotCorpus))
	for _, c := range snapshotCorpus {
		req := httptest.NewRequest(http.MethodPost, c.path, strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			tb.Fatalf("%s: status %d: %s", c.path, rec.Code, rec.Body.String())
		}
		out = append(out, rec.Body.String())
	}
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	pool1, srv1 := newSnapshotServer(t, 2)
	want := driveCorpus(t, srv1)
	if st := pool1.ResponseCacheStats(); st.Size != len(snapshotCorpus) {
		t.Fatalf("seed server cached %d responses, want %d", st.Size, len(snapshotCorpus))
	}
	snap, err := srv1.SaveSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The envelope is well-formed and self-describing.
	var env snapshotEnvelope
	if err := json.Unmarshal(snap, &env); err != nil {
		t.Fatal(err)
	}
	if env.Format != SnapshotFormat || env.Version != SnapshotVersion || env.APIVersion != Version {
		t.Fatalf("envelope %s/%d/%s", env.Format, env.Version, env.APIVersion)
	}

	pool2, srv2 := newSnapshotServer(t, 2)
	counts, err := srv2.LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Responses != len(snapshotCorpus) {
		t.Fatalf("loaded %d responses, want %d", counts.Responses, len(snapshotCorpus))
	}
	if counts.Plans == 0 {
		t.Fatal("loaded no plan-cache entries; the search-winner memo should be in the snapshot")
	}

	// The warm server answers the whole corpus from cache, byte-identical.
	got := driveCorpus(t, srv2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: warm response diverged from the recorded one:\nwarm %s\ncold %s",
				snapshotCorpus[i].path, got[i], want[i])
		}
	}
	st := pool2.ResponseCacheStats()
	if int(st.Hits) != len(snapshotCorpus) || st.Misses != 0 {
		t.Fatalf("warm server: %d hits, %d misses; want %d hits, 0 misses", st.Hits, st.Misses, len(snapshotCorpus))
	}
}

// TestSnapshotLoadIdempotent: loading the same snapshot twice re-keys
// through the normal LRU path, so nothing duplicates or errors.
func TestSnapshotLoadIdempotent(t *testing.T) {
	_, srv1 := newSnapshotServer(t, 1)
	driveCorpus(t, srv1)
	snap, err := srv1.SaveSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	pool2, srv2 := newSnapshotServer(t, 1)
	for i := 0; i < 2; i++ {
		if _, err := srv2.LoadSnapshot(snap); err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
	}
	if st := pool2.ResponseCacheStats(); st.Size != len(snapshotCorpus) {
		t.Fatalf("double load left %d entries, want %d", st.Size, len(snapshotCorpus))
	}
}

// corruptSnapshot applies one named mutation to a valid snapshot.
func corruptSnapshot(t *testing.T, snap []byte, mutate func(env *snapshotEnvelope)) []byte {
	t.Helper()
	var env snapshotEnvelope
	if err := json.Unmarshal(snap, &env); err != nil {
		t.Fatal(err)
	}
	mutate(&env)
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSnapshotRejectsBadFiles(t *testing.T) {
	_, srv1 := newSnapshotServer(t, 1)
	driveCorpus(t, srv1)
	snap, err := srv1.SaveSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	reseal := func(payload string) func(*snapshotEnvelope) {
		return func(env *snapshotEnvelope) {
			env.Payload = json.RawMessage(payload)
			env.Checksum = payloadChecksum(env.Payload)
		}
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "snapshot"},
		{"junk", []byte("not json"), "snapshot"},
		{"truncated", snap[:len(snap)/2], "snapshot"},
		{"unknown envelope field", []byte(`{"format":"holmes-cache-snapshot","version":1,"api_version":"` + Version + `","checksum_fnv64a":"0","payload":{},"extra":1}`), "unknown field"},
		{"wrong format", corruptSnapshot(t, snap, func(e *snapshotEnvelope) { e.Format = "holmes-other" }), "format"},
		{"wrong version", corruptSnapshot(t, snap, func(e *snapshotEnvelope) { e.Version = 99 }), "version 99"},
		{"api version skew", corruptSnapshot(t, snap, func(e *snapshotEnvelope) { e.APIVersion = "0.0.1" }), "API 0.0.1"},
		{"bad checksum", corruptSnapshot(t, snap, func(e *snapshotEnvelope) { e.Checksum = "deadbeefdeadbeef" }), "checksum"},
		{"payload not an object", corruptSnapshot(t, snap, reseal(`[1,2]`)), "payload"},
		{"unknown op", corruptSnapshot(t, snap, reseal(`{"responses":[{"op":"dance","config":{"env":"InfiniBand","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2},"response":{}}]}`)), "unknown op"},
		{"bad config", corruptSnapshot(t, snap, reseal(`{"responses":[{"op":"plan","config":{"env":"Mars","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2},"response":{}}]}`)), "config"},
		{"unknown plan kind", corruptSnapshot(t, snap, reseal(`{"plans":[{"kind":"martian","key":{},"val":{}}]}`)), "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pool, srv := newSnapshotServer(t, 1)
			counts, err := srv.LoadSnapshot(tc.data)
			if err == nil {
				t.Fatalf("accepted %s (loaded %+v)", tc.name, counts)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// A rejected snapshot loads nothing: the caches stay empty.
			if st := pool.ResponseCacheStats(); st.Size != 0 {
				t.Fatalf("rejected snapshot still stored %d responses", st.Size)
			}
			if entries := pool.SnapshotPlans(core.SearchMemoCodec()); len(entries) != 0 {
				t.Fatalf("rejected snapshot still stored %d plan entries", len(entries))
			}
		})
	}
}

// TestDrainMode: while draining, admission-gated routes shed with 429 +
// Retry-After, while the observability routes keep answering — the
// shutdown sequence relies on both halves.
func TestDrainMode(t *testing.T) {
	_, srv := newSnapshotServer(t, 1)
	handler := srv.Handler()
	do := func(method, path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec
	}
	planBody := snapshotCorpus[0].body

	srv.SetDraining(true)
	if !srv.Draining() {
		t.Fatal("Draining() false after SetDraining(true)")
	}
	rec := do(http.MethodPost, "/v1/plan", planBody)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("draining /v1/plan: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("draining 429 carries no Retry-After")
	}
	if rec := do(http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("draining /healthz: status %d", rec.Code)
	}
	if rec := do(http.MethodGet, "/v1/stats", ""); rec.Code != http.StatusOK {
		t.Fatalf("draining /v1/stats: status %d", rec.Code)
	}

	srv.SetDraining(false)
	if rec := do(http.MethodPost, "/v1/plan", planBody); rec.Code != http.StatusOK {
		t.Fatalf("post-drain /v1/plan: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestPprofMount: the profiling mux is operator-opt-in only.
func TestPprofMount(t *testing.T) {
	_, srv := newSnapshotServer(t, 1)
	get := func(h http.Handler, path string) int {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := get(srv.Handler(), "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof mounted by default: status %d", code)
	}
	srv.EnablePprof(true)
	if code := get(srv.Handler(), "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof enabled but /debug/pprof/ answered %d", code)
	}
	if code := get(srv.Handler(), "/debug/pprof/symbol"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/symbol answered %d", code)
	}
}

// FuzzSnapshotDecode hardens the snapshot loader: arbitrary bytes must
// never panic it, and any rejected input must leave both caches
// untouched. The seed corpus (also committed under
// testdata/fuzz/FuzzSnapshotDecode) covers a structurally valid empty
// snapshot plus the rejection shapes.
func FuzzSnapshotDecode(f *testing.F) {
	valid := fmt.Sprintf(
		`{"format":%q,"version":%d,"api_version":%q,"checksum_fnv64a":"08f44b07b5901a25","payload":{}}`,
		SnapshotFormat, SnapshotVersion, Version)
	seeds := []string{
		valid,
		`{"format":"holmes-other","version":1,"api_version":"` + Version + `","checksum_fnv64a":"0","payload":{}}`,
		`{"format":"holmes-cache-snapshot","version":2,"api_version":"` + Version + `","checksum_fnv64a":"0","payload":{}}`,
		`{"format":"holmes-cache-snapshot","version":1,"api_version":"9.9.9","checksum_fnv64a":"0","payload":{}}`,
		`{"format":"holmes-cache-snapshot"`,
		`{"payload":{"responses":[{"op":"plan","config":{},"response":{}}]}}`,
		`null`,
		`[]`,
		``,
		`{"format":"holmes-cache-snapshot","version":1,"api_version":"` + Version + `","checksum_fnv64a":"08f44b07b5901a25","payload":{},"x":1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	// One real snapshot with live entries, so mutations explore the
	// payload structure too.
	_, seedSrv := newSnapshotServer(f, 1)
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(snapshotCorpus[0].body))
	rec := httptest.NewRecorder()
	seedSrv.Handler().ServeHTTP(rec, req)
	if rec.Code == http.StatusOK {
		if snap, err := seedSrv.SaveSnapshot(); err == nil {
			f.Add(snap)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("snapshot inputs beyond 1 MiB add nothing structurally")
		}
		pool, srv := newSnapshotServer(t, 1)
		counts, err := srv.LoadSnapshot(data)
		st := pool.ResponseCacheStats()
		plans := pool.SnapshotPlans(core.SearchMemoCodec())
		if err != nil {
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatal("empty error message")
			}
			if st.Size != 0 || len(plans) != 0 {
				t.Fatalf("rejected input still stored %d responses, %d plans", st.Size, len(plans))
			}
			return
		}
		if counts.Responses != st.Size {
			t.Fatalf("reported %d responses loaded, cache holds %d", counts.Responses, st.Size)
		}
		if counts.Plans != len(plans) {
			t.Fatalf("reported %d plans loaded, cache holds %d", counts.Plans, len(plans))
		}
	})
}
