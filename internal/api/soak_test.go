package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"holmes/internal/engine"
	"holmes/internal/loadgen"
	"holmes/internal/serve"
)

// soakBudget bounds the hammering phase's wall clock. The suite runs
// under -race in CI, so the budget is modest; -short halves it again.
func soakBudget() time.Duration {
	if testing.Short() {
		return 1 * time.Second
	}
	return 2 * time.Second
}

// TestSoakShardedServer is the serving layer's load test: 32 concurrent
// closed-loop clients hammer a 4-shard server with the full request mix
// for a bounded wall-clock budget (run under -race in CI). It asserts
//
//   - zero non-backpressure errors — every response is 200 or 429,
//   - batch answers bit-identical to sequential single-request answers
//     after the storm,
//   - per-shard LRU cache statistics stay monotone and sane while being
//     sampled mid-storm.
func TestSoakShardedServer(t *testing.T) {
	pool := serve.New(serve.Config{
		Shards:      4,
		MaxInFlight: 32,
		MaxQueue:    512,
	})
	srv := newPoolServer(t, pool)

	// Sample /healthz concurrently with the storm: cache counters must be
	// monotone non-decreasing and size bounded by capacity at every
	// observation.
	stopSampling := make(chan struct{})
	var sampling sync.WaitGroup
	var samples []engine.CacheStats
	sampling.Add(1)
	go func() {
		defer sampling.Done()
		for {
			select {
			case <-stopSampling:
				return
			case <-time.After(50 * time.Millisecond):
			}
			var h HealthResponse
			resp, err := http.Get(srv.URL + "/healthz")
			if err != nil {
				t.Errorf("healthz during soak: %v", err)
				return
			}
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err != nil {
				t.Errorf("healthz decode during soak: %v", err)
				return
			}
			samples = append(samples, h.Cache)
		}
	}()

	res, err := loadgen.Run(loadgen.Options{
		BaseURL:   srv.URL,
		Workers:   32,
		Duration:  soakBudget(),
		Mix:       loadgen.Mix{Plan: 8, Search: 1, Simulate: 2, Batch: 1},
		BatchSize: 8,
		Seed:      42,
	})
	close(stopSampling)
	sampling.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.OK == 0 {
		t.Fatalf("soak completed no successful requests: %+v", res)
	}
	// The hard invariant: nothing but 200s and shed load.
	if res.Errors != 0 {
		t.Fatalf("%d non-backpressure errors during soak; first: %s", res.Errors, res.FirstError)
	}
	t.Logf("soak: %d requests (%.0f req/s, %.0f plan answers/s, %d rejected), p50=%.1fms p99=%.1fms",
		res.Requests, res.RequestsPerSec, res.PlanAnswersPerSec, res.Rejected, res.Latency.P50Ms, res.Latency.P99Ms)

	if len(samples) == 0 {
		t.Fatal("no cache samples collected during soak")
	}
	for i, s := range samples {
		if s.Cap > 0 && s.Size > s.Cap {
			t.Fatalf("sample %d: cache size %d exceeds cap %d", i, s.Size, s.Cap)
		}
		if i == 0 {
			continue
		}
		prev := samples[i-1]
		if s.Hits < prev.Hits || s.Misses < prev.Misses || s.Evictions < prev.Evictions {
			t.Fatalf("cache counters regressed between samples %d and %d: %+v -> %+v", i-1, i, prev, s)
		}
	}
	// The corpus repeats a small working set, so the storm must have
	// produced cache hits.
	last := samples[len(samples)-1]
	if last.Hits == 0 {
		t.Fatalf("soak never hit the communicator cache: %+v", last)
	}

	// Differential arm: after the storm, a batch over a spread of plan
	// cells must answer bit-identically to sequential single requests.
	plans := loadgen.PlanBodies()
	var items []string
	for i := 0; i < len(plans); i += 6 {
		items = append(items, fmt.Sprintf(`{"op":"plan","config":%s}`, plans[i]))
	}
	code, raw := post(t, srv, "/v1/plan/batch", `{"items":[`+strings.Join(items, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("post-soak batch: %d %s", code, raw)
	}
	var br rawBatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.Errors != 0 || len(br.Results) != len(items) {
		t.Fatalf("post-soak batch failed items: %s", raw)
	}
	for i := 0; i < len(plans); i += 6 {
		scode, sraw := post(t, srv, "/v1/plan", plans[i])
		if scode != http.StatusOK {
			t.Fatalf("post-soak single plan %d: %d %s", i, scode, sraw)
		}
		if got, want := canon(t, br.Results[i/6].Plan), canon(t, sraw); got != want {
			t.Fatalf("cell %d: batch answer differs from single:\nbatch:  %s\nsingle: %s", i, got, want)
		}
	}
}
