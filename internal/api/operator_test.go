package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"holmes/internal/fleet"
	"holmes/internal/serve"
)

// newOperatorServer builds an operator-mode test server over dir driven
// by a fake clock, sharing one pool across restarts of the same dir.
func newOperatorServer(t *testing.T, pool *serve.Pool, dir string, clock fleet.Clock) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServerPool(pool)
	if _, err := s.EnableOperator(OperatorMode{JournalDir: dir, Clock: clock}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func opJobBody(id string, gpus int, policy string) string {
	pol := ""
	if policy != "" {
		pol = fmt.Sprintf(`,"policy":%q`, policy)
	}
	return fmt.Sprintf(`{"fleet":%s,"job":{"id":%q,"gpus":%d,"iterations":1,"model":{"group":1}}%s}`, jobFleet, id, gpus, pol)
}

func TestOperatorModeLifecycle(t *testing.T) {
	pool := serve.New(serve.Config{})
	dir := t.TempDir()
	clock := fleet.NewFakeClock()
	_, srv := newOperatorServer(t, pool, dir, clock)

	// Submit under an explicit policy: the response carries the
	// wall-clock view — state, now, policy.
	code, body := post(t, srv, "/v1/jobs", opJobBody("alpha", 16, "priority"))
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.State != "running" || jr.Policy != "priority" {
		t.Fatalf("submit response state=%q policy=%q, want running/priority", jr.State, jr.Policy)
	}
	if jr.Placement.Start != 0 {
		t.Fatalf("submit stamped at %g, want the wall instant 0", jr.Placement.Start)
	}

	// A submit must not silently switch the fleet's policy.
	code, body = post(t, srv, "/v1/jobs", opJobBody("beta", 8, "edf"))
	if code != http.StatusConflict {
		t.Fatalf("policy mismatch: %d %s", code, body)
	}
	code, body = post(t, srv, "/v1/jobs", opJobBody("gamma", 8, "warp"))
	if code != http.StatusBadRequest {
		t.Fatalf("unknown policy: %d %s", code, body)
	}

	// The fleet list reports the operator view.
	code, body = do(t, http.MethodGet, srv.URL+"/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, body)
	}
	var fl FleetsResponse
	if err := json.Unmarshal(body, &fl); err != nil {
		t.Fatal(err)
	}
	if len(fl.Fleets) != 1 || fl.Fleets[0].Policy != "priority" || fl.Fleets[0].Jobs != 1 {
		t.Fatalf("fleet list: %+v", fl.Fleets)
	}

	// Walk the wall clock past the job's finish: it retires on its own,
	// and the ID still resolves — state done, final placement intact.
	finish := jr.Placement.Finish
	deadline := 0
	for {
		clock.Advance(finish + 1 - clock.Now())
		code, body = do(t, http.MethodGet, srv.URL+"/v1/jobs/alpha", "")
		if code != http.StatusOK {
			t.Fatalf("poll after finish: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Jobs == 0 {
			break
		}
		if deadline++; deadline > 5000 {
			t.Fatalf("job never retired: %+v", jr)
		}
	}
	if jr.State != "done" || jr.Placement.JobID != "alpha" || jr.Placement.Finish != finish {
		t.Fatalf("retired job view: %+v", jr)
	}

	// Retired work is history: DELETE refuses, resubmitting the ID
	// conflicts.
	code, body = do(t, http.MethodDelete, srv.URL+"/v1/jobs/alpha", "")
	if code != http.StatusConflict {
		t.Fatalf("delete retired: %d %s", code, body)
	}
	code, body = post(t, srv, "/v1/jobs", opJobBody("alpha", 8, ""))
	if code != http.StatusConflict {
		t.Fatalf("resubmit retired: %d %s", code, body)
	}
}

// TestOperatorConcurrentDuplicateSubmits: two racing submits of the
// same job ID aimed at *different* fleets must mint exactly one job.
// Regression for a TOCTOU: the uniqueness scan and the submit it
// authorized ran under separate lock scopes, so both racers could pass
// the scan and create a cross-fleet duplicate ID, making later
// GET/DELETE resolution ambiguous.
func TestOperatorConcurrentDuplicateSubmits(t *testing.T) {
	pool := serve.New(serve.Config{})
	dir := t.TempDir()
	_, srv := newOperatorServer(t, pool, dir, fleet.NewFakeClock())

	const fleetB = `{"env":"Hybrid","nodes":8}`
	for round := 0; round < 8; round++ {
		id := fmt.Sprintf("dup-%d", round)
		bodies := []string{
			opJobBody(id, 8, ""),
			fmt.Sprintf(`{"fleet":%s,"job":{"id":%q,"gpus":8,"iterations":1,"model":{"group":1}}}`, fleetB, id),
		}
		codes := make([]int, len(bodies))
		var wg sync.WaitGroup
		for i := range bodies {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(bodies[i]))
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				codes[i] = resp.StatusCode
			}(i)
		}
		wg.Wait()
		ok, conflict := 0, 0
		for _, c := range codes {
			switch c {
			case http.StatusOK:
				ok++
			case http.StatusConflict:
				conflict++
			}
		}
		if ok != 1 || conflict != 1 {
			t.Fatalf("round %d: concurrent duplicate submits returned %v, want exactly one 200 and one 409", round, codes)
		}
	}
}

// TestOperatorModeRecovery is the serve-layer crash-recovery contract:
// kill a daemon cold, start a fresh one on the same journal dir, and
// the fleet is back — same policy, same jobs, same placements.
func TestOperatorModeRecovery(t *testing.T) {
	pool := serve.New(serve.Config{})
	dir := t.TempDir()
	clock := fleet.NewFakeClock()
	s1, srv1 := newOperatorServer(t, pool, dir, clock)

	code, body := post(t, srv1, "/v1/jobs", opJobBody("alpha", 16, "edf"))
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	var before JobResponse
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	code, body = post(t, srv1, "/v1/jobs", opJobBody("beta", 8, ""))
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	// Kill cold: no retirement, no final snapshot — only the journal.
	srv1.Close()
	if err := s1.AbortOperators(); err != nil {
		t.Fatal(err)
	}

	_, srv2 := newOperatorServer(t, pool, dir, fleet.NewFakeClock())
	code, body = do(t, http.MethodGet, srv2.URL+"/v1/jobs/alpha", "")
	if code != http.StatusOK {
		t.Fatalf("poll after recovery: %d %s", code, body)
	}
	var after JobResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.Policy != "edf" || after.Jobs != 2 {
		t.Fatalf("recovered fleet policy=%q jobs=%d, want edf/2", after.Policy, after.Jobs)
	}
	b1, _ := json.Marshal(before.Placement)
	b2, _ := json.Marshal(after.Placement)
	if string(b1) != string(b2) {
		t.Fatalf("placement diverged across recovery:\nbefore: %s\nafter:  %s", b1, b2)
	}
}
