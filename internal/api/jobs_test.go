package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"holmes/internal/config"
	"holmes/internal/engine"
	"holmes/internal/fleet"
	"holmes/internal/serve"
)

const jobFleet = `{"env":"Hybrid","nodes":4}`

func jobBody(id string, gpus int, group int) string {
	return fmt.Sprintf(`{"fleet":%s,"job":{"id":%q,"gpus":%d,"model":{"group":%d}}}`, jobFleet, id, gpus, group)
}

// do issues one request with an arbitrary method.
func do(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestJobsLifecycle(t *testing.T) {
	srv := newTestServer(t)

	// Submit: the job lands with a concrete placement.
	code, body := post(t, srv, "/v1/jobs", jobBody("alpha", 16, 1))
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Jobs != 1 || len(jr.Placement.Nodes) != 2 || jr.Placement.Unplaced != "" {
		t.Fatalf("submit response: %+v", jr)
	}
	if jr.Makespan <= 0 || jr.Placement.Throughput <= 0 {
		t.Fatalf("empty schedule summary: %+v", jr)
	}

	// Duplicate ID is a conflict, across any fleet.
	code, body = post(t, srv, "/v1/jobs", jobBody("alpha", 8, 1))
	if code != http.StatusConflict {
		t.Fatalf("duplicate submit: %d %s", code, body)
	}

	// Poll: bit-identical to the submit answer while the set is unchanged.
	code, poll := do(t, http.MethodGet, srv.URL+"/v1/jobs/alpha", "")
	if code != http.StatusOK {
		t.Fatalf("poll: %d %s", code, poll)
	}
	var pr JobResponse
	if err := json.Unmarshal(poll, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Placement.JobID != "alpha" || pr.Placement.Start != jr.Placement.Start {
		t.Fatalf("poll drifted from submit: %+v vs %+v", pr.Placement, jr.Placement)
	}

	// A second job contends deterministically.
	code, body = post(t, srv, "/v1/jobs", jobBody("beta", 32, 2))
	if code != http.StatusOK {
		t.Fatalf("second submit: %d %s", code, body)
	}

	// List: one fleet, two jobs.
	code, list := do(t, http.MethodGet, srv.URL+"/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, list)
	}
	var fr FleetsResponse
	if err := json.Unmarshal(list, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Fleets) != 1 || fr.Fleets[0].Jobs != 2 || len(fr.Fleets[0].Schedule.Jobs) != 2 {
		t.Fatalf("list response: %s", list)
	}

	// Cancel: the job disappears; polling and re-cancelling answer 404.
	code, body = do(t, http.MethodDelete, srv.URL+"/v1/jobs/alpha", "")
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, body)
	}
	var cr CancelResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Canceled || cr.Jobs != 1 {
		t.Fatalf("cancel response: %+v", cr)
	}
	if code, _ = do(t, http.MethodGet, srv.URL+"/v1/jobs/alpha", ""); code != http.StatusNotFound {
		t.Fatalf("poll after cancel: %d", code)
	}
	if code, _ = do(t, http.MethodDelete, srv.URL+"/v1/jobs/alpha", ""); code != http.StatusNotFound {
		t.Fatalf("double cancel: %d", code)
	}

	// The ID is free again after cancellation.
	if code, body = post(t, srv, "/v1/jobs", jobBody("alpha", 8, 1)); code != http.StatusOK {
		t.Fatalf("resubmit after cancel: %d %s", code, body)
	}

	// Cancelling a fleet's last job retires the fleet entirely: it stops
	// counting against the daemon's fleet limit and disappears from the
	// listing.
	for _, id := range []string{"alpha", "beta"} {
		if code, body = do(t, http.MethodDelete, srv.URL+"/v1/jobs/"+id, ""); code != http.StatusOK {
			t.Fatalf("drain cancel %s: %d %s", id, code, body)
		}
	}
	code, list = do(t, http.MethodGet, srv.URL+"/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list after drain: %d %s", code, list)
	}
	fr = FleetsResponse{}
	if err := json.Unmarshal(list, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Fleets) != 0 {
		t.Fatalf("drained fleet still registered: %s", list)
	}
}

// soakJob renders client c's job j with deterministic parameters: the
// final schedule must be a pure function of the surviving set, so every
// field is derived from the IDs.
func soakJob(c, j int) fleet.Job {
	return fleet.Job{
		ID:         fmt.Sprintf("c%02d-j%d", c, j),
		Submit:     float64((c + j) % 4),
		GPUs:       8 * (1 + (c+j)%2),
		Iterations: 1 + c%2,
		Model:      config.ModelConfig{Group: 1 + (c+j)%2},
	}
}

// TestJobsDeterminismSoak is the fleet scheduler's concurrency wall: 32
// clients submit, poll, and cancel jobs against a 4-shard pool under
// -race, while a sampler watches /v1/stats mid-storm. Afterwards the
// served schedule must be bit-identical to a sequential replay of the
// surviving job set on a fresh engine — the interleaving, the shard
// count, and the storm must leave no trace in the answer.
func TestJobsDeterminismSoak(t *testing.T) {
	pool := serve.New(serve.Config{Shards: 4, MaxInFlight: 32, MaxQueue: 1024})
	srv := newPoolServer(t, pool)
	const clients = 32

	// submitRetry posts with retry on 429: backpressure is the system
	// working, and the client's job must still land.
	request := func(method, path, body string) (int, []byte) {
		for attempt := 0; ; attempt++ {
			req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return 0, nil
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return 0, nil
			}
			var buf []byte
			tmp := make([]byte, 4096)
			for {
				n, rerr := resp.Body.Read(tmp)
				buf = append(buf, tmp[:n]...)
				if rerr != nil {
					break
				}
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests && attempt < 50 {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return resp.StatusCode, buf
		}
	}

	// Mid-storm sampler: the jobs endpoints' counters must be monotone
	// and error-free at every observation.
	stopSampling := make(chan struct{})
	var sampling sync.WaitGroup
	type obs struct{ jobs, job, errors uint64 }
	var samples []obs
	sampling.Add(1)
	go func() {
		defer sampling.Done()
		for {
			select {
			case <-stopSampling:
				return
			case <-time.After(25 * time.Millisecond):
			}
			code, raw := request(http.MethodGet, "/v1/stats", "")
			if code != http.StatusOK {
				t.Errorf("stats during soak: %d %s", code, raw)
				return
			}
			var sr StatsResponse
			if err := json.Unmarshal(raw, &sr); err != nil {
				t.Errorf("stats decode during soak: %v", err)
				return
			}
			var o obs
			if ep, ok := sr.Serve.Endpoints[epJobs]; ok {
				o.jobs = ep.Requests
				o.errors += ep.Errors
			}
			if ep, ok := sr.Serve.Endpoints[epJob]; ok {
				o.job = ep.Requests
				o.errors += ep.Errors
			}
			samples = append(samples, o)
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Submit two jobs, poll both, cancel the second.
			for j := 0; j < 2; j++ {
				jb, _ := json.Marshal(soakJob(c, j))
				code, body := request(http.MethodPost, "/v1/jobs", fmt.Sprintf(`{"fleet":%s,"job":%s}`, jobFleet, jb))
				if code != http.StatusOK {
					t.Errorf("client %d submit %d: %d %s", c, j, code, body)
					return
				}
			}
			for round := 0; round < 3; round++ {
				for j := 0; j < 2; j++ {
					code, body := request(http.MethodGet, "/v1/jobs/"+soakJob(c, j).ID, "")
					if code != http.StatusOK {
						t.Errorf("client %d poll %d: %d %s", c, j, code, body)
						return
					}
				}
			}
			code, body := request(http.MethodDelete, "/v1/jobs/"+soakJob(c, 1).ID, "")
			if code != http.StatusOK {
				t.Errorf("client %d cancel: %d %s", c, code, body)
			}
		}(c)
	}
	wg.Wait()
	close(stopSampling)
	sampling.Wait()
	if t.Failed() {
		return
	}

	if len(samples) == 0 {
		t.Fatal("no stats samples collected during soak")
	}
	for i, s := range samples {
		if s.errors != 0 {
			t.Fatalf("sample %d: jobs endpoints reported %d errors mid-storm", i, s.errors)
		}
		if i > 0 && (s.jobs < samples[i-1].jobs || s.job < samples[i-1].job) {
			t.Fatalf("jobs counters regressed between samples %d and %d: %+v -> %+v",
				i-1, i, samples[i-1], s)
		}
	}

	// The surviving set: every client's job 0.
	var jobs []fleet.Job
	for c := 0; c < clients; c++ {
		jobs = append(jobs, soakJob(c, 0))
	}
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})

	// Served schedule after the storm.
	code, raw := request(http.MethodGet, "/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("final list: %d %s", code, raw)
	}
	var fr FleetsResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Fleets) != 1 || fr.Fleets[0].Jobs != clients {
		t.Fatalf("final fleet state: %s", raw)
	}
	served, err := json.Marshal(fr.Fleets[0].Schedule)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential replay of the same trace on a fresh single engine.
	sched, err := fleet.Replay(engine.New(engine.Config{}), &fleet.Trace{
		Fleet: fleet.Spec{Env: "Hybrid", Nodes: 4},
		Jobs:  jobs,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	if string(served) != string(replayed) {
		t.Fatalf("storm schedule differs from sequential replay:\nserved:   %s\nreplayed: %s", served, replayed)
	}
	t.Logf("soak: %d clients, schedule of %d jobs bit-identical to sequential replay (makespan %.2fs, utilization %.1f%%)",
		clients, len(sched.Jobs), sched.Makespan, 100*sched.Utilization)
}
