package api

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"holmes/internal/engine"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServer(engine.New(engine.Config{})).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

const planBody = `{"env":"Hybrid","nodes":8,"model":{"group":3},"tensor_size":1,"pipeline_size":4}`

func TestHealthz(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Concurrency < 1 {
		t.Fatalf("health: %+v", h)
	}
}

func TestPlanEndpoint(t *testing.T) {
	srv := newTestServer(t)
	code, body := post(t, srv, "/v1/plan", planBody)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var p PlanResponse
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Degrees != (DegreesJSON{Tensor: 1, Pipeline: 4, Data: 16}) {
		t.Fatalf("degrees %+v", p.Degrees)
	}
	if p.Report.TFLOPS <= 0 || p.Report.Throughput <= 0 {
		t.Fatalf("empty report: %+v", p.Report)
	}
	if p.CommBytes["data"] <= 0 {
		t.Fatalf("no DP communication estimate: %+v", p.CommBytes)
	}
	// Holmes on a hybrid topology keeps every DP group on RDMA.
	if p.DPGroupsByNIC["Ethernet"] != 0 {
		t.Fatalf("DP groups leaked onto Ethernet: %+v", p.DPGroupsByNIC)
	}
}

// Planning must answer correctly for >= 8 parallel clients on one shared
// engine: every response is bit-identical (the simulation is
// deterministic and request handling shares no mutable state). Run under
// -race in CI.
func TestPlanConcurrentClientsIdentical(t *testing.T) {
	srv := newTestServer(t)
	const clients = 12
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], err = io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d saw a different plan:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
}

// Mixed concurrent traffic — plans, searches, experiments, health — on
// one shared engine must all succeed (the -race arm of the multi-tenant
// claim).
func TestMixedConcurrentTraffic(t *testing.T) {
	srv := newTestServer(t)
	reqs := []struct {
		method, path, body string
	}{
		{"POST", "/v1/plan", planBody},
		{"POST", "/v1/plan", `{"env":"InfiniBand","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2}`},
		{"POST", "/v1/search", `{"env":"Hybrid","nodes":4,"model":{"group":1}}`},
		{"POST", "/v1/experiments/table1", ""},
		{"GET", "/healthz", ""},
		{"POST", "/v1/plan", planBody},
		{"POST", "/v1/experiments/fig6", ""},
		{"GET", "/healthz", ""},
	}
	var wg sync.WaitGroup
	for i, rq := range reqs {
		i, rq := i, rq
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp *http.Response
			var err error
			if rq.method == "GET" {
				resp, err = http.Get(srv.URL + rq.path)
			} else {
				resp, err = http.Post(srv.URL+rq.path, "application/json", strings.NewReader(rq.body))
			}
			if err != nil {
				t.Errorf("req %d %s: %v", i, rq.path, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				t.Errorf("req %d %s: status %d: %s", i, rq.path, resp.StatusCode, b)
			}
		}()
	}
	wg.Wait()
}

func TestSearchEndpoint(t *testing.T) {
	srv := newTestServer(t)
	code, body := post(t, srv, "/v1/search", `{"env":"Hybrid","nodes":8,"model":{"group":3}}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.CellsExplored < 4 || len(sr.Cells) != sr.CellsExplored {
		t.Fatalf("search space: %d cells, %d listed", sr.CellsExplored, len(sr.Cells))
	}
	// The paper fixes t=1; the honest TP cost keeps the joint winner there.
	if sr.Winner.Degrees.Tensor != 1 {
		t.Fatalf("winner %+v", sr.Winner.Degrees)
	}
	// Fixed degrees belong on /v1/plan.
	code, _ = post(t, srv, "/v1/search", planBody)
	if code != http.StatusBadRequest {
		t.Fatalf("search accepted fixed degrees: status %d", code)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	srv := newTestServer(t)
	code, body := post(t, srv, "/v1/experiments/table1", "")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var er ExperimentResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Experiment != "table1" || len(er.Rows) != 4 {
		t.Fatalf("experiment response: %s, %d rows", er.Experiment, len(er.Rows))
	}
	code, _ = post(t, srv, "/v1/experiments/bogus", "")
	if code != http.StatusNotFound {
		t.Fatalf("bogus experiment: status %d", code)
	}
}

func TestBadRequests(t *testing.T) {
	srv := newTestServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed JSON", `{"env":`},
		{"unknown field", `{"nope":1}`},
		{"missing degrees", `{"env":"Hybrid","nodes":8,"model":{"group":3}}`},
		{"env and clusters", `{"env":"Hybrid","nodes":4,"clusters":[{"nic":"RoCE","nodes":2}],"model":{"group":1},"tensor_size":1,"pipeline_size":2}`},
		{"unknown env", `{"env":"Carrier-Pigeon","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2}`},
		{"oversized topology", `{"env":"InfiniBand","nodes":2000000000,"model":{"group":1},"tensor_size":1,"pipeline_size":1}`},
		{"env with custom gpus_per_node", `{"env":"Hybrid","nodes":4,"gpus_per_node":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2}`},
	} {
		code, _ := post(t, srv, "/v1/plan", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
	// Valid config, infeasible degrees: 422.
	code, _ := post(t, srv, "/v1/plan", `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":3,"pipeline_size":2}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("infeasible degrees: status %d, want 422", code)
	}
}
