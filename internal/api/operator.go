package api

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"holmes/internal/fleet"
)

// Operator mode turns /v1/jobs from an in-memory scheduler into the
// always-on durable fleet layer: each fleet is a fleet.Operator — a
// wall-clock-driven manager behind an fsync'd journal — so submits are
// stamped with real time, completed work retires on its own, and a
// restarted daemon recovers every fleet from -journal-dir and resumes
// scheduling bit-identically to a process that never died.

// OperatorMode configures the durable fleet layer of a Server.
type OperatorMode struct {
	// JournalDir holds one journal (+ snapshot) per fleet, named by the
	// hash of the fleet's topology fingerprint. Required.
	JournalDir string
	// Policy is the scheduling policy for freshly created fleets
	// ("" = fleet.DefaultPolicy). Recovered fleets keep their own.
	Policy string
	// Clock drives every operator (nil = one shared real clock). Tests
	// inject a fleet.FakeClock.
	Clock fleet.Clock
	// SnapshotEvery bounds journal growth per fleet (0 = the operator
	// default).
	SnapshotEvery int
}

// journalName is the per-fleet journal filename: a fixed prefix plus
// the FNV-64a hash of the topology fingerprint (fingerprints themselves
// contain separators unfit for filenames).
func journalName(fp string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(fp))
	return fmt.Sprintf("fleet-%016x.journal", h.Sum64())
}

// EnableOperator switches the jobs surface to operator mode and
// recovers every fleet already journaled under mode.JournalDir.
// It must be called before the server takes traffic. Returns the
// number of fleets recovered.
func (s *Server) EnableOperator(mode OperatorMode) (int, error) {
	if mode.JournalDir == "" {
		return 0, fmt.Errorf("api: operator mode needs a journal directory")
	}
	if _, err := fleet.PolicyByName(mode.Policy); err != nil {
		return 0, err
	}
	if mode.Clock == nil {
		mode.Clock = fleet.NewRealClock()
	}
	if err := os.MkdirAll(mode.JournalDir, 0o755); err != nil {
		return 0, err
	}

	fr := &s.fleets
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.mode != nil {
		return 0, fmt.Errorf("api: operator mode already enabled")
	}

	names, err := filepath.Glob(filepath.Join(mode.JournalDir, "fleet-*.journal"))
	if err != nil {
		return 0, err
	}
	sort.Strings(names)
	recovered := 0
	for _, path := range names {
		spec, ok, err := fleet.PeekSpec(path, "")
		if err != nil {
			return recovered, fmt.Errorf("api: recovering %s: %w", path, err)
		}
		if !ok {
			continue // an empty journal file carries no fleet yet
		}
		topo, err := spec.Topology()
		if err != nil {
			return recovered, fmt.Errorf("api: recovering %s: %w", path, err)
		}
		fp := topo.Fingerprint()
		if _, dup := fr.ops[fp]; dup {
			return recovered, fmt.Errorf("api: journals %s and fleet %s describe the same topology", path, fp)
		}
		op, err := fleet.NewOperator(s.pool.ShardFor(fp), spec, fleet.OperatorConfig{
			Clock:         mode.Clock,
			Journal:       path,
			SnapshotEvery: mode.SnapshotEvery,
			Events:        s.events,
		})
		if err != nil {
			return recovered, fmt.Errorf("api: recovering %s: %w", path, err)
		}
		fr.ops[fp] = op
		recovered++
	}
	fr.mode = &mode
	return recovered, nil
}

// OperatorEnabled reports whether the jobs surface runs in operator
// mode.
func (s *Server) OperatorEnabled() bool {
	s.fleets.mu.Lock()
	defer s.fleets.mu.Unlock()
	return s.fleets.mode != nil
}

// CloseOperators cleanly shuts every operator down: retire what is
// retirable, cut a final snapshot, close the journals. Part of the
// graceful-shutdown path; a crash instead leaves journals the recovery
// path replays.
func (s *Server) CloseOperators() error {
	fr := &s.fleets
	fr.mu.Lock()
	ops := make([]*fleet.Operator, 0, len(fr.ops))
	for _, op := range fr.ops {
		ops = append(ops, op)
	}
	fr.mu.Unlock()
	var first error
	for _, op := range ops {
		if err := op.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AbortOperators drops every operator cold — journals close, but
// nothing retires and no snapshot is cut — leaving exactly the state a
// kill -9 leaves. The crash-recovery tests (and fast non-graceful
// teardowns) use it; production shutdown wants CloseOperators.
func (s *Server) AbortOperators() error {
	fr := &s.fleets
	fr.mu.Lock()
	ops := make([]*fleet.Operator, 0, len(fr.ops))
	for _, op := range fr.ops {
		ops = append(ops, op)
	}
	fr.mu.Unlock()
	var first error
	for _, op := range ops {
		if err := op.Abort(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// operatorFor resolves (or creates, when room allows) the operator
// owning the given fleet. Caller passes the validated topology
// fingerprint. The requested policy applies to fresh fleets and must
// match on existing ones (409 otherwise): a fleet has exactly one
// policy at a time, switching it is an operator action, not a
// side effect of a submit.
func (s *Server) operatorFor(fp string, spec fleet.Spec, policy string) (*fleet.Operator, error) {
	fr := &s.fleets
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if op, ok := fr.ops[fp]; ok {
		if policy != "" && policy != op.Policy() {
			return nil, errf(http.StatusConflict,
				"jobs: fleet %s schedules under policy %q; a submit cannot switch it to %q", fp, op.Policy(), policy)
		}
		return op, nil
	}
	if len(fr.ops) >= maxFleets {
		return nil, errf(http.StatusTooManyRequests, "jobs: daemon already manages %d fleets", maxFleets)
	}
	if policy == "" {
		policy = fr.mode.Policy
	}
	op, err := fleet.NewOperator(s.pool.ShardFor(fp), spec, fleet.OperatorConfig{
		Clock:         fr.mode.Clock,
		Journal:       filepath.Join(fr.mode.JournalDir, journalName(fp)),
		Policy:        policy,
		SnapshotEvery: fr.mode.SnapshotEvery,
		Events:        s.events,
	})
	if err != nil {
		return nil, errf(http.StatusBadRequest, "jobs: %v", err)
	}
	fr.ops[fp] = op
	return op, nil
}

// operators snapshots the operator set ordered by fingerprint, the
// deterministic scan order for job-ID resolution (at most maxFleets
// entries, so a scan is bounded and cheap).
func (s *Server) operators() ([]string, map[string]*fleet.Operator) {
	fr := &s.fleets
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fps := make([]string, 0, len(fr.ops))
	ops := make(map[string]*fleet.Operator, len(fr.ops))
	for fp, op := range fr.ops {
		fps = append(fps, fp)
		ops[fp] = op
	}
	sort.Strings(fps)
	return fps, ops
}

// findOperatorJob resolves a job ID to its owning operator by scanning
// the (≤ maxFleets) operators in fingerprint order.
func (s *Server) findOperatorJob(id string) (*fleet.Operator, string, bool) {
	fps, ops := s.operators()
	for _, fp := range fps {
		if ops[fp].Has(id) {
			return ops[fp], fp, true
		}
	}
	return nil, "", false
}

// submitOperator admits one job in operator mode. The whole
// check-then-submit runs under the registry's submit lock: the
// uniqueness scan and the submit it authorizes are one atomic step.
func (s *Server) submitOperator(w http.ResponseWriter, req JobRequest, fp string) {
	s.fleets.submitMu.Lock()
	defer s.fleets.submitMu.Unlock()
	// Global job-ID uniqueness across fleets, like the registry map in
	// manager mode. Same-fleet duplicates fall through to the operator's
	// own (journal-consistent) check.
	if _, owner, ok := s.findOperatorJob(req.Job.ID); ok && owner != fp {
		writeError(w, http.StatusConflict, "jobs: job %q already exists in fleet %s", req.Job.ID, owner)
		return
	}
	op, err := s.operatorFor(fp, req.Fleet, req.Policy)
	if err != nil {
		writeError(w, errStatus(err), "%s", err)
		return
	}
	if op.Len() >= fleet.MaxJobs {
		writeError(w, http.StatusTooManyRequests, "jobs: fleet already holds %d jobs (the per-fleet limit)", fleet.MaxJobs)
		return
	}
	if err := op.Submit(req.Job); err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already") {
			status = http.StatusConflict
		}
		writeError(w, status, "jobs: %v", err)
		return
	}
	s.writeOperatorJob(w, op, fp, req.Job.ID)
}

// writeOperatorJob answers with one job's placement, wall-clock state,
// and the owning fleet's schedule summary.
func (s *Server) writeOperatorJob(w http.ResponseWriter, op *fleet.Operator, fp, id string) {
	st, ok, err := op.Job(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "jobs: %v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "jobs: no such job %q", id)
		return
	}
	sched, err := op.Schedule()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "jobs: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, JobResponse{
		Fleet:       fp,
		Jobs:        op.Len(),
		Placement:   st.Placement,
		State:       st.State,
		Now:         op.Now(),
		Policy:      op.Policy(),
		Makespan:    sched.Makespan,
		Utilization: sched.Utilization,
	})
}

// getOperatorJob answers GET /v1/jobs/{id} in operator mode: live and
// retired jobs both resolve (a client polling a finished job sees
// state "done" with its final placement, not a 404).
func (s *Server) getOperatorJob(w http.ResponseWriter, id string) {
	op, fp, ok := s.findOperatorJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, "jobs: no such job %q", id)
		return
	}
	s.writeOperatorJob(w, op, fp, id)
}

// cancelOperatorJob answers DELETE /v1/jobs/{id} in operator mode.
// Retired jobs refuse with 409: their outcome is history, not
// cancellable work.
func (s *Server) cancelOperatorJob(w http.ResponseWriter, id string) {
	op, _, ok := s.findOperatorJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, "jobs: no such job %q", id)
		return
	}
	canceled, err := op.Cancel(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "jobs: %v", err)
		return
	}
	if !canceled {
		writeError(w, http.StatusConflict, "jobs: job %q already ran to completion", id)
		return
	}
	writeJSON(w, http.StatusOK, CancelResponse{Job: id, Canceled: true, Jobs: op.Len()})
}

// listOperatorFleets answers GET /v1/jobs in operator mode: every
// fleet's live schedule plus its policy, wall clock, and retired-job
// count.
func (s *Server) listOperatorFleets(w http.ResponseWriter) {
	fps, ops := s.operators()
	resp := FleetsResponse{Version: Version, Fleets: []FleetSchedule{}}
	for _, fp := range fps {
		op := ops[fp]
		sched, err := op.Schedule()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "jobs: fleet %s: %v", fp, err)
			return
		}
		resp.Fleets = append(resp.Fleets, FleetSchedule{
			Fleet:    fp,
			Jobs:     op.Len(),
			Schedule: sched,
			Policy:   op.Policy(),
			Now:      op.Now(),
			Done:     len(op.Done()),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
