package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

const simulateBody = `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2}`

func TestSimulateEndpointPristine(t *testing.T) {
	srv := newTestServer(t)
	code, body := post(t, srv, "/v1/simulate", simulateBody)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var r SimulateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Degrees.Tensor != 1 || r.Degrees.Pipeline != 2 || r.Report.Throughput <= 0 {
		t.Fatalf("response: %+v", r)
	}
	if r.Scenario != "" || r.ScenarioEvents != 0 {
		t.Fatalf("pristine run reports a scenario: %+v", r)
	}
}

func TestSimulateEndpointUnderScenario(t *testing.T) {
	srv := newTestServer(t)
	_, pristineBody := post(t, srv, "/v1/simulate", simulateBody)
	var pristine SimulateResponse
	if err := json.Unmarshal(pristineBody, &pristine); err != nil {
		t.Fatal(err)
	}

	withSc := strings.TrimSuffix(simulateBody, "}") +
		`,"scenario":{"name":"nic-fault","events":[{"kind":"fail_node","at":0,"node":0}]}}`
	code, body := post(t, srv, "/v1/simulate", withSc)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var r SimulateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "nic-fault" || r.ScenarioEvents != 1 {
		t.Fatalf("scenario not reported: %+v", r)
	}
	if !(r.Report.IterSeconds > pristine.Report.IterSeconds) {
		t.Fatalf("failed node did not increase step time: %v vs %v",
			r.Report.IterSeconds, pristine.Report.IterSeconds)
	}

	// An empty scenario is bit-identical to no scenario.
	empty := strings.TrimSuffix(simulateBody, "}") + `,"scenario":{}}`
	code, body = post(t, srv, "/v1/simulate", empty)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var e SimulateResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Report != pristine.Report {
		t.Fatalf("empty scenario not a no-op:\n%+v\n%+v", e.Report, pristine.Report)
	}
}

// TestSimulateEndpointImpairmentVocabulary drives /v1/simulate through
// the packet-impairment kinds: a lossy straggling fabric must be slower
// than pristine, a partition must bite the cross-cluster trunk, and a
// fixed scenario seed must make jittered runs reproducible.
func TestSimulateEndpointImpairmentVocabulary(t *testing.T) {
	srv := newTestServer(t)
	_, pristineBody := post(t, srv, "/v1/simulate", simulateBody)
	var pristine SimulateResponse
	if err := json.Unmarshal(pristineBody, &pristine); err != nil {
		t.Fatal(err)
	}

	impaired := strings.TrimSuffix(simulateBody, "}") + `,"scenario":{"name":"impaired","seed":11,"events":[
		{"kind":"loss","at":0,"node":0,"pct":20},
		{"kind":"delay","at":0,"node":1,"delay_ms":2,"direction":"both"},
		{"kind":"jitter","at":0,"node":1,"jitter_ms":0.5,"dist":"pareto"},
		{"kind":"straggler","at":0,"node":2,"factor":0.5}]}}`
	code, body := post(t, srv, "/v1/simulate", impaired)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var r SimulateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "impaired" || r.ScenarioEvents != 4 {
		t.Fatalf("scenario not reported: %+v", r)
	}
	if !(r.Report.IterSeconds > pristine.Report.IterSeconds) {
		t.Fatalf("lossy straggling fabric not slower: %v vs pristine %v",
			r.Report.IterSeconds, pristine.Report.IterSeconds)
	}

	// Same timeline and seed under a different name (to dodge the request
	// coalescer): the jittered report must reproduce bit for bit.
	again := strings.Replace(impaired, `"name":"impaired"`, `"name":"impaired-2"`, 1)
	code, body = post(t, srv, "/v1/simulate", again)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var r2 SimulateResponse
	if err := json.Unmarshal(body, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Report != r.Report {
		t.Fatalf("seeded jitter not reproducible:\n%+v\n%+v", r.Report, r2.Report)
	}

	// A partition saturates the cross-cluster trunk down to its failure
	// residual for the window; hybrid pipeline traffic must crawl.
	part := strings.TrimSuffix(simulateBody, "}") +
		`,"scenario":{"name":"split","events":[{"kind":"partition","at":0,"cluster":0,"peer":1,"until":1e6}]}}`
	code, body = post(t, srv, "/v1/simulate", part)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var p SimulateResponse
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if !(p.Report.IterSeconds > 10*pristine.Report.IterSeconds) {
		t.Fatalf("partition barely bit: %v vs pristine %v",
			p.Report.IterSeconds, pristine.Report.IterSeconds)
	}
}

func TestSimulateEndpointRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"missing degrees", `{"env":"Hybrid","nodes":4,"model":{"group":1}}`},
		{"invalid event", `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,
			"scenario":{"events":[{"kind":"degrade_nic","at":0,"factor":9}]}}`},
		{"unknown scenario field", `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,
			"scenario":{"events":[{"kind":"fail_node","at":0,"frobnicate":true}]}}`},
	}
	for _, tc := range cases {
		code, body := post(t, srv, "/v1/simulate", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", tc.name, code, body)
		}
	}

	// Out-of-range node targets are caught at bind time.
	code, body := post(t, srv, "/v1/simulate",
		`{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,
		  "scenario":{"events":[{"kind":"fail_node","at":0,"node":64}]}}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("out-of-range node: status %d (%s)", code, body)
	}

	// A timeline above the event budget is rejected before simulating.
	var evs []string
	for i := 0; i <= maxScenarioEvents; i++ {
		evs = append(evs, `{"kind":"fail_node","at":0,"node":0}`)
	}
	huge := fmt.Sprintf(`{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,
		"scenario":{"events":[%s]}}`, strings.Join(evs, ","))
	if code, body := post(t, srv, "/v1/simulate", huge); code != http.StatusBadRequest {
		t.Errorf("oversized timeline: status %d (%s)", code, body)
	}

	// Plan and search stay scenario-free surfaces.
	withSc := `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,
		"scenario":{"events":[{"kind":"fail_node","at":0,"node":0}]}}`
	if code, body := post(t, srv, "/v1/plan", withSc); code != http.StatusBadRequest {
		t.Errorf("plan accepted a scenario: status %d (%s)", code, body)
	}
	searchSc := `{"env":"Hybrid","nodes":4,"model":{"group":1},
		"scenario":{"events":[{"kind":"fail_node","at":0,"node":0}]}}`
	if code, body := post(t, srv, "/v1/search", searchSc); code != http.StatusBadRequest {
		t.Errorf("search accepted a scenario: status %d (%s)", code, body)
	}
}
