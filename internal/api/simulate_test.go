package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

const simulateBody = `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2}`

func TestSimulateEndpointPristine(t *testing.T) {
	srv := newTestServer(t)
	code, body := post(t, srv, "/v1/simulate", simulateBody)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var r SimulateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Degrees.Tensor != 1 || r.Degrees.Pipeline != 2 || r.Report.Throughput <= 0 {
		t.Fatalf("response: %+v", r)
	}
	if r.Scenario != "" || r.ScenarioEvents != 0 {
		t.Fatalf("pristine run reports a scenario: %+v", r)
	}
}

func TestSimulateEndpointUnderScenario(t *testing.T) {
	srv := newTestServer(t)
	_, pristineBody := post(t, srv, "/v1/simulate", simulateBody)
	var pristine SimulateResponse
	if err := json.Unmarshal(pristineBody, &pristine); err != nil {
		t.Fatal(err)
	}

	withSc := strings.TrimSuffix(simulateBody, "}") +
		`,"scenario":{"name":"nic-fault","events":[{"kind":"fail_node","at":0,"node":0}]}}`
	code, body := post(t, srv, "/v1/simulate", withSc)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var r SimulateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "nic-fault" || r.ScenarioEvents != 1 {
		t.Fatalf("scenario not reported: %+v", r)
	}
	if !(r.Report.IterSeconds > pristine.Report.IterSeconds) {
		t.Fatalf("failed node did not increase step time: %v vs %v",
			r.Report.IterSeconds, pristine.Report.IterSeconds)
	}

	// An empty scenario is bit-identical to no scenario.
	empty := strings.TrimSuffix(simulateBody, "}") + `,"scenario":{}}`
	code, body = post(t, srv, "/v1/simulate", empty)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var e SimulateResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Report != pristine.Report {
		t.Fatalf("empty scenario not a no-op:\n%+v\n%+v", e.Report, pristine.Report)
	}
}

func TestSimulateEndpointRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"missing degrees", `{"env":"Hybrid","nodes":4,"model":{"group":1}}`},
		{"invalid event", `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,
			"scenario":{"events":[{"kind":"degrade_nic","at":0,"factor":9}]}}`},
		{"unknown scenario field", `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,
			"scenario":{"events":[{"kind":"fail_node","at":0,"frobnicate":true}]}}`},
	}
	for _, tc := range cases {
		code, body := post(t, srv, "/v1/simulate", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", tc.name, code, body)
		}
	}

	// Out-of-range node targets are caught at bind time.
	code, body := post(t, srv, "/v1/simulate",
		`{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,
		  "scenario":{"events":[{"kind":"fail_node","at":0,"node":64}]}}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("out-of-range node: status %d (%s)", code, body)
	}

	// A timeline above the event budget is rejected before simulating.
	var evs []string
	for i := 0; i <= maxScenarioEvents; i++ {
		evs = append(evs, `{"kind":"fail_node","at":0,"node":0}`)
	}
	huge := fmt.Sprintf(`{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,
		"scenario":{"events":[%s]}}`, strings.Join(evs, ","))
	if code, body := post(t, srv, "/v1/simulate", huge); code != http.StatusBadRequest {
		t.Errorf("oversized timeline: status %d (%s)", code, body)
	}

	// Plan and search stay scenario-free surfaces.
	withSc := `{"env":"Hybrid","nodes":4,"model":{"group":1},"tensor_size":1,"pipeline_size":2,
		"scenario":{"events":[{"kind":"fail_node","at":0,"node":0}]}}`
	if code, body := post(t, srv, "/v1/plan", withSc); code != http.StatusBadRequest {
		t.Errorf("plan accepted a scenario: status %d (%s)", code, body)
	}
	searchSc := `{"env":"Hybrid","nodes":4,"model":{"group":1},
		"scenario":{"events":[{"kind":"fail_node","at":0,"node":0}]}}`
	if code, body := post(t, srv, "/v1/search", searchSc); code != http.StatusBadRequest {
		t.Errorf("search accepted a scenario: status %d (%s)", code, body)
	}
}
