package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// GET /v1/events is the push half of the observability surface: the
// operator's live event hub streamed as Server-Sent Events. Like
// /healthz and /v1/stats it rides outside admission — watching a
// saturated server is exactly when the stream matters — and it never
// costs the publishers anything: each connection owns one bounded hub
// subscription, and a client that stops reading long enough to fill
// it is disconnected (event: eof), not buffered without bound.
//
// Frames carry the hub sequence as the SSE id, the event kind as the
// SSE event name, and the events.Event JSON as data:
//
//	id: 7
//	event: job
//	data: {"seq":7,"at":42.5,"kind":"job","fleet":"…","job":"w1","state":"running"}
//
// ?fleet=<fingerprint> narrows the stream to one fleet.

// heartbeatEvery paces SSE keep-alive comments: often enough that
// idle connections survive proxy idle timeouts, rare enough to be
// free. Heartbeats also surface dead clients — the write fails and
// the handler releases the subscription.
const heartbeatEvery = 15 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	fleetFilter := r.URL.Query().Get("fleet")
	sub := s.events.Subscribe(0)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	// The retry hint doubles as the first flushed bytes, so clients
	// (and tests) observe the stream is live before any event fires.
	fmt.Fprint(w, "retry: 2000\n\n")
	if err := rc.Flush(); err != nil {
		return
	}

	heartbeat := time.NewTicker(heartbeatEvery)
	defer heartbeat.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return // client went away; Close above frees the slot
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case ev, ok := <-sub.Events():
			if !ok {
				// Evicted for falling behind, or the hub shut down.
				// Say goodbye in-band so the client can tell a cut
				// stream from a dead server.
				fmt.Fprint(w, "event: eof\ndata: {\"reason\":\"stream closed\"}\n\n")
				return
			}
			if fleetFilter != "" && ev.Fleet != fleetFilter {
				continue
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue // a plain data struct; cannot happen
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}
