package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"holmes/internal/config"
	"holmes/internal/pool"
)

// POST /v1/plan/batch answers up to maxBatchItems heterogeneous
// plan/search/simulate specs in one round trip. Items are mutually
// independent: they fan out over the shard pool (each on the shard
// owning its topology), results come back in input order, and one item's
// failure is reported in its slot without failing the batch. The whole
// batch occupies a single admission slot — a 256-item batch is one unit
// of backpressure, not 256.

// maxBatchItems bounds one batch request.
const maxBatchItems = 256

// maxBatchBodyBytes bounds the batch envelope: maxBatchItems times a
// generous per-item config size.
const maxBatchBodyBytes = maxBatchItems * (16 << 10)

// BatchRequest is the envelope of /v1/plan/batch.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchItem is one spec of a batch: an operation plus the same
// config.Config body the corresponding single-request endpoint takes.
type BatchItem struct {
	// Op selects the operation: "plan", "search", or "simulate".
	Op     string          `json:"op"`
	Config json.RawMessage `json:"config"`
}

// BatchItemResult is one slot of a batch response; exactly one of Plan,
// Search, Simulate, or Error is set, and Index always echoes the item's
// input position.
type BatchItemResult struct {
	Index    int               `json:"index"`
	Plan     *PlanResponse     `json:"plan,omitempty"`
	Search   *SearchResponse   `json:"search,omitempty"`
	Simulate *SimulateResponse `json:"simulate,omitempty"`
	// Error and Status report a per-item failure with the HTTP status the
	// single-request endpoint would have answered.
	Error  string `json:"error,omitempty"`
	Status int    `json:"status,omitempty"`
}

// BatchResponse is the outcome of /v1/plan/batch. The HTTP status is 200
// whenever the envelope was well-formed; per-item failures live in
// Results with Errors counting them.
type BatchResponse struct {
	Count   int               `json:"count"`
	Errors  int               `json:"errors"`
	Results []BatchItemResult `json:"results"`
}

// batchJob is one decoded, validated batch item ready to execute.
type batchJob struct {
	op  string
	cfg *config.Config
	key string // canonical (op, config) identity, for duplicate detection
}

// parseBatch decodes and validates a batch envelope: strict JSON, item
// count in [1, maxBatchItems], every op known, every config decodable
// under the single-request rules (strict fields, node and scenario
// bounds), and no two items identical — a duplicate item is a client bug
// that would silently waste a result slot, so it is rejected by name
// rather than answered twice.
func parseBatch(r io.Reader) ([]batchJob, error) {
	var req BatchRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	if len(req.Items) == 0 {
		return nil, fmt.Errorf("batch: empty batch (need 1..%d items)", maxBatchItems)
	}
	if len(req.Items) > maxBatchItems {
		return nil, fmt.Errorf("batch: %d items exceeds the per-request limit of %d", len(req.Items), maxBatchItems)
	}
	jobs := make([]batchJob, len(req.Items))
	seen := make(map[string]int, len(req.Items))
	for i, item := range req.Items {
		switch item.Op {
		case "plan", "search", "simulate":
		case "":
			return nil, fmt.Errorf("batch: item %d has no op (want plan, search, or simulate)", i)
		default:
			return nil, fmt.Errorf("batch: item %d has unknown op %q (want plan, search, or simulate)", i, item.Op)
		}
		if len(item.Config) == 0 {
			return nil, fmt.Errorf("batch: item %d has no config", i)
		}
		c, err := config.Load(bytes.NewReader(item.Config))
		if err != nil {
			return nil, fmt.Errorf("batch: item %d: %w", i, err)
		}
		if err := checkBounds(c); err != nil {
			return nil, fmt.Errorf("batch: item %d: %w", i, err)
		}
		key := coalesceKey(item.Op, c)
		if j, dup := seen[key]; dup {
			return nil, fmt.Errorf("batch: items %d and %d are identical (op %s); send distinct items, duplicates would waste result slots", j, i, item.Op)
		}
		seen[key] = i
		jobs[i] = batchJob{op: item.Op, cfg: c, key: key}
	}
	return jobs, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	defer body.Close()
	jobs, err := parseBatch(body)
	if err != nil {
		writeError(w, decodeStatus(err), "%v", err)
		return
	}
	resp := BatchResponse{Count: len(jobs), Results: make([]BatchItemResult, len(jobs))}
	// Fan the items over the pool's total worker budget. Results land at
	// their input index, so ordering never depends on scheduling; item
	// failures land in their slot as (status, error).
	workers := s.pool.Concurrency()
	pool.Run(len(jobs), workers, func(i int) {
		res := BatchItemResult{Index: i}
		var opErr error
		switch jobs[i].op {
		case "plan":
			res.Plan, opErr = s.runPlan(epBatch, jobs[i].cfg)
		case "search":
			res.Search, opErr = s.runSearch(epBatch, jobs[i].cfg)
		case "simulate":
			res.Simulate, opErr = s.runSimulate(epBatch, jobs[i].cfg)
		}
		if opErr != nil {
			res.Error = opErr.Error()
			res.Status = errStatus(opErr)
		}
		resp.Results[i] = res
	})
	for _, res := range resp.Results {
		if res.Error != "" {
			resp.Errors++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
