package serve

import "holmes/internal/engine"

// Pool-level snapshot plumbing: the serving layer owns the fan-out of
// cache persistence across shards. Plan-cache entries carry a routing
// key (the topology fingerprint), so a restored entry lands on the shard
// that will actually look it up; response-cache entries are re-keyed by
// the API layer, which owns the key format (see internal/api/snapshot.go).

// ResponseEntry is one live response-cache pair.
type ResponseEntry struct {
	Key string
	Val any
}

// ResponseEntries returns the response cache's pairs ordered least- to
// most-recently used, so replaying them through StoreResponse in order
// reproduces the recency order under the cache's normal bounds.
func (p *Pool) ResponseEntries() []ResponseEntry {
	c := &p.resp
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ResponseEntry, 0, len(c.m))
	for e := c.tail; e != nil; e = e.prev {
		out = append(out, ResponseEntry{Key: e.key, Val: e.val})
	}
	return out
}

// SnapshotPlans serializes every snapshot-able plan-cache entry across
// all shards (see engine.Engine.SnapshotPlans).
func (p *Pool) SnapshotPlans(codecs ...engine.PlanCodec) []engine.PlanSnapshotEntry {
	var out []engine.PlanSnapshotEntry
	for _, s := range p.shards {
		out = append(out, s.SnapshotPlans(codecs...)...)
	}
	return out
}

// LoadPlans decodes plan-cache snapshot entries and stores each on the
// shard its routing key hashes to — the shard that will serve its future
// lookups. Nothing is stored when any entry fails to decode.
func (p *Pool) LoadPlans(entries []engine.PlanSnapshotEntry, codecs ...engine.PlanCodec) (int, error) {
	decoded, err := engine.DecodePlans(entries, codecs...)
	if err != nil {
		return 0, err
	}
	for _, d := range decoded {
		p.ShardFor(d.Route).StorePlan(d.Key, d.Val)
	}
	return len(decoded), nil
}

// SearchStats aggregates the joint-search counters across shards.
func (p *Pool) SearchStats() engine.SearchStats {
	var agg engine.SearchStats
	for _, s := range p.shards {
		agg = agg.Add(s.SearchStats())
	}
	return agg
}
