package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"holmes/internal/metrics"
)

// Stats aggregates per-endpoint serving counters. Endpoints register
// lazily on first use; counting on the hot path is atomic increments and
// one histogram observation.
type Stats struct {
	start time.Time
	mu    sync.Mutex
	eps   map[string]*Endpoint
}

func newStats() *Stats {
	return &Stats{start: time.Now(), eps: make(map[string]*Endpoint)}
}

// Endpoint returns (creating on first use) the counter set for name.
func (s *Stats) Endpoint(name string) *Endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep, ok := s.eps[name]
	if !ok {
		ep = &Endpoint{}
		s.eps[name] = ep
	}
	return ep
}

// Endpoint carries one route's counters.
type Endpoint struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	rejected  atomic.Uint64
	coalesced atomic.Uint64
	cached    atomic.Uint64
	inFlight  atomic.Int64
	latency   metrics.Histogram
	window    rateWindow
}

// rateWindowSeconds is the span of the sliding throughput window. Long
// enough to smooth per-second jitter, short enough that a dashboard
// polling it tracks load changes within half a minute.
const rateWindowSeconds = 30

// rateWindow counts completions in per-second buckets over a trailing
// window. A ring of tagged buckets: each slot remembers which absolute
// second it counts, so stale slots cost nothing to expire — they are
// simply overwritten on write and skipped on read. The lifetime
// average this replaces read near zero during a live storm after an
// idle hour; the window reads the storm.
type rateWindow struct {
	mu    sync.Mutex
	secs  [rateWindowSeconds]int64  // absolute second each bucket counts
	hits  [rateWindowSeconds]uint64 // completions in that second
}

// observe counts one completion at the given instant.
func (w *rateWindow) observe(now time.Time) {
	sec := now.Unix()
	i := int(sec % rateWindowSeconds)
	w.mu.Lock()
	if w.secs[i] != sec {
		w.secs[i], w.hits[i] = sec, 0
	}
	w.hits[i]++
	w.mu.Unlock()
}

// rate reports completions per second over the trailing window ending
// at now. elapsed (seconds the endpoint has existed) shortens the
// divisor on a young server so the first seconds of traffic are not
// diluted by a window that has not filled yet.
func (w *rateWindow) rate(now time.Time, elapsed float64) float64 {
	sec := now.Unix()
	span := float64(rateWindowSeconds)
	if elapsed < span {
		span = elapsed
	}
	if span < 1 {
		span = 1
	}
	var total uint64
	w.mu.Lock()
	for i := range w.secs {
		if d := sec - w.secs[i]; d >= 0 && d < rateWindowSeconds {
			total += w.hits[i]
		}
	}
	w.mu.Unlock()
	return float64(total) / span
}

// Begin marks a request in flight and returns the completion callback:
// call it with the response status once the handler is done. Rejected
// (429) requests count separately from errors — backpressure is the
// system working, not the system failing.
func (e *Endpoint) Begin() func(status int) {
	e.inFlight.Add(1)
	start := time.Now()
	return func(status int) {
		e.inFlight.Add(-1)
		e.requests.Add(1)
		e.window.observe(time.Now())
		e.latency.Observe(time.Since(start))
		switch {
		case status == 429:
			e.rejected.Add(1)
		case status >= 400:
			e.errors.Add(1)
		}
	}
}

// Coalesced counts one request answered by sharing another request's
// in-flight computation.
func (e *Endpoint) Coalesced() { e.coalesced.Add(1) }

// Cached counts one request replayed from the completed-response cache.
func (e *Endpoint) Cached() { e.cached.Add(1) }

// EndpointSnapshot is the JSON shape of one endpoint's counters.
type EndpointSnapshot struct {
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	Rejected  uint64 `json:"rejected"`
	Coalesced uint64 `json:"coalesced,omitempty"`
	Cached    uint64 `json:"cached,omitempty"`
	InFlight  int64  `json:"in_flight"`
	// ThroughputRPS is completed requests per second over the trailing
	// 30-second window — the live rate a dashboard should render.
	ThroughputRPS float64 `json:"throughput_rps"`
	// ThroughputRPSLifetime is the old lifetime average (requests per
	// second of server uptime), kept under its own key for consumers
	// that graphed the historical figure.
	ThroughputRPSLifetime float64                   `json:"throughput_rps_lifetime"`
	Latency               metrics.HistogramSnapshot `json:"latency_ms"`
}

// StatsSnapshot is the JSON shape of GET /v1/stats and the serve block
// of /healthz.
type StatsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
}

// Snapshot captures every endpoint's counters at one instant.
func (s *Stats) Snapshot() StatsSnapshot {
	uptime := time.Since(s.start).Seconds()
	s.mu.Lock()
	eps := make(map[string]*Endpoint, len(s.eps))
	for name, ep := range s.eps {
		eps[name] = ep
	}
	s.mu.Unlock()

	snap := StatsSnapshot{UptimeSeconds: uptime, Endpoints: make(map[string]EndpointSnapshot, len(eps))}
	for name, ep := range eps {
		reqs := ep.requests.Load()
		es := EndpointSnapshot{
			Requests:  reqs,
			Errors:    ep.errors.Load(),
			Rejected:  ep.rejected.Load(),
			Coalesced: ep.coalesced.Load(),
			Cached:    ep.cached.Load(),
			InFlight:  ep.inFlight.Load(),
			Latency:   ep.latency.Snapshot(),
		}
		es.ThroughputRPS = ep.window.rate(time.Now(), uptime)
		if uptime > 0 {
			es.ThroughputRPSLifetime = float64(reqs) / uptime
		}
		snap.Endpoints[name] = es
	}
	return snap
}
