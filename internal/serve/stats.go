package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"holmes/internal/metrics"
)

// Stats aggregates per-endpoint serving counters. Endpoints register
// lazily on first use; counting on the hot path is atomic increments and
// one histogram observation.
type Stats struct {
	start time.Time
	mu    sync.Mutex
	eps   map[string]*Endpoint
}

func newStats() *Stats {
	return &Stats{start: time.Now(), eps: make(map[string]*Endpoint)}
}

// Endpoint returns (creating on first use) the counter set for name.
func (s *Stats) Endpoint(name string) *Endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep, ok := s.eps[name]
	if !ok {
		ep = &Endpoint{}
		s.eps[name] = ep
	}
	return ep
}

// Endpoint carries one route's counters.
type Endpoint struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	rejected  atomic.Uint64
	coalesced atomic.Uint64
	cached    atomic.Uint64
	inFlight  atomic.Int64
	latency   metrics.Histogram
}

// Begin marks a request in flight and returns the completion callback:
// call it with the response status once the handler is done. Rejected
// (429) requests count separately from errors — backpressure is the
// system working, not the system failing.
func (e *Endpoint) Begin() func(status int) {
	e.inFlight.Add(1)
	start := time.Now()
	return func(status int) {
		e.inFlight.Add(-1)
		e.requests.Add(1)
		e.latency.Observe(time.Since(start))
		switch {
		case status == 429:
			e.rejected.Add(1)
		case status >= 400:
			e.errors.Add(1)
		}
	}
}

// Coalesced counts one request answered by sharing another request's
// in-flight computation.
func (e *Endpoint) Coalesced() { e.coalesced.Add(1) }

// Cached counts one request replayed from the completed-response cache.
func (e *Endpoint) Cached() { e.cached.Add(1) }

// EndpointSnapshot is the JSON shape of one endpoint's counters.
type EndpointSnapshot struct {
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	Rejected  uint64 `json:"rejected"`
	Coalesced uint64 `json:"coalesced,omitempty"`
	Cached    uint64 `json:"cached,omitempty"`
	InFlight  int64  `json:"in_flight"`
	// ThroughputRPS is completed requests per second of server uptime.
	ThroughputRPS float64                   `json:"throughput_rps"`
	Latency       metrics.HistogramSnapshot `json:"latency_ms"`
}

// StatsSnapshot is the JSON shape of GET /v1/stats and the serve block
// of /healthz.
type StatsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
}

// Snapshot captures every endpoint's counters at one instant.
func (s *Stats) Snapshot() StatsSnapshot {
	uptime := time.Since(s.start).Seconds()
	s.mu.Lock()
	eps := make(map[string]*Endpoint, len(s.eps))
	for name, ep := range s.eps {
		eps[name] = ep
	}
	s.mu.Unlock()

	snap := StatsSnapshot{UptimeSeconds: uptime, Endpoints: make(map[string]EndpointSnapshot, len(eps))}
	for name, ep := range eps {
		reqs := ep.requests.Load()
		es := EndpointSnapshot{
			Requests:  reqs,
			Errors:    ep.errors.Load(),
			Rejected:  ep.rejected.Load(),
			Coalesced: ep.coalesced.Load(),
			Cached:    ep.cached.Load(),
			InFlight:  ep.inFlight.Load(),
			Latency:   ep.latency.Snapshot(),
		}
		if uptime > 0 {
			es.ThroughputRPS = float64(reqs) / uptime
		}
		snap.Endpoints[name] = es
	}
	return snap
}
