package serve

import (
	"testing"
	"time"
)

// The sliding window must decay: traffic that stopped half a minute
// ago reads as zero, not as a diluted lifetime average. Times are
// injected, so the test is exact.
func TestRateWindowDecay(t *testing.T) {
	var w rateWindow
	t0 := time.Unix(1_000_000, 0)
	for i := 0; i < 90; i++ { // a 3 rps burst for the full window
		w.observe(t0.Add(time.Duration(i%rateWindowSeconds) * time.Second))
	}
	if got := w.rate(t0.Add(29*time.Second), 3600); got != 3 {
		t.Fatalf("rate during burst = %g rps, want 3", got)
	}
	// 15s after the burst half the window still counts it...
	if got := w.rate(t0.Add(44*time.Second), 3600); got != 1.5 {
		t.Fatalf("rate 15s after burst = %g rps, want 1.5", got)
	}
	// ...and one full window after the last hit it is exactly zero.
	if got := w.rate(t0.Add((29+rateWindowSeconds)*time.Second), 3600); got != 0 {
		t.Fatalf("rate one window after burst = %g rps, want 0", got)
	}
	// New traffic after the idle gap reads at its live rate, not the
	// lifetime-diluted one the old figure reported.
	t1 := t0.Add(2 * time.Hour)
	for i := 0; i < 60; i++ {
		w.observe(t1)
		w.observe(t1.Add(time.Second))
	}
	if got := w.rate(t1.Add(time.Second), 2*3600); got != 4 {
		t.Fatalf("rate during fresh storm = %g rps, want 4 (120 hits / 30s)", got)
	}
}

// A young endpoint divides by its age, not the full window: three
// requests in the first second must not read as 0.1 rps.
func TestRateWindowYoungServer(t *testing.T) {
	var w rateWindow
	now := time.Unix(2_000_000, 0)
	for i := 0; i < 3; i++ {
		w.observe(now)
	}
	if got := w.rate(now, 1); got != 3 {
		t.Fatalf("rate on a 1s-old server = %g rps, want 3", got)
	}
	if got := w.rate(now, 0.2); got != 3 {
		t.Fatalf("sub-second elapsed must clamp to 1s: got %g rps, want 3", got)
	}
}
