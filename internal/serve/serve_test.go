package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"holmes/internal/comm"
	"holmes/internal/engine"
	"holmes/internal/parallel"
	"holmes/internal/topology"
)

func TestShardRoutingStable(t *testing.T) {
	p := New(Config{Shards: 4})
	q := New(Config{Shards: 4})
	keys := []string{
		topology.HybridEnv(8).Fingerprint(),
		topology.IBEnv(4).Fingerprint(),
		topology.RoCEEnv(6).Fingerprint(),
		topology.EthernetEnv(8).Fingerprint(),
	}
	used := map[int]bool{}
	for _, k := range keys {
		i := p.ShardIndex(k)
		if i < 0 || i >= 4 {
			t.Fatalf("shard index %d out of range", i)
		}
		if j := p.ShardIndex(k); j != i {
			t.Fatalf("unstable shard for %q: %d then %d", k, i, j)
		}
		// Two pools of the same width agree (a fleet shards identically).
		if j := q.ShardIndex(k); j != i {
			t.Fatalf("pools disagree on %q: %d vs %d", k, i, j)
		}
		if p.ShardFor(k) != p.Shard(i) {
			t.Fatal("ShardFor did not return the indexed shard")
		}
		used[i] = true
	}
	// Many distinct keys must not all collapse onto one shard.
	for n := 0; n < 64; n++ {
		used[p.ShardIndex(fmt.Sprintf("key-%d", n))] = true
	}
	if len(used) < 2 {
		t.Fatalf("68 keys landed on %d shard(s)", len(used))
	}
}

func TestPoolShardIsolation(t *testing.T) {
	p := New(Config{Shards: 2, ShardConcurrency: 3})
	if p.Shards() != 2 {
		t.Fatalf("shards %d", p.Shards())
	}
	if p.Concurrency() != 6 {
		t.Fatalf("total concurrency %d, want 6", p.Concurrency())
	}
	// Warming one shard's cache must not touch the other.
	topo := topology.HybridEnv(4)
	i := p.ShardIndex(topo.Fingerprint())
	deg := parallel.Degrees{T: 1, P: 2, D: topo.NumDevices() / 2}
	if _, _, err := p.Shard(i).World(topo, deg, comm.AutoSelection); err != nil {
		t.Fatal(err)
	}
	other := p.Shard(1 - i).CacheStats()
	if other.Misses != 0 || other.Size != 0 {
		t.Fatalf("other shard saw traffic: %+v", other)
	}
	agg := p.CacheStats()
	if agg.Size != 1 || agg.Misses != 1 {
		t.Fatalf("aggregate cache stats: %+v", agg)
	}
}

func TestFromEngineWrapsSharedEngine(t *testing.T) {
	eng := engine.New(engine.Config{Concurrency: 2})
	p := FromEngine(eng)
	if p.Shards() != 1 || p.Shard(0) != eng {
		t.Fatal("FromEngine must expose the given engine as the only shard")
	}
	if FromEngine(nil).Shard(0) != engine.Default() {
		t.Fatal("FromEngine(nil) must wrap the default engine")
	}
}

func TestCoalesceSharesOneExecution(t *testing.T) {
	p := New(Config{})
	const callers = 16
	var executions atomic.Int32
	var coalescedCount atomic.Int32
	release := make(chan struct{})
	vals := make([]any, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, coalesced, err := p.Coalesce("k", func() (any, error) {
				executions.Add(1)
				<-release // hold every other caller in flight
				return "answer", nil
			})
			if err != nil {
				t.Error(err)
			}
			if coalesced {
				coalescedCount.Add(1)
			}
			vals[i] = v
		}()
	}
	// Wait until the leader is inside fn, then let followers pile up.
	for executions.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if executions.Load() != 1 {
		t.Fatalf("fn executed %d times, want 1", executions.Load())
	}
	if coalescedCount.Load() != callers-1 {
		t.Fatalf("%d callers coalesced, want %d", coalescedCount.Load(), callers-1)
	}
	for i, v := range vals {
		if v != "answer" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	// The entry is gone once the flight lands: a new call re-executes.
	_, coalesced, _ := p.Coalesce("k", func() (any, error) { return "again", nil })
	if coalesced {
		t.Fatal("completed flight must not coalesce later callers")
	}
}

func TestCoalesceDistinctKeysIndependent(t *testing.T) {
	p := New(Config{})
	var n atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = p.Coalesce(fmt.Sprintf("k%d", i), func() (any, error) {
				n.Add(1)
				return i, nil
			})
		}()
	}
	wg.Wait()
	if n.Load() != 8 {
		t.Fatalf("distinct keys executed %d times, want 8", n.Load())
	}
}

func TestCoalesceErrorShared(t *testing.T) {
	p := New(Config{})
	boom := errors.New("boom")
	_, _, err := p.Coalesce("e", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
}

func TestCoalescePanicReleasesFollowers(t *testing.T) {
	p := New(Config{})
	entered := make(chan struct{})
	finish := make(chan struct{})
	followerDone := make(chan error, 1)
	go func() {
		defer func() { recover() }() // the leader's panic stays its own
		_, _, _ = p.Coalesce("p", func() (any, error) {
			close(entered)
			<-finish
			panic("leader died")
		})
	}()
	<-entered
	go func() {
		_, _, err := p.Coalesce("p", func() (any, error) { return "unused", nil })
		followerDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(finish)
	select {
	case err := <-followerDone:
		if err == nil {
			t.Fatal("follower of a panicked leader must observe an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower deadlocked after leader panic")
	}
	// The key must be free again.
	v, coalesced, err := p.Coalesce("p", func() (any, error) { return "fresh", nil })
	if err != nil || coalesced || v != "fresh" {
		t.Fatalf("key not released: v=%v coalesced=%v err=%v", v, coalesced, err)
	}
}

func TestAdmitBackpressure(t *testing.T) {
	p := New(Config{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 2 * time.Second})
	ctx := context.Background()
	release, ok := p.Admit(ctx)
	if !ok {
		t.Fatal("first admit")
	}
	if _, ok := p.Admit(ctx); ok {
		t.Fatal("saturated pool admitted a second request")
	}
	inFlight, queued, rejected, canceled := p.Gate()
	if inFlight != 1 || queued != 0 || rejected != 1 || canceled != 0 {
		t.Fatalf("gate (%d,%d,%d,%d), want (1,0,1,0)", inFlight, queued, rejected, canceled)
	}
	if p.RetryAfter() != 2*time.Second {
		t.Fatalf("retry-after %v", p.RetryAfter())
	}
	release()
	release2, ok := p.Admit(ctx)
	if !ok {
		t.Fatal("released slot must re-admit")
	}
	release2()
}

func TestStatsEndpointCounters(t *testing.T) {
	p := New(Config{})
	ep := p.Stats().Endpoint("plan")
	if ep != p.Stats().Endpoint("plan") {
		t.Fatal("endpoint registration must be idempotent")
	}
	done := ep.Begin()
	if got := p.Stats().Snapshot().Endpoints["plan"].InFlight; got != 1 {
		t.Fatalf("in-flight %d, want 1", got)
	}
	done(200)
	ep.Begin()(422)
	ep.Begin()(429)
	ep.Coalesced()
	s := p.Stats().Snapshot()
	es := s.Endpoints["plan"]
	if es.Requests != 3 || es.Errors != 1 || es.Rejected != 1 || es.Coalesced != 1 || es.InFlight != 0 {
		t.Fatalf("endpoint snapshot: %+v", es)
	}
	if es.Latency.Count != 3 {
		t.Fatalf("latency samples %d, want 3", es.Latency.Count)
	}
	if es.ThroughputRPS <= 0 || s.UptimeSeconds <= 0 {
		t.Fatalf("throughput/uptime not populated: %+v", es)
	}
}

func TestResponseCacheLRU(t *testing.T) {
	p := New(Config{ResponseCache: 2})
	if _, ok := p.CachedResponse("a"); ok {
		t.Fatal("empty cache answered")
	}
	p.StoreResponse("a", 1)
	p.StoreResponse("b", 2)
	if v, ok := p.CachedResponse("a"); !ok || v != 1 {
		t.Fatalf("a: %v %v", v, ok)
	}
	// a was just touched; storing c evicts b (the LRU), not a.
	p.StoreResponse("c", 3)
	if _, ok := p.CachedResponse("b"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if v, ok := p.CachedResponse("a"); !ok || v != 1 {
		t.Fatalf("hot entry evicted: %v %v", v, ok)
	}
	if v, ok := p.CachedResponse("c"); !ok || v != 3 {
		t.Fatalf("c: %v %v", v, ok)
	}
	st := p.ResponseCacheStats()
	if st.Size != 2 || st.Cap != 2 || st.Evictions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("hit/miss counters: %+v", st)
	}
	// Re-storing an existing key refreshes recency without growing.
	p.StoreResponse("a", 99)
	if v, _ := p.CachedResponse("a"); v != 1 {
		t.Fatalf("first store must win (determinism): %v", v)
	}
}

func TestResponseCacheDisabled(t *testing.T) {
	p := New(Config{ResponseCache: -1})
	p.StoreResponse("a", 1)
	if _, ok := p.CachedResponse("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
	if st := p.ResponseCacheStats(); st.Cap != 0 || st.Size != 0 {
		t.Fatalf("disabled cache stats: %+v", st)
	}
}

func TestConfigDefaults(t *testing.T) {
	p := New(Config{})
	if p.Shards() != 1 {
		t.Fatalf("default shards %d", p.Shards())
	}
	if p.RetryAfter() != time.Second {
		t.Fatalf("default retry-after %v", p.RetryAfter())
	}
	if p.cfg.MaxInFlight < 8 || p.cfg.MaxQueue < 64 {
		t.Fatalf("default admission too tight: %+v", p.cfg)
	}
}
