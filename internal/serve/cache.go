package serve

import "sync"

// Response cache: planning is deterministic and engines are immutable
// after construction, so a completed (op, config) answer can be replayed
// verbatim to every later identical request. Coalescing dedupes identical
// requests while one is in flight; this LRU dedupes them after it lands —
// together they make repeat traffic (the common case for a planning
// service: many users asking about the same clusters and models) cost one
// computation. Values are the response structs the API layer marshals;
// they are shared and must be treated as read-only, the same contract the
// engine's world cache already imposes.

// DefaultResponseCacheSize bounds the response cache when
// Config.ResponseCache is zero.
const DefaultResponseCacheSize = 4096

// respEntry is one cache node of the doubly-linked recency list.
type respEntry struct {
	key        string
	val        any
	prev, next *respEntry
}

// respCache is a bounded LRU from canonical request key to response.
type respCache struct {
	mu         sync.Mutex
	cap        int
	m          map[string]*respEntry
	head, tail *respEntry

	hits, misses, evictions uint64
}

func (c *respCache) init(capacity int) {
	c.cap = capacity
	c.m = make(map[string]*respEntry, min(capacity, 1024))
}

func (c *respCache) get(key string) (any, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.val, true
}

func (c *respCache) put(key string, val any) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		// A concurrent miss computed the same answer; keep the first.
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	if len(c.m) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions++
	}
	e := &respEntry{key: key, val: val}
	c.m[key] = e
	c.pushFront(e)
}

func (c *respCache) pushFront(e *respEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *respCache) unlink(e *respEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// ResponseCacheStats is a point-in-time snapshot of the response cache.
type ResponseCacheStats struct {
	Size      int    `json:"size"`
	Cap       int    `json:"cap"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *respCache) stats() ResponseCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResponseCacheStats{
		Size: len(c.m), Cap: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
