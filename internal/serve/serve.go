// Package serve is the throughput layer between the HTTP handlers
// (internal/api) and the planning engine (internal/engine): a sharded
// engine pool, an admission gate, and in-flight request coalescing.
//
// Sharding: a Pool owns N independent engine.Engine shards and routes
// each request to the shard picked by hashing its topology fingerprint.
// All requests about one topology land on one shard, so its communicator
// LRU stays hot for exactly that working set and shards never contend on
// a shared cache lock. Independent topologies spread across shards and
// scale with cores.
//
// Admission: a pool.Gate bounds how many requests execute at once and
// how many may wait; everything beyond that is rejected immediately so
// the caller can answer 429 with Retry-After instead of queueing without
// bound (see DESIGN.md decision 8).
//
// Coalescing: planning is deterministic, so two identical in-flight
// requests must produce identical answers — the pool executes the first
// and hands the same result to the rest (a single-flight group keyed by
// the canonical request). The key includes the full configuration, which
// already pins the shard, so coalesced callers always agree on the
// engine that answered.
package serve

import (
	"context"
	"errors"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"holmes/internal/engine"
	"holmes/internal/pool"
)

// Config fixes a Pool's shape at construction time.
type Config struct {
	// Shards is the number of independent engine shards (0 = 1).
	Shards int
	// ShardConcurrency bounds each shard's worker pool (0 = CPU count).
	ShardConcurrency int
	// ShardCacheSize bounds each shard's communicator cache (0 = engine
	// default, negative = disabled).
	ShardCacheSize int
	// FullRecompute runs every shard on the netsim full-recompute oracle.
	FullRecompute bool
	// MaxInFlight bounds concurrently admitted requests
	// (0 = max(8, 2×CPU count)).
	MaxInFlight int
	// MaxQueue bounds requests waiting for admission beyond MaxInFlight
	// (0 = 8×MaxInFlight, negative = no queue: reject the moment every
	// slot is taken). Requests beyond slots+queue are rejected.
	MaxQueue int
	// RetryAfter is the backoff hint attached to rejections (0 = 1s).
	RetryAfter time.Duration
	// ResponseCache bounds the completed-answer LRU shared by the
	// deterministic operations (0 = DefaultResponseCacheSize, negative =
	// disabled). See cache.go.
	ResponseCache int
}

// Pool routes requests over engine shards with admission control,
// coalescing, and per-endpoint statistics.
type Pool struct {
	cfg    Config
	shards []*engine.Engine
	gate   *pool.Gate
	stats  *Stats
	flight flightGroup
	resp   respCache
}

// New constructs a pool, normalizing zero config fields to defaults.
func New(cfg Config) *Pool {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = max(8, 2*runtime.NumCPU())
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 8 * cfg.MaxInFlight
	} else if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	respSize := cfg.ResponseCache
	if respSize == 0 {
		respSize = DefaultResponseCacheSize
	} else if respSize < 0 {
		respSize = 0
	}
	p := &Pool{cfg: cfg, gate: pool.NewGate(cfg.MaxInFlight, cfg.MaxQueue), stats: newStats()}
	p.resp.init(respSize)
	for i := 0; i < cfg.Shards; i++ {
		p.shards = append(p.shards, engine.New(engine.Config{
			Concurrency:   cfg.ShardConcurrency,
			CacheSize:     cfg.ShardCacheSize,
			FullRecompute: cfg.FullRecompute,
		}))
	}
	return p
}

// FromEngine wraps one prebuilt engine (nil = the shared default) as a
// single-shard pool with default admission limits — the compatibility
// path for api.NewServer.
func FromEngine(eng *engine.Engine) *Pool {
	if eng == nil {
		eng = engine.Default()
	}
	p := New(Config{Shards: 1})
	p.shards[0] = eng
	return p
}

// Shards reports the shard count.
func (p *Pool) Shards() int { return len(p.shards) }

// Shard returns shard i (observability and tests).
func (p *Pool) Shard(i int) *engine.Engine { return p.shards[i] }

// ShardIndex hashes a routing key (normally a topology fingerprint) to a
// shard index with FNV-1a. The mapping is stable across processes, so a
// fleet of servers shards identically.
func (p *Pool) ShardIndex(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(p.shards)))
}

// ShardFor returns the engine shard owning the routing key.
func (p *Pool) ShardFor(key string) *engine.Engine { return p.shards[p.ShardIndex(key)] }

// Concurrency reports the summed worker-pool bound across shards.
func (p *Pool) Concurrency() int {
	total := 0
	for _, s := range p.shards {
		total += s.Concurrency()
	}
	return total
}

// CacheStats aggregates the communicator-cache counters across shards.
func (p *Pool) CacheStats() engine.CacheStats {
	var agg engine.CacheStats
	for _, s := range p.shards {
		agg = agg.Add(s.CacheStats())
	}
	return agg
}

// PlanCacheStats aggregates the shared slice-plan-cache counters across
// shards (the fleet scheduler's memo — see engine.Engine.Plan).
func (p *Pool) PlanCacheStats() engine.CacheStats {
	var agg engine.CacheStats
	for _, s := range p.shards {
		agg = agg.Add(s.PlanCacheStats())
	}
	return agg
}

// Admit asks the gate for an execution slot. ok=false means the caller
// must shed the request (429); otherwise release must be called exactly
// once when the request finishes.
func (p *Pool) Admit(ctx context.Context) (release func(), ok bool) {
	if !p.gate.Enter(ctx) {
		return nil, false
	}
	return p.gate.Leave, true
}

// RetryAfter is the backoff hint for rejected requests.
func (p *Pool) RetryAfter() time.Duration { return p.cfg.RetryAfter }

// Gate exposes admission occupancy (observability). rejected counts
// true saturation; canceled counts clients that aborted while queued.
func (p *Pool) Gate() (inFlight, queued int, rejected, canceled uint64) {
	return p.gate.InFlight(), p.gate.Queued(), p.gate.Rejected(), p.gate.Canceled()
}

// Stats returns the pool's per-endpoint counters.
func (p *Pool) Stats() *Stats { return p.stats }

// CachedResponse returns the completed answer for a canonical request
// key, if the response cache holds one.
func (p *Pool) CachedResponse(key string) (any, bool) { return p.resp.get(key) }

// StoreResponse records a completed successful answer for replay. The
// stored value is shared with future callers and must never be mutated.
func (p *Pool) StoreResponse(key string, val any) { p.resp.put(key, val) }

// ResponseCacheStats reports response-cache occupancy and counters.
func (p *Pool) ResponseCacheStats() ResponseCacheStats { return p.resp.stats() }

// flightGroup coalesces identical in-flight computations: the first
// caller of a key runs fn, later callers of the same key block on the
// first result and share it. Entries exist only while the computation is
// in flight — completed results are the engine cache's job, not ours.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Coalesce executes fn once per concurrent set of identical keys.
// coalesced reports whether this caller shared another caller's result.
// The shared val must be treated as read-only by every receiver.
func (p *Pool) Coalesce(key string, fn func() (any, error)) (val any, coalesced bool, err error) {
	p.flight.mu.Lock()
	if p.flight.m == nil {
		p.flight.m = make(map[string]*flightCall)
	}
	if c, ok := p.flight.m[key]; ok {
		p.flight.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	p.flight.m[key] = c
	p.flight.mu.Unlock()

	// If fn panics, the deferred cleanup still releases the waiters (they
	// see the placeholder error below) and unregisters the key before the
	// panic propagates to this caller — a shared computation must never
	// leave its followers blocked on a dead channel.
	c.err = errEarlyExit
	defer func() {
		close(c.done)
		p.flight.mu.Lock()
		delete(p.flight.m, key)
		p.flight.mu.Unlock()
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}

// errEarlyExit is what coalesced followers observe when the leader's fn
// panicked instead of returning.
var errEarlyExit = errors.New("serve: coalesced computation exited before completing")
