package fleet

import (
	"sort"

	"holmes/internal/scenario"
	"holmes/internal/topology"
)

// lowerEvents folds the scenario's extended vocabulary down to the three
// primitives the replay clock understands — fail_node, restore_node,
// degrade_nic — at the fleet's placement granularity:
//
//   - straggler lowers to a persistent degrade of both NIC classes;
//   - fail_cluster lowers to one fail_node per member node;
//   - flap_link lowers to fail at its start and restore at its end — a
//     scheduler does not chase millisecond duty cycles, it routes around
//     the node for the whole flapping window;
//   - loss/corrupt lower to a goodput-equivalent degrade (factor
//     1-Pct/100), restored at Until when bounded;
//   - delay/jitter move the α term, not capacity, and lower to nothing.
//
// Both the from-scratch replay and the incremental resume path consume
// the same lowered stream, so their decision sequences stay identical by
// construction. The result is (At, lowering order) sorted, matching the
// ordering contract of Scenario.Ordered.
func lowerEvents(topo *topology.Topology, sc *scenario.Scenario) []scenario.Event {
	evs := sc.Ordered()
	out := make([]scenario.Event, 0, len(evs))
	for _, ev := range evs {
		switch ev.Kind {
		case scenario.FailNode, scenario.RestoreNode, scenario.DegradeNIC:
			out = append(out, ev)
		case scenario.Straggler:
			out = append(out,
				scenario.Event{Kind: scenario.DegradeNIC, At: ev.At, Node: ev.Node, Class: scenario.ClassRDMA, Factor: ev.Factor},
				scenario.Event{Kind: scenario.DegradeNIC, At: ev.At, Node: ev.Node, Class: scenario.ClassEther, Factor: ev.Factor})
		case scenario.FailCluster:
			for _, n := range topo.Clusters[ev.Cluster].Nodes {
				out = append(out, scenario.Event{Kind: scenario.FailNode, At: ev.At, Node: n.Index})
			}
		case scenario.FlapLink:
			out = append(out,
				scenario.Event{Kind: scenario.FailNode, At: ev.At, Node: ev.Node},
				scenario.Event{Kind: scenario.RestoreNode, At: ev.Until, Node: ev.Node})
		case scenario.Loss, scenario.Corrupt:
			class := ev.Class
			if class == "" {
				// Impairment events default to Ether; degrade_nic's empty
				// class means RDMA, so make the default explicit.
				class = scenario.ClassEther
			}
			out = append(out, scenario.Event{Kind: scenario.DegradeNIC, At: ev.At, Node: ev.Node, Class: class, Factor: 1 - ev.Pct/100})
			if ev.Until > 0 {
				out = append(out, scenario.Event{Kind: scenario.RestoreNode, At: ev.Until, Node: ev.Node})
			}
		case scenario.Delay, scenario.Jitter:
			// No capacity effect at placement granularity.
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
