package fleet

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"holmes/internal/engine"
	"holmes/internal/scenario"
	"holmes/internal/topology"
)

// MaxJobs bounds one fleet's live job set: schedules are recomputed from
// the full set on demand, so an unbounded set would let one tenant make
// every poll arbitrarily expensive.
const MaxJobs = 64

// Manager is the concurrent face of the scheduler for the serve API:
// jobs are submitted, polled, and cancelled from any number of
// goroutines, and the schedule observed at any instant is the
// deterministic replay of the live job set ordered by (submit, id) —
// independent of the interleaving that built the set. Submitting the
// same jobs in any order, on any number of shards, yields bit-identical
// schedules.
//
// Schedules are computed incrementally: every recomputation records a
// checkpoint of the replay state at each virtual instant, and a mutation
// invalidates only the checkpoints at or after its change point (the
// submit time of an added or cancelled job, the timestamp of a scenario
// event). The next Schedule call resumes from the newest surviving
// checkpoint instead of replaying from virtual time zero.
// SetFullRecompute(true) disables the checkpoint path entirely — the
// from-scratch replay is the differential oracle the incremental path is
// tested against, and by construction both produce bit-identical
// schedules.
type Manager struct {
	sch *Scheduler

	mu      sync.Mutex
	jobs    map[string]Job
	scn     *scenario.Scenario
	policy  string // "" = DefaultPolicy
	version uint64 // bumped on every mutation
	cached  *Schedule
	cachedV uint64

	rec           recorder
	fullRecompute bool
}

// NewManager builds a manager over one shared fleet topology on the
// given engine (nil = the shared default).
func NewManager(eng *engine.Engine, topo *topology.Topology) (*Manager, error) {
	sch, err := NewScheduler(eng, topo)
	if err != nil {
		return nil, err
	}
	return &Manager{sch: sch, jobs: make(map[string]Job)}, nil
}

// Topology exposes the fleet topology.
func (m *Manager) Topology() *topology.Topology { return m.sch.Topology() }

// SetPolicy switches the fleet's scheduling policy ("" = DefaultPolicy).
// A policy decides every queue order from virtual time zero, so the
// switch invalidates all checkpoints and the next Schedule call replays
// the live set from scratch under the new policy.
func (m *Manager) SetPolicy(name string) error {
	if _, err := PolicyByName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.policy == name {
		return nil
	}
	m.policy = name
	m.invalidateFrom(math.Inf(-1))
	return nil
}

// Policy reports the fleet's scheduling policy name (resolved: never
// empty).
func (m *Manager) Policy() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.policy == "" {
		return DefaultPolicy
	}
	return m.policy
}

// SetFullRecompute toggles the from-scratch oracle: when on, every
// Schedule call replays the whole trace from virtual time zero and no
// checkpoints are kept. The differential tests run one manager in each
// mode and assert bit-identical schedules.
func (m *Manager) SetFullRecompute(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fullRecompute == on {
		return
	}
	m.fullRecompute = on
	m.rec.reset()
	m.cached = nil
}

// invalidateFrom records that a mutation's earliest observable effect is
// at virtual instant t. Callers hold m.mu.
func (m *Manager) invalidateFrom(t float64) {
	m.version++
	m.rec.invalidateFrom(t)
}

// Submit validates and admits one job. Duplicate IDs are rejected — the
// ID is the client's handle for polling and cancellation.
func (m *Manager) Submit(j Job) error {
	if err := ResolveJob(m.sch.topo, j); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.jobs[j.ID]; dup {
		return fmt.Errorf("fleet: job %q already exists", j.ID)
	}
	if len(m.jobs) >= MaxJobs {
		return fmt.Errorf("fleet: fleet already holds %d jobs (the per-fleet limit)", MaxJobs)
	}
	m.jobs[j.ID] = j
	m.invalidateFrom(j.Submit)
	return nil
}

// Cancel removes a job from the set; false = unknown ID.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return false
	}
	delete(m.jobs, id)
	m.invalidateFrom(j.Submit)
	return true
}

// SetScenario replaces the fleet's scripted event timeline (nil clears
// it). The change point is the earliest event in either the old or the
// new timeline — everything before it replays identically. The timeline
// is deep-copied on the way in: a caller appending to sc.Events after
// the call mutates its own copy, never the checkpointed replay state
// (which would desync the incremental path from the oracle, since no
// invalidateFrom would fire for the smuggled events).
func (m *Manager) SetScenario(sc *scenario.Scenario) error {
	if err := validateScenario(m.sch.topo, sc); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := math.Inf(1)
	if !m.scn.Empty() {
		t = min(t, eventChange(m.scn.Events))
	}
	if !sc.Empty() {
		t = min(t, eventChange(sc.Events))
	}
	m.scn = sc.Clone()
	m.invalidateFrom(t)
	return nil
}

// ApplyEvent appends one event to the fleet's timeline. Only the replay
// suffix from the event's instant onward recomputes.
func (m *Manager) ApplyEvent(ev scenario.Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := &scenario.Scenario{Name: "fleet"}
	if !m.scn.Empty() {
		next.Name = m.scn.Name
		next.Events = append(next.Events, m.scn.Events...)
	}
	next.Events = append(next.Events, ev)
	if err := validateScenario(m.sch.topo, next); err != nil {
		return err
	}
	m.scn = next
	m.invalidateFrom(ev.At)
	return nil
}

// Scenario returns a deep copy of the live timeline: mutating the
// result cannot reach the manager's replay state (route edits through
// SetScenario or ApplyEvent, which invalidate checkpoints properly).
func (m *Manager) Scenario() *scenario.Scenario {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scn.Clone()
}

// Len reports the live job count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// trace folds the live set into the canonical trace: jobs ordered by
// (submit, id). Callers hold m.mu.
func (m *Manager) trace() *Trace {
	jobs := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})
	return &Trace{Jobs: jobs, Scenario: m.scn, Policy: m.policy}
}

// Schedule replays the live job set, memoized until the next mutation.
// An empty set returns an empty schedule. The returned schedule is
// shared — treat it as read-only.
func (m *Manager) Schedule() (*Schedule, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cached != nil && m.cachedV == m.version {
		return m.cached, nil
	}
	if len(m.jobs) == 0 {
		m.rec.reset()
		sched := &Schedule{Policy: m.policy, Nodes: m.sch.topo.NumNodes(), GPUs: m.sch.topo.NumDevices()}
		m.cached, m.cachedV = sched, m.version
		return sched, nil
	}
	tr := m.trace()
	var sched *Schedule
	var err error
	if m.fullRecompute {
		sched, err = m.sch.Replay(tr)
	} else {
		sched, err = m.sch.resume(tr, &m.rec)
	}
	if err != nil {
		return nil, err
	}
	m.cached, m.cachedV = sched, m.version
	return sched, nil
}

// Job returns the placement of one job in the current schedule.
func (m *Manager) Job(id string) (Placement, bool, error) {
	sched, err := m.Schedule()
	if err != nil {
		return Placement{}, false, err
	}
	for _, p := range sched.Jobs {
		if p.JobID == id {
			return p, true, nil
		}
	}
	return Placement{}, false, nil
}
