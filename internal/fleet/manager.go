package fleet

import (
	"fmt"
	"sort"
	"sync"

	"holmes/internal/engine"
	"holmes/internal/topology"
)

// MaxJobs bounds one fleet's live job set: schedules are recomputed from
// the full set on demand, so an unbounded set would let one tenant make
// every poll arbitrarily expensive.
const MaxJobs = 64

// Manager is the concurrent face of the scheduler for the serve API:
// jobs are submitted, polled, and cancelled from any number of
// goroutines, and the schedule observed at any instant is the
// deterministic replay of the live job set ordered by (submit, id) —
// independent of the interleaving that built the set. Submitting the
// same jobs in any order, on any number of shards, yields bit-identical
// schedules.
type Manager struct {
	sch *Scheduler

	mu      sync.Mutex
	jobs    map[string]Job
	version uint64 // bumped on every mutation
	cached  *Schedule
	cachedV uint64
}

// NewManager builds a manager over one shared fleet topology on the
// given engine (nil = the shared default).
func NewManager(eng *engine.Engine, topo *topology.Topology) (*Manager, error) {
	sch, err := NewScheduler(eng, topo)
	if err != nil {
		return nil, err
	}
	return &Manager{sch: sch, jobs: make(map[string]Job)}, nil
}

// Topology exposes the fleet topology.
func (m *Manager) Topology() *topology.Topology { return m.sch.Topology() }

// Submit validates and admits one job. Duplicate IDs are rejected — the
// ID is the client's handle for polling and cancellation.
func (m *Manager) Submit(j Job) error {
	if err := ResolveJob(m.sch.topo, j); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.jobs[j.ID]; dup {
		return fmt.Errorf("fleet: job %q already exists", j.ID)
	}
	if len(m.jobs) >= MaxJobs {
		return fmt.Errorf("fleet: fleet already holds %d jobs (the per-fleet limit)", MaxJobs)
	}
	m.jobs[j.ID] = j
	m.version++
	return nil
}

// Cancel removes a job from the set; false = unknown ID.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[id]; !ok {
		return false
	}
	delete(m.jobs, id)
	m.version++
	return true
}

// Len reports the live job count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// trace folds the live set into the canonical trace: jobs ordered by
// (submit, id). Callers hold m.mu.
func (m *Manager) trace() *Trace {
	jobs := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})
	return &Trace{Jobs: jobs}
}

// Schedule replays the live job set, memoized until the next mutation.
// An empty set returns an empty schedule. The returned schedule is
// shared — treat it as read-only.
func (m *Manager) Schedule() (*Schedule, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cached != nil && m.cachedV == m.version {
		return m.cached, nil
	}
	if len(m.jobs) == 0 {
		sched := &Schedule{Nodes: m.sch.topo.NumNodes(), GPUs: m.sch.topo.NumDevices()}
		m.cached, m.cachedV = sched, m.version
		return sched, nil
	}
	sched, err := m.sch.Replay(m.trace())
	if err != nil {
		return nil, err
	}
	m.cached, m.cachedV = sched, m.version
	return sched, nil
}

// Job returns the placement of one job in the current schedule.
func (m *Manager) Job(id string) (Placement, bool, error) {
	sched, err := m.Schedule()
	if err != nil {
		return Placement{}, false, err
	}
	for _, p := range sched.Jobs {
		if p.JobID == id {
			return p, true, nil
		}
	}
	return Placement{}, false, nil
}
