package fleet

import (
	"fmt"
	"math"
	"sort"

	"holmes/internal/core"
	"holmes/internal/netsim"
	"holmes/internal/scenario"
	"holmes/internal/topology"
)

// The replay is an event-driven simulation on a virtual clock. At every
// instant the state machine applies, in this fixed order: run
// completions, job arrivals, scenario events, then a placement pass.
// Every queue and run scan is ordered by (time, trace index), every node
// choice takes lowest original index first, and candidate scoring
// selects its winner in input order — so the schedule is a pure function
// of the trace, independent of engine concurrency or shard layout.

// nodeFactors is the cumulative degrade state of one node (1 = pristine),
// mirroring scenario.StateAt semantics for the two classes carving can
// represent. Intra-node degradation has no topology-level expression and
// is ignored here, as in scenario.EffectiveSpec.
type nodeFactors struct {
	rdma, eth float64
}

// qentry is one queued (or requeued) job.
type qentry struct {
	j        *rjob
	ready    float64 // submit time, or the eviction instant on requeue
	remIters int
	started  bool
	lastErr  string
	res      *Placement
}

// run is one executing slice.
type run struct {
	q       *qentry
	nodes   []int // ascending original fleet indices
	planner *core.Planner
	plan    *core.Plan
	iters   int // iterations remaining in this segment
	// segStart is when this segment began (placement or last replan);
	// finish is the projected completion instant.
	segStart, finish float64
}

// choice is one scored placement option.
type choice struct {
	nodes   []int
	planner *core.Planner
	plan    *core.Plan
}

// state is the mutable replay state.
type state struct {
	sch     *Scheduler
	pol     Policy
	clock   float64
	free    []bool // alive and idle, by original node index
	failed  map[int]bool
	factors map[int]nodeFactors
	queue   []*qentry
	runs    []*run
	busy    float64 // accumulated busy GPU-seconds
	// tenantBusy is busy split by tenant (completed and evicted
	// segments; live-run accrual is added on read by TenantUsage).
	tenantBusy map[string]float64
	results    []Placement
}

// newState builds the pristine replay state for a resolved trace.
func newState(s *Scheduler, pol Policy, jobs []*rjob) *state {
	st := &state{
		sch:        s,
		pol:        pol,
		free:       make([]bool, s.topo.NumNodes()),
		failed:     make(map[int]bool),
		factors:    make(map[int]nodeFactors),
		tenantBusy: make(map[string]float64),
		results:    make([]Placement, len(jobs)),
	}
	for i := range st.free {
		st.free[i] = true
	}
	for i, j := range jobs {
		st.results[i] = Placement{JobID: j.job.ID}
	}
	return st
}

// resolveTrace validates the trace against the scheduler's topology and
// resolves every job, indexed by trace position.
func (s *Scheduler) resolveTrace(tr *Trace) ([]*rjob, error) {
	if len(tr.Jobs) == 0 {
		return nil, fmt.Errorf("fleet: trace has no jobs")
	}
	jobs := make([]*rjob, len(tr.Jobs))
	seen := make(map[string]int, len(tr.Jobs))
	for i, j := range tr.Jobs {
		rj, err := resolveJob(s.topo, i, j)
		if err != nil {
			return nil, err
		}
		if first, dup := seen[j.ID]; dup {
			return nil, fmt.Errorf("fleet: jobs %d and %d share id %q", first, i, j.ID)
		}
		seen[j.ID] = i
		rj.idx = i
		if rj.job.Iterations == 0 {
			rj.job.Iterations = 1
		}
		jobs[i] = &rj
	}
	if err := validateScenario(s.topo, tr.Scenario); err != nil {
		return nil, err
	}
	return jobs, nil
}

// arrivalOrder sorts the resolved jobs into (submit, trace index) order.
func arrivalOrder(jobs []*rjob) []*rjob {
	arr := append([]*rjob(nil), jobs...)
	sort.SliceStable(arr, func(a, b int) bool { return arr[a].job.Submit < arr[b].job.Submit })
	return arr
}

// Replay runs the trace's jobs over the scheduler's fleet topology
// (tr.Fleet is ignored here; the Replay function resolves it). The
// returned schedule is deterministic: same trace, same schedule.
func (s *Scheduler) Replay(tr *Trace) (*Schedule, error) {
	return s.replay(tr, nil)
}

// replay is Replay with an optional checkpoint recorder (the manager's
// incremental path snapshots the state at every instant so a later
// mutation can resume mid-trace instead of recomputing from scratch).
func (s *Scheduler) replay(tr *Trace, rec *recorder) (*Schedule, error) {
	jobs, err := s.resolveTrace(tr)
	if err != nil {
		return nil, err
	}
	pol, err := PolicyByName(tr.Policy)
	if err != nil {
		return nil, err
	}
	st := newState(s, pol, jobs)
	arr := arrivalOrder(jobs)
	evs := lowerEvents(s.topo, tr.Scenario)
	ei := st.run(arr, evs, 0, 0, rec)
	return buildSchedule(tr, jobs, st, ei), nil
}

// run drives the replay loop from the state's current clock, starting at
// arrival index ai and event index ei, and returns the number of events
// applied. Both Replay (from scratch) and the incremental resume path
// use this one loop, so their decision sequences are identical by
// construction.
func (st *state) run(arr []*rjob, evs []scenario.Event, ai, ei int, rec *recorder) int {
	for {
		for ai < len(arr) && arr[ai].job.Submit <= st.clock {
			st.enqueue(arr[ai])
			ai++
		}
		for ei < len(evs) && evs[ei].At <= st.clock {
			st.applyEvent(evs[ei])
			ei++
		}
		st.placePass()
		if rec != nil {
			rec.record(st)
		}

		next := math.Inf(1)
		if ai < len(arr) {
			next = arr[ai].job.Submit
		}
		// Pending events only matter while work remains: a restore can
		// unblock a queued job, but an empty fleet has nothing to gain.
		if ei < len(evs) && (len(st.runs) > 0 || len(st.queue) > 0 || ai < len(arr)) {
			next = min(next, evs[ei].At)
		}
		for _, r := range st.runs {
			next = min(next, r.finish)
		}
		if math.IsInf(next, 1) {
			if len(st.queue) > 0 {
				// The whole surviving fleet is idle and the head still
				// cannot start: it never will.
				head := st.queue[0]
				st.queue = st.queue[1:]
				reason := head.lastErr
				if reason == "" {
					reason = "demand exceeds the fleet's surviving capacity"
				}
				head.res.Unplaced = reason
				continue
			}
			break
		}
		st.clock = next
		st.completeFinished()
	}
	return ei
}

// buildSchedule folds the final replay state into the Schedule document.
func buildSchedule(tr *Trace, jobs []*rjob, st *state, appliedEvents int) *Schedule {
	sched := &Schedule{
		Trace:          tr.Name,
		Policy:         tr.Policy,
		Nodes:          st.sch.topo.NumNodes(),
		GPUs:           st.sch.topo.NumDevices(),
		Jobs:           st.results,
		ScenarioEvents: appliedEvents,
	}
	for i := range sched.Jobs {
		p := &sched.Jobs[i]
		if p.Unplaced != "" {
			continue
		}
		sched.Makespan = max(sched.Makespan, p.Finish)
		if d := jobs[i].job.Deadline; d > 0 && p.Finish > d {
			p.MissedDeadline = true
		}
	}
	if sched.Makespan > 0 {
		sched.Utilization = st.busy / (float64(sched.GPUs) * sched.Makespan)
	}
	return sched
}

func (st *state) enqueue(j *rjob) {
	st.queue = append(st.queue, &qentry{
		j:        j,
		ready:    j.job.Submit,
		remIters: j.job.Iterations,
		res:      &st.results[j.idx],
	})
	st.sortQueue()
}

// sortQueue orders the queue by the replay's policy. Policies close
// over PolicyState reads only (tenant usage is stable while a sort
// runs) and end in the trace-index tie-break, so the order is total and
// deterministic.
func (st *state) sortQueue() {
	sort.SliceStable(st.queue, func(a, b int) bool {
		return st.pol.Less(st, st.queuedView(st.queue[a]), st.queuedView(st.queue[b]))
	})
}

// freeNodes lists idle alive nodes ascending.
func (st *state) freeNodes() []int {
	var out []int
	for i, f := range st.free {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// candidates enumerates the slices to score for a demand of need nodes,
// NIC-affinity first per the paper's cluster-grouping rule: single
// clusters in cluster order, then NIC-homogeneous cross-cluster groups
// in fixed technology order, then the whole-fleet fallback. Each slice
// takes the lowest-index free nodes of its group; duplicates collapse.
func (st *state) candidates(need int) [][]int {
	free := st.freeNodes()
	if len(free) < need {
		return nil
	}
	var cands [][]int
	seen := make(map[string]bool)
	add := func(nodes []int) {
		key := fmt.Sprint(nodes)
		if !seen[key] {
			seen[key] = true
			cands = append(cands, nodes)
		}
	}
	topo := st.sch.topo
	for _, c := range topo.Clusters {
		var in []int
		for _, n := range free {
			if topo.Node(n).Cluster == c.Index {
				in = append(in, n)
			}
		}
		if len(in) >= need {
			add(in[:need])
		}
	}
	for _, nic := range []topology.NICType{topology.InfiniBand, topology.RoCE, topology.Ethernet} {
		var in []int
		for _, n := range free {
			if topo.Clusters[topo.Node(n).Cluster].NICType == nic {
				in = append(in, n)
			}
		}
		if len(in) >= need {
			add(in[:need])
		}
	}
	add(free[:need])
	return cands
}

// carve cuts the slice's sub-topology, folding each node's cumulative
// degrade factors into the carved overrides. nodes must be ascending.
func (st *state) carve(nodes []int) (*topology.Topology, error) {
	spec, err := st.sch.topo.CarveSpec(nodes)
	if err != nil {
		return nil, err
	}
	pos := 0
	for ci := range spec.Clusters {
		cs := &spec.Clusters[ci]
		for k := 0; k < cs.Nodes; k++ {
			if f, ok := st.factors[nodes[pos]]; ok {
				ov := cs.Overrides[k]
				ov.GbpsPerNIC *= f.rdma
				ov.EthGbps *= f.eth
				cs.Overrides[k] = ov
			}
			pos++
		}
	}
	return topology.Build(spec)
}

// score carves the slice and runs (or replays from the plan cache) the
// joint (t, p) search on it.
func (st *state) score(j *rjob, nodes []int) (choice, error) {
	sub, err := st.carve(nodes)
	if err != nil {
		return choice{}, err
	}
	pl, plan, err := st.sch.searchSlice(sub, j.spec, j.fw)
	if err != nil {
		return choice{}, err
	}
	return choice{nodes: nodes, planner: pl, plan: plan}, nil
}

// scoreJob scores every candidate slice for a job against the current
// free set and selects the highest simulated throughput, ties broken by
// candidate input order — identical to a sequential scan. Candidates are
// carved first and deduplicated by structural fingerprint, so the engine
// searches each distinct slice exactly once and fingerprint-identical
// slices never race each other for pool workers; the searches then fan
// out over the engine's bounded worker pool.
//
// scoreJob never mutates the replay state. It reports the two error
// strings the caller may fold into the job's lastErr: needErr when the
// free set cannot cover the demand at all (the original code overwrote
// lastErr unconditionally), and scoreErr — the first carve/search error
// in candidate order — which only lands when lastErr is still empty.
func (st *state) scoreJob(j *rjob) (ch choice, ok bool, needErr, scoreErr string) {
	cands := st.candidates(j.nodes)
	if len(cands) == 0 {
		return choice{}, false, fmt.Sprintf("needs %d free node(s)", j.nodes), ""
	}
	subs := make([]*topology.Topology, 0, len(cands))
	uniqOf := make([]int, len(cands)) // candidate -> index into subs, -1 on carve error
	carveErrs := make([]error, len(cands))
	seen := make(map[string]int, len(cands))
	for i, nodes := range cands {
		sub, err := st.carve(nodes)
		if err != nil {
			uniqOf[i] = -1
			carveErrs[i] = err
			continue
		}
		fp := sub.Fingerprint()
		u, dup := seen[fp]
		if !dup {
			u = len(subs)
			seen[fp] = u
			subs = append(subs, sub)
		}
		uniqOf[i] = u
	}
	planners := make([]*core.Planner, len(subs))
	plans := make([]*core.Plan, len(subs))
	errs := make([]error, len(subs))
	st.sch.eng.Go(len(subs), func(u int) {
		planners[u], plans[u], errs[u] = st.sch.searchSlice(subs[u], j.spec, j.fw)
	})
	best := -1
	for i := range cands {
		err := carveErrs[i]
		var plan *core.Plan
		if uniqOf[i] >= 0 {
			err = errs[uniqOf[i]]
			plan = plans[uniqOf[i]]
		}
		if err != nil {
			if scoreErr == "" {
				scoreErr = err.Error()
			}
			continue
		}
		if best < 0 || plan.Report.Throughput > plans[uniqOf[best]].Report.Throughput {
			best = i
		}
	}
	if best < 0 {
		return choice{}, false, "", scoreErr
	}
	u := uniqOf[best]
	return choice{nodes: cands[best], planner: planners[u], plan: plans[u]}, true, "", scoreErr
}

// pick scores a queued job and folds the scoring errors into its
// lastErr, exactly like the historical sequential scan did.
func (st *state) pick(q *qentry) (choice, bool) {
	ch, ok, needErr, scoreErr := st.scoreJob(q.j)
	applyPickErrs(q, needErr, scoreErr)
	return ch, ok
}

func applyPickErrs(q *qentry, needErr, scoreErr string) {
	if needErr != "" {
		q.lastErr = needErr
	}
	if scoreErr != "" && q.lastErr == "" {
		q.lastErr = scoreErr
	}
}

// start commits a placement choice.
func (st *state) start(q *qentry, ch choice, backfilled bool) {
	for _, n := range ch.nodes {
		st.free[n] = false
	}
	r := &run{
		q:        q,
		nodes:    append([]int(nil), ch.nodes...),
		planner:  ch.planner,
		plan:     ch.plan,
		iters:    q.remIters,
		segStart: st.clock,
		finish:   st.clock + float64(q.remIters)*ch.plan.Report.IterSeconds,
	}
	st.runs = append(st.runs, r)
	res := q.res
	if !q.started {
		q.started = true
		res.Start = st.clock
		res.Waited = st.clock - q.j.job.Submit
	}
	res.Nodes = r.nodes
	res.Finish = r.finish
	if backfilled {
		res.Backfilled = true
	}
	st.recordPlan(res, ch.plan)
}

func (st *state) recordPlan(res *Placement, plan *core.Plan) {
	res.Degrees = Degrees{Tensor: plan.Degrees.T, Pipeline: plan.Degrees.P, Data: plan.Degrees.D}
	res.IterSeconds = plan.Report.IterSeconds
	res.Throughput = plan.Report.Throughput
	res.TFLOPS = plan.Report.TFLOPS
	res.Partition = plan.Partition.String()
}

// placePass is the FIFO + EASY-backfill scheduling step: start the queue
// head whenever it fits; otherwise reserve its earliest possible start
// and let later jobs that fit the idle nodes jump ahead only if they
// finish by the reservation, so backfilling never delays the head.
//
// The backfill scan scores every eligible queued job concurrently
// against the frozen free set, then walks the results in queue order and
// starts the first job that fits the reservation — the same job the
// historical sequential scan started, with lastErr mutations applied
// only up to that job, so concurrency never leaks into the schedule.
func (st *state) placePass() {
	for len(st.queue) > 0 {
		head := st.queue[0]
		if ch, ok := st.pick(head); ok {
			st.start(head, ch, false)
			st.queue = st.queue[1:]
			continue
		}
		// Preemptive policies may clear room for a capacity-blocked head
		// before the EASY reservation is taken. Victims requeue behind
		// the head (they are less entitled by construction), so the head
		// re-scores against the widened free set.
		if st.preemptFor(head) {
			if ch, ok := st.pick(head); ok {
				st.start(head, ch, false)
				st.queue = st.queue[1:]
				continue
			}
		}
		tHead := st.reserveTime(head.j.nodes)
		freeCount := len(st.freeNodes())
		var eligible []int
		for i := 1; i < len(st.queue); i++ {
			if st.queue[i].j.nodes <= freeCount {
				eligible = append(eligible, i)
			}
		}
		type backfillScore struct {
			ch                choice
			ok                bool
			needErr, scoreErr string
		}
		scores := make([]backfillScore, len(eligible))
		st.sch.eng.Go(len(eligible), func(k int) {
			var s backfillScore
			s.ch, s.ok, s.needErr, s.scoreErr = st.scoreJob(st.queue[eligible[k]].j)
			scores[k] = s
		})
		progressed := false
		for k, i := range eligible {
			q := st.queue[i]
			s := scores[k]
			applyPickErrs(q, s.needErr, s.scoreErr)
			if !s.ok {
				continue
			}
			if st.clock+float64(q.remIters)*s.ch.plan.Report.IterSeconds <= tHead {
				st.start(q, s.ch, true)
				st.queue = append(st.queue[:i], st.queue[i+1:]...)
				progressed = true
				break
			}
		}
		if !progressed {
			return
		}
	}
}

// reserveTime is the earliest instant the queue head could have enough
// free nodes, assuming running jobs finish as projected: +Inf when even
// the whole surviving fleet is too small.
func (st *state) reserveTime(need int) float64 {
	freeCount := len(st.freeNodes())
	if freeCount >= need {
		return st.clock
	}
	runs := append([]*run(nil), st.runs...)
	sort.SliceStable(runs, func(a, b int) bool {
		if runs[a].finish != runs[b].finish {
			return runs[a].finish < runs[b].finish
		}
		return runs[a].q.j.idx < runs[b].q.j.idx
	})
	for _, r := range runs {
		freeCount += len(r.nodes)
		if freeCount >= need {
			return r.finish
		}
	}
	return math.Inf(1)
}

// completeFinished retires every run projected to finish by the clock,
// in (finish, trace index) order.
func (st *state) completeFinished() {
	var done []*run
	keep := st.runs[:0]
	for _, r := range st.runs {
		if r.finish <= st.clock {
			done = append(done, r)
		} else {
			keep = append(keep, r)
		}
	}
	st.runs = keep
	sort.SliceStable(done, func(a, b int) bool {
		if done[a].finish != done[b].finish {
			return done[a].finish < done[b].finish
		}
		return done[a].q.j.idx < done[b].q.j.idx
	})
	for _, r := range done {
		st.accrue(r, r.finish-r.segStart)
		for _, n := range r.nodes {
			if !st.failed[n] {
				st.free[n] = true
			}
		}
		r.q.res.Finish = r.finish
	}
}

func (st *state) gpus(r *run) float64 {
	return float64(len(r.nodes) * st.sch.topo.GPUsPerNode)
}

// accrue books dt seconds of the run's GPUs into the fleet total and
// the run's tenant. Callers invoke it in replay-deterministic order, so
// the floating-point sums are reproducible bit for bit.
func (st *state) accrue(r *run, dt float64) {
	st.busy += st.gpus(r) * dt
	st.tenantBusy[r.q.j.tenant] += st.gpus(r) * dt
}

// segmentProgress closes the books on a run segment at the clock and
// returns the iterations still owed (at least one: a run finishing
// exactly now was already retired by completeFinished).
func (st *state) segmentProgress(r *run) int {
	st.accrue(r, st.clock-r.segStart)
	done := int((st.clock - r.segStart) / r.plan.Report.IterSeconds)
	rem := r.iters - done
	if rem < 1 {
		rem = 1
	}
	return rem
}

// applyEvent folds one scenario event into the replay state.
func (st *state) applyEvent(ev scenario.Event) {
	switch ev.Kind {
	case scenario.FailNode:
		if st.failed[ev.Node] {
			return
		}
		st.failed[ev.Node] = true
		st.free[ev.Node] = false
		st.evictOn(ev.Node)
	case scenario.RestoreNode:
		_, degraded := st.factors[ev.Node]
		delete(st.factors, ev.Node)
		if st.failed[ev.Node] {
			delete(st.failed, ev.Node)
			st.free[ev.Node] = true
			return
		}
		// A degraded (not failed) node returns to full capacity: jobs
		// running on it replan in place onto the restored slice. Restoring
		// a node that was never touched is a no-op — replanning anyway
		// would discard partial-iteration progress for nothing.
		if degraded {
			st.replanOn(ev.Node)
		}
	case scenario.DegradeNIC:
		class, err := ev.Class.NetClass()
		if err != nil {
			return // Validate rejected this already; fold defensively
		}
		f, ok := st.factors[ev.Node]
		if !ok {
			f = nodeFactors{rdma: 1, eth: 1}
		}
		switch class {
		case netsim.RDMA:
			f.rdma *= ev.Factor
		case netsim.Ether:
			f.eth *= ev.Factor
		default:
			return // intra-node degradation has no carving representation
		}
		st.factors[ev.Node] = f
		st.replanOn(ev.Node)
	}
}

// evictOn requeues every job whose slice contains the failed node,
// measuring what replanning on the residual slice would recover via the
// core replanner (reuse of the single-job fault path). Bookkeeping runs
// serially in trace order; the independent per-run recovery replans fan
// out over the engine pool.
func (st *state) evictOn(node int) {
	var hit []*run
	keep := st.runs[:0]
	for _, r := range st.runs {
		contains := false
		for _, n := range r.nodes {
			if n == node {
				contains = true
				break
			}
		}
		if contains {
			hit = append(hit, r)
		} else {
			keep = append(keep, r)
		}
	}
	st.runs = keep
	sort.SliceStable(hit, func(a, b int) bool { return hit[a].q.j.idx < hit[b].q.j.idx })
	recoveries := make([]float64, len(hit))
	st.sch.eng.Go(len(hit), func(i int) {
		recoveries[i] = st.recovery(hit[i], node)
	})
	for i, r := range hit {
		rem := st.segmentProgress(r)
		q := r.q
		q.remIters = rem
		q.ready = st.clock
		q.res.Evictions++
		q.res.Recovery = recoveries[i]
		for _, n := range r.nodes {
			if !st.failed[n] {
				st.free[n] = true
			}
		}
		st.queue = append(st.queue, q)
	}
	if len(hit) > 0 {
		st.sortQueue()
	}
}

// recovery replays the failure on the job's own slice through
// core.ReplanFrom: the factor compares a fresh joint search on the
// residual slice against the old plan limping under the failure. A slice
// with no survivors (or no feasible residual plan) reports 0.
func (st *state) recovery(r *run, failedNode int) float64 {
	local := -1
	for i, n := range r.nodes {
		if n == failedNode {
			local = i
			break
		}
	}
	if local < 0 {
		return 0
	}
	sc := &scenario.Scenario{
		Name:   "eviction",
		Events: []scenario.Event{{Kind: scenario.FailNode, At: 0, Node: local}},
	}
	rep, err := r.planner.ReplanFrom(r.plan, sc, math.Inf(1))
	if err != nil {
		return 0
	}
	f := rep.RecoveryFactor()
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// replanOn re-plans, in place and on their own nodes, the jobs whose
// slice contains the affected node: the slice is re-carved under the
// current degrade factors and the joint search re-run, so the remaining
// iterations proceed at the slice's new speed. Progress bookkeeping runs
// serially in trace order (busy-seconds accumulate in a fixed order);
// the independent re-scores fan out over the engine pool and apply in
// trace order.
func (st *state) replanOn(node int) {
	var hit []*run
	for _, r := range st.runs {
		for _, n := range r.nodes {
			if n == node {
				hit = append(hit, r)
				break
			}
		}
	}
	sort.SliceStable(hit, func(a, b int) bool { return hit[a].q.j.idx < hit[b].q.j.idx })
	rems := make([]int, len(hit))
	for i, r := range hit {
		rems[i] = st.segmentProgress(r)
	}
	chs := make([]choice, len(hit))
	errs := make([]error, len(hit))
	st.sch.eng.Go(len(hit), func(i int) {
		chs[i], errs[i] = st.score(hit[i].q.j, hit[i].nodes)
	})
	for i, r := range hit {
		rem := rems[i]
		if errs[i] != nil {
			// The degraded slice admits no plan; let the old projection
			// stand rather than lose the job.
			r.segStart = st.clock
			r.iters = rem
			r.finish = st.clock + float64(rem)*r.plan.Report.IterSeconds
			r.q.res.Finish = r.finish
			continue
		}
		ch := chs[i]
		r.planner, r.plan = ch.planner, ch.plan
		r.segStart = st.clock
		r.iters = rem
		r.finish = st.clock + float64(rem)*ch.plan.Report.IterSeconds
		r.q.res.Finish = r.finish
		r.q.res.Replans++
		st.recordPlan(r.q.res, ch.plan)
	}
}
