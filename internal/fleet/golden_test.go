package fleet

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"holmes/internal/serve"
)

// Golden-file regression for the fleet scheduler: the committed
// testdata/fleet12.golden.json schedule pins the canonical 12-job trace
// — placements, start times, degrees, makespan — bit for bit. The
// scheduler is fully deterministic, so any drift (a placement-policy
// tweak, a cost-model nudge, an accidental map iteration) fails here
// with a row-level diff before it can silently rewrite the fleet story.
//
// Refresh intentionally with:
//
//	go test ./internal/fleet -run Golden -update

var update = flag.Bool("update", false, "rewrite golden files with current results")

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden.json")
}

func loadTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := LoadFile(filepath.Join("testdata", "fleet12.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// diffPlacements renders a readable field-level diff ("" = identical).
func diffPlacements(want, got Placement) string {
	var b strings.Builder
	cmp := func(field string, w, g any) {
		if !reflect.DeepEqual(w, g) {
			fmt.Fprintf(&b, "  %-16s golden %v, got %v\n", field, w, g)
		}
	}
	cmp("JobID", want.JobID, got.JobID)
	cmp("Nodes", want.Nodes, got.Nodes)
	cmp("Degrees", want.Degrees, got.Degrees)
	cmp("Start", want.Start, got.Start)
	cmp("Finish", want.Finish, got.Finish)
	cmp("Waited", want.Waited, got.Waited)
	cmp("IterSeconds", want.IterSeconds, got.IterSeconds)
	cmp("Throughput", want.Throughput, got.Throughput)
	cmp("TFLOPS", want.TFLOPS, got.TFLOPS)
	cmp("Partition", want.Partition, got.Partition)
	cmp("Backfilled", want.Backfilled, got.Backfilled)
	cmp("Evictions", want.Evictions, got.Evictions)
	cmp("Replans", want.Replans, got.Replans)
	cmp("Recovery", want.Recovery, got.Recovery)
	cmp("Preemptions", want.Preemptions, got.Preemptions)
	cmp("MissedDeadline", want.MissedDeadline, got.MissedDeadline)
	cmp("Unplaced", want.Unplaced, got.Unplaced)
	return b.String()
}

func checkGolden(t *testing.T, name string, sched *Schedule) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		data, err := json.MarshalIndent(sched, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d jobs, makespan %.2fs)", path, len(sched.Jobs), sched.Makespan)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	var want Schedule
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden %s: %v", path, err)
	}
	if len(sched.Jobs) != len(want.Jobs) {
		t.Fatalf("%s: %d jobs, golden has %d", name, len(sched.Jobs), len(want.Jobs))
	}
	for i := range want.Jobs {
		if diff := diffPlacements(want.Jobs[i], sched.Jobs[i]); diff != "" {
			t.Errorf("%s job %d (%s) drifted from golden:\n%s", name, i, want.Jobs[i].JobID, diff)
		}
	}
	if sched.Makespan != want.Makespan {
		t.Errorf("makespan drifted: golden %.17g, got %.17g", want.Makespan, sched.Makespan)
	}
	if sched.Utilization != want.Utilization {
		t.Errorf("utilization drifted: golden %.17g, got %.17g", want.Utilization, sched.Utilization)
	}
	if sched.ScenarioEvents != want.ScenarioEvents {
		t.Errorf("scenario events drifted: golden %d, got %d", want.ScenarioEvents, sched.ScenarioEvents)
	}
}

func TestFleet12MatchesGolden(t *testing.T) {
	sched, err := Replay(nil, loadTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	// Sanity beyond the golden bytes: the canonical trace must exercise
	// the interesting machinery — an eviction from the failed node, no
	// collateral eviction, and every job eventually placed.
	evictions := 0
	for _, p := range sched.Jobs {
		if p.Unplaced != "" {
			t.Fatalf("job %s never placed: %s", p.JobID, p.Unplaced)
		}
		evictions += p.Evictions
	}
	if evictions == 0 {
		t.Fatal("canonical trace exercised no eviction; the fail_node arm is dead")
	}
	checkGolden(t, "fleet12", sched)
}

// TestFleet12ShardInvariant replays the golden trace through engines
// drawn from sharded serve pools of different sizes: the schedule must
// be bit-identical regardless of the -shards setting, because the shard
// only decides which communicator cache warms up, never the answer.
func TestFleet12ShardInvariant(t *testing.T) {
	tr := loadTrace(t)
	topo, err := tr.Fleet.Topology()
	if err != nil {
		t.Fatal(err)
	}
	var blobs []string
	for _, shards := range []int{1, 4} {
		pool := serve.New(serve.Config{Shards: shards})
		sched, err := Replay(pool.ShardFor(topo.Fingerprint()), tr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(sched)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, string(b))
	}
	if blobs[0] != blobs[1] {
		t.Fatalf("shard count changed the schedule:\n%s\nvs\n%s", blobs[0], blobs[1])
	}
}
