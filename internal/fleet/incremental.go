package fleet

import (
	"math"

	"holmes/internal/core"
	"holmes/internal/scenario"
)

// Incremental rescheduling. The replay is causal: every decision taken
// at an instant depends only on the state at that instant, which in turn
// depends only on arrivals, events, and prior decisions at earlier or
// equal instants. So a mutation whose earliest observable effect is at
// virtual time t — a submit at t, a cancel of a job submitted at t, an
// event scripted at t — cannot change anything the replay decided at
// instants strictly before t. The recorder snapshots the full replay
// state after every instant's placement pass; a mutated trace resumes
// from the last snapshot taken strictly before its change point and
// replays only the suffix. The from-scratch Replay stays available (and
// is the differential oracle): by construction both paths run the same
// state.run loop over the same state, so their schedules are
// bit-identical — the differential and golden tests hold each release to
// that.

// maxCheckpoints bounds the recorder. Beyond the bound new instants are
// simply not recorded: resume then starts earlier and replays more,
// which is slower but never wrong. With MaxJobs = 64 the bound is never
// approached in practice.
const maxCheckpoints = 4096

// qcheck snapshots one queue entry. Jobs are identified by ID, not trace
// index: a mutation shifts the indices of jobs submitted at or after the
// change point, while every job captured in a usable checkpoint was
// submitted strictly before it (and so keeps both its identity and its
// index-order relative to its peers).
type qcheck struct {
	id       string
	ready    float64
	remIters int
	started  bool
	lastErr  string
}

// runCheck snapshots one executing slice. The planner and plan pointers
// are shared, not copied: plans are immutable after construction and the
// replay only ever swaps them, never mutates through them.
type runCheck struct {
	q                qcheck
	nodes            []int
	planner          *core.Planner
	plan             *core.Plan
	iters            int
	segStart, finish float64
}

// checkpoint is the full replay state at one instant, after that
// instant's placement pass.
type checkpoint struct {
	clock      float64
	free       []bool
	failed     map[int]bool
	factors    map[int]nodeFactors
	queue      []qcheck
	runs       []runCheck
	busy       float64
	tenantBusy map[string]float64
	results    []Placement // by job ID (JobID field), one row per trace job
}

// recorder accumulates checkpoints during a recorded replay.
type recorder struct {
	checks []*checkpoint
}

// record deep-snapshots the state. Called by state.run after each
// instant's placement pass.
func (rec *recorder) record(st *state) {
	if len(rec.checks) >= maxCheckpoints {
		return
	}
	cp := &checkpoint{
		clock:      st.clock,
		free:       append([]bool(nil), st.free...),
		failed:     make(map[int]bool, len(st.failed)),
		factors:    make(map[int]nodeFactors, len(st.factors)),
		queue:      make([]qcheck, len(st.queue)),
		runs:       make([]runCheck, len(st.runs)),
		busy:       st.busy,
		tenantBusy: make(map[string]float64, len(st.tenantBusy)),
		results:    make([]Placement, len(st.results)),
	}
	for k, v := range st.failed {
		cp.failed[k] = v
	}
	for k, v := range st.factors {
		cp.factors[k] = v
	}
	for k, v := range st.tenantBusy {
		cp.tenantBusy[k] = v
	}
	for i, q := range st.queue {
		cp.queue[i] = snapQ(q)
	}
	for i, r := range st.runs {
		cp.runs[i] = runCheck{
			q:        snapQ(r.q),
			nodes:    append([]int(nil), r.nodes...),
			planner:  r.planner,
			plan:     r.plan,
			iters:    r.iters,
			segStart: r.segStart,
			finish:   r.finish,
		}
	}
	for i, p := range st.results {
		p.Nodes = append([]int(nil), p.Nodes...)
		cp.results[i] = p
	}
	rec.checks = append(rec.checks, cp)
}

func snapQ(q *qentry) qcheck {
	return qcheck{
		id:       q.j.job.ID,
		ready:    q.ready,
		remIters: q.remIters,
		started:  q.started,
		lastErr:  q.lastErr,
	}
}

// invalidateFrom drops every checkpoint taken at or after the change
// point: state at those instants can depend on the mutation.
func (rec *recorder) invalidateFrom(t float64) {
	keep := rec.checks[:0]
	for _, cp := range rec.checks {
		if cp.clock < t {
			keep = append(keep, cp)
		}
	}
	for i := len(keep); i < len(rec.checks); i++ {
		rec.checks[i] = nil
	}
	rec.checks = keep
}

// reset discards all checkpoints.
func (rec *recorder) reset() { rec.invalidateFrom(math.Inf(-1)) }

// popLast removes and returns the newest checkpoint (nil when empty).
// Resume re-runs the checkpoint's own instant — a fixed-point no-op on
// the restored state — and re-records it, so the caller pops it first to
// keep the list free of duplicates.
func (rec *recorder) popLast() *checkpoint {
	if len(rec.checks) == 0 {
		return nil
	}
	cp := rec.checks[len(rec.checks)-1]
	rec.checks[len(rec.checks)-1] = nil
	rec.checks = rec.checks[:len(rec.checks)-1]
	return cp
}

// restore rebuilds a live replay state from the checkpoint against a
// freshly resolved trace. It returns false when any snapshotted job is
// missing from the trace — a sign the caller's invalidation missed a
// mutation — so the caller falls back to a full recorded replay instead
// of resuming from a stale base.
func (cp *checkpoint) restore(s *Scheduler, pol Policy, jobs []*rjob) (*state, bool) {
	byID := make(map[string]*rjob, len(jobs))
	for _, j := range jobs {
		byID[j.job.ID] = j
	}
	st := &state{
		sch:        s,
		pol:        pol,
		clock:      cp.clock,
		free:       append([]bool(nil), cp.free...),
		failed:     make(map[int]bool, len(cp.failed)),
		factors:    make(map[int]nodeFactors, len(cp.factors)),
		busy:       cp.busy,
		tenantBusy: make(map[string]float64, len(cp.tenantBusy)),
		results:    make([]Placement, len(jobs)),
	}
	if len(st.free) != s.topo.NumNodes() {
		return nil, false
	}
	for k, v := range cp.failed {
		st.failed[k] = v
	}
	for k, v := range cp.factors {
		st.factors[k] = v
	}
	for k, v := range cp.tenantBusy {
		st.tenantBusy[k] = v
	}
	for i, j := range jobs {
		st.results[i] = Placement{JobID: j.job.ID}
	}
	// Carry forward every snapshotted placement row: finished jobs keep
	// their final rows, started jobs their start/wait bookkeeping. Rows
	// of jobs the mutation removed are dropped; jobs new to the trace
	// keep their fresh zero rows.
	for _, p := range cp.results {
		j, ok := byID[p.JobID]
		if !ok {
			continue
		}
		p.Nodes = append([]int(nil), p.Nodes...)
		st.results[j.idx] = p
	}
	st.queue = make([]*qentry, 0, len(cp.queue))
	for _, qc := range cp.queue {
		q, ok := restoreQ(qc, byID, st)
		if !ok {
			return nil, false
		}
		st.queue = append(st.queue, q)
	}
	st.runs = make([]*run, 0, len(cp.runs))
	for _, rc := range cp.runs {
		q, ok := restoreQ(rc.q, byID, st)
		if !ok {
			return nil, false
		}
		st.runs = append(st.runs, &run{
			q:        q,
			nodes:    append([]int(nil), rc.nodes...),
			planner:  rc.planner,
			plan:     rc.plan,
			iters:    rc.iters,
			segStart: rc.segStart,
			finish:   rc.finish,
		})
	}
	return st, true
}

func restoreQ(qc qcheck, byID map[string]*rjob, st *state) (*qentry, bool) {
	j, ok := byID[qc.id]
	if !ok {
		return nil, false
	}
	return &qentry{
		j:        j,
		ready:    qc.ready,
		remIters: qc.remIters,
		started:  qc.started,
		lastErr:  qc.lastErr,
		res:      &st.results[j.idx],
	}, true
}

// resume replays the trace, reusing the recorder's newest surviving
// checkpoint as the starting state when one exists. The caller must have
// invalidated the recorder from every mutation's change point since the
// last recorded replay; under that contract resume is bit-identical to
// Replay (see the package differential tests).
func (s *Scheduler) resume(tr *Trace, rec *recorder) (*Schedule, error) {
	jobs, err := s.resolveTrace(tr)
	if err != nil {
		rec.reset()
		return nil, err
	}
	pol, err := PolicyByName(tr.Policy)
	if err != nil {
		rec.reset()
		return nil, err
	}
	arr := arrivalOrder(jobs)
	evs := lowerEvents(s.topo, tr.Scenario)
	if cp := rec.popLast(); cp != nil {
		if st, ok := cp.restore(s, pol, jobs); ok {
			ai, ei := 0, 0
			for ai < len(arr) && arr[ai].job.Submit <= st.clock {
				ai++
			}
			for ei < len(evs) && evs[ei].At <= st.clock {
				ei++
			}
			ei = st.run(arr, evs, ai, ei, rec)
			return buildSchedule(tr, jobs, st, ei), nil
		}
		rec.reset()
	}
	st := newState(s, pol, jobs)
	ei := st.run(arr, evs, 0, 0, rec)
	return buildSchedule(tr, jobs, st, ei), nil
}

// changePoint reports the earliest instant an event mutation can alter
// the replay.
func eventChange(evs []scenario.Event) float64 {
	t := math.Inf(1)
	for _, ev := range evs {
		t = min(t, ev.At)
	}
	return t
}
