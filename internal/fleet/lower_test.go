package fleet

import (
	"strings"
	"testing"

	"holmes/internal/engine"
	"holmes/internal/scenario"
)

// The lowering pass is the fleet's whole story for the extended scenario
// vocabulary: every new kind must behave exactly like its hand-written
// primitive encoding, and the kinds the placement carve cannot express
// must be rejected up front rather than silently ignored.

func TestLowerEventsFoldsNewKinds(t *testing.T) {
	topo := hybridTopo(t) // clusters {0,1}, nodes 0-1 and 2-3
	sc := &scenario.Scenario{Name: "lower", Events: []scenario.Event{
		{Kind: scenario.Straggler, At: 5, Node: 1, Factor: 0.5},
		{Kind: scenario.FailCluster, At: 10, Cluster: 1},
		{Kind: scenario.FlapLink, At: 15, Until: 20, Node: 0, DownMs: 100, UpMs: 100},
		{Kind: scenario.Loss, At: 25, Until: 30, Node: 2, Pct: 20},
		{Kind: scenario.Delay, At: 35, Node: 3, DelayMs: 5},
		{Kind: scenario.Jitter, At: 36, Node: 3, JitterMs: 2, Dist: "uniform"},
	}}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	got := lowerEvents(topo, sc)
	want := []scenario.Event{
		{Kind: scenario.DegradeNIC, At: 5, Node: 1, Class: scenario.ClassRDMA, Factor: 0.5},
		{Kind: scenario.DegradeNIC, At: 5, Node: 1, Class: scenario.ClassEther, Factor: 0.5},
		{Kind: scenario.FailNode, At: 10, Node: 2},
		{Kind: scenario.FailNode, At: 10, Node: 3},
		{Kind: scenario.FailNode, At: 15, Node: 0},
		{Kind: scenario.RestoreNode, At: 20, Node: 0},
		{Kind: scenario.DegradeNIC, At: 25, Node: 2, Class: scenario.ClassEther, Factor: 0.8},
		{Kind: scenario.RestoreNode, At: 30, Node: 2},
	}
	if len(got) != len(want) {
		t.Fatalf("lowered %d events, want %d:\n%+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lowered[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestNewKindsMatchHandLoweredTrace replays the same workload twice —
// once under the extended vocabulary, once under its hand-written
// primitive encoding — and requires bit-identical schedules. This pins
// the semantics of the lowering at the schedule level, not just the
// event level.
func TestNewKindsMatchHandLoweredTrace(t *testing.T) {
	jobs := []Job{
		{ID: "a", Submit: 0, GPUs: 16, Iterations: 2, Model: pg1()},
		{ID: "b", Submit: 1, GPUs: 8, Iterations: 2, Model: pg1()},
		{ID: "c", Submit: 2, GPUs: 8, Iterations: 1, Model: pg1()},
	}
	rich := &Trace{
		Name:  "lowered",
		Fleet: Spec{Env: "Hybrid", Nodes: 4},
		Scenario: &scenario.Scenario{Name: "rich", Events: []scenario.Event{
			{Kind: scenario.Straggler, At: 3, Node: 0, Factor: 0.5},
			{Kind: scenario.FailCluster, At: 40, Cluster: 1},
			{Kind: scenario.FlapLink, At: 80, Until: 120, Node: 1, DownMs: 50, UpMs: 50},
			{Kind: scenario.Loss, At: 130, Until: 200, Node: 1, Pct: 30},
		}},
		Jobs: jobs,
	}
	plain := &Trace{
		Name:  "lowered",
		Fleet: rich.Fleet,
		Scenario: &scenario.Scenario{Name: "plain", Events: []scenario.Event{
			{Kind: scenario.DegradeNIC, At: 3, Node: 0, Class: scenario.ClassRDMA, Factor: 0.5},
			{Kind: scenario.DegradeNIC, At: 3, Node: 0, Class: scenario.ClassEther, Factor: 0.5},
			{Kind: scenario.FailNode, At: 40, Node: 2},
			{Kind: scenario.FailNode, At: 40, Node: 3},
			{Kind: scenario.FailNode, At: 80, Node: 1},
			{Kind: scenario.RestoreNode, At: 120, Node: 1},
			{Kind: scenario.DegradeNIC, At: 130, Node: 1, Class: scenario.ClassEther, Factor: 0.7},
			{Kind: scenario.RestoreNode, At: 200, Node: 1},
		}},
		Jobs: jobs,
	}
	eng := engine.New(engine.Config{})
	got, err := Replay(eng, rich)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Replay(eng, plain)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := marshalSched(t, got), marshalSched(t, want); g != w {
		t.Fatalf("extended-vocabulary trace diverged from its primitive encoding:\nrich:  %s\nplain: %s", g, w)
	}
	// The scenario must have bitten: node 0 straggles from t=3, so job a
	// (16 GPUs = both IB nodes in a 4-node hybrid, or a cross split)
	// cannot finish at the pristine-fabric makespan.
	pristine, err := Replay(eng, &Trace{Name: "pristine", Fleet: rich.Fleet, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan <= pristine.Makespan {
		t.Fatalf("faulted makespan %.6g not worse than pristine %.6g — scenario never bit", got.Makespan, pristine.Makespan)
	}
}

// TestFleetRejectsSimulationOnlyKinds: partitions live in the fabric's
// trunks and background traffic in the flow layer; the placement carve
// models neither, so the fleet must refuse them loudly.
func TestFleetRejectsSimulationOnlyKinds(t *testing.T) {
	topo := hybridTopo(t)
	eng := engine.New(engine.Config{})
	m, err := NewManager(eng, topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []scenario.Event{
		{Kind: scenario.Partition, At: 5, Cluster: 0, Peer: 1},
		{Kind: scenario.BackgroundTraffic, At: 5, Src: 0, Dst: 1, Gbps: 5},
	} {
		err := m.ApplyEvent(ev)
		if err == nil {
			t.Fatalf("ApplyEvent(%s) succeeded, want rejection", ev.Kind)
		}
		if !strings.Contains(err.Error(), "not supported by the fleet scheduler") {
			t.Fatalf("ApplyEvent(%s) error %q lacks the kind-rejection message", ev.Kind, err)
		}
	}
	// A rejected event must not leak into the timeline.
	if _, err := m.Schedule(); err != nil {
		t.Fatalf("schedule after rejected events: %v", err)
	}
}
