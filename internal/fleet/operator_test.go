package fleet

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"holmes/internal/engine"
	"holmes/internal/scenario"
)

func TestFakeClock(t *testing.T) {
	c := NewFakeClock()
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %g", c.Now())
	}
	past := c.After(0)
	select {
	case <-past:
	default:
		t.Fatal("After(now) must fire immediately")
	}
	future := c.After(10)
	select {
	case <-future:
		t.Fatal("After(10) fired at t=0")
	default:
	}
	c.Advance(9.5)
	select {
	case <-future:
		t.Fatal("After(10) fired at t=9.5")
	default:
	}
	c.Advance(0.5)
	select {
	case <-future:
	default:
		t.Fatal("After(10) did not fire at t=10")
	}
}

func TestRealClockAfter(t *testing.T) {
	c := NewRealClock()
	select {
	case <-c.After(c.Now()):
	case <-time.After(5 * time.Second):
		t.Fatal("real After(now) did not fire")
	}
	if n1, n2 := c.Now(), c.Now(); n2 < n1 {
		t.Fatal("real clock went backwards")
	}
}

// testOp builds an operator on a fake clock over the given journal dir.
func testOp(t *testing.T, eng *engine.Engine, dir string, clock Clock, every int) *Operator {
	t.Helper()
	op, err := NewOperator(eng, Spec{Env: "Hybrid", Nodes: 4}, OperatorConfig{
		Clock:         clock,
		Journal:       filepath.Join(dir, "fleet.journal"),
		SnapshotEvery: every,
	})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// at advances the operator's fake clock so op.Now() lands exactly on t
// (script times are small integers, so the float arithmetic is exact).
func at(op *Operator, c *FakeClock, t float64) { c.Advance(t - op.Now()) }

func TestOperatorLifecycle(t *testing.T) {
	eng := engine.New(engine.Config{})
	dir := t.TempDir()
	clock := NewFakeClock()
	op := testOp(t, eng, dir, clock, 1000)
	defer op.Abort()

	// Zero submit stamps with the wall instant; explicit stamps stick.
	at(op, clock, 3)
	if err := op.Submit(Job{ID: "live", GPUs: 16, Iterations: 2, Model: pg1()}); err != nil {
		t.Fatal(err)
	}
	if err := op.Submit(Job{ID: "scripted", Submit: 7, GPUs: 16, Iterations: 1, Model: pg1()}); err != nil {
		t.Fatal(err)
	}
	sched, err := op.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Jobs[0].JobID != "live" {
		t.Fatalf("trace order: %s first, want live", sched.Jobs[0].JobID)
	}
	st, ok, err := op.Job("live")
	if err != nil || !ok {
		t.Fatalf("job lookup: %v %v", ok, err)
	}
	if st.Start != 3 {
		t.Fatalf("live job stamped at %g, want the wall instant 3", st.Start)
	}
	if st.State != "running" {
		t.Fatalf("state %q at t=3, want running (placed at submit)", st.State)
	}
	sp, _, _ := op.Job("scripted")
	if sp.State != "queued" {
		t.Fatalf("scripted job state %q at t=3, want queued", sp.State)
	}

	// Walk the wall clock past both finishes: states flip to done, and
	// the idle-barrier tick retires everything into Done.
	at(op, clock, 1000)
	st, _, _ = op.Job("live")
	if st.State != "done" {
		t.Fatalf("state %q after finish, want done", st.State)
	}
	op.tick()
	if op.Len() != 0 {
		t.Fatalf("%d live jobs after idle-barrier retirement", op.Len())
	}
	done := op.Done()
	if len(done) != 2 {
		t.Fatalf("retired %d jobs, want 2", len(done))
	}
	if _, ok, _ := op.Job("live"); !ok {
		t.Fatal("retired job vanished from lookup")
	}
	if err := op.Submit(Job{ID: "live", GPUs: 8, Model: pg1()}); err == nil {
		t.Fatal("re-submitting a retired ID must be refused")
	}
	// Retirement cut a snapshot and reset the journal.
	if _, err := os.Stat(filepath.Join(dir, "fleet.journal.snap")); err != nil {
		t.Fatalf("no snapshot after retirement: %v", err)
	}
	if op.j.Seq() == 0 {
		t.Fatal("journal seq reset to zero; numbering must continue")
	}
}

// opScript drives one operator through the shared soak script up to
// step n (aligning the fake clock to absolute instants, so runs on
// different operators are comparable bit for bit).
func opScript(t *testing.T, op *Operator, clock *FakeClock, from, to int) {
	t.Helper()
	steps := []func(){
		func() { at(op, clock, 1); must(t, op.Submit(Job{ID: "w1", GPUs: 16, Iterations: 3, Model: pg1(), Tenant: "t1"})) },
		func() { at(op, clock, 2); must(t, op.Submit(Job{ID: "w2", GPUs: 16, Iterations: 3, Model: pg1(), Priority: 1})) },
		func() { at(op, clock, 3); must(t, op.SetPolicy("priority")) },
		func() {
			at(op, clock, 4)
			must(t, op.ApplyEvent(scenario.Event{Kind: scenario.DegradeNIC, At: 6, Node: 0, Class: scenario.ClassRDMA, Factor: 0.5}))
		},
		func() {
			at(op, clock, 5)
			must(t, op.Submit(Job{ID: "w3", GPUs: 32, Iterations: 1, Model: pg1(), Priority: 3, Deadline: 900}))
		},
		func() { at(op, clock, 6); must(t, op.Submit(Job{ID: "w4", GPUs: 8, Iterations: 2, Model: pg1(), Tenant: "t1"})) },
		func() {
			at(op, clock, 8)
			if _, err := op.Cancel("w4"); err != nil {
				t.Fatal(err)
			}
		},
		func() { at(op, clock, 9); must(t, op.Submit(Job{ID: "w5", GPUs: 8, Iterations: 1, Model: pg1(), Weight: 2})) },
	}
	for i := from; i < to; i++ {
		steps[i]()
	}
}

const opScriptLen = 8

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestOperatorKillMidSoakRecovery is the crash-recovery contract: an
// operator killed cold mid-soak (no snapshot, no clean shutdown, a
// torn record on the tail) and restarted from its journal must resume
// and finish the soak bit-identically to an operator that never died.
func TestOperatorKillMidSoakRecovery(t *testing.T) {
	eng := engine.New(engine.Config{})

	// Control run: never killed.
	dirC := t.TempDir()
	clockC := NewFakeClock()
	ctl := testOp(t, eng, dirC, clockC, 1000)
	defer ctl.Abort()
	opScript(t, ctl, clockC, 0, opScriptLen)

	// Victim run: killed after step 5, with a torn half-record as the
	// crash leaves it, then recovered and driven through the rest.
	dirV := t.TempDir()
	clockV := NewFakeClock()
	vic := testOp(t, eng, dirV, clockV, 1000)
	opScript(t, vic, clockV, 0, 5)
	preKill := vic.Now()
	must(t, vic.Abort())
	jpath := filepath.Join(dirV, "fleet.journal")
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
	must(t, err)
	_, err = f.WriteString(`{"seq":99,"kind":"subm`)
	must(t, err)
	f.Close()

	clockV2 := NewFakeClock()
	rec := testOp(t, eng, dirV, clockV2, 1000)
	defer rec.Abort()
	if now := rec.Now(); now < preKill-1e-9 {
		t.Fatalf("recovered wall clock %g went backwards past %g", now, preKill)
	}
	if rec.Policy() != "priority" {
		t.Fatalf("recovered policy %q, want priority", rec.Policy())
	}
	opScript(t, rec, clockV2, 5, opScriptLen)

	// Bit-identical live schedules while the soak is still in flight.
	schedC, err := ctl.Schedule()
	must(t, err)
	schedR, err := rec.Schedule()
	must(t, err)
	if a, b := marshalSched(t, schedC), marshalSched(t, schedR); a != b {
		t.Fatalf("recovered schedule diverged from the unkilled run:\nunkilled:  %s\nrecovered: %s", a, b)
	}

	// Run both to quiescence: identical final placements for every job.
	at(ctl, clockC, 5000)
	at(rec, clockV2, 5000)
	ctl.tick()
	rec.tick()
	doneC, doneR := ctl.Done(), rec.Done()
	if len(doneC) == 0 {
		t.Fatal("control run retired nothing; the soak never completed")
	}
	sortPlacements(doneC)
	sortPlacements(doneR)
	if len(doneC) != len(doneR) {
		t.Fatalf("retired %d vs %d jobs", len(doneC), len(doneR))
	}
	for i := range doneC {
		if diff := diffPlacements(doneC[i], doneR[i]); diff != "" {
			t.Errorf("job %s final placement diverged after recovery:\n%s", doneC[i].JobID, diff)
		}
	}
}

func sortPlacements(ps []Placement) {
	sort.Slice(ps, func(a, b int) bool { return ps[a].JobID < ps[b].JobID })
}

// TestOperatorSnapshotJournalEquivalence is the codec property test:
// recovering through aggressive snapshot+journal cycles (snapshot
// after every record, kill and restart after every script step) must
// land on the same state as one uninterrupted journal-only run.
func TestOperatorSnapshotJournalEquivalence(t *testing.T) {
	eng := engine.New(engine.Config{})

	dirA := t.TempDir()
	clockA := NewFakeClock()
	plain := testOp(t, eng, dirA, clockA, 100000)
	defer plain.Abort()
	opScript(t, plain, clockA, 0, opScriptLen)

	dirB := t.TempDir()
	var churn *Operator
	resume := 0.0
	for i := 0; i < opScriptLen; i++ {
		clock := NewFakeClock()
		churn = testOp(t, eng, dirB, clock, 1)
		if now := churn.Now(); now > resume {
			resume = now
		}
		clock.Advance(resume - churn.Now()) // never let wall time regress between lives
		opScript(t, churn, clock, i, i+1)
		must(t, churn.Snapshot())
		resume = churn.Now()
		must(t, churn.Abort())
	}
	clock := NewFakeClock()
	churn = testOp(t, eng, dirB, clock, 1)
	defer churn.Abort()

	schedA, err := plain.Schedule()
	must(t, err)
	schedB, err := churn.Schedule()
	must(t, err)
	if a, b := marshalSched(t, schedA), marshalSched(t, schedB); a != b {
		t.Fatalf("snapshot-churned state diverged from journal-only run:\nplain: %s\nchurn: %s", a, b)
	}
	if plain.Policy() != churn.Policy() {
		t.Fatalf("policy diverged: %q vs %q", plain.Policy(), churn.Policy())
	}
}

// TestOperatorRejectsForeignState: a journal or snapshot from a
// different fleet spec must refuse to load rather than quietly
// scheduling on the wrong topology.
func TestOperatorRejectsForeignState(t *testing.T) {
	eng := engine.New(engine.Config{})
	dir := t.TempDir()
	clock := NewFakeClock()
	op := testOp(t, eng, dir, clock, 1000)
	must(t, op.Submit(Job{ID: "a", GPUs: 8, Model: pg1()}))
	must(t, op.Abort())

	_, err := NewOperator(eng, Spec{Env: "InfiniBand", Nodes: 8}, OperatorConfig{
		Clock:   NewFakeClock(),
		Journal: filepath.Join(dir, "fleet.journal"),
	})
	if err == nil {
		t.Fatal("operator recovered a journal written for a different fleet")
	}
}

// TestOperatorJournalSeqSeededFromSnapshot: a snapshot truncates the
// journal, so a restarted operator must resume sequence numbering from
// the snapshot's Seq. Regression: when the restarted journal numbered
// from 1, mutations acknowledged after the restart fell into the range
// the snapshot covers, and the *next* recovery silently skipped them —
// losing fsync'd, acknowledged work.
func TestOperatorJournalSeqSeededFromSnapshot(t *testing.T) {
	eng := engine.New(engine.Config{})
	dir := t.TempDir()

	op := testOp(t, eng, dir, NewFakeClock(), 100000)
	must(t, op.Submit(Job{ID: "a", GPUs: 8, Iterations: 1, Model: pg1()}))
	must(t, op.Submit(Job{ID: "b", GPUs: 8, Iterations: 1, Model: pg1()}))
	must(t, op.Snapshot()) // covers seq 1..3, journal truncated
	snapSeq := op.j.Seq()
	must(t, op.Abort()) // crash: empty journal next to the snapshot

	op = testOp(t, eng, dir, NewFakeClock(), 100000)
	must(t, op.Submit(Job{ID: "c", GPUs: 8, Iterations: 1, Model: pg1()}))
	if seq := op.j.Seq(); seq <= snapSeq {
		t.Fatalf("journal seq %d after recovery, must continue past the snapshot's %d", seq, snapSeq)
	}
	must(t, op.Abort()) // second crash, this time with a journaled suffix

	op = testOp(t, eng, dir, NewFakeClock(), 100000)
	defer op.Abort()
	if !op.Has("c") {
		t.Fatal("acknowledged post-snapshot submit lost by the second recovery")
	}
	if op.Len() != 3 {
		t.Fatalf("recovered %d live jobs, want 3", op.Len())
	}
}

// TestOperatorRetireRollsBackOnJournalFailure: when the retire record
// cannot be journaled, the in-memory retirement must be undone — jobs
// back in the live set, done map untouched — so memory never runs
// ahead of durable state.
func TestOperatorRetireRollsBackOnJournalFailure(t *testing.T) {
	eng := engine.New(engine.Config{})
	dir := t.TempDir()
	clock := NewFakeClock()
	op := testOp(t, eng, dir, clock, 100000)
	must(t, op.Submit(Job{ID: "a", GPUs: 8, Iterations: 1, Model: pg1()}))
	must(t, op.j.Close()) // every append now fails
	at(op, clock, 5000)   // past the finish edge: idle barrier reached

	op.mu.Lock()
	err := op.tryRetireLocked()
	op.mu.Unlock()
	if err == nil {
		t.Fatal("retirement must surface the journal failure")
	}
	if op.Len() != 1 {
		t.Fatalf("%d live jobs after failed retirement, want the rollback to restore 1", op.Len())
	}
	if done := op.Done(); len(done) != 0 {
		t.Fatalf("done set %v after failed retirement, want empty", done)
	}
	must(t, op.Abort())
}

// TestOperatorSnapshotFailureKeepsJournal: a snapshot that cannot be
// published must leave the journal intact, so recovery still replays
// the full record set.
func TestOperatorSnapshotFailureKeepsJournal(t *testing.T) {
	eng := engine.New(engine.Config{})
	dir := t.TempDir()
	op := testOp(t, eng, dir, NewFakeClock(), 100000)
	must(t, op.Submit(Job{ID: "a", GPUs: 8, Iterations: 1, Model: pg1()}))
	op.mu.Lock()
	op.snapPath = filepath.Join(dir, "missing", "fleet.snap") // unpublishable
	op.mu.Unlock()
	if err := op.Snapshot(); err == nil {
		t.Fatal("snapshot into a missing directory must fail")
	}
	must(t, op.Abort())

	rec := testOp(t, eng, dir, NewFakeClock(), 100000)
	defer rec.Abort()
	if !rec.Has("a") {
		t.Fatal("failed snapshot truncated the journal: the submit did not survive")
	}
}

// TestOperatorCloseAbortIdempotent: Close and Abort in any combination
// or repetition must never panic on the stop channel.
func TestOperatorCloseAbortIdempotent(t *testing.T) {
	eng := engine.New(engine.Config{})
	op := testOp(t, eng, t.TempDir(), NewFakeClock(), 1000)
	must(t, op.Close())
	if err := op.Abort(); err != nil {
		t.Fatalf("abort after close: %v", err)
	}
	_ = op.Close() // may report the closed journal, must not panic
}

// TestOperatorEventLoopRetires proves the wall-clock driver itself (no
// manual ticks) wakes at the finish edge and retires: the loop's
// After(edge) wiring, not the test, drives the transition.
func TestOperatorEventLoopRetires(t *testing.T) {
	eng := engine.New(engine.Config{})
	dir := t.TempDir()
	clock := NewFakeClock()
	op := testOp(t, eng, dir, clock, 1000)
	defer op.Abort()
	must(t, op.Submit(Job{ID: "solo", GPUs: 8, Iterations: 1, Model: pg1()}))
	st, _, err := op.Job("solo")
	must(t, err)
	if st.Finish <= 0 {
		t.Fatalf("no projected finish: %+v", st)
	}
	// Let the loop pick up the submit and arm its edge timer, then step
	// the clock past the finish edge and wait for the autonomous retire.
	deadline := time.After(10 * time.Second)
	for {
		clock.Advance(st.Finish + 1 - clock.Now())
		if op.Len() == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("event loop never retired the finished job")
		case <-time.After(time.Millisecond):
		}
	}
	if got := op.Done(); len(got) != 1 || got[0].JobID != "solo" {
		t.Fatalf("done = %+v, want the solo job", got)
	}
}
