package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"holmes/internal/scenario"
)

func journalAt(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "fleet.journal")
}

func mustAppend(t *testing.T, j *Journal, rec Record) uint64 {
	t.Helper()
	seq, err := j.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestJournalAppendAndRecover(t *testing.T) {
	path := journalAt(t)
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	spec := Spec{Env: "Hybrid", Nodes: 4}
	mustAppend(t, j, Record{At: 0, Kind: RecCreate, Fleet: &spec, Policy: "priority"})
	mustAppend(t, j, Record{At: 1.5, Kind: RecSubmit, Job: &Job{ID: "a", Submit: 1.5, GPUs: 8, Model: pg1()}})
	mustAppend(t, j, Record{At: 2, Kind: RecApplyEvent, Event: &scenario.Event{Kind: scenario.FailNode, At: 2, Node: 1}})
	mustAppend(t, j, Record{At: 3, Kind: RecCancel, ID: "a"})
	if j.Seq() != 4 {
		t.Fatalf("seq %d, want 4", j.Seq())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
	if recs[0].Kind != RecCreate || recs[0].Fleet == nil || recs[0].Fleet.Nodes != 4 || recs[0].Policy != "priority" {
		t.Fatalf("create record corrupted: %+v", recs[0])
	}
	if recs[1].Job == nil || recs[1].Job.ID != "a" || recs[1].Job.Submit != 1.5 {
		t.Fatalf("submit record corrupted: %+v", recs[1])
	}
	if recs[2].Event == nil || recs[2].Event.Kind != scenario.FailNode {
		t.Fatalf("event record corrupted: %+v", recs[2])
	}
	// Sequence numbering continues across the restart.
	if seq := mustAppend(t, j2, Record{At: 4, Kind: RecCancel, ID: "b"}); seq != 5 {
		t.Fatalf("post-recovery seq %d, want 5", seq)
	}
}

// TestJournalTornTailDiscarded: a crash mid-append leaves a partial
// final line. Recovery must keep every intact record, drop the tail,
// and truncate it so the next append writes a clean line.
func TestJournalTornTailDiscarded(t *testing.T) {
	path := journalAt(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Kind: RecCreate, Fleet: &Spec{Env: "Hybrid", Nodes: 4}})
	mustAppend(t, j, Record{At: 1, Kind: RecCancel, ID: "x"})
	j.Close()
	// Simulate the torn write: half a record, no terminating newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"at":2,"kind":"sub`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (torn third dropped)", len(recs))
	}
	// The truncation is real: the file ends exactly at the last intact
	// record, and the journal continues from seq 2.
	if seq := mustAppend(t, j2, Record{At: 2, Kind: RecCancel, ID: "y"}); seq != 3 {
		t.Fatalf("post-torn seq %d, want 3", seq)
	}
	j2.Close()
	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("after repair + append: %d records, want 3", len(recs))
	}
}

// A torn final line that happens to be parseable JSON is still not
// trusted: only newline-terminated records count.
func TestJournalUnterminatedFinalRecordDropped(t *testing.T) {
	data := []byte(`{"seq":1,"kind":"cancel","id":"a"}` + "\n" + `{"seq":2,"kind":"cancel","id":"b"}`)
	recs, good, err := decodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("recs = %+v, want just record a", recs)
	}
	if good != bytes.IndexByte(data, '\n')+1 {
		t.Fatalf("good = %d, want end of first line", good)
	}
}

func TestJournalUnknownKindRejected(t *testing.T) {
	path := journalAt(t)
	line := `{"seq":1,"at":0,"kind":"warp_core_breach"}` + "\n" + `{"seq":2,"at":1,"kind":"cancel","id":"a"}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("unknown kind must reject recovery, got %v", err)
	}
}

func TestJournalCorruptMidFileRejected(t *testing.T) {
	path := journalAt(t)
	line := `{"seq":1,"at":0,"kind":"cancel","id":"a"}` + "\n" + `NOT JSON` + "\n" + `{"seq":3,"at":2,"kind":"cancel","id":"c"}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "corrupt mid-file") {
		t.Fatalf("mid-file corruption must be fatal, got %v", err)
	}
}

func TestJournalNonMonotonicSeqRejected(t *testing.T) {
	line := `{"seq":5,"kind":"cancel","id":"a"}` + "\n" + `{"seq":5,"kind":"cancel","id":"b"}` + "\n"
	if _, _, err := decodeJournal([]byte(line)); err == nil || !strings.Contains(err.Error(), "sequence went backwards") {
		t.Fatalf("duplicate seq must be fatal, got %v", err)
	}
}

func TestJournalReset(t *testing.T) {
	path := journalAt(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Kind: RecCreate, Fleet: &Spec{Env: "Hybrid", Nodes: 4}})
	mustAppend(t, j, Record{At: 1, Kind: RecCancel, ID: "a"})
	if err := j.Reset(2); err != nil {
		t.Fatal(err)
	}
	// The log restarts empty but the numbering continues.
	if seq := mustAppend(t, j, Record{At: 2, Kind: RecCancel, ID: "b"}); seq != 3 {
		t.Fatalf("post-reset seq %d, want 3", seq)
	}
	j.Close()
	_, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("post-reset journal holds %+v, want only seq-3 record", recs)
	}
}

func TestFleetSnapshotRoundTrip(t *testing.T) {
	snap := FleetSnapshot{
		Seq:    42,
		Now:    123.5,
		Fleet:  Spec{Env: "Hybrid", Nodes: 4},
		Policy: "fair",
		Jobs:   []Job{{ID: "a", Submit: 2, GPUs: 8, Model: pg1(), Tenant: "t1"}},
		Scenario: &scenario.Scenario{
			Name:   "s",
			Events: []scenario.Event{{Kind: scenario.FailNode, At: 9, Node: 0}},
		},
		Done: []Placement{{JobID: "z", Nodes: []int{0, 1}, Finish: 50}},
	}
	doc, err := EncodeFleetSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFleetSnapshot(doc)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(snap)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", a, b)
	}

	// A flipped payload byte fails the checksum and rejects the file.
	if !bytes.Contains(doc, []byte(`"fair"`)) {
		t.Fatal("test setup: payload marker not found")
	}
	bad := bytes.Replace(doc, []byte(`"fair"`), []byte(`"fifo"`), 1)
	if _, err := DecodeFleetSnapshot(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered payload must fail the checksum, got %v", err)
	}
	// Wrong format / version are rejected before the payload is read.
	for _, repl := range [][2]string{
		{FleetSnapshotFormat, "holmes-cache-snapshot"},
		{`"version": 1`, `"version": 99`},
	} {
		bad := bytes.Replace(doc, []byte(repl[0]), []byte(repl[1]), 1)
		if _, err := DecodeFleetSnapshot(bad); err == nil {
			t.Fatalf("snapshot with %q accepted", repl[1])
		}
	}
	if _, err := DecodeFleetSnapshot([]byte(`{"format":`)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// FuzzJournalDecode hardens the recovery path: arbitrary bytes must
// never panic, the good-prefix length must stay in bounds, and
// decoding the good prefix again must be a fixed point (same records,
// same length) — that is exactly the truncate-and-reopen cycle
// OpenJournal performs after a crash.
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte(`{"seq":1,"at":0,"kind":"create","fleet":{"env":"Hybrid","nodes":4},"policy":"fifo"}` + "\n"))
	f.Add([]byte(`{"seq":1,"kind":"submit","job":{"id":"a","gpus":8,"model":{"group":1}}}` + "\n" + `{"seq":2,"kind":"cancel","id":"a"}` + "\n"))
	f.Add([]byte(`{"seq":1,"kind":"retire","ids":["a","b"]}` + "\n" + `{"seq":2,"kind":"set_pol`))
	f.Add([]byte(`{"seq":1,"kind":"apply_event","event":{"kind":"fail_node","at":3,"node":1}}` + "\n"))
	f.Add([]byte(`{"seq":1,"kind":"warp"}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`garbage`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := decodeJournal(data)
		if good < 0 || good > len(data) {
			t.Fatalf("good prefix %d out of bounds [0,%d]", good, len(data))
		}
		if err != nil {
			return
		}
		again, good2, err2 := decodeJournal(data[:good])
		if err2 != nil {
			t.Fatalf("good prefix failed to re-decode: %v", err2)
		}
		if good2 != good || len(again) != len(recs) {
			t.Fatalf("re-decode not a fixed point: %d/%d records, %d/%d bytes", len(again), len(recs), good2, good)
		}
		for i := range recs {
			a, _ := json.Marshal(recs[i])
			b, _ := json.Marshal(again[i])
			if string(a) != string(b) {
				t.Fatalf("record %d drifted on re-decode:\n%s\nvs\n%s", i, a, b)
			}
		}
	})
}
