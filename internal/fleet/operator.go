package fleet

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"holmes/internal/engine"
	"holmes/internal/events"
	"holmes/internal/scenario"
	"holmes/internal/topology"
)

// Operator is the always-on face of one fleet: a Manager driven by a
// wall clock and backed by a durable journal. Where the Manager lives
// purely on the virtual replay clock, the Operator binds that clock to
// real instants — submits are stamped with the current wall time, an
// event loop wakes exactly at the next placement edge or scenario
// instant, completed work is retired at idle barriers — and every
// mutation is journaled so a restarted process recovers its fleet and
// resumes scheduling bit-identically to a process that never died.
//
// Determinism across a crash is the design center:
//
//   - The journal records mutations (inputs), never schedules
//     (outputs): replaying the records through the same deterministic
//     Manager reproduces every placement bit for bit.
//   - Submit stamps a wall time only when the job carries none, and the
//     stamp itself is journaled — recovery replays the stamped record
//     and never re-stamps.
//   - Retirement happens only at idle barriers (every live job finished
//     or unplaceable, nothing queued), where removing finished jobs
//     cannot change how any future submit replays; the retirement is
//     itself a journal record, so killed and unkilled runs retire at
//     identical points.
type Operator struct {
	m     *Manager
	clock Clock
	j     *Journal

	mu       sync.Mutex
	spec     Spec
	snapPath string
	base     float64 // operator wall instant at construction (recovery resumes here)
	epoch    float64 // clock reading at construction
	done      map[string]Placement
	doneIDs   []string // retirement order, for stable snapshots
	sinceSnp  int      // journal records since the last snapshot
	snapEvery int

	// Live-observability state (nil hub = publishing disabled). Events
	// mirror journal records post-append (DESIGN.md decision 14) and
	// derived transitions are diffed against lastState so each one is
	// published exactly once; edgeHorizon marks how far into the
	// scenario timeline "fired" edges have been announced.
	events      *events.Hub
	fp          string            // topology fingerprint, the stream's fleet label
	lastState   map[string]string // job ID -> last published state
	edgeHorizon float64

	stop     chan struct{}
	stopOnce sync.Once // Close and Abort may each run, in any order
	wake     chan struct{}
	wg       sync.WaitGroup
}

// OperatorConfig configures NewOperator.
type OperatorConfig struct {
	// Clock drives the operator (nil = NewRealClock). Tests inject a
	// FakeClock to make whole operator lifetimes deterministic.
	Clock Clock
	// Journal is the path of the fsync'd mutation log (required).
	Journal string
	// Snapshot is the snapshot document path ("" = Journal + ".snap").
	Snapshot string
	// Policy is the scheduling policy for a freshly created fleet
	// ("" = DefaultPolicy). Ignored on recovery: the journal knows.
	Policy string
	// SnapshotEvery bounds journal growth: a snapshot is cut after
	// this many records (default 64; retirement always snapshots).
	SnapshotEvery int
	// Events, when set, receives the operator's live event stream: job
	// transitions, scenario edges, policy changes, retirements. Every
	// event is published strictly after the journal record that made
	// the change durable, so the stream can never show a state a crash
	// would un-happen. Recovery replay publishes nothing — the stream
	// carries only what changes after the hub is attached.
	Events *events.Hub
}

// NewOperator opens (or recovers) the fleet at cfg.Journal. A fresh
// journal creates the fleet from spec and writes the create record; an
// existing journal/snapshot pair recovers the fleet — spec must then
// match the recorded one — and resumes the wall clock from the
// recovered instant.
func NewOperator(eng *engine.Engine, spec Spec, cfg OperatorConfig) (*Operator, error) {
	if cfg.Journal == "" {
		return nil, fmt.Errorf("fleet: operator needs a journal path")
	}
	if cfg.Clock == nil {
		cfg.Clock = NewRealClock()
	}
	if cfg.Snapshot == "" {
		cfg.Snapshot = cfg.Journal + ".snap"
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 64
	}

	var snap *FleetSnapshot
	if data, err := os.ReadFile(cfg.Snapshot); err == nil {
		s, err := DecodeFleetSnapshot(data)
		if err != nil {
			return nil, err // reject-all: a corrupt snapshot never half-loads
		}
		snap = &s
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	j, recs, err := OpenJournal(cfg.Journal)
	if err != nil {
		return nil, err
	}

	o := &Operator{
		clock:     cfg.Clock,
		j:         j,
		snapPath:  cfg.Snapshot,
		epoch:     cfg.Clock.Now(),
		done:      make(map[string]Placement),
		snapEvery: cfg.SnapshotEvery,
		stop:      make(chan struct{}),
		wake:      make(chan struct{}, 1),
	}
	fail := func(err error) (*Operator, error) {
		j.Close()
		return nil, err
	}

	switch {
	case snap != nil:
		// The snapshot truncated the journal, so sequence numbering must
		// resume from the snapshot's Seq — a journal restarted at 1 would
		// collide with the range the snapshot covers, and the *next*
		// recovery would silently skip those records.
		j.SeedSeq(snap.Seq)
		if err := o.restoreSnapshot(eng, spec, *snap); err != nil {
			return fail(err)
		}
		// Replay only the suffix the snapshot does not cover.
		for _, rec := range recs {
			if rec.Seq <= snap.Seq {
				continue
			}
			if err := o.applyRecord(rec); err != nil {
				return fail(fmt.Errorf("fleet: journal replay seq %d: %w", rec.Seq, err))
			}
			o.base = math.Max(o.base, rec.At)
		}
	case len(recs) > 0:
		if recs[0].Kind != RecCreate || recs[0].Fleet == nil {
			return fail(fmt.Errorf("fleet: journal %s does not begin with a create record", cfg.Journal))
		}
		if err := o.create(eng, *recs[0].Fleet, recs[0].Policy); err != nil {
			return fail(err)
		}
		if !specEqual(spec, *recs[0].Fleet) {
			return fail(fmt.Errorf("fleet: journal %s was created for a different fleet spec", cfg.Journal))
		}
		for _, rec := range recs[1:] {
			if err := o.applyRecord(rec); err != nil {
				return fail(fmt.Errorf("fleet: journal replay seq %d: %w", rec.Seq, err))
			}
			o.base = math.Max(o.base, rec.At)
		}
	default:
		if err := o.create(eng, spec, cfg.Policy); err != nil {
			return fail(err)
		}
		if _, err := j.Append(Record{At: 0, Kind: RecCreate, Fleet: &spec, Policy: cfg.Policy}); err != nil {
			return fail(err)
		}
	}

	if cfg.Events != nil {
		o.primeEvents(cfg.Events)
	}

	o.wg.Add(1)
	go o.loop()
	return o, nil
}

// primeEvents attaches the hub and initializes publishing state
// without emitting anything: recovery replay is history the stream's
// subscribers either already saw or never asked for, so the diff
// baseline starts at the recovered present. Runs before the loop
// starts, so no lock is needed.
func (o *Operator) primeEvents(hub *events.Hub) {
	o.events = hub
	o.fp = o.m.Topology().Fingerprint()
	o.lastState = make(map[string]string)
	now := o.now()
	if sched, err := o.m.Schedule(); err == nil {
		for _, p := range sched.Jobs {
			o.lastState[p.JobID] = placementState(p, now)
		}
	}
	o.edgeHorizon = now
}

func specEqual(a, b Spec) bool {
	ta, err := a.Topology()
	if err != nil {
		return false
	}
	tb, err := b.Topology()
	if err != nil {
		return false
	}
	return ta.Fingerprint() == tb.Fingerprint()
}

// create builds the fresh manager.
func (o *Operator) create(eng *engine.Engine, spec Spec, policy string) error {
	topo, err := spec.Topology()
	if err != nil {
		return err
	}
	m, err := NewManager(eng, topo)
	if err != nil {
		return err
	}
	if err := m.SetPolicy(policy); err != nil {
		return err
	}
	o.m, o.spec = m, spec
	return nil
}

// restoreSnapshot rebuilds the manager from a snapshot document.
func (o *Operator) restoreSnapshot(eng *engine.Engine, spec Spec, s FleetSnapshot) error {
	if !specEqual(spec, s.Fleet) {
		return fmt.Errorf("fleet: snapshot %s was taken for a different fleet spec", o.snapPath)
	}
	if err := o.create(eng, s.Fleet, s.Policy); err != nil {
		return err
	}
	if s.Scenario != nil {
		if err := o.m.SetScenario(s.Scenario); err != nil {
			return err
		}
	}
	for _, j := range s.Jobs {
		if err := o.m.Submit(j); err != nil {
			return err
		}
	}
	for _, p := range s.Done {
		o.done[p.JobID] = p
		o.doneIDs = append(o.doneIDs, p.JobID)
	}
	o.base = s.Now
	return nil
}

// applyRecord folds one recovered journal record into the manager.
// Replay is quiet: nothing is re-journaled, and retirement re-derives
// the retired placements from the (deterministic) schedule exactly as
// the live path did.
func (o *Operator) applyRecord(rec Record) error {
	switch rec.Kind {
	case RecCreate:
		return fmt.Errorf("unexpected create record mid-journal")
	case RecSubmit:
		if rec.Job == nil {
			return fmt.Errorf("submit record without a job")
		}
		return o.m.Submit(*rec.Job)
	case RecCancel:
		o.m.Cancel(rec.ID)
		return nil
	case RecApplyEvent:
		if rec.Event == nil {
			return fmt.Errorf("apply_event record without an event")
		}
		return o.m.ApplyEvent(*rec.Event)
	case RecSetScenario:
		return o.m.SetScenario(rec.Scenario)
	case RecSetPolicy:
		return o.m.SetPolicy(rec.Policy)
	case RecRetire:
		return o.retireIDs(rec.IDs)
	default:
		return fmt.Errorf("unknown kind %q", rec.Kind)
	}
}

// retireIDs moves the listed jobs from the live set into the done map,
// capturing their final placements from the current schedule. Shared
// by the live idle-barrier path and journal replay: both derive the
// placements from the same deterministic schedule, so a recovered done
// map is bit-identical to the unkilled one.
func (o *Operator) retireIDs(ids []string) error {
	sched, err := o.m.Schedule()
	if err != nil {
		return err
	}
	byID := make(map[string]Placement, len(sched.Jobs))
	for _, p := range sched.Jobs {
		byID[p.JobID] = p
	}
	for _, id := range ids {
		p, ok := byID[id]
		if !ok {
			return fmt.Errorf("retire record names unknown job %q", id)
		}
		o.done[id] = p
		o.doneIDs = append(o.doneIDs, id)
		o.m.Cancel(id)
	}
	return nil
}

// now is the operator wall instant: recovered base plus elapsed clock
// time since construction. Callers hold o.mu or tolerate a racy read.
func (o *Operator) now() float64 { return o.base + (o.clock.Now() - o.epoch) }

// Now reports the operator's wall instant: monotonic within a process
// and across recoveries (a restarted operator resumes from the
// recovered instant, never earlier).
func (o *Operator) Now() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.now()
}

// Topology exposes the fleet topology.
func (o *Operator) Topology() *topology.Topology { return o.m.Topology() }

// Policy reports the live scheduling policy.
func (o *Operator) Policy() string { return o.m.Policy() }

// Len reports the live (unretired) job count.
func (o *Operator) Len() int { return o.m.Len() }

// kick wakes the event loop to recompute its next edge.
func (o *Operator) kick() {
	select {
	case o.wake <- struct{}{}:
	default:
	}
}

// journalApplied journals one already-applied mutation and rolls it
// back when the journal refuses: a mutation is acknowledged only once
// durable. Returns the record's journal sequence so the caller can
// publish the matching event (events only ever follow the append —
// DESIGN.md decision 14). Callers hold o.mu.
func (o *Operator) journalApplied(rec Record, rollback func()) (uint64, error) {
	seq, err := o.j.Append(rec)
	if err != nil {
		rollback()
		return 0, fmt.Errorf("fleet: journal append: %w", err)
	}
	o.sinceSnp++
	return seq, nil
}

// publish stamps the event with the fleet label and hands it to the
// hub, if one is attached. Callers hold o.mu; the hub never blocks
// (slow subscribers are evicted), so publishing under the operator
// lock is safe.
func (o *Operator) publish(ev events.Event) {
	if o.events == nil {
		return
	}
	ev.Fleet = o.fp
	o.events.Publish(ev)
}

// publishLocked diffs the live schedule against the last published
// job states and emits every transition wall time has made true, each
// stamped with the deterministic schedule edge that caused it (start
// for running, finish for done) rather than the instant the loop
// happened to observe it — which is what makes a scripted fleet's
// stream reproducible. Scenario edges the clock has crossed since the
// last scan are announced the same way, stamped with the edge's own
// instant. Events sort by (At, Kind, Job) so equal-instant batches
// have one canonical order. Callers hold o.mu.
func (o *Operator) publishLocked() {
	if o.events == nil {
		return
	}
	sched, err := o.m.Schedule()
	if err != nil {
		return
	}
	now := o.now()
	var evs []events.Event
	for _, p := range sched.Jobs {
		st := placementState(p, now)
		if o.lastState[p.JobID] == st {
			continue
		}
		o.lastState[p.JobID] = st
		at := now
		switch st {
		case "running":
			at = p.Start
		case "done":
			at = p.Finish
		}
		evs = append(evs, events.Event{At: at, Kind: events.KindJob, Job: p.JobID, State: st})
	}
	if sc := o.m.Scenario(); sc != nil {
		for _, ev := range sc.Events {
			if ev.At > o.edgeHorizon && ev.At <= now {
				evs = append(evs, events.Event{At: ev.At, Kind: events.KindScenario, State: "fired", Payload: ev})
			}
		}
	}
	if now > o.edgeHorizon {
		o.edgeHorizon = now
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].At != evs[b].At {
			return evs[a].At < evs[b].At
		}
		if evs[a].Kind != evs[b].Kind {
			return evs[a].Kind < evs[b].Kind
		}
		return evs[a].Job < evs[b].Job
	})
	for _, ev := range evs {
		o.publish(ev)
	}
}

// Submit admits one job. A zero Submit is stamped with the operator's
// wall instant (the common live path); an explicit positive stamp is
// honored untouched, which keeps scripted soaks reproducible. The
// stamped job is what gets journaled, so recovery replays the exact
// admitted record.
func (o *Operator) Submit(j Job) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.done[j.ID]; dup {
		return fmt.Errorf("fleet: job %q already ran to completion", j.ID)
	}
	at := o.now()
	if j.Submit == 0 {
		j.Submit = at
	}
	if err := o.m.Submit(j); err != nil {
		return err
	}
	seq, err := o.journalApplied(Record{At: at, Kind: RecSubmit, Job: &j}, func() { o.m.Cancel(j.ID) })
	if err != nil {
		return err
	}
	if o.events != nil {
		// Every admitted job enters the stream as "queued" (even one
		// whose start edge has already passed — the scan below follows
		// up with the later states at their own edges).
		o.lastState[j.ID] = "queued"
		o.publish(events.Event{At: at, Kind: events.KindJob, Job: j.ID, State: "queued", JournalSeq: seq})
		o.publishLocked()
	}
	o.kick()
	return nil
}

// Cancel removes a live job; false = unknown (or already retired) ID.
func (o *Operator) Cancel(id string) (bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	job, live := o.m.jobByID(id)
	if !live {
		return false, nil
	}
	if !o.m.Cancel(id) {
		return false, nil
	}
	at := o.now()
	seq, err := o.journalApplied(Record{At: at, Kind: RecCancel, ID: id}, func() { _ = o.m.Submit(job) })
	if err != nil {
		return false, err
	}
	if o.events != nil {
		delete(o.lastState, id)
		o.publish(events.Event{At: at, Kind: events.KindJob, Job: id, State: "canceled", JournalSeq: seq})
		o.publishLocked() // survivors may have replanned onto new edges
	}
	o.kick()
	return true, nil
}

// ApplyEvent appends one scenario event. A zero At is stamped with the
// operator's wall instant.
func (o *Operator) ApplyEvent(ev scenario.Event) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	at := o.now()
	if ev.At == 0 {
		ev.At = at
	}
	prev := o.m.Scenario()
	if err := o.m.ApplyEvent(ev); err != nil {
		return err
	}
	seq, err := o.journalApplied(Record{At: at, Kind: RecApplyEvent, Event: &ev}, func() { _ = o.m.SetScenario(prev) })
	if err != nil {
		return err
	}
	if o.events != nil {
		o.publish(events.Event{At: at, Kind: events.KindScenario, State: "applied", Payload: ev, JournalSeq: seq})
		o.publishLocked()
	}
	o.kick()
	return nil
}

// SetScenario replaces the fleet timeline (nil clears it).
func (o *Operator) SetScenario(sc *scenario.Scenario) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	prev := o.m.Scenario()
	if err := o.m.SetScenario(sc); err != nil {
		return err
	}
	at := o.now()
	seq, err := o.journalApplied(Record{At: at, Kind: RecSetScenario, Scenario: sc.Clone()}, func() { _ = o.m.SetScenario(prev) })
	if err != nil {
		return err
	}
	if o.events != nil {
		ev := events.Event{At: at, Kind: events.KindScenario, State: "cleared", JournalSeq: seq}
		if sc != nil {
			ev.State, ev.Scenario = "replaced", sc.Name
		}
		o.publish(ev)
		o.publishLocked()
	}
	o.kick()
	return nil
}

// SetPolicy switches the scheduling policy.
func (o *Operator) SetPolicy(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	prev := o.m.Policy()
	if err := o.m.SetPolicy(name); err != nil {
		return err
	}
	at := o.now()
	seq, err := o.journalApplied(Record{At: at, Kind: RecSetPolicy, Policy: name}, func() { _ = o.m.SetPolicy(prev) })
	if err != nil {
		return err
	}
	if o.events != nil {
		o.publish(events.Event{At: at, Kind: events.KindPolicy, Policy: name, JournalSeq: seq})
		o.publishLocked() // a policy switch replans every live job
	}
	o.kick()
	return nil
}

// Schedule returns the live replay schedule (retired jobs excluded;
// see Done).
func (o *Operator) Schedule() (*Schedule, error) { return o.m.Schedule() }

// Done returns the placements of retired jobs in retirement order.
func (o *Operator) Done() []Placement {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Placement, 0, len(o.doneIDs))
	for _, id := range o.doneIDs {
		out = append(out, o.done[id])
	}
	return out
}

// JobStatus is one job's operator-eye view: the placement plus where
// it stands against the wall clock.
type JobStatus struct {
	Placement
	// State is "queued" (before its start), "running", "done"
	// (finished or retired), or "unplaced".
	State string `json:"state"`
}

// Has reports whether the operator knows the ID — live or retired —
// without computing a schedule (cheap membership for registry scans).
// Both checks run under one hold of o.mu: retirement moves an ID from
// the live set into the done map under the same lock, so an ID the
// operator knows can never fall between the two reads. (Checking the
// live set after unlocking — the old shape — let a concurrently
// retiring job vanish from both views and a duplicate submit slip
// past the registry scan.)
func (o *Operator) Has(id string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, retired := o.done[id]; retired {
		return true
	}
	_, live := o.m.jobByID(id)
	return live
}

// Job reports one job's placement and wall-clock state; false =
// unknown ID.
func (o *Operator) Job(id string) (JobStatus, bool, error) {
	o.mu.Lock()
	if p, ok := o.done[id]; ok {
		o.mu.Unlock()
		st := "done"
		if p.Unplaced != "" {
			st = "unplaced"
		}
		return JobStatus{Placement: p, State: st}, true, nil
	}
	o.mu.Unlock()
	p, ok, err := o.m.Job(id)
	if err != nil || !ok {
		return JobStatus{}, ok, err
	}
	return JobStatus{Placement: p, State: placementState(p, o.Now())}, true, nil
}

// placementState derives a live placement's wall-clock state at the
// given instant — the single vocabulary shared by Job and the event
// stream.
func placementState(p Placement, now float64) string {
	switch {
	case p.Unplaced != "":
		return "unplaced"
	case len(p.Nodes) > 0 && now >= p.Finish:
		return "done"
	case len(p.Nodes) > 0 && now >= p.Start:
		return "running"
	default:
		return "queued"
	}
}

// nextEdge is the earliest wall instant after now where something
// observable happens: a placement starts or finishes, or a scenario
// event fires. +Inf when nothing is pending.
func (o *Operator) nextEdge() float64 {
	sched, err := o.m.Schedule()
	if err != nil {
		return math.Inf(1)
	}
	o.mu.Lock()
	now := o.now()
	o.mu.Unlock()
	edge := math.Inf(1)
	for _, p := range sched.Jobs {
		if p.Unplaced != "" {
			continue
		}
		if p.Start > now {
			edge = math.Min(edge, p.Start)
		}
		if p.Finish > now {
			edge = math.Min(edge, p.Finish)
		}
	}
	if sc := o.m.Scenario(); sc != nil {
		for _, ev := range sc.Events {
			if ev.At > now {
				edge = math.Min(edge, ev.At)
			}
		}
	}
	return edge
}

// loop is the wall-clock driver: sleep precisely until the next edge
// (or a mutation), then retire and snapshot as due. The wake path must
// tick too, not just re-arm: an edge can pass between a mutation and
// the re-arm (nextEdge then sees only the past and returns +Inf), and
// a tick is the only thing that processes an edge already behind us.
// Ticking is idempotent, so ticking on a wake that has nothing due is
// harmless.
func (o *Operator) loop() {
	defer o.wg.Done()
	for {
		timer := o.clock.After(o.nextEdge())
		select {
		case <-o.stop:
			return
		case <-o.wake:
			o.tick()
		case <-timer:
			o.tick()
		}
	}
}

// tick runs at an edge: retire at idle barriers, snapshot when the
// journal has grown enough.
func (o *Operator) tick() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.publishLocked() // announce whatever the clock made true first
	_ = o.tryRetireLocked()
	if o.sinceSnp >= o.snapEvery {
		_ = o.snapshotLocked()
	}
}

// tryRetireLocked retires the whole live set when the fleet is at an
// idle barrier: every live job has either finished by now or can never
// be placed. At such an instant the replay state visible to any future
// submit equals a fresh fleet under the same timeline, so removing the
// finished jobs cannot change any future placement — and the retire
// record makes killed and unkilled runs retire identically.
func (o *Operator) tryRetireLocked() error {
	if o.m.Len() == 0 {
		return nil
	}
	sched, err := o.m.Schedule()
	if err != nil {
		return err
	}
	now := o.now()
	var ids []string
	for _, p := range sched.Jobs {
		if p.Unplaced == "" && (len(p.Nodes) == 0 || p.Finish > now) {
			return nil // something is still queued or running
		}
		ids = append(ids, p.JobID)
	}
	sort.Strings(ids)
	// Capture the jobs before retiring: if the retire record cannot be
	// journaled, the retirement is undone (jobs resubmitted, done
	// entries dropped) so memory never runs ahead of durable state.
	jobs := make([]Job, len(ids))
	for i, id := range ids {
		job, ok := o.m.jobByID(id)
		if !ok {
			return fmt.Errorf("fleet: retiring unknown job %q", id)
		}
		jobs[i] = job
	}
	if err := o.retireIDs(ids); err != nil {
		return err
	}
	rollback := func() {
		o.doneIDs = o.doneIDs[:len(o.doneIDs)-len(ids)]
		for i, id := range ids {
			delete(o.done, id)
			_ = o.m.Submit(jobs[i])
		}
	}
	seq, err := o.journalApplied(Record{At: now, Kind: RecRetire, IDs: ids}, rollback)
	if err != nil {
		return err
	}
	if o.events != nil {
		for _, id := range ids {
			delete(o.lastState, id)
		}
		o.publish(events.Event{At: now, Kind: events.KindRetire, Jobs: ids, JournalSeq: seq})
	}
	return o.snapshotLocked()
}

// snapshotLocked cuts a durable snapshot and resets the journal.
// Write-then-rename keeps a crash from ever leaving a half-written
// snapshot next to a truncated journal, and the snapshot (file bytes
// and directory entry both) is fsync'd before the journal truncates:
// the journal may only shrink once the state it covered is durable
// elsewhere. On any failure the journal is left intact, so recovery
// still replays the full record set.
func (o *Operator) snapshotLocked() error {
	snap := FleetSnapshot{
		Seq:      o.j.Seq(),
		Now:      o.now(),
		Fleet:    o.spec,
		Policy:   o.m.Policy(),
		Scenario: o.m.Scenario(),
	}
	for _, id := range o.doneIDs {
		snap.Done = append(snap.Done, o.done[id])
	}
	snap.Jobs = o.m.liveJobs()
	doc, err := EncodeFleetSnapshot(snap)
	if err != nil {
		return err
	}
	tmp := o.snapPath + ".tmp"
	if err := writeFileSync(tmp, doc); err != nil {
		return err
	}
	if err := os.Rename(tmp, o.snapPath); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(filepath.Dir(o.snapPath)); err != nil {
		return err
	}
	if err := o.j.Reset(snap.Seq); err != nil {
		return err
	}
	o.sinceSnp = 0
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing: a
// rename may only publish bytes that are already on disk.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
	}
	return err
}

// syncDir fsyncs a directory, making a rename within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Snapshot forces a snapshot now (the loop also cuts them on its own).
func (o *Operator) Snapshot() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.snapshotLocked()
}

// stopLoop stops the event loop exactly once; Close and Abort share it
// so any combination or repetition of the two never double-closes.
func (o *Operator) stopLoop() {
	o.stopOnce.Do(func() { close(o.stop) })
	o.wg.Wait()
}

// Close retires what it can, cuts a final snapshot, and closes the
// journal. The operator is unusable afterwards.
func (o *Operator) Close() error {
	o.stopLoop()
	o.mu.Lock()
	defer o.mu.Unlock()
	o.publishLocked() // final transitions precede the retire event
	_ = o.tryRetireLocked()
	err := o.snapshotLocked()
	if cerr := o.j.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort simulates a crash for tests and fast shutdowns: the loop stops
// and the journal closes with no retirement and no snapshot — exactly
// the state a kill -9 leaves behind (minus any torn tail).
func (o *Operator) Abort() error {
	o.stopLoop()
	return o.j.Close()
}

// jobByID returns the live job by ID (manager helper for rollback).
func (m *Manager) jobByID(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// liveJobs lists the live set sorted by (submit, id) — the canonical
// trace order, giving snapshots stable bytes.
func (m *Manager) liveJobs() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	jobs := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})
	return jobs
}
