package fleet

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Clock abstracts wall time for the always-on operator. The replay
// itself stays on its virtual clock — a Clock only decides *when real
// things happen*: when a submit is stamped, when the event loop wakes
// for a placement edge, when completed work is retired. Production uses
// the monotonic real clock; tests inject a FakeClock so operator runs
// (and their golden comparisons) are deterministic down to the bit.
type Clock interface {
	// Now is the elapsed time in seconds since the clock's epoch.
	Now() float64
	// After returns a channel that is closed once Now() >= at. An
	// at of +Inf never fires. The channel fires at-most-late: a real
	// clock rounds to timer resolution, never early.
	After(at float64) <-chan struct{}
}

// realClock is the production clock: a monotonic reading against a
// fixed epoch (time.Since uses the monotonic part of epoch, so NTP
// steps cannot move operator time backwards).
type realClock struct {
	epoch time.Time
}

// NewRealClock starts a monotonic wall clock with epoch = now.
func NewRealClock() Clock { return &realClock{epoch: time.Now()} }

func (c *realClock) Now() float64 { return time.Since(c.epoch).Seconds() }

func (c *realClock) After(at float64) <-chan struct{} {
	ch := make(chan struct{})
	if math.IsInf(at, 1) {
		return ch // never fires
	}
	d := time.Duration((at - c.Now()) * float64(time.Second))
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, func() { close(ch) })
	return ch
}

// FakeClock is the test clock: time moves only through Advance/Set, so
// an operator soak — submits, edges, retirement, snapshots — replays
// identically on every run.
type FakeClock struct {
	mu      sync.Mutex
	now     float64
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at float64
	ch chan struct{}
}

// NewFakeClock starts a fake clock at instant 0.
func NewFakeClock() *FakeClock { return &FakeClock{} }

func (c *FakeClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *FakeClock) After(at float64) <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan struct{})
	if math.IsInf(at, 1) {
		return ch
	}
	if at <= c.now {
		close(ch)
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward by dt seconds, firing due waiters in
// deadline order.
func (c *FakeClock) Advance(dt float64) { c.Set(c.Now() + dt) }

// Set moves the clock to instant t (never backwards), firing every
// waiter whose deadline has arrived, earliest first.
func (c *FakeClock) Set(t float64) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	var due []fakeWaiter
	keep := c.waiters[:0]
	for _, w := range c.waiters {
		if w.at <= c.now {
			due = append(due, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	c.mu.Unlock()
	sort.SliceStable(due, func(a, b int) bool { return due[a].at < due[b].at })
	for _, w := range due {
		close(w.ch)
	}
}
