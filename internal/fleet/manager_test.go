package fleet

import (
	"testing"

	"holmes/internal/engine"
	"holmes/internal/scenario"
)

// TestSetScenarioAliasingDoesNotDesync is the regression test for the
// timeline-aliasing bug: SetScenario used to store the caller's
// *scenario.Scenario, so a caller mutating sc.Events after the call was
// silently rewriting the manager's checkpointed replay state — with no
// invalidateFrom fired, the incremental path would resume from
// checkpoints taken under the old timeline and desync from the
// from-scratch oracle. The fix deep-copies on the way in (and out, via
// Scenario()); this test mutates the caller's scenario and the
// Scenario() return value after the fact and requires the incremental
// manager to stay bit-identical to an oracle that was handed a private
// copy.
func TestSetScenarioAliasingDoesNotDesync(t *testing.T) {
	topo := hybridTopo(t)
	eng := engine.New(engine.Config{})
	inc, err := NewManager(eng, topo)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewManager(eng, topo)
	if err != nil {
		t.Fatal(err)
	}
	oracle.SetFullRecompute(true)

	jobs := []Job{
		{ID: "a", Submit: 0, GPUs: 16, Iterations: 2, Model: pg1()},
		{ID: "b", Submit: 5, GPUs: 16, Iterations: 2, Model: pg1()},
		{ID: "c", Submit: 10, GPUs: 8, Iterations: 1, Model: pg1()},
	}
	log := []string{"submit a,b,c"}
	for _, j := range jobs {
		if err := inc.Submit(j); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	compareManagers(t, inc, oracle, log)

	// The caller's scenario: one node failure late in the replay. The
	// oracle gets its own private clone so a shared-pointer bug in the
	// incremental manager cannot hide by corrupting both sides equally.
	sc := &scenario.Scenario{
		Name:   "alias",
		Events: []scenario.Event{{Kind: scenario.FailNode, At: 30, Node: 1}},
	}
	if err := inc.SetScenario(sc); err != nil {
		t.Fatal(err)
	}
	if err := oracle.SetScenario(sc.Clone()); err != nil {
		t.Fatal(err)
	}
	log = append(log, "set scenario fail_node@30")
	compareManagers(t, inc, oracle, log)
	base, err := inc.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	baseline := marshalSched(t, base)

	// Sanity: the mutation below must be one the scheduler can observe,
	// or the test would pass vacuously. A fresh replay under the mutated
	// timeline has to differ from the baseline.
	mutated := sc.Clone()
	mutated.Events[0].At = 1
	mutSched, err := Replay(eng, &Trace{Fleet: Spec{Env: "Hybrid", Nodes: 4}, Jobs: jobs, Scenario: mutated})
	if err != nil {
		t.Fatal(err)
	}
	if marshalSched(t, mutSched) == baseline {
		t.Fatal("moving the failure from t=30 to t=1 did not change the schedule; pick a sharper mutation")
	}

	// The attack: rewrite the caller's event in place after SetScenario.
	// Pre-fix this reached the manager's live timeline without any
	// checkpoint invalidation.
	sc.Events[0].At = 1
	log = append(log, "mutate caller's sc.Events[0].At after SetScenario")
	compareManagers(t, inc, oracle, log)
	if got, err := inc.Schedule(); err != nil {
		t.Fatal(err)
	} else if marshalSched(t, got) != baseline {
		t.Fatal("mutating the caller's scenario after SetScenario changed the manager's schedule")
	}

	// Same on the way out: Scenario() hands back a copy, so mutating it
	// must not reach the replay state either.
	leaked := inc.Scenario()
	if leaked == nil || len(leaked.Events) != 1 {
		t.Fatalf("Scenario() = %+v, want the one-event timeline", leaked)
	}
	leaked.Events[0].At = 1
	log = append(log, "mutate Scenario() return value")
	compareManagers(t, inc, oracle, log)
	if got, err := inc.Schedule(); err != nil {
		t.Fatal(err)
	} else if marshalSched(t, got) != baseline {
		t.Fatal("mutating the Scenario() return value changed the manager's schedule")
	}
}
