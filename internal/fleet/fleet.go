// Package fleet schedules many training jobs over one shared
// heterogeneous-NIC topology. The paper plans a single job that owns the
// whole fabric; a production fleet has jobs arriving continuously and
// contending for the same GPUs. The scheduler carves node-disjoint
// sub-topologies out of the fleet — NIC-affine first, per the paper's
// §2.4 cluster-grouping rule, with topology.Carve re-deriving the rank
// numbering on every slice — scores candidate placements with the
// engine-backed joint (t, p) SearchPlan, and runs FIFO with EASY
// backfill under fully deterministic tie-breaking: a given trace always
// produces the identical schedule, regardless of engine concurrency or
// shard count.
//
// Scenario events thread through the replay clock: fail_node evicts and
// requeues exactly the jobs whose slice lost the node (their residual
// recovery is measured by core replanning), degrade_nic replans affected
// jobs in place on their degraded slice, and restore_node returns
// capacity to the free pool.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"holmes/internal/config"
	"holmes/internal/core"
	"holmes/internal/engine"
	"holmes/internal/model"
	"holmes/internal/scenario"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

// Job is one training job contending for the fleet: a model, a GPU
// demand, and an arrival instant on the virtual clock.
type Job struct {
	// ID names the job; unique within a trace.
	ID string `json:"id"`
	// Submit is the arrival instant in virtual seconds (0 = trace start).
	Submit float64 `json:"submit,omitempty"`
	// GPUs is the demand: a positive multiple of the fleet's GPUs-per-node
	// (slices are carved in whole nodes).
	GPUs int `json:"gpus"`
	// Iterations is the training length in iterations (default 1);
	// runtime = iterations × the planned iteration time.
	Iterations int `json:"iterations,omitempty"`
	// Deadline, when positive, is the instant the job should finish by.
	// The scheduler stays FIFO-fair and only reports misses.
	Deadline float64 `json:"deadline,omitempty"`
	// Model picks a Table-2 parameter group or an explicit architecture
	// (same schema as the serve API).
	Model config.ModelConfig `json:"model"`
	// Framework selects the behaviour profile (default Holmes).
	Framework string `json:"framework,omitempty"`
	// Priority is the job's tier under the "priority" policy: higher
	// runs first and may preempt strictly lower tiers. Other policies
	// ignore it. Default 0.
	Priority int `json:"priority,omitempty"`
	// Tenant groups jobs for the "fair" policy's weighted fair-share
	// accounting. Empty = the job is its own tenant.
	Tenant string `json:"tenant,omitempty"`
	// Weight scales the tenant's fair share (default 1). Must be
	// positive when set.
	Weight float64 `json:"weight,omitempty"`
}

// Spec describes the shared fleet topology of a trace: the env/nodes
// shorthand or an explicit cluster list (config.Config semantics).
type Spec struct {
	Env         string                 `json:"env,omitempty"`
	Nodes       int                    `json:"nodes,omitempty"`
	Clusters    []config.ClusterConfig `json:"clusters,omitempty"`
	GPUsPerNode int                    `json:"gpus_per_node,omitempty"`
}

// Topology materializes the fleet topology.
func (f Spec) Topology() (*topology.Topology, error) {
	c := config.Config{Env: f.Env, Nodes: f.Nodes, Clusters: f.Clusters, GPUsPerNode: f.GPUsPerNode}
	return c.Topology()
}

// Trace is a replayable fleet workload: the shared topology, an optional
// scripted event timeline, and the arriving jobs.
type Trace struct {
	Name     string             `json:"name,omitempty"`
	Fleet    Spec               `json:"fleet"`
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
	Jobs     []Job              `json:"jobs"`
	// Policy names the scheduling policy ("" = "fifo"); see PolicyNames.
	Policy string `json:"policy,omitempty"`
}

// Load parses a trace from JSON, rejecting unknown fields.
func Load(r io.Reader) (*Trace, error) {
	var tr Trace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("fleet: trailing data after the trace object")
	}
	return &tr, nil
}

// LoadFile parses a trace file.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Degrees is the (t, p, d) triple of a placement, JSON-shaped for golden
// files and the serve API.
type Degrees struct {
	Tensor   int `json:"tensor"`
	Pipeline int `json:"pipeline"`
	Data     int `json:"data"`
}

// Placement is one job's slot in the schedule.
type Placement struct {
	JobID string `json:"job"`
	// Nodes is the slice the job (last) ran on, by original fleet node
	// index, ascending. Empty when the job could never be placed.
	Nodes   []int   `json:"nodes,omitempty"`
	Degrees Degrees `json:"degrees"`
	// Start is the instant the job first began executing; Finish the
	// instant it completed; Waited = Start − Submit.
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
	Waited float64 `json:"waited"`
	// IterSeconds / Throughput / TFLOPS / Partition describe the winning
	// plan on the job's slice (the latest plan, after any replans).
	IterSeconds float64 `json:"iteration_seconds"`
	Throughput  float64 `json:"samples_per_sec"`
	TFLOPS      float64 `json:"tflops_per_gpu"`
	Partition   string  `json:"partition,omitempty"`
	// Backfilled marks a job started ahead of a blocked queue head under
	// the EASY reservation.
	Backfilled bool `json:"backfilled,omitempty"`
	// Evictions counts fail_node requeues; Replans counts in-place
	// degrade_nic replans; Recovery is the core replanner's recovery
	// factor for the last eviction (replanned-over-degraded throughput on
	// the residual slice; 0 when the slice had no survivors).
	Evictions int     `json:"evictions,omitempty"`
	Replans   int     `json:"replans,omitempty"`
	Recovery  float64 `json:"recovery,omitempty"`
	// Preemptions counts requeues forced by a higher-entitled job under
	// a preemptive policy (never by a fault).
	Preemptions int `json:"preemptions,omitempty"`
	// MissedDeadline reports Finish > Deadline for deadline jobs.
	MissedDeadline bool `json:"missed_deadline,omitempty"`
	// Unplaced carries the reason a job could never run (demand beyond
	// surviving capacity, or no feasible plan on any slice).
	Unplaced string `json:"unplaced,omitempty"`
}

// Schedule is the deterministic outcome of replaying a trace.
type Schedule struct {
	Trace string `json:"trace,omitempty"`
	// Policy is the scheduling policy that produced this schedule
	// (omitted for the default FIFO).
	Policy string `json:"policy,omitempty"`
	Nodes  int    `json:"nodes"`
	GPUs   int    `json:"gpus"`
	// Jobs holds one placement per trace job, in trace order.
	Jobs []Placement `json:"jobs"`
	// Makespan is the completion instant of the last job; Utilization is
	// busy GPU-seconds over fleet GPU-seconds across the makespan.
	Makespan    float64 `json:"makespan"`
	Utilization float64 `json:"utilization"`
	// ScenarioEvents counts the timeline events applied during replay.
	ScenarioEvents int `json:"scenario_events,omitempty"`
}

// Scheduler replays traces over one fleet topology on one engine. A
// Scheduler carries no trace state between Replay calls and is safe for
// concurrent replays; slice plans are memoized on the engine's shared
// plan cache, so identical carve fingerprints hit across jobs, across
// schedulers, and across every fleet bound to the same engine shard.
type Scheduler struct {
	topo *topology.Topology
	eng  *engine.Engine
}

// planKey identifies one joint (t, p) search: the carved slice's
// structural fingerprint (degrade factors included — they change the
// per-node Gbps the fingerprint covers), the model, and the framework.
// The type is package-private, so fleet entries can never collide with
// another package's keys in the engine's shared plan cache.
type planKey struct {
	fp   string
	spec model.Spec
	fw   trainer.Framework
}

type planEntry struct {
	planner *core.Planner
	plan    *core.Plan
	err     error
}

// NewScheduler validates the fleet topology and binds it to an engine
// (nil = the shared default engine).
func NewScheduler(eng *engine.Engine, topo *topology.Topology) (*Scheduler, error) {
	if topo == nil {
		return nil, fmt.Errorf("fleet: nil topology")
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		eng = engine.Default()
	}
	return &Scheduler{topo: topo, eng: eng}, nil
}

// searchSlice runs (or replays from the engine's shared plan cache) the
// joint search for a model on a carved slice. Scoring is a pure function
// of (slice fingerprint, model, framework), so a cache hit — even one
// written by a different scheduler — cannot change a schedule.
func (s *Scheduler) searchSlice(sub *topology.Topology, spec model.Spec, fw trainer.Framework) (*core.Planner, *core.Plan, error) {
	key := planKey{fp: sub.Fingerprint(), spec: spec, fw: fw}
	if v, ok := s.eng.Plan(key); ok {
		e := v.(planEntry)
		return e.planner, e.plan, e.err
	}
	pl, err := core.NewPlannerOn(s.eng, sub, spec)
	if err != nil {
		return nil, nil, err
	}
	pl.Framework = fw
	plan, err := pl.SearchPlan()
	s.eng.StorePlan(key, planEntry{planner: pl, plan: plan, err: err})
	if err != nil {
		return nil, nil, err
	}
	return pl, plan, nil
}

// Topology exposes the fleet topology.
func (s *Scheduler) Topology() *topology.Topology { return s.topo }

// Replay builds the trace's fleet topology and replays the jobs on the
// given engine — the one-call entry point of cmd/holmes-fleet and the
// facade.
func Replay(eng *engine.Engine, tr *Trace) (*Schedule, error) {
	topo, err := tr.Fleet.Topology()
	if err != nil {
		return nil, err
	}
	s, err := NewScheduler(eng, topo)
	if err != nil {
		return nil, err
	}
	return s.Replay(tr)
}

// rjob is one resolved, validated trace job.
type rjob struct {
	idx    int // trace position: the deterministic tie-breaker
	job    Job
	spec   model.Spec
	fw     trainer.Framework
	nodes  int     // demand in whole nodes
	tenant string  // resolved tenant (job ID when unset)
	weight float64 // resolved fair-share weight (1 when unset)
}

// ResolveJob validates one job against the fleet topology: non-empty ID,
// finite non-negative submit, whole-node GPU demand within the fleet,
// resolvable model, known framework. Shared by trace replay and the
// serve API's admission path.
func ResolveJob(topo *topology.Topology, j Job) error {
	_, err := resolveJob(topo, 0, j)
	return err
}

func resolveJob(topo *topology.Topology, idx int, j Job) (rjob, error) {
	if j.ID == "" {
		return rjob{}, fmt.Errorf("fleet: job %d has no id", idx)
	}
	if j.Submit < 0 || math.IsNaN(j.Submit) || math.IsInf(j.Submit, 0) {
		return rjob{}, fmt.Errorf("fleet: job %q has bad submit time %v", j.ID, j.Submit)
	}
	if j.Iterations < 0 {
		return rjob{}, fmt.Errorf("fleet: job %q has negative iterations", j.ID)
	}
	if j.Deadline != 0 && (j.Deadline <= j.Submit || math.IsNaN(j.Deadline) || math.IsInf(j.Deadline, 0)) {
		return rjob{}, fmt.Errorf("fleet: job %q deadline %v not after submit %v", j.ID, j.Deadline, j.Submit)
	}
	if j.Weight < 0 || math.IsNaN(j.Weight) || math.IsInf(j.Weight, 0) {
		return rjob{}, fmt.Errorf("fleet: job %q has bad weight %v (must be positive, or 0 for the default)", j.ID, j.Weight)
	}
	g := topo.GPUsPerNode
	if j.GPUs <= 0 || j.GPUs%g != 0 {
		return rjob{}, fmt.Errorf("fleet: job %q demands %d GPUs; demand must be a positive multiple of the fleet's %d GPUs per node", j.ID, j.GPUs, g)
	}
	if j.GPUs > topo.NumDevices() {
		return rjob{}, fmt.Errorf("fleet: job %q demands %d GPUs; the fleet has %d", j.ID, j.GPUs, topo.NumDevices())
	}
	cfg := config.Config{Model: j.Model}
	spec, err := cfg.Spec()
	if err != nil {
		return rjob{}, fmt.Errorf("fleet: job %q: %w", j.ID, err)
	}
	fw := trainer.Framework(j.Framework)
	if j.Framework == "" {
		fw = trainer.Holmes
	} else {
		known := false
		for _, f := range trainer.AllFrameworks {
			if fw == f {
				known = true
				break
			}
		}
		if !known {
			return rjob{}, fmt.Errorf("fleet: job %q has unknown framework %q", j.ID, j.Framework)
		}
	}
	tenant := j.Tenant
	if tenant == "" {
		tenant = j.ID
	}
	weight := j.Weight
	if weight == 0 {
		weight = 1
	}
	return rjob{idx: idx, job: j, spec: spec, fw: fw, nodes: j.GPUs / g, tenant: tenant, weight: weight}, nil
}

// validateScenario checks the fleet-supported event kinds: the replay
// clock understands node failure, restoration, and NIC degradation, and
// lowerEvents folds stragglers, cluster failures, link flaps, and
// loss/corrupt derates down to those primitives. Background traffic and
// elastic joins belong to the simulation layer, and partitions to the
// fabric's trunks, which the placement carve does not model.
func validateScenario(topo *topology.Topology, sc *scenario.Scenario) error {
	if sc.Empty() {
		return nil
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	if err := sc.ValidateFor(topo); err != nil {
		return err
	}
	for i, ev := range sc.Events {
		switch ev.Kind {
		case scenario.FailNode, scenario.RestoreNode, scenario.DegradeNIC,
			scenario.Straggler, scenario.FailCluster, scenario.FlapLink,
			scenario.Loss, scenario.Corrupt, scenario.Delay, scenario.Jitter:
		default:
			return fmt.Errorf("fleet: event %d: kind %q is not supported by the fleet scheduler (node, impairment, and cluster fault kinds only)", i, ev.Kind)
		}
	}
	return nil
}

// Validate checks a whole trace against its own fleet spec.
func (tr *Trace) Validate() error {
	topo, err := tr.Fleet.Topology()
	if err != nil {
		return err
	}
	if len(tr.Jobs) == 0 {
		return fmt.Errorf("fleet: trace has no jobs")
	}
	seen := make(map[string]int, len(tr.Jobs))
	for i, j := range tr.Jobs {
		if _, err := resolveJob(topo, i, j); err != nil {
			return err
		}
		if first, dup := seen[j.ID]; dup {
			return fmt.Errorf("fleet: jobs %d and %d share id %q", first, i, j.ID)
		}
		seen[j.ID] = i
	}
	if _, err := PolicyByName(tr.Policy); err != nil {
		return err
	}
	return validateScenario(topo, tr.Scenario)
}
