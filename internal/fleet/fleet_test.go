package fleet

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"holmes/internal/config"
	"holmes/internal/core"
	"holmes/internal/engine"
	"holmes/internal/model"
	"holmes/internal/scenario"
	"holmes/internal/topology"
)

// pg1 is the smallest Table-2 model; every test job uses it unless it
// needs a distinct shape.
func pg1() config.ModelConfig { return config.ModelConfig{Group: 1} }

func hybridTrace(jobs ...Job) *Trace {
	return &Trace{
		Name:  "test",
		Fleet: Spec{Env: "Hybrid", Nodes: 4},
		Jobs:  jobs,
	}
}

// TestSingleJobMatchesSearchPlan pins the degenerate fleet to the
// paper's single-job planner: one job demanding every GPU must be
// planned bit-identically to a plain joint (t, p) search on the full
// topology — same degrees, same partition, same simulated report.
func TestSingleJobMatchesSearchPlan(t *testing.T) {
	eng := engine.New(engine.Config{})
	sched, err := Replay(eng, hybridTrace(Job{ID: "solo", GPUs: 32, Model: pg1()}))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlannerOn(eng, topology.HybridEnv(4), model.Group(1).Spec)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.SearchPlan()
	if err != nil {
		t.Fatal(err)
	}
	got := sched.Jobs[0]
	if got.Unplaced != "" || got.Start != 0 {
		t.Fatalf("solo job did not start immediately: %+v", got)
	}
	want := Placement{
		JobID:       "solo",
		Nodes:       []int{0, 1, 2, 3},
		Degrees:     Degrees{Tensor: plan.Degrees.T, Pipeline: plan.Degrees.P, Data: plan.Degrees.D},
		Finish:      plan.Report.IterSeconds,
		IterSeconds: plan.Report.IterSeconds,
		Throughput:  plan.Report.Throughput,
		TFLOPS:      plan.Report.TFLOPS,
		Partition:   plan.Partition.String(),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet placement drifted from plain SearchPlan:\n got %+v\nwant %+v", got, want)
	}
	if sched.Makespan != plan.Report.IterSeconds {
		t.Fatalf("makespan %v, want one iteration %v", sched.Makespan, plan.Report.IterSeconds)
	}
}

func TestFIFOContention(t *testing.T) {
	// Two jobs each demanding the whole 4-node fleet: strict FIFO, the
	// second starts exactly when the first finishes.
	sched, err := Replay(nil, hybridTrace(
		Job{ID: "a", GPUs: 32, Model: pg1()},
		Job{ID: "b", GPUs: 32, Model: pg1()},
	))
	if err != nil {
		t.Fatal(err)
	}
	a, b := sched.Jobs[0], sched.Jobs[1]
	if a.Start != 0 {
		t.Fatalf("job a starts at %v, want 0", a.Start)
	}
	if b.Start != a.Finish {
		t.Fatalf("job b starts at %v, want a's finish %v", b.Start, a.Finish)
	}
	if sched.Makespan != b.Finish {
		t.Fatalf("makespan %v, want %v", sched.Makespan, b.Finish)
	}
	if sched.Utilization <= 0 || sched.Utilization > 1 {
		t.Fatalf("utilization %v outside (0, 1]", sched.Utilization)
	}
}

func TestDisjointSlicesRunConcurrently(t *testing.T) {
	// Two half-fleet jobs must run side by side on node-disjoint slices.
	sched, err := Replay(nil, hybridTrace(
		Job{ID: "a", GPUs: 16, Model: pg1()},
		Job{ID: "b", GPUs: 16, Model: pg1()},
	))
	if err != nil {
		t.Fatal(err)
	}
	a, b := sched.Jobs[0], sched.Jobs[1]
	if a.Start != 0 || b.Start != 0 {
		t.Fatalf("concurrent jobs start at %v / %v, want 0 / 0", a.Start, b.Start)
	}
	used := map[int]string{}
	for _, p := range sched.Jobs {
		for _, n := range p.Nodes {
			if owner, taken := used[n]; taken {
				t.Fatalf("node %d placed for both %s and %s", n, owner, p.JobID)
			}
			used[n] = p.JobID
		}
	}
	// NIC affinity: on the hybrid fleet (2 IB + 2 RoCE nodes), each
	// half-fleet job should land inside one cluster, never straddling
	// the Ethernet-only boundary.
	topo := topology.HybridEnv(4)
	for _, p := range sched.Jobs {
		c := topo.Node(p.Nodes[0]).Cluster
		for _, n := range p.Nodes[1:] {
			if topo.Node(n).Cluster != c {
				t.Fatalf("job %s straddles clusters: nodes %v", p.JobID, p.Nodes)
			}
		}
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	// a holds half the fleet for 3 iterations. b (whole fleet) blocks
	// behind it. c (half fleet, 1 iteration) fits the idle half and
	// finishes before a, so EASY backfill must start it immediately —
	// and b must still start the moment a (the later finisher) is done.
	sched, err := Replay(nil, hybridTrace(
		Job{ID: "a", GPUs: 16, Iterations: 3, Model: pg1()},
		Job{ID: "b", Submit: 0.001, GPUs: 32, Model: pg1()},
		Job{ID: "c", Submit: 0.002, GPUs: 16, Iterations: 1, Model: pg1()},
	))
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := sched.Jobs[0], sched.Jobs[1], sched.Jobs[2]
	if !c.Backfilled {
		t.Fatalf("job c was not backfilled: %+v", c)
	}
	if c.Start != 0.002 {
		t.Fatalf("backfilled c starts at %v, want its submit instant", c.Start)
	}
	if c.Finish > a.Finish {
		t.Fatalf("backfill violated the reservation: c finishes %v after a's %v", c.Finish, a.Finish)
	}
	if b.Start != a.Finish {
		t.Fatalf("head b starts at %v, want %v (a's finish, undelayed by c)", b.Start, a.Finish)
	}
	if b.Backfilled {
		t.Fatal("queue head marked backfilled")
	}
}

// TestDeterministicAcrossEngines replays one contended trace on engines
// with different concurrency and oracle settings: the schedule is a pure
// function of the trace, so every replay must be bit-identical (the
// incremental rebalancer is pinned to its full-recompute oracle
// elsewhere; here both arms must agree through the whole fleet stack).
func TestDeterministicAcrossEngines(t *testing.T) {
	tr := hybridTrace(
		Job{ID: "a", GPUs: 16, Iterations: 2, Model: pg1()},
		Job{ID: "b", Submit: 0.5, GPUs: 32, Model: config.ModelConfig{Group: 2}},
		Job{ID: "c", Submit: 0.7, GPUs: 8, Iterations: 3, Model: pg1()},
		Job{ID: "d", Submit: 0.7, GPUs: 8, Model: pg1()},
	)
	var schedules []*Schedule
	for _, eng := range []*engine.Engine{
		engine.New(engine.Config{Concurrency: 1}),
		engine.New(engine.Config{}),
		engine.New(engine.Config{Concurrency: 3, FullRecompute: true}),
	} {
		sched, err := Replay(eng, tr)
		if err != nil {
			t.Fatal(err)
		}
		schedules = append(schedules, sched)
	}
	want, err := json.Marshal(schedules[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, sched := range schedules[1:] {
		got, err := json.Marshal(sched)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("engine %d produced a different schedule:\n%s\nvs\n%s", i+1, got, want)
		}
	}
}

func TestFailNodeRequeuesOnlyAffectedJobs(t *testing.T) {
	// a and b run on disjoint half-fleet slices; node 0 fails mid-run.
	// Only the job holding node 0 may be evicted; the other must finish
	// exactly as in the pristine replay.
	jobs := []Job{
		{ID: "a", GPUs: 16, Iterations: 4, Model: pg1()},
		{ID: "b", GPUs: 16, Iterations: 4, Model: pg1()},
	}
	pristine, err := Replay(nil, hybridTrace(jobs...))
	if err != nil {
		t.Fatal(err)
	}
	var victim, bystander int
	for i, p := range pristine.Jobs {
		onZero := false
		for _, n := range p.Nodes {
			if n == 0 {
				onZero = true
			}
		}
		if onZero {
			victim = i
		} else {
			bystander = i
		}
	}
	if victim == bystander {
		t.Fatalf("test needs disjoint placements: %+v", pristine.Jobs)
	}
	mid := pristine.Jobs[victim].IterSeconds * 1.5 // inside iteration 2 of 4
	tr := hybridTrace(jobs...)
	tr.Scenario = &scenario.Scenario{
		Name:   "fail0",
		Events: []scenario.Event{{Kind: scenario.FailNode, At: mid, Node: 0}},
	}
	faulted, err := Replay(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	v, by := faulted.Jobs[victim], faulted.Jobs[bystander]
	if v.Evictions != 1 {
		t.Fatalf("victim evicted %d times, want 1: %+v", v.Evictions, v)
	}
	if by.Evictions != 0 || by.Replans != 0 {
		t.Fatalf("bystander was disturbed: %+v", by)
	}
	if !reflect.DeepEqual(by, pristine.Jobs[bystander]) {
		t.Fatalf("bystander drifted from the pristine replay:\n got %+v\nwant %+v", by, pristine.Jobs[bystander])
	}
	if v.Finish <= pristine.Jobs[victim].Finish {
		t.Fatalf("victim finish %v did not pay for the eviction (pristine %v)", v.Finish, pristine.Jobs[victim].Finish)
	}
	for _, n := range v.Nodes {
		if n == 0 {
			t.Fatalf("victim replaced onto the failed node: %v", v.Nodes)
		}
	}
	if v.Recovery <= 0 {
		t.Fatalf("eviction did not record a replanning recovery factor: %+v", v)
	}
	if faulted.ScenarioEvents != 1 {
		t.Fatalf("applied %d events, want 1", faulted.ScenarioEvents)
	}
}

func TestDegradeReplansInPlace(t *testing.T) {
	jobs := []Job{{ID: "a", GPUs: 32, Iterations: 4, Model: pg1()}}
	pristine, err := Replay(nil, hybridTrace(jobs...))
	if err != nil {
		t.Fatal(err)
	}
	mid := pristine.Jobs[0].IterSeconds * 1.5
	tr := hybridTrace(jobs...)
	tr.Scenario = &scenario.Scenario{
		Name: "degrade0",
		Events: []scenario.Event{
			{Kind: scenario.DegradeNIC, At: mid, Node: 0, Class: scenario.ClassRDMA, Factor: 0.25},
		},
	}
	degraded, err := Replay(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	p := degraded.Jobs[0]
	if p.Replans != 1 {
		t.Fatalf("degrade caused %d replans, want 1: %+v", p.Replans, p)
	}
	if p.Evictions != 0 {
		t.Fatalf("degrade must not evict: %+v", p)
	}
	if !reflect.DeepEqual(p.Nodes, pristine.Jobs[0].Nodes) {
		t.Fatalf("in-place replan moved the job: %v vs %v", p.Nodes, pristine.Jobs[0].Nodes)
	}
	if p.Finish <= pristine.Jobs[0].Finish {
		t.Fatalf("degraded finish %v not later than pristine %v", p.Finish, pristine.Jobs[0].Finish)
	}
}

// TestRestoreOfUntouchedNodeIsNoOp: restoring a node that never failed
// or degraded must leave the schedule bit-identical to the pristine
// replay — replanning anyway would discard partial-iteration progress
// and inflate Replans for a no-op event.
func TestRestoreOfUntouchedNodeIsNoOp(t *testing.T) {
	jobs := []Job{{ID: "a", GPUs: 32, Iterations: 3, Model: pg1()}}
	pristine, err := Replay(nil, hybridTrace(jobs...))
	if err != nil {
		t.Fatal(err)
	}
	tr := hybridTrace(jobs...)
	tr.Scenario = &scenario.Scenario{
		Name: "noop-restore",
		Events: []scenario.Event{
			{Kind: scenario.RestoreNode, At: pristine.Jobs[0].IterSeconds * 1.5, Node: 0},
		},
	}
	restored, err := Replay(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Jobs[0].Replans != 0 {
		t.Fatalf("no-op restore caused %d replans", restored.Jobs[0].Replans)
	}
	if !reflect.DeepEqual(restored.Jobs[0], pristine.Jobs[0]) {
		t.Fatalf("no-op restore changed the schedule:\n got %+v\nwant %+v", restored.Jobs[0], pristine.Jobs[0])
	}
}

func TestUnplaceableJobIsReported(t *testing.T) {
	// Node 0 of a 1-cluster fleet fails before the job arrives; a job
	// demanding the full fleet can never run, a half-fleet job can.
	tr := &Trace{
		Fleet: Spec{Env: "InfiniBand", Nodes: 2},
		Scenario: &scenario.Scenario{Events: []scenario.Event{
			{Kind: scenario.FailNode, At: 0, Node: 0},
		}},
		Jobs: []Job{
			{ID: "big", GPUs: 16, Model: pg1()},
			{ID: "small", Submit: 0.1, GPUs: 8, Model: pg1()},
		},
	}
	sched, err := Replay(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Jobs[0].Unplaced == "" {
		t.Fatalf("full-fleet job was placed on a 1-node fleet: %+v", sched.Jobs[0])
	}
	if sched.Jobs[1].Unplaced != "" || len(sched.Jobs[1].Nodes) != 1 {
		t.Fatalf("surviving-capacity job did not run: %+v", sched.Jobs[1])
	}
	if sched.Jobs[1].Nodes[0] != 1 {
		t.Fatalf("job placed on the failed node: %+v", sched.Jobs[1])
	}
}

func TestDeadlineReporting(t *testing.T) {
	sched, err := Replay(nil, hybridTrace(
		Job{ID: "a", GPUs: 32, Iterations: 2, Model: pg1(), Deadline: 1e-6},
		Job{ID: "b", GPUs: 32, Iterations: 1, Model: pg1(), Deadline: 1e9},
	))
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Jobs[0].MissedDeadline {
		t.Fatalf("microsecond deadline reported met: %+v", sched.Jobs[0])
	}
	if sched.Jobs[1].MissedDeadline {
		t.Fatalf("generous deadline reported missed: %+v", sched.Jobs[1])
	}
}

func TestTraceValidation(t *testing.T) {
	base := func() *Trace {
		return hybridTrace(Job{ID: "a", GPUs: 16, Model: pg1()})
	}
	for name, mutate := range map[string]func(*Trace){
		"no jobs":          func(tr *Trace) { tr.Jobs = nil },
		"empty id":         func(tr *Trace) { tr.Jobs[0].ID = "" },
		"duplicate id":     func(tr *Trace) { tr.Jobs = append(tr.Jobs, tr.Jobs[0]) },
		"zero gpus":        func(tr *Trace) { tr.Jobs[0].GPUs = 0 },
		"ragged gpus":      func(tr *Trace) { tr.Jobs[0].GPUs = 12 },
		"oversized demand": func(tr *Trace) { tr.Jobs[0].GPUs = 64 },
		"negative submit":  func(tr *Trace) { tr.Jobs[0].Submit = -1 },
		"bad deadline":     func(tr *Trace) { tr.Jobs[0].Deadline = -2 },
		"bad framework":    func(tr *Trace) { tr.Jobs[0].Framework = "PyTorch-DDP" },
		"bad model group":  func(tr *Trace) { tr.Jobs[0].Model.Group = 9 },
		"unsupported event": func(tr *Trace) {
			tr.Scenario = &scenario.Scenario{Events: []scenario.Event{
				{Kind: scenario.BackgroundTraffic, At: 0, Src: 0, Dst: 1, Gbps: 10},
			}}
		},
		"event outside fleet": func(tr *Trace) {
			tr.Scenario = &scenario.Scenario{Events: []scenario.Event{
				{Kind: scenario.FailNode, At: 0, Node: 99},
			}}
		},
	} {
		tr := base()
		mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestTraceLoadRejectsGarbage(t *testing.T) {
	for name, body := range map[string]string{
		"unknown field": `{"fleet":{"env":"Hybrid","nodes":4},"jobs":[],"extra":1}`,
		"trailing data": `{"fleet":{"env":"Hybrid","nodes":4},"jobs":[]} {}`,
		"not json":      `fleet!`,
	} {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("%s: loaded", name)
		}
	}
	tr, err := Load(strings.NewReader(`{"name":"ok","fleet":{"env":"Hybrid","nodes":4},"jobs":[{"id":"a","gpus":16,"model":{"group":1}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "ok" || len(tr.Jobs) != 1 {
		t.Fatalf("loaded trace drifted: %+v", tr)
	}
}

func TestManagerDeterministicAcrossSubmissionOrder(t *testing.T) {
	topo := topology.HybridEnv(4)
	jobs := []Job{
		{ID: "a", GPUs: 16, Iterations: 2, Model: pg1()},
		{ID: "b", GPUs: 32, Model: config.ModelConfig{Group: 2}},
		{ID: "c", GPUs: 8, Iterations: 3, Model: pg1()},
		{ID: "d", GPUs: 8, Model: pg1()},
	}
	forward, err := NewManager(nil, topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := forward.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	backward, err := NewManager(nil, topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(jobs) - 1; i >= 0; i-- {
		if err := backward.Submit(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := forward.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := backward.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	fj, _ := json.Marshal(fs)
	bj, _ := json.Marshal(bs)
	if string(fj) != string(bj) {
		t.Fatalf("submission order changed the schedule:\n%s\nvs\n%s", fj, bj)
	}
	// Cancel + resubmit leaves the schedule of the remaining set.
	if !forward.Cancel("b") {
		t.Fatal("cancel of a live job failed")
	}
	if forward.Cancel("b") {
		t.Fatal("double cancel succeeded")
	}
	if _, ok, _ := forward.Job("a"); !ok {
		t.Fatal("live job not found after cancel of another")
	}
	if _, ok, _ := forward.Job("b"); ok {
		t.Fatal("cancelled job still scheduled")
	}
	if err := forward.Submit(jobs[0]); err == nil {
		t.Fatal("duplicate submit accepted")
	}
}
