package fleet

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"holmes/internal/engine"
	"holmes/internal/scenario"
)

// Policy coverage: one committed golden per registered policy on the
// shared policy8 trace (priorities, deadlines, tenants, and weights all
// in play), behavioural assertions that each policy actually does what
// its name claims, a property test that no policy can silently drop a
// job the fleet cannot place, and per-policy incremental-vs-oracle
// differentials.

func loadPolicyTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := LoadFile(filepath.Join("testdata", "policy8.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func placementOf(t *testing.T, sched *Schedule, id string) Placement {
	t.Helper()
	for _, p := range sched.Jobs {
		if p.JobID == id {
			return p
		}
	}
	t.Fatalf("schedule has no job %q", id)
	return Placement{}
}

// TestPolicyGoldens pins one schedule per policy on the policy8 trace,
// plus the behavioural signature of each policy:
//
//   - priority: the tier-5 whole-fleet job preempts both running tier-0
//     jobs and starts the instant it arrives;
//   - edf: the deadline job runs no later than its deadline-free peer
//     submitted at the same instant (FIFO would tie-break by trace
//     index, which puts the deadline job first here too — the golden
//     pins the full divergent schedule);
//   - fifo / fair: never preempt.
func TestPolicyGoldens(t *testing.T) {
	base := loadPolicyTrace(t)
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := *base
			tr.Policy = name
			sched, err := Replay(nil, &tr)
			if err != nil {
				t.Fatal(err)
			}
			if sched.Policy != name {
				t.Fatalf("schedule policy %q, want %q", sched.Policy, name)
			}
			preempted := 0
			for _, p := range sched.Jobs {
				preempted += p.Preemptions
			}
			switch name {
			case "priority":
				urgent := placementOf(t, sched, "urgent")
				if urgent.Start != 5 {
					t.Errorf("urgent started at %g under priority, want 5 (preemptive start)", urgent.Start)
				}
				if a, b := placementOf(t, sched, "base-a"), placementOf(t, sched, "base-b"); a.Preemptions == 0 || b.Preemptions == 0 {
					t.Errorf("base jobs have preemptions %d/%d, want both > 0", a.Preemptions, b.Preemptions)
				}
				if preempted == 0 {
					t.Error("priority run recorded no preemptions; the preemption arm is dead")
				}
			case "edf":
				rush, slack := placementOf(t, sched, "rush"), placementOf(t, sched, "slack")
				if rush.Start > slack.Start {
					t.Errorf("edf ran deadline job rush at %g after deadline-free slack at %g", rush.Start, slack.Start)
				}
				fallthrough
			default:
				if preempted != 0 {
					t.Errorf("%s run recorded %d preemptions, want 0 (non-preemptive policy)", name, preempted)
				}
			}
			checkGolden(t, "policy8_"+name, sched)
		})
	}
}

// TestPolicyGoldensDiverge guards against a policy silently degrading
// to FIFO: on the policy8 trace every non-FIFO policy must produce a
// schedule that differs from the FIFO one (the trace was built so each
// policy's signal — tiers, deadlines, shares — is decisive somewhere).
func TestPolicyGoldensDiverge(t *testing.T) {
	base := loadPolicyTrace(t)
	blobs := make(map[string]string)
	for _, name := range PolicyNames() {
		tr := *base
		tr.Policy = name
		sched, err := Replay(nil, &tr)
		if err != nil {
			t.Fatal(err)
		}
		sched.Policy = "" // compare decisions, not the label
		blobs[name] = marshalSched(t, sched)
	}
	for _, name := range PolicyNames() {
		if name == "fifo" {
			continue
		}
		if blobs[name] == blobs["fifo"] {
			t.Errorf("policy %q produced the exact FIFO schedule on policy8; its signal is dead", name)
		}
	}
}

// TestPolicyNeverDropsUnplaceableJob is the cross-policy liveness
// property: a job the surviving fleet can never hold must surface as
// Unplaced with a reason — not vanish, not wedge the queue — and every
// other job must still run. The whale also exercises the preemption
// guard: under "priority" it outranks everything, but evicting every
// victim still cannot cover its demand, so nothing may be evicted for
// it.
func TestPolicyNeverDropsUnplaceableJob(t *testing.T) {
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := &Trace{
				Fleet:  Spec{Env: "Hybrid", Nodes: 4},
				Policy: name,
				Scenario: &scenario.Scenario{
					Name:   "capacity-loss",
					Events: []scenario.Event{{Kind: scenario.FailNode, At: 0, Node: 0}},
				},
				Jobs: []Job{
					{ID: "fits", Submit: 0, GPUs: 8, Iterations: 1, Model: pg1(), Priority: 1, Tenant: "t1"},
					{ID: "whale", Submit: 1, GPUs: 32, Iterations: 1, Model: pg1(), Deadline: 50, Priority: 9},
					{ID: "later", Submit: 2, GPUs: 16, Iterations: 1, Model: pg1(), Tenant: "t2", Weight: 2},
				},
			}
			sched, err := Replay(nil, tr)
			if err != nil {
				t.Fatal(err)
			}
			if len(sched.Jobs) != len(tr.Jobs) {
				t.Fatalf("schedule has %d jobs, trace has %d", len(sched.Jobs), len(tr.Jobs))
			}
			seen := make(map[string]bool)
			for _, p := range sched.Jobs {
				if seen[p.JobID] {
					t.Fatalf("job %s appears twice", p.JobID)
				}
				seen[p.JobID] = true
				placed := len(p.Nodes) > 0
				if placed == (p.Unplaced != "") {
					t.Fatalf("job %s is neither cleanly placed nor cleanly refused: %+v", p.JobID, p)
				}
				if p.Preemptions != 0 {
					t.Fatalf("job %s was preempted for a whale the fleet cannot hold anyway", p.JobID)
				}
			}
			whale := placementOf(t, sched, "whale")
			if whale.Unplaced == "" {
				t.Fatal("whale demands 4 nodes of a 3-node surviving fleet yet was not reported unplaced")
			}
			for _, id := range []string{"fits", "later"} {
				if p := placementOf(t, sched, id); p.Unplaced != "" {
					t.Fatalf("job %s should run on the surviving fleet, got unplaced: %s", id, p.Unplaced)
				}
			}
		})
	}
}

// TestPolicyIncrementalMatchesOracle drives each policy through seeded
// random mutation sequences on both the checkpoint/resume manager and
// the from-scratch oracle, requiring byte-equal schedules after every
// step — the PR-6 differential contract extended to every policy.
func TestPolicyIncrementalMatchesOracle(t *testing.T) {
	topo := hybridTopo(t)
	eng := engine.New(engine.Config{})
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name)) * 101))
			inc, err := NewManager(eng, topo)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := NewManager(eng, topo)
			if err != nil {
				t.Fatal(err)
			}
			oracle.SetFullRecompute(true)
			if err := inc.SetPolicy(name); err != nil {
				t.Fatal(err)
			}
			if err := oracle.SetPolicy(name); err != nil {
				t.Fatal(err)
			}
			var log []string
			var ids []string
			nextID := 0
			for step := 0; step < 12; step++ {
				mut := richMutation(rng, &ids, &nextID)
				log = append(log, mut.desc)
				errInc := mut.apply(inc)
				errOra := mut.apply(oracle)
				if (errInc == nil) != (errOra == nil) {
					t.Fatalf("mutation error divergence after:\n%s\nincremental: %v\noracle: %v",
						joinLog(log), errInc, errOra)
				}
				compareManagers(t, inc, oracle, log)
			}
		})
	}
}

// richMutation biases toward submits carrying the policy dimensions.
func richMutation(rng *rand.Rand, ids *[]string, nextID *int) mutator {
	if rng.Float64() < 0.55 || len(*ids) == 0 {
		id := fmt.Sprintf("p%d", *nextID)
		*nextID++
		*ids = append(*ids, id)
		submit := float64(rng.Intn(40))
		j := Job{
			ID:         id,
			Submit:     submit,
			GPUs:       8 * (1 + rng.Intn(2)),
			Iterations: 1 + rng.Intn(2),
			Model:      pg1(),
			Priority:   rng.Intn(3),
			Tenant:     []string{"", "t1", "t2"}[rng.Intn(3)],
			Weight:     []float64{0, 0.5, 2}[rng.Intn(3)],
		}
		if rng.Intn(2) == 0 {
			j.Deadline = submit + 30 + float64(rng.Intn(60))
		}
		return mutator{
			desc: fmt.Sprintf("submit %s gpus=%d submit=%g prio=%d tenant=%q w=%g dl=%g",
				id, j.GPUs, submit, j.Priority, j.Tenant, j.Weight, j.Deadline),
			apply: func(m *Manager) error { return m.Submit(j) },
		}
	}
	return randomMutation(rng, ids, nextID)
}

// TestPolicySwitchIncremental walks one live manager pair through every
// policy in sequence over a fixed job set: a switch invalidates all
// checkpoints, so the incremental manager must land on the oracle's
// from-scratch answer under each policy in turn.
func TestPolicySwitchIncremental(t *testing.T) {
	topo := hybridTopo(t)
	eng := engine.New(engine.Config{})
	inc, err := NewManager(eng, topo)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewManager(eng, topo)
	if err != nil {
		t.Fatal(err)
	}
	oracle.SetFullRecompute(true)
	jobs := []Job{
		{ID: "s1", Submit: 0, GPUs: 16, Iterations: 2, Model: pg1(), Tenant: "t1"},
		{ID: "s2", Submit: 0, GPUs: 16, Iterations: 2, Model: pg1(), Tenant: "t2", Priority: 1},
		{ID: "s3", Submit: 3, GPUs: 32, Iterations: 1, Model: pg1(), Priority: 4, Deadline: 90},
		{ID: "s4", Submit: 6, GPUs: 8, Iterations: 2, Model: pg1(), Tenant: "t1", Weight: 2},
	}
	log := []string{"submit s1..s4"}
	for _, j := range jobs {
		if err := inc.Submit(j); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	compareManagers(t, inc, oracle, log)
	for _, name := range []string{"priority", "edf", "fair", "fifo", "priority"} {
		if err := inc.SetPolicy(name); err != nil {
			t.Fatal(err)
		}
		if err := oracle.SetPolicy(name); err != nil {
			t.Fatal(err)
		}
		log = append(log, "switch policy to "+name)
		compareManagers(t, inc, oracle, log)
		if got := inc.Policy(); got != name {
			t.Fatalf("Policy() = %q, want %q", got, name)
		}
	}
	if err := inc.SetPolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
