package fleet

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"holmes/internal/engine"
	"holmes/internal/scenario"
	"holmes/internal/topology"
)

// The incremental scheduler's contract is bit-identity with the
// from-scratch replay: the tests here drive both paths — the recorded
// checkpoint/resume Manager and a SetFullRecompute(true) oracle Manager
// — through identical mutation sequences and require byte-equal
// schedules after every step.

func marshalSched(t *testing.T, s *Schedule) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// mutator applies one mutation to a manager; the string names it for the
// failure log.
type mutator struct {
	desc  string
	apply func(m *Manager) error
}

func compareManagers(t *testing.T, inc, oracle *Manager, log []string) {
	t.Helper()
	got, err := inc.Schedule()
	if err != nil {
		t.Fatalf("incremental schedule failed after:\n%s\nerror: %v", joinLog(log), err)
	}
	want, err := oracle.Schedule()
	if err != nil {
		t.Fatalf("oracle schedule failed after:\n%s\nerror: %v", joinLog(log), err)
	}
	if g, w := marshalSched(t, got), marshalSched(t, want); g != w {
		t.Fatalf("incremental schedule diverged from the from-scratch oracle after:\n%s\nincremental: %s\noracle:      %s",
			joinLog(log), g, w)
	}
}

func joinLog(log []string) string {
	out := ""
	for i, l := range log {
		out += fmt.Sprintf("  %2d. %s\n", i+1, l)
	}
	return out
}

// TestIncrementalMatchesOracleRandomized drives seeded random mutation
// sequences — submits at random instants, cancels, scenario events
// (fail/degrade/restore at random times), timeline swaps — against both
// managers. Any divergence prints the full mutation table for replay.
func TestIncrementalMatchesOracleRandomized(t *testing.T) {
	topo := hybridTopo(t)
	eng := engine.New(engine.Config{})
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			inc, err := NewManager(eng, topo)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := NewManager(eng, topo)
			if err != nil {
				t.Fatal(err)
			}
			oracle.SetFullRecompute(true)
			var log []string
			var ids []string
			nextID := 0
			for step := 0; step < 14; step++ {
				mut := randomMutation(rng, &ids, &nextID)
				log = append(log, mut.desc)
				errInc := mut.apply(inc)
				errOra := mut.apply(oracle)
				if (errInc == nil) != (errOra == nil) {
					t.Fatalf("mutation error divergence after:\n%s\nincremental: %v\noracle: %v",
						joinLog(log), errInc, errOra)
				}
				compareManagers(t, inc, oracle, log)
			}
		})
	}
}

func hybridTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := (Spec{Env: "Hybrid", Nodes: 4}).Topology()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func randomMutation(rng *rand.Rand, ids *[]string, nextID *int) mutator {
	roll := rng.Float64()
	switch {
	case roll < 0.45 || len(*ids) == 0:
		id := fmt.Sprintf("j%d", *nextID)
		*nextID++
		*ids = append(*ids, id)
		gpus := 8 * (1 + rng.Intn(2)) // 1 or 2 nodes of 8 GPUs
		submit := float64(rng.Intn(40))
		iters := 1 + rng.Intn(2)
		j := Job{ID: id, Submit: submit, GPUs: gpus, Iterations: iters, Model: pg1()}
		return mutator{
			desc:  fmt.Sprintf("submit %s gpus=%d submit=%g iters=%d", id, gpus, submit, iters),
			apply: func(m *Manager) error { return m.Submit(j) },
		}
	case roll < 0.6:
		victim := (*ids)[rng.Intn(len(*ids))]
		*ids = removeID(*ids, victim)
		return mutator{
			desc:  fmt.Sprintf("cancel %s", victim),
			apply: func(m *Manager) error { m.Cancel(victim); return nil },
		}
	case roll < 0.66:
		ev := scenario.Event{Kind: scenario.FailNode, At: float64(rng.Intn(60)), Node: rng.Intn(4)}
		return mutator{
			desc:  fmt.Sprintf("fail_node node=%d at=%g", ev.Node, ev.At),
			apply: func(m *Manager) error { return m.ApplyEvent(ev) },
		}
	case roll < 0.72:
		ev := scenario.Event{
			Kind: scenario.DegradeNIC, At: float64(rng.Intn(60)),
			Node: rng.Intn(4), Class: scenario.ClassRDMA,
			Factor: 0.25 + 0.25*float64(rng.Intn(3)),
		}
		return mutator{
			desc:  fmt.Sprintf("degrade_nic node=%d at=%g factor=%g", ev.Node, ev.At, ev.Factor),
			apply: func(m *Manager) error { return m.ApplyEvent(ev) },
		}
	case roll < 0.78:
		ev := scenario.Event{Kind: scenario.RestoreNode, At: float64(rng.Intn(60)), Node: rng.Intn(4)}
		return mutator{
			desc:  fmt.Sprintf("restore_node node=%d at=%g", ev.Node, ev.At),
			apply: func(m *Manager) error { return m.ApplyEvent(ev) },
		}
	case roll < 0.83:
		ev := scenario.Event{
			Kind: scenario.Straggler, At: float64(rng.Intn(60)),
			Node: rng.Intn(4), Factor: 0.4 + 0.2*float64(rng.Intn(3)),
		}
		return mutator{
			desc:  fmt.Sprintf("straggler node=%d at=%g factor=%g", ev.Node, ev.At, ev.Factor),
			apply: func(m *Manager) error { return m.ApplyEvent(ev) },
		}
	case roll < 0.88:
		at := float64(rng.Intn(50))
		ev := scenario.Event{
			Kind: scenario.Loss, At: at, Until: at + 5 + float64(rng.Intn(10)),
			Node: rng.Intn(4), Pct: 10 + 10*float64(rng.Intn(5)),
		}
		return mutator{
			desc:  fmt.Sprintf("loss node=%d at=%g until=%g pct=%g", ev.Node, ev.At, ev.Until, ev.Pct),
			apply: func(m *Manager) error { return m.ApplyEvent(ev) },
		}
	case roll < 0.92:
		at := float64(rng.Intn(50))
		ev := scenario.Event{
			Kind: scenario.FlapLink, At: at, Until: at + 2 + float64(rng.Intn(6)),
			Node: rng.Intn(4), DownMs: 200, UpMs: 300,
		}
		return mutator{
			desc:  fmt.Sprintf("flap_link node=%d at=%g until=%g", ev.Node, ev.At, ev.Until),
			apply: func(m *Manager) error { return m.ApplyEvent(ev) },
		}
	case roll < 0.96:
		ev := scenario.Event{Kind: scenario.FailCluster, At: float64(rng.Intn(60)), Cluster: rng.Intn(2)}
		return mutator{
			desc:  fmt.Sprintf("fail_cluster cluster=%d at=%g", ev.Cluster, ev.At),
			apply: func(m *Manager) error { return m.ApplyEvent(ev) },
		}
	default:
		return mutator{
			desc:  "clear scenario",
			apply: func(m *Manager) error { return m.SetScenario(nil) },
		}
	}
}

func removeID(ids []string, id string) []string {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// TestIncrementalFleet12MatchesOracle walks the canonical 12-job trace
// through a live manager — staged submits with schedule polls in
// between, then the golden trace's scenario spliced in, then a cancel
// and a re-submit — always in lockstep with the from-scratch oracle.
// This is the deterministic (non-randomized) differential anchor on the
// exact workload the golden file pins.
func TestIncrementalFleet12MatchesOracle(t *testing.T) {
	tr := loadTrace(t)
	topo, err := tr.Fleet.Topology()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{})
	inc, err := NewManager(eng, topo)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewManager(eng, topo)
	if err != nil {
		t.Fatal(err)
	}
	oracle.SetFullRecompute(true)
	var log []string
	step := func(desc string, f func(m *Manager) error) {
		log = append(log, desc)
		if err := f(inc); err != nil {
			t.Fatalf("%s (incremental): %v", desc, err)
		}
		if err := f(oracle); err != nil {
			t.Fatalf("%s (oracle): %v", desc, err)
		}
		compareManagers(t, inc, oracle, log)
	}
	for _, j := range tr.Jobs {
		j := j
		step("submit "+j.ID, func(m *Manager) error { return m.Submit(j) })
	}
	step("splice scenario", func(m *Manager) error { return m.SetScenario(tr.Scenario) })
	victim := tr.Jobs[len(tr.Jobs)-1]
	step("cancel "+victim.ID, func(m *Manager) error { m.Cancel(victim.ID); return nil })
	step("re-submit "+victim.ID, func(m *Manager) error { return m.Submit(victim) })
	step("clear scenario", func(m *Manager) error { return m.SetScenario(nil) })
	step("restore scenario", func(m *Manager) error { return m.SetScenario(tr.Scenario) })

	// The surviving job set equals the full canonical trace, so the
	// incremental manager must land exactly on the from-scratch replay of
	// the golden workload.
	want, err := Replay(eng, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("manager schedule has %d jobs, replay has %d", len(got.Jobs), len(want.Jobs))
	}
	byID := make(map[string]Placement, len(want.Jobs))
	for _, p := range want.Jobs {
		byID[p.JobID] = p
	}
	for _, p := range got.Jobs {
		w, ok := byID[p.JobID]
		if !ok {
			t.Fatalf("manager schedule has unknown job %s", p.JobID)
		}
		if diff := diffPlacements(w, p); diff != "" {
			t.Errorf("job %s drifted between manager and replay:\n%s", p.JobID, diff)
		}
	}
	if got.Makespan != want.Makespan {
		t.Errorf("makespan drifted: replay %.17g, manager %.17g", want.Makespan, got.Makespan)
	}
}

// TestFleet12GoldenAcrossPoolSizes replays the canonical trace on
// engines with worker pools of 1, 2, and 8 and requires each schedule to
// match the committed golden byte for byte: concurrent candidate
// scoring, backfill scanning, and replan fan-out must never let pool
// size leak into a decision. Run under -race in CI, this doubles as the
// concurrency soak for the scoring fan-out.
func TestFleet12GoldenAcrossPoolSizes(t *testing.T) {
	tr := loadTrace(t)
	for _, conc := range []int{1, 2, 8} {
		conc := conc
		t.Run(fmt.Sprintf("concurrency%d", conc), func(t *testing.T) {
			eng := engine.New(engine.Config{Concurrency: conc})
			sched, err := Replay(eng, tr)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "fleet12", sched)
		})
	}
}

// TestPlanCacheSharedAcrossSchedulers proves the memo moved off the
// Scheduler: a second scheduler on the same engine replays the canonical
// trace without a single additional plan-cache miss, and bit-identically.
func TestPlanCacheSharedAcrossSchedulers(t *testing.T) {
	tr := loadTrace(t)
	topo, err := tr.Fleet.Topology()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{})
	s1, err := NewScheduler(eng, topo)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s1.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	cold := eng.PlanCacheStats()
	if cold.Misses == 0 || cold.Size == 0 {
		t.Fatalf("cold replay populated nothing: %+v", cold)
	}
	s2, err := NewScheduler(eng, topo)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s2.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	warm := eng.PlanCacheStats()
	if warm.Misses != cold.Misses {
		t.Fatalf("warm replay on a fresh scheduler missed the shared cache: cold %+v, warm %+v", cold, warm)
	}
	if warm.Hits <= cold.Hits {
		t.Fatalf("warm replay recorded no hits: cold %+v, warm %+v", cold, warm)
	}
	if marshalSched(t, first) != marshalSched(t, second) {
		t.Fatal("a warm plan cache changed the schedule")
	}
}
