package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"holmes/internal/engine"
	"holmes/internal/events"
)

// eventOp builds an operator with a hub attached and its background
// loop already stopped: the test is the only driver, so every tick
// happens at a scripted instant and the stream has exactly one
// possible interleaving.
func eventOp(t *testing.T, eng *engine.Engine, dir string, clock Clock, hub *events.Hub) *Operator {
	t.Helper()
	op, err := NewOperator(eng, Spec{Env: "Hybrid", Nodes: 4}, OperatorConfig{
		Clock:         clock,
		Journal:       filepath.Join(dir, "fleet.journal"),
		SnapshotEvery: 1000,
		Events:        hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	op.stopLoop()
	return op
}

// scriptedStream drives the shared soak script on a fresh operator and
// returns its full event stream as NDJSON bytes.
func scriptedStream(t *testing.T) []byte {
	t.Helper()
	eng := engine.New(engine.Config{})
	clock := NewFakeClock()
	hub := events.NewHub()
	op := eventOp(t, eng, t.TempDir(), clock, hub)
	sub := hub.Subscribe(4096)

	opScript(t, op, clock, 0, opScriptLen)
	at(op, clock, 60)
	op.tick()
	at(op, clock, 1500)
	op.tick() // idle barrier: everything retires
	must(t, op.Close())
	hub.Close()

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for ev := range sub.Events() {
		must(t, enc.Encode(ev))
	}
	return buf.Bytes()
}

// TestOperatorEventStreamDeterministic is the observability half of
// the determinism contract: two runs of the same script (explicit
// clock instants, explicit ticks) publish byte-identical streams —
// job transitions stamped with their schedule edges, scenario edges
// with their own instants, mutations with their journal sequence.
func TestOperatorEventStreamDeterministic(t *testing.T) {
	a := scriptedStream(t)
	b := scriptedStream(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("event streams differ across identical runs:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("scripted run published no events")
	}
	// Spot-check the life cycle a dashboard depends on: w1 must enter
	// queued, cross running, and land done before the retire event.
	var queued, running, done, retired, fired int = -1, -1, -1, -1, -1
	var evs []events.Event
	dec := json.NewDecoder(bytes.NewReader(a))
	for dec.More() {
		var ev events.Event
		must(t, dec.Decode(&ev))
		evs = append(evs, ev)
	}
	for i, ev := range evs {
		switch {
		case ev.Kind == events.KindJob && ev.Job == "w1" && ev.State == "queued":
			queued = i
		case ev.Kind == events.KindJob && ev.Job == "w1" && ev.State == "running" && running < 0:
			running = i
		case ev.Kind == events.KindJob && ev.Job == "w1" && ev.State == "done" && done < 0:
			done = i
		case ev.Kind == events.KindRetire:
			retired = i
		case ev.Kind == events.KindScenario && ev.State == "fired" && fired < 0:
			fired = i
		}
	}
	if !(queued >= 0 && queued < running && running < done && done < retired) {
		t.Fatalf("w1 lifecycle out of order: queued=%d running=%d done=%d retire=%d\n%s",
			queued, running, done, retired, a)
	}
	if fired < 0 {
		t.Fatalf("scenario edge never fired in stream:\n%s", a)
	}
	// Stream sequence is gap-free and the hub assigned it in order.
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestOperatorEventStreamMatchesJournal pins the stream to the
// journal: every mutation event carries the sequence of the record
// that made it durable, in exactly the journal's record order.
func TestOperatorEventStreamMatchesJournal(t *testing.T) {
	eng := engine.New(engine.Config{})
	clock := NewFakeClock()
	hub := events.NewHub()
	dir := t.TempDir()
	op := eventOp(t, eng, dir, clock, hub)
	sub := hub.Subscribe(4096)

	opScript(t, op, clock, 0, opScriptLen) // no retirement: journal keeps every record
	must(t, op.Abort())
	hub.Close()

	var stream []events.Event
	for ev := range sub.Events() {
		if ev.JournalSeq != 0 {
			stream = append(stream, ev)
		}
	}

	j, recs, err := OpenJournal(filepath.Join(dir, "fleet.journal"))
	must(t, err)
	defer j.Close()
	var muts []Record
	for _, rec := range recs {
		if rec.Kind != RecCreate {
			muts = append(muts, rec)
		}
	}
	if len(stream) != len(muts) {
		t.Fatalf("stream carries %d journal-backed events, journal has %d mutation records", len(stream), len(muts))
	}
	wantKind := map[string]string{
		RecSubmit:      events.KindJob,
		RecCancel:      events.KindJob,
		RecApplyEvent:  events.KindScenario,
		RecSetScenario: events.KindScenario,
		RecSetPolicy:   events.KindPolicy,
		RecRetire:      events.KindRetire,
	}
	for i, rec := range muts {
		ev := stream[i]
		if ev.JournalSeq != rec.Seq {
			t.Fatalf("event %d: journal_seq %d, record seq %d", i, ev.JournalSeq, rec.Seq)
		}
		if ev.At != rec.At {
			t.Fatalf("event %d: at %g, record at %g", i, ev.At, rec.At)
		}
		if ev.Kind != wantKind[rec.Kind] {
			t.Fatalf("event %d: kind %q for record kind %q", i, ev.Kind, rec.Kind)
		}
	}
}

// TestOperatorHasRetireRace is the regression for the Has TOCTOU: the
// retired-map check used to run under o.mu while the live check ran
// after unlock, so a job moving from live to retired between the two
// reads made Has report false for an ID the operator knows — which is
// exactly the hole a duplicate submit slips through. Hammer Has and
// duplicate submits across repeated retirement cycles; the answer must
// never flicker.
func TestOperatorHasRetireRace(t *testing.T) {
	eng := engine.New(engine.Config{})
	clock := NewFakeClock()
	op := testOp(t, eng, t.TempDir(), clock, 1000)
	defer op.Abort()

	const cycles = 8
	ids := make([]string, cycles)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%02d", i)
	}

	var submitted atomic.Int32 // index below which Has must answer true
	var lost, dups atomic.Int32
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := int(submitted.Load())
				for i := 0; i < n; i++ {
					if !op.Has(ids[i]) {
						lost.Add(1)
					}
					// A duplicate of a known ID must always refuse,
					// mid-retirement included.
					if err := op.Submit(Job{ID: ids[i], GPUs: 8, Iterations: 1, Model: pg1()}); err == nil {
						dups.Add(1)
					}
				}
			}
		}()
	}

	for i := 0; i < cycles; i++ {
		must(t, op.Submit(Job{ID: ids[i], GPUs: 8, Iterations: 1, Model: pg1()}))
		submitted.Store(int32(i + 1))
		clock.Advance(2000)       // past the finish edge
		for op.Len() > 0 {        // idle barrier: this tick retires
			op.tick()
		}
	}
	close(stop)
	wg.Wait()

	if n := lost.Load(); n != 0 {
		t.Fatalf("Has answered false %d times for IDs the operator knows", n)
	}
	if n := dups.Load(); n != 0 {
		t.Fatalf("%d duplicate submits were admitted", n)
	}
	if got := len(op.Done()); got != cycles {
		t.Fatalf("retired %d jobs, want %d", got, cycles)
	}
}
