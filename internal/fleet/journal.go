package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"holmes/internal/scenario"
)

// Durable fleet state. The operator journals *mutations*, not
// schedules: every schedule is a deterministic replay of the live job
// set, so persisting the inputs (submit/cancel/event/policy records)
// is both smaller and stronger than persisting any derived placement —
// a recovered process re-derives bit-identical schedules by
// construction (DESIGN.md decision 13). The journal is an fsync'd
// NDJSON log: one compact JSON record per line, synced before the
// mutation is acknowledged to the caller.
// Periodic snapshots (same versioned-envelope/checksum codec as the
// api cache snapshot — re-implemented here because api imports fleet)
// bound recovery time: a snapshot embeds the journal sequence it
// covers, the journal restarts empty, and recovery is snapshot +
// replay of the journal suffix.

// Journal record kinds. Unknown kinds are rejected on recovery: a
// journal written by a newer build is not safe to half-understand.
const (
	RecCreate      = "create"       // fleet born: carries Spec and policy
	RecSubmit      = "submit"       // one job admitted (Submit already stamped)
	RecCancel      = "cancel"       // one job cancelled by ID
	RecApplyEvent  = "apply_event"  // one scenario event appended
	RecSetScenario = "set_scenario" // timeline replaced (nil clears)
	RecSetPolicy   = "set_policy"   // scheduling policy switched
	RecRetire      = "retire"       // completed jobs retired at an idle barrier
)

// journalKinds is the closed set a decoder accepts.
var journalKinds = map[string]bool{
	RecCreate: true, RecSubmit: true, RecCancel: true, RecApplyEvent: true,
	RecSetScenario: true, RecSetPolicy: true, RecRetire: true,
}

// Record is one journal line: a sequence number, the operator wall
// instant the mutation happened, the kind, and the kind's payload
// field(s).
type Record struct {
	Seq  uint64  `json:"seq"`
	At   float64 `json:"at"`
	Kind string  `json:"kind"`
	// Fleet is the topology spec; RecCreate only.
	Fleet *Spec `json:"fleet,omitempty"`
	// Job is the admitted job, submit stamp included; RecSubmit only.
	Job *Job `json:"job,omitempty"`
	// ID names the cancelled job; RecCancel only.
	ID string `json:"id,omitempty"`
	// IDs lists the retired jobs; RecRetire only.
	IDs []string `json:"ids,omitempty"`
	// Event is the appended event; RecApplyEvent only.
	Event *scenario.Event `json:"event,omitempty"`
	// Scenario is the replacement timeline; RecSetScenario only (nil =
	// cleared).
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
	// Policy is the policy name; RecCreate and RecSetPolicy.
	Policy string `json:"policy,omitempty"`
}

// decodeJournal parses journal bytes into records. It returns the
// records, the byte length of the good prefix, and an error for
// corruption that recovery must not paper over. A torn final record —
// a crash mid-write leaves one — is not corruption: it is discarded,
// and good points at the end of the last intact record so the caller
// can truncate the tail in place. Everything else is fatal: a
// malformed record with more records after it, an unknown kind, or a
// non-monotonic sequence number all mean the file is not what this
// build wrote.
func decodeJournal(data []byte) (recs []Record, good int, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		line := data[off:]
		torn := nl < 0 // no terminator: the write never completed
		if !torn {
			line = data[off : off+nl]
		}
		if len(bytes.TrimSpace(line)) == 0 {
			if torn {
				break
			}
			off += nl + 1
			continue
		}
		var rec Record
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if derr := dec.Decode(&rec); derr != nil || dec.More() {
			if torn || allBlank(data[off+nl+1:]) {
				break // torn tail: drop it, keep the prefix
			}
			return nil, 0, fmt.Errorf("fleet: journal record %d is corrupt mid-file: %v", len(recs), derr)
		}
		if !journalKinds[rec.Kind] {
			return nil, 0, fmt.Errorf("fleet: journal record %d has unknown kind %q", len(recs), rec.Kind)
		}
		if len(recs) > 0 && rec.Seq <= recs[len(recs)-1].Seq {
			return nil, 0, fmt.Errorf("fleet: journal sequence went backwards: %d after %d", rec.Seq, recs[len(recs)-1].Seq)
		}
		if torn {
			// A record without its terminating newline may still be cut
			// short in a way that happens to parse; only a complete line
			// is trusted.
			break
		}
		recs = append(recs, rec)
		off += nl + 1
		good = off
	}
	return recs, good, nil
}

func allBlank(data []byte) bool { return len(bytes.TrimSpace(data)) == 0 }

// PeekSpec reads the fleet spec a durable state was created for without
// replaying anything: the snapshot's recorded spec when one exists,
// else the journal's create record. ok=false means no durable state
// exists at all (a fresh boot). Corrupt state is an error, never a
// silent fresh boot — recovery must not quietly discard a fleet.
func PeekSpec(journalPath, snapshotPath string) (Spec, bool, error) {
	if snapshotPath == "" {
		snapshotPath = journalPath + ".snap"
	}
	if data, err := os.ReadFile(snapshotPath); err == nil {
		s, err := DecodeFleetSnapshot(data)
		if err != nil {
			return Spec{}, false, err
		}
		return s.Fleet, true, nil
	} else if !os.IsNotExist(err) {
		return Spec{}, false, err
	}
	data, err := os.ReadFile(journalPath)
	if err != nil {
		if os.IsNotExist(err) {
			return Spec{}, false, nil
		}
		return Spec{}, false, err
	}
	recs, _, err := decodeJournal(data)
	if err != nil {
		return Spec{}, false, err
	}
	if len(recs) == 0 {
		return Spec{}, false, nil
	}
	if recs[0].Kind != RecCreate || recs[0].Fleet == nil {
		return Spec{}, false, fmt.Errorf("fleet: journal %s does not begin with a create record", journalPath)
	}
	return *recs[0].Fleet, true, nil
}

// Journal is the fsync'd append-only mutation log of one operator.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seq  uint64
}

// OpenJournal opens (or creates) the journal at path, decodes the
// surviving records, truncates any torn tail in place, and positions
// for appending. The returned records are what recovery replays.
func OpenJournal(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	recs, good, err := decodeJournal(data)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{f: f, path: path}
	if len(recs) > 0 {
		j.seq = recs[len(recs)-1].Seq
	}
	return j, recs, nil
}

// Seq is the sequence number of the newest durable record.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// SeedSeq raises the journal's sequence floor to seq, so the next
// append is numbered seq+1. Recovery calls it with a loaded snapshot's
// Seq: the snapshot truncated the journal, so a restarted process
// would otherwise number fresh records from 1 — and a later recovery
// would mistake those acknowledged, fsync'd mutations for ones the
// snapshot already covers and silently skip them. No-op when the
// journal is already past seq (it then holds records newer than the
// snapshot).
func (j *Journal) SeedSeq(seq uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq > j.seq {
		j.seq = seq
	}
}

// Append assigns the next sequence number, writes the record as one
// compact JSON line, and fsyncs before returning: when Append returns,
// the mutation survives a crash. The operator validates and applies a
// mutation first, then journals it, and acknowledges the caller only
// after Append succeeds — so every acknowledged mutation is durable,
// and a crash between apply and fsync loses only mutations no client
// was ever told about.
func (j *Journal) Append(rec Record) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, fmt.Errorf("fleet: journal %s is closed", j.path)
	}
	rec.Seq = j.seq + 1
	line, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return 0, err
	}
	if err := j.f.Sync(); err != nil {
		return 0, err
	}
	j.seq = rec.Seq
	return rec.Seq, nil
}

// Reset truncates the journal after a snapshot at seq became durable:
// replay now starts from the snapshot, so the log restarts empty while
// sequence numbers keep counting from the snapshot's.
func (j *Journal) Reset(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("fleet: journal %s is closed", j.path)
	}
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	if seq > j.seq {
		j.seq = seq
	}
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Fleet snapshot codec: the same versioned-envelope/checksum shape as
// the api cache snapshot (PR 7), carrying the operator's durable state
// instead of caches. api imports fleet, so the small codec is
// re-implemented here rather than creating an import cycle.
const (
	FleetSnapshotFormat  = "holmes-fleet-snapshot"
	FleetSnapshotVersion = 1
)

// FleetSnapshot is the operator's durable state at one instant: the
// journal sequence it covers, the operator wall clock, and everything
// needed to rebuild the manager — spec, policy, live jobs, timeline —
// plus the placements of already-retired jobs.
type FleetSnapshot struct {
	// Seq is the newest journal record folded into this snapshot;
	// recovery replays only records with Seq greater than it.
	Seq uint64 `json:"seq"`
	// Now is the operator wall instant the snapshot was taken at; a
	// recovered operator resumes its wall clock from here.
	Now    float64 `json:"now"`
	Fleet  Spec    `json:"fleet"`
	Policy string  `json:"policy,omitempty"`
	// Jobs is the live set, sorted by (submit, id) for stable bytes.
	Jobs     []Job              `json:"jobs"`
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
	// Done holds the final placements of retired jobs, by retirement
	// order.
	Done []Placement `json:"done,omitempty"`
}

type fleetSnapshotEnvelope struct {
	Format   string          `json:"format"`
	Version  int             `json:"version"`
	Checksum string          `json:"checksum_fnv64a"`
	Payload  json.RawMessage `json:"payload"`
}

// journalChecksum is FNV-64a over the payload's compact JSON bytes,
// hex-encoded (identical to the api snapshot's payloadChecksum: the
// checksum guards content, not formatting).
func journalChecksum(payload []byte) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err == nil {
		payload = buf.Bytes()
	}
	h := fnv.New64a()
	_, _ = h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64())
}

// EncodeFleetSnapshot serializes a snapshot into the enveloped
// document.
func EncodeFleetSnapshot(s FleetSnapshot) ([]byte, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("fleet: snapshot payload: %w", err)
	}
	doc, err := json.MarshalIndent(fleetSnapshotEnvelope{
		Format:   FleetSnapshotFormat,
		Version:  FleetSnapshotVersion,
		Checksum: journalChecksum(raw),
		Payload:  raw,
	}, "", " ")
	if err != nil {
		return nil, fmt.Errorf("fleet: snapshot envelope: %w", err)
	}
	return append(doc, '\n'), nil
}

// DecodeFleetSnapshot validates and decodes a snapshot document:
// format, version, and checksum are all checked before the payload is
// trusted, and any failure rejects the whole file.
func DecodeFleetSnapshot(data []byte) (FleetSnapshot, error) {
	var env fleetSnapshotEnvelope
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return FleetSnapshot{}, fmt.Errorf("fleet: snapshot: %w", err)
	}
	if env.Format != FleetSnapshotFormat {
		return FleetSnapshot{}, fmt.Errorf("fleet: snapshot format %q (want %q)", env.Format, FleetSnapshotFormat)
	}
	if env.Version != FleetSnapshotVersion {
		return FleetSnapshot{}, fmt.Errorf("fleet: snapshot version %d (want %d)", env.Version, FleetSnapshotVersion)
	}
	if got := journalChecksum(env.Payload); got != env.Checksum {
		return FleetSnapshot{}, fmt.Errorf("fleet: snapshot checksum %s does not match payload (%s)", env.Checksum, got)
	}
	var s FleetSnapshot
	pdec := json.NewDecoder(bytes.NewReader(env.Payload))
	pdec.DisallowUnknownFields()
	if err := pdec.Decode(&s); err != nil {
		return FleetSnapshot{}, fmt.Errorf("fleet: snapshot payload: %w", err)
	}
	return s, nil
}
