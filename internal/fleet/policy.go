package fleet

import (
	"fmt"
	"math"
	"sort"
)

// Scheduling policies. The replay loop is policy-agnostic: it asks a
// Policy how to order the queue and whether a blocked queue head may
// preempt running work, and everything else — EASY reservations,
// backfill, eviction bookkeeping, determinism guarantees — is shared.
// A policy sees jobs only through JobView and the replay only through
// PolicyState, so policies cannot reach the mutable state and cannot
// break the bit-identity contract: Less must be a strict weak ordering
// that ends in the TraceIdx tie-break, which makes every queue order a
// pure function of the trace.

// JobView is the policy-visible projection of one job, queued or
// running.
type JobView struct {
	ID       string
	TraceIdx int // trace position: the final deterministic tie-breaker
	Submit   float64
	// Ready is the instant the job (re-)entered the queue: Submit on
	// arrival, the eviction or preemption instant on requeue. For a
	// running job it is the entry's ready at placement time.
	Ready    float64
	Deadline float64 // 0 = none
	Priority int
	Tenant   string  // resolved: never empty
	Weight   float64 // resolved: always > 0
	Nodes    int     // demand in whole nodes
	Running  bool
	Finish   float64 // projected completion; running jobs only
}

// PolicyState is the read-only replay context handed to policy
// decisions.
type PolicyState interface {
	// Now is the current virtual instant.
	Now() float64
	// TenantUsage is the tenant's accrued GPU-seconds: completed and
	// evicted segments plus the elapsed part of live runs.
	TenantUsage(tenant string) float64
}

// Policy orders the queue and arbitrates preemption. Implementations
// must be stateless (or immutable after construction): the same Policy
// value is shared across replays and goroutines.
type Policy interface {
	// Name is the registry key ("fifo", "priority", ...).
	Name() string
	// Less reports whether a runs before b in the queue. It must define
	// a strict weak ordering and break final ties on TraceIdx, so the
	// queue order is total and deterministic.
	Less(ps PolicyState, a, b JobView) bool
	// Preempts reports whether a blocked queue head may evict the given
	// running job to make room. The replay only asks when the free node
	// count cannot cover the head's demand, evicts least-entitled
	// victims first, and only commits when the freed nodes actually
	// cover the demand — a policy returning true never causes an
	// eviction that cannot help the head.
	Preempts(ps PolicyState, head, running JobView) bool
}

// DefaultPolicy is the policy used when a trace or fleet names none.
const DefaultPolicy = "fifo"

// policies is the fixed registry, in documentation order.
var policies = []Policy{fifoPolicy{}, priorityPolicy{}, edfPolicy{}, fairPolicy{}}

// PolicyNames lists the registered policy names in a stable order.
func PolicyNames() []string {
	names := make([]string, len(policies))
	for i, p := range policies {
		names[i] = p.Name()
	}
	return names
}

// PolicyByName resolves a policy ("" = DefaultPolicy).
func PolicyByName(name string) (Policy, error) {
	if name == "" {
		name = DefaultPolicy
	}
	for _, p := range policies {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fleet: unknown policy %q (have %v)", name, PolicyNames())
}

// fifoPolicy is the historical scheduler: strict (ready, trace index)
// order, no preemption. It is differential-tested bit-identical to the
// pre-policy code via the committed fleet12 golden.
type fifoPolicy struct{}

func (fifoPolicy) Name() string { return "fifo" }

func (fifoPolicy) Less(_ PolicyState, a, b JobView) bool {
	if a.Ready != b.Ready {
		return a.Ready < b.Ready
	}
	return a.TraceIdx < b.TraceIdx
}

func (fifoPolicy) Preempts(PolicyState, JobView, JobView) bool { return false }

// priorityPolicy runs strict priority tiers (higher Priority first,
// FIFO inside a tier) and preempts: a blocked head evicts
// strictly-lower-priority running jobs, lowest tier first, when that
// frees enough nodes.
type priorityPolicy struct{}

func (priorityPolicy) Name() string { return "priority" }

func (priorityPolicy) Less(_ PolicyState, a, b JobView) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.Ready != b.Ready {
		return a.Ready < b.Ready
	}
	return a.TraceIdx < b.TraceIdx
}

func (priorityPolicy) Preempts(_ PolicyState, head, running JobView) bool {
	return head.Priority > running.Priority
}

// edfPolicy is earliest-deadline-first: jobs with deadlines run before
// jobs without, nearer deadlines first, FIFO among the deadline-free.
// No preemption — EDF here only reorders the queue; started work keeps
// its slice.
type edfPolicy struct{}

func (edfPolicy) Name() string { return "edf" }

func deadlineOf(v JobView) float64 {
	if v.Deadline > 0 {
		return v.Deadline
	}
	return math.Inf(1)
}

func (edfPolicy) Less(_ PolicyState, a, b JobView) bool {
	da, db := deadlineOf(a), deadlineOf(b)
	if da != db {
		return da < db
	}
	if a.Ready != b.Ready {
		return a.Ready < b.Ready
	}
	return a.TraceIdx < b.TraceIdx
}

func (edfPolicy) Preempts(PolicyState, JobView, JobView) bool { return false }

// fairPolicy is weighted fair-share across tenants: the queue orders by
// accrued GPU-seconds over weight, ascending, so the tenant furthest
// below its share runs next. Usage accrues deterministically (completed
// and evicted segments in replay order, live runs by slice order), and
// placement at one instant contributes nothing at that instant — the
// share converges over the trace, not within a single placement pass.
// No preemption.
type fairPolicy struct{}

func (fairPolicy) Name() string { return "fair" }

func (fairPolicy) Less(ps PolicyState, a, b JobView) bool {
	ua := ps.TenantUsage(a.Tenant) / a.Weight
	ub := ps.TenantUsage(b.Tenant) / b.Weight
	if ua != ub {
		return ua < ub
	}
	if a.Ready != b.Ready {
		return a.Ready < b.Ready
	}
	return a.TraceIdx < b.TraceIdx
}

func (fairPolicy) Preempts(PolicyState, JobView, JobView) bool { return false }

// queuedView projects a queue entry for policy decisions.
func (st *state) queuedView(q *qentry) JobView {
	return JobView{
		ID:       q.j.job.ID,
		TraceIdx: q.j.idx,
		Submit:   q.j.job.Submit,
		Ready:    q.ready,
		Deadline: q.j.job.Deadline,
		Priority: q.j.job.Priority,
		Tenant:   q.j.tenant,
		Weight:   q.j.weight,
		Nodes:    q.j.nodes,
	}
}

// runView projects a running slice for preemption decisions.
func (st *state) runView(r *run) JobView {
	v := st.queuedView(r.q)
	v.Running = true
	v.Finish = r.finish
	return v
}

// Now implements PolicyState.
func (st *state) Now() float64 { return st.clock }

// TenantUsage implements PolicyState: accrued GPU-seconds (completed
// and evicted segments) plus the elapsed part of every live run, in
// slice order — all deterministic accumulation orders.
func (st *state) TenantUsage(tenant string) float64 {
	u := st.tenantBusy[tenant]
	for _, r := range st.runs {
		if r.q.j.tenant == tenant {
			u += st.gpus(r) * (st.clock - r.segStart)
		}
	}
	return u
}

// preemptFor tries to free enough nodes for a blocked queue head by
// evicting running jobs the policy lets it preempt, least-entitled
// first (the reverse of the policy's queue order). It reports whether
// it evicted anyone. Guards:
//
//   - Only fires when the free node count cannot cover the demand; a
//     head blocked on plan feasibility (not capacity) never evicts.
//     After a successful preemption the free count covers the demand,
//     so the arm cannot re-fire for the same head at the same instant —
//     preemption cannot oscillate.
//   - Only commits when the achievable free count actually covers the
//     demand; otherwise nothing is evicted.
//
// Victims requeue at the current instant with their remaining
// iterations, exactly like a fail_node eviction but accounted under
// Preemptions (no Recovery measurement: preemption is a scheduling
// decision, not a fault).
func (st *state) preemptFor(head *qentry) bool {
	need := head.j.nodes
	free := len(st.freeNodes())
	if free >= need {
		return false
	}
	hv := st.queuedView(head)
	var vics []*run
	for _, r := range st.runs {
		if st.pol.Preempts(st, hv, st.runView(r)) {
			vics = append(vics, r)
		}
	}
	if len(vics) == 0 {
		return false
	}
	// Least-entitled first: sort by the policy's queue order and walk it
	// back to front.
	sort.SliceStable(vics, func(a, b int) bool {
		return st.pol.Less(st, st.queuedView(vics[a].q), st.queuedView(vics[b].q))
	})
	achievable := free
	cut := len(vics)
	for cut > 0 && achievable < need {
		cut--
		achievable += len(vics[cut].nodes)
	}
	if achievable < need {
		return false
	}
	chosen := vics[cut:]
	// Book progress and requeue in trace order so busy-seconds accrue in
	// a replay-stable sequence.
	sort.SliceStable(chosen, func(a, b int) bool { return chosen[a].q.j.idx < chosen[b].q.j.idx })
	drop := make(map[*run]bool, len(chosen))
	for _, r := range chosen {
		drop[r] = true
	}
	keep := st.runs[:0]
	for _, r := range st.runs {
		if !drop[r] {
			keep = append(keep, r)
		}
	}
	st.runs = keep
	for _, r := range chosen {
		rem := st.segmentProgress(r)
		q := r.q
		q.remIters = rem
		q.ready = st.clock
		q.res.Preemptions++
		for _, n := range r.nodes {
			if !st.failed[n] {
				st.free[n] = true
			}
		}
		st.queue = append(st.queue, q)
	}
	st.sortQueue()
	return true
}
