// Package comm establishes communication groups ("communicators") for the
// parallel groups of an assignment, implementing the paper's Automatic NIC
// Selection (§3.2):
//
//   - every tensor-parallel group gets an intra-node channel (NVLink/PCIe);
//   - every pipeline-parallel group gets an Ethernet channel between
//     stages (the only technology that crosses cluster boundaries);
//   - every data-parallel group gets an independent channel on the RDMA
//     fabric of the cluster it lives in — IB groups pick IB, RoCE groups
//     pick RoCE — rather than one unified (lowest-common-denominator)
//     environment for all groups.
//
// The traditional behaviour of Megatron-LM and Megatron-DeepSpeed — a
// single communication environment shared by every group, which collapses
// to Ethernet as soon as any pair of devices lacks a common RDMA fabric —
// is retained as a baseline via BuildWorld(..., UnifiedSelection).
package comm

import (
	"fmt"

	"holmes/internal/netsim"
	"holmes/internal/parallel"
	"holmes/internal/topology"
)

// Kind labels the parallelism a group serves.
type Kind int

const (
	TP Kind = iota
	PP
	DP
)

// String names the group kind.
func (k Kind) String() string {
	switch k {
	case TP:
		return "tensor"
	case PP:
		return "pipeline"
	case DP:
		return "data"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Selection is the NIC-selection policy.
type Selection int

const (
	// AutoSelection is Holmes's per-group Automatic NIC Selection.
	AutoSelection Selection = iota
	// UnifiedSelection is the traditional single-environment policy: every
	// group uses the one technology all devices share.
	UnifiedSelection
)

// Group is one communicator: a parallel group bound to a network class.
type Group struct {
	Kind  Kind
	Index int
	Ranks []int
	// NIC is the technology the channel was established on.
	NIC topology.NICType
	// Class is the netsim class flows of this group use.
	Class netsim.Class
	// CrossNode reports whether the group leaves a node at all.
	CrossNode bool
}

func (g *Group) String() string {
	return fmt.Sprintf("%s[%d] %v via %v", g.Kind, g.Index, g.Ranks, g.NIC)
}

// World is the full set of communicators for a job.
type World struct {
	Topo      *topology.Topology
	Assign    *parallel.Assignment
	Selection Selection
	TPGroups  []*Group
	PPGroups  []*Group
	DPGroups  []*Group
}

// BuildWorld creates communicators for every parallel group under the
// given NIC-selection policy.
func BuildWorld(topo *topology.Topology, a *parallel.Assignment, sel Selection) (*World, error) {
	if topo.NumDevices() != a.N {
		return nil, fmt.Errorf("comm: topology N=%d, assignment N=%d", topo.NumDevices(), a.N)
	}
	w := &World{Topo: topo, Assign: a, Selection: sel}
	unified := unifiedNIC(topo)
	for i, ranks := range a.TP {
		w.TPGroups = append(w.TPGroups, buildGroup(topo, TP, i, ranks, sel, unified))
	}
	for i, ranks := range a.PP {
		g := buildGroup(topo, PP, i, ranks, sel, unified)
		if sel == AutoSelection && g.CrossNode {
			// §3.2: pipeline channels are established on Ethernet — the
			// universal technology — so stages may cross clusters freely.
			// (Within one cluster the fabric would allow RDMA, but the
			// pipeline's low communication volume does not repay burning
			// RDMA credits; Holmes reserves RDMA for data parallelism.)
			if !sameCluster(topo, ranks) {
				g.NIC = topology.Ethernet
				g.Class = netsim.Ether
			}
		}
		w.PPGroups = append(w.PPGroups, g)
	}
	for i, ranks := range a.DP {
		w.DPGroups = append(w.DPGroups, buildGroup(topo, DP, i, ranks, sel, unified))
	}
	return w, nil
}

func buildGroup(topo *topology.Topology, kind Kind, idx int, ranks []int, sel Selection, unified topology.NICType) *Group {
	nic, cross := parallel.GroupNIC(topo, ranks)
	g := &Group{Kind: kind, Index: idx, Ranks: append([]int(nil), ranks...), CrossNode: cross}
	if !cross {
		// Intra-node traffic rides NVLink/PCIe regardless of policy.
		g.NIC = topo.NodeOf(ranks[0]).RDMAType()
		g.Class = netsim.Intra
		return g
	}
	if sel == UnifiedSelection {
		nic = unified
	}
	g.NIC = nic
	if nic.IsRDMA() {
		g.Class = netsim.RDMA
	} else {
		g.Class = netsim.Ether
	}
	return g
}

// unifiedNIC returns the single technology a traditional framework would
// pick for the whole world: the common RDMA type if every node shares one,
// Ethernet otherwise. This is the §3.2 failure mode: "communication
// between the two devices is limited to Ethernet, failing to fully utilize
// high-speed NICs".
func unifiedNIC(topo *topology.Topology) topology.NICType {
	first := topo.Nodes()[0].RDMAType()
	if !first.IsRDMA() {
		return topology.Ethernet
	}
	for _, n := range topo.Nodes()[1:] {
		if n.RDMAType() != first {
			return topology.Ethernet
		}
	}
	return first
}

func sameCluster(topo *topology.Topology, ranks []int) bool {
	for _, r := range ranks[1:] {
		if !topo.SameCluster(ranks[0], r) {
			return false
		}
	}
	return true
}

// M1Boundary implements the paper's cluster numbering convention: clusters
// are ordered so that IB clusters come first; M1 is the count of IB
// clusters, and a DP group selects IB iff its cluster index < M1. It
// verifies the topology obeys the ordering and returns M1.
func M1Boundary(topo *topology.Topology) (int, error) {
	m1 := 0
	seenNonIB := false
	for _, c := range topo.Clusters {
		if c.NICType == topology.InfiniBand {
			if seenNonIB {
				return 0, fmt.Errorf("comm: clusters not ordered IB-first (cluster %d is IB after non-IB)", c.Index)
			}
			m1++
		} else {
			seenNonIB = true
		}
	}
	return m1, nil
}

// Validate checks the §3.2 postconditions of an auto-selected world:
// DP groups on RDMA wherever their cluster provides it, cross-cluster PP
// on Ethernet, TP within nodes.
func (w *World) Validate() error {
	for _, g := range w.TPGroups {
		if g.CrossNode {
			return fmt.Errorf("comm: tensor group %d crosses nodes", g.Index)
		}
	}
	if w.Selection != AutoSelection {
		return nil
	}
	for _, g := range w.DPGroups {
		if !g.CrossNode {
			continue
		}
		clusterNIC := w.Topo.NodeOf(g.Ranks[0]).RDMAType()
		if sameCluster(w.Topo, g.Ranks) && clusterNIC.IsRDMA() && g.NIC != clusterNIC {
			return fmt.Errorf("comm: data group %d in %v cluster got %v", g.Index, clusterNIC, g.NIC)
		}
	}
	for _, g := range w.PPGroups {
		if g.CrossNode && !sameCluster(w.Topo, g.Ranks) && g.NIC != topology.Ethernet {
			return fmt.Errorf("comm: cross-cluster pipeline group %d got %v", g.Index, g.NIC)
		}
	}
	return nil
}
