package comm

import (
	"testing"

	"holmes/internal/netsim"
	"holmes/internal/parallel"
	"holmes/internal/topology"
)

// hybridWorld builds the canonical Holmes configuration: hybrid 8-node
// topology (4 IB + 4 RoCE), t=1, p=2 (one stage per cluster), d=32.
func hybridWorld(t *testing.T, sel Selection) *World {
	t.Helper()
	topo := topology.HybridEnv(8)
	a, err := parallel.New(64, 8, parallel.Degrees{T: 1, P: 2, D: 32})
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildWorld(topo, a, sel)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAutoSelectionPicksPerClusterRDMA(t *testing.T) {
	w := hybridWorld(t, AutoSelection)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	var ib, roce int
	for _, g := range w.DPGroups {
		switch g.NIC {
		case topology.InfiniBand:
			ib++
		case topology.RoCE:
			roce++
		default:
			t.Fatalf("DP group %d selected %v", g.Index, g.NIC)
		}
		if g.Class != netsim.RDMA {
			t.Fatalf("DP group %d class = %v", g.Index, g.Class)
		}
	}
	// p·t = 2 DP groups: stage 0 in the IB cluster, stage 1 in RoCE.
	if ib != 1 || roce != 1 {
		t.Fatalf("DP NICs: %d IB + %d RoCE, want 1+1", ib, roce)
	}
}

func TestPipelineGroupsUseEthernetAcrossClusters(t *testing.T) {
	w := hybridWorld(t, AutoSelection)
	for _, g := range w.PPGroups {
		if g.NIC != topology.Ethernet || g.Class != netsim.Ether {
			t.Fatalf("pipeline group %d got %v/%v, want Ethernet", g.Index, g.NIC, g.Class)
		}
	}
}

func TestUnifiedSelectionCollapsesToEthernet(t *testing.T) {
	w := hybridWorld(t, UnifiedSelection)
	for _, g := range w.DPGroups {
		if !g.CrossNode {
			continue
		}
		if g.NIC != topology.Ethernet {
			t.Fatalf("unified DP group %d got %v, want Ethernet (mixed IB+RoCE world)", g.Index, g.NIC)
		}
	}
}

func TestUnifiedSelectionKeepsRDMAWhenHomogeneous(t *testing.T) {
	topo := topology.IBEnv(4)
	a, err := parallel.New(32, 8, parallel.Degrees{T: 1, P: 2, D: 16})
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildWorld(topo, a, UnifiedSelection)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range w.DPGroups {
		if g.CrossNode && g.NIC != topology.InfiniBand {
			t.Fatalf("homogeneous unified world should use IB, got %v", g.NIC)
		}
	}
}

func TestTensorGroupsStayIntraNode(t *testing.T) {
	topo := topology.HybridEnv(4)
	a, err := parallel.New(32, 8, parallel.Degrees{T: 8, P: 2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildWorld(topo, a, AutoSelection)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range w.TPGroups {
		if g.CrossNode {
			t.Fatalf("tensor group %d crosses nodes: %v", g.Index, g.Ranks)
		}
		if g.Class != netsim.Intra {
			t.Fatalf("tensor group %d class = %v, want Intra", g.Index, g.Class)
		}
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestM1Boundary(t *testing.T) {
	// IB-first ordering: M1 = number of IB clusters.
	topo := topology.MustBuild(topology.Spec{Clusters: []topology.ClusterSpec{
		{NIC: topology.InfiniBand, Nodes: 1},
		{NIC: topology.InfiniBand, Nodes: 1},
		{NIC: topology.RoCE, Nodes: 1},
	}})
	m1, err := M1Boundary(topo)
	if err != nil || m1 != 2 {
		t.Fatalf("M1 = %d err %v, want 2", m1, err)
	}
	// Out-of-order clusters violate the paper's numbering convention.
	bad := topology.MustBuild(topology.Spec{Clusters: []topology.ClusterSpec{
		{NIC: topology.RoCE, Nodes: 1},
		{NIC: topology.InfiniBand, Nodes: 1},
	}})
	if _, err := M1Boundary(bad); err == nil {
		t.Fatal("RoCE-before-IB ordering must be rejected")
	}
}

func TestBuildWorldSizeMismatch(t *testing.T) {
	topo := topology.IBEnv(2)
	a, _ := parallel.New(8, 8, parallel.Degrees{T: 1, P: 2, D: 4})
	if _, err := BuildWorld(topo, a, AutoSelection); err == nil {
		t.Fatal("16-device topology with 8-rank assignment must fail")
	}
}

func TestGroupCountsMatchFormalization(t *testing.T) {
	// §2.4: t·d pipeline groups, p·d tensor groups, p·t data groups.
	topo := topology.HybridEnv(4)
	deg := parallel.Degrees{T: 2, P: 4, D: 4}
	a, err := parallel.New(32, 8, deg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildWorld(topo, a, AutoSelection)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.PPGroups) != deg.T*deg.D {
		t.Fatalf("pipeline groups = %d, want %d", len(w.PPGroups), deg.T*deg.D)
	}
	if len(w.TPGroups) != deg.P*deg.D {
		t.Fatalf("tensor groups = %d, want %d", len(w.TPGroups), deg.P*deg.D)
	}
	if len(w.DPGroups) != deg.P*deg.T {
		t.Fatalf("data groups = %d, want %d", len(w.DPGroups), deg.P*deg.T)
	}
}

func TestKindAndGroupStrings(t *testing.T) {
	if TP.String() != "tensor" || PP.String() != "pipeline" || DP.String() != "data" {
		t.Fatal("kind names wrong")
	}
	g := &Group{Kind: DP, Index: 3, Ranks: []int{1, 2}, NIC: topology.RoCE}
	if got := g.String(); got != "data[3] [1 2] via RoCE" {
		t.Fatalf("Group.String() = %q", got)
	}
}

func TestEthernetOnlyWorld(t *testing.T) {
	topo := topology.EthernetEnv(4)
	a, err := parallel.New(32, 8, parallel.Degrees{T: 1, P: 2, D: 16})
	if err != nil {
		t.Fatal(err)
	}
	w, err := BuildWorld(topo, a, AutoSelection)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range w.DPGroups {
		if g.CrossNode && g.NIC != topology.Ethernet {
			t.Fatalf("ethernet-only world gave %v", g.NIC)
		}
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}
