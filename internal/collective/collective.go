// Package collective implements the communication collectives that
// distributed LLM training is built from — ring all-reduce,
// reduce-scatter, all-gather, broadcast, and point-to-point send/receive —
// in two complementary forms:
//
//   - Analytic α–β cost models (Cost*), used by the Holmes planner to
//     compare candidate schedules quickly. These follow Patarasuk & Yuan's
//     bandwidth-optimal ring analysis cited by the paper.
//   - Discrete-event executions (Run*), which issue real flows on the
//     netsim fabric so that contention between concurrent groups (e.g.
//     many data-parallel rings sharing one NIC) emerges naturally.
//
// The numerically real implementations (moving actual float32 data between
// goroutine ranks) live in internal/runtime; they share the semantics
// tested here.
package collective

import (
	"fmt"
	"sort"

	"holmes/internal/netsim"
	"holmes/internal/sim"
)

// Op identifies a collective operation, mirroring NCCL's vocabulary.
type Op int

const (
	AllReduce Op = iota
	ReduceScatter
	AllGather
	Broadcast
	SendRecv
)

// String names the op as NCCL does.
func (o Op) String() string {
	switch o {
	case AllReduce:
		return "all-reduce"
	case ReduceScatter:
		return "reduce-scatter"
	case AllGather:
		return "all-gather"
	case Broadcast:
		return "broadcast"
	case SendRecv:
		return "send-recv"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ring orders the group's ranks; rank order keeps same-node neighbours
// adjacent so that most ring edges ride NVLink and only node-boundary
// edges touch the NIC, as NCCL's ring construction does.
func ring(ranks []int) []int {
	r := append([]int(nil), ranks...)
	sort.Ints(r)
	return r
}

// validate rejects degenerate groups.
func validate(ranks []int) {
	if len(ranks) == 0 {
		panic("collective: empty group")
	}
	seen := make(map[int]struct{}, len(ranks))
	for _, r := range ranks {
		if _, dup := seen[r]; dup {
			panic(fmt.Sprintf("collective: duplicate rank %d in group", r))
		}
		seen[r] = struct{}{}
	}
}

// maxEdge returns the slowest hop time for moving chunk bytes between
// consecutive ring members.
func maxEdge(fab *netsim.Fabric, r []int, chunk float64, class netsim.Class) float64 {
	worst := 0.0
	for i := range r {
		src, dst := r[i], r[(i+1)%len(r)]
		if t := fab.TransferTime(src, dst, chunk, class); t > worst {
			worst = t
		}
	}
	return worst
}

// CostAllReduce estimates a ring all-reduce of the given payload: 2(n−1)
// steps each moving bytes/n per rank; every step is gated by the slowest
// edge of the ring.
func CostAllReduce(fab *netsim.Fabric, ranks []int, bytes float64, class netsim.Class) float64 {
	validate(ranks)
	n := len(ranks)
	if n == 1 {
		return 0
	}
	r := ring(ranks)
	chunk := bytes / float64(n)
	return float64(2*(n-1)) * maxEdge(fab, r, chunk, class)
}

// CostReduceScatter estimates the reduce-scatter half of the ring: (n−1)
// steps of bytes/n. This is the paper's "grads-reduce-scatter" operation
// (Figure 4).
func CostReduceScatter(fab *netsim.Fabric, ranks []int, bytes float64, class netsim.Class) float64 {
	validate(ranks)
	n := len(ranks)
	if n == 1 {
		return 0
	}
	r := ring(ranks)
	chunk := bytes / float64(n)
	return float64(n-1) * maxEdge(fab, r, chunk, class)
}

// CostAllGather estimates the all-gather half of the ring: (n−1) steps of
// bytes/n.
func CostAllGather(fab *netsim.Fabric, ranks []int, bytes float64, class netsim.Class) float64 {
	return CostReduceScatter(fab, ranks, bytes, class) // identical step structure
}

// CostBroadcast estimates a pipelined ring broadcast from the first rank:
// the payload is cut into segments that stream around the ring, so for
// large payloads the cost approaches one traversal of the slowest edge.
func CostBroadcast(fab *netsim.Fabric, ranks []int, bytes float64, class netsim.Class) float64 {
	validate(ranks)
	n := len(ranks)
	if n == 1 {
		return 0
	}
	r := ring(ranks)
	const segments = 8
	seg := bytes / segments
	edge := maxEdge(fab, r, seg, class)
	// Pipeline fill (n-1 hops) plus draining the remaining segments.
	return float64(n-1)*edge + float64(segments-1)*edge
}

// CostSendRecv estimates a point-to-point transfer (pipeline parallelism's
// activation/gradient exchange).
func CostSendRecv(fab *netsim.Fabric, src, dst int, bytes float64, class netsim.Class) float64 {
	return fab.TransferTime(src, dst, bytes, class)
}

// Cost dispatches on op. For SendRecv the group must hold exactly the
// {src, dst} pair in order.
func Cost(fab *netsim.Fabric, op Op, ranks []int, bytes float64, class netsim.Class) float64 {
	switch op {
	case AllReduce:
		return CostAllReduce(fab, ranks, bytes, class)
	case ReduceScatter:
		return CostReduceScatter(fab, ranks, bytes, class)
	case AllGather:
		return CostAllGather(fab, ranks, bytes, class)
	case Broadcast:
		return CostBroadcast(fab, ranks, bytes, class)
	case SendRecv:
		if len(ranks) != 2 {
			panic("collective: SendRecv needs exactly two ranks")
		}
		return CostSendRecv(fab, ranks[0], ranks[1], bytes, class)
	default:
		panic(fmt.Sprintf("collective: unknown op %v", op))
	}
}

// RunRing executes `steps` ring rounds on the fabric, each rank sending
// chunk bytes to its successor, and invokes onDone when the final round
// completes. It is the DES building block for RunAllReduce and friends.
func RunRing(eng *sim.Engine, fab *netsim.Fabric, ranks []int, steps int, chunk float64, class netsim.Class, onDone func()) {
	validate(ranks)
	r := ring(ranks)
	n := len(r)
	if n == 1 || steps == 0 {
		eng.After(0, onDone)
		return
	}
	var round func(s int)
	round = func(s int) {
		if s == steps {
			onDone()
			return
		}
		var wg sim.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			src, dst := r[i], r[(i+1)%n]
			fab.StartFlow(src, dst, chunk, class, wg.Done)
		}
		wg.OnZero(func() { round(s + 1) })
	}
	round(0)
}

// RunAllReduce executes a ring all-reduce as 2(n−1) DES rounds.
func RunAllReduce(eng *sim.Engine, fab *netsim.Fabric, ranks []int, bytes float64, class netsim.Class, onDone func()) {
	n := len(ranks)
	chunk := 0.0
	if n > 0 {
		chunk = bytes / float64(n)
	}
	RunRing(eng, fab, ranks, 2*(n-1), chunk, class, onDone)
}

// RunReduceScatter executes the reduce-scatter half: (n−1) rounds.
func RunReduceScatter(eng *sim.Engine, fab *netsim.Fabric, ranks []int, bytes float64, class netsim.Class, onDone func()) {
	n := len(ranks)
	chunk := 0.0
	if n > 0 {
		chunk = bytes / float64(n)
	}
	RunRing(eng, fab, ranks, n-1, chunk, class, onDone)
}

// RunAllGather executes the all-gather half: (n−1) rounds.
func RunAllGather(eng *sim.Engine, fab *netsim.Fabric, ranks []int, bytes float64, class netsim.Class, onDone func()) {
	RunReduceScatter(eng, fab, ranks, bytes, class, onDone)
}

// RunSendRecv executes one point-to-point transfer.
func RunSendRecv(eng *sim.Engine, fab *netsim.Fabric, src, dst int, bytes float64, class netsim.Class, onDone func()) {
	fab.StartFlow(src, dst, bytes, class, onDone)
}
