package collective

import (
	"math"
	"testing"

	"holmes/internal/netsim"
	"holmes/internal/sim"
	"holmes/internal/topology"
)

func TestFluidMatchesSteppedLoneAllReduce(t *testing.T) {
	// With no competing traffic, the fluid all-reduce and the stepped
	// all-reduce should agree closely: the fluid model removes only the
	// per-round latency barriers.
	topo := topology.IBEnv(4)
	g := groupOfNodeLeads(topo, 4)
	bytes := 2e9

	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	var stepped sim.Time
	RunAllReduce(eng, fab, g, bytes, netsim.RDMA, func() { stepped = eng.Now() })
	eng.Run()

	eng.Reset()
	fab = netsim.New(eng, topo, netsim.DefaultParams())
	var fluid sim.Time
	RunAllReduceFluid(eng, fab, g, bytes, netsim.RDMA, func() { fluid = eng.Now() })
	eng.Run()

	if math.Abs(fluid-stepped)/stepped > 0.05 {
		t.Fatalf("fluid %v vs stepped %v diverge beyond 5%%", fluid, stepped)
	}
	if fluid > stepped {
		t.Fatalf("fluid (%v) must not exceed stepped (%v): it only removes barriers", fluid, stepped)
	}
}

func TestFluidReduceScatterHalfOfAllReduce(t *testing.T) {
	topo := topology.RoCEEnv(4)
	g := groupOfNodeLeads(topo, 4)
	run := func(f func(*sim.Engine, *netsim.Fabric, []int, float64, netsim.Class, func())) sim.Time {
		eng := sim.NewEngine()
		fab := netsim.New(eng, topo, netsim.DefaultParams())
		var end sim.Time
		f(eng, fab, g, 1e9, netsim.RDMA, func() { end = eng.Now() })
		eng.Run()
		return end
	}
	rs := run(RunReduceScatterFluid)
	ar := run(RunAllReduceFluid)
	ag := run(RunAllGatherFluid)
	if math.Abs(rs/ar-0.5) > 0.02 {
		t.Fatalf("fluid RS/AR = %v, want ~0.5", rs/ar)
	}
	if rs != ag {
		t.Fatalf("fluid RS (%v) and AG (%v) must match", rs, ag)
	}
}

func TestFluidSingletonAndZeroComplete(t *testing.T) {
	topo := topology.IBEnv(1)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	calls := 0
	RunAllReduceFluid(eng, fab, []int{2}, 1e9, netsim.RDMA, func() { calls++ })
	RunRingFluid(eng, fab, []int{0, 1}, 0, netsim.Intra, func() { calls++ })
	eng.Run()
	if calls != 2 {
		t.Fatalf("degenerate fluid collectives completed %d/2", calls)
	}
}

func TestFluidRingsShareFairly(t *testing.T) {
	// Two fluid all-reduces over the same two nodes take ~2x one.
	topo := topology.IBEnv(2)
	one := func() sim.Time {
		eng := sim.NewEngine()
		fab := netsim.New(eng, topo, netsim.DefaultParams())
		var end sim.Time
		RunAllReduceFluid(eng, fab, []int{0, 8}, 1e9, netsim.RDMA, func() { end = eng.Now() })
		eng.Run()
		return end
	}()
	both := func() sim.Time {
		eng := sim.NewEngine()
		fab := netsim.New(eng, topo, netsim.DefaultParams())
		var wg sim.WaitGroup
		wg.Add(2)
		var end sim.Time
		RunAllReduceFluid(eng, fab, []int{0, 8}, 1e9, netsim.RDMA, wg.Done)
		RunAllReduceFluid(eng, fab, []int{1, 9}, 1e9, netsim.RDMA, wg.Done)
		wg.OnZero(func() { end = eng.Now() })
		eng.Run()
		return end
	}()
	if ratio := both / one; math.Abs(ratio-2) > 0.1 {
		t.Fatalf("two fluid rings / one = %v, want ~2", ratio)
	}
}

func TestFluidCrossClusterRidesEthernet(t *testing.T) {
	topo := topology.HybridEnv(4)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	// Group spans clusters: the cluster-crossing edges run at Ethernet
	// speed and dominate.
	var end sim.Time
	RunAllReduceFluid(eng, fab, []int{0, 8, 16, 24}, 1e9, netsim.RDMA, func() { end = eng.Now() })
	eng.Run()
	ethBW := fab.PairBandwidth(8, 16, netsim.Ether)
	minTime := (2.0 * 3 / 4 * 1e9) / ethBW
	if end < minTime {
		t.Fatalf("cross-cluster fluid ring %v beat the Ethernet bound %v", end, minTime)
	}
}
