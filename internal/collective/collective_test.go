package collective

import (
	"math"
	"testing"

	"holmes/internal/netsim"
	"holmes/internal/sim"
	"holmes/internal/topology"
)

func fabric(topo *topology.Topology) (*sim.Engine, *netsim.Fabric) {
	eng := sim.NewEngine()
	return eng, netsim.New(eng, topo, netsim.DefaultParams())
}

func groupOfNodeLeads(topo *topology.Topology, nodes int) []int {
	var ranks []int
	for i := 0; i < nodes; i++ {
		ranks = append(ranks, topo.Node(i).Devices[0].Rank)
	}
	return ranks
}

func TestCostAllReduceSingletonIsFree(t *testing.T) {
	_, fab := fabric(topology.IBEnv(1))
	if got := CostAllReduce(fab, []int{3}, 1e9, netsim.RDMA); got != 0 {
		t.Fatalf("singleton all-reduce = %v", got)
	}
}

func TestCostAllReduceIsTwiceReduceScatter(t *testing.T) {
	topo := topology.IBEnv(4)
	_, fab := fabric(topo)
	g := groupOfNodeLeads(topo, 4)
	ar := CostAllReduce(fab, g, 1e9, netsim.RDMA)
	rs := CostReduceScatter(fab, g, 1e9, netsim.RDMA)
	ag := CostAllGather(fab, g, 1e9, netsim.RDMA)
	if math.Abs(ar-(rs+ag)) > 1e-12 {
		t.Fatalf("all-reduce %v != reduce-scatter %v + all-gather %v", ar, rs, ag)
	}
}

func TestCostOrderingAcrossNICs(t *testing.T) {
	bytes := 2e9
	group := func(topo *topology.Topology) []int { return groupOfNodeLeads(topo, 4) }

	_, fabIB := fabric(topology.IBEnv(4))
	_, fabRo := fabric(topology.RoCEEnv(4))
	_, fabEth := fabric(topology.EthernetEnv(4))

	ib := CostAllReduce(fabIB, group(fabIB.Topo), bytes, netsim.RDMA)
	ro := CostAllReduce(fabRo, group(fabRo.Topo), bytes, netsim.RDMA)
	eth := CostAllReduce(fabEth, group(fabEth.Topo), bytes, netsim.RDMA)
	if !(ib < ro && ro < eth) {
		t.Fatalf("cost ordering violated: ib=%v roce=%v eth=%v", ib, ro, eth)
	}
}

func TestCrossClusterGroupPaysEthernet(t *testing.T) {
	topo := topology.HybridEnv(4)
	_, fab := fabric(topo)
	// A group spanning both clusters degrades its slowest edges to Ethernet.
	span := []int{0, 8, 16, 24} // 2 IB nodes + 2 RoCE nodes
	within := []int{0, 8}       // IB only
	spanCost := CostAllReduce(fab, span, 1e9, netsim.RDMA)
	withinCost := CostAllReduce(fab, within, 1e9, netsim.RDMA)
	if spanCost < 10*withinCost {
		t.Fatalf("cross-cluster all-reduce %v should dwarf intra-IB %v", spanCost, withinCost)
	}
}

func TestRunMatchesCostForLoneCollective(t *testing.T) {
	topo := topology.IBEnv(4)
	eng, fab := fabric(topo)
	g := groupOfNodeLeads(topo, 4)
	bytes := 8e8
	var done sim.Time = -1
	RunAllReduce(eng, fab, g, bytes, netsim.RDMA, func() { done = eng.Now() })
	eng.Run()
	want := CostAllReduce(fab, g, bytes, netsim.RDMA)
	// The DES pays per-round latency via flow admission; allow small slack.
	if done < want*0.99 || done > want*1.2 {
		t.Fatalf("DES all-reduce %v vs analytic %v", done, want)
	}
}

func TestRunReduceScatterShorterThanAllReduce(t *testing.T) {
	topo := topology.RoCEEnv(4)
	eng, fab := fabric(topo)
	g := groupOfNodeLeads(topo, 4)
	var rsT, arT sim.Time
	RunReduceScatter(eng, fab, g, 1e9, netsim.RDMA, func() { rsT = eng.Now() })
	eng.Run()
	eng.Reset()
	fab2 := netsim.New(eng, topo, netsim.DefaultParams())
	RunAllReduce(eng, fab2, g, 1e9, netsim.RDMA, func() { arT = eng.Now() })
	eng.Run()
	if rsT >= arT {
		t.Fatalf("reduce-scatter %v must be faster than all-reduce %v", rsT, arT)
	}
	if ratio := rsT / arT; math.Abs(ratio-0.5) > 0.1 {
		t.Fatalf("reduce-scatter/all-reduce ratio %v, want ~0.5", ratio)
	}
}

func TestConcurrentRingsContend(t *testing.T) {
	// Two all-reduces over the same nodes take about twice as long as one:
	// they share the per-node NIC links.
	topo := topology.IBEnv(2)
	eng, fab := fabric(topo)
	g1 := []int{0, 8}
	g2 := []int{1, 9}
	bytes := 1e9
	var lone sim.Time
	RunAllReduce(eng, fab, g1, bytes, netsim.RDMA, func() { lone = eng.Now() })
	eng.Run()

	eng.Reset()
	fab = netsim.New(eng, topo, netsim.DefaultParams())
	var wg sim.WaitGroup
	wg.Add(2)
	var both sim.Time
	done := func() { wg.Done() }
	RunAllReduce(eng, fab, g1, bytes, netsim.RDMA, done)
	RunAllReduce(eng, fab, g2, bytes, netsim.RDMA, done)
	wg.OnZero(func() { both = eng.Now() })
	eng.Run()

	if both < lone*1.8 || both > lone*2.3 {
		t.Fatalf("two concurrent rings took %v, lone ring %v (want ~2x)", both, lone)
	}
}

func TestBroadcastCheaperThanAllReduce(t *testing.T) {
	topo := topology.IBEnv(4)
	_, fab := fabric(topo)
	g := groupOfNodeLeads(topo, 4)
	bc := CostBroadcast(fab, g, 1e9, netsim.RDMA)
	ar := CostAllReduce(fab, g, 1e9, netsim.RDMA)
	if bc >= ar {
		t.Fatalf("broadcast %v should beat all-reduce %v", bc, ar)
	}
}

func TestSendRecvCost(t *testing.T) {
	topo := topology.HybridEnv(4)
	_, fab := fabric(topo)
	// Cross-cluster P2P is the pipeline-parallel pattern; it must run at
	// Ethernet speed.
	got := CostSendRecv(fab, 0, 16, 1e8, netsim.Ether)
	ethBW := fab.PairBandwidth(0, 16, netsim.Ether)
	want := fab.Latency(0, 16, netsim.Ether) + 1e8/ethBW
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("p2p cost = %v, want %v", got, want)
	}
}

func TestCostDispatch(t *testing.T) {
	topo := topology.IBEnv(2)
	_, fab := fabric(topo)
	g := []int{0, 8}
	for _, op := range []Op{AllReduce, ReduceScatter, AllGather, Broadcast} {
		if c := Cost(fab, op, g, 1e6, netsim.RDMA); c <= 0 {
			t.Fatalf("%v cost = %v", op, c)
		}
	}
	if c := Cost(fab, SendRecv, g, 1e6, netsim.Ether); c <= 0 {
		t.Fatal("send-recv cost must be positive")
	}
}

func TestValidationPanics(t *testing.T) {
	topo := topology.IBEnv(1)
	_, fab := fabric(topo)
	for name, fn := range map[string]func(){
		"empty":     func() { CostAllReduce(fab, nil, 1, netsim.RDMA) },
		"duplicate": func() { CostAllReduce(fab, []int{1, 1}, 1, netsim.RDMA) },
		"sendrecv":  func() { Cost(fab, SendRecv, []int{0, 1, 2}, 1, netsim.Ether) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s group did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		AllReduce:     "all-reduce",
		ReduceScatter: "reduce-scatter",
		AllGather:     "all-gather",
		Broadcast:     "broadcast",
		SendRecv:      "send-recv",
	}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(op), op.String(), s)
		}
	}
}

func TestRingKeepsNodeNeighborsAdjacent(t *testing.T) {
	// An unsorted group must still form a rank-ordered ring so intra-node
	// pairs ride NVLink: cost with shuffled input equals cost with sorted
	// input.
	topo := topology.IBEnv(2)
	_, fab := fabric(topo)
	sorted := []int{0, 1, 8, 9}
	shuffled := []int{9, 0, 8, 1}
	a := CostAllReduce(fab, sorted, 1e9, netsim.RDMA)
	b := CostAllReduce(fab, shuffled, 1e9, netsim.RDMA)
	if a != b {
		t.Fatalf("ring must canonicalize order: %v vs %v", a, b)
	}
}
