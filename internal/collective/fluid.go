package collective

import (
	"holmes/internal/netsim"
	"holmes/internal/sim"
)

// Fluid collective execution.
//
// The stepped Run* functions model every ring round as a synchronized
// barrier of flows — faithful, but O(n·rounds) flows per collective, which
// is too heavy inside a full training-iteration simulation where dozens of
// collectives overlap a pipeline schedule. The fluid variants collapse a
// ring collective into one flow per directed ring edge carrying the
// edge's *total* traffic for the whole operation. Under max-min sharing
// this matches the fluid limit of a ring (whose progress is continuously
// governed by its slowest edge) while exposing exactly the same aggregate
// load to competing traffic on shared NICs.

// RunRingFluid places one flow of perEdgeBytes on every directed ring edge
// and fires onDone when the slowest completes.
func RunRingFluid(eng *sim.Engine, fab *netsim.Fabric, ranks []int, perEdgeBytes float64, class netsim.Class, onDone func()) {
	validate(ranks)
	r := ring(ranks)
	n := len(r)
	if n == 1 || perEdgeBytes <= 0 {
		eng.After(0, onDone)
		return
	}
	var wg sim.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		src, dst := r[i], r[(i+1)%n]
		fab.StartFlow(src, dst, perEdgeBytes, class, wg.Done)
	}
	wg.OnZero(onDone)
}

// RunAllReduceFluid executes a ring all-reduce of a `bytes` payload: each
// edge carries 2(n−1)/n · bytes in total.
func RunAllReduceFluid(eng *sim.Engine, fab *netsim.Fabric, ranks []int, bytes float64, class netsim.Class, onDone func()) {
	n := len(ranks)
	per := 0.0
	if n > 1 {
		per = 2 * float64(n-1) / float64(n) * bytes
	}
	RunRingFluid(eng, fab, ranks, per, class, onDone)
}

// RunReduceScatterFluid executes the reduce-scatter half: (n−1)/n · bytes
// per edge.
func RunReduceScatterFluid(eng *sim.Engine, fab *netsim.Fabric, ranks []int, bytes float64, class netsim.Class, onDone func()) {
	n := len(ranks)
	per := 0.0
	if n > 1 {
		per = float64(n-1) / float64(n) * bytes
	}
	RunRingFluid(eng, fab, ranks, per, class, onDone)
}

// RunAllGatherFluid executes the all-gather half; identical edge traffic
// to reduce-scatter.
func RunAllGatherFluid(eng *sim.Engine, fab *netsim.Fabric, ranks []int, bytes float64, class netsim.Class, onDone func()) {
	RunReduceScatterFluid(eng, fab, ranks, bytes, class, onDone)
}
