package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorArithmetic(t *testing.T) {
	v := Vector{1, 2, 3}
	o := Vector{4, 5, 6}
	v.Add(o)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add: %v", v)
	}
	v.Sub(o)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Sub: %v", v)
	}
	v.Scale(2)
	if v[0] != 2 || v[2] != 6 {
		t.Fatalf("Scale: %v", v)
	}
	v.Axpy(0.5, o)
	if v[0] != 4 || v[1] != 6.5 || v[2] != 9 {
		t.Fatalf("Axpy: %v", v)
	}
	v.Zero()
	if v.Norm2() != 0 {
		t.Fatalf("Zero: %v", v)
	}
}

func TestDotAndNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(v); got != 25 {
		t.Fatalf("Dot = %v", got)
	}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestChunkConcatRoundTrip(t *testing.T) {
	f := func(data []float32, nRaw uint8) bool {
		n := int(nRaw%7) + 1
		v := Vector(data)
		parts := v.Chunk(n)
		if len(parts) != n {
			return false
		}
		// Sizes differ by at most one and decrease monotonically.
		for i := 1; i < n; i++ {
			if len(parts[i]) > len(parts[i-1]) {
				return false
			}
			if len(parts[i-1])-len(parts[i]) > 1 {
				return false
			}
		}
		back := Concat(parts)
		return back.AllClose(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkSharesStorage(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	parts := v.Chunk(2)
	parts[0][0] = 42
	if v[0] != 42 {
		t.Fatal("chunks must alias the parent storage")
	}
}

func TestChunkZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Chunk(0) did not panic")
		}
	}()
	Vector{1}.Chunk(0)
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [[1 2 3],[4 5 6]]
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float32(i*3+j+1))
		}
	}
	y := m.MulVec(Vector{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	yt := m.MulVecT(Vector{1, 1})
	if yt[0] != 5 || yt[1] != 7 || yt[2] != 9 {
		t.Fatalf("MulVecT = %v", yt)
	}
}

// Property: (Mᵀu)·v == u·(Mv) — transpose adjoint identity.
func TestTransposeAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		r, c := rng.Intn(8)+1, rng.Intn(8)+1
		m := RandnMatrix(rng, r, c, 1)
		u := Randn(rng, r, 1)
		v := Randn(rng, c, 1)
		lhs := m.MulVecT(u).Dot(v)
		rhs := u.Dot(m.MulVec(v))
		if math.Abs(lhs-rhs) > 1e-3*(1+math.Abs(lhs)) {
			t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestAddOuterIsLinearGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatrix(3, 2)
	x := Randn(rng, 3, 1)
	y := Randn(rng, 2, 1)
	m.AddOuter(2, x, y)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			want := 2 * x[i] * y[j]
			if math.Abs(float64(m.At(i, j)-want)) > 1e-6 {
				t.Fatalf("AddOuter[%d,%d] = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone must not alias")
	}
	m := NewMatrix(1, 2)
	mc := m.Clone()
	mc.Set(0, 0, 5)
	if m.At(0, 0) != 0 {
		t.Fatal("Matrix Clone must not alias")
	}
}

func TestMeanAndMaxAbsDiff(t *testing.T) {
	v := Vector{1, 2, 3}
	if v.Mean() != 2 {
		t.Fatalf("Mean = %v", v.Mean())
	}
	if (Vector{}).Mean() != 0 {
		t.Fatal("empty Mean must be 0")
	}
	o := Vector{1, 5, 3}
	if d := v.MaxAbsDiff(o); d != 3 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if !v.AllClose(v, 0) || v.AllClose(o, 1) {
		t.Fatal("AllClose wrong")
	}
}
