// Package tensor provides the minimal dense float32 vector/matrix
// operations the real (goroutine-based) executor needs: enough to run
// small models, compute gradients, and verify that distributed training
// schedules produce numerically correct results. It deliberately avoids
// cleverness — correctness and clarity over speed.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense float32 vector.
type Vector []float32

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Randn fills a new length-n vector with N(0, std²) samples from rng.
func Randn(rng *rand.Rand, n int, std float64) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = float32(rng.NormFloat64() * std)
	}
	return v
}

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	c := NewVector(len(v))
	copy(c, v)
	return c
}

// Zero sets every element to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Add accumulates o into v element-wise. Lengths must match.
func (v Vector) Add(o Vector) {
	checkLen(len(v), len(o))
	for i := range v {
		v[i] += o[i]
	}
}

// Sub subtracts o from v element-wise.
func (v Vector) Sub(o Vector) {
	checkLen(len(v), len(o))
	for i := range v {
		v[i] -= o[i]
	}
}

// Scale multiplies every element by s.
func (v Vector) Scale(s float32) {
	for i := range v {
		v[i] *= s
	}
}

// Axpy computes v += a*x.
func (v Vector) Axpy(a float32, x Vector) {
	checkLen(len(v), len(x))
	for i := range v {
		v[i] += a * x[i]
	}
}

// Dot returns the inner product of v and o in float64 for stability.
func (v Vector) Dot(o Vector) float64 {
	checkLen(len(v), len(o))
	var s float64
	for i := range v {
		s += float64(v[i]) * float64(o[i])
	}
	return s
}

// Norm2 returns the Euclidean norm.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// MaxAbsDiff returns max_i |v_i - o_i|.
func (v Vector) MaxAbsDiff(o Vector) float64 {
	checkLen(len(v), len(o))
	var m float64
	for i := range v {
		d := math.Abs(float64(v[i]) - float64(o[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether every element pair differs by at most tol.
func (v Vector) AllClose(o Vector, tol float64) bool {
	return len(v) == len(o) && v.MaxAbsDiff(o) <= tol
}

// Chunk splits v into n nearly equal contiguous pieces (the first
// len(v)%n pieces get one extra element), sharing the underlying storage.
// This is the shard layout used by reduce-scatter/all-gather.
func (v Vector) Chunk(n int) []Vector {
	if n <= 0 {
		panic(fmt.Sprintf("tensor: chunk count %d", n))
	}
	base, extra := len(v)/n, len(v)%n
	out := make([]Vector, n)
	off := 0
	for i := 0; i < n; i++ {
		sz := base
		if i < extra {
			sz++
		}
		out[i] = v[off : off+sz]
		off += sz
	}
	return out
}

// Concat joins vectors into one new vector.
func Concat(parts []Vector) Vector {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := NewVector(total)
	off := 0
	for _, p := range parts {
		copy(out[off:], p)
		off += len(p)
	}
	return out
}

// Mean returns the arithmetic mean of the elements (0 for empty).
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return s / float64(len(v))
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", a, b))
	}
}

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       Vector
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	return &Matrix{Rows: r, Cols: c, Data: NewVector(r * c)}
}

// RandnMatrix returns an r×c matrix with N(0, std²) entries.
func RandnMatrix(rng *rand.Rand, r, c int, std float64) *Matrix {
	return &Matrix{Rows: r, Cols: c, Data: Randn(rng, r*c, std)}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float32) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a view.
func (m *Matrix) Row(i int) Vector { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes y = M·x.
func (m *Matrix) MulVec(x Vector) Vector {
	checkLen(m.Cols, len(x))
	y := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, w := range row {
			s += float64(w) * float64(x[j])
		}
		y[i] = float32(s)
	}
	return y
}

// MulVecT computes y = Mᵀ·x.
func (m *Matrix) MulVecT(x Vector) Vector {
	checkLen(m.Rows, len(x))
	y := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		for j, w := range row {
			y[j] += xi * w
		}
	}
	return y
}

// AddOuter accumulates M += a · x·yᵀ (gradient of a linear layer).
func (m *Matrix) AddOuter(a float32, x, y Vector) {
	checkLen(m.Rows, len(x))
	checkLen(m.Cols, len(y))
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		ax := a * x[i]
		for j := range row {
			row[j] += ax * y[j]
		}
	}
}
