package loadgen

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServer answers the four endpoints with canned responses so the
// generator's accounting can be tested without the real planner: /v1/plan
// alternates 200 and 429, /v1/search 200, /v1/simulate 500, and the batch
// endpoint reports 16 items with 2 failures.
func fakeServer(t *testing.T) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	var planHits atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", func(w http.ResponseWriter, r *http.Request) {
		if planHits.Add(1)%4 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"saturated"}`))
			return
		}
		w.Write([]byte(`{"degrees":{"tensor":1,"pipeline":2,"data":16}}`))
	})
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"winner":{}}`))
	})
	mux.HandleFunc("/v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	mux.HandleFunc("/v1/plan/batch", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"count":16,"errors":2,"results":[]}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &planHits
}

func TestRunAccounting(t *testing.T) {
	srv, _ := fakeServer(t)
	res, err := Run(Options{
		BaseURL:  srv.URL,
		Workers:  4,
		Duration: 300 * time.Millisecond,
		Mix:      Mix{Plan: 2, Search: 1, Simulate: 1, Batch: 1},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if res.Requests != res.OK+res.Rejected+res.Errors {
		t.Fatalf("partition broken: %d != %d+%d+%d", res.Requests, res.OK, res.Rejected, res.Errors)
	}
	// The fake simulate endpoint always fails: errors must be counted and
	// the first one captured.
	if res.ByKind["simulate"] > 0 && (res.Errors == 0 || res.FirstError == "") {
		t.Fatalf("simulate failures not accounted: %+v", res)
	}
	// Every 4th plan answers 429: rejected must be nonzero given enough
	// plan traffic, and never counted as an error.
	if res.ByKind["plan"] >= 8 && res.Rejected == 0 {
		t.Fatalf("backpressure not accounted: %+v", res)
	}
	if res.RequestsPerSec <= 0 || res.ElapsedSeconds <= 0 {
		t.Fatalf("rates not populated: %+v", res)
	}
	if res.Latency.Count != res.Requests {
		// Transport errors skip the histogram; the fake server never
		// fails transport, so the counts must line up.
		t.Fatalf("latency samples %d != requests %d", res.Latency.Count, res.Requests)
	}
	// Batch successes contribute count-errors plan answers each.
	if res.ByKind["batch"] > 0 && res.PlanAnswersPerSec == 0 {
		t.Fatalf("batch plan answers not accounted: %+v", res)
	}
	// The report must be JSON-serializable as the CLI emits it.
	if _, err := json.MarshalIndent(res, "", "  "); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterministicCorpus(t *testing.T) {
	plans := PlanBodies()
	if len(plans) != 48 {
		t.Fatalf("plan corpus %d bodies, want 48 (Table-3 grid)", len(plans))
	}
	seen := map[string]bool{}
	for _, b := range plans {
		if seen[b] {
			t.Fatalf("duplicate plan body: %s", b)
		}
		seen[b] = true
		if !strings.Contains(b, `"tensor_size":1`) {
			t.Fatalf("plan body without degrees: %s", b)
		}
	}
	if got := len(SearchBodies()); got != 4 {
		t.Fatalf("search corpus %d bodies, want 4", got)
	}
	for _, b := range SimulateBodies() {
		if !strings.Contains(b, `"scenario"`) {
			t.Fatalf("simulate body without scenario: %s", b)
		}
	}
	// Batch bodies are valid envelopes with distinct items.
	var env struct {
		Items []struct {
			Op     string          `json:"op"`
			Config json.RawMessage `json:"config"`
		} `json:"items"`
	}
	body := BatchBody(16, 3)
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("batch body not JSON: %v", err)
	}
	if len(env.Items) != 16 {
		t.Fatalf("batch body %d items, want 16", len(env.Items))
	}
	itemSeen := map[string]bool{}
	for _, it := range env.Items {
		if it.Op != "plan" || itemSeen[string(it.Config)] {
			t.Fatalf("batch items not distinct plans: %s", body)
		}
		itemSeen[string(it.Config)] = true
	}
	// Offsets rotate the corpus.
	if BatchBody(16, 0) == BatchBody(16, 1) {
		t.Fatal("batch offset has no effect")
	}
}

func TestRunOptionValidation(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := Run(Options{BaseURL: "http://127.0.0.1:1", Mix: Mix{Plan: -1, Search: -2, Simulate: -3, Batch: -4}}); err == nil {
		// All-negative weights normalize to... nothing; must refuse
		// rather than spin forever.
		t.Fatal("empty mix accepted")
	}
}
