// Package loadgen is the closed-loop load generator behind
// cmd/holmes-loadgen and the API soak tests: a fixed set of workers
// fires planning traffic at a holmes-serve instance as fast as the
// server answers (closed loop — each worker has at most one request in
// flight), measuring client-side latency and classifying every response.
//
// The request corpus is the paper's own workload: every Table-3 cell
// (parameter group × environment × node count) as a /v1/plan body, the
// four environments as /v1/search bodies, scenario-carrying /v1/simulate
// bodies, and /v1/plan/batch envelopes built from distinct plan cells.
// Backpressure (429) is counted separately from errors: a load test that
// treats shed load as failure cannot distinguish an overloaded server
// from a broken one.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"holmes/internal/experiments"
	"holmes/internal/metrics"
)

// Mix weights the request kinds; zero values fall back to the default
// plan-heavy mix (plan 8 : search 1 : simulate 2 : batch 1).
type Mix struct {
	Plan     int `json:"plan"`
	Search   int `json:"search"`
	Simulate int `json:"simulate"`
	Batch    int `json:"batch"`
}

func (m Mix) normalized() Mix {
	if m == (Mix{}) {
		return Mix{Plan: 8, Search: 1, Simulate: 2, Batch: 1}
	}
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		return v
	}
	return Mix{Plan: clamp(m.Plan), Search: clamp(m.Search), Simulate: clamp(m.Simulate), Batch: clamp(m.Batch)}
}

// Options configures one load-generation run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the closed-loop client count (0 = 16).
	Workers int
	// Duration bounds the run's wall clock (0 = 10s).
	Duration time.Duration
	// Mix weights the request kinds.
	Mix Mix
	// BatchSize is the item count of each /v1/plan/batch request
	// (0 = 16, clamped to the distinct plan-cell corpus).
	BatchSize int
	// Seed makes the per-worker request sequences reproducible (0 = 1).
	Seed int64
	// Client overrides the HTTP client (nil = a default with generous
	// connection reuse for Workers connections).
	Client *http.Client
}

// Result is the JSON report of a run.
type Result struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Workers        int     `json:"workers"`
	// Requests counts completed HTTP round trips; OK / Rejected / Errors
	// partition them (transport failures land in Errors).
	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	// Rejected counts 429 backpressure answers — load shed by design.
	Rejected uint64 `json:"rejected"`
	// Errors counts everything else: non-2xx non-429 statuses and
	// transport failures. A healthy run reports zero.
	Errors     uint64            `json:"errors"`
	FirstError string            `json:"first_error,omitempty"`
	ByKind     map[string]uint64 `json:"by_kind"`
	// RequestsPerSec is completed round trips per second.
	RequestsPerSec float64 `json:"requests_per_sec"`
	// PlanAnswersPerSec counts successful plan answers per second —
	// /v1/plan responses plus per-item successes of batch requests (the
	// acceptance metric: a batch of 16 is 16 plan answers, not 1).
	PlanAnswersPerSec float64 `json:"plan_answers_per_sec"`
	// Latency is the client-observed per-request latency histogram.
	Latency metrics.HistogramSnapshot `json:"latency_ms"`
}

// PlanBodies returns the Table-3 request corpus: one /v1/plan body per
// (parameter group, environment, node count) cell, t=1 and the paper's
// pipeline degree. The Table-1 cells are the group-1, 4-node subset.
func PlanBodies() []string {
	var bodies []string
	for group := 1; group <= 4; group++ {
		for _, env := range []string{"InfiniBand", "RoCE", "Ethernet", "Hybrid"} {
			for _, nodes := range []int{4, 6, 8} {
				p := experiments.PipelineSize(group, nodes)
				bodies = append(bodies, fmt.Sprintf(
					`{"env":%q,"nodes":%d,"model":{"group":%d},"tensor_size":1,"pipeline_size":%d}`,
					env, nodes, group, p))
			}
		}
	}
	return bodies
}

// SearchBodies returns the /v1/search corpus: the four environments at 4
// nodes, group 1 (search fans out internally, so a few distinct bodies
// already keep every shard busy).
func SearchBodies() []string {
	var bodies []string
	for _, env := range []string{"InfiniBand", "RoCE", "Ethernet", "Hybrid"} {
		bodies = append(bodies, fmt.Sprintf(`{"env":%q,"nodes":4,"model":{"group":1}}`, env))
	}
	return bodies
}

// SimulateBodies returns the /v1/simulate corpus: group-1 cells under a
// mid-iteration NIC degradation plus rate-capped background traffic —
// the scenario arm of the serving mix.
func SimulateBodies() []string {
	const scenario = `{"name":"loadgen","events":[{"kind":"degrade_nic","at":0.05,"node":0,"factor":0.6},{"kind":"background_traffic","at":0.1,"src":0,"dst":1,"gbps":40,"until":0.5}]}`
	var bodies []string
	for _, env := range []string{"InfiniBand", "RoCE", "Ethernet", "Hybrid"} {
		for _, nodes := range []int{4, 8} {
			p := experiments.PipelineSize(1, nodes)
			bodies = append(bodies, fmt.Sprintf(
				`{"env":%q,"nodes":%d,"model":{"group":1},"tensor_size":1,"pipeline_size":%d,"scenario":%s}`,
				env, nodes, p, scenario))
		}
	}
	return bodies
}

// BatchBody builds a /v1/plan/batch envelope of size distinct plan
// items, offset into the plan corpus (so different calls exercise
// different cells).
func BatchBody(size, offset int) string {
	plans := PlanBodies()
	if size <= 0 {
		size = 16
	}
	if size > len(plans) {
		size = len(plans)
	}
	items := make([]string, size)
	for i := 0; i < size; i++ {
		items[i] = fmt.Sprintf(`{"op":"plan","config":%s}`, plans[(offset+i)%len(plans)])
	}
	return `{"items":[` + strings.Join(items, ",") + `]}`
}

// Run drives the closed loop until Duration elapses and reports the
// aggregate. It returns an error only for unusable options; server-side
// failures are data (Result.Errors), not a reason to abort the run.
func Run(o Options) (Result, error) {
	if o.BaseURL == "" {
		return Result{}, fmt.Errorf("loadgen: BaseURL required")
	}
	base := strings.TrimRight(o.BaseURL, "/")
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	mix := o.Mix.normalized()
	total := mix.Plan + mix.Search + mix.Simulate + mix.Batch
	if total == 0 {
		return Result{}, fmt.Errorf("loadgen: mix selects nothing")
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        o.Workers * 2,
			MaxIdleConnsPerHost: o.Workers * 2,
		}}
	}

	plans, searches, sims := PlanBodies(), SearchBodies(), SimulateBodies()
	// Pre-render every batch rotation: building bodies inside the closed
	// loop would charge client-side formatting to the measured rates.
	batches := make([]string, len(plans))
	for i := range batches {
		batches[i] = BatchBody(o.BatchSize, i)
	}
	var (
		hist        metrics.Histogram
		requests    atomic.Uint64
		okCount     atomic.Uint64
		rejected    atomic.Uint64
		errCount    atomic.Uint64
		planAnswers atomic.Uint64
		kindCounts  sync.Map // string -> *atomic.Uint64
		firstErr    atomic.Value
	)
	countKind := func(kind string) {
		v, _ := kindCounts.LoadOrStore(kind, new(atomic.Uint64))
		v.(*atomic.Uint64).Add(1)
	}

	deadline := time.Now().Add(o.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(w)))
			for time.Now().Before(deadline) {
				kind, path, body := "plan", "/v1/plan", ""
				switch pick := rng.Intn(total); {
				case pick < mix.Plan:
					body = plans[rng.Intn(len(plans))]
				case pick < mix.Plan+mix.Search:
					kind, path = "search", "/v1/search"
					body = searches[rng.Intn(len(searches))]
				case pick < mix.Plan+mix.Search+mix.Simulate:
					kind, path = "simulate", "/v1/simulate"
					body = sims[rng.Intn(len(sims))]
				default:
					kind, path = "batch", "/v1/plan/batch"
					body = batches[rng.Intn(len(batches))]
				}
				t0 := time.Now()
				resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
				if err != nil {
					requests.Add(1)
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Sprintf("%s: %v", kind, err))
					continue
				}
				payload, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				hist.Observe(time.Since(t0))
				requests.Add(1)
				countKind(kind)
				switch {
				case resp.StatusCode == http.StatusOK:
					okCount.Add(1)
					switch kind {
					case "plan":
						planAnswers.Add(1)
					case "batch":
						var br struct {
							Count  int `json:"count"`
							Errors int `json:"errors"`
						}
						if json.Unmarshal(payload, &br) == nil && br.Count > br.Errors {
							planAnswers.Add(uint64(br.Count - br.Errors))
						}
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
					// Shed load: yield briefly instead of hammering the
					// full Retry-After (a closed-loop generator that
					// sleeps 1s per 429 measures its own sleep).
					time.Sleep(5 * time.Millisecond)
				default:
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Sprintf("%s: status %d: %s", kind, resp.StatusCode, truncate(payload, 200)))
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := Result{
		ElapsedSeconds: elapsed,
		Workers:        o.Workers,
		Requests:       requests.Load(),
		OK:             okCount.Load(),
		Rejected:       rejected.Load(),
		Errors:         errCount.Load(),
		ByKind:         map[string]uint64{},
		Latency:        hist.Snapshot(),
	}
	if fe, ok := firstErr.Load().(string); ok {
		res.FirstError = fe
	}
	kindCounts.Range(func(k, v any) bool {
		res.ByKind[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	if elapsed > 0 {
		res.RequestsPerSec = float64(res.Requests) / elapsed
		res.PlanAnswersPerSec = float64(planAnswers.Load()) / elapsed
	}
	return res, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
