// Package loadgen is the closed-loop load generator behind
// cmd/holmes-loadgen and the API soak tests: a fixed set of workers
// fires planning traffic at a holmes-serve instance as fast as the
// server answers (closed loop — each worker has at most one request in
// flight), measuring client-side latency and classifying every response.
//
// The request corpus is the paper's own workload: every Table-3 cell
// (parameter group × environment × node count) as a /v1/plan body, the
// four environments as /v1/search bodies, scenario-carrying /v1/simulate
// bodies, and /v1/plan/batch envelopes built from distinct plan cells.
// Backpressure (429) is counted separately from errors: a load test that
// treats shed load as failure cannot distinguish an overloaded server
// from a broken one.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"holmes/internal/experiments"
	"holmes/internal/metrics"
)

// Mix weights the request kinds; zero values fall back to the default
// plan-heavy mix (plan 8 : search 1 : simulate 2 : batch 1).
type Mix struct {
	Plan     int `json:"plan"`
	Search   int `json:"search"`
	Simulate int `json:"simulate"`
	Batch    int `json:"batch"`
}

func (m Mix) normalized() Mix {
	if m == (Mix{}) {
		return Mix{Plan: 8, Search: 1, Simulate: 2, Batch: 1}
	}
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		return v
	}
	return Mix{Plan: clamp(m.Plan), Search: clamp(m.Search), Simulate: clamp(m.Simulate), Batch: clamp(m.Batch)}
}

// Options configures one load-generation run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the closed-loop client count (0 = 16).
	Workers int
	// Duration bounds the run's wall clock (0 = 10s).
	Duration time.Duration
	// Mix weights the request kinds.
	Mix Mix
	// BatchSize is the item count of each /v1/plan/batch request
	// (0 = 16, clamped to the distinct plan-cell corpus).
	BatchSize int
	// Seed makes the per-worker request sequences reproducible (0 = 1).
	Seed int64
	// WarmBoot replaces the timed random mix with one deterministic pass
	// over the whole corpus (every plan, search, and simulate body exactly
	// once, split across workers). Against a snapshot-warmed server this
	// measures cache effectiveness from boot: Duration and Mix are
	// ignored, and Result.Cache tells whether the answers came from cache.
	WarmBoot bool
	// Client overrides the HTTP client (nil = a default with generous
	// connection reuse for Workers connections).
	Client *http.Client
}

// CacheReport is the server's cache effectiveness over the run, scraped
// from GET /v1/stats when it finishes. Ratios are hits/(hits+misses);
// a run against a server that also took other traffic reports the
// server-lifetime ratios, not this run's alone.
type CacheReport struct {
	ResponseHits     uint64  `json:"response_hits"`
	ResponseMisses   uint64  `json:"response_misses"`
	ResponseHitRatio float64 `json:"response_hit_ratio"`
	PlanHits         uint64  `json:"plan_hits"`
	PlanMisses       uint64  `json:"plan_misses"`
	PlanHitRatio     float64 `json:"plan_hit_ratio"`
	// SearchMemoHits counts joint searches answered by the persisted
	// search-winner memo (one replay simulation instead of a full walk).
	SearchMemoHits uint64 `json:"search_memo_hits"`
}

// Result is the JSON report of a run.
type Result struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Workers        int     `json:"workers"`
	// Requests counts completed HTTP round trips; OK / Rejected / Errors
	// partition them (transport failures land in Errors).
	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	// Rejected counts 429 backpressure answers — load shed by design.
	Rejected uint64 `json:"rejected"`
	// Errors counts everything else: non-2xx non-429 statuses and
	// transport failures. A healthy run reports zero.
	Errors     uint64            `json:"errors"`
	FirstError string            `json:"first_error,omitempty"`
	ByKind     map[string]uint64 `json:"by_kind"`
	// Cache is the server's cache effectiveness scraped from /v1/stats at
	// the end of the run (nil when the scrape fails).
	Cache *CacheReport `json:"cache,omitempty"`
	// RequestsPerSec is completed round trips per second.
	RequestsPerSec float64 `json:"requests_per_sec"`
	// PlanAnswersPerSec counts successful plan answers per second —
	// /v1/plan responses plus per-item successes of batch requests (the
	// acceptance metric: a batch of 16 is 16 plan answers, not 1).
	PlanAnswersPerSec float64 `json:"plan_answers_per_sec"`
	// Latency is the client-observed per-request latency histogram.
	Latency metrics.HistogramSnapshot `json:"latency_ms"`
}

// PlanBodies returns the Table-3 request corpus: one /v1/plan body per
// (parameter group, environment, node count) cell, t=1 and the paper's
// pipeline degree. The Table-1 cells are the group-1, 4-node subset.
func PlanBodies() []string {
	var bodies []string
	for group := 1; group <= 4; group++ {
		for _, env := range []string{"InfiniBand", "RoCE", "Ethernet", "Hybrid"} {
			for _, nodes := range []int{4, 6, 8} {
				p := experiments.PipelineSize(group, nodes)
				bodies = append(bodies, fmt.Sprintf(
					`{"env":%q,"nodes":%d,"model":{"group":%d},"tensor_size":1,"pipeline_size":%d}`,
					env, nodes, group, p))
			}
		}
	}
	return bodies
}

// SearchBodies returns the /v1/search corpus: the four environments at 4
// nodes, group 1 (search fans out internally, so a few distinct bodies
// already keep every shard busy).
func SearchBodies() []string {
	var bodies []string
	for _, env := range []string{"InfiniBand", "RoCE", "Ethernet", "Hybrid"} {
		bodies = append(bodies, fmt.Sprintf(`{"env":%q,"nodes":4,"model":{"group":1}}`, env))
	}
	return bodies
}

// SimulateBodies returns the /v1/simulate corpus: group-1 cells under a
// mid-iteration NIC degradation plus rate-capped background traffic —
// the scenario arm of the serving mix.
func SimulateBodies() []string {
	const scenario = `{"name":"loadgen","events":[{"kind":"degrade_nic","at":0.05,"node":0,"factor":0.6},{"kind":"background_traffic","at":0.1,"src":0,"dst":1,"gbps":40,"until":0.5}]}`
	var bodies []string
	for _, env := range []string{"InfiniBand", "RoCE", "Ethernet", "Hybrid"} {
		for _, nodes := range []int{4, 8} {
			p := experiments.PipelineSize(1, nodes)
			bodies = append(bodies, fmt.Sprintf(
				`{"env":%q,"nodes":%d,"model":{"group":1},"tensor_size":1,"pipeline_size":%d,"scenario":%s}`,
				env, nodes, p, scenario))
		}
	}
	return bodies
}

// BatchBody builds a /v1/plan/batch envelope of size distinct plan
// items, offset into the plan corpus (so different calls exercise
// different cells).
func BatchBody(size, offset int) string {
	plans := PlanBodies()
	if size <= 0 {
		size = 16
	}
	if size > len(plans) {
		size = len(plans)
	}
	items := make([]string, size)
	for i := 0; i < size; i++ {
		items[i] = fmt.Sprintf(`{"op":"plan","config":%s}`, plans[(offset+i)%len(plans)])
	}
	return `{"items":[` + strings.Join(items, ",") + `]}`
}

// Run drives the closed loop until Duration elapses and reports the
// aggregate. It returns an error only for unusable options; server-side
// failures are data (Result.Errors), not a reason to abort the run.
func Run(o Options) (Result, error) {
	if o.BaseURL == "" {
		return Result{}, fmt.Errorf("loadgen: BaseURL required")
	}
	base := strings.TrimRight(o.BaseURL, "/")
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	mix := o.Mix.normalized()
	total := mix.Plan + mix.Search + mix.Simulate + mix.Batch
	if total == 0 {
		return Result{}, fmt.Errorf("loadgen: mix selects nothing")
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        o.Workers * 2,
			MaxIdleConnsPerHost: o.Workers * 2,
		}}
	}

	plans, searches, sims := PlanBodies(), SearchBodies(), SimulateBodies()
	// Pre-render every batch rotation: building bodies inside the closed
	// loop would charge client-side formatting to the measured rates.
	batches := make([]string, len(plans))
	for i := range batches {
		batches[i] = BatchBody(o.BatchSize, i)
	}
	var (
		hist        metrics.Histogram
		requests    atomic.Uint64
		okCount     atomic.Uint64
		rejected    atomic.Uint64
		errCount    atomic.Uint64
		planAnswers atomic.Uint64
		kindCounts  sync.Map // string -> *atomic.Uint64
		firstErr    atomic.Value
	)
	countKind := func(kind string) {
		v, _ := kindCounts.LoadOrStore(kind, new(atomic.Uint64))
		v.(*atomic.Uint64).Add(1)
	}

	// fire posts one request and classifies the answer. It reports whether
	// the request landed (anything but a 429 shed).
	fire := func(kind, path, body string) bool {
		t0 := time.Now()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			requests.Add(1)
			errCount.Add(1)
			firstErr.CompareAndSwap(nil, fmt.Sprintf("%s: %v", kind, err))
			return true
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		hist.Observe(time.Since(t0))
		requests.Add(1)
		countKind(kind)
		switch {
		case resp.StatusCode == http.StatusOK:
			okCount.Add(1)
			switch kind {
			case "plan":
				planAnswers.Add(1)
			case "batch":
				var br struct {
					Count  int `json:"count"`
					Errors int `json:"errors"`
				}
				if json.Unmarshal(payload, &br) == nil && br.Count > br.Errors {
					planAnswers.Add(uint64(br.Count - br.Errors))
				}
			}
			return true
		case resp.StatusCode == http.StatusTooManyRequests:
			rejected.Add(1)
			// Shed load: yield briefly instead of hammering the
			// full Retry-After (a closed-loop generator that
			// sleeps 1s per 429 measures its own sleep).
			time.Sleep(5 * time.Millisecond)
			return false
		default:
			errCount.Add(1)
			firstErr.CompareAndSwap(nil, fmt.Sprintf("%s: status %d: %s", kind, resp.StatusCode, truncate(payload, 200)))
			return true
		}
	}

	deadline := time.Now().Add(o.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if o.WarmBoot {
				// One deterministic pass: worker w takes corpus items
				// w, w+Workers, ... A 429 is retried (bounded) because
				// warm-boot measures cache coverage — every item must land.
				type item struct{ kind, path, body string }
				var corpus []item
				for _, b := range plans {
					corpus = append(corpus, item{"plan", "/v1/plan", b})
				}
				for _, b := range searches {
					corpus = append(corpus, item{"search", "/v1/search", b})
				}
				for _, b := range sims {
					corpus = append(corpus, item{"simulate", "/v1/simulate", b})
				}
				for i := w; i < len(corpus); i += o.Workers {
					it := corpus[i]
					for attempt := 0; attempt < 50; attempt++ {
						if fire(it.kind, it.path, it.body) {
							break
						}
					}
				}
				return
			}
			rng := rand.New(rand.NewSource(o.Seed + int64(w)))
			for time.Now().Before(deadline) {
				kind, path, body := "plan", "/v1/plan", ""
				switch pick := rng.Intn(total); {
				case pick < mix.Plan:
					body = plans[rng.Intn(len(plans))]
				case pick < mix.Plan+mix.Search:
					kind, path = "search", "/v1/search"
					body = searches[rng.Intn(len(searches))]
				case pick < mix.Plan+mix.Search+mix.Simulate:
					kind, path = "simulate", "/v1/simulate"
					body = sims[rng.Intn(len(sims))]
				default:
					kind, path = "batch", "/v1/plan/batch"
					body = batches[rng.Intn(len(batches))]
				}
				fire(kind, path, body)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := Result{
		ElapsedSeconds: elapsed,
		Workers:        o.Workers,
		Requests:       requests.Load(),
		OK:             okCount.Load(),
		Rejected:       rejected.Load(),
		Errors:         errCount.Load(),
		ByKind:         map[string]uint64{},
		Latency:        hist.Snapshot(),
	}
	if fe, ok := firstErr.Load().(string); ok {
		res.FirstError = fe
	}
	kindCounts.Range(func(k, v any) bool {
		res.ByKind[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	if elapsed > 0 {
		res.RequestsPerSec = float64(res.Requests) / elapsed
		res.PlanAnswersPerSec = float64(planAnswers.Load()) / elapsed
	}
	res.Cache = scrapeCache(client, base)
	return res, nil
}

// scrapeCache reads the server's cache counters from GET /v1/stats. The
// scrape is best-effort observability — a server without the endpoint
// (or an unreachable one at teardown) yields nil, not a failed run.
func scrapeCache(client *http.Client, base string) *CacheReport {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var stats struct {
		PlanCache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"plan_cache"`
		Responses struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"responses"`
		Search struct {
			MemoHits uint64 `json:"memo_hits"`
		} `json:"search"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil
	}
	ratio := func(hits, misses uint64) float64 {
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	}
	return &CacheReport{
		ResponseHits:     stats.Responses.Hits,
		ResponseMisses:   stats.Responses.Misses,
		ResponseHitRatio: ratio(stats.Responses.Hits, stats.Responses.Misses),
		PlanHits:         stats.PlanCache.Hits,
		PlanMisses:       stats.PlanCache.Misses,
		PlanHitRatio:     ratio(stats.PlanCache.Hits, stats.PlanCache.Misses),
		SearchMemoHits:   stats.Search.MemoHits,
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
