package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParameterCountsMatchTable2(t *testing.T) {
	// Table 2: groups 1–2 are 3.6B, groups 3–4 are 7.5B.
	cases := []struct {
		id   int
		want float64 // billions
	}{
		{1, 3.6}, {2, 3.6}, {3, 7.5}, {4, 7.5},
	}
	for _, tc := range cases {
		g := Group(tc.id)
		got := float64(g.Spec.Params()) / 1e9
		if math.Abs(got-tc.want) > 0.1 {
			t.Errorf("group %d: %.2fB params, want ~%.1fB", tc.id, got, tc.want)
		}
	}
}

func TestGPT39BParamCount(t *testing.T) {
	got := float64(GPT39B(1536).Params()) / 1e9
	if math.Abs(got-39.1) > 0.5 {
		t.Fatalf("GPT39B = %.2fB params, want ~39.1B (Figure 7)", got)
	}
}

func TestTable2Shapes(t *testing.T) {
	gs := ParameterGroups()
	if len(gs) != 4 {
		t.Fatalf("want 4 parameter groups, got %d", len(gs))
	}
	wants := []struct {
		hidden, layers, pp, batch int
	}{
		{3072, 30, 2, 768},
		{3072, 30, 2, 1536},
		{4096, 36, 3, 1536},
		{4096, 36, 3, 2688},
	}
	for i, w := range wants {
		g := gs[i]
		if g.Spec.Hidden != w.hidden || g.Spec.Layers != w.layers ||
			g.PipelineSize != w.pp || g.Spec.GlobalBatch != w.batch {
			t.Errorf("group %d = %+v, want %+v", i+1, g, w)
		}
		if g.TensorSize != 1 {
			t.Errorf("group %d tensor size = %d, want 1", i+1, g.TensorSize)
		}
		if g.Spec.Heads != 32 {
			t.Errorf("group %d heads = %d, want 32", i+1, g.Spec.Heads)
		}
		if err := g.Spec.Validate(); err != nil {
			t.Errorf("group %d invalid: %v", i+1, err)
		}
	}
}

// The paper's Table 1 is internally consistent with the Megatron FLOPs
// formula: for PG1 on 32 GPUs, TFLOPS = F/(T·N) and Throughput = B/T give
// 197 TFLOPS at 99.23 samples/s. Verify our formula reproduces that
// relation.
func TestFLOPsFormulaConsistentWithTable1(t *testing.T) {
	s := Group(1).Spec
	throughput := 99.23 // samples/s, Table 1 InfiniBand row
	iterTime := float64(s.GlobalBatch) / throughput
	tflops := s.FLOPsPerIteration() / (iterTime * 32) / 1e12
	if math.Abs(tflops-197) > 4 {
		t.Fatalf("implied TFLOPS = %.1f, want ~197 (Table 1)", tflops)
	}
}

func TestFLOPsScaleLinearlyInBatch(t *testing.T) {
	a, b := gpt36(768), gpt36(1536)
	ratio := b.FLOPsPerIteration() / a.FLOPsPerIteration()
	if math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("doubling batch scaled FLOPs by %v, want 2", ratio)
	}
	if a.FLOPsPerSample() != b.FLOPsPerSample() {
		t.Fatal("per-sample FLOPs must not depend on batch")
	}
}

func TestFLOPsForLayersExcludesVocab(t *testing.T) {
	s := Group(1).Spec
	all := s.FLOPsForLayers(s.Layers, s.GlobalBatch)
	full := s.FLOPsPerIteration()
	if all >= full {
		t.Fatalf("layer FLOPs %v must be below full (vocab-included) %v", all, full)
	}
	if all < 0.9*full {
		t.Fatalf("vocab term too large: layers=%v full=%v", all, full)
	}
	// Additivity over a split.
	part := s.FLOPsForLayers(10, s.GlobalBatch) + s.FLOPsForLayers(20, s.GlobalBatch)
	if math.Abs(part-all)/all > 1e-12 {
		t.Fatalf("layer FLOPs not additive: %v vs %v", part, all)
	}
}

func TestMicroBatches(t *testing.T) {
	s := Group(1).Spec // B=768, b=4
	m, err := s.MicroBatches(16)
	if err != nil || m != 12 {
		t.Fatalf("m = %d err = %v, want 12", m, err)
	}
	if _, err := s.MicroBatches(0); err == nil {
		t.Fatal("dp=0 must error")
	}
	if _, err := s.MicroBatches(7); err == nil {
		t.Fatal("non-dividing dp must error")
	}
}

func TestStageMemoryShrinksWithSharding(t *testing.T) {
	s := Group(3).Spec
	unsharded := s.StageMemoryBytes(12, 16, 1, 3, false)
	sharded := s.StageMemoryBytes(12, 16, 1, 3, true)
	if sharded >= unsharded {
		t.Fatalf("distributed optimizer must shrink memory: %d vs %d", sharded, unsharded)
	}
	// Sanity: a 12-layer 7.5B stage fits in an A100-80GB with sharding.
	if sharded > 80<<30 {
		t.Fatalf("sharded stage = %d GiB, should fit 80 GiB", sharded>>30)
	}
}

func TestStageMemoryMonotoneInLayers(t *testing.T) {
	s := Group(1).Spec
	f := func(aRaw, bRaw uint8) bool {
		a, b := int(aRaw%30)+1, int(bRaw%30)+1
		ma := s.StageMemoryBytes(a, 8, 1, 2, true)
		mb := s.StageMemoryBytes(b, 8, 1, 2, true)
		if a < b {
			return ma < mb
		}
		if a > b {
			return ma > mb
		}
		return ma == mb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGradientBytes(t *testing.T) {
	s := Group(1).Spec
	// 15 layers of a 3072-hidden model in fp16.
	want := float64(15*(12*3072*3072+13*3072)) * 2
	if got := s.GradientBytes(15, 1); got != want {
		t.Fatalf("GradientBytes = %v, want %v", got, want)
	}
	if got := s.GradientBytes(15, 2); got != want/2 {
		t.Fatalf("tensor sharding must halve gradients: %v", got)
	}
}

func TestActivationMessageBytes(t *testing.T) {
	s := Group(1).Spec // b=4, s=2048, h=3072
	want := 4.0 * 2048 * 3072 * 2
	if got := s.ActivationMessageBytes(); got != want {
		t.Fatalf("ActivationMessageBytes = %v, want %v", got, want)
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	good := gpt36(768)
	bad := []Spec{
		{}, // all zero
		func() Spec { s := good; s.Hidden = 3070; return s }(), // heads don't divide
		func() Spec { s := good; s.MicroBatch = 0; return s }(),
		func() Spec { s := good; s.Vocab = -1; return s }(),
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestGroupPanicsOutOfRange(t *testing.T) {
	for _, id := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Group(%d) did not panic", id)
				}
			}()
			Group(id)
		}()
	}
}

func TestStringMentionsSize(t *testing.T) {
	s := Group(1).Spec.String()
	if len(s) == 0 || s[:3] != "GPT" {
		t.Fatalf("String() = %q", s)
	}
}
