package model

// Standard GPT configuration constants shared by all parameter groups
// (GPT-3 family, as in §4.1 "we utilize standard model architectures such
// as GPT-3").
const (
	StdVocab  = 51200
	StdSeqLen = 2048
)

// ParameterGroup is one row of Table 2 plus the pipeline-parallel size the
// paper pins to it.
type ParameterGroup struct {
	ID           int
	Spec         Spec
	PipelineSize int // pipeline parallel degree p
	TensorSize   int // tensor parallel degree t (1 for all groups, §Table 2)
}

// gpt36 returns the 3.6-billion-parameter GPT architecture of groups 1–2.
func gpt36(batch int) Spec {
	return Spec{
		Name:   "GPT-3.6B",
		Layers: 30, Hidden: 3072, Heads: 32,
		Vocab: StdVocab, SeqLen: StdSeqLen,
		GlobalBatch: batch, MicroBatch: 4,
	}
}

// gpt75 returns the 7.5-billion-parameter GPT architecture of groups 3–4.
func gpt75(batch int) Spec {
	return Spec{
		Name:   "GPT-7.5B",
		Layers: 36, Hidden: 4096, Heads: 32,
		Vocab: StdVocab, SeqLen: StdSeqLen,
		GlobalBatch: batch, MicroBatch: 4,
	}
}

// GPT39B is the 39.1-billion-parameter model of the Figure 7 scalability
// experiment (h=8192, l=48 gives 39.1B with the standard vocabulary).
func GPT39B(batch int) Spec {
	return Spec{
		Name:   "GPT-39.1B",
		Layers: 48, Hidden: 8192, Heads: 64,
		Vocab: StdVocab, SeqLen: StdSeqLen,
		GlobalBatch: batch, MicroBatch: 2,
	}
}

// ParameterGroups returns Table 2: four parameter groups covering two
// model sizes × two batch sizes. Tensor parallel size is 1 throughout
// ("our optimization focuses on data parallelism and pipeline
// parallelism").
func ParameterGroups() []ParameterGroup {
	return []ParameterGroup{
		{ID: 1, Spec: gpt36(768), PipelineSize: 2, TensorSize: 1},
		{ID: 2, Spec: gpt36(1536), PipelineSize: 2, TensorSize: 1},
		{ID: 3, Spec: gpt75(1536), PipelineSize: 3, TensorSize: 1},
		{ID: 4, Spec: gpt75(2688), PipelineSize: 3, TensorSize: 1},
	}
}

// Group returns parameter group id (1-based), panicking on a bad id.
func Group(id int) ParameterGroup {
	gs := ParameterGroups()
	if id < 1 || id > len(gs) {
		panic("model: parameter group id out of range")
	}
	return gs[id-1]
}
