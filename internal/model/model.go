// Package model describes transformer language models the way the
// scheduler sees them: parameter counts, FLOP counts, and memory
// footprints as functions of the architecture (layers, hidden size, heads,
// vocabulary, sequence length).
//
// The FLOPs formula is the one the paper's TFLOPS metric is defined by
// (§2.3, "the computational formula aligns with that in [20]"), i.e.
// Narayanan et al., "Efficient Large-Scale Language Model Training on GPU
// Clusters Using Megatron-LM":
//
//	F = 96·B·s·l·h² · (1 + s/(6h) + V/(16·l·h))
//
// per iteration with batch B, sequence length s, l layers, hidden h,
// vocabulary V.
package model

import "fmt"

// Spec is a transformer architecture plus training shape.
type Spec struct {
	Name string
	// Architecture.
	Layers int // l: transformer layers
	Hidden int // h: hidden size
	Heads  int // attention heads
	Vocab  int // V: vocabulary size
	SeqLen int // s: sequence length
	// Training shape.
	GlobalBatch int // B: samples per iteration
	MicroBatch  int // b: samples per micro-batch per pipeline
}

// Validate checks internal consistency.
func (s Spec) Validate() error {
	switch {
	case s.Layers <= 0 || s.Hidden <= 0 || s.Heads <= 0:
		return fmt.Errorf("model %s: non-positive architecture dims", s.Name)
	case s.Hidden%s.Heads != 0:
		return fmt.Errorf("model %s: hidden %d not divisible by heads %d", s.Name, s.Hidden, s.Heads)
	case s.Vocab <= 0 || s.SeqLen <= 0:
		return fmt.Errorf("model %s: non-positive vocab/seq", s.Name)
	case s.GlobalBatch <= 0 || s.MicroBatch <= 0:
		return fmt.Errorf("model %s: non-positive batch sizes", s.Name)
	}
	return nil
}

// Params returns the total parameter count:
// 12·l·h² (attention + MLP) + 13·l·h (biases, layernorms) +
// (V+s)·h (token + position embeddings).
func (s Spec) Params() int64 {
	l, h := int64(s.Layers), int64(s.Hidden)
	return 12*l*h*h + 13*l*h + int64(s.Vocab+s.SeqLen)*h
}

// ParamsPerLayer returns parameters of one transformer layer (12h²+13h).
func (s Spec) ParamsPerLayer() int64 {
	h := int64(s.Hidden)
	return 12*h*h + 13*h
}

// EmbeddingParams returns the embedding-table parameters ((V+s)·h).
func (s Spec) EmbeddingParams() int64 {
	return int64(s.Vocab+s.SeqLen) * int64(s.Hidden)
}

// FLOPsPerIteration returns the Megatron model-FLOPs count for one full
// training iteration (forward + backward, with activation recomputation
// factored in the 96 constant, matching the paper's TFLOPS definition).
func (s Spec) FLOPsPerIteration() float64 {
	b := float64(s.GlobalBatch)
	seq := float64(s.SeqLen)
	l := float64(s.Layers)
	h := float64(s.Hidden)
	v := float64(s.Vocab)
	return 96 * b * seq * l * h * h * (1 + seq/(6*h) + v/(16*l*h))
}

// FLOPsPerSample returns per-sample FLOPs (FLOPsPerIteration / B).
func (s Spec) FLOPsPerSample() float64 {
	return s.FLOPsPerIteration() / float64(s.GlobalBatch)
}

// FLOPsForLayers returns the FLOPs share of `layers` consecutive
// transformer layers for `samples` samples, excluding the vocabulary
// projection term. Used by the self-adapting partition to weigh stages.
func (s Spec) FLOPsForLayers(layers, samples int) float64 {
	seq := float64(s.SeqLen)
	h := float64(s.Hidden)
	return 96 * float64(samples) * seq * float64(layers) * h * h * (1 + seq/(6*h))
}

// ActivationBytesPerLayer returns the fp16 activation memory one
// micro-batch leaves resident in one transformer layer (Korthikanti et
// al.'s s·b·h·34 with selective recomputation).
func (s Spec) ActivationBytesPerLayer() int64 {
	return int64(s.SeqLen) * int64(s.MicroBatch) * int64(s.Hidden) * 34
}

// ActivationBytesPerLayerRecompute returns the resident activation bytes
// per layer per micro-batch under full activation recomputation: only the
// fp16 layer-boundary tensors (input + output) stay resident, which is
// how Megatron fits very large models.
func (s Spec) ActivationBytesPerLayerRecompute() int64 {
	return int64(s.SeqLen) * int64(s.MicroBatch) * int64(s.Hidden) * 4
}

// WeightAndOptimizerBytesPerParam is the resident bytes per parameter in
// Megatron mixed-precision training: fp16 weight (2) + fp16 gradient (2)
// + fp32 master weight, momentum, and variance (12). With a distributed
// optimizer the 12 fp32 bytes shard across the data-parallel group.
const (
	WeightBytesPerParam    = 2
	GradBytesPerParam      = 2
	OptimizerBytesPerParam = 12
)

// StageMemoryBytes estimates the per-GPU memory of a pipeline stage
// holding `layers` layers, with data-parallel degree d, tensor degree t,
// `inflight` resident micro-batches (1F1B keeps ≤ p), and whether the
// optimizer state is sharded across d (distributed optimizer).
func (s Spec) StageMemoryBytes(layers, d, t, inflight int, shardOptimizer bool) int64 {
	if t <= 0 || d <= 0 {
		panic("model: non-positive parallel degree")
	}
	params := s.ParamsPerLayer() * int64(layers) / int64(t)
	static := params * (WeightBytesPerParam + GradBytesPerParam)
	opt := params * OptimizerBytesPerParam
	if shardOptimizer {
		opt /= int64(d)
	}
	act := s.ActivationBytesPerLayer() * int64(layers) * int64(inflight) / int64(t)
	return static + opt + act
}

// GradientBytes returns the fp16 gradient payload of `layers` layers for
// one tensor-parallel shard — the message size of data-parallel gradient
// synchronization.
func (s Spec) GradientBytes(layers, t int) float64 {
	return float64(s.ParamsPerLayer()*int64(layers)) * GradBytesPerParam / float64(t)
}

// ActivationMessageBytes returns the fp16 tensor exchanged between
// adjacent pipeline stages per micro-batch: b·s·h·2.
func (s Spec) ActivationMessageBytes() float64 {
	return float64(s.MicroBatch) * float64(s.SeqLen) * float64(s.Hidden) * 2
}

// MicroBatches returns the number of micro-batches each pipeline processes
// per iteration given data-parallel degree d: m = B/(d·b). It errors if
// the batch does not divide evenly, mirroring Megatron's constraint.
func (s Spec) MicroBatches(d int) (int, error) {
	if d <= 0 {
		return 0, fmt.Errorf("model: non-positive data-parallel degree %d", d)
	}
	per := s.GlobalBatch / d
	if s.GlobalBatch%d != 0 {
		return 0, fmt.Errorf("model %s: global batch %d not divisible by dp degree %d", s.Name, s.GlobalBatch, d)
	}
	if per%s.MicroBatch != 0 {
		return 0, fmt.Errorf("model %s: per-replica batch %d not divisible by micro-batch %d", s.Name, per, s.MicroBatch)
	}
	return per / s.MicroBatch, nil
}

func (s Spec) String() string {
	return fmt.Sprintf("%s: %.1fB params (l=%d h=%d heads=%d V=%d s=%d B=%d b=%d)",
		s.Name, float64(s.Params())/1e9, s.Layers, s.Hidden, s.Heads,
		s.Vocab, s.SeqLen, s.GlobalBatch, s.MicroBatch)
}
