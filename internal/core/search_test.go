package core

import (
	"reflect"
	"testing"

	"holmes/internal/engine"
	"holmes/internal/model"
	"holmes/internal/parallel"
	"holmes/internal/topology"
)

// The joint search space must contain every (t, p) cell the old per-t
// SearchPipeline would have visited, for every feasible tensor degree —
// SearchPlan is a widening, never a narrowing.
func TestSearchSpaceCoversPerTensorSearches(t *testing.T) {
	pl := planner(t, topology.HybridEnv(8), 3)
	joint := map[parallel.Degrees]bool{}
	for _, c := range pl.SearchSpace() {
		joint[c] = true
	}
	perT := 0
	for _, tp := range pl.feasibleTensorDegrees() {
		for _, c := range pl.searchSpace([]int{tp}) {
			perT++
			if !joint[c] {
				t.Fatalf("cell %+v reachable via SearchPipeline(%d) but absent from SearchPlan space", c, tp)
			}
		}
	}
	if len(joint) < perT {
		t.Fatalf("joint space %d cells < union of per-t spaces %d", len(joint), perT)
	}
	if perT == 0 {
		t.Fatal("degenerate search space")
	}
}

// On the paper's hybrid 8-node GPT-7.5B scenario the joint search must
// agree with the historical per-t search at t=1 (the paper fixes t=1):
// the tensor-parallel collective cost keeps t>1 candidates honest.
func TestSearchPlanMatchesPipelineWinnerHybrid8GPT75(t *testing.T) {
	pl := planner(t, topology.HybridEnv(8), 3)
	joint, err := pl.SearchPlan()
	if err != nil {
		t.Fatal(err)
	}
	perT, err := pl.SearchPipeline(1)
	if err != nil {
		t.Fatal(err)
	}
	if joint.Degrees != perT.Degrees {
		t.Fatalf("joint winner %+v != SearchPipeline(1) winner %+v", joint.Degrees, perT.Degrees)
	}
	if !reflect.DeepEqual(joint.Report, perT.Report) {
		t.Fatalf("winner reports differ:\njoint %+v\nperT  %+v", joint.Report, perT.Report)
	}
}

// The search winner must not depend on pool scheduling: a sequential
// engine and a wide concurrent engine return bit-identical winners across
// repeated trials.
func TestSearchPlanDeterministicUnderConcurrency(t *testing.T) {
	topo := topology.HybridEnv(4)
	spec := model.Group(1).Spec

	seqEng := engine.New(engine.Config{Concurrency: 1})
	seqPl, err := NewPlannerOn(seqEng, topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := seqPl.SearchPlan()
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 3; trial++ {
		eng := engine.New(engine.Config{Concurrency: 16})
		pl, err := NewPlannerOn(eng, topo, spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pl.SearchPlan()
		if err != nil {
			t.Fatal(err)
		}
		if got.Degrees != ref.Degrees || !reflect.DeepEqual(got.Report, ref.Report) {
			t.Fatalf("trial %d: concurrent winner %+v (%+v) != sequential %+v (%+v)",
				trial, got.Degrees, got.Report, ref.Degrees, ref.Report)
		}
	}
}

// The search reuses cached worlds across cells: after one SearchPlan on a
// fresh engine, a second identical search must be all cache hits.
func TestSearchPlanReusesWorldCache(t *testing.T) {
	eng := engine.New(engine.Config{})
	pl, err := NewPlannerOn(eng, topology.HybridEnv(4), model.Group(1).Spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.SearchPlan(); err != nil {
		t.Fatal(err)
	}
	st1 := eng.CacheStats()
	if _, err := pl.SearchPlan(); err != nil {
		t.Fatal(err)
	}
	st2 := eng.CacheStats()
	if st2.Misses != st1.Misses {
		t.Fatalf("second search rebuilt worlds: %+v -> %+v", st1, st2)
	}
	if st2.Hits <= st1.Hits {
		t.Fatalf("second search did not hit the cache: %+v -> %+v", st1, st2)
	}
}

// CommunicationCost must refuse a plan whose data-parallel degree cannot
// micro-batch the planner's global batch instead of silently assuming
// m=1.
func TestCommunicationCostRejectsBadMicroBatch(t *testing.T) {
	topo := topology.HybridEnv(4)
	pl := planner(t, topo, 1)
	plan, err := pl.Plan(1, 2) // d = 16, fine for PG1 (B=768, b=4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.CommunicationCost(plan); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	spec := model.Group(1).Spec
	spec.GlobalBatch = 20 // 20 % 16 != 0: micro-batching is undefined
	bad, err := NewPlanner(topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.CommunicationCost(plan); err == nil {
		t.Fatal("undefined micro-batching must surface as an error, not m=1")
	}
}
