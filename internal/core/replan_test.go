package core

import (
	"math"
	"testing"

	"holmes/internal/model"
	"holmes/internal/scenario"
	"holmes/internal/topology"
)

func TestReplanOnExcludesFailedNode(t *testing.T) {
	topo := topology.HybridEnv(4)
	pl, err := NewPlanner(topo, model.Group(1).Spec)
	if err != nil {
		t.Fatal(err)
	}
	sc := &scenario.Scenario{
		Name:   "node-0-down",
		Events: []scenario.Event{{Kind: scenario.FailNode, At: 0, Node: 0}},
	}
	rep, err := pl.ReplanOn(sc, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.ExcludedNodes; len(got) != 1 || got[0] != 0 {
		t.Fatalf("excluded %v, want [0]", got)
	}
	if rep.EffectiveTopo.NumNodes() != topo.NumNodes()-1 {
		t.Fatalf("effective topology has %d nodes, want %d", rep.EffectiveTopo.NumNodes(), topo.NumNodes()-1)
	}
	// The replanned configuration cannot address the failed node's GPUs.
	if rep.After.Assign.N != rep.EffectiveTopo.NumDevices() {
		t.Fatalf("after-plan spans %d ranks, effective topology has %d", rep.After.Assign.N, rep.EffectiveTopo.NumDevices())
	}
	// The failure must hurt the old plan, and replanning must beat
	// limping along on the failed fabric.
	if !(rep.Degraded.IterSeconds > rep.Before.Report.IterSeconds) {
		t.Errorf("failure did not increase step time: %.4fs vs %.4fs", rep.Degraded.IterSeconds, rep.Before.Report.IterSeconds)
	}
	if f := rep.RecoveryFactor(); !(f > 1) {
		t.Errorf("replanning does not recover (factor %.3f)", f)
	}
	if f := rep.RetainedFraction(); !(f > 0 && f < 1) {
		t.Errorf("retained fraction %.3f outside (0,1): losing a node cannot be free", f)
	}
	if rep.Describe() == "" {
		t.Error("empty description")
	}
}

// A degrade-only scenario keeps every node: the replan sees the same
// node count but reduced capacity on the degraded node.
func TestReplanOnDegradeKeepsNodes(t *testing.T) {
	topo := topology.IBEnv(2)
	pl, err := NewPlanner(topo, model.Group(1).Spec)
	if err != nil {
		t.Fatal(err)
	}
	sc := &scenario.Scenario{Events: []scenario.Event{
		{Kind: scenario.DegradeNIC, At: 0, Node: 1, Class: scenario.ClassRDMA, Factor: 0.25},
	}}
	rep, err := pl.ReplanOn(sc, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ExcludedNodes) != 0 || rep.EffectiveTopo.NumNodes() != 2 {
		t.Fatalf("degrade excluded nodes: %v, %d nodes", rep.ExcludedNodes, rep.EffectiveTopo.NumNodes())
	}
	if got, want := rep.EffectiveTopo.Node(1).RDMAGbps(), topo.Node(1).RDMAGbps()*0.25; got != want {
		t.Fatalf("effective capacity %v, want %v", got, want)
	}
}

func TestReplanOnRejectsEmptyAndInvalid(t *testing.T) {
	pl, err := NewPlanner(topology.IBEnv(2), model.Group(1).Spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.ReplanOn(nil, math.Inf(1)); err == nil {
		t.Error("nil scenario accepted")
	}
	if _, err := pl.ReplanOn(&scenario.Scenario{}, math.Inf(1)); err == nil {
		t.Error("empty scenario accepted")
	}
	bad := &scenario.Scenario{Events: []scenario.Event{{Kind: scenario.FailNode, At: 0, Node: 99}}}
	if _, err := pl.ReplanOn(bad, math.Inf(1)); err == nil {
		t.Error("out-of-range node accepted")
	}
}
