package core

import (
	"math/rand"
	"reflect"
	"testing"

	"holmes/internal/engine"
	"holmes/internal/model"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

// The pruned joint search is a pure performance change: its winner, the
// winner's full report, and its error behaviour must be bit-identical to
// the exhaustive scan it replaced (Planner.Exhaustive, the reference
// arm). These tests run both arms on fresh engines — fresh so neither
// the winner memo nor the communicator cache lets one arm see the
// other's work — and compare everything observable.

// newArm builds a planner on its own engine.
func newArm(t *testing.T, env topology.EnvName, nodes, group int, exhaustive bool) *Planner {
	t.Helper()
	topo, err := topology.Env(env, nodes)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlannerOn(engine.New(engine.Config{}), topo, model.Group(group).Spec)
	if err != nil {
		t.Fatal(err)
	}
	pl.Exhaustive = exhaustive
	return pl
}

// comparePlans asserts two search outcomes are bit-identical: same error
// string or same winner degrees, partition, and full report.
func comparePlans(t *testing.T, label string, got, want *Plan, gotErr, wantErr error) {
	t.Helper()
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("%s: error mismatch: pruned %v vs exhaustive %v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: error text diverged: %q vs %q", label, gotErr, wantErr)
		}
		return
	}
	if got.Degrees != want.Degrees {
		t.Fatalf("%s: winner diverged: pruned %+v vs exhaustive %+v", label, got.Degrees, want.Degrees)
	}
	if !reflect.DeepEqual(got.Partition, want.Partition) {
		t.Fatalf("%s: partition diverged:\npruned     %+v\nexhaustive %+v", label, got.Partition, want.Partition)
	}
	if !reflect.DeepEqual(got.Report, want.Report) {
		t.Fatalf("%s: report diverged:\npruned     %+v\nexhaustive %+v", label, got.Report, want.Report)
	}
}

// TestSearchPlanMatchesExhaustive is the Table-3-shaped differential:
// every environment, both node counts, two parameter groups.
func TestSearchPlanMatchesExhaustive(t *testing.T) {
	for _, env := range []topology.EnvName{
		topology.EnvInfiniBand, topology.EnvRoCE, topology.EnvEthernet, topology.EnvHybrid,
	} {
		for _, nodes := range []int{4, 8} {
			for _, group := range []int{1, 3} {
				pruned := newArm(t, env, nodes, group, false)
				oracle := newArm(t, env, nodes, group, true)
				got, gotErr := pruned.SearchPlan()
				want, wantErr := oracle.SearchPlan()
				label := string(env) + "/" + string(rune('0'+nodes)) + "n/group" + string(rune('0'+group))
				comparePlans(t, label, got, want, gotErr, wantErr)

				// The pruned arm must actually prune somewhere on this
				// grid; counters prove the fast path ran (not a silent
				// fall-through to the exhaustive scan).
				st := pruned.Engine.SearchStats()
				if st.Searches != 1 {
					t.Fatalf("%s: pruned arm ran %d searches", label, st.Searches)
				}
				if ost := oracle.Engine.SearchStats(); ost.Pruned != 0 {
					t.Fatalf("%s: exhaustive arm pruned %d cells", label, ost.Pruned)
				}
			}
		}
	}
}

// TestSearchPlanPrunesSomething pins the perf claim behind the tentpole:
// on at least one representative cell the bound must rule out candidates
// without simulating them.
func TestSearchPlanPrunesSomething(t *testing.T) {
	pl := newArm(t, topology.EnvHybrid, 8, 1, false)
	if _, err := pl.SearchPlan(); err != nil {
		t.Fatal(err)
	}
	st := pl.Engine.SearchStats()
	if st.Pruned+st.Aborted == 0 {
		t.Fatalf("no cells pruned or aborted (simulated %d) — bound too loose to pay for itself", st.Simulated)
	}
	t.Logf("hybrid/8n/group1: simulated %d, pruned %d, aborted %d", st.Simulated, st.Pruned, st.Aborted)
}

// TestSearchPipelineMatchesExhaustive covers the single-axis restriction
// of the same code path.
func TestSearchPipelineMatchesExhaustive(t *testing.T) {
	for _, tile := range []int{1, 2} {
		pruned := newArm(t, topology.EnvRoCE, 4, 1, false)
		oracle := newArm(t, topology.EnvRoCE, 4, 1, true)
		got, gotErr := pruned.SearchPipeline(tile)
		want, wantErr := oracle.SearchPipeline(tile)
		comparePlans(t, "t="+string(rune('0'+tile)), got, want, gotErr, wantErr)
	}
}

// TestSearchPlanMatchesExhaustiveRandomized drives both arms over
// random frameworks and option perturbations. Seeded; runs under -race
// in CI like every test.
func TestSearchPlanMatchesExhaustiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	envs := []topology.EnvName{
		topology.EnvInfiniBand, topology.EnvRoCE, topology.EnvEthernet, topology.EnvHybrid,
	}
	for trial := 0; trial < 6; trial++ {
		env := envs[rng.Intn(len(envs))]
		nodes := 4 + 2*rng.Intn(2) // 4, 6
		group := 1 + rng.Intn(2)
		fw := trainer.AllFrameworks[rng.Intn(len(trainer.AllFrameworks))]
		opt := trainer.DefaultOptions(fw)
		opt.OverlappedOptimizer = rng.Intn(2) == 0
		opt.SelfAdaptingPartition = rng.Intn(2) == 0
		opt.ExtraDPTraffic = 1 + rng.Float64()

		pruned := newArm(t, env, nodes, group, false)
		pruned.Framework, pruned.Opt = fw, &opt
		oracle := newArm(t, env, nodes, group, true)
		oracle.Framework, oracle.Opt = fw, &opt

		got, gotErr := pruned.SearchPlan()
		want, wantErr := oracle.SearchPlan()
		comparePlans(t, string(env)+"/"+string(fw), got, want, gotErr, wantErr)
	}
}

// TestSearchMemoReplaysIdentically runs the same search twice on one
// engine: the second run must be answered by the winner memo (one replay
// simulation) and return a bit-identical plan.
func TestSearchMemoReplaysIdentically(t *testing.T) {
	pl := newArm(t, topology.EnvHybrid, 4, 1, false)
	first, err := pl.SearchPlan()
	if err != nil {
		t.Fatal(err)
	}
	second, err := pl.SearchPlan()
	if err != nil {
		t.Fatal(err)
	}
	comparePlans(t, "memo replay", second, first, nil, nil)
	st := pl.Engine.SearchStats()
	if st.MemoHits != 1 {
		t.Fatalf("second search should hit the winner memo once, counters: %+v", st)
	}
	if st.Searches != 2 {
		t.Fatalf("expected 2 searches, counters: %+v", st)
	}

	// A different candidate space must not share the memo entry.
	if _, err := pl.SearchPipeline(1); err != nil {
		t.Fatal(err)
	}
	if st := pl.Engine.SearchStats(); st.MemoHits != 1 {
		t.Fatalf("t=1 search shares the joint memo entry, counters: %+v", st)
	}
}

// TestExhaustiveArmSkipsMemo: the oracle arms must not read or write the
// winner memo, or they would stop being independent evidence.
func TestExhaustiveArmSkipsMemo(t *testing.T) {
	pl := newArm(t, topology.EnvRoCE, 4, 1, true)
	for i := 0; i < 2; i++ {
		if _, err := pl.SearchPlan(); err != nil {
			t.Fatal(err)
		}
	}
	st := pl.Engine.SearchStats()
	if st.MemoHits != 0 || st.Pruned != 0 {
		t.Fatalf("exhaustive arm used the fast path: %+v", st)
	}
}

// TestFullRecomputeEngineImpliesExhaustive: the engine-level oracle knob
// must route searches down the exhaustive path without touching the
// planner flag.
func TestFullRecomputeEngineImpliesExhaustive(t *testing.T) {
	topo, err := topology.Env(topology.EnvRoCE, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlannerOn(engine.New(engine.Config{FullRecompute: true}), topo, model.Group(1).Spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.SearchPlan(); err != nil {
		t.Fatal(err)
	}
	st := pl.Engine.SearchStats()
	if st.Pruned != 0 || st.MemoHits != 0 {
		t.Fatalf("full-recompute engine still pruned or memoized: %+v", st)
	}
	if st.Simulated == 0 {
		t.Fatalf("no cells simulated: %+v", st)
	}
}

// TestSearchErrorIdenticalWhenNothingFeasible: when the space is empty
// both arms must fail with the same message.
func TestSearchErrorIdenticalWhenNothingFeasible(t *testing.T) {
	topo, err := topology.Env(topology.EnvInfiniBand, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Group(1).Spec
	spec.GlobalBatch = 7 // prime, far below any feasible micro-batching grid
	pruned, err := NewPlannerOn(engine.New(engine.Config{}), topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewPlannerOn(engine.New(engine.Config{}), topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Exhaustive = true
	_, prunedErr := pruned.SearchPlan()
	_, oracleErr := oracle.SearchPlan()
	if prunedErr == nil || oracleErr == nil {
		t.Fatalf("expected both arms to fail: pruned %v, exhaustive %v", prunedErr, oracleErr)
	}
	if prunedErr.Error() != oracleErr.Error() {
		t.Fatalf("error text diverged: %q vs %q", prunedErr, oracleErr)
	}
}
