package core

import (
	"encoding/json"
	"fmt"

	"holmes/internal/engine"
	"holmes/internal/model"
	"holmes/internal/trainer"
)

// Search-winner memo: a successful searchBest records its winning
// degrees on the engine's shared plan cache, keyed by everything the
// search outcome depends on — topology fingerprint, model spec,
// framework, the resolved options, and the candidate space. A later
// identical search replays the winner with a single Plan simulation
// instead of walking the space again; because planning is deterministic,
// the replayed Plan (and its Report) is bit-identical to the one the
// original search returned. The oracle arms (engine FullRecompute,
// Planner.Exhaustive) bypass the memo entirely.
//
// Unlike the fleet scheduler's plan-cache entries — live planner
// pointers, inherently process-local — the memo entry is a pair of small
// integers derived deterministically from its key, which is what makes
// it the one plan-cache entry kind worth persisting across process
// restarts (SearchMemoCodec, DESIGN.md decision 11).

// searchMemoKey is the package-private plan-cache key (cannot collide
// with other packages' key types).
type searchMemoKey struct {
	fp    string
	spec  model.Spec
	fw    trainer.Framework
	opts  string
	space string
}

// searchMemoVal is the winning degrees of one search.
type searchMemoVal struct {
	T, P int
}

// searchMemoKey builds the memo key for this planner and candidate
// space. The resolved options are rendered to a deterministic signature
// (Options holds a slice, so the struct itself is not comparable).
func (pl *Planner) searchMemoKey(space string) searchMemoKey {
	opt := trainer.DefaultOptions(pl.Framework)
	if pl.Opt != nil {
		opt = *pl.Opt
	}
	return searchMemoKey{
		fp:    pl.Topo.Fingerprint(),
		spec:  pl.Spec,
		fw:    pl.Framework,
		opts:  fmt.Sprintf("%+v", opt),
		space: space,
	}
}

// searchMemoJSON is the wire form of one memo entry.
type searchMemoJSON struct {
	Fingerprint string     `json:"fingerprint"`
	Spec        model.Spec `json:"spec"`
	Framework   string     `json:"framework"`
	Options     string     `json:"options"`
	Space       string     `json:"space"`
}

type searchMemoValJSON struct {
	Tensor   int `json:"tensor"`
	Pipeline int `json:"pipeline"`
}

// searchMemoKind tags memo entries in snapshots.
const searchMemoKind = "core.search-winner"

type searchMemoCodec struct{}

// SearchMemoCodec returns the engine.PlanCodec that persists search-
// winner memo entries (the snapshot/warm-start path of holmes-serve).
func SearchMemoCodec() engine.PlanCodec { return searchMemoCodec{} }

func (searchMemoCodec) Kind() string { return searchMemoKind }

func (searchMemoCodec) Encode(key, val any) (engine.PlanSnapshotEntry, bool) {
	k, ok := key.(searchMemoKey)
	if !ok {
		return engine.PlanSnapshotEntry{}, false
	}
	v, ok := val.(searchMemoVal)
	if !ok {
		return engine.PlanSnapshotEntry{}, false
	}
	kb, err := json.Marshal(searchMemoJSON{
		Fingerprint: k.fp, Spec: k.spec, Framework: string(k.fw),
		Options: k.opts, Space: k.space,
	})
	if err != nil {
		return engine.PlanSnapshotEntry{}, false
	}
	vb, err := json.Marshal(searchMemoValJSON{Tensor: v.T, Pipeline: v.P})
	if err != nil {
		return engine.PlanSnapshotEntry{}, false
	}
	return engine.PlanSnapshotEntry{Kind: searchMemoKind, Key: kb, Val: vb}, true
}

func (searchMemoCodec) Decode(e engine.PlanSnapshotEntry) (any, any, string, error) {
	var kj searchMemoJSON
	if err := json.Unmarshal(e.Key, &kj); err != nil {
		return nil, nil, "", fmt.Errorf("core: bad memo key: %w", err)
	}
	var vj searchMemoValJSON
	if err := json.Unmarshal(e.Val, &vj); err != nil {
		return nil, nil, "", fmt.Errorf("core: bad memo value: %w", err)
	}
	if kj.Fingerprint == "" || kj.Space == "" {
		return nil, nil, "", fmt.Errorf("core: memo entry missing fingerprint or space")
	}
	if vj.Tensor < 1 || vj.Pipeline < 1 {
		return nil, nil, "", fmt.Errorf("core: memo entry has non-positive degrees (t=%d, p=%d)", vj.Tensor, vj.Pipeline)
	}
	key := searchMemoKey{
		fp: kj.Fingerprint, spec: kj.Spec, fw: trainer.Framework(kj.Framework),
		opts: kj.Options, space: kj.Space,
	}
	return key, searchMemoVal{T: vj.Tensor, P: vj.Pipeline}, kj.Fingerprint, nil
}
