package core

import (
	"strings"
	"testing"

	"holmes/internal/comm"
	"holmes/internal/model"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

func planner(t *testing.T, topo *topology.Topology, group int) *Planner {
	t.Helper()
	pl, err := NewPlanner(topo, model.Group(group).Spec)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestPlanHybridKeepsDPOnRDMA(t *testing.T) {
	pl := planner(t, topology.HybridEnv(8), 3)
	plan, err := pl.Plan(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range plan.World.DPGroups {
		if !g.NIC.IsRDMA() {
			t.Fatalf("DP group %d on %v in hybrid plan", g.Index, g.NIC)
		}
	}
	if plan.Report.TFLOPS <= 0 {
		t.Fatal("no simulated performance")
	}
}

func TestSearchPipelinePicksFeasibleBest(t *testing.T) {
	pl := planner(t, topology.HybridEnv(4), 1)
	best, err := pl.SearchPipeline(1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Degrees.P < 1 || best.Degrees.P > 4 {
		t.Fatalf("searched p = %d", best.Degrees.P)
	}
	// The chosen plan beats (or equals) the p=1 baseline, which collapses
	// DP to Ethernet on a hybrid topology.
	base, err := pl.Plan(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Speedup(base) < 1 {
		t.Fatalf("search picked a worse plan: speedup %.2f", best.Speedup(base))
	}
	// On a hybrid topology the search must not pick p=1 (which forces all
	// DP over Ethernet).
	if best.Degrees.P == 1 {
		t.Fatal("search kept the Ethernet-collapsing p=1 plan")
	}
}

func TestCommunicationCostDPDominates(t *testing.T) {
	pl := planner(t, topology.HybridEnv(4), 1)
	plan, err := pl.Plan(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	costs, err := pl.CommunicationCost(plan)
	if err != nil {
		t.Fatal(err)
	}
	if costs[comm.DP] <= 0 || costs[comm.PP] <= 0 {
		t.Fatalf("degenerate costs: %v", costs)
	}
	// The paper's premise: data parallelism carries far more traffic than
	// pipeline parallelism, which is why DP gets the RDMA NICs.
	if costs[comm.DP] < costs[comm.PP] {
		t.Fatalf("DP traffic (%.2g) should exceed PP traffic (%.2g)", costs[comm.DP], costs[comm.PP])
	}
	if costs[comm.TP] != 0 {
		t.Fatalf("t=1 plan has tensor traffic %v", costs[comm.TP])
	}
}

func TestDescribeMentionsKeyFacts(t *testing.T) {
	pl := planner(t, topology.HybridEnv(4), 1)
	plan, err := pl.Plan(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Describe()
	for _, want := range []string{"t=1 p=2", "partition", "TFLOPS"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Describe() missing %q:\n%s", want, s)
		}
	}
}

func TestPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(nil, model.Group(1).Spec); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := NewPlanner(topology.IBEnv(1), model.Spec{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	pl := planner(t, topology.IBEnv(2), 1)
	if _, err := pl.Plan(3, 2); err == nil {
		t.Fatal("non-tiling degrees accepted")
	}
}

func TestHolmesPlanBeatsMegatronLMOnHybrid(t *testing.T) {
	topo := topology.HybridEnv(8)
	spec := model.Group(3).Spec

	holmes := planner(t, topo, 3)
	hPlan, err := holmes.Plan(1, 4)
	if err != nil {
		t.Fatal(err)
	}

	lm, err := NewPlanner(topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	lm.Framework = trainer.MegatronLM
	lmPlan, err := lm.Plan(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := hPlan.Speedup(lmPlan); s < 1.1 {
		t.Fatalf("Holmes speedup over Megatron-LM = %.2f, want > 1.1 (paper: ~1.4)", s)
	}
}
