package core

import (
	"fmt"
	"math"
	"strings"

	"holmes/internal/scenario"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

// Replan is the outcome of fault-aware replanning: the plan the scheduler
// held before the events, what that plan actually delivers while the
// events are live, and the plan a fresh joint (t, p) search finds on the
// post-event effective topology.
type Replan struct {
	// Before is the winning plan on the pristine topology.
	Before *Plan
	// Degraded is Before's degrees re-simulated with the scenario bound
	// to the fabric: what the old plan delivers under the events.
	Degraded trainer.Report
	// After is the winning plan of a fresh search on the effective
	// topology (failed nodes excluded, degraded NICs at reduced rate,
	// joined nodes added).
	After *Plan
	// EffectiveTopo is the topology After was planned on.
	EffectiveTopo *topology.Topology
	// ExcludedNodes lists failed nodes by original global index.
	ExcludedNodes []int
	// At is the instant the timeline was folded at (+Inf = after every
	// event).
	At float64
}

// RecoveryFactor is After's throughput over Degraded's: how much of the
// loss replanning claws back (> 1 means the replan helps).
func (r *Replan) RecoveryFactor() float64 {
	if r.Degraded.Throughput == 0 {
		return math.NaN()
	}
	return r.After.Report.Throughput / r.Degraded.Throughput
}

// RetainedFraction is After's throughput over Before's: how close the
// replanned cluster comes to its pre-fault performance.
func (r *Replan) RetainedFraction() float64 {
	if r.Before.Report.Throughput == 0 {
		return math.NaN()
	}
	return r.After.Report.Throughput / r.Before.Report.Throughput
}

// Describe renders the replan for operators.
func (r *Replan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "before:   t=%d p=%d d=%d  %.2f samples/s\n",
		r.Before.Degrees.T, r.Before.Degrees.P, r.Before.Degrees.D, r.Before.Report.Throughput)
	fmt.Fprintf(&b, "degraded: same plan under scenario  %.2f samples/s\n", r.Degraded.Throughput)
	fmt.Fprintf(&b, "after:    t=%d p=%d d=%d  %.2f samples/s on %d node(s) (excluded %v)\n",
		r.After.Degrees.T, r.After.Degrees.P, r.After.Degrees.D, r.After.Report.Throughput,
		r.EffectiveTopo.NumNodes(), r.ExcludedNodes)
	fmt.Fprintf(&b, "recovery: %.1fx over the degraded plan, %.0f%% of pre-fault throughput\n",
		r.RecoveryFactor(), 100*r.RetainedFraction())
	return b.String()
}

// ReplanOn reacts to a scenario: it searches the pristine plan, measures
// that plan under the scenario's events, folds the timeline at the given
// instant into an effective topology (math.Inf(1) = after every event),
// and re-runs the joint (t, p) search there. All three simulations share
// the planner's engine, so communicator worlds are reused wherever the
// topologies coincide.
func (pl *Planner) ReplanOn(sc *scenario.Scenario, at float64) (*Replan, error) {
	if sc.Empty() {
		return nil, fmt.Errorf("core: replan needs a non-empty scenario")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := sc.ValidateFor(pl.Topo); err != nil {
		return nil, err
	}
	before, err := pl.SearchPlan()
	if err != nil {
		return nil, fmt.Errorf("core: replan baseline: %w", err)
	}
	return pl.ReplanFrom(before, sc, at)
}

// ReplanFrom is ReplanOn for a caller that already holds the pre-event
// plan — the fleet scheduler replans an evicted job from the plan its
// slice was running, so searching the baseline again would only repeat
// work. The plan must have been produced by this planner (same topology
// and spec).
func (pl *Planner) ReplanFrom(before *Plan, sc *scenario.Scenario, at float64) (*Replan, error) {
	if before == nil {
		return nil, fmt.Errorf("core: replan needs the pre-event plan")
	}
	if sc.Empty() {
		return nil, fmt.Errorf("core: replan needs a non-empty scenario")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := sc.ValidateFor(pl.Topo); err != nil {
		return nil, err
	}
	degraded, err := trainer.Simulate(trainer.Config{
		Topo: pl.Topo, Spec: pl.Spec,
		TensorSize: before.Degrees.T, PipelineSize: before.Degrees.P,
		Framework: pl.Framework, Opt: pl.Opt,
		World: before.World, Engine: pl.engine(),
		Scenario: sc,
	})
	if err != nil {
		return nil, fmt.Errorf("core: replan degraded arm: %w", err)
	}
	eff, excluded, err := sc.EffectiveTopology(pl.Topo, at)
	if err != nil {
		return nil, err
	}
	effPl, err := NewPlannerOn(pl.engine(), eff, pl.Spec)
	if err != nil {
		return nil, err
	}
	effPl.Framework = pl.Framework
	effPl.Opt = pl.Opt
	after, err := effPl.SearchPlan()
	if err != nil {
		return nil, fmt.Errorf("core: no feasible plan on the effective topology: %w", err)
	}
	return &Replan{
		Before:        before,
		Degraded:      degraded,
		After:         after,
		EffectiveTopo: eff,
		ExcludedNodes: excluded,
		At:            at,
	}, nil
}
