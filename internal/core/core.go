// Package core is the Holmes scheduler: the paper's primary contribution.
// Given a hardware topology (clusters, nodes, NICs) and a model, it
// produces a training plan that
//
//   - places pipeline-parallel groups across clusters so that every
//     data-parallel group stays NIC-homogeneous (Cross-Cluster Pipeline
//     Parallelism, §3.1);
//   - selects a NIC per communication group (Automatic NIC Selection,
//     §3.2);
//   - divides model layers over stages by effective stage speed
//     (Self-Adapting Pipeline Partition, §3.3, Eq. 4–5);
//   - and can search the pipeline degree by simulating candidates.
package core

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"holmes/internal/comm"
	"holmes/internal/model"
	"holmes/internal/parallel"
	"holmes/internal/partition"
	"holmes/internal/pool"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

// Planner builds and evaluates Holmes training plans.
type Planner struct {
	Topo *topology.Topology
	Spec model.Spec
	// Framework profile; defaults to Holmes.
	Framework trainer.Framework
	// Opt overrides the framework profile (nil = profile defaults).
	Opt *trainer.Options
}

// Plan is one concrete scheduling decision.
type Plan struct {
	Degrees   parallel.Degrees
	Assign    *parallel.Assignment
	World     *comm.World
	Partition partition.Result
	// Report holds the simulated performance of the plan.
	Report trainer.Report
}

// NewPlanner validates inputs and returns a planner.
func NewPlanner(topo *topology.Topology, spec model.Spec) (*Planner, error) {
	if topo == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Planner{Topo: topo, Spec: spec, Framework: trainer.Holmes}, nil
}

// planKey identifies a cached assignment+world: the structural topology
// fingerprint, the fixed degrees, and the NIC-selection policy (the only
// inputs communicator construction depends on).
type planKey struct {
	fp   string
	t, p int
	sel  comm.Selection
}

type planEntry struct {
	assign *parallel.Assignment
	world  *comm.World
}

// planCache memoizes communicator construction across Plan calls — the
// pipeline search and the experiment grids re-plan the same topologies
// over and over. Entries are immutable after insertion (assignments and
// worlds are read-only during simulation), so sharing across goroutines
// is safe.
var planCache = struct {
	sync.Mutex
	m map[planKey]planEntry
}{m: make(map[planKey]planEntry)}

// planCacheMax bounds the cache; on overflow it is simply cleared (the
// working set of any realistic search is far smaller).
const planCacheMax = 512

func cachedWorld(topo *topology.Topology, deg parallel.Degrees, sel comm.Selection) (*parallel.Assignment, *comm.World, error) {
	key := planKey{fp: topo.Fingerprint(), t: deg.T, p: deg.P, sel: sel}
	planCache.Lock()
	e, ok := planCache.m[key]
	planCache.Unlock()
	if ok {
		return e.assign, e.world, nil
	}
	assign, err := parallel.New(topo.NumDevices(), topo.GPUsPerNode, deg)
	if err != nil {
		return nil, nil, err
	}
	world, err := comm.BuildWorld(topo, assign, sel)
	if err != nil {
		return nil, nil, err
	}
	planCache.Lock()
	if len(planCache.m) >= planCacheMax {
		clear(planCache.m)
	}
	planCache.m[key] = planEntry{assign: assign, world: world}
	planCache.Unlock()
	return assign, world, nil
}

// Plan builds the plan for fixed tensor and pipeline degrees, simulating
// one iteration to fill in the performance report. The communicators are
// built (or fetched from the plan cache) once and handed to the
// simulation, which previously rebuilt the identical structures itself.
func (pl *Planner) Plan(t, p int) (*Plan, error) {
	n := pl.Topo.NumDevices()
	deg, err := parallel.TileDegrees(n, t, p)
	if err != nil {
		return nil, err
	}
	opt := trainer.DefaultOptions(pl.Framework)
	if pl.Opt != nil {
		opt = *pl.Opt
	}
	assign, world, err := cachedWorld(pl.Topo, deg, opt.NICSelection)
	if err != nil {
		return nil, err
	}
	rep, err := trainer.Simulate(trainer.Config{
		Topo: pl.Topo, Spec: pl.Spec,
		TensorSize: t, PipelineSize: p,
		Framework: pl.Framework, Opt: pl.Opt,
		World: world,
	})
	if err != nil {
		return nil, err
	}
	return &Plan{
		Degrees:   deg,
		Assign:    assign,
		World:     world,
		Partition: rep.Partition,
		Report:    rep,
	}, nil
}

// SearchPipeline tries every feasible pipeline degree (divisors of the
// node count whose micro-batching works out) at the given tensor degree
// and returns the plan with the highest simulated throughput. Candidates
// simulate concurrently on a bounded worker pool; the winner (and the
// error reported when nothing is feasible) is selected in candidate
// order, so the result is identical to the sequential search.
func (pl *Planner) SearchPipeline(t int) (*Plan, error) {
	n := pl.Topo.NumDevices()
	nodes := pl.Topo.NumNodes()
	var cands []int
	for p := 1; p <= nodes; p++ {
		if n%(t*p) != 0 || pl.Spec.Layers < p {
			continue
		}
		if _, err := pl.Spec.MicroBatches(n / (t * p)); err != nil {
			continue
		}
		cands = append(cands, p)
	}
	plans := make([]*Plan, len(cands))
	errs := make([]error, len(cands))
	pool.Run(len(cands), runtime.NumCPU(), func(i int) {
		plans[i], errs[i] = pl.Plan(t, cands[i])
	})
	var best *Plan
	var firstErr error
	for i := range cands {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		if best == nil || plans[i].Report.Throughput > best.Report.Throughput {
			best = plans[i]
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("core: no feasible pipeline degree for %d devices", n)
	}
	return best, nil
}

// CommunicationCost estimates the per-iteration communication volume each
// group kind moves, in bytes — the objective of §2.3 ("minimize the
// communication costs").
func (pl *Planner) CommunicationCost(plan *Plan) map[comm.Kind]float64 {
	spec := pl.Spec
	d := plan.Degrees.D
	m, err := spec.MicroBatches(d)
	if err != nil {
		m = 1
	}
	out := make(map[comm.Kind]float64)
	// DP: ring all-reduce-equivalent traffic of the gradients per group.
	calib := trainer.DefaultCalibration()
	for _, g := range plan.World.DPGroups {
		stage := plan.Assign.StageOf(g.Ranks[0])
		params := float64(spec.ParamsPerLayer()*int64(plan.Partition.Layers[stage])) / float64(plan.Degrees.T)
		out[comm.DP] += params * (calib.GradBytesPerParam + calib.ParamBytesPerParam) *
			2 * float64(d-1) / float64(d)
	}
	// PP: activations and gradients per micro-batch per hop.
	hopBytes := spec.ActivationMessageBytes() / float64(plan.Degrees.T)
	out[comm.PP] = hopBytes * 2 * float64(plan.Degrees.P-1) * float64(m) * float64(len(plan.World.PPGroups))
	// TP: broadcast/gather of activations per layer (zero when t = 1).
	if plan.Degrees.T > 1 {
		out[comm.TP] = spec.ActivationMessageBytes() * float64(m) * float64(spec.Layers) *
			2 * float64(plan.Degrees.T-1) / float64(plan.Degrees.T) * float64(len(plan.World.TPGroups))
	}
	return out
}

// Describe renders the plan for operators: topology, degrees, per-group
// NIC selections, partition, and predicted performance.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Holmes plan: t=%d p=%d d=%d\n", p.Degrees.T, p.Degrees.P, p.Degrees.D)
	fmt.Fprintf(&b, "partition: %s\n", p.Partition)
	nicCount := map[string]int{}
	for _, g := range p.World.DPGroups {
		nicCount[g.NIC.String()]++
	}
	fmt.Fprintf(&b, "data-parallel groups by NIC: %v\n", nicCount)
	cross := 0
	for _, g := range p.World.PPGroups {
		if g.NIC == topology.Ethernet && g.CrossNode {
			cross++
		}
	}
	fmt.Fprintf(&b, "pipeline groups on Ethernet: %d/%d\n", cross, len(p.World.PPGroups))
	fmt.Fprintf(&b, "predicted: %.1f TFLOPS/GPU, %.2f samples/s (iteration %.2fs)\n",
		p.Report.TFLOPS, p.Report.Throughput, p.Report.IterSeconds)
	return b.String()
}

// Speedup computes relative throughput of this plan against a baseline
// plan (≥ 1 means this plan is faster).
func (p *Plan) Speedup(baseline *Plan) float64 {
	if baseline == nil || baseline.Report.Throughput == 0 {
		return math.NaN()
	}
	return p.Report.Throughput / baseline.Report.Throughput
}
