// Package core is the Holmes scheduler: the paper's primary contribution.
// Given a hardware topology (clusters, nodes, NICs) and a model, it
// produces a training plan that
//
//   - places pipeline-parallel groups across clusters so that every
//     data-parallel group stays NIC-homogeneous (Cross-Cluster Pipeline
//     Parallelism, §3.1);
//   - selects a NIC per communication group (Automatic NIC Selection,
//     §3.2);
//   - divides model layers over stages by effective stage speed
//     (Self-Adapting Pipeline Partition, §3.3, Eq. 4–5);
//   - and can search the tensor and pipeline degrees jointly by
//     simulating candidates.
//
// The planner holds no package-level mutable state: communicator caching
// and the bounded search pool live on an engine.Engine, so concurrent
// planners (and concurrent tenants of one planner) never interfere.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"holmes/internal/comm"
	"holmes/internal/engine"
	"holmes/internal/model"
	"holmes/internal/parallel"
	"holmes/internal/partition"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

// Planner builds and evaluates Holmes training plans.
type Planner struct {
	Topo *topology.Topology
	Spec model.Spec
	// Framework profile; defaults to Holmes.
	Framework trainer.Framework
	// Opt overrides the framework profile (nil = profile defaults).
	Opt *trainer.Options
	// Engine supplies the communicator cache and the search worker pool.
	// Nil falls back to the shared default engine.
	Engine *engine.Engine
	// Exhaustive disables lower-bound pruning and the search-winner memo:
	// every feasible cell is event-simulated, as the historical search
	// did. The engine's FullRecompute knob implies it, so the oracle arm
	// of the differential tests stays one switch.
	Exhaustive bool
}

// Plan is one concrete scheduling decision.
type Plan struct {
	Degrees   parallel.Degrees
	Assign    *parallel.Assignment
	World     *comm.World
	Partition partition.Result
	// Report holds the simulated performance of the plan.
	Report trainer.Report
}

// NewPlanner validates inputs and returns a planner on the shared default
// engine.
func NewPlanner(topo *topology.Topology, spec model.Spec) (*Planner, error) {
	return NewPlannerOn(nil, topo, spec)
}

// NewPlannerOn validates inputs and returns a planner bound to the given
// engine (nil = the shared default engine).
func NewPlannerOn(eng *engine.Engine, topo *topology.Topology, spec model.Spec) (*Planner, error) {
	if topo == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Planner{Topo: topo, Spec: spec, Framework: trainer.Holmes, Engine: eng}, nil
}

// engine returns the planner's engine, defaulting to the shared one.
func (pl *Planner) engine() *engine.Engine {
	if pl.Engine != nil {
		return pl.Engine
	}
	return engine.Default()
}

// Plan builds the plan for fixed tensor and pipeline degrees, simulating
// one iteration to fill in the performance report. The communicators are
// built (or fetched from the engine's LRU cache) once and handed to the
// simulation, which previously rebuilt the identical structures itself.
func (pl *Planner) Plan(t, p int) (*Plan, error) {
	return pl.plan(t, p, 0)
}

// plan is Plan with a branch-and-bound deadline: a positive abortAbove
// makes the simulation stop (trainer.ErrAboveBound) as soon as its
// clock proves the candidate slower than the caller's incumbent.
func (pl *Planner) plan(t, p int, abortAbove float64) (*Plan, error) {
	eng := pl.engine()
	n := pl.Topo.NumDevices()
	deg, err := parallel.TileDegrees(n, t, p)
	if err != nil {
		return nil, err
	}
	opt := trainer.DefaultOptions(pl.Framework)
	if pl.Opt != nil {
		opt = *pl.Opt
	}
	assign, world, err := eng.World(pl.Topo, deg, opt.NICSelection)
	if err != nil {
		return nil, err
	}
	rep, err := trainer.Simulate(trainer.Config{
		Topo: pl.Topo, Spec: pl.Spec,
		TensorSize: t, PipelineSize: p,
		Framework: pl.Framework, Opt: pl.Opt,
		World: world, Engine: eng,
		AbortAbove: abortAbove,
	})
	if err != nil {
		return nil, err
	}
	return &Plan{
		Degrees:   deg,
		Assign:    assign,
		World:     world,
		Partition: rep.Partition,
		Report:    rep,
	}, nil
}

// feasibleTensorDegrees lists every tensor degree the topology admits:
// divisors of the per-node GPU count (tensor groups must stay inside a
// node, §2.4), ascending.
func (pl *Planner) feasibleTensorDegrees() []int {
	g := pl.Topo.GPUsPerNode
	var ts []int
	for t := 1; t <= g; t++ {
		if g%t == 0 {
			ts = append(ts, t)
		}
	}
	return ts
}

// searchSpace applies the shared feasibility pruning once for a set of
// tensor degrees: for every (t, p) with p up to the node count, the
// degrees must tile the device count, the model must have at least p
// layers, and the global batch must micro-batch evenly at the implied
// data-parallel degree. Candidates come back in deterministic input
// order: t ascending, then p ascending.
func (pl *Planner) searchSpace(ts []int) []parallel.Degrees {
	n := pl.Topo.NumDevices()
	nodes := pl.Topo.NumNodes()
	g := pl.Topo.GPUsPerNode
	var cells []parallel.Degrees
	for _, t := range ts {
		if t < 1 || t > g || g%t != 0 {
			continue
		}
		for p := 1; p <= nodes; p++ {
			if n%(t*p) != 0 || pl.Spec.Layers < p {
				continue
			}
			if _, err := pl.Spec.MicroBatches(n / (t * p)); err != nil {
				continue
			}
			cells = append(cells, parallel.Degrees{T: t, P: p, D: n / (t * p)})
		}
	}
	return cells
}

// SearchSpace returns the full joint (t, p) candidate set SearchPlan will
// explore, in its deterministic evaluation order. Exposed so callers (the
// serve API, tests) can report or bound the search without running it.
func (pl *Planner) SearchSpace() []parallel.Degrees {
	return pl.searchSpace(pl.feasibleTensorDegrees())
}

// searchBest selects the winner over the candidate cells — highest
// simulated throughput, ties broken by input order. The default path
// orders candidates by their admissible throughput upper bound
// (trainer.LowerBound — no event simulation, no world construction),
// simulates in bound order on the engine pool, and skips any candidate
// whose bound cannot beat the incumbent; the winner of a successful
// search is memoized on the engine's plan cache so identical searches
// replay with one simulation. The exhaustive scan stays behind the
// engine's FullRecompute knob (and Planner.Exhaustive) as the
// bit-identical oracle: winner, Report, and error semantics are
// identical because the bound is admissible (a pruned cell's true
// throughput can never exceed its bound, hence never beat the final
// incumbent), pruning only begins once an incumbent exists (the all-fail
// case still simulates every cell, so the first-by-input-order error is
// preserved), and the incumbent fold — better throughput, or equal
// throughput at a smaller input index — is order-independent.
func (pl *Planner) searchBest(cells []parallel.Degrees, space string) (*Plan, error) {
	eng := pl.engine()
	if eng.FullRecompute() || pl.Exhaustive {
		return pl.searchExhaustive(cells)
	}
	memoKey := pl.searchMemoKey(space)
	if v, ok := eng.Plan(memoKey); ok {
		if win, ok := v.(searchMemoVal); ok {
			if plan, err := pl.Plan(win.T, win.P); err == nil {
				eng.NoteSearch(1, len(cells)-1, 0, true)
				return plan, nil
			}
			// A memo entry that no longer replays (a snapshot from an
			// incompatible build) is ignored; the full search below
			// overwrites it.
		}
	}

	// Throughput upper bounds; a cell whose bound errors is simulated
	// unconditionally so its error surfaces exactly as the oracle's.
	ubs := make([]float64, len(cells))
	for i, c := range cells {
		ub, err := trainer.ThroughputUpperBound(trainer.Config{
			Topo: pl.Topo, Spec: pl.Spec,
			TensorSize: c.T, PipelineSize: c.P,
			Framework: pl.Framework, Opt: pl.Opt,
		})
		if err != nil {
			ub = math.Inf(1)
		}
		ubs[i] = ub
	}
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ubs[order[a]] > ubs[order[b]] })

	plans := make([]*Plan, len(cells))
	errs := make([]error, len(cells))
	simulated := make([]bool, len(cells))
	aborted := make([]bool, len(cells))
	bestThr, bestIdx := math.Inf(-1), -1
	bestIter := 0.0
	// beats reports whether simulating cell i could still change the
	// winner: its bound must beat the incumbent's throughput, or tie it
	// from a smaller input index (the incumbent's throughput only rises
	// and its index at equal throughput only falls, so a cell pruned now
	// stays prunable).
	beats := func(i int) bool {
		return bestIdx < 0 || ubs[i] > bestThr || (ubs[i] == bestThr && i < bestIdx)
	}
	width := eng.Concurrency()
	if width < 1 {
		width = 1
	}
	wave := make([]int, 0, width)
	for next := 0; next < len(order); {
		wave = wave[:0]
		for next < len(order) && len(wave) < width {
			i := order[next]
			next++
			if beats(i) {
				wave = append(wave, i)
			}
		}
		if len(wave) == 0 {
			continue
		}
		// With an incumbent in hand, candidates stop simulating the
		// moment their clock passes its iteration time (branch-and-bound
		// on the event clock). A candidate aborted against any incumbent
		// stays lost against every later one — the incumbent's iteration
		// time only falls — so winner identity is preserved; ties at
		// exactly the deadline simulate to completion and tie-break by
		// input index as usual. No incumbent (or an all-fail search)
		// means no deadline, so error semantics stay the oracle's.
		deadline := 0.0
		if bestIdx >= 0 {
			deadline = bestIter
		}
		eng.Go(len(wave), func(k int) {
			i := wave[k]
			plans[i], errs[i] = pl.plan(cells[i].T, cells[i].P, deadline)
		})
		for _, i := range wave {
			if errors.Is(errs[i], trainer.ErrAboveBound) {
				aborted[i] = true
				continue
			}
			simulated[i] = true
			if errs[i] != nil {
				continue
			}
			thr := plans[i].Report.Throughput
			if bestIdx < 0 || thr > bestThr || (thr == bestThr && i < bestIdx) {
				bestThr, bestIdx = thr, i
				bestIter = plans[i].Report.IterSeconds
			}
		}
	}
	simCount, abortCount := 0, 0
	for i := range cells {
		if simulated[i] {
			simCount++
		}
		if aborted[i] {
			abortCount++
		}
	}
	eng.NoteSearch(simCount, len(cells)-simCount-abortCount, abortCount, false)

	if bestIdx < 0 {
		// No incumbent ever formed, so nothing was pruned: every cell
		// simulated and failed. Report the first error by input order,
		// exactly as the oracle does.
		for i := range cells {
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return nil, fmt.Errorf("core: no feasible plan for %d devices", pl.Topo.NumDevices())
	}
	eng.StorePlan(memoKey, searchMemoVal{T: cells[bestIdx].T, P: cells[bestIdx].P})
	return plans[bestIdx], nil
}

// searchExhaustive simulates every candidate concurrently on the
// engine's bounded worker pool and selects the winner by scanning
// results in input order (strict throughput improvement to move), so the
// outcome is identical to a sequential search no matter how the pool
// schedules. The error reported when nothing succeeds is the first by
// input order. This is the reference arm the pruned search is
// differential-tested against.
func (pl *Planner) searchExhaustive(cells []parallel.Degrees) (*Plan, error) {
	plans := make([]*Plan, len(cells))
	errs := make([]error, len(cells))
	eng := pl.engine()
	eng.Go(len(cells), func(i int) {
		plans[i], errs[i] = pl.Plan(cells[i].T, cells[i].P)
	})
	eng.NoteSearch(len(cells), 0, 0, false)
	var best *Plan
	var firstErr error
	for i := range cells {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		if best == nil || plans[i].Report.Throughput > best.Report.Throughput {
			best = plans[i]
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("core: no feasible plan for %d devices", pl.Topo.NumDevices())
	}
	return best, nil
}

// SearchPipeline tries every feasible pipeline degree at the given tensor
// degree and returns the plan with the highest simulated throughput —
// the historical single-axis search, now a restriction of SearchPlan's
// joint space to one tensor degree.
func (pl *Planner) SearchPipeline(t int) (*Plan, error) {
	cells := pl.searchSpace([]int{t})
	if len(cells) == 0 {
		return nil, fmt.Errorf("core: no feasible pipeline degree for %d devices", pl.Topo.NumDevices())
	}
	return pl.searchBest(cells, fmt.Sprintf("t=%d", t))
}

// SearchPlan searches tensor and pipeline degrees jointly: every feasible
// (t, p) cell — t over the divisors of the per-node GPU count, p over the
// node count — shares one feasibility pruning pass, reuses communicator
// worlds through the engine cache, and simulates concurrently on the
// engine pool. The winner is selected in deterministic input order
// (t ascending, then p ascending; strict throughput improvement to move),
// so concurrent and sequential searches return the same plan.
func (pl *Planner) SearchPlan() (*Plan, error) {
	cells := pl.SearchSpace()
	if len(cells) == 0 {
		return nil, fmt.Errorf("core: no feasible (t, p) for %d devices", pl.Topo.NumDevices())
	}
	return pl.searchBest(cells, "joint")
}

// CommunicationCost estimates the per-iteration communication volume each
// group kind moves, in bytes — the objective of §2.3 ("minimize the
// communication costs"). It errors when the plan's data-parallel degree
// cannot micro-batch the global batch: silently assuming m=1 (the old
// behaviour) skewed the DP/PP estimates by the full micro-batch count.
func (pl *Planner) CommunicationCost(plan *Plan) (map[comm.Kind]float64, error) {
	spec := pl.Spec
	d := plan.Degrees.D
	m, err := spec.MicroBatches(d)
	if err != nil {
		return nil, fmt.Errorf("core: communication cost undefined: %w", err)
	}
	out := make(map[comm.Kind]float64)
	// DP: ring all-reduce-equivalent traffic of the gradients per group.
	calib := trainer.DefaultCalibration()
	for _, g := range plan.World.DPGroups {
		stage := plan.Assign.StageOf(g.Ranks[0])
		params := float64(spec.ParamsPerLayer()*int64(plan.Partition.Layers[stage])) / float64(plan.Degrees.T)
		out[comm.DP] += params * (calib.GradBytesPerParam + calib.ParamBytesPerParam) *
			2 * float64(d-1) / float64(d)
	}
	// PP: activations and gradients per micro-batch per hop.
	hopBytes := spec.ActivationMessageBytes() / float64(plan.Degrees.T)
	out[comm.PP] = hopBytes * 2 * float64(plan.Degrees.P-1) * float64(m) * float64(len(plan.World.PPGroups))
	// TP: broadcast/gather of activations per layer (zero when t = 1).
	if plan.Degrees.T > 1 {
		out[comm.TP] = spec.ActivationMessageBytes() * float64(m) * float64(spec.Layers) *
			2 * float64(plan.Degrees.T-1) / float64(plan.Degrees.T) * float64(len(plan.World.TPGroups))
	}
	return out, nil
}

// Describe renders the plan for operators: topology, degrees, per-group
// NIC selections, partition, and predicted performance.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Holmes plan: t=%d p=%d d=%d\n", p.Degrees.T, p.Degrees.P, p.Degrees.D)
	fmt.Fprintf(&b, "partition: %s\n", p.Partition)
	nicCount := map[string]int{}
	for _, g := range p.World.DPGroups {
		nicCount[g.NIC.String()]++
	}
	fmt.Fprintf(&b, "data-parallel groups by NIC: %v\n", nicCount)
	cross := 0
	for _, g := range p.World.PPGroups {
		if g.NIC == topology.Ethernet && g.CrossNode {
			cross++
		}
	}
	fmt.Fprintf(&b, "pipeline groups on Ethernet: %d/%d\n", cross, len(p.World.PPGroups))
	fmt.Fprintf(&b, "predicted: %.1f TFLOPS/GPU, %.2f samples/s (iteration %.2fs)\n",
		p.Report.TFLOPS, p.Report.Throughput, p.Report.IterSeconds)
	return b.String()
}

// Speedup computes relative throughput of this plan against a baseline
// plan (≥ 1 means this plan is faster).
func (p *Plan) Speedup(baseline *Plan) float64 {
	if baseline == nil || baseline.Report.Throughput == 0 {
		return math.NaN()
	}
	return p.Report.Throughput / baseline.Report.Throughput
}
