package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"holmes/internal/sim"
	"holmes/internal/topology"
)

func newFab(t *testing.T, topo *topology.Topology) (*sim.Engine, *Fabric) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(eng, topo, DefaultParams())
}

func TestEffectiveClass(t *testing.T) {
	topo := topology.HybridEnv(4) // 2 IB nodes + 2 RoCE nodes, 8 GPUs each
	_, fab := newFab(t, topo)
	// Same node -> Intra regardless of the request.
	if got := fab.EffectiveClass(0, 1, Ether); got != Intra {
		t.Fatalf("same-node class = %v, want Intra", got)
	}
	// Same cluster, different nodes, RDMA wanted -> RDMA.
	if got := fab.EffectiveClass(0, 8, RDMA); got != RDMA {
		t.Fatalf("intra-cluster class = %v, want RDMA", got)
	}
	// Cross-cluster RDMA request degrades to Ether (IB vs RoCE incompatible).
	if got := fab.EffectiveClass(0, 16, RDMA); got != Ether {
		t.Fatalf("cross-cluster class = %v, want Ether", got)
	}
	// Explicit Ether stays Ether across nodes.
	if got := fab.EffectiveClass(0, 8, Ether); got != Ether {
		t.Fatalf("ether class = %v, want Ether", got)
	}
}

func TestEthernetOnlyDegradesRDMA(t *testing.T) {
	topo := topology.EthernetEnv(2)
	_, fab := newFab(t, topo)
	if got := fab.EffectiveClass(0, 8, RDMA); got != Ether {
		t.Fatalf("RDMA on ethernet cluster = %v, want Ether", got)
	}
}

func TestSingleFlowDuration(t *testing.T) {
	topo := topology.IBEnv(2)
	eng, fab := newFab(t, topo)
	p := DefaultParams()
	// IB node: 4×200 Gb/s ×0.93 = 93 GB/s aggregate.
	wantBW := 800.0 / 8 * 1e9 * p.IBEff
	bytes := 1e9
	var done sim.Time = -1
	fab.StartFlow(0, 8, bytes, RDMA, func() { done = eng.Now() })
	eng.Run()
	want := p.IBLatency + bytes/wantBW
	if math.Abs(done-want) > 1e-9 {
		t.Fatalf("flow took %v, want %v", done, want)
	}
}

func TestTransferTimeMatchesLoneFlow(t *testing.T) {
	topo := topology.HybridEnv(4)
	eng, _ := newFab(t, topo)
	cases := []struct {
		src, dst int
		class    Class
	}{
		{0, 1, Intra},  // NVLink
		{0, 8, RDMA},   // IB
		{16, 24, RDMA}, // RoCE
		{0, 16, RDMA},  // degrades to cross-cluster Ether
		{0, 8, Ether},  // intra-cluster Ether
	}
	for _, tc := range cases {
		eng.Reset()
		fab2 := New(eng, topo, DefaultParams())
		var done sim.Time = -1
		fab2.StartFlow(tc.src, tc.dst, 5e8, tc.class, func() { done = eng.Now() })
		eng.Run()
		want := fab2.TransferTime(tc.src, tc.dst, 5e8, tc.class)
		if math.Abs(done-want) > 1e-9 {
			t.Fatalf("%d->%d %v: flow %v, analytic %v", tc.src, tc.dst, tc.class, done, want)
		}
	}
}

func TestFairSharingTwoFlows(t *testing.T) {
	topo := topology.IBEnv(2)
	eng, fab := newFab(t, topo)
	// Two flows out of node 0 to node 1 share the node-0 RDMA out link:
	// each should get half the bandwidth, so equal-size flows finish
	// together at ~2× the lone-flow time.
	bytes := 1e9
	var t1, t2 sim.Time
	fab.StartFlow(0, 8, bytes, RDMA, func() { t1 = eng.Now() })
	fab.StartFlow(1, 9, bytes, RDMA, func() { t2 = eng.Now() })
	eng.Run()
	lone := fab.TransferTime(0, 8, bytes, RDMA) - fab.Latency(0, 8, RDMA)
	if math.Abs(t1-t2) > 1e-9 {
		t.Fatalf("equal flows finished apart: %v vs %v", t1, t2)
	}
	want := 2 * lone
	if math.Abs(t1-want)/want > 0.01 {
		t.Fatalf("shared flow took %v, want ~%v", t1, want)
	}
}

func TestShortFlowFinishesFirstAndLongSpeedsUp(t *testing.T) {
	topo := topology.IBEnv(2)
	eng, fab := newFab(t, topo)
	var shortDone, longDone sim.Time
	fab.StartFlow(0, 8, 1e8, RDMA, func() { shortDone = eng.Now() })
	fab.StartFlow(1, 9, 1e9, RDMA, func() { longDone = eng.Now() })
	eng.Run()
	if shortDone >= longDone {
		t.Fatalf("short flow (%v) must beat long flow (%v)", shortDone, longDone)
	}
	// The long flow gets the full link after the short one leaves, so it
	// must beat the always-shared bound (1e9 at half rate) and lose to the
	// never-shared bound.
	bw := fab.PairBandwidth(1, 9, RDMA)
	neverShared := 1e9 / bw
	alwaysShared := 1e9 / (bw / 2)
	if longDone <= neverShared || longDone >= alwaysShared {
		t.Fatalf("long flow %v outside (%v, %v)", longDone, neverShared, alwaysShared)
	}
}

func TestCrossClusterUsesEthernetBandwidth(t *testing.T) {
	topo := topology.HybridEnv(4)
	_, fab := newFab(t, topo)
	rdmaBW := fab.PairBandwidth(0, 8, RDMA)
	crossBW := fab.PairBandwidth(0, 16, RDMA) // degrades to Ether
	if crossBW >= rdmaBW {
		t.Fatalf("cross-cluster bw %v must be far below RDMA bw %v", crossBW, rdmaBW)
	}
	p := DefaultParams()
	wantEth := 25.0 / 8 * 1e9 * p.EthEff
	if math.Abs(crossBW-wantEth) > 1 {
		t.Fatalf("cross-cluster bw = %v, want %v", crossBW, wantEth)
	}
}

func TestRoCEBandwidthBelowIB(t *testing.T) {
	_, fabIB := newFab(t, topology.IBEnv(2))
	_, fabRo := newFab(t, topology.RoCEEnv(2))
	ib := fabIB.PairBandwidth(0, 8, RDMA)
	ro := fabRo.PairBandwidth(0, 8, RDMA)
	if ro >= ib {
		t.Fatalf("RoCE pair bw %v must be below IB %v (2 vs 4 NICs and lower efficiency)", ro, ib)
	}
	if ratio := ro / ib; ratio > 0.6 {
		t.Fatalf("RoCE/IB ratio %v implausibly high", ratio)
	}
}

func TestInterClusterTrunkCaps(t *testing.T) {
	topo := topology.HybridEnv(4)
	eng := sim.NewEngine()
	p := DefaultParams()
	p.InterClusterGbps = 10 // tighter than the 25 Gb/s node NICs
	fab := New(eng, topo, p)
	var done sim.Time
	fab.StartFlow(0, 16, 1e9, Ether, func() { done = eng.Now() })
	eng.Run()
	trunkBW := 10.0 / 8 * 1e9 * p.EthEff
	want := 2*p.EthLatency + 1e9/trunkBW
	if math.Abs(done-want) > 1e-6 {
		t.Fatalf("trunk-capped flow took %v, want %v", done, want)
	}
}

func TestZeroByteFlowIsLatencyOnly(t *testing.T) {
	topo := topology.IBEnv(2)
	eng, fab := newFab(t, topo)
	var done sim.Time = -1
	fab.StartFlow(0, 8, 0, RDMA, func() { done = eng.Now() })
	eng.Run()
	if math.Abs(done-fab.Latency(0, 8, RDMA)) > 1e-12 {
		t.Fatalf("zero-byte flow took %v, want latency %v", done, fab.Latency(0, 8, RDMA))
	}
}

func TestNegativeFlowPanics(t *testing.T) {
	topo := topology.IBEnv(1)
	_, fab := newFab(t, topo)
	defer func() {
		if recover() == nil {
			t.Fatal("negative flow size did not panic")
		}
	}()
	fab.StartFlow(0, 1, -1, Intra, nil)
}

// Property: total bytes delivered per unit time never exceeds any link's
// capacity; equivalently n equal flows over one bottleneck finish in n× the
// lone time (work conservation + fairness).
func TestWorkConservationProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		topo := topology.IBEnv(2)
		eng := sim.NewEngine()
		fab := New(eng, topo, DefaultParams())
		bytes := 2e8
		var last sim.Time
		for i := 0; i < n; i++ {
			fab.StartFlow(i, 8+i, bytes, RDMA, func() {
				if eng.Now() > last {
					last = eng.Now()
				}
			})
		}
		eng.Run()
		bw := fab.NodeBandwidth(0, RDMA)
		ideal := float64(n) * bytes / bw
		lat := fab.Latency(0, 8, RDMA)
		// Finish no earlier than ideal (capacity bound) and no later than
		// ideal plus latency slack.
		return last >= ideal-1e-9 && last <= ideal+lat+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyOrdering(t *testing.T) {
	topo := topology.HybridEnv(4)
	_, fab := newFab(t, topo)
	intra := fab.Latency(0, 1, Intra)
	ib := fab.Latency(0, 8, RDMA)
	roce := fab.Latency(16, 24, RDMA)
	ethIn := fab.Latency(0, 8, Ether)
	ethX := fab.Latency(0, 16, Ether)
	if !(intra <= ib && ib < roce && roce < ethIn && ethIn <= ethX) {
		t.Fatalf("latency ordering violated: intra=%v ib=%v roce=%v eth=%v ethX=%v",
			intra, ib, roce, ethIn, ethX)
	}
}

// Cross-cluster Ethernet latency doubles exactly when the path traverses
// an inter-cluster trunk — the same f.trunks lookup path() makes. The
// historical code doubled unconditionally, so a trunkless (non-blocking)
// cluster pair paid for a hop its link path never took.
func TestCrossClusterLatencyMatchesTrunkPath(t *testing.T) {
	topo := topology.HybridEnv(4)

	// Trunkless arm: the default params build no inter-cluster trunk, so
	// the cross-cluster path is out-link + in-link only — same as the
	// intra-cluster path, and the α term must agree.
	eng := sim.NewEngine()
	fab := New(eng, topo, DefaultParams())
	if fab.HasTrunk(0, 1) {
		t.Fatal("default params built a trunk")
	}
	in, cross := fab.Latency(0, 8, Ether), fab.Latency(0, 16, Ether)
	if cross != in {
		t.Fatalf("trunkless cross-cluster latency %v != intra-cluster %v (paths are identical)", cross, in)
	}

	// Trunked arm: with an inter-cluster cap the path gains a trunk link
	// and the latency doubles.
	p := DefaultParams()
	p.InterClusterGbps = 20
	fabT := New(sim.NewEngine(), topo, p)
	if !fabT.HasTrunk(0, 1) {
		t.Fatal("trunk params built no trunk")
	}
	inT, crossT := fabT.Latency(0, 8, Ether), fabT.Latency(0, 16, Ether)
	if crossT != 2*inT {
		t.Fatalf("trunked cross-cluster latency %v, want double the intra-cluster %v", crossT, inT)
	}
}
