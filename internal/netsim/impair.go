package netsim

// Packet-impairment state.
//
// The fluid model makes real-world packet impairments cheap to carry:
// added delay is an additive term on the per-message α, jitter is a
// seeded random draw added per flow start, and loss/corruption collapse
// into a multiplicative efficiency factor — lost or mangled packets are
// retransmitted, so they consume wire capacity without delivering
// goodput (remaining bytes inflate by 1/efficiency) and stretch the α
// term by the same factor (each round trip of a handshake retries with
// probability 1-efficiency).
//
// Impairments are keyed per (node, class, direction) so a timeline can
// target, say, only the inbound Ethernet side of one node, mirroring the
// per-direction rules of tc/netem front ends. They are orthogonal to
// link capacities: DegradeNode/FailNode/RestoreNode never touch them,
// and ClearImpairments never touches capacities.

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist names a jitter distribution, matching the menu of tc/netem (and
// netsim-in-a-box's V2 API): uniform, normal, pareto.
type Dist string

// Jitter distributions. The empty string defaults to uniform.
const (
	DistUniform Dist = "uniform"
	DistNormal  Dist = "normal"
	DistPareto  Dist = "pareto"
)

// KnownDist reports whether d names a supported jitter distribution.
func KnownDist(d Dist) bool {
	switch d {
	case "", DistUniform, DistNormal, DistPareto:
		return true
	}
	return false
}

// Impairment is the packet-impairment state of one (node, class,
// direction): an added per-message latency, a jitter amplitude with its
// distribution, and a goodput efficiency in (0, 1]. The zero value means
// "no impairment"; Efficiency 0 reads as 1 (lossless) so callers can set
// only the fields they script.
type Impairment struct {
	// ExtraLatency is added to the α term of every flow crossing the
	// impaired direction, in seconds.
	ExtraLatency float64
	// JitterSeconds is the jitter amplitude: each flow start draws an
	// extra latency sample from JitterDist scaled by this amplitude.
	// Zero disables jitter.
	JitterSeconds float64
	// JitterDist selects the draw's distribution ("" = uniform).
	JitterDist Dist
	// Efficiency is the goodput fraction in (0, 1] after loss,
	// corruption, duplication, and reordering stalls; 0 reads as 1.
	Efficiency float64
}

// eff normalizes the zero value to lossless.
func (imp Impairment) eff() float64 {
	if imp.Efficiency <= 0 {
		return 1
	}
	return imp.Efficiency
}

// IsZero reports whether the impairment does nothing.
func (imp Impairment) IsZero() bool {
	return imp.ExtraLatency == 0 && imp.JitterSeconds == 0 && imp.eff() == 1
}

// impairKey addresses one impaired link direction.
type impairKey struct {
	node    int
	class   Class
	inbound bool
}

// SetImpairment installs (or replaces) the impairment of one node's
// class/direction. A zero impairment clears the entry. In-flight flows
// keep the α and efficiency they were admitted with — like a real
// network, impairment changes affect packets (here: flows) that start
// after the change.
func (f *Fabric) SetImpairment(nodeIdx int, class Class, inbound bool, imp Impairment) error {
	if nodeIdx < 0 || nodeIdx >= len(f.nodeEthOut) {
		return fmt.Errorf("netsim: node %d out of range", nodeIdx)
	}
	if imp.ExtraLatency < 0 || math.IsNaN(imp.ExtraLatency) || math.IsInf(imp.ExtraLatency, 0) {
		return fmt.Errorf("netsim: bad extra latency %v", imp.ExtraLatency)
	}
	if imp.JitterSeconds < 0 || math.IsNaN(imp.JitterSeconds) || math.IsInf(imp.JitterSeconds, 0) {
		return fmt.Errorf("netsim: bad jitter amplitude %v", imp.JitterSeconds)
	}
	if !KnownDist(imp.JitterDist) {
		return fmt.Errorf("netsim: unknown jitter distribution %q", string(imp.JitterDist))
	}
	if imp.Efficiency < 0 || imp.Efficiency > 1 || math.IsNaN(imp.Efficiency) {
		return fmt.Errorf("netsim: efficiency %v outside (0,1]", imp.Efficiency)
	}
	key := impairKey{node: nodeIdx, class: class, inbound: inbound}
	if imp.IsZero() {
		delete(f.impair, key)
		return nil
	}
	if f.impair == nil {
		f.impair = make(map[impairKey]Impairment)
	}
	f.impair[key] = imp
	return nil
}

// ImpairmentOf returns the current impairment of one node's
// class/direction (the zero value when unimpaired).
func (f *Fabric) ImpairmentOf(nodeIdx int, class Class, inbound bool) Impairment {
	return f.impair[impairKey{node: nodeIdx, class: class, inbound: inbound}]
}

// ClearImpairments removes every impairment of one node, all classes and
// directions. Link capacities are untouched.
func (f *Fabric) ClearImpairments(nodeIdx int) {
	for key := range f.impair {
		if key.node == nodeIdx {
			delete(f.impair, key)
		}
	}
}

// SeedJitter installs the PRNG source for jitter draws. Scenario
// runtimes own the seed so replays of the same timeline are
// bit-identical; without an explicit seed the fabric falls back to a
// fixed source, so direct fabric users are deterministic too.
func (f *Fabric) SeedJitter(seed int64) {
	f.jitterRng = rand.New(rand.NewSource(seed))
}

// rng returns the jitter source, creating the fixed-seed default on
// first use. No draw ever happens while the fabric is unimpaired, so
// impairment-free runs stay bit-identical to runs on a fabric that never
// heard of jitter.
func (f *Fabric) rng() *rand.Rand {
	if f.jitterRng == nil {
		f.jitterRng = rand.New(rand.NewSource(1))
	}
	return f.jitterRng
}

// pathImpair folds the impairments a (src, dst, class) transfer
// crosses — the source node's outbound side and the destination node's
// inbound side — into one added latency and one efficiency. class must
// already be resolved via EffectiveClass. Intra-node transfers consult
// only the node's outbound entry (one link, one node).
func (f *Fabric) pathImpair(src, dst int, class Class) (extra, eff float64) {
	eff = 1
	if len(f.impair) == 0 {
		return 0, 1
	}
	sn, dn := f.Topo.Device(src).Node, f.Topo.Device(dst).Node
	out := f.impair[impairKey{node: sn, class: class, inbound: false}]
	extra += out.ExtraLatency
	eff *= out.eff()
	if class != Intra {
		in := f.impair[impairKey{node: dn, class: class, inbound: true}]
		extra += in.ExtraLatency
		eff *= in.eff()
	}
	return extra, eff
}

// pathEff is pathImpair's efficiency alone.
func (f *Fabric) pathEff(src, dst int, class Class) float64 {
	_, eff := f.pathImpair(src, dst, class)
	return eff
}

// sampleJitter draws the jitter of one flow start: one sample per
// impaired side of the path, summed. Draw order is the deterministic
// flow-start order of the event engine, so a fixed seed yields
// bit-identical replays.
func (f *Fabric) sampleJitter(src, dst int, class Class) float64 {
	if len(f.impair) == 0 {
		return 0
	}
	sn, dn := f.Topo.Device(src).Node, f.Topo.Device(dst).Node
	j := f.drawJitter(f.impair[impairKey{node: sn, class: class, inbound: false}])
	if class != Intra {
		j += f.drawJitter(f.impair[impairKey{node: dn, class: class, inbound: true}])
	}
	return j
}

// drawJitter samples one impairment's jitter distribution, scaled by the
// amplitude. Uniform and normal are symmetric around zero (a packet can
// be early relative to the shifted mean); pareto is one-sided with mean
// ≈ amplitude, modelling the heavy late tail of bufferbloat spikes.
func (f *Fabric) drawJitter(imp Impairment) float64 {
	a := imp.JitterSeconds
	if a <= 0 {
		return 0
	}
	rng := f.rng()
	switch imp.JitterDist {
	case DistNormal:
		return a * rng.NormFloat64()
	case DistPareto:
		// Inverse-CDF of a Lomax (Pareto II) tail with shape 2: mean a,
		// unbounded late spikes, never early.
		u := rng.Float64()
		return a * (1/math.Sqrt(1-u) - 1)
	default: // uniform ±a
		return a * (2*rng.Float64() - 1)
	}
}

// trunkBetween resolves the inter-cluster trunk link for an unordered
// cluster pair (nil when the fabric is non-blocking between them).
func (f *Fabric) trunkBetween(c1, c2 int) *Link {
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	return f.trunks[[2]int{c1, c2}]
}

// HasTrunk reports whether a capacity-limited trunk exists between two
// clusters.
func (f *Fabric) HasTrunk(c1, c2 int) bool { return f.trunkBetween(c1, c2) != nil }

// TrunkBandwidth returns the trunk's current capacity in bytes/s, false
// when the pair is non-blocking.
func (f *Fabric) TrunkBandwidth(c1, c2 int) (float64, bool) {
	t := f.trunkBetween(c1, c2)
	if t == nil {
		return 0, false
	}
	return t.Capacity, true
}

// DegradeTrunk scales the inter-cluster trunk between two clusters by
// factor, returning the previous capacity so callers can restore it.
// Scenario partitions cut the trunk to a residual trickle this way; a
// fabric without trunks between the pair errors, because there is no
// link to cut.
func (f *Fabric) DegradeTrunk(c1, c2 int, factor float64) (prev float64, err error) {
	if factor <= 0 || factor > 1 {
		return 0, fmt.Errorf("netsim: trunk degradation factor %v outside (0,1]", factor)
	}
	t := f.trunkBetween(c1, c2)
	if t == nil {
		return 0, fmt.Errorf("netsim: no trunk between clusters %d and %d", c1, c2)
	}
	prev = t.Capacity
	t.Capacity *= factor
	f.scheduleLinkRebalance(t)
	return prev, nil
}

// RestoreTrunk sets the trunk back to an explicit capacity (as returned
// by DegradeTrunk).
func (f *Fabric) RestoreTrunk(c1, c2 int, capacity float64) error {
	if capacity < 0 {
		return fmt.Errorf("netsim: negative trunk capacity")
	}
	t := f.trunkBetween(c1, c2)
	if t == nil {
		return fmt.Errorf("netsim: no trunk between clusters %d and %d", c1, c2)
	}
	t.Capacity = capacity
	f.scheduleLinkRebalance(t)
	return nil
}

// AbortFlow cancels a flow without firing its completion callback: links
// are released, remaining traffic is discarded, and the rebalancer
// returns the freed bandwidth to the survivors. Aborting a flow still in
// its latency term (not yet admitted) prevents the admission; aborting a
// finished or already-aborted flow is a no-op. Scenario streams use this
// to cut a background chunk off at its deadline.
func (f *Fabric) AbortFlow(fl *Flow) {
	if fl == nil || fl.aborted {
		return
	}
	fl.aborted = true
	fl.onDone = nil
	if fl.doneEv != nil {
		fl.doneEv.Cancel()
		fl.doneEv = nil
	}
	if fl.admitted {
		for i := 0; i < fl.nPath; i++ {
			f.unlink(fl.path[i], fl.pathPos[i])
		}
		fl.admitted = false
		f.inFlight--
		fl.remaining = 0
		f.scheduleRebalance(fl)
	}
}
