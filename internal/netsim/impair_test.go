package netsim

import (
	"math"
	"testing"

	"holmes/internal/sim"
	"holmes/internal/topology"
)

func TestSetImpairmentValidation(t *testing.T) {
	topo := topology.IBEnv(2)
	_, fab := newFab(t, topo)
	bad := []Impairment{
		{ExtraLatency: -1},
		{ExtraLatency: math.NaN()},
		{JitterSeconds: -1e-6},
		{JitterSeconds: 1e-6, JitterDist: "zipf"},
		{Efficiency: -0.1},
		{Efficiency: 1.5},
	}
	for _, imp := range bad {
		if err := fab.SetImpairment(0, Ether, false, imp); err == nil {
			t.Fatalf("impairment %+v accepted", imp)
		}
	}
	if err := fab.SetImpairment(99, Ether, false, Impairment{ExtraLatency: 1e-6}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := fab.SetImpairment(0, Ether, false, Impairment{ExtraLatency: 1e-6, Efficiency: 0.5}); err != nil {
		t.Fatalf("valid impairment rejected: %v", err)
	}
	if got := fab.ImpairmentOf(0, Ether, false); got.ExtraLatency != 1e-6 || got.Efficiency != 0.5 {
		t.Fatalf("ImpairmentOf = %+v", got)
	}
	// Setting the zero value clears the entry.
	if err := fab.SetImpairment(0, Ether, false, Impairment{}); err != nil {
		t.Fatal(err)
	}
	if got := fab.ImpairmentOf(0, Ether, false); !got.IsZero() {
		t.Fatalf("zero set left %+v installed", got)
	}
}

func TestImpairmentFoldsIntoLatency(t *testing.T) {
	topo := topology.IBEnv(2)
	_, fab := newFab(t, topo)
	base := fab.Latency(0, 8, RDMA)
	const extra, eff = 5e-6, 0.8
	if err := fab.SetImpairment(0, RDMA, false, Impairment{ExtraLatency: extra, Efficiency: eff}); err != nil {
		t.Fatal(err)
	}
	want := (base + extra) / eff
	if got := fab.Latency(0, 8, RDMA); math.Abs(got-want) > 1e-15 {
		t.Fatalf("impaired latency %v, want %v", got, want)
	}
	// The reverse direction only crosses node 0's inbound side, which is
	// clean — latency there is untouched.
	if got := fab.Latency(8, 0, RDMA); got != base {
		t.Fatalf("reverse latency %v, want pristine %v", got, base)
	}
	// Inbound impairment on the destination stacks with the source's
	// outbound one.
	if err := fab.SetImpairment(1, RDMA, true, Impairment{ExtraLatency: extra}); err != nil {
		t.Fatal(err)
	}
	want = (base + 2*extra) / eff
	if got := fab.Latency(0, 8, RDMA); math.Abs(got-want) > 1e-15 {
		t.Fatalf("stacked latency %v, want %v", got, want)
	}
	fab.ClearImpairments(0)
	fab.ClearImpairments(1)
	if got := fab.Latency(0, 8, RDMA); got != base {
		t.Fatalf("cleared latency %v, want %v", got, base)
	}
}

func TestLossDeratesGoodput(t *testing.T) {
	topo := topology.IBEnv(2)
	eng, fab := newFab(t, topo)
	const eff = 0.5
	if err := fab.SetImpairment(0, RDMA, false, Impairment{Efficiency: eff}); err != nil {
		t.Fatal(err)
	}
	bytes := 1e9
	var done sim.Time = -1
	fab.StartFlow(0, 8, bytes, RDMA, func() { done = eng.Now() })
	eng.Run()
	// Half the packets are retransmissions: the wire carries bytes/eff.
	bw := fab.NodeBandwidth(0, RDMA)
	want := fab.Latency(0, 8, RDMA) + bytes/eff/bw
	if math.Abs(done-want) > 1e-9 {
		t.Fatalf("lossy flow took %v, want %v", done, want)
	}
	// TransferTime's analytic answer agrees with the flow.
	if an := fab.TransferTime(0, 8, bytes, RDMA); math.Abs(an-want) > 1e-9 {
		t.Fatalf("TransferTime %v, want %v", an, want)
	}
}

func TestJitterDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []sim.Time {
		topo := topology.IBEnv(2)
		eng := sim.NewEngine()
		fab := New(eng, topo, DefaultParams())
		fab.SeedJitter(seed)
		if err := fab.SetImpairment(0, RDMA, false, Impairment{JitterSeconds: 2e-6, JitterDist: DistNormal}); err != nil {
			t.Fatal(err)
		}
		var ends []sim.Time
		for i := 0; i < 8; i++ {
			fab.StartFlow(0, 8, 1e8, RDMA, func() { ends = append(ends, eng.Now()) })
		}
		eng.Run()
		return ends
	}
	a, b, c := run(7), run(7), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at flow %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestJitterDistributionsDraw(t *testing.T) {
	for _, d := range []Dist{DistUniform, DistNormal, DistPareto, ""} {
		topo := topology.IBEnv(2)
		eng := sim.NewEngine()
		fab := New(eng, topo, DefaultParams())
		fab.SeedJitter(3)
		if err := fab.SetImpairment(0, RDMA, false, Impairment{JitterSeconds: 1e-5, JitterDist: d}); err != nil {
			t.Fatal(err)
		}
		base := fab.TransferTime(0, 8, 1e6, RDMA)
		distinct := false
		for i := 0; i < 16; i++ {
			var done sim.Time
			fab.StartFlow(0, 8, 1e6, RDMA, func() { done = eng.Now() })
			eng.Run()
			if d == DistPareto && done < base-1e-12 {
				t.Fatalf("pareto jitter drew early: %v < %v", done, base)
			}
			if math.Abs(done-base) > 1e-12 {
				distinct = true
			}
		}
		if !distinct {
			t.Fatalf("dist %q never perturbed the flow", string(d))
		}
	}
}

// The impairment-free fabric must never touch its PRNG: runs on a fabric
// that was seeded but never impaired are bit-identical to a virgin one.
func TestNoImpairmentNoDraws(t *testing.T) {
	run := func(seed bool) []sim.Time {
		topo := topology.HybridEnv(4)
		eng := sim.NewEngine()
		fab := New(eng, topo, DefaultParams())
		if seed {
			fab.SeedJitter(99)
		}
		var ends []sim.Time
		for i := 0; i < 6; i++ {
			fab.StartFlow(i, 16+i, 1e8, Ether, func() { ends = append(ends, eng.Now()) })
		}
		eng.Run()
		return ends
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded-but-unimpaired fabric diverged at flow %d", i)
		}
	}
}

func TestAbortFlowFreesBandwidth(t *testing.T) {
	topo := topology.IBEnv(2)
	eng, fab := newFab(t, topo)
	bytes := 1e9
	var victimDone, survivorDone sim.Time = -1, -1
	victim := fab.StartFlow(0, 8, bytes, RDMA, func() { victimDone = eng.Now() })
	fab.StartFlow(1, 9, bytes, RDMA, func() { survivorDone = eng.Now() })
	// Abort the victim halfway through the shared bottleneck.
	lone := fab.TransferTime(0, 8, bytes, RDMA)
	eng.After(lone, func() { fab.AbortFlow(victim) })
	eng.Run()
	if victimDone != -1 {
		t.Fatal("aborted flow fired its callback")
	}
	if survivorDone < 0 {
		t.Fatal("survivor never finished")
	}
	// Survivor shares for `lone` seconds, then runs alone: strictly faster
	// than always-shared, slower than never-shared.
	bw := fab.PairBandwidth(1, 9, RDMA)
	neverShared := fab.Latency(1, 9, RDMA) + bytes/bw
	alwaysShared := fab.Latency(1, 9, RDMA) + bytes/(bw/2)
	if survivorDone <= neverShared || survivorDone >= alwaysShared {
		t.Fatalf("survivor %v outside (%v, %v)", survivorDone, neverShared, alwaysShared)
	}
	// Double abort is a no-op.
	fab.AbortFlow(victim)
}

func TestAbortBeforeAdmissionCancelsFlow(t *testing.T) {
	topo := topology.IBEnv(2)
	eng, fab := newFab(t, topo)
	var done bool
	fl := fab.StartFlow(0, 8, 1e9, RDMA, func() { done = true })
	// Abort during the latency term, before any bandwidth is claimed.
	fab.AbortFlow(fl)
	eng.Run()
	if done {
		t.Fatal("aborted flow completed")
	}
	if n := fab.InFlight(); n != 0 {
		t.Fatalf("%d flows still in flight", n)
	}
}

func TestTrunkDegradeRestore(t *testing.T) {
	topo := topology.HybridEnv(4)
	eng := sim.NewEngine()
	p := DefaultParams()
	p.InterClusterGbps = 10
	fab := New(eng, topo, p)
	orig, ok := fab.TrunkBandwidth(0, 1)
	if !ok {
		t.Fatal("no trunk built")
	}
	prev, err := fab.DegradeTrunk(0, 1, 0.25)
	if err != nil || prev != orig {
		t.Fatalf("DegradeTrunk = (%v, %v), want (%v, nil)", prev, err, orig)
	}
	if got, _ := fab.TrunkBandwidth(1, 0); math.Abs(got-orig*0.25) > 1e-9 {
		t.Fatalf("degraded trunk bw %v, want %v (order-independent lookup)", got, orig*0.25)
	}
	if _, err := fab.DegradeTrunk(0, 1, 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
	if err := fab.RestoreTrunk(0, 1, orig); err != nil {
		t.Fatal(err)
	}
	if got, _ := fab.TrunkBandwidth(0, 1); got != orig {
		t.Fatalf("restored trunk bw %v, want %v", got, orig)
	}
	// Trunkless pair: both ops error.
	fab2 := New(sim.NewEngine(), topo, DefaultParams())
	if _, err := fab2.DegradeTrunk(0, 1, 0.5); err == nil {
		t.Fatal("DegradeTrunk on trunkless pair accepted")
	}
	if err := fab2.RestoreTrunk(0, 1, 1); err == nil {
		t.Fatal("RestoreTrunk on trunkless pair accepted")
	}
}
