package netsim

import (
	"math"
	"math/rand"
	"testing"

	"holmes/internal/sim"
	"holmes/internal/topology"
)

// The incremental rebalancer must be observationally equivalent to the
// retained full-recompute oracle (Params.FullRecompute): every flow of an
// arbitrary arrival/departure schedule completes at the same virtual time
// in both modes, up to floating-point noise from the different drain
// granularity.

type schedFlow struct {
	at       float64
	src, dst int
	bytes    float64
	class    Class
}

func genSchedule(rng *rand.Rand, n, ranks int) []schedFlow {
	classes := []Class{Intra, RDMA, Ether}
	fs := make([]schedFlow, n)
	for i := range fs {
		src := rng.Intn(ranks)
		dst := rng.Intn(ranks)
		for dst == src {
			dst = (dst + 1) % ranks
		}
		bytes := 0.0
		if rng.Intn(12) > 0 { // keep some zero-byte control messages in the mix
			bytes = math.Pow(10, 4+5*rng.Float64()) // 10 KB .. 1 GB
		}
		fs[i] = schedFlow{
			at:    rng.Float64() * 0.02,
			src:   src,
			dst:   dst,
			bytes: bytes,
			class: classes[rng.Intn(len(classes))],
		}
	}
	return fs
}

// replay runs the schedule on a fresh fabric and returns each flow's
// completion time. With fault set, node 0's RDMA links degrade mid-run and
// recover later, exercising the capacity-change rebalance path.
func replay(topo *topology.Topology, p Params, fs []schedFlow, fault bool) []float64 {
	eng := sim.NewEngine()
	fab := New(eng, topo, p)
	done := make([]float64, len(fs))
	for i := range fs {
		i, sf := i, fs[i]
		eng.At(sf.at, func() {
			fab.StartFlow(sf.src, sf.dst, sf.bytes, sf.class, func() { done[i] = eng.Now() })
		})
	}
	if fault {
		eng.At(0.005, func() {
			prevOut, prevIn, err := fab.DegradeNode(0, RDMA, 0.25)
			if err != nil {
				panic(err)
			}
			eng.At(0.015, func() {
				if err := fab.RestoreNode(0, RDMA, prevOut, prevIn); err != nil {
					panic(err)
				}
			})
		})
	}
	eng.Run()
	return done
}

func timesClose(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-12+1e-9*scale
}

func TestIncrementalMatchesFullRecomputeOracle(t *testing.T) {
	topos := map[string]*topology.Topology{
		"hybrid4": topology.HybridEnv(4),
		"eth2":    topology.EthernetEnv(2),
		"ib2":     topology.IBEnv(2),
	}
	for name, topo := range topos {
		for seed := int64(0); seed < 15; seed++ {
			rng := rand.New(rand.NewSource(seed))
			fs := genSchedule(rng, 10+rng.Intn(60), topo.NumDevices())
			p := DefaultParams()
			if seed%3 == 1 {
				// Exercise the per-flow cap (capped-freeze branch).
				p.EthPerFlowBytesPerSec = 1.5e9
			}
			if seed%4 == 2 {
				p.InterClusterGbps = 20
			}
			fault := seed%2 == 1
			inc := replay(topo, p, fs, fault)
			p.FullRecompute = true
			full := replay(topo, p, fs, fault)
			for i := range fs {
				if full[i] == 0 || inc[i] == 0 {
					t.Fatalf("%s seed %d flow %d never completed (inc=%v full=%v)",
						name, seed, i, inc[i], full[i])
				}
				if !timesClose(inc[i], full[i]) {
					t.Fatalf("%s seed %d flow %d (%+v): incremental finished at %.15g, oracle at %.15g",
						name, seed, i, fs[i], inc[i], full[i])
				}
			}
		}
	}
}

// The coalesced rebalance must leave no pending work behind: after a run
// drains, every link's flow list is empty and no flow is active.
func TestFabricDrainsCompletely(t *testing.T) {
	topo := topology.HybridEnv(4)
	rng := rand.New(rand.NewSource(7))
	fs := genSchedule(rng, 80, topo.NumDevices())
	eng := sim.NewEngine()
	fab := New(eng, topo, DefaultParams())
	for _, sf := range fs {
		sf := sf
		eng.At(sf.at, func() { fab.StartFlow(sf.src, sf.dst, sf.bytes, sf.class, nil) })
	}
	eng.Run()
	if fab.InFlight() != 0 {
		t.Fatalf("%d flows still active after drain", fab.InFlight())
	}
	for _, l := range fab.links {
		if l.ActiveFlows() != 0 {
			t.Fatalf("link %s still carries %d flows", l.Name, l.ActiveFlows())
		}
	}
}

// Rebalancing must be allocation-free on the hot path: steady-state flow
// churn over a fixed fabric allocates only the flows themselves and their
// completion events.
func TestRebalanceAllocationBound(t *testing.T) {
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := New(eng, topo, DefaultParams())
	// Warm up scratch slices.
	run := func(n int) {
		for i := 0; i < n; i++ {
			fab.StartFlow(i%8, 8+(i+1)%8, 1e8, RDMA, nil)
		}
		eng.Run()
	}
	run(32)
	avg := testing.AllocsPerRun(20, func() { run(16) })
	// One flow struct + one latency event + one completion event per flow,
	// plus heap growth slack; the old map-based rebalancer cost hundreds.
	if perFlow := avg / 16; perFlow > 8 {
		t.Fatalf("rebalance allocates too much: %.1f allocs/flow", perFlow)
	}
}
