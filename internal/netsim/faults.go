package netsim

import "fmt"

// Fault injection.
//
// The paper assumes stable links and always-on devices and names fault
// handling as future work (§1, Limitations). The simulator nevertheless
// supports degrading and restoring links mid-run so schedulers can be
// stress-tested: rates of in-flight flows are re-balanced immediately,
// exactly as a real congestion event would slow transfers already on the
// wire.

// linkFor resolves a node's directional link of a class.
func (f *Fabric) linkFor(nodeIdx int, class Class, inbound bool) *Link {
	switch class {
	case Intra:
		return f.nodeIntra[nodeIdx]
	case RDMA:
		if inbound {
			return f.nodeRDMAIn[nodeIdx]
		}
		return f.nodeRDMAOut[nodeIdx]
	default:
		if inbound {
			return f.nodeEthIn[nodeIdx]
		}
		return f.nodeEthOut[nodeIdx]
	}
}

// DegradeNode scales both directions of a node's links of the given class
// by factor (0 < factor ≤ 1; e.g. 0.5 halves the bandwidth). In-flight
// flows adjust immediately. Returns the previous capacities so callers
// can restore them.
func (f *Fabric) DegradeNode(nodeIdx int, class Class, factor float64) (prevOut, prevIn float64, err error) {
	if nodeIdx < 0 || nodeIdx >= len(f.nodeEthOut) {
		return 0, 0, fmt.Errorf("netsim: node %d out of range", nodeIdx)
	}
	if factor <= 0 || factor > 1 {
		return 0, 0, fmt.Errorf("netsim: degradation factor %v outside (0,1]", factor)
	}
	out := f.linkFor(nodeIdx, class, false)
	in := f.linkFor(nodeIdx, class, true)
	prevOut, prevIn = out.Capacity, in.Capacity
	out.Capacity *= factor
	in.Capacity *= factor
	f.scheduleLinkRebalance(out, in)
	return prevOut, prevIn, nil
}

// RestoreNode sets both directions of a node's links of the class back to
// explicit capacities (as returned by DegradeNode).
func (f *Fabric) RestoreNode(nodeIdx int, class Class, capOut, capIn float64) error {
	if nodeIdx < 0 || nodeIdx >= len(f.nodeEthOut) {
		return fmt.Errorf("netsim: node %d out of range", nodeIdx)
	}
	if capOut < 0 || capIn < 0 {
		return fmt.Errorf("netsim: negative capacity")
	}
	out := f.linkFor(nodeIdx, class, false)
	in := f.linkFor(nodeIdx, class, true)
	out.Capacity = capOut
	in.Capacity = capIn
	f.scheduleLinkRebalance(out, in)
	return nil
}

// FailResidual is the fraction of original capacity a failed link keeps.
// Never exactly zero: a zero-capacity link would stall flows forever
// rather than erroring, and the fluid model has no notion of aborted
// transfers. The residual keeps flows finishing — extremely slowly —
// which is how a flapping-but-alive link behaves. Exported so scenario
// folding can predict a failed or flapped link's capacity exactly.
const FailResidual = 1e-6

// FailNode reduces a node's links of a class to the residual trickle.
func (f *Fabric) FailNode(nodeIdx int, class Class) (prevOut, prevIn float64, err error) {
	return f.DegradeNode(nodeIdx, class, FailResidual)
}

// NodeCaps reads the current capacities of a node's links of a class,
// both directions, without changing them.
func (f *Fabric) NodeCaps(nodeIdx int, class Class) (out, in float64, err error) {
	if nodeIdx < 0 || nodeIdx >= len(f.nodeEthOut) {
		return 0, 0, fmt.Errorf("netsim: node %d out of range", nodeIdx)
	}
	return f.linkFor(nodeIdx, class, false).Capacity, f.linkFor(nodeIdx, class, true).Capacity, nil
}
