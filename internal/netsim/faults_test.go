package netsim

import (
	"math"
	"testing"

	"holmes/internal/sim"
	"holmes/internal/topology"
)

func TestDegradeSlowsInFlightFlow(t *testing.T) {
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := New(eng, topo, DefaultParams())
	bytes := 1e9
	bw := fab.PairBandwidth(0, 8, RDMA)
	lone := bytes / bw

	var done sim.Time
	fab.StartFlow(0, 8, bytes, RDMA, func() { done = eng.Now() })
	// Halve the sender's RDMA bandwidth when the flow is halfway through.
	eng.At(lone/2, func() {
		if _, _, err := fab.DegradeNode(0, RDMA, 0.5); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	// The flow starts moving after the latency term, so at T = lone/2 it
	// has transferred (lone/2 − lat) worth; the rest runs at half rate:
	// done = lone/2 + 2·(lone/2 + lat) − ... = 1.5·lone + 2·lat.
	want := lone/2 + lone + 2*fab.Latency(0, 8, RDMA)
	if math.Abs(done-want) > 1e-6 {
		t.Fatalf("degraded flow took %v, want %v", done, want)
	}
}

func TestRestoreRecoversBandwidth(t *testing.T) {
	topo := topology.RoCEEnv(2)
	eng := sim.NewEngine()
	fab := New(eng, topo, DefaultParams())
	prevOut, prevIn, err := fab.DegradeNode(0, RDMA, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	degraded := fab.PairBandwidth(0, 8, RDMA)
	if math.Abs(degraded-prevOut*0.25) > 1 {
		t.Fatalf("degraded bw %v, want %v", degraded, prevOut*0.25)
	}
	if err := fab.RestoreNode(0, RDMA, prevOut, prevIn); err != nil {
		t.Fatal(err)
	}
	if got := fab.PairBandwidth(0, 8, RDMA); math.Abs(got-prevOut) > 1 {
		t.Fatalf("restore gave %v, want %v", got, prevOut)
	}
}

func TestFailNodeLeavesResidualTrickle(t *testing.T) {
	topo := topology.IBEnv(2)
	eng := sim.NewEngine()
	fab := New(eng, topo, DefaultParams())
	if _, _, err := fab.FailNode(1, RDMA); err != nil {
		t.Fatal(err)
	}
	bw := fab.PairBandwidth(0, 8, RDMA)
	if bw <= 0 {
		t.Fatal("failed node must keep a residual trickle, not zero")
	}
	if bw > 1e6 {
		t.Fatalf("failed node bandwidth %v still usable", bw)
	}
	// A flow across the failed link still completes in virtual time.
	fired := false
	fab.StartFlow(0, 8, 1e3, RDMA, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("flow across failed link never completed")
	}
}

func TestDegradeValidation(t *testing.T) {
	topo := topology.IBEnv(1)
	fab := New(sim.NewEngine(), topo, DefaultParams())
	if _, _, err := fab.DegradeNode(9, RDMA, 0.5); err == nil {
		t.Fatal("bad node accepted")
	}
	if _, _, err := fab.DegradeNode(0, RDMA, 0); err == nil {
		t.Fatal("zero factor accepted")
	}
	if _, _, err := fab.DegradeNode(0, RDMA, 1.5); err == nil {
		t.Fatal("factor > 1 accepted")
	}
	if err := fab.RestoreNode(0, RDMA, -1, 1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if err := fab.RestoreNode(5, RDMA, 1, 1); err == nil {
		t.Fatal("bad node restore accepted")
	}
}

func TestDegradeEthernetAffectsCrossCluster(t *testing.T) {
	topo := topology.HybridEnv(4)
	eng := sim.NewEngine()
	fab := New(eng, topo, DefaultParams())
	before := fab.PairBandwidth(0, 16, Ether)
	if _, _, err := fab.DegradeNode(0, Ether, 0.5); err != nil {
		t.Fatal(err)
	}
	after := fab.PairBandwidth(0, 16, Ether)
	if math.Abs(after-before/2) > 1 {
		t.Fatalf("cross-cluster bw %v after degrade, want %v", after, before/2)
	}
	// RDMA links of the same node are untouched.
	if got := fab.PairBandwidth(0, 8, RDMA); got != fab.NodeBandwidth(0, RDMA) {
		t.Fatal("RDMA bandwidth changed by Ethernet degrade")
	}
}
