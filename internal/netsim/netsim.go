// Package netsim is a flow-level network simulator for the heterogeneous
// NIC environments of the paper.
//
// It substitutes for the physical fabric of the authors' testbed (200 Gb/s
// InfiniBand ×4 per IB node, 200 Gb/s RoCE ×2 per RoCE node, 25 Gb/s
// Ethernet everywhere, NVLink inside nodes). Transfers are modelled as
// fluid flows over a graph of capacitated links with max-min fair
// bandwidth sharing and a per-technology message latency (the α in the
// classic α–β cost model); rates are recomputed whenever a flow starts or
// finishes, and flow completions drive the discrete-event engine.
//
// Rebalancing is incremental: a flow arrival or departure recomputes the
// progressive-filling allocation only over the connected component of
// links and flows it touches (flows elsewhere keep their rates, which a
// max-min allocation leaves unchanged across components), simultaneous
// events coalesce into one pass, and all bookkeeping lives in reusable
// scratch slices so the hot path performs no per-event allocation. The
// original from-scratch recomputation is retained behind
// Params.FullRecompute as the reference oracle.
package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"holmes/internal/sim"
	"holmes/internal/topology"
)

// Class selects which network a transfer rides on. The Holmes Automatic
// NIC Selection component (§3.2) chooses a class per communication group.
type Class int

const (
	// Intra uses the intra-node interconnect (NVLink or PCIe).
	Intra Class = iota
	// RDMA uses the node's RDMA NIC pool (InfiniBand or RoCE). Falls back
	// to Ethernet when the endpoints do not share a compatible RDMA fabric.
	RDMA
	// Ether uses the commodity Ethernet NIC.
	Ether
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Intra:
		return "Intra"
	case RDMA:
		return "RDMA"
	case Ether:
		return "Ether"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Params holds technology constants. Bandwidth efficiencies capture
// protocol overhead and (for RoCE) PFC/congestion-control losses observed
// in practice; latencies are per-message α terms.
type Params struct {
	// Efficiency of each NIC technology: achievable fraction of line rate.
	IBEff   float64
	RoCEEff float64
	EthEff  float64
	// Per-message latency in seconds by technology.
	IBLatency   float64
	RoCELatency float64
	EthLatency  float64
	// Intra-node link bandwidth (bytes/s per direction) and latency.
	NVLinkBytesPerSec float64
	PCIeBytesPerSec   float64
	IntraLatency      float64
	// InterClusterGbps caps the Ethernet trunk between each pair of
	// clusters; zero means non-blocking (node NICs are the constraint).
	InterClusterGbps float64
	// InterClusterGbpsPerNode adds trunk capacity proportional to the
	// smaller cluster's node count: each node contributes an uplink to
	// the inter-cluster path. Combined with InterClusterGbps when both
	// are set.
	InterClusterGbpsPerNode float64
	// EthPerFlowBytesPerSec caps a single Ethernet flow's rate, modelling
	// the single-stream throughput limit of TCP/socket transports on
	// commodity NICs (NCCL's socket path tops out well below line rate on
	// one connection). Zero means uncapped.
	EthPerFlowBytesPerSec float64
	// FullRecompute disables the incremental rebalancer: every arrival or
	// departure recomputes max-min rates for the whole fabric from
	// scratch, as the original implementation did. Much slower; kept as
	// the reference oracle the incremental path is tested against.
	FullRecompute bool
}

// DefaultParams reflects measured characteristics of the technologies in
// the paper's testbed. RoCE efficiency is markedly lower than InfiniBand:
// lossless-Ethernet flow control (PFC) and DCQCN congestion control leave a
// 200 Gb/s RoCE NIC well short of an equally-rated IB NIC, which together
// with the 2-vs-4 NIC count reproduces the IB/RoCE gap in Table 1.
func DefaultParams() Params {
	return Params{
		IBEff:                 0.93,
		RoCEEff:               0.80,
		EthEff:                0.88,
		IBLatency:             2e-6,
		RoCELatency:           5e-6,
		EthLatency:            30e-6,
		NVLinkBytesPerSec:     250e9, // A100 NVLink, usable per direction
		PCIeBytesPerSec:       25e9,  // PCIe gen4 x16 effective
		IntraLatency:          1.5e-6,
		InterClusterGbps:      0, // non-blocking by default
		EthPerFlowBytesPerSec: 0, // uncapped (NCCL multi-socket reaches line rate)
	}
}

// maxPathLinks is the longest path the fabric produces: Ethernet out-link,
// in-link, and an optional inter-cluster trunk.
const maxPathLinks = 3

// Link is one capacitated, directed fluid link.
type Link struct {
	Name string
	// Capacity in bytes per second.
	Capacity float64

	id    int
	flows []*Flow // active flows, swap-removed on departure

	// Rebalance scratch, meaningful only inside Fabric.rebalance.
	residual  float64
	nUnfrozen int
	seen      int  // epoch mark: collected into the current region
	dirty     bool // queued as a seed for the pending rebalance
}

// ActiveFlows reports how many flows currently traverse the link.
func (l *Link) ActiveFlows() int { return len(l.flows) }

// Flow is one in-flight transfer.
type Flow struct {
	Src, Dst int // global ranks
	Class    Class
	Bytes    float64

	path      [maxPathLinks]*Link
	pathPos   [maxPathLinks]int // this flow's index in each path link's flows
	nPath     int
	remaining float64
	rate      float64
	cap       float64 // per-flow rate ceiling (Inf when uncapped)
	updatedAt sim.Time
	doneEv    *sim.Event
	onDone    func()
	fab       *Fabric
	started   bool
	admitted  bool // currently occupying links

	seen     int // epoch mark: collected into the current region
	frozen   bool
	prevRate float64
	aborted  bool
}

// Rate returns the flow's current fair-share rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Fabric binds a topology to link state and an event engine.
type Fabric struct {
	Topo   *topology.Topology
	Params Params
	eng    *sim.Engine

	// Per-node directional links.
	nodeRDMAOut, nodeRDMAIn []*Link
	nodeEthOut, nodeEthIn   []*Link
	nodeIntra               []*Link
	// Optional inter-cluster trunks, keyed by ordered cluster pair.
	trunks map[[2]int]*Link

	// Packet-impairment state per (node, class, direction), and the
	// seeded source jitter draws come from (see impair.go). Empty and
	// nil until a scenario installs an impairment, so unimpaired runs
	// never consult either.
	impair    map[impairKey]Impairment
	jitterRng *rand.Rand

	links    []*Link // registry of every link, indexed by id
	inFlight int

	// Rebalance machinery: seed links accumulated since the last pass,
	// whether a coalesced pass is already scheduled at the current
	// instant, and reusable region scratch.
	dirtySeeds   []*Link
	rebalPending bool
	epoch        int
	regionLinks  []*Link
	regionFlows  []*Flow
}

// New creates a fabric over topo driven by eng.
func New(eng *sim.Engine, topo *topology.Topology, p Params) *Fabric {
	f := &Fabric{
		Topo:   topo,
		Params: p,
		eng:    eng,
		trunks: make(map[[2]int]*Link),
	}
	for _, n := range topo.Nodes() {
		rdmaBps := n.RDMAGbps() / 8 * 1e9 * f.rdmaEff(n.RDMAType())
		ethBps := n.EthNIC.Gbps / 8 * 1e9 * p.EthEff
		intraBps := p.NVLinkBytesPerSec
		if n.Intra == topology.PCIe {
			intraBps = p.PCIeBytesPerSec
		}
		id := n.Index
		f.nodeRDMAOut = append(f.nodeRDMAOut, f.newLink(fmt.Sprintf("n%d.rdma.out", id), rdmaBps))
		f.nodeRDMAIn = append(f.nodeRDMAIn, f.newLink(fmt.Sprintf("n%d.rdma.in", id), rdmaBps))
		f.nodeEthOut = append(f.nodeEthOut, f.newLink(fmt.Sprintf("n%d.eth.out", id), ethBps))
		f.nodeEthIn = append(f.nodeEthIn, f.newLink(fmt.Sprintf("n%d.eth.in", id), ethBps))
		f.nodeIntra = append(f.nodeIntra, f.newLink(fmt.Sprintf("n%d.nvlink", id), intraBps))
	}
	if p.InterClusterGbps > 0 || p.InterClusterGbpsPerNode > 0 {
		for i := range topo.Clusters {
			for j := i + 1; j < len(topo.Clusters); j++ {
				minNodes := len(topo.Clusters[i].Nodes)
				if n := len(topo.Clusters[j].Nodes); n < minNodes {
					minNodes = n
				}
				gbps := p.InterClusterGbps + p.InterClusterGbpsPerNode*float64(minNodes)
				bps := gbps / 8 * 1e9 * p.EthEff
				f.trunks[[2]int{i, j}] = f.newLink(fmt.Sprintf("trunk.c%d-c%d", i, j), bps)
			}
		}
	}
	return f
}

// newLink registers a link in the fabric-wide registry, assigning it the
// next id. Ids give the rebalancer a canonical processing order.
func (f *Fabric) newLink(name string, capacity float64) *Link {
	l := &Link{Name: name, Capacity: capacity, id: len(f.links)}
	f.links = append(f.links, l)
	return l
}

func (f *Fabric) rdmaEff(t topology.NICType) float64 {
	switch t {
	case topology.InfiniBand:
		return f.Params.IBEff
	case topology.RoCE:
		return f.Params.RoCEEff
	default:
		return f.Params.EthEff
	}
}

// EffectiveClass resolves the class actually usable between two ranks:
// Intra when the ranks share a node; RDMA degrades to Ether when the
// endpoints lack a shared RDMA fabric (different clusters, incompatible
// NICs, or no RDMA at all) — the incompatibility rule of §1.
func (f *Fabric) EffectiveClass(src, dst int, want Class) Class {
	if f.Topo.SameNode(src, dst) {
		return Intra
	}
	if want == RDMA && f.Topo.BestCommonNIC(src, dst).IsRDMA() {
		return RDMA
	}
	return Ether
}

// Latency returns the per-message α term for a (src,dst,class) path:
// the technology base latency, plus any scripted added delay on the
// path's impaired sides, inflated by the path's loss efficiency (each
// round of a lossy handshake retries with probability 1-efficiency).
// Deterministic — jitter, a per-flow random draw, is added by StartFlow,
// never here, so the analytic cost models stay pure.
func (f *Fabric) Latency(src, dst int, class Class) float64 {
	class = f.EffectiveClass(src, dst, class)
	var lat float64
	switch class {
	case Intra:
		lat = f.Params.IntraLatency
	case RDMA:
		if f.Topo.NodeOf(src).RDMAType() == topology.InfiniBand {
			lat = f.Params.IBLatency
		} else {
			lat = f.Params.RoCELatency
		}
	default:
		lat = f.Params.EthLatency
		sc, dc := f.Topo.Device(src).Cluster, f.Topo.Device(dst).Cluster
		if sc != dc && f.HasTrunk(sc, dc) {
			// Extra hops through the inter-cluster trunk. Conditional on
			// the same lookup path() uses: a trunkless (non-blocking)
			// cluster pair traverses no extra link, so it pays no extra
			// latency either.
			lat *= 2
		}
	}
	if len(f.impair) > 0 {
		extra, eff := f.pathImpair(src, dst, class)
		lat = (lat + extra) / eff
	}
	return lat
}

// path returns the link sequence for a transfer in a fixed-size array to
// keep flow admission allocation-free.
func (f *Fabric) path(src, dst int, class Class) ([maxPathLinks]*Link, int) {
	var p [maxPathLinks]*Link
	class = f.EffectiveClass(src, dst, class)
	sn, dn := f.Topo.Device(src).Node, f.Topo.Device(dst).Node
	switch class {
	case Intra:
		p[0] = f.nodeIntra[sn]
		return p, 1
	case RDMA:
		p[0], p[1] = f.nodeRDMAOut[sn], f.nodeRDMAIn[dn]
		return p, 2
	default:
		p[0], p[1] = f.nodeEthOut[sn], f.nodeEthIn[dn]
		n := 2
		sc, dc := f.Topo.Device(src).Cluster, f.Topo.Device(dst).Cluster
		if sc != dc {
			lo, hi := sc, dc
			if lo > hi {
				lo, hi = hi, lo
			}
			if trunk, ok := f.trunks[[2]int{lo, hi}]; ok {
				p[n] = trunk
				n++
			}
		}
		return p, n
	}
}

// StartFlow begins a transfer of the given size between two ranks. onDone
// fires (in virtual time) when the last byte arrives. A zero-byte flow
// completes after just the latency term.
func (f *Fabric) StartFlow(src, dst int, bytes float64, class Class, onDone func()) *Flow {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("netsim: bad flow size %v", bytes))
	}
	fl := &Flow{
		Src: src, Dst: dst, Class: f.EffectiveClass(src, dst, class),
		Bytes: bytes, remaining: bytes, onDone: onDone, fab: f,
		cap: math.Inf(1),
	}
	if fl.Class == Ether && f.Params.EthPerFlowBytesPerSec > 0 {
		fl.cap = f.Params.EthPerFlowBytesPerSec
	}
	lat := f.Latency(src, dst, class)
	// Jitter is a per-flow draw on top of the deterministic α; symmetric
	// distributions can pull the sum below zero, which clamps (a message
	// cannot arrive before it was sent).
	if lat += f.sampleJitter(src, dst, fl.Class); lat < 0 {
		lat = 0
	}
	// The flow occupies links only after its latency term elapses; for
	// zero-byte control messages it completes then.
	f.eng.After(lat, func() { f.admit(fl) })
	return fl
}

// StartFlowRateCapped is StartFlow with an explicit per-flow rate ceiling
// in bytes/s on top of any technology-wide cap: the flow offers at most
// rateCap of load but still shares max-min fairly under congestion.
// Background-traffic injection (internal/scenario) uses it to model a
// tenant streaming at a fixed rate. rateCap <= 0 means uncapped.
func (f *Fabric) StartFlowRateCapped(src, dst int, bytes float64, class Class, rateCap float64, onDone func()) *Flow {
	fl := f.StartFlow(src, dst, bytes, class, onDone)
	// Safe to tighten here: the flow joins the fabric only after its
	// latency event fires, strictly later than this call.
	if rateCap > 0 && rateCap < fl.cap {
		fl.cap = rateCap
	}
	return fl
}

func (f *Fabric) admit(fl *Flow) {
	if fl.aborted {
		return
	}
	fl.started = true
	if fl.remaining <= 0 {
		f.finish(fl)
		return
	}
	// Loss/corruption derate goodput multiplicatively: retransmitted
	// bytes occupy the wire, so delivering Bytes of goodput moves
	// Bytes/efficiency across the links. Sampled at admission — flows
	// already on the wire keep the efficiency they started with.
	if eff := f.pathEff(fl.Src, fl.Dst, fl.Class); eff < 1 {
		fl.remaining /= eff
	}
	fl.path, fl.nPath = f.path(fl.Src, fl.Dst, fl.Class)
	fl.updatedAt = f.eng.Now()
	fl.admitted = true
	f.inFlight++
	for i := 0; i < fl.nPath; i++ {
		l := fl.path[i]
		fl.pathPos[i] = len(l.flows)
		l.flows = append(l.flows, fl)
	}
	f.scheduleRebalance(fl)
}

func (f *Fabric) finish(fl *Flow) {
	if fl.doneEv != nil {
		fl.doneEv.Cancel()
		fl.doneEv = nil
	}
	if fl.admitted {
		for i := 0; i < fl.nPath; i++ {
			f.unlink(fl.path[i], fl.pathPos[i])
		}
		fl.admitted = false
		f.inFlight--
		fl.remaining = 0
		f.scheduleRebalance(fl)
	}
	done := fl.onDone
	fl.onDone = nil
	if done != nil {
		done()
	}
}

// unlink swap-removes the flow at pos from the link's flow list, fixing
// the moved flow's recorded position.
func (f *Fabric) unlink(l *Link, pos int) {
	last := len(l.flows) - 1
	moved := l.flows[last]
	l.flows[pos] = moved
	l.flows[last] = nil
	l.flows = l.flows[:last]
	if pos < last {
		for i := 0; i < moved.nPath; i++ {
			if moved.path[i] == l {
				moved.pathPos[i] = pos
				break
			}
		}
	}
}

// scheduleRebalance queues the flow's links as rebalance seeds; see
// scheduleLinkRebalance.
func (f *Fabric) scheduleRebalance(fl *Flow) {
	f.scheduleLinkRebalance(fl.path[:fl.nPath]...)
}

// scheduleLinkRebalance queues links as rebalance seeds and, if no pass
// is pending, schedules one at the current instant. Scheduling instead
// of recomputing inline coalesces simultaneous arrivals, departures, and
// capacity changes — common when a collective's flows start or complete
// together — into a single progressive-filling pass. It is the only
// rebalance entry point; fault injection uses it too.
func (f *Fabric) scheduleLinkRebalance(links ...*Link) {
	for _, l := range links {
		if !l.dirty {
			l.dirty = true
			f.dirtySeeds = append(f.dirtySeeds, l)
		}
	}
	if !f.rebalPending {
		f.rebalPending = true
		f.eng.After(0, f.flushRebalance)
	}
}

func (f *Fabric) flushRebalance() {
	f.rebalPending = false
	seeds := f.dirtySeeds
	f.dirtySeeds = f.dirtySeeds[:0]
	for _, l := range seeds {
		l.dirty = false
	}
	f.rebalance(seeds)
}

// rebalance recomputes max-min fair rates and completion events for the
// region of the fabric reachable from the seed links: the connected
// component(s), via shared flows, that the last batch of arrivals and
// departures touched. Flows outside the region keep their rates — a
// max-min allocation decomposes over connected components, so they are
// unaffected by construction. Under Params.FullRecompute the region is
// the whole fabric, reproducing the original from-scratch behaviour.
func (f *Fabric) rebalance(seeds []*Link) {
	if f.Params.FullRecompute {
		seeds = f.links
	}
	links, flows := f.region(seeds)
	if len(flows) == 0 {
		return
	}
	for _, fl := range flows {
		fl.prevRate = fl.rate
		fl.frozen = false
	}
	f.fill(links, flows)
	f.reschedule(flows)
}

// region grows the seed links to the full set of links and flows whose
// rates the change can affect, using epoch marks so the scratch never
// needs clearing.
func (f *Fabric) region(seeds []*Link) ([]*Link, []*Flow) {
	f.epoch++
	e := f.epoch
	links := f.regionLinks[:0]
	flows := f.regionFlows[:0]
	for _, l := range seeds {
		if l.seen != e && len(l.flows) > 0 {
			l.seen = e
			links = append(links, l)
		}
	}
	for i := 0; i < len(links); i++ {
		for _, fl := range links[i].flows {
			if fl.seen == e {
				continue
			}
			fl.seen = e
			flows = append(flows, fl)
			for j := 0; j < fl.nPath; j++ {
				if l2 := fl.path[j]; l2.seen != e {
					l2.seen = e
					links = append(links, l2)
				}
			}
		}
	}
	// Canonical link order keeps tie-breaking identical between the
	// incremental and full-recompute passes.
	sortLinksByID(links)
	f.regionLinks, f.regionFlows = links, flows
	return links, flows
}

// sortLinksByID is an in-place insertion sort; regions are small and the
// input is mostly ordered, so this beats sort.Slice without allocating.
func sortLinksByID(ls []*Link) {
	for i := 1; i < len(ls); i++ {
		l := ls[i]
		j := i - 1
		for j >= 0 && ls[j].id > l.id {
			ls[j+1] = ls[j]
			j--
		}
		ls[j+1] = l
	}
}

// fill runs progressive filling over one region: repeatedly freeze the
// flows of the most constraining link at its fair share (or flows at
// their per-flow cap when that is lower) until every flow has a rate.
func (f *Fabric) fill(links []*Link, flows []*Flow) {
	for _, l := range links {
		l.residual = l.Capacity
		l.nUnfrozen = len(l.flows)
	}
	left := len(flows)
	for left > 0 {
		// Most constraining link: min residual / unfrozen count.
		var bottleneck *Link
		best := math.Inf(1)
		for _, l := range links {
			if l.nUnfrozen == 0 {
				continue
			}
			if share := l.residual / float64(l.nUnfrozen); share < best {
				best = share
				bottleneck = l
			}
		}
		// Flows whose per-flow ceiling is below the fair share freeze at
		// their cap first, returning the unused share to the links.
		capped := false
		for _, fl := range flows {
			if !fl.frozen && fl.cap < best {
				f.freeze(fl, fl.cap)
				capped = true
				left--
			}
		}
		if capped {
			continue
		}
		if bottleneck == nil {
			// Remaining flows traverse only flow-free links; give them a
			// degenerate zero rate (cannot happen with well-formed paths).
			for _, fl := range flows {
				if !fl.frozen {
					f.freeze(fl, 0)
					left--
				}
			}
			break
		}
		// Freeze the flows crossing the bottleneck at the fair share and
		// charge every link on their paths.
		for _, fl := range bottleneck.flows {
			if !fl.frozen {
				f.freeze(fl, best)
				left--
			}
		}
	}
}

func (f *Fabric) freeze(fl *Flow, rate float64) {
	fl.frozen = true
	fl.rate = rate
	for i := 0; i < fl.nPath; i++ {
		l := fl.path[i]
		l.residual -= rate
		if l.residual < 0 {
			l.residual = 0
		}
		l.nUnfrozen--
	}
}

// reschedule re-arms completion events after a filling pass. A flow whose
// rate did not change keeps both its event and its progress bookkeeping —
// the absolute completion time computed when the rate was set is still
// exact. Progress drains lazily, in one multiply over the whole
// constant-rate interval, only when the rate actually changes; besides
// being cheaper, this makes the incremental and full-recompute modes
// bit-identical (piecewise drains would differ in final-ulp noise that a
// long chaotic simulation then amplifies).
func (f *Fabric) reschedule(flows []*Flow) {
	now := f.eng.Now()
	for _, fl := range flows {
		if fl.doneEv != nil && fl.rate == fl.prevRate {
			continue
		}
		fl.remaining -= fl.prevRate * (now - fl.updatedAt)
		if fl.remaining < 0 {
			fl.remaining = 0
		}
		fl.updatedAt = now
		if fl.doneEv != nil {
			fl.doneEv.Cancel()
			fl.doneEv = nil
		}
		var eta float64
		switch {
		case fl.remaining <= 0:
			eta = 0
		case fl.rate <= 0:
			continue // starved; rescheduled at the next rebalance it joins
		default:
			eta = fl.remaining / fl.rate
		}
		fl := fl
		fl.doneEv = f.eng.After(eta, func() { f.finish(fl) })
	}
}

// InFlight reports the number of active flows.
func (f *Fabric) InFlight() int { return f.inFlight }

// TransferTime returns the contention-free α–β estimate for moving the
// given bytes between two ranks on a class: latency + bytes/bottleneck.
// It is the analytic counterpart of StartFlow, used by the collective cost
// models; it never mutates fabric state.
func (f *Fabric) TransferTime(src, dst int, bytes float64, class Class) float64 {
	t := f.Latency(src, dst, class)
	if bytes <= 0 {
		return t
	}
	bw := f.PairBandwidth(src, dst, class)
	if bw <= 0 {
		return math.Inf(1)
	}
	if len(f.impair) > 0 {
		// Mirror admit's goodput derate: the analytic estimate moves the
		// same inflated wire bytes the event-driven flow would.
		bytes /= f.pathEff(src, dst, f.EffectiveClass(src, dst, class))
	}
	return t + bytes/bw
}

// PairBandwidth returns the bottleneck bandwidth (bytes/s) of the path
// between two ranks for a class, absent contention (including the
// per-flow Ethernet stream cap).
func (f *Fabric) PairBandwidth(src, dst int, class Class) float64 {
	bw := math.Inf(1)
	path, n := f.path(src, dst, class)
	for i := 0; i < n; i++ {
		if path[i].Capacity < bw {
			bw = path[i].Capacity
		}
	}
	if f.EffectiveClass(src, dst, class) == Ether && f.Params.EthPerFlowBytesPerSec > 0 &&
		f.Params.EthPerFlowBytesPerSec < bw {
		bw = f.Params.EthPerFlowBytesPerSec
	}
	if math.IsInf(bw, 1) {
		return 0
	}
	return bw
}

// NodeBandwidth returns the per-node aggregate bandwidth in bytes/s for
// the class, after efficiency (the amount all GPUs of that node share).
func (f *Fabric) NodeBandwidth(nodeIdx int, class Class) float64 {
	switch class {
	case Intra:
		return f.nodeIntra[nodeIdx].Capacity
	case RDMA:
		return f.nodeRDMAOut[nodeIdx].Capacity
	default:
		return f.nodeEthOut[nodeIdx].Capacity
	}
}
