// Package netsim is a flow-level network simulator for the heterogeneous
// NIC environments of the paper.
//
// It substitutes for the physical fabric of the authors' testbed (200 Gb/s
// InfiniBand ×4 per IB node, 200 Gb/s RoCE ×2 per RoCE node, 25 Gb/s
// Ethernet everywhere, NVLink inside nodes). Transfers are modelled as
// fluid flows over a graph of capacitated links with max-min fair
// bandwidth sharing and a per-technology message latency (the α in the
// classic α–β cost model); rates are recomputed whenever a flow starts or
// finishes, and flow completions drive the discrete-event engine.
package netsim

import (
	"fmt"
	"math"

	"holmes/internal/sim"
	"holmes/internal/topology"
)

// Class selects which network a transfer rides on. The Holmes Automatic
// NIC Selection component (§3.2) chooses a class per communication group.
type Class int

const (
	// Intra uses the intra-node interconnect (NVLink or PCIe).
	Intra Class = iota
	// RDMA uses the node's RDMA NIC pool (InfiniBand or RoCE). Falls back
	// to Ethernet when the endpoints do not share a compatible RDMA fabric.
	RDMA
	// Ether uses the commodity Ethernet NIC.
	Ether
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Intra:
		return "Intra"
	case RDMA:
		return "RDMA"
	case Ether:
		return "Ether"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Params holds technology constants. Bandwidth efficiencies capture
// protocol overhead and (for RoCE) PFC/congestion-control losses observed
// in practice; latencies are per-message α terms.
type Params struct {
	// Efficiency of each NIC technology: achievable fraction of line rate.
	IBEff   float64
	RoCEEff float64
	EthEff  float64
	// Per-message latency in seconds by technology.
	IBLatency   float64
	RoCELatency float64
	EthLatency  float64
	// Intra-node link bandwidth (bytes/s per direction) and latency.
	NVLinkBytesPerSec float64
	PCIeBytesPerSec   float64
	IntraLatency      float64
	// InterClusterGbps caps the Ethernet trunk between each pair of
	// clusters; zero means non-blocking (node NICs are the constraint).
	InterClusterGbps float64
	// InterClusterGbpsPerNode adds trunk capacity proportional to the
	// smaller cluster's node count: each node contributes an uplink to
	// the inter-cluster path. Combined with InterClusterGbps when both
	// are set.
	InterClusterGbpsPerNode float64
	// EthPerFlowBytesPerSec caps a single Ethernet flow's rate, modelling
	// the single-stream throughput limit of TCP/socket transports on
	// commodity NICs (NCCL's socket path tops out well below line rate on
	// one connection). Zero means uncapped.
	EthPerFlowBytesPerSec float64
}

// DefaultParams reflects measured characteristics of the technologies in
// the paper's testbed. RoCE efficiency is markedly lower than InfiniBand:
// lossless-Ethernet flow control (PFC) and DCQCN congestion control leave a
// 200 Gb/s RoCE NIC well short of an equally-rated IB NIC, which together
// with the 2-vs-4 NIC count reproduces the IB/RoCE gap in Table 1.
func DefaultParams() Params {
	return Params{
		IBEff:                 0.93,
		RoCEEff:               0.80,
		EthEff:                0.88,
		IBLatency:             2e-6,
		RoCELatency:           5e-6,
		EthLatency:            30e-6,
		NVLinkBytesPerSec:     250e9, // A100 NVLink, usable per direction
		PCIeBytesPerSec:       25e9,  // PCIe gen4 x16 effective
		IntraLatency:          1.5e-6,
		InterClusterGbps:      0, // non-blocking by default
		EthPerFlowBytesPerSec: 0, // uncapped (NCCL multi-socket reaches line rate)
	}
}

// Link is one capacitated, directed fluid link.
type Link struct {
	Name string
	// Capacity in bytes per second.
	Capacity float64
	flows    map[*Flow]struct{}
}

func newLink(name string, capacity float64) *Link {
	return &Link{Name: name, Capacity: capacity, flows: make(map[*Flow]struct{})}
}

// ActiveFlows reports how many flows currently traverse the link.
func (l *Link) ActiveFlows() int { return len(l.flows) }

// Flow is one in-flight transfer.
type Flow struct {
	Src, Dst int // global ranks
	Class    Class
	Bytes    float64

	path      []*Link
	remaining float64
	rate      float64
	cap       float64 // per-flow rate ceiling (Inf when uncapped)
	updatedAt sim.Time
	doneEv    *sim.Event
	onDone    func()
	fab       *Fabric
	started   bool
}

// Rate returns the flow's current fair-share rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Fabric binds a topology to link state and an event engine.
type Fabric struct {
	Topo   *topology.Topology
	Params Params
	eng    *sim.Engine

	// Per-node directional links.
	nodeRDMAOut, nodeRDMAIn []*Link
	nodeEthOut, nodeEthIn   []*Link
	nodeIntra               []*Link
	// Optional inter-cluster trunks, keyed by ordered cluster pair.
	trunks map[[2]int]*Link

	active map[*Flow]struct{}
}

// New creates a fabric over topo driven by eng.
func New(eng *sim.Engine, topo *topology.Topology, p Params) *Fabric {
	f := &Fabric{
		Topo:   topo,
		Params: p,
		eng:    eng,
		trunks: make(map[[2]int]*Link),
		active: make(map[*Flow]struct{}),
	}
	for _, n := range topo.Nodes() {
		rdmaBps := n.RDMAGbps() / 8 * 1e9 * f.rdmaEff(n.RDMAType())
		ethBps := n.EthNIC.Gbps / 8 * 1e9 * p.EthEff
		intraBps := p.NVLinkBytesPerSec
		if n.Intra == topology.PCIe {
			intraBps = p.PCIeBytesPerSec
		}
		id := n.Index
		f.nodeRDMAOut = append(f.nodeRDMAOut, newLink(fmt.Sprintf("n%d.rdma.out", id), rdmaBps))
		f.nodeRDMAIn = append(f.nodeRDMAIn, newLink(fmt.Sprintf("n%d.rdma.in", id), rdmaBps))
		f.nodeEthOut = append(f.nodeEthOut, newLink(fmt.Sprintf("n%d.eth.out", id), ethBps))
		f.nodeEthIn = append(f.nodeEthIn, newLink(fmt.Sprintf("n%d.eth.in", id), ethBps))
		f.nodeIntra = append(f.nodeIntra, newLink(fmt.Sprintf("n%d.nvlink", id), intraBps))
	}
	if p.InterClusterGbps > 0 || p.InterClusterGbpsPerNode > 0 {
		for i := range topo.Clusters {
			for j := i + 1; j < len(topo.Clusters); j++ {
				minNodes := len(topo.Clusters[i].Nodes)
				if n := len(topo.Clusters[j].Nodes); n < minNodes {
					minNodes = n
				}
				gbps := p.InterClusterGbps + p.InterClusterGbpsPerNode*float64(minNodes)
				bps := gbps / 8 * 1e9 * p.EthEff
				f.trunks[[2]int{i, j}] = newLink(fmt.Sprintf("trunk.c%d-c%d", i, j), bps)
			}
		}
	}
	return f
}

func (f *Fabric) rdmaEff(t topology.NICType) float64 {
	switch t {
	case topology.InfiniBand:
		return f.Params.IBEff
	case topology.RoCE:
		return f.Params.RoCEEff
	default:
		return f.Params.EthEff
	}
}

// EffectiveClass resolves the class actually usable between two ranks:
// Intra when the ranks share a node; RDMA degrades to Ether when the
// endpoints lack a shared RDMA fabric (different clusters, incompatible
// NICs, or no RDMA at all) — the incompatibility rule of §1.
func (f *Fabric) EffectiveClass(src, dst int, want Class) Class {
	if f.Topo.SameNode(src, dst) {
		return Intra
	}
	if want == RDMA && f.Topo.BestCommonNIC(src, dst).IsRDMA() {
		return RDMA
	}
	return Ether
}

// Latency returns the per-message α term for a (src,dst,class) path.
func (f *Fabric) Latency(src, dst int, class Class) float64 {
	class = f.EffectiveClass(src, dst, class)
	switch class {
	case Intra:
		return f.Params.IntraLatency
	case RDMA:
		if f.Topo.NodeOf(src).RDMAType() == topology.InfiniBand {
			return f.Params.IBLatency
		}
		return f.Params.RoCELatency
	default:
		lat := f.Params.EthLatency
		if !f.Topo.SameCluster(src, dst) {
			lat *= 2 // extra hops through the inter-cluster path
		}
		return lat
	}
}

// path returns the link sequence for a transfer.
func (f *Fabric) path(src, dst int, class Class) []*Link {
	class = f.EffectiveClass(src, dst, class)
	sn, dn := f.Topo.Device(src).Node, f.Topo.Device(dst).Node
	switch class {
	case Intra:
		return []*Link{f.nodeIntra[sn]}
	case RDMA:
		return []*Link{f.nodeRDMAOut[sn], f.nodeRDMAIn[dn]}
	default:
		p := []*Link{f.nodeEthOut[sn], f.nodeEthIn[dn]}
		sc, dc := f.Topo.Device(src).Cluster, f.Topo.Device(dst).Cluster
		if sc != dc {
			lo, hi := sc, dc
			if lo > hi {
				lo, hi = hi, lo
			}
			if trunk, ok := f.trunks[[2]int{lo, hi}]; ok {
				p = append(p, trunk)
			}
		}
		return p
	}
}

// StartFlow begins a transfer of the given size between two ranks. onDone
// fires (in virtual time) when the last byte arrives. A zero-byte flow
// completes after just the latency term.
func (f *Fabric) StartFlow(src, dst int, bytes float64, class Class, onDone func()) *Flow {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("netsim: bad flow size %v", bytes))
	}
	fl := &Flow{
		Src: src, Dst: dst, Class: f.EffectiveClass(src, dst, class),
		Bytes: bytes, remaining: bytes, onDone: onDone, fab: f,
		cap: math.Inf(1),
	}
	if fl.Class == Ether && f.Params.EthPerFlowBytesPerSec > 0 {
		fl.cap = f.Params.EthPerFlowBytesPerSec
	}
	lat := f.Latency(src, dst, class)
	// The flow occupies links only after its latency term elapses; for
	// zero-byte control messages it completes then.
	f.eng.After(lat, func() { f.admit(fl) })
	return fl
}

func (f *Fabric) admit(fl *Flow) {
	fl.started = true
	if fl.remaining <= 0 {
		f.finish(fl)
		return
	}
	fl.path = f.path(fl.Src, fl.Dst, fl.Class)
	fl.updatedAt = f.eng.Now()
	f.active[fl] = struct{}{}
	for _, l := range fl.path {
		l.flows[fl] = struct{}{}
	}
	f.rebalance()
}

func (f *Fabric) finish(fl *Flow) {
	if fl.doneEv != nil {
		fl.doneEv.Cancel()
		fl.doneEv = nil
	}
	for _, l := range fl.path {
		delete(l.flows, fl)
	}
	delete(f.active, fl)
	done := fl.onDone
	fl.onDone = nil
	if done != nil {
		done()
	}
	f.rebalance()
}

// rebalance recomputes max-min fair rates for all active flows and
// reschedules their completion events.
func (f *Fabric) rebalance() {
	now := f.eng.Now()
	// Drain progress accrued at the old rates.
	for fl := range f.active {
		fl.remaining -= fl.rate * (now - fl.updatedAt)
		if fl.remaining < 0 {
			fl.remaining = 0
		}
		fl.updatedAt = now
	}
	// Progressive filling.
	rates := maxMinRates(f.active)
	for fl, r := range rates {
		fl.rate = r
		if fl.doneEv != nil {
			fl.doneEv.Cancel()
			fl.doneEv = nil
		}
		fl := fl
		var eta float64
		if fl.remaining <= 0 {
			eta = 0
		} else if fl.rate <= 0 {
			continue // starved; will be rescheduled at the next rebalance
		} else {
			eta = fl.remaining / fl.rate
		}
		fl.doneEv = f.eng.After(eta, func() { f.finish(fl) })
	}
}

// maxMinRates runs progressive filling over the links referenced by the
// active flows.
func maxMinRates(active map[*Flow]struct{}) map[*Flow]float64 {
	rates := make(map[*Flow]float64, len(active))
	unfrozen := make(map[*Flow]struct{}, len(active))
	linkSet := make(map[*Link]struct{})
	for fl := range active {
		unfrozen[fl] = struct{}{}
		for _, l := range fl.path {
			linkSet[l] = struct{}{}
		}
	}
	residual := make(map[*Link]float64, len(linkSet))
	for l := range linkSet {
		residual[l] = l.Capacity
	}
	for len(unfrozen) > 0 {
		// Find the most constraining link: min residual / unfrozen count.
		var bottleneck *Link
		best := math.Inf(1)
		for l := range linkSet {
			n := 0
			for fl := range l.flows {
				if _, ok := unfrozen[fl]; ok {
					n++
				}
			}
			if n == 0 {
				continue
			}
			share := residual[l] / float64(n)
			if share < best {
				best = share
				bottleneck = l
			}
		}
		// Flows whose per-flow ceiling is below the fair share freeze at
		// their cap first, returning the unused share to the links.
		capped := false
		for fl := range unfrozen {
			if fl.cap < best {
				rates[fl] = fl.cap
				delete(unfrozen, fl)
				for _, l := range fl.path {
					residual[l] -= fl.cap
					if residual[l] < 0 {
						residual[l] = 0
					}
				}
				capped = true
			}
		}
		if capped {
			continue
		}
		if bottleneck == nil {
			// Remaining flows traverse only flow-free links; give them a
			// degenerate zero rate (cannot happen with well-formed paths).
			for fl := range unfrozen {
				rates[fl] = 0
				delete(unfrozen, fl)
			}
			break
		}
		// Freeze the flows crossing the bottleneck at the fair share and
		// charge every link on their paths.
		for fl := range bottleneck.flows {
			if _, ok := unfrozen[fl]; !ok {
				continue
			}
			rates[fl] = best
			delete(unfrozen, fl)
			for _, l := range fl.path {
				residual[l] -= best
				if residual[l] < 0 {
					residual[l] = 0
				}
			}
		}
	}
	return rates
}

// InFlight reports the number of active flows.
func (f *Fabric) InFlight() int { return len(f.active) }

// TransferTime returns the contention-free α–β estimate for moving the
// given bytes between two ranks on a class: latency + bytes/bottleneck.
// It is the analytic counterpart of StartFlow, used by the collective cost
// models; it never mutates fabric state.
func (f *Fabric) TransferTime(src, dst int, bytes float64, class Class) float64 {
	t := f.Latency(src, dst, class)
	if bytes <= 0 {
		return t
	}
	bw := f.PairBandwidth(src, dst, class)
	if bw <= 0 {
		return math.Inf(1)
	}
	return t + bytes/bw
}

// PairBandwidth returns the bottleneck bandwidth (bytes/s) of the path
// between two ranks for a class, absent contention (including the
// per-flow Ethernet stream cap).
func (f *Fabric) PairBandwidth(src, dst int, class Class) float64 {
	bw := math.Inf(1)
	for _, l := range f.path(src, dst, class) {
		if l.Capacity < bw {
			bw = l.Capacity
		}
	}
	if f.EffectiveClass(src, dst, class) == Ether && f.Params.EthPerFlowBytesPerSec > 0 &&
		f.Params.EthPerFlowBytesPerSec < bw {
		bw = f.Params.EthPerFlowBytesPerSec
	}
	if math.IsInf(bw, 1) {
		return 0
	}
	return bw
}

// NodeBandwidth returns the per-node aggregate bandwidth in bytes/s for
// the class, after efficiency (the amount all GPUs of that node share).
func (f *Fabric) NodeBandwidth(nodeIdx int, class Class) float64 {
	switch class {
	case Intra:
		return f.nodeIntra[nodeIdx].Capacity
	case RDMA:
		return f.nodeRDMAOut[nodeIdx].Capacity
	default:
		return f.nodeEthOut[nodeIdx].Capacity
	}
}
