package optimizer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"holmes/internal/tensor"
)

func TestSGDStep(t *testing.T) {
	o := &SGD{LR: 0.1}
	w := tensor.Vector{1, 2}
	o.Step(w, tensor.Vector{1, -1})
	if math.Abs(float64(w[0])-0.9) > 1e-6 || math.Abs(float64(w[1])-2.1) > 1e-6 {
		t.Fatalf("SGD step: %v", w)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	o := &SGD{LR: 0.1, Momentum: 0.9}
	w := tensor.Vector{0}
	o.Step(w, tensor.Vector{1})
	first := float64(w[0])
	o.Step(w, tensor.Vector{1})
	second := float64(w[0]) - first
	// With momentum, the second step is larger than the first.
	if !(second < first && first < 0) {
		t.Fatalf("momentum not accumulating: first=%v delta2=%v", first, second)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// minimize (w-3)^2 — gradient 2(w-3).
	o := &SGD{LR: 0.1}
	w := tensor.Vector{0}
	for i := 0; i < 200; i++ {
		o.Step(w, tensor.Vector{2 * (w[0] - 3)})
	}
	if math.Abs(float64(w[0])-3) > 1e-3 {
		t.Fatalf("SGD did not converge: %v", w[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	o := NewAdam(0.05)
	w := tensor.Vector{-4}
	for i := 0; i < 2000; i++ {
		o.Step(w, tensor.Vector{2 * (w[0] - 3)})
	}
	if math.Abs(float64(w[0])-3) > 1e-2 {
		t.Fatalf("Adam did not converge: %v", w[0])
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// Bias correction makes the first Adam step ≈ lr regardless of
	// gradient scale.
	for _, scale := range []float32{1e-3, 1, 1e3} {
		o := NewAdam(0.1)
		w := tensor.Vector{0}
		o.Step(w, tensor.Vector{scale})
		if math.Abs(float64(w[0])+0.1) > 0.02 {
			t.Fatalf("first Adam step with grad %v moved %v, want ~-0.1", scale, w[0])
		}
	}
}

func TestStepLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatch")
		}
	}()
	NewAdam(0.1).Step(tensor.Vector{1}, tensor.Vector{1, 2})
}

func TestShardedAdamMatchesFullAdam(t *testing.T) {
	// d ranks each own one shard; their collective update must equal a
	// single full Adam — the core distributed-optimizer equivalence.
	rng := rand.New(rand.NewSource(3))
	n, d := 37, 4 // deliberately not divisible
	full := tensor.Randn(rng, n, 1)
	ref := full.Clone()
	refOpt := NewAdam(0.01)

	shardW := full.Clone()
	shards := make([]*ShardedAdam, d)
	for r := 0; r < d; r++ {
		shards[r] = NewShardedAdam(0.01, n, r, d)
	}
	for step := 0; step < 5; step++ {
		grad := tensor.Randn(rng, n, 1)
		refOpt.Step(ref, grad)
		for r := 0; r < d; r++ {
			o := shards[r]
			o.UpdateShard(o.ShardOf(shardW), o.ShardOf(grad))
		}
	}
	if !shardW.AllClose(ref, 1e-6) {
		t.Fatalf("sharded Adam diverged from full Adam by %v", shardW.MaxAbsDiff(ref))
	}
}

func TestShardedAdamCoordinatesValidated(t *testing.T) {
	for _, tc := range [][2]int{{-1, 4}, {4, 4}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewShardedAdam(%d/%d) did not panic", tc[0], tc[1])
				}
			}()
			NewShardedAdam(0.1, 10, tc[0], tc[1])
		}()
	}
}

func TestShardOfCoversVector(t *testing.T) {
	n, d := 23, 5
	full := tensor.NewVector(n)
	covered := 0
	for r := 0; r < d; r++ {
		covered += len(NewShardedAdam(0.1, n, r, d).ShardOf(full))
	}
	if covered != n {
		t.Fatalf("shards cover %d of %d elements", covered, n)
	}
}

// Property: bucket plans conserve the payload exactly.
func TestBucketPlanConservesBytes(t *testing.T) {
	f := func(bRaw uint8, totRaw uint32) bool {
		b := int(bRaw%32) + 1
		total := float64(totRaw % 1e9)
		p := BucketPlan{Buckets: b, TotalBytes: total}
		if math.Abs(p.Sum()-total) > 1e-6 {
			return false
		}
		for i := 0; i < b; i++ {
			if p.BucketBytes(i) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketPlanBounds(t *testing.T) {
	p := BucketPlan{Buckets: 4, TotalBytes: 100}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range bucket did not panic")
		}
	}()
	p.BucketBytes(4)
}
