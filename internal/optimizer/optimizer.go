// Package optimizer provides the optimizers used by the real (goroutine)
// executor — SGD and Adam, plus a ZeRO-1-style sharded Adam in which each
// data-parallel rank owns one shard of the optimizer state (the
// "distributed optimizer" of Megatron-LM that Holmes overlaps with the
// backward pass) — and the gradient bucketing plan that drives the
// Overlapped Distributed Optimizer's communication schedule.
package optimizer

import (
	"fmt"
	"math"

	"holmes/internal/tensor"
)

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      tensor.Vector
}

// Step applies one update: w -= lr * (grad + momentum-velocity).
func (o *SGD) Step(w, grad tensor.Vector) {
	if len(w) != len(grad) {
		panic(fmt.Sprintf("optimizer: weight/grad length mismatch %d vs %d", len(w), len(grad)))
	}
	if o.Momentum != 0 {
		if o.vel == nil {
			o.vel = tensor.NewVector(len(w))
		}
		for i := range w {
			o.vel[i] = float32(o.Momentum)*o.vel[i] + grad[i]
			w[i] -= float32(o.LR) * o.vel[i]
		}
		return
	}
	for i := range w {
		w[i] -= float32(o.LR) * grad[i]
	}
}

// Adam is the Adam optimizer (Kingma & Ba) in float32 with float64
// accumulators for the bias-corrected moments.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	t       int
	m, v    []float64
}

// NewAdam returns Adam with the conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update in place.
func (o *Adam) Step(w, grad tensor.Vector) {
	if len(w) != len(grad) {
		panic(fmt.Sprintf("optimizer: weight/grad length mismatch %d vs %d", len(w), len(grad)))
	}
	if o.m == nil {
		o.m = make([]float64, len(w))
		o.v = make([]float64, len(w))
	}
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i := range w {
		g := float64(grad[i])
		o.m[i] = o.Beta1*o.m[i] + (1-o.Beta1)*g
		o.v[i] = o.Beta2*o.v[i] + (1-o.Beta2)*g*g
		mHat := o.m[i] / c1
		vHat := o.v[i] / c2
		w[i] -= float32(o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon))
	}
}

// ShardedAdam is the distributed optimizer: rank r of a data-parallel
// group of size d owns shard r of the parameter vector. After a
// reduce-scatter delivers rank r its gradient shard, UpdateShard advances
// only that shard; an all-gather then rebuilds the full parameters
// everywhere. State for other shards is never allocated — the ZeRO-1
// memory saving.
type ShardedAdam struct {
	Rank, World int
	inner       *Adam
	shardLen    []int
	offset      int
}

// NewShardedAdam creates the shard-r/d optimizer for a parameter vector of
// length n, using tensor.Vector.Chunk's layout.
func NewShardedAdam(lr float64, n, rank, world int) *ShardedAdam {
	if world <= 0 || rank < 0 || rank >= world {
		panic(fmt.Sprintf("optimizer: bad shard coordinates %d/%d", rank, world))
	}
	probe := tensor.NewVector(n).Chunk(world)
	off := 0
	lens := make([]int, world)
	for i, c := range probe {
		lens[i] = len(c)
		if i < rank {
			off += len(c)
		}
	}
	return &ShardedAdam{
		Rank: rank, World: world,
		inner:    NewAdam(lr),
		shardLen: lens,
		offset:   off,
	}
}

// ShardOf returns this rank's view of a full-length vector.
func (o *ShardedAdam) ShardOf(full tensor.Vector) tensor.Vector {
	return full[o.offset : o.offset+o.shardLen[o.Rank]]
}

// UpdateShard applies Adam to this rank's weight shard given the reduced
// gradient shard.
func (o *ShardedAdam) UpdateShard(weightShard, gradShard tensor.Vector) {
	if len(weightShard) != o.shardLen[o.Rank] || len(gradShard) != o.shardLen[o.Rank] {
		panic("optimizer: shard length mismatch")
	}
	o.inner.Step(weightShard, gradShard)
}

// BucketPlan is the communication schedule of the Overlapped Distributed
// Optimizer: the gradient payload split into buckets that reduce-scatter
// as soon as the backward pass produces them, hiding communication behind
// remaining compute.
type BucketPlan struct {
	// Buckets is the bucket count (typically the micro-batch count: one
	// bucket becomes ready per backward completion).
	Buckets int
	// TotalBytes is the full gradient payload.
	TotalBytes float64
}

// BucketBytes returns the payload of bucket i (the last bucket absorbs
// rounding).
func (p BucketPlan) BucketBytes(i int) float64 {
	if p.Buckets <= 0 {
		panic("optimizer: empty bucket plan")
	}
	if i < 0 || i >= p.Buckets {
		panic(fmt.Sprintf("optimizer: bucket %d out of range [0,%d)", i, p.Buckets))
	}
	base := math.Floor(p.TotalBytes / float64(p.Buckets))
	if i == p.Buckets-1 {
		return p.TotalBytes - base*float64(p.Buckets-1)
	}
	return base
}

// Sum returns the total payload across buckets (== TotalBytes).
func (p BucketPlan) Sum() float64 {
	var s float64
	for i := 0; i < p.Buckets; i++ {
		s += p.BucketBytes(i)
	}
	return s
}
