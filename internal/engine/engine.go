// Package engine owns the process-wide resources the Holmes stack used to
// keep in package-level mutable state: the communicator (assignment +
// world) cache, the slice-plan cache, the bounded worker pool, and the
// netsim execution knobs.
//
// An Engine is immutable after construction — its configuration cannot
// change, and its caches are internally synchronized — so any number of
// goroutines (concurrent planner searches, experiment grids, HTTP request
// handlers) can share one Engine, and independent tenants can hold
// independent Engines with different settings without interfering. That
// property is what makes the library safe to put behind a server
// (cmd/holmes-serve): previously two callers flipping
// experiments.FullRecompute or experiments.Concurrency raced each other
// through package globals.
package engine

import (
	"runtime"
	"sync"

	"holmes/internal/comm"
	"holmes/internal/parallel"
	"holmes/internal/pool"
	"holmes/internal/topology"
)

// Config fixes an Engine's behaviour at construction time.
type Config struct {
	// Concurrency bounds the worker pool used for fan-out (experiment
	// cells, plan-search candidates). 0 means runtime.NumCPU().
	Concurrency int
	// CacheSize bounds the communicator cache (entries). 0 means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// PlanCacheSize bounds the shared slice-plan cache (entries). 0 means
	// DefaultPlanCacheSize; negative disables caching.
	PlanCacheSize int
	// FullRecompute makes every simulation run on the netsim
	// full-recompute oracle instead of the incremental rebalancer — the
	// reference arm of the equivalence tests and of
	// `holmes-bench -mode=baseline`.
	FullRecompute bool
}

// DefaultCacheSize bounds the communicator cache when Config.CacheSize is
// zero. The working set of any realistic search is far smaller; the bound
// exists so a long-lived server cannot grow without limit.
const DefaultCacheSize = 512

// DefaultPlanCacheSize bounds the shared slice-plan cache when
// Config.PlanCacheSize is zero. A fleet's distinct (slice fingerprint,
// model, framework) triples are a small working set, but a long-lived
// server accumulating degrade factors could mint entries without limit.
const DefaultPlanCacheSize = 1024

// Engine carries the shared, concurrency-safe execution resources.
type Engine struct {
	concurrency   int
	fullRecompute bool
	cache         lru[worldKey, worldVal]
	plans         lru[any, any]
	search        searchCounters
}

// New constructs an Engine, normalizing zero config fields to defaults.
func New(cfg Config) *Engine {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = runtime.NumCPU()
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	if size < 0 {
		size = 0 // caching disabled
	}
	planSize := cfg.PlanCacheSize
	if planSize == 0 {
		planSize = DefaultPlanCacheSize
	}
	if planSize < 0 {
		planSize = 0
	}
	e := &Engine{
		concurrency:   cfg.Concurrency,
		fullRecompute: cfg.FullRecompute,
	}
	e.cache.init(size)
	e.plans.init(planSize)
	return e
}

// defaultEngine backs the deprecated package-level entry points
// (core.NewPlanner with a nil engine, experiments.Run, holmes.Plan, ...).
// It is constructed once and never mutated, so sharing it is safe.
var defaultEngine = sync.OnceValue(func() *Engine { return New(Config{}) })

// Default returns the shared process-wide Engine with default settings.
func Default() *Engine { return defaultEngine() }

// Concurrency reports the worker-pool bound.
func (e *Engine) Concurrency() int { return e.concurrency }

// FullRecompute reports whether simulations must use the netsim
// full-recompute oracle.
func (e *Engine) FullRecompute() bool { return e.fullRecompute }

// Go executes fn(i) for every i in [0, n) on the engine's bounded worker
// pool and returns when all calls finish. Panics in fn propagate to the
// caller (see pool.Run).
func (e *Engine) Go(n int, fn func(i int)) { pool.Run(n, e.concurrency, fn) }

// worldKey identifies a cached assignment+world: the structural topology
// fingerprint, the fixed degrees, and the NIC-selection policy (the only
// inputs communicator construction depends on).
type worldKey struct {
	fp   string
	t, p int
	sel  comm.Selection
}

// worldVal is one cached assignment+world pair.
type worldVal struct {
	assign *parallel.Assignment
	world  *comm.World
}

// lruEntry is one cache node; entries form a doubly-linked recency list
// with head = most recently used.
type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

// lru is a bounded least-recently-used cache. Cached values must be
// immutable after insertion (worlds and plans are read-only during
// simulation), so handing the same pointers to concurrent callers is
// safe. Eviction is strictly least-recently-used — a long search that
// keeps touching a hot working set never loses it, unlike the overflow
// behaviour the per-Scheduler plan memo used to have (clear the whole
// map at capacity).
type lru[K comparable, V any] struct {
	mu         sync.Mutex
	cap        int
	m          map[K]*lruEntry[K, V]
	head, tail *lruEntry[K, V]

	hits, misses, evictions uint64
}

func (c *lru[K, V]) init(capacity int) {
	c.cap = capacity
	c.m = make(map[K]*lruEntry[K, V], min(capacity, 64))
}

// get returns the entry for key, promoting it to most-recently-used.
func (c *lru[K, V]) get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.promote(e)
	return e.val, true
}

// put inserts (or refreshes) key, evicting the least-recently-used entry
// when the cache is full.
func (c *lru[K, V]) put(key K, val V) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		// A concurrent miss built the same value twice; keep the first,
		// the values are equivalent.
		c.promote(e)
		return
	}
	if len(c.m) >= c.cap {
		victim := c.tail
		c.unlink(victim)
		delete(c.m, victim.key)
		c.evictions++
	}
	e := &lruEntry[K, V]{key: key, val: val}
	c.m[key] = e
	c.pushFront(e)
}

func (c *lru[K, V]) promote(e *lruEntry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *lru[K, V]) pushFront(e *lruEntry[K, V]) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lru[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// stats snapshots the cache counters.
func (c *lru[K, V]) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size: len(c.m), Cap: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// World returns the parallel assignment and communicator world for the
// degrees and NIC-selection policy on the topology, built on first use and
// served from the engine's LRU cache afterwards. The returned structures
// are shared and must be treated as read-only.
func (e *Engine) World(topo *topology.Topology, deg parallel.Degrees, sel comm.Selection) (*parallel.Assignment, *comm.World, error) {
	key := worldKey{fp: topo.Fingerprint(), t: deg.T, p: deg.P, sel: sel}
	if v, ok := e.cache.get(key); ok {
		return v.assign, v.world, nil
	}
	assign, err := parallel.New(topo.NumDevices(), topo.GPUsPerNode, deg)
	if err != nil {
		return nil, nil, err
	}
	world, err := comm.BuildWorld(topo, assign, sel)
	if err != nil {
		return nil, nil, err
	}
	e.cache.put(key, worldVal{assign: assign, world: world})
	return assign, world, nil
}

// Plan returns the cached slice-plan value for an opaque comparable key,
// if present. The plan cache is the engine-wide successor of the fleet
// scheduler's per-Scheduler memo: identical carve fingerprints recur
// across jobs, across schedulers, and across /v1/jobs fleets routed to
// the same shard, so the memo lives next to the communicator cache where
// all of them can share it. Values are opaque to the engine; callers key
// with their own comparable types (a package-private key type cannot
// collide with another package's) and must treat stored values as
// immutable.
func (e *Engine) Plan(key any) (any, bool) { return e.plans.get(key) }

// StorePlan records a computed slice-plan value for the key. When two
// concurrent misses race, the first stored value wins; deterministic
// planning guarantees both are equivalent.
func (e *Engine) StorePlan(key any, val any) { e.plans.put(key, val) }

// CacheStats is a point-in-time snapshot of one engine cache.
type CacheStats struct {
	Size      int    `json:"size"`
	Cap       int    `json:"cap"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Add accumulates another snapshot into s — the serving layer aggregates
// per-shard caches into one /healthz figure this way.
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{
		Size: s.Size + o.Size, Cap: s.Cap + o.Cap,
		Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses, Evictions: s.Evictions + o.Evictions,
	}
}

// CacheStats reports communicator-cache occupancy and hit/miss/eviction
// counters (observability for /healthz and the cache tests).
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// PlanCacheStats reports slice-plan-cache occupancy and counters.
func (e *Engine) PlanCacheStats() CacheStats { return e.plans.stats() }
