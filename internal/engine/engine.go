// Package engine owns the process-wide resources the Holmes stack used to
// keep in package-level mutable state: the communicator (assignment +
// world) cache, the bounded worker pool, and the netsim execution knobs.
//
// An Engine is immutable after construction — its configuration cannot
// change, and its cache is internally synchronized — so any number of
// goroutines (concurrent planner searches, experiment grids, HTTP request
// handlers) can share one Engine, and independent tenants can hold
// independent Engines with different settings without interfering. That
// property is what makes the library safe to put behind a server
// (cmd/holmes-serve): previously two callers flipping
// experiments.FullRecompute or experiments.Concurrency raced each other
// through package globals.
package engine

import (
	"runtime"
	"sync"

	"holmes/internal/comm"
	"holmes/internal/parallel"
	"holmes/internal/pool"
	"holmes/internal/topology"
)

// Config fixes an Engine's behaviour at construction time.
type Config struct {
	// Concurrency bounds the worker pool used for fan-out (experiment
	// cells, plan-search candidates). 0 means runtime.NumCPU().
	Concurrency int
	// CacheSize bounds the communicator cache (entries). 0 means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// FullRecompute makes every simulation run on the netsim
	// full-recompute oracle instead of the incremental rebalancer — the
	// reference arm of the equivalence tests and of
	// `holmes-bench -mode=baseline`.
	FullRecompute bool
}

// DefaultCacheSize bounds the communicator cache when Config.CacheSize is
// zero. The working set of any realistic search is far smaller; the bound
// exists so a long-lived server cannot grow without limit.
const DefaultCacheSize = 512

// Engine carries the shared, concurrency-safe execution resources.
type Engine struct {
	concurrency   int
	fullRecompute bool
	cache         worldCache
}

// New constructs an Engine, normalizing zero config fields to defaults.
func New(cfg Config) *Engine {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = runtime.NumCPU()
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	if size < 0 {
		size = 0 // caching disabled
	}
	e := &Engine{
		concurrency:   cfg.Concurrency,
		fullRecompute: cfg.FullRecompute,
	}
	e.cache.init(size)
	return e
}

// defaultEngine backs the deprecated package-level entry points
// (core.NewPlanner with a nil engine, experiments.Run, holmes.Plan, ...).
// It is constructed once and never mutated, so sharing it is safe.
var defaultEngine = sync.OnceValue(func() *Engine { return New(Config{}) })

// Default returns the shared process-wide Engine with default settings.
func Default() *Engine { return defaultEngine() }

// Concurrency reports the worker-pool bound.
func (e *Engine) Concurrency() int { return e.concurrency }

// FullRecompute reports whether simulations must use the netsim
// full-recompute oracle.
func (e *Engine) FullRecompute() bool { return e.fullRecompute }

// Go executes fn(i) for every i in [0, n) on the engine's bounded worker
// pool and returns when all calls finish. Panics in fn propagate to the
// caller (see pool.Run).
func (e *Engine) Go(n int, fn func(i int)) { pool.Run(n, e.concurrency, fn) }

// worldKey identifies a cached assignment+world: the structural topology
// fingerprint, the fixed degrees, and the NIC-selection policy (the only
// inputs communicator construction depends on).
type worldKey struct {
	fp   string
	t, p int
	sel  comm.Selection
}

// worldEntry is one cache node; entries form a doubly-linked recency list
// with head = most recently used.
type worldEntry struct {
	key        worldKey
	assign     *parallel.Assignment
	world      *comm.World
	prev, next *worldEntry
}

// worldCache is a bounded LRU over communicator worlds. Cached values are
// immutable after insertion (assignments and worlds are read-only during
// simulation), so handing the same pointers to concurrent simulations is
// safe. Eviction is strictly least-recently-used — a long search that
// keeps touching a hot working set never loses it, unlike the previous
// overflow behaviour that cleared the whole map.
type worldCache struct {
	mu         sync.Mutex
	cap        int
	m          map[worldKey]*worldEntry
	head, tail *worldEntry

	hits, misses, evictions uint64
}

func (c *worldCache) init(capacity int) {
	c.cap = capacity
	c.m = make(map[worldKey]*worldEntry, capacity)
}

// get returns the entry for key, promoting it to most-recently-used.
func (c *worldCache) get(key worldKey) (*parallel.Assignment, *comm.World, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, nil, false
	}
	c.hits++
	c.promote(e)
	return e.assign, e.world, true
}

// put inserts (or refreshes) key, evicting the least-recently-used entry
// when the cache is full.
func (c *worldCache) put(key worldKey, assign *parallel.Assignment, world *comm.World) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		// A concurrent miss built the same world twice; keep the first,
		// the values are equivalent.
		c.promote(e)
		return
	}
	if len(c.m) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions++
	}
	e := &worldEntry{key: key, assign: assign, world: world}
	c.m[key] = e
	c.pushFront(e)
}

func (c *worldCache) promote(e *worldEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *worldCache) pushFront(e *worldEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *worldCache) unlink(e *worldEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// World returns the parallel assignment and communicator world for the
// degrees and NIC-selection policy on the topology, built on first use and
// served from the engine's LRU cache afterwards. The returned structures
// are shared and must be treated as read-only.
func (e *Engine) World(topo *topology.Topology, deg parallel.Degrees, sel comm.Selection) (*parallel.Assignment, *comm.World, error) {
	key := worldKey{fp: topo.Fingerprint(), t: deg.T, p: deg.P, sel: sel}
	if assign, world, ok := e.cache.get(key); ok {
		return assign, world, nil
	}
	assign, err := parallel.New(topo.NumDevices(), topo.GPUsPerNode, deg)
	if err != nil {
		return nil, nil, err
	}
	world, err := comm.BuildWorld(topo, assign, sel)
	if err != nil {
		return nil, nil, err
	}
	e.cache.put(key, assign, world)
	return assign, world, nil
}

// CacheStats is a point-in-time snapshot of the communicator cache.
type CacheStats struct {
	Size      int    `json:"size"`
	Cap       int    `json:"cap"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Add accumulates another snapshot into s — the serving layer aggregates
// per-shard caches into one /healthz figure this way.
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{
		Size: s.Size + o.Size, Cap: s.Cap + o.Cap,
		Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses, Evictions: s.Evictions + o.Evictions,
	}
}

// CacheStats reports cache occupancy and hit/miss/eviction counters
// (observability for /healthz and the cache tests).
func (e *Engine) CacheStats() CacheStats {
	e.cache.mu.Lock()
	defer e.cache.mu.Unlock()
	return CacheStats{
		Size: len(e.cache.m), Cap: e.cache.cap,
		Hits: e.cache.hits, Misses: e.cache.misses, Evictions: e.cache.evictions,
	}
}
