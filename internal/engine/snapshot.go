package engine

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
)

// Plan-cache snapshotting: the plan cache holds opaque values, some of
// which are serializable facts (the joint search's winning degrees) and
// some of which are live object graphs (the fleet scheduler's planner
// pointers). A PlanCodec is how a key-owning package opts its entries
// into persistence: it recognizes its own key/value types, renders them
// as JSON, and reconstructs them on load. Entries no codec claims are
// simply not snapshotted — a snapshot holds deterministic, re-keyable
// facts only (DESIGN.md decision 11).

// PlanSnapshotEntry is one serialized plan-cache entry.
type PlanSnapshotEntry struct {
	// Kind names the codec that owns the entry.
	Kind string          `json:"kind"`
	Key  json.RawMessage `json:"key"`
	Val  json.RawMessage `json:"val"`
}

// PlanCodec serializes one kind of plan-cache entry.
type PlanCodec interface {
	// Kind is the entry tag this codec owns.
	Kind() string
	// Encode renders an entry, or reports false when the key is not one
	// of this codec's.
	Encode(key, val any) (PlanSnapshotEntry, bool)
	// Decode reconstructs the in-memory key and value, plus the routing
	// key ("" when the entry has no shard affinity) a sharded pool should
	// hash to place the entry on the shard that will look it up.
	Decode(e PlanSnapshotEntry) (key, val any, route string, err error)
}

// PlanEntry is one live plan-cache pair.
type PlanEntry struct {
	Key, Val any
}

// PlanEntries returns the plan cache's pairs ordered least- to
// most-recently used, so replaying them through StorePlan in order
// reproduces the recency order under the cache's normal bounds.
func (e *Engine) PlanEntries() []PlanEntry {
	pairs := e.plans.entries()
	out := make([]PlanEntry, len(pairs))
	for i, p := range pairs {
		out[i] = PlanEntry{Key: p.key, Val: p.val}
	}
	return out
}

// SnapshotPlans serializes every plan-cache entry some codec claims,
// least-recently-used first.
func (e *Engine) SnapshotPlans(codecs ...PlanCodec) []PlanSnapshotEntry {
	var out []PlanSnapshotEntry
	for _, pe := range e.PlanEntries() {
		for _, c := range codecs {
			if entry, ok := c.Encode(pe.Key, pe.Val); ok {
				out = append(out, entry)
				break
			}
		}
	}
	return out
}

// DecodedPlan is one snapshot entry reconstructed by its codec.
type DecodedPlan struct {
	Key, Val any
	// Route is the shard-affinity key (normally a topology fingerprint).
	Route string
}

// DecodePlans reconstructs every entry, or fails without partial results:
// a snapshot that decodes halfway must not half-poison a cache, so
// callers store entries only after the whole file decoded.
func DecodePlans(entries []PlanSnapshotEntry, codecs ...PlanCodec) ([]DecodedPlan, error) {
	byKind := make(map[string]PlanCodec, len(codecs))
	for _, c := range codecs {
		byKind[c.Kind()] = c
	}
	out := make([]DecodedPlan, 0, len(entries))
	for i, e := range entries {
		c, ok := byKind[e.Kind]
		if !ok {
			return nil, fmt.Errorf("engine: snapshot entry %d has unknown kind %q", i, e.Kind)
		}
		key, val, route, err := c.Decode(e)
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot entry %d (%s): %w", i, e.Kind, err)
		}
		out = append(out, DecodedPlan{Key: key, Val: val, Route: route})
	}
	return out, nil
}

// LoadPlans decodes a snapshot and re-keys every entry through the
// normal plan-cache path (bounds and eviction still hold). It loads
// nothing when any entry fails to decode, and reports how many entries
// landed.
func (e *Engine) LoadPlans(entries []PlanSnapshotEntry, codecs ...PlanCodec) (int, error) {
	decoded, err := DecodePlans(entries, codecs...)
	if err != nil {
		return 0, err
	}
	for _, d := range decoded {
		e.StorePlan(d.Key, d.Val)
	}
	return len(decoded), nil
}

// entries snapshots the cache pairs from tail (least recently used) to
// head (most recently used).
func (c *lru[K, V]) entries() []lruPair[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]lruPair[K, V], 0, len(c.m))
	for e := c.tail; e != nil; e = e.prev {
		out = append(out, lruPair[K, V]{key: e.key, val: e.val})
	}
	return out
}

type lruPair[K comparable, V any] struct {
	key K
	val V
}

// SearchStats counts joint-search work over the engine's lifetime:
// how many searches ran, how many candidate cells were event-simulated
// to completion, how many were pruned by the admissible lower bound
// without simulation, how many started simulating but aborted the moment
// the virtual clock passed the incumbent (branch-and-bound), and how
// many whole searches were answered from the winner memo.
type SearchStats struct {
	Searches  uint64 `json:"searches"`
	Simulated uint64 `json:"simulated"`
	Pruned    uint64 `json:"pruned"`
	Aborted   uint64 `json:"aborted"`
	MemoHits  uint64 `json:"memo_hits"`
}

// Add accumulates another snapshot into s (per-shard aggregation).
func (s SearchStats) Add(o SearchStats) SearchStats {
	return SearchStats{
		Searches:  s.Searches + o.Searches,
		Simulated: s.Simulated + o.Simulated,
		Pruned:    s.Pruned + o.Pruned,
		Aborted:   s.Aborted + o.Aborted,
		MemoHits:  s.MemoHits + o.MemoHits,
	}
}

// searchCounters is the engine-side atomic storage behind SearchStats.
type searchCounters struct {
	searches  atomic.Uint64
	simulated atomic.Uint64
	pruned    atomic.Uint64
	aborted   atomic.Uint64
	memoHits  atomic.Uint64
}

// NoteSearch records one finished search: how many cells it simulated to
// completion, how many the bound pruned outright, how many aborted
// mid-simulation, and whether the winner memo answered it.
func (e *Engine) NoteSearch(simulated, pruned, aborted int, memoHit bool) {
	e.search.searches.Add(1)
	e.search.simulated.Add(uint64(simulated))
	e.search.pruned.Add(uint64(pruned))
	e.search.aborted.Add(uint64(aborted))
	if memoHit {
		e.search.memoHits.Add(1)
	}
}

// SearchStats snapshots the search counters.
func (e *Engine) SearchStats() SearchStats {
	return SearchStats{
		Searches:  e.search.searches.Load(),
		Simulated: e.search.simulated.Load(),
		Pruned:    e.search.pruned.Load(),
		Aborted:   e.search.aborted.Load(),
		MemoHits:  e.search.memoHits.Load(),
	}
}
