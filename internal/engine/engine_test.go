package engine

import (
	"sync"
	"testing"

	"holmes/internal/comm"
	"holmes/internal/parallel"
	"holmes/internal/topology"
)

func deg(t *testing.T, n, tp, pp int) parallel.Degrees {
	t.Helper()
	d, err := parallel.TileDegrees(n, tp, pp)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWorldCacheHitReturnsSamePointers(t *testing.T) {
	e := New(Config{})
	topo := topology.IBEnv(2)
	d := deg(t, topo.NumDevices(), 1, 2)
	a1, w1, err := e.World(topo, d, comm.AutoSelection)
	if err != nil {
		t.Fatal(err)
	}
	a2, w2, err := e.World(topo, d, comm.AutoSelection)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || w1 != w2 {
		t.Fatal("second lookup rebuilt the world instead of hitting the cache")
	}
	st := e.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats after 1 miss + 1 hit: %+v", st)
	}
}

// Selection policy is part of the key: a unified world must not be served
// where an auto-selected one was requested.
func TestWorldCacheKeyIncludesSelection(t *testing.T) {
	e := New(Config{})
	topo := topology.HybridEnv(4)
	d := deg(t, topo.NumDevices(), 1, 2)
	_, auto, err := e.World(topo, d, comm.AutoSelection)
	if err != nil {
		t.Fatal(err)
	}
	_, uni, err := e.World(topo, d, comm.UnifiedSelection)
	if err != nil {
		t.Fatal(err)
	}
	if auto == uni {
		t.Fatal("one world served for two NIC-selection policies")
	}
}

// LRU eviction must drop the least-recently-used entry and keep hot ones —
// the exact property the old overflow-clear() violated (satellite: a long
// search thrashed its whole working set at entry 513).
func TestLRUEvictionKeepsHotEntries(t *testing.T) {
	e := New(Config{CacheSize: 2})
	topoA := topology.IBEnv(1)
	topoB := topology.IBEnv(2)
	topoC := topology.IBEnv(4)
	dA := deg(t, topoA.NumDevices(), 1, 1)
	dB := deg(t, topoB.NumDevices(), 1, 1)
	dC := deg(t, topoC.NumDevices(), 1, 1)

	if _, _, err := e.World(topoA, dA, comm.AutoSelection); err != nil { // A
		t.Fatal(err)
	}
	if _, _, err := e.World(topoB, dB, comm.AutoSelection); err != nil { // A B
		t.Fatal(err)
	}
	if _, _, err := e.World(topoA, dA, comm.AutoSelection); err != nil { // touch A: B is now LRU
		t.Fatal(err)
	}
	if _, _, err := e.World(topoC, dC, comm.AutoSelection); err != nil { // evicts B, keeps hot A
		t.Fatal(err)
	}

	before := e.CacheStats()
	if before.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", before.Evictions)
	}
	if _, _, err := e.World(topoA, dA, comm.AutoSelection); err != nil { // must still be cached
		t.Fatal(err)
	}
	after := e.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("hot entry A was evicted: stats before %+v after %+v", before, after)
	}
	if _, _, err := e.World(topoB, dB, comm.AutoSelection); err != nil { // B was the victim
		t.Fatal(err)
	}
	final := e.CacheStats()
	if final.Misses != after.Misses+1 {
		t.Fatalf("cold entry B still cached: stats %+v", final)
	}
}

// CacheSize < 0 disables caching entirely; every lookup rebuilds.
func TestNegativeCacheSizeDisablesCache(t *testing.T) {
	e := New(Config{CacheSize: -1})
	topo := topology.IBEnv(2)
	d := deg(t, topo.NumDevices(), 1, 2)
	a1, _, err := e.World(topo, d, comm.AutoSelection)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := e.World(topo, d, comm.AutoSelection)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("disabled cache served a cached world")
	}
	if st := e.CacheStats(); st.Size != 0 {
		t.Fatalf("disabled cache holds entries: %+v", st)
	}
}

// Concurrent mixed lookups across two engines must be race-free (run
// under -race) and never cross-contaminate: each engine keeps its own
// cache, and within one engine concurrent callers for one key settle on a
// single entry.
func TestConcurrentWorldLookups(t *testing.T) {
	e1 := New(Config{CacheSize: 4})
	e2 := New(Config{CacheSize: 4, FullRecompute: true, Concurrency: 2})
	topo := topology.HybridEnv(4)
	d2 := deg(t, topo.NumDevices(), 1, 2)
	d4 := deg(t, topo.NumDevices(), 1, 4)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := e1
			if i%2 == 0 {
				e = e2
			}
			d := d2
			if i%4 < 2 {
				d = d4
			}
			if _, _, err := e.World(topo, d, comm.AutoSelection); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st := e1.CacheStats(); st.Size != 2 {
		t.Fatalf("e1 cache size %d, want 2 (one per degree set): %+v", st.Size, st)
	}
	if st := e2.CacheStats(); st.Size != 2 {
		t.Fatalf("e2 cache size %d, want 2: %+v", st.Size, st)
	}
}

func TestDefaultsAndKnobs(t *testing.T) {
	e := New(Config{})
	if e.Concurrency() < 1 {
		t.Fatalf("default concurrency %d", e.Concurrency())
	}
	if e.FullRecompute() {
		t.Fatal("default engine must use the incremental rebalancer")
	}
	if Default() != Default() {
		t.Fatal("Default() must return one shared engine")
	}
	o := New(Config{Concurrency: 3, FullRecompute: true})
	if o.Concurrency() != 3 || !o.FullRecompute() {
		t.Fatal("config not honoured")
	}
	// Go dispatches every index.
	var mu sync.Mutex
	seen := map[int]bool{}
	o.Go(10, func(i int) { mu.Lock(); seen[i] = true; mu.Unlock() })
	if len(seen) != 10 {
		t.Fatalf("Go covered %d/10 indices", len(seen))
	}
}

// The plan cache must behave as a true LRU under overflow: an
// overflowing working set evicts cold entries one at a time while hot
// (recently touched) entries survive — the regression the fleet
// scheduler's old per-Scheduler memo had, where entry 1025 flushed the
// entire hot working set with a wholesale map reset.
func TestPlanCacheOverflowEvictsColdNotHot(t *testing.T) {
	type key struct{ n int }
	const capacity = 8
	e := New(Config{PlanCacheSize: capacity})

	e.StorePlan(key{0}, "hot")
	for n := 1; n < capacity; n++ {
		e.StorePlan(key{n}, n)
	}
	// Overflow by capacity more entries, touching the hot key before each
	// insertion: the hot entry must never be the victim.
	for n := capacity; n < 2*capacity; n++ {
		if _, ok := e.Plan(key{0}); !ok {
			t.Fatalf("hot entry evicted before inserting key %d", n)
		}
		e.StorePlan(key{n}, n)
	}
	st := e.PlanCacheStats()
	if st.Size != capacity {
		t.Fatalf("size %d, want %d", st.Size, capacity)
	}
	if st.Evictions != capacity {
		t.Fatalf("evictions %d, want %d (one per overflow, not wholesale flushes)", st.Evictions, capacity)
	}
	if v, ok := e.Plan(key{0}); !ok || v != "hot" {
		t.Fatalf("hot entry lost after %d overflows (got %v, %v)", capacity, v, ok)
	}
	// The cold keys 1..capacity-1 must be the victims, in age order.
	for n := 1; n < capacity; n++ {
		if _, ok := e.Plan(key{n}); ok {
			t.Fatalf("cold entry %d survived overflow", n)
		}
	}
	// The newest entries are resident.
	for n := capacity + 1; n < 2*capacity; n++ {
		if _, ok := e.Plan(key{n}); !ok {
			t.Fatalf("fresh entry %d missing", n)
		}
	}
}

// PlanCacheSize: 0 means the default bound; negative disables storage.
func TestPlanCacheSizeKnob(t *testing.T) {
	type key struct{ n int }
	d := New(Config{})
	if st := d.PlanCacheStats(); st.Cap != DefaultPlanCacheSize {
		t.Fatalf("default plan cache cap %d, want %d", st.Cap, DefaultPlanCacheSize)
	}
	off := New(Config{PlanCacheSize: -1})
	off.StorePlan(key{1}, 1)
	if _, ok := off.Plan(key{1}); ok {
		t.Fatal("disabled plan cache served an entry")
	}
	if st := off.PlanCacheStats(); st.Size != 0 || st.Cap != 0 {
		t.Fatalf("disabled plan cache reports %+v", st)
	}
}
