package workload

import (
	"testing"
	"testing/quick"
)

func TestSequenceDeterministic(t *testing.T) {
	ds, err := NewDataset(1, 100, 51200, 32)
	if err != nil {
		t.Fatal(err)
	}
	a := ds.Sequence(7)
	b := ds.Sequence(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sequence not deterministic")
		}
	}
	c := ds.Sequence(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct samples identical")
	}
}

func TestTokensInVocab(t *testing.T) {
	ds, _ := NewDataset(3, 50, 100, 64)
	f := func(iRaw uint16) bool {
		seq := ds.Sequence(int(iRaw))
		if len(seq) != 64 {
			return false
		}
		for _, tok := range seq {
			if tok < 0 || tok >= 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShardsPartitionSamples(t *testing.T) {
	ds, _ := NewDataset(5, 12, 50, 4)
	world := 4
	seen := map[int]int{} // first-token fingerprint -> count
	for r := 0; r < world; r++ {
		sh, err := ds.Shard(r, world)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ { // 3 samples per shard covers all 12
			seq := sh.Next()
			seen[int(seq[0])]++
		}
	}
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != 12 {
		t.Fatalf("shards drew %d samples, want 12", total)
	}
}

func TestShardWraps(t *testing.T) {
	ds, _ := NewDataset(5, 4, 50, 4)
	sh, _ := ds.Shard(0, 2)
	a := sh.Next() // sample 0
	sh.Next()      // sample 2
	b := sh.Next() // wraps to sample 0 (4 % 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("wrap must revisit sample 0")
		}
	}
}

func TestIterator(t *testing.T) {
	ds, _ := NewDataset(9, 100, 50, 8)
	sh, _ := ds.Shard(1, 2)
	it := sh.Iteration(4, 3)
	count := 0
	for mb := it.Next(); mb != nil; mb = it.Next() {
		if len(mb) != 4 {
			t.Fatalf("micro-batch size %d", len(mb))
		}
		count++
	}
	if count != 3 {
		t.Fatalf("iterator yielded %d micro-batches, want 3", count)
	}
}

func TestBadShapes(t *testing.T) {
	if _, err := NewDataset(1, 0, 10, 10); err == nil {
		t.Fatal("0 samples must fail")
	}
	if _, err := NewDataset(1, 10, 1, 10); err == nil {
		t.Fatal("vocab 1 must fail")
	}
	ds, _ := NewDataset(1, 10, 10, 10)
	if _, err := ds.Shard(3, 3); err == nil {
		t.Fatal("rank==world must fail")
	}
}

func TestTokensPerIteration(t *testing.T) {
	if got := TokensPerIteration(768, 2048); got != 768*2048 {
		t.Fatalf("TokensPerIteration = %d", got)
	}
}
