// Package workload generates the synthetic token streams that substitute
// for the paper's OPT WebText dataset. Throughput experiments are
// shape-driven — only sequence length, batch size, and sharding matter —
// so a deterministic PRNG token source preserves everything the
// experiments measure while remaining fully reproducible.
package workload

import (
	"fmt"
	"math/rand"
)

// Dataset is a deterministic synthetic token corpus.
type Dataset struct {
	Vocab  int
	SeqLen int
	seed   int64
	// Samples is the nominal corpus size (sequences); iteration wraps.
	Samples int
}

// NewDataset creates a corpus of `samples` sequences over a vocabulary.
func NewDataset(seed int64, samples, vocab, seqLen int) (*Dataset, error) {
	if samples <= 0 || vocab <= 1 || seqLen <= 0 {
		return nil, fmt.Errorf("workload: bad dataset shape samples=%d vocab=%d seq=%d", samples, vocab, seqLen)
	}
	return &Dataset{Vocab: vocab, SeqLen: seqLen, seed: seed, Samples: samples}, nil
}

// Sequence materializes sample i (deterministically, independent of
// access order).
func (d *Dataset) Sequence(i int) []int32 {
	i = ((i % d.Samples) + d.Samples) % d.Samples
	rng := rand.New(rand.NewSource(d.seed ^ int64(i)*0x2545F4914F6CDD1D))
	seq := make([]int32, d.SeqLen)
	for j := range seq {
		seq[j] = int32(rng.Intn(d.Vocab))
	}
	return seq
}

// Shard is one data-parallel rank's view of the dataset: samples
// rank, rank+d, rank+2d, ... (the round-robin sharding Megatron uses).
type Shard struct {
	ds      *Dataset
	rank, d int
	cursor  int
}

// Shard returns data-parallel shard `rank` of `d`.
func (d *Dataset) Shard(rank, world int) (*Shard, error) {
	if world <= 0 || rank < 0 || rank >= world {
		return nil, fmt.Errorf("workload: bad shard %d/%d", rank, world)
	}
	return &Shard{ds: d, rank: rank, d: world}, nil
}

// Next returns the shard's next sequence, wrapping at the corpus end.
func (s *Shard) Next() []int32 {
	idx := s.rank + s.cursor*s.d
	s.cursor++
	return s.ds.Sequence(idx)
}

// MicroBatch returns the next b sequences as one micro-batch.
func (s *Shard) MicroBatch(b int) [][]int32 {
	out := make([][]int32, b)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Iterator walks a shard in (micro-batch, micro-step) order for one
// training iteration: m micro-batches of b samples.
type Iterator struct {
	shard *Shard
	B, M  int
	step  int
}

// Iteration prepares one iteration's iterator: m micro-batches of b.
func (s *Shard) Iteration(b, m int) *Iterator {
	return &Iterator{shard: s, B: b, M: m}
}

// Next returns the next micro-batch, or nil when the iteration is done.
func (it *Iterator) Next() [][]int32 {
	if it.step >= it.M {
		return nil
	}
	it.step++
	return it.shard.MicroBatch(it.B)
}

// TokensPerIteration returns the token volume one iteration consumes
// globally: B·s.
func TokensPerIteration(globalBatch, seqLen int) int64 {
	return int64(globalBatch) * int64(seqLen)
}
