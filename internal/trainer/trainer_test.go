package trainer

import (
	"math"
	"testing"

	"holmes/internal/model"
	"holmes/internal/topology"
)

func simulate(t *testing.T, topo *topology.Topology, groupID, p int, fw Framework, opt *Options) Report {
	t.Helper()
	pg := model.Group(groupID)
	rep, err := Simulate(Config{
		Topo: topo, Spec: pg.Spec,
		TensorSize: pg.TensorSize, PipelineSize: p,
		Framework: fw, Opt: opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSimulateTable1Calibration(t *testing.T) {
	base := BaseOptions()
	targets := map[topology.EnvName]float64{
		topology.EnvInfiniBand: 197,
		topology.EnvRoCE:       160,
		topology.EnvEthernet:   122,
		topology.EnvHybrid:     149,
	}
	got := map[topology.EnvName]float64{}
	for env, want := range targets {
		topo, err := topology.Env(env, 4)
		if err != nil {
			t.Fatal(err)
		}
		rep := simulate(t, topo, 1, 2, Holmes, &base)
		got[env] = rep.TFLOPS
		if rel := math.Abs(rep.TFLOPS-want) / want; rel > 0.15 {
			t.Errorf("%s: %.1f TFLOPS vs paper %.0f (%.0f%%)", env, rep.TFLOPS, want, rel*100)
		}
	}
	if !(got[topology.EnvInfiniBand] > got[topology.EnvRoCE] &&
		got[topology.EnvRoCE] > got[topology.EnvHybrid] &&
		got[topology.EnvHybrid] > got[topology.EnvEthernet]) {
		t.Fatalf("environment ordering violated: %v", got)
	}
}

func TestThroughputAndTFLOPSConsistent(t *testing.T) {
	// TFLOPS and Throughput must be two views of the same iteration time.
	rep := simulate(t, topology.IBEnv(4), 1, 2, Holmes, nil)
	spec := model.Group(1).Spec
	n := 32.0
	implied := spec.FLOPsPerIteration() / (float64(spec.GlobalBatch) / rep.Throughput) / n / 1e12
	if math.Abs(implied-rep.TFLOPS)/rep.TFLOPS > 1e-9 {
		t.Fatalf("metrics inconsistent: %.3f vs %.3f", implied, rep.TFLOPS)
	}
}

func TestMoreNodesMoreThroughputLowerTFLOPS(t *testing.T) {
	base := BaseOptions()
	t4 := simulate(t, topology.IBEnv(4), 1, 2, Holmes, &base)
	t8 := simulate(t, topology.IBEnv(8), 1, 2, Holmes, &base)
	if t8.Throughput <= t4.Throughput {
		t.Fatalf("8 nodes (%.1f samples/s) must beat 4 nodes (%.1f)", t8.Throughput, t4.Throughput)
	}
	// Fixed global batch over more GPUs: less work per GPU, bigger
	// communication share, so per-GPU TFLOPS drops (Table 3's trend).
	if t8.TFLOPS >= t4.TFLOPS {
		t.Fatalf("per-GPU TFLOPS should fall with scale at fixed batch: %.1f vs %.1f", t8.TFLOPS, t4.TFLOPS)
	}
}

func TestOverlapBeatsSerialOnSlowFabric(t *testing.T) {
	topo := topology.HybridEnv(8)
	serial := BaseOptions()
	overlap := BaseOptions()
	overlap.OverlappedOptimizer = true
	s := simulate(t, topo, 3, 4, Holmes, &serial)
	o := simulate(t, topo, 3, 4, Holmes, &overlap)
	if o.Throughput <= s.Throughput {
		t.Fatalf("overlapped optimizer must help: %.2f vs %.2f samples/s", o.Throughput, s.Throughput)
	}
}

func TestFrameworkOrderingOnHybrid(t *testing.T) {
	topo := topology.HybridEnv(8)
	var prev float64
	for i, fw := range AllFrameworks { // DeepSpeed, LM, LLaMA, Holmes
		rep := simulate(t, topo, 3, 4, fw, nil)
		if i > 0 && rep.Throughput <= prev {
			t.Fatalf("%s (%.2f) should beat its predecessor (%.2f)", fw, rep.Throughput, prev)
		}
		prev = rep.Throughput
	}
}

func TestUnifiedSelectionHurtsOnlyOnHybrid(t *testing.T) {
	// On a homogeneous IB cluster Megatron-LM and Holmes-base are close;
	// on hybrid the unified (Ethernet) fallback costs Megatron-LM dearly.
	ib := topology.IBEnv(4)
	base := BaseOptions()
	holmesIB := simulate(t, ib, 1, 2, Holmes, &base)
	lmIB := simulate(t, ib, 1, 2, MegatronLM, nil)
	if gap := holmesIB.Throughput / lmIB.Throughput; gap > 1.1 {
		t.Fatalf("homogeneous IB gap %.2f should be small", gap)
	}
	hy := topology.HybridEnv(4)
	holmesHy := simulate(t, hy, 1, 2, Holmes, &base)
	lmHy := simulate(t, hy, 1, 2, MegatronLM, nil)
	if gap := holmesHy.Throughput / lmHy.Throughput; gap < 1.1 {
		t.Fatalf("hybrid gap %.2f should be large (auto NIC selection)", gap)
	}
}

func TestGPipeAblationSlower(t *testing.T) {
	topo := topology.HybridEnv(4)
	f1b := DefaultOptions(Holmes)
	gp := DefaultOptions(Holmes)
	gp.GPipeSchedule = true
	a := simulate(t, topo, 1, 2, Holmes, &f1b)
	b := simulate(t, topo, 1, 2, Holmes, &gp)
	// Same bubble structure: GPipe should be within a few percent, never
	// dramatically faster.
	if b.Throughput > a.Throughput*1.05 {
		t.Fatalf("GPipe (%.2f) should not beat 1F1B (%.2f) by >5%%", b.Throughput, a.Throughput)
	}
}

func TestReduceScatterMetricPopulatedInSerialMode(t *testing.T) {
	base := BaseOptions()
	rep := simulate(t, topology.RoCEEnv(4), 1, 2, Holmes, &base)
	if rep.ReduceScatterSeconds <= 0 {
		t.Fatal("reduce-scatter time not measured")
	}
	// Figure 4 shape: Ethernet RS must dwarf InfiniBand RS.
	ib := simulate(t, topology.IBEnv(4), 1, 2, Holmes, &base)
	eth := simulate(t, topology.EthernetEnv(4), 1, 2, Holmes, &base)
	if !(eth.ReduceScatterSeconds > rep.ReduceScatterSeconds &&
		rep.ReduceScatterSeconds > ib.ReduceScatterSeconds) {
		t.Fatalf("RS ordering violated: ib=%.3f roce=%.3f eth=%.3f",
			ib.ReduceScatterSeconds, rep.ReduceScatterSeconds, eth.ReduceScatterSeconds)
	}
}

func TestSimulateErrors(t *testing.T) {
	pg := model.Group(1)
	topo := topology.IBEnv(4)
	cases := []Config{
		{Spec: pg.Spec, TensorSize: 1, PipelineSize: 2},                  // nil topo
		{Topo: topo, Spec: pg.Spec, TensorSize: 0, PipelineSize: 2},      // bad t
		{Topo: topo, Spec: pg.Spec, TensorSize: 1, PipelineSize: 5},      // 5 does not tile 32
		{Topo: topo, Spec: model.Spec{}, TensorSize: 1, PipelineSize: 2}, // invalid spec
		{Topo: topo, Spec: pg.Spec, TensorSize: 1, PipelineSize: 32},     // p > layers? p=32 tiles 32 but d=1, B=768, m huge: fine? p>nodes though
	}
	for i, cfg := range cases {
		cfg.Framework = Holmes
		if _, err := Simulate(cfg); err == nil && i < 4 {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestForcedPartitionRoundTrip(t *testing.T) {
	opt := BaseOptions()
	opt.ForcedPartition = []int{20, 10}
	rep := simulate(t, topology.IBEnv(4), 1, 2, Holmes, &opt)
	if rep.Partition.Layers[0] != 20 || rep.Partition.Layers[1] != 10 {
		t.Fatalf("forced partition ignored: %v", rep.Partition)
	}
	bad := BaseOptions()
	bad.ForcedPartition = []int{20, 20}
	pg := model.Group(1)
	if _, err := Simulate(Config{Topo: topology.IBEnv(4), Spec: pg.Spec, TensorSize: 1, PipelineSize: 2, Framework: Holmes, Opt: &bad}); err == nil {
		t.Fatal("invalid forced partition accepted")
	}
}

func TestEnvLabel(t *testing.T) {
	if EnvLabel(topology.HybridEnv(4)) != "Hybrid" {
		t.Fatal("hybrid label wrong")
	}
	if EnvLabel(topology.IBEnv(2)) != "InfiniBand" {
		t.Fatal("IB label wrong")
	}
	two := topology.MustBuild(topology.Spec{Clusters: []topology.ClusterSpec{
		{NIC: topology.RoCE, Nodes: 1}, {NIC: topology.RoCE, Nodes: 1},
	}})
	if EnvLabel(two) != "RoCE" {
		t.Fatal("homogeneous multi-cluster label wrong")
	}
}
