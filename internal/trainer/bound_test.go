package trainer

import (
	"math/rand"
	"testing"

	"holmes/internal/model"
	"holmes/internal/topology"
)

// checkAdmissible simulates one cell and, when it is feasible, asserts
// the analytic bound never exceeds the simulated iteration time. The
// bound's only contract is admissibility — LowerBound(cfg) ≤
// Simulate(cfg).IterSeconds — because the pruned joint search
// (core.Planner.SearchPlan) turns it into a throughput upper bound: an
// overestimate could prune the true winner and silently change search
// results, while looseness only costs extra simulations.
func checkAdmissible(t *testing.T, label string, cfg Config) {
	t.Helper()
	rep, err := Simulate(cfg)
	if err != nil {
		return // infeasible cell: the search surfaces the error, nothing to bound
	}
	lb, err := LowerBound(cfg)
	if err != nil {
		t.Errorf("%s: simulates to %.6fs but LowerBound errors: %v", label, rep.IterSeconds, err)
		return
	}
	if lb <= 0 {
		t.Errorf("%s: non-positive bound %.6g", label, lb)
		return
	}
	if lb > rep.IterSeconds {
		t.Errorf("%s: bound %.9fs exceeds simulated %.9fs (overestimate by %.3g%%) — inadmissible",
			label, lb, rep.IterSeconds, (lb/rep.IterSeconds-1)*100)
	}
}

// TestLowerBoundAdmissible sweeps the deterministic grid the joint
// search actually walks: every environment, Table-3 node counts, two
// parameter groups, all four framework profiles, and the full (t, p)
// candidate space.
func TestLowerBoundAdmissible(t *testing.T) {
	envs := []topology.EnvName{
		topology.EnvInfiniBand, topology.EnvRoCE, topology.EnvEthernet, topology.EnvHybrid,
	}
	for _, env := range envs {
		for _, nodes := range []int{4, 8} {
			env, nodes := env, nodes
			t.Run(string(env)+"/n"+itoa(nodes), func(t *testing.T) {
				t.Parallel()
				topo, err := topology.Env(env, nodes)
				if err != nil {
					t.Fatal(err)
				}
				for _, group := range []int{1, 3} {
					pg := model.Group(group)
					for _, fw := range AllFrameworks {
						// Non-Holmes profiles differ only in option
						// knobs (unified NIC selection, DP traffic
						// scale, overlap); one parameter group already
						// exercises each knob, so keep the larger
						// group for Holmes alone and halve the sweep.
						if fw != Holmes && group != 1 {
							continue
						}
						for _, tile := range []int{1, 2, 4, 8} {
							for p := 1; p <= nodes; p++ {
								checkAdmissible(t,
									string(env)+"/"+string(fw)+cellLabel(group, nodes, tile, p),
									Config{
										Topo: topo, Spec: pg.Spec,
										TensorSize: tile, PipelineSize: p,
										Framework: fw,
									})
							}
						}
					}
				}
			})
		}
	}
}

// TestLowerBoundAdmissibleRandomized perturbs the option knobs the grid
// sweep holds fixed: random schedule, partition strategy, optimizer
// overlap, DP traffic scale, and alpha, over random cells. Seeded, so a
// failure reproduces.
func TestLowerBoundAdmissibleRandomized(t *testing.T) {
	envs := []topology.EnvName{
		topology.EnvInfiniBand, topology.EnvRoCE, topology.EnvEthernet, topology.EnvHybrid,
	}
	tiles := []int{1, 2, 4, 8}
	for shard := 0; shard < 8; shard++ {
		shard := shard
		t.Run("seed"+itoa(shard), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(7 + int64(shard)))
			for trial := 0; trial < 6; trial++ {
				env := envs[rng.Intn(len(envs))]
				nodes := 4 + 2*rng.Intn(3) // 4, 6, 8
				group := 1 + rng.Intn(4)
				tile := tiles[rng.Intn(len(tiles))]
				p := 1 + rng.Intn(nodes)
				fw := AllFrameworks[rng.Intn(len(AllFrameworks))]
				opt := DefaultOptions(fw)
				opt.GPipeSchedule = rng.Intn(2) == 0
				opt.SelfAdaptingPartition = rng.Intn(2) == 0
				opt.OverlappedOptimizer = rng.Intn(2) == 0
				opt.ExtraDPTraffic = 1 + rng.Float64()
				opt.Alpha = 1 + rng.Float64()/4
				topo, err := topology.Env(env, nodes)
				if err != nil {
					t.Fatal(err)
				}
				checkAdmissible(t,
					string(env)+"/"+string(fw)+cellLabel(group, nodes, tile, p)+"(randomized options)",
					Config{
						Topo: topo, Spec: model.Group(group).Spec,
						TensorSize: tile, PipelineSize: p,
						Framework: fw, Opt: &opt,
					})
			}
		})
	}
}

func cellLabel(group, nodes, tile, p int) string {
	return "/group" + itoa(group) + "/n" + itoa(nodes) + "/t" + itoa(tile) + "/p" + itoa(p)
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}
