package trainer

import (
	"reflect"
	"testing"

	"holmes/internal/model"
	"holmes/internal/scenario"
	"holmes/internal/topology"
)

func simUnder(t *testing.T, sc *scenario.Scenario) Report {
	t.Helper()
	rep, err := Simulate(Config{
		Topo: topology.HybridEnv(4), Spec: model.Group(1).Spec,
		TensorSize: 1, PipelineSize: 2, Framework: Holmes,
		Scenario: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The scenario no-op contract: nil and Scenario{} produce bit-identical
// reports — binding an empty timeline schedules nothing on the engine.
func TestEmptyScenarioIsBitIdenticalNoOp(t *testing.T) {
	base := simUnder(t, nil)
	empty := simUnder(t, &scenario.Scenario{})
	if !reflect.DeepEqual(empty, base) {
		t.Fatalf("empty scenario changed the report:\n%+v\n%+v", empty, base)
	}
	// JoinNodes is a fabric no-op by contract: a running iteration cannot
	// adopt nodes; only replanning sees them.
	join := simUnder(t, &scenario.Scenario{Events: []scenario.Event{
		{Kind: scenario.JoinNodes, At: 0, Cluster: 0, Count: 2},
	}})
	if join.IterSeconds != base.IterSeconds || join.Throughput != base.Throughput {
		t.Fatalf("join_nodes perturbed the simulation: %+v vs %+v", join, base)
	}
	if join.ScenarioEvents != 1 {
		t.Fatalf("join event not counted: %d", join.ScenarioEvents)
	}
}

// The severity contract: a failed node strictly increases step time; a
// restore bounded in time costs less than a permanent failure.
func TestScenarioSeverityOrdering(t *testing.T) {
	base := simUnder(t, nil)
	fail := simUnder(t, &scenario.Scenario{Name: "fail", Events: []scenario.Event{
		{Kind: scenario.FailNode, At: 0, Node: 0},
	}})
	if !(fail.IterSeconds > base.IterSeconds) {
		t.Fatalf("failure did not increase step time: %v vs %v", fail.IterSeconds, base.IterSeconds)
	}
	if fail.Scenario != "fail" || fail.ScenarioEvents != 1 {
		t.Fatalf("scenario not reported: %+v", fail)
	}
	// Fail at t=0, restore shortly after: the iteration limps through the
	// outage then recovers, so it lands strictly between base and fail.
	flap := simUnder(t, &scenario.Scenario{Events: []scenario.Event{
		{Kind: scenario.FailNode, At: 0, Node: 0},
		{Kind: scenario.RestoreNode, At: 0.5, Node: 0},
	}})
	if !(flap.IterSeconds > base.IterSeconds && flap.IterSeconds < fail.IterSeconds) {
		t.Fatalf("flap %.4fs not between base %.4fs and fail %.4fs",
			flap.IterSeconds, base.IterSeconds, fail.IterSeconds)
	}
	// Background traffic on the inter-cluster Ethernet contends with the
	// pipeline's cross-cluster hop.
	bg := simUnder(t, &scenario.Scenario{Events: []scenario.Event{
		{Kind: scenario.BackgroundTraffic, At: 0, Src: 1, Dst: 2, Class: scenario.ClassEther, Gbps: 20},
	}})
	if !(bg.IterSeconds > base.IterSeconds) {
		t.Fatalf("background traffic free: %v vs %v", bg.IterSeconds, base.IterSeconds)
	}
}
